// Benchmarks regenerating every figure and experiment of the paper, plus
// micro-benchmarks of each subsystem. One bench per figure/table per
// DESIGN.md:
//
//	Figure 1 → BenchmarkFigure1StabilityAUROC, BenchmarkFigure1RFMAUROC,
//	           BenchmarkFigure1Full
//	Figure 2 → BenchmarkFigure2ExplanationTrace
//	CV-1     → BenchmarkParamSearchCV
//	EXT-1    → BenchmarkExplanationQuality
//	EXT-2/3/4 ablations → BenchmarkAblationAlpha/Window/Policy
//
// Run with: go test -bench=. -benchmem
package stability_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"sort"
	"strconv"
	"testing"
	"time"

	"github.com/gautrais/stability"
	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/eval"
	"github.com/gautrais/stability/internal/experiments"
	"github.com/gautrais/stability/internal/gen"
	"github.com/gautrais/stability/internal/logreg"
	"github.com/gautrais/stability/internal/population"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/rfm"
	"github.com/gautrais/stability/internal/serve"
	"github.com/gautrais/stability/internal/store"
	"github.com/gautrais/stability/internal/stream"
	"github.com/gautrais/stability/internal/window"
)

// benchGen is a dataset configuration small enough to iterate but large
// enough to exercise the real code paths.
func benchGen() gen.Config {
	cfg := gen.NewConfig()
	cfg.Customers = 240
	cfg.Segments = 80
	cfg.ProductsPerSegment = 2
	return cfg
}

var benchDataset *gen.Dataset

func sharedDataset(b *testing.B) *gen.Dataset {
	b.Helper()
	if benchDataset == nil {
		ds, err := gen.Generate(benchGen())
		if err != nil {
			b.Fatal(err)
		}
		benchDataset = ds
	}
	return benchDataset
}

// --- Figure 1 ---

// BenchmarkFigure1StabilityAUROC measures the stability model's half of
// Figure 1: scoring the whole population at every evaluation window.
func BenchmarkFigure1StabilityAUROC(b *testing.B) {
	ds := sharedDataset(b)
	pop, err := experiments.NewPopulation(ds)
	if err != nil {
		b.Fatal(err)
	}
	grid, err := window.NewGrid(ds.Config.Start, window.Span{Months: 2})
	if err != nil {
		b.Fatal(err)
	}
	model, err := core.New(core.Options{Alpha: 2})
	if err != nil {
		b.Fatal(err)
	}
	evalKs := []int{5, 6, 7, 8, 9, 10, 11}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, h := range pop.Histories {
			wd, err := window.Windowize(h, grid, 11)
			if err != nil {
				b.Fatal(err)
			}
			series, err := model.AnalyzeStability(wd)
			if err != nil {
				b.Fatal(err)
			}
			for _, k := range evalKs {
				if _, ok := series.StabilityAt(k); !ok {
					_ = ok
				}
			}
		}
	}
}

// BenchmarkFigure1RFMAUROC measures the baseline's half of Figure 1: one
// RFM training + scoring pass at the first post-onset window.
func BenchmarkFigure1RFMAUROC(b *testing.B) {
	ds := sharedDataset(b)
	pop, err := experiments.NewPopulation(ds)
	if err != nil {
		b.Fatal(err)
	}
	grid, err := window.NewGrid(ds.Config.Start, window.Span{Months: 2})
	if err != nil {
		b.Fatal(err)
	}
	labels := make([]bool, pop.N())
	copy(labels, pop.Labels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline, err := rfm.Train(grid, 9, pop.Histories, labels, rfm.DefaultTrainOptions())
		if err != nil {
			b.Fatal(err)
		}
		scores := make([]float64, pop.N())
		for j, h := range pop.Histories {
			scores[j] = baseline.Score(h)
		}
		if _, err := eval.AUROC(scores, labels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1Full regenerates the entire figure (both curves, all
// months, CV folds) per iteration — the end-to-end cost of the headline
// experiment.
func BenchmarkFigure1Full(b *testing.B) {
	cfg := experiments.DefaultFigure1Config()
	cfg.Gen = benchGen()
	ds, err := gen.Generate(cfg.Gen)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1On(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 2 ---

// BenchmarkFigure2ExplanationTrace regenerates the individual-customer
// trace with full explanations.
func BenchmarkFigure2ExplanationTrace(b *testing.B) {
	cfg := experiments.DefaultFigure2Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- CV-1 ---

// BenchmarkParamSearchCV regenerates the cross-validated (α, w) grid search
// on a reduced grid.
func BenchmarkParamSearchCV(b *testing.B) {
	cfg := experiments.DefaultParamSearchConfig()
	cfg.Gen = benchGen()
	cfg.Alphas = []float64{1.5, 2, 3}
	cfg.Spans = []int{1, 2}
	ds, err := gen.Generate(cfg.Gen)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ParamSearchOn(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXT experiments ---

// BenchmarkExplanationQuality regenerates EXT-1.
func BenchmarkExplanationQuality(b *testing.B) {
	cfg := experiments.DefaultExplanationQualityConfig()
	cfg.Gen = benchGen()
	ds, err := gen.Generate(cfg.Gen)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExplanationQualityOn(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAblation(b *testing.B, run func(*gen.Dataset, experiments.AblationConfig) (*experiments.AblationResult, error)) {
	cfg := experiments.DefaultAblationConfig()
	cfg.Gen = benchGen()
	cfg.Alphas = []float64{1.5, 3}
	cfg.Spans = []int{1, 2}
	ds, err := gen.Generate(cfg.Gen)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAlpha regenerates EXT-2.
func BenchmarkAblationAlpha(b *testing.B) { benchAblation(b, experiments.AlphaAblationOn) }

// BenchmarkAblationWindow regenerates EXT-3.
func BenchmarkAblationWindow(b *testing.B) { benchAblation(b, experiments.WindowAblationOn) }

// BenchmarkAblationPolicy regenerates EXT-4.
func BenchmarkAblationPolicy(b *testing.B) { benchAblation(b, experiments.PolicyAblationOn) }

// BenchmarkGatewaySegments regenerates EXT-5.
func BenchmarkGatewaySegments(b *testing.B) {
	cfg := experiments.DefaultGatewayConfig()
	cfg.Gen = benchGen()
	ds, err := gen.Generate(cfg.Gen)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GatewayOn(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFamilyAblation regenerates EXT-6 (post-onset months only, to
// keep the per-iteration cost reasonable).
func BenchmarkFamilyAblation(b *testing.B) {
	cfg := experiments.DefaultFamilyAblationConfig()
	cfg.Gen = benchGen()
	cfg.FirstMonth, cfg.LastMonth = 18, 24
	ds, err := gen.Generate(cfg.Gen)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FamilyAblationOn(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeadTime regenerates EXT-7.
func BenchmarkLeadTime(b *testing.B) {
	cfg := experiments.DefaultLeadTimeConfig()
	cfg.Gen = benchGen()
	ds, err := gen.Generate(cfg.Gen)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LeadTimeOn(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorIngest measures streaming throughput: receipts ingested
// per op across a whole population replay. The "single" case is the
// sequential Monitor baseline; the shards-N cases sweep the sharded engine
// (hash fan-out, one goroutine per shard). On a 1-CPU container the sweep is
// flat — judge scaling on multi-core hosts.
func BenchmarkMonitorIngest(b *testing.B) {
	ds := sharedDataset(b)
	grid, err := window.NewGrid(ds.Config.Start, window.Span{Months: 2})
	if err != nil {
		b.Fatal(err)
	}
	cfg := stream.Config{Grid: grid, Model: core.Options{Alpha: 2}, Beta: 0.6, WarmupWindows: 3}
	type event struct {
		id retail.CustomerID
		t  int64
		it retail.Basket
	}
	var feed []event
	ds.Store.Each(func(h retail.History) bool {
		for _, r := range h.Receipts {
			feed = append(feed, event{h.Customer, r.Time.UnixNano(), r.Items})
		}
		return true
	})
	sort.Slice(feed, func(i, j int) bool { return feed[i].t < feed[j].t })

	b.Run("single", func(b *testing.B) {
		b.ReportMetric(float64(len(feed)), "receipts/op")
		for i := 0; i < b.N; i++ {
			m, err := stream.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, ev := range feed {
				if _, err := m.Ingest(ev.id, time.Unix(0, ev.t), ev.it); err != nil {
					b.Fatal(err)
				}
			}
			m.CloseThrough(13)
		}
	})
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			b.ReportMetric(float64(len(feed)), "receipts/op")
			for i := 0; i < b.N; i++ {
				m, err := stream.NewSharded(cfg, shards)
				if err != nil {
					b.Fatal(err)
				}
				for _, ev := range feed {
					if err := m.Ingest(ev.id, time.Unix(0, ev.t), ev.it); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := m.CloseThrough(13); err != nil {
					b.Fatal(err)
				}
				if _, err := m.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- population engine ---

// BenchmarkPopulationAnalyze measures sharded population scoring
// (stability-only hot path) across worker counts. On multi-core hardware
// throughput should scale near-linearly until the pool saturates the
// cores; the 1-worker case is the sequential baseline.
func BenchmarkPopulationAnalyze(b *testing.B) {
	ds := sharedDataset(b)
	grid, err := window.NewGrid(ds.Config.Start, window.Span{Months: 2})
	if err != nil {
		b.Fatal(err)
	}
	model, err := stability.NewModel(stability.Options{Alpha: 2})
	if err != nil {
		b.Fatal(err)
	}
	var histories []retail.History
	ds.Store.Each(func(h retail.History) bool {
		histories = append(histories, h)
		return true
	})
	through := ds.Config.Months/2 - 1
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportMetric(float64(len(histories)), "customers/op")
			for i := 0; i < b.N; i++ {
				if _, err := population.AnalyzeStability(model, histories, grid, through,
					population.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPopulationAnalyzeExplain is the same sweep on the full
// explanation path (blame lists built for every window).
func BenchmarkPopulationAnalyzeExplain(b *testing.B) {
	ds := sharedDataset(b)
	grid, err := window.NewGrid(ds.Config.Start, window.Span{Months: 2})
	if err != nil {
		b.Fatal(err)
	}
	model, err := stability.NewModel(stability.Options{Alpha: 2})
	if err != nil {
		b.Fatal(err)
	}
	var histories []retail.History
	ds.Store.Each(func(h retail.History) bool {
		histories = append(histories, h)
		return true
	})
	through := ds.Config.Months/2 - 1
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := stability.AnalyzePopulation(model, histories, grid, through,
					stability.PopulationOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- micro-benchmarks ---

// BenchmarkTrackerObserve measures the incremental per-window stability
// update at several repertoire sizes.
func BenchmarkTrackerObserve(b *testing.B) {
	for _, size := range []int{10, 50, 200, 1000} {
		b.Run("repertoire-"+strconv.Itoa(size), func(b *testing.B) {
			items := make([]retail.ItemID, size)
			for i := range items {
				items[i] = retail.ItemID(i + 1)
			}
			full := retail.NewBasket(items)
			half := retail.NewBasket(items[:size/2])
			tr, err := core.NewTracker(core.Options{Alpha: 2})
			if err != nil {
				b.Fatal(err)
			}
			tr.Observe(full)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					tr.ObserveStability(half)
				} else {
					tr.ObserveStability(full)
				}
			}
		})
	}
}

// BenchmarkTrackerExplain measures the explanation path (blame lists).
func BenchmarkTrackerExplain(b *testing.B) {
	items := make([]retail.ItemID, 100)
	for i := range items {
		items[i] = retail.ItemID(i + 1)
	}
	full := retail.NewBasket(items)
	half := retail.NewBasket(items[:50])
	tr, err := core.NewTracker(core.Options{Alpha: 2})
	if err != nil {
		b.Fatal(err)
	}
	tr.Observe(full)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			tr.Observe(half)
		} else {
			tr.Observe(full)
		}
	}
}

// BenchmarkWindowize measures windowed-database construction.
func BenchmarkWindowize(b *testing.B) {
	ds := sharedDataset(b)
	grid, err := window.NewGrid(ds.Config.Start, window.Span{Months: 2})
	if err != nil {
		b.Fatal(err)
	}
	var histories []retail.History
	ds.Store.Each(func(h retail.History) bool {
		histories = append(histories, h)
		return len(histories) < 50
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := histories[i%len(histories)]
		if _, err := window.Windowize(h, grid, 13); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreIngest measures builder throughput (receipts/op).
func BenchmarkStoreIngest(b *testing.B) {
	ds := sharedDataset(b)
	type row struct {
		id retail.CustomerID
		r  retail.Receipt
	}
	var rows []row
	ds.Store.Each(func(h retail.History) bool {
		for _, r := range h.Receipts {
			rows = append(rows, row{h.Customer, r})
		}
		return len(rows) < 20000
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb := stability.NewStoreBuilder()
		for _, r := range rows {
			if err := sb.AddReceipt(r.id, r.r); err != nil {
				b.Fatal(err)
			}
		}
		if sb.Build().NumReceipts() != len(rows) {
			b.Fatal("lost receipts")
		}
	}
}

// BenchmarkStoreBuild measures the frozen-store build — every history
// copied and sorted — across worker counts: the per-history work fans out
// over the population engine (PR 5), so multi-core hosts should scale
// until memory bandwidth saturates; a 1-CPU container shows a flat sweep
// by construction. The builder is built once and frozen repeatedly
// (Build never consumes the builder).
func BenchmarkStoreBuild(b *testing.B) {
	ds := sharedDataset(b)
	sb := store.NewBuilder()
	receipts := 0
	ds.Store.Each(func(h retail.History) bool {
		for _, r := range h.Receipts {
			if err := sb.AddReceipt(h.Customer, r); err != nil {
				b.Fatal(err)
			}
			receipts++
		}
		return true
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if sb.BuildWith(store.Options{Workers: workers}).NumReceipts() != receipts {
					b.Fatal("lost receipts")
				}
			}
		})
	}
}

// BenchmarkGenerateExtend measures incremental dataset growth: appending
// months by resuming per-customer checkpoints (gen.Extend) versus the
// from-scratch cost of the same final horizon. Each iteration regenerates
// the base outside the timer, so the measured region is exactly the
// extension (resume + simulate new months + store append).
func BenchmarkGenerateExtend(b *testing.B) {
	const extraMonths = 4
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			cfg := benchGen()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ds, err := gen.GenerateWith(cfg, gen.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := gen.Extend(ds, extraMonths, gen.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreSnapshotWrite measures binary encoding throughput.
func BenchmarkStoreSnapshotWrite(b *testing.B) {
	ds := sharedDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ds.Store.WriteBinary(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogregTrain measures the from-scratch LR fit.
func BenchmarkLogregTrain(b *testing.B) {
	ds := sharedDataset(b)
	pop, err := experiments.NewPopulation(ds)
	if err != nil {
		b.Fatal(err)
	}
	grid, err := window.NewGrid(ds.Config.Start, window.Span{Months: 2})
	if err != nil {
		b.Fatal(err)
	}
	ex := rfm.Extractor{Grid: grid}
	X := make([][]float64, pop.N())
	y := make([]int, pop.N())
	for i, h := range pop.Histories {
		X[i] = ex.Extract(h, 9)
		if pop.Labels[i] {
			y[i] = 1
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := logreg.Train(X, y, logreg.DefaultTrainOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAUROC measures the rank-based AUROC at population scale.
func BenchmarkAUROC(b *testing.B) {
	n := 100000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = float64(i%997) / 997
		labels[i] = i%3 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.AUROC(scores, labels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerator measures synthetic dataset generation.
func BenchmarkGenerator(b *testing.B) {
	cfg := benchGen()
	cfg.Customers = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := gen.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate sweeps the parallel dataset generator across customer
// counts and worker counts. Output is bit-identical at every worker count
// (differential-tested), so this measures pure scheduling: on multi-core
// hardware throughput should scale with workers until the cores saturate;
// on a 1-CPU container the worker sweep is flat by construction.
func BenchmarkGenerate(b *testing.B) {
	for _, customers := range []int{100, 400} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("customers-%d/workers-%d", customers, workers), func(b *testing.B) {
				cfg := benchGen()
				cfg.Customers = customers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := gen.GenerateWith(cfg, gen.Options{Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMonitorCloseThrough measures the barrier hot path at population
// scale: many tracked customers, one watermark barrier per op. With the
// sorted-customer index a steady-state barrier is a linear scan plus the
// per-customer window scoring — no O(n log n) re-sort of the whole
// customer set per barrier. Alerts are suppressed (warm-up) so the
// measurement isolates the barrier machinery.
func BenchmarkMonitorCloseThrough(b *testing.B) {
	grid, err := window.NewGrid(time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), window.Span{Months: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, customers := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("customers-%d", customers), func(b *testing.B) {
			cfg := stream.Config{
				Grid:  grid,
				Model: core.Options{Alpha: 2},
				Beta:  0.6,
				// Never alert: the benchmark targets the barrier sweep, not
				// alert assembly.
				WarmupWindows: 1 << 30,
			}
			m, err := stream.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			basket := retail.NewBasket([]retail.ItemID{1, 2, 3, 4, 5, 6, 7, 8})
			start, _ := grid.Bounds(0)
			for c := 1; c <= customers; c++ {
				// Shuffled insertion order (stride walk) so the index merge
				// path is exercised, not an already-sorted append.
				id := retail.CustomerID((c*7919)%customers + 1)
				if _, err := m.Ingest(id, start, basket); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Each op closes exactly one window per customer: the
				// steady-state periodic watermark barrier.
				m.CloseThrough(i)
			}
		})
	}
}

// BenchmarkMonitorBatchQuery measures the batch stability read path on the
// sharded monitor: one Stabilities call scoring every tracked customer,
// with a recycled dst so the steady state allocates nothing per customer.
// "open" pays the per-shard control fan-out; "closed" is direct reads.
func BenchmarkMonitorBatchQuery(b *testing.B) {
	grid, err := window.NewGrid(time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), window.Span{Months: 2})
	if err != nil {
		b.Fatal(err)
	}
	const customers = 5000
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			cfg := stream.Config{Grid: grid, Model: core.Options{Alpha: 2}, Beta: 0.6, WarmupWindows: 2}
			m, err := stream.NewSharded(cfg, shards)
			if err != nil {
				b.Fatal(err)
			}
			basket := retail.NewBasket([]retail.ItemID{1, 2, 3, 4, 5, 6, 7, 8})
			ids := make([]retail.CustomerID, 0, customers)
			start, _ := grid.Bounds(0)
			next, _ := grid.Bounds(1)
			for c := 1; c <= customers; c++ {
				id := retail.CustomerID((c*7919)%customers + 1)
				ids = append(ids, id)
				for _, ts := range []time.Time{start, next} {
					if err := m.Ingest(id, ts, basket); err != nil {
						b.Fatal(err)
					}
				}
			}
			if _, err := m.CloseThrough(1); err != nil {
				b.Fatal(err)
			}
			dst := make([]stream.CustomerStability, 0, customers)
			run := func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer() // clears extra metrics, so report after it
				b.ReportMetric(float64(len(ids)), "scores/op")
				for i := 0; i < b.N; i++ {
					dst = m.Stabilities(ids, dst)
				}
			}
			b.Run("open", run)
			if _, err := m.Close(); err != nil {
				b.Fatal(err)
			}
			b.Run("closed", run)
		})
	}
}

// BenchmarkRFMExtract measures feature extraction.
func BenchmarkRFMExtract(b *testing.B) {
	ds := sharedDataset(b)
	pop, err := experiments.NewPopulation(ds)
	if err != nil {
		b.Fatal(err)
	}
	grid, err := window.NewGrid(ds.Config.Start, window.Span{Months: 2})
	if err != nil {
		b.Fatal(err)
	}
	ex := rfm.Extractor{Grid: grid}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Extract(pop.Histories[i%pop.N()], 9)
	}
}

// --- serving layer (attritiond) ---

// serveBodies pre-marshals the shared dataset into month-phased POST
// bodies so the benchmarks measure the handler path, not json.Marshal.
func serveBodies(b *testing.B, batch int) (bodies [][]byte, receipts int, grid window.Grid) {
	b.Helper()
	ds := sharedDataset(b)
	grid, err := window.NewGrid(ds.Config.Start, window.Span{Months: 2})
	if err != nil {
		b.Fatal(err)
	}
	type event struct {
		t  int64
		rc serve.ReceiptIn
	}
	var feed []event
	ds.Store.Each(func(h retail.History) bool {
		for _, r := range h.Receipts {
			items := make([]uint32, len(r.Items))
			for i, it := range r.Items {
				items[i] = uint32(it)
			}
			feed = append(feed, event{r.Time.UnixNano(), serve.ReceiptIn{
				Customer: uint64(h.Customer), Time: r.Time, Items: items,
			}})
		}
		return true
	})
	sort.Slice(feed, func(i, j int) bool { return feed[i].t < feed[j].t })
	for lo := 0; lo < len(feed); lo += batch {
		hi := lo + batch
		if hi > len(feed) {
			hi = len(feed)
		}
		req := serve.IngestRequest{Receipts: make([]serve.ReceiptIn, 0, hi-lo)}
		for _, ev := range feed[lo:hi] {
			req.Receipts = append(req.Receipts, ev.rc)
		}
		body, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, body)
	}
	return bodies, len(feed), grid
}

func serveConfig(grid window.Grid) serve.Config {
	return serve.Config{
		Monitor: stream.Config{Grid: grid, Model: core.Options{Alpha: 2}, Beta: 0.6, WarmupWindows: 3},
	}
}

// BenchmarkServeIngest measures the daemon's ingestion path end to end:
// HTTP decode, stale filter, bounded enqueue, drain into the sharded
// monitor, and the shutdown barrier. Batches are time-ordered, so this is
// the serving twin of BenchmarkMonitorIngest.
func BenchmarkServeIngest(b *testing.B) {
	bodies, receipts, grid := serveBodies(b, 500)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			b.ReportMetric(float64(receipts), "receipts/op")
			for i := 0; i < b.N; i++ {
				cfg := serveConfig(grid)
				cfg.Shards = shards
				s, err := serve.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				h := s.Handler()
				for _, body := range bodies {
					w := httptest.NewRecorder()
					h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/receipts", bytes.NewReader(body)))
					if w.Code != 200 {
						b.Fatalf("status %d: %s", w.Code, w.Body.String())
					}
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeQuery measures the read path against a fully ingested
// daemon: per-customer stability lookups and alert-log pages.
func BenchmarkServeQuery(b *testing.B) {
	bodies, _, grid := serveBodies(b, 500)
	ds := sharedDataset(b)
	s, err := serve.New(serveConfig(grid))
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	for _, body := range bodies {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/receipts", bytes.NewReader(body)))
		if w.Code != 200 {
			b.Fatal(w.Code)
		}
	}
	if err := s.Close(); err != nil { // drain so queries hit settled state
		b.Fatal(err)
	}
	ids := ds.Store.Customers()
	b.Run("stability", func(b *testing.B) {
		b.ReportMetric(1, "scores/op")
		for i := 0; i < b.N; i++ {
			target := fmt.Sprintf("/v1/customers/%d/stability", ids[i%len(ids)])
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest("GET", target, nil))
			if w.Code != 200 && w.Code != 404 {
				b.Fatal(w.Code)
			}
		}
	})
	// Batch fan-in: one POST scores `size` customers in one lock
	// acquisition. scores/op lets benchjson derive scores/sec and compare
	// directly against the single-GET subbench above.
	for _, size := range []int{16, 128} {
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			for i := 0; i < size; i++ {
				if err := enc.Encode(serve.BatchStabilityQuery{Customer: uint64(ids[i%len(ids)])}); err != nil {
					b.Fatal(err)
				}
			}
			body := buf.Bytes()
			b.ReportAllocs()
			b.ResetTimer() // clears extra metrics, so report after it
			b.ReportMetric(float64(size), "scores/op")
			for i := 0; i < b.N; i++ {
				w := httptest.NewRecorder()
				h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/stability:batch", bytes.NewReader(body)))
				if w.Code != 200 {
					b.Fatal(w.Code)
				}
			}
		})
	}
	b.Run("alerts-page", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/alerts?max=100", nil))
			if w.Code != 200 {
				b.Fatal(w.Code)
			}
		}
	})
}
