// Package core implements the paper's contribution: the customer stability
// model for individual-level attrition detection and explanation.
//
// For customer i with windowed database Dwi (package window), and for each
// item p with c(k) = number of windows before window k containing p and
// l(k) = number of windows before k not containing p:
//
//	significance  S(p,k) = α^(c(k)−l(k))   if c(k) > 0, else 0
//	stability     Stability_i^k = Σ_{p∈uk} S(p,k) / Σ_{p∈I} S(p,k)
//
// Stability is 1 when every previously-significant product shows up in the
// current window and decreases in proportion to the significance of the
// products that are missing. The most significant missing product,
// argmax_{p∉uk} S(p,k), explains the decrease (extended here to the top-j
// missing set, as the paper notes it can be).
//
// Numerical note: every prior window contains or lacks p, so
// c(k)+l(k) = W(k), the number of counted prior windows, and the exponent
// is net = c−l = 2c−W. Raw α^net overflows float64 for long histories, so
// stability is always computed as a max-shifted ratio (exact — numerator
// and denominator share the shift) and explanations expose the exponent and
// the log-significance rather than raw powers.
//
// Invariance note (a finding of this reproduction): because the stability
// is a ratio of sums of α^(2c−W) terms, the per-customer factor α^(−W) —
// the only place l(k) enters — cancels between numerator and denominator.
// Stability therefore depends on the c-counts alone: it is provably
// invariant to the prior-window CountPolicy, and so are blame Shares,
// detections and AUROC. The policy changes only the *absolute* significance
// scale reported in explanations (Blame.Net, Blame.LogSignificance), never
// their order. EXT-4 in EXPERIMENTS.md verifies this empirically;
// TestPolicyInvarianceOfStability verifies it in code.
package core

import (
	"fmt"
	"math"
)

// Significance returns S = α^(c−l) when c > 0, else 0. It returns +Inf on
// overflow for very long histories; prefer LogSignificance or the Tracker's
// shifted arithmetic for anything quantitative.
func Significance(alpha float64, c, l int) float64 {
	if c <= 0 {
		return 0
	}
	return math.Pow(alpha, float64(c-l))
}

// LogSignificance returns ln S = (c−l)·ln α and ok=true when c > 0;
// ok=false (and −Inf) when the item was never bought (S = 0).
func LogSignificance(alpha float64, c, l int) (logS float64, ok bool) {
	if c <= 0 {
		return math.Inf(-1), false
	}
	return float64(c-l) * math.Log(alpha), true
}

// CountPolicy selects which windows count as "prior windows" for c and l.
type CountPolicy int8

const (
	// CountFromFirstSeen starts counting at the customer's first non-empty
	// window: leading empty windows (before the customer ever bought
	// anything) increment neither c nor l. This is the default; it avoids
	// pre-penalizing customers whose histories are materialized from a
	// global origin that precedes their first purchase.
	CountFromFirstSeen CountPolicy = iota
	// CountFromOrigin counts every observed window, including leading empty
	// ones — the literal reading of the formula over a window grid anchored
	// at the dataset origin.
	CountFromOrigin
)

// String names the policy.
func (p CountPolicy) String() string {
	switch p {
	case CountFromFirstSeen:
		return "first-seen"
	case CountFromOrigin:
		return "origin"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseCountPolicy converts a policy name produced by String.
func ParseCountPolicy(s string) (CountPolicy, error) {
	switch s {
	case "first-seen":
		return CountFromFirstSeen, nil
	case "origin":
		return CountFromOrigin, nil
	}
	return 0, fmt.Errorf("core: unknown count policy %q", s)
}

// Options parameterize the model.
type Options struct {
	// Alpha is the significance base α. The paper requires α > 1 (so that
	// items gain significance as they recur) and selects α = 2 by
	// cross-validation.
	Alpha float64
	// Policy selects the prior-window counting convention.
	Policy CountPolicy
	// MaxBlame caps the number of missing items reported per window in
	// explanation results (0 = no cap). Stability itself is unaffected.
	MaxBlame int
}

// DefaultOptions returns the paper's published configuration: α = 2,
// first-seen counting, uncapped explanations.
func DefaultOptions() Options {
	return Options{Alpha: 2, Policy: CountFromFirstSeen}
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	if !(o.Alpha > 1) || math.IsInf(o.Alpha, 1) || math.IsNaN(o.Alpha) {
		return fmt.Errorf("core: alpha must be a finite value > 1, got %v", o.Alpha)
	}
	switch o.Policy {
	case CountFromFirstSeen, CountFromOrigin:
	default:
		return fmt.Errorf("core: invalid count policy %d", int(o.Policy))
	}
	if o.MaxBlame < 0 {
		return fmt.Errorf("core: MaxBlame must be >= 0, got %d", o.MaxBlame)
	}
	return nil
}
