package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/gautrais/stability/internal/retail"
)

// determinismWindows builds a deterministic feed of large, varying baskets —
// enough distinct items that a randomized summation order would show up in
// the last ULP of the stability ratio.
func determinismWindows() []retail.Basket {
	rng := rand.New(rand.NewSource(99))
	windows := make([]retail.Basket, 40)
	for k := range windows {
		items := make([]retail.ItemID, 0, 160)
		for p := 1; p <= 200; p++ {
			if rng.Float64() < 0.7 {
				items = append(items, retail.ItemID(p))
			}
		}
		windows[k] = retail.NewBasket(items)
	}
	return windows
}

// TestTrackerReplayBitDeterministic replays the same feed through two
// trackers and requires bit-identical stabilities and blame shares. The
// tracker iterates its counters in canonical (ascending item) order, so
// the non-associative float sums cannot vary run to run the way
// randomized map iteration would.
func TestTrackerReplayBitDeterministic(t *testing.T) {
	feed := determinismWindows()
	a, err := NewTracker(Options{Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTracker(Options{Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range feed {
		ra, rb := a.Observe(w), b.Observe(w)
		if ra.Stability != rb.Stability {
			t.Fatalf("window %d: stability %v != %v", k, ra.Stability, rb.Stability)
		}
		if len(ra.Missing) != len(rb.Missing) {
			t.Fatalf("window %d: blame lengths differ", k)
		}
		for i := range ra.Missing {
			if ra.Missing[i] != rb.Missing[i] {
				t.Fatalf("window %d blame %d: %+v != %+v", k, i, ra.Missing[i], rb.Missing[i])
			}
		}
	}
}

// TestTrackerRestoreBitDeterministic snapshots a tracker mid-stream,
// restores it, and requires the restored tracker to produce bit-identical
// results to the live one for the rest of the feed — the canonical
// iteration order survives the snapshot round-trip.
func TestTrackerRestoreBitDeterministic(t *testing.T) {
	feed := determinismWindows()
	live, err := NewTracker(Options{Alpha: 2, MaxBlame: 10})
	if err != nil {
		t.Fatal(err)
	}
	cut := len(feed) / 2
	for _, w := range feed[:cut] {
		live.Observe(w)
	}
	var buf bytes.Buffer
	if err := live.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadTrackerSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range feed[cut:] {
		rl, rr := live.Observe(w), restored.Observe(w)
		if rl.Stability != rr.Stability {
			t.Fatalf("window %d: live %v != restored %v", cut+k, rl.Stability, rr.Stability)
		}
		for i := range rl.Missing {
			if rl.Missing[i] != rr.Missing[i] {
				t.Fatalf("window %d blame %d: live %+v != restored %+v", cut+k, i, rl.Missing[i], rr.Missing[i])
			}
		}
	}
}
