package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/gautrais/stability/internal/retail"
)

// TestSharedSigTableMatchesPrivate drives two trackers over identical
// random histories — one on the process-wide shared table, one on a fresh
// private table — while a third tracker with a *different* history churns
// the shared table in between, forcing it to grow in an order the private
// table never sees. Every Result must be bit-identical: the significance
// terms are a pure function of (α, deficit), so which tracker grew the
// table, and to what depth, must be unobservable in scored output.
func TestSharedSigTableMatchesPrivate(t *testing.T) {
	cases := []Options{
		{Alpha: 2},
		{Alpha: 2, Policy: CountFromOrigin},
		{Alpha: 1.1, MaxBlame: 4},
		{Alpha: 7.5, Policy: CountFromOrigin, MaxBlame: 2},
	}
	for _, opts := range cases {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			shared, err := NewTracker(opts)
			if err != nil {
				t.Fatal(err)
			}
			private, err := NewTrackerWithSigTable(opts, NewSigTable(opts.Alpha))
			if err != nil {
				t.Fatal(err)
			}
			churn, err := NewTracker(opts) // same shared table as `shared`
			if err != nil {
				t.Fatal(err)
			}
			if shared.sig != churn.sig {
				t.Fatal("two NewTracker trackers with equal α should share one table")
			}
			if shared.sig == private.sig {
				t.Fatal("private table leaked into the shared registry")
			}
			universe := 3 + rng.Intn(50)
			churnRng := rand.New(rand.NewSource(seed + 1000))
			for k := 0; k < 60; k++ {
				// Churn grows the shared table with an unrelated, sparser
				// history (larger deficits) before the tracked observation.
				churn.Observe(randomBasket(churnRng, universe*3))
				var b retail.Basket
				if rng.Intn(8) != 0 {
					b = randomBasket(rng, universe)
				} else {
					b = retail.Basket{}
				}
				got, want := shared.Observe(b), private.Observe(b)
				if !equalResults(got, want) {
					t.Fatalf("opts %+v seed %d window %d:\nshared  %+v\nprivate %+v",
						opts, seed, k, got, want)
				}
			}
		}
	}
}

// TestSigTableConcurrentGrowth grows one table from many goroutines in
// racing, overlapping order and then requires every memoized entry to be
// bit-identical to the direct math.Exp evaluation. Interleaved copy-on-grow
// publications must never produce an entry that differs from the canonical
// expression, or parallel workers sharing a table would diverge from
// sequential ones.
func TestSigTableConcurrentGrowth(t *testing.T) {
	const alpha = 1.37
	tab := NewSigTable(alpha)
	logA := math.Log(alpha)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				d := int32(rng.Intn(maxSigTerms + 64)) // past the cap too
				want := math.Exp(float64(-2*d) * logA)
				if got := tab.Term(d); got != want {
					t.Errorf("Term(%d) = %x, want %x", d, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	terms := tab.snapshot()
	if len(terms) > maxSigTerms {
		t.Fatalf("table grew past the cap: %d entries", len(terms))
	}
	for d, got := range terms {
		if want := math.Exp(float64(-2*int32(d)) * logA); got != want {
			t.Fatalf("entry %d = %x, want %x", d, got, want)
		}
	}
}

// TestSigTableZeroBoundary pins the underflow shortcut: zeroFrom must sit
// exactly where math.Exp starts returning +0, every deficit at or past it
// must come back as exactly +0 from both the table and the tracker's term
// path, and the deficit just below it must still match direct evaluation
// (non-zero). Tables whose terms never decay to zero must report
// sigZeroNever and keep evaluating directly.
func TestSigTableZeroBoundary(t *testing.T) {
	for _, alpha := range []float64{1.1, 1.37, 2, 7.5, 100} {
		tab := NewSigTable(alpha)
		logA := math.Log(alpha)
		z := tab.zeroFrom
		if z == sigZeroNever {
			t.Fatalf("α=%v: no zero boundary found", alpha)
		}
		if v := math.Exp(float64(-2*(z-1)) * logA); v == 0 {
			t.Fatalf("α=%v: term(%d) = 0 below the boundary", alpha, z-1)
		}
		if v := math.Exp(float64(-2*z) * logA); v != 0 {
			t.Fatalf("α=%v: term(%d) = %x at the boundary, want +0", alpha, z, v)
		}
		for _, d := range []int32{z - 1, z, z + 1, z + 1000, 1 << 30} {
			want := math.Exp(float64(-2*d) * logA)
			if got := tab.Term(d); got != want || math.Signbit(got) != math.Signbit(want) {
				t.Fatalf("α=%v: Term(%d) = %x, want %x", alpha, d, got, want)
			}
		}
		tr, err := NewTrackerWithSigTable(Options{Alpha: alpha}, tab)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []int32{z - 1, z, z + 7} {
			want := math.Exp(float64(-2*d) * logA)
			if got := tr.term(d); got != want {
				t.Fatalf("α=%v: tracker term(%d) = %x, want %x", alpha, d, got, want)
			}
		}
	}
	// α = 1: terms are constant 1, no boundary exists.
	if tab := NewSigTable(1); tab.zeroFrom != sigZeroNever {
		t.Fatalf("α=1: zeroFrom = %d, want sigZeroNever", tab.zeroFrom)
	} else if got := tab.Term(maxSigTerms + 9); got != 1 {
		t.Fatalf("α=1: past-cap term = %v, want 1", got)
	}
}

// TestSharedSigTableRegistry pins the registry contract: one table per α,
// distinct tables across α.
func TestSharedSigTableRegistry(t *testing.T) {
	a, b := SharedSigTable(3.25), SharedSigTable(3.25)
	if a != b {
		t.Fatal("same α returned distinct shared tables")
	}
	if c := SharedSigTable(3.5); c == a {
		t.Fatal("distinct α shared one table")
	}
}
