package core

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTrackerSnapshotRoundTrip(t *testing.T) {
	// The restored tracker must continue exactly like the original: for
	// any prefix of windows, snapshot + restore + continue == continue.
	prop := func(seed int64, splitRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		windows := make([]int, 25)
		split := int(splitRaw % 25)

		orig, _ := NewTracker(Options{Alpha: 2, MaxBlame: 3})
		for i := 0; i < split; i++ {
			orig.Observe(randomBasket(r, 7))
			windows[i] = 1
		}
		var buf bytes.Buffer
		if err := orig.WriteSnapshot(&buf); err != nil {
			return false
		}
		restored, err := ReadTrackerSnapshot(&buf)
		if err != nil {
			return false
		}
		if restored.Windows() != orig.Windows() || restored.Seen() != orig.Seen() {
			return false
		}
		// Continue both on identical input.
		r2 := rand.New(rand.NewSource(seed + 999))
		for i := 0; i < 15; i++ {
			b := randomBasket(r2, 7)
			ra := orig.Observe(b)
			rb := restored.Observe(b)
			if math.Abs(ra.Stability-rb.Stability) > 1e-15 || ra.Defined != rb.Defined {
				return false
			}
			if math.Abs(ra.Drop-rb.Drop) > 1e-15 {
				return false
			}
			if len(ra.Missing) != len(rb.Missing) {
				return false
			}
			for j := range ra.Missing {
				if ra.Missing[j] != rb.Missing[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestTrackerSnapshotPreservesOptions(t *testing.T) {
	orig, _ := NewTracker(Options{Alpha: 3.5, Policy: CountFromOrigin, MaxBlame: 7})
	orig.Observe(basket(itemA))
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadTrackerSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Options() != orig.Options() {
		t.Fatalf("options: %+v vs %+v", restored.Options(), orig.Options())
	}
}

func TestTrackerSnapshotFreshTracker(t *testing.T) {
	orig, _ := NewTracker(Options{Alpha: 2})
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadTrackerSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Windows() != 0 || restored.Seen() != 0 {
		t.Fatalf("fresh restore: windows=%d seen=%d", restored.Windows(), restored.Seen())
	}
}

func TestReadTrackerSnapshotErrors(t *testing.T) {
	if _, err := ReadTrackerSnapshot(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadTrackerSnapshot(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncation at every prefix length must error, never panic.
	orig, _ := NewTracker(Options{Alpha: 2})
	orig.Observe(basket(itemA, itemB))
	orig.Observe(basket(itemA))
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadTrackerSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated snapshot (%d of %d bytes) accepted", cut, len(full))
		}
	}
	// Corrupt alpha (≤ 1) must be rejected by option validation.
	bad := append([]byte{}, full...)
	for i := 4; i < 12; i++ {
		bad[i] = 0
	}
	if _, err := ReadTrackerSnapshot(bytes.NewReader(bad)); err == nil {
		t.Fatal("zero alpha accepted")
	}
}
