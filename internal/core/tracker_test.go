package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gautrais/stability/internal/retail"
)

const (
	itemA = retail.ItemID(1)
	itemB = retail.ItemID(2)
	itemC = retail.ItemID(3)
)

func newTestTracker(t *testing.T, opts Options) *Tracker {
	t.Helper()
	tr, err := NewTracker(opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func basket(items ...retail.ItemID) retail.Basket {
	return retail.NewBasket(items)
}

// TestTrackerHandComputed walks a fully hand-derived example with α = 2:
//
//	W0 {A,B}: no prior history → stability 1 (undefined)
//	W1 {A}:   S(A)=S(B)=2^1   → stability 2/4 = 0.5, B missing
//	W2 {A,B}: S(A)=2^2 S(B)=2^0 → both present → 1
//	W3 {}:    S(A)=2^3 S(B)=2^1 → stability 0
//	W4 {B}:   S(A)=2^2 S(B)=2^0 → stability 1/5 = 0.2
func TestTrackerHandComputed(t *testing.T) {
	tr := newTestTracker(t, Options{Alpha: 2})

	r0 := tr.Observe(basket(itemA, itemB))
	if r0.Defined {
		t.Fatal("W0 should be undefined (no prior history)")
	}
	if r0.Stability != 1 {
		t.Fatalf("W0 stability = %v, want 1 by convention", r0.Stability)
	}
	if len(r0.NewItems) != 2 {
		t.Fatalf("W0 new items = %v", r0.NewItems)
	}
	if !r0.Counted {
		t.Fatal("W0 must be counted")
	}

	r1 := tr.Observe(basket(itemA))
	if !r1.Defined {
		t.Fatal("W1 should be defined")
	}
	if math.Abs(r1.Stability-0.5) > 1e-12 {
		t.Fatalf("W1 stability = %v, want 0.5", r1.Stability)
	}
	if len(r1.Missing) != 1 || r1.Missing[0].Item != itemB {
		t.Fatalf("W1 missing = %+v, want [B]", r1.Missing)
	}
	if r1.Missing[0].Net != 1 {
		t.Fatalf("W1 missing B net = %d, want 1", r1.Missing[0].Net)
	}
	if math.Abs(r1.Missing[0].Share-0.5) > 1e-12 {
		t.Fatalf("W1 missing B share = %v, want 0.5", r1.Missing[0].Share)
	}

	r2 := tr.Observe(basket(itemA, itemB))
	if math.Abs(r2.Stability-1) > 1e-12 {
		t.Fatalf("W2 stability = %v, want 1", r2.Stability)
	}
	if len(r2.Missing) != 0 {
		t.Fatalf("W2 missing = %+v", r2.Missing)
	}
	if len(r2.NewItems) != 0 {
		t.Fatalf("W2 new items = %v", r2.NewItems)
	}

	r3 := tr.Observe(basket())
	if math.Abs(r3.Stability-0) > 1e-12 {
		t.Fatalf("W3 stability = %v, want 0", r3.Stability)
	}
	if math.Abs(r3.Drop-1) > 1e-12 {
		t.Fatalf("W3 drop = %v, want 1", r3.Drop)
	}
	// Missing sorted by significance: A (net 3) before B (net 1).
	if len(r3.Missing) != 2 || r3.Missing[0].Item != itemA || r3.Missing[1].Item != itemB {
		t.Fatalf("W3 missing = %+v", r3.Missing)
	}
	if math.Abs(r3.Missing[0].Share-0.8) > 1e-12 || math.Abs(r3.Missing[1].Share-0.2) > 1e-12 {
		t.Fatalf("W3 shares = %v, %v, want 0.8, 0.2", r3.Missing[0].Share, r3.Missing[1].Share)
	}

	r4 := tr.Observe(basket(itemB))
	if math.Abs(r4.Stability-0.2) > 1e-12 {
		t.Fatalf("W4 stability = %v, want 0.2", r4.Stability)
	}
	if tr.Windows() != 5 || tr.Seen() != 2 {
		t.Fatalf("tracker state: windows=%d seen=%d", tr.Windows(), tr.Seen())
	}
}

func TestTrackerNewItemHasNoEffect(t *testing.T) {
	// A first-time item has c=0 ⇒ S=0: it must change nothing about the
	// current window's stability.
	a := newTestTracker(t, Options{Alpha: 2})
	b := newTestTracker(t, Options{Alpha: 2})
	warmup := []retail.Basket{basket(itemA, itemB), basket(itemA), basket(itemA, itemB)}
	for _, w := range warmup {
		a.Observe(w)
		b.Observe(w)
	}
	ra := a.Observe(basket(itemA))
	rb := b.Observe(basket(itemA, itemC)) // C never seen before
	if math.Abs(ra.Stability-rb.Stability) > 1e-12 {
		t.Fatalf("new item changed stability: %v vs %v", ra.Stability, rb.Stability)
	}
	if len(rb.NewItems) != 1 || rb.NewItems[0] != itemC {
		t.Fatalf("NewItems = %v", rb.NewItems)
	}
}

func TestTrackerLeadingEmptyPolicies(t *testing.T) {
	// Under CountFromFirstSeen, leading empty windows are not counted;
	// under CountFromOrigin they are — changing significance exponents.
	fs := newTestTracker(t, Options{Alpha: 2, Policy: CountFromFirstSeen})
	or := newTestTracker(t, Options{Alpha: 2, Policy: CountFromOrigin})

	rFS := fs.Observe(basket())
	rOR := or.Observe(basket())
	if rFS.Counted {
		t.Fatal("first-seen: leading empty window counted")
	}
	if !rOR.Counted {
		t.Fatal("origin: leading empty window not counted")
	}

	fs.Observe(basket(itemA))
	or.Observe(basket(itemA))

	netFS, seenFS := fs.SignificanceOf(itemA)
	netOR, seenOR := or.SignificanceOf(itemA)
	if !seenFS || !seenOR {
		t.Fatal("item A not seen")
	}
	if netFS != 1 { // c=1, W=1 → 2·1−1
		t.Fatalf("first-seen net = %d, want 1", netFS)
	}
	if netOR != 0 { // c=1, W=2 → 2·1−2
		t.Fatalf("origin net = %d, want 0", netOR)
	}
}

func TestTrackerEmptyAfterStartCountsUnderBothPolicies(t *testing.T) {
	for _, policy := range []CountPolicy{CountFromFirstSeen, CountFromOrigin} {
		tr := newTestTracker(t, Options{Alpha: 2, Policy: policy})
		tr.Observe(basket(itemA))
		r := tr.Observe(basket())
		if !r.Counted {
			t.Fatalf("policy %v: post-start empty window not counted", policy)
		}
		if tr.Windows() < 2 {
			t.Fatalf("policy %v: windows = %d", policy, tr.Windows())
		}
	}
}

func TestTrackerSignificanceOfUnknown(t *testing.T) {
	tr := newTestTracker(t, Options{Alpha: 2})
	if _, seen := tr.SignificanceOf(itemA); seen {
		t.Fatal("unknown item reported seen")
	}
}

func TestTrackerMaxBlame(t *testing.T) {
	tr := newTestTracker(t, Options{Alpha: 2, MaxBlame: 2})
	tr.Observe(basket(1, 2, 3, 4, 5))
	r := tr.Observe(basket())
	if len(r.Missing) != 2 {
		t.Fatalf("MaxBlame=2 but missing = %d items", len(r.Missing))
	}
}

func TestTrackerBlameOrderingAndTieBreak(t *testing.T) {
	tr := newTestTracker(t, Options{Alpha: 2})
	tr.Observe(basket(1, 2, 3)) // all three: c=1
	tr.Observe(basket(1))       // item1 c=2; 2,3 c=1
	r := tr.Observe(basket())
	if len(r.Missing) != 3 {
		t.Fatalf("missing = %+v", r.Missing)
	}
	if r.Missing[0].Item != 1 {
		t.Fatalf("most significant missing = %d, want 1", r.Missing[0].Item)
	}
	// Items 2 and 3 tie on significance; identifier breaks the tie.
	if r.Missing[1].Item != 2 || r.Missing[2].Item != 3 {
		t.Fatalf("tie break order = %d, %d, want 2, 3", r.Missing[1].Item, r.Missing[2].Item)
	}
}

func TestTrackerObserveStabilityMatchesObserve(t *testing.T) {
	full := newTestTracker(t, Options{Alpha: 2})
	fast := newTestTracker(t, Options{Alpha: 2})
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		items := make([]retail.ItemID, r.Intn(6))
		for j := range items {
			items[j] = retail.ItemID(r.Intn(10) + 1)
		}
		b := retail.NewBasket(items)
		rf := full.Observe(b)
		rq := fast.ObserveStability(b)
		if math.Abs(rf.Stability-rq.Stability) > 1e-12 || rf.Defined != rq.Defined {
			t.Fatalf("window %d: full %v/%v fast %v/%v", i, rf.Stability, rf.Defined, rq.Stability, rq.Defined)
		}
		if len(rq.Missing) != 0 || len(rq.NewItems) != 0 {
			t.Fatalf("fast path built explanations")
		}
	}
}

func TestTrackerReset(t *testing.T) {
	tr := newTestTracker(t, Options{Alpha: 2})
	tr.Observe(basket(itemA))
	tr.Observe(basket(itemA))
	tr.Reset()
	if tr.Seen() != 0 || tr.Windows() != 0 {
		t.Fatalf("after reset: seen=%d windows=%d", tr.Seen(), tr.Windows())
	}
	r := tr.Observe(basket(itemB))
	if r.Defined || r.Seq != 0 {
		t.Fatalf("after reset first observation: %+v", r)
	}
}

// --- property-based tests ---

func randomBasket(r *rand.Rand, universe int) retail.Basket {
	items := make([]retail.ItemID, r.Intn(universe+1))
	for j := range items {
		items[j] = retail.ItemID(r.Intn(universe) + 1)
	}
	return retail.NewBasket(items)
}

func TestTrackerStabilityBounds(t *testing.T) {
	prop := func(seed int64, alphaPick uint8) bool {
		alphas := []float64{1.1, 1.5, 2, 3, 8}
		alpha := alphas[int(alphaPick)%len(alphas)]
		tr, err := NewTracker(Options{Alpha: alpha})
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 60; i++ {
			res := tr.Observe(randomBasket(r, 8))
			if res.Stability < 0 || res.Stability > 1 {
				return false
			}
			if math.IsNaN(res.Stability) || math.IsInf(res.Stability, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTrackerFullBasketIsStable(t *testing.T) {
	// A window containing every previously-seen item always has
	// stability exactly 1.
	prop := func(seed int64) bool {
		tr, err := NewTracker(Options{Alpha: 2})
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		seen := map[retail.ItemID]bool{}
		for i := 0; i < 30; i++ {
			b := randomBasket(r, 6)
			for _, it := range b {
				seen[it] = true
			}
			tr.Observe(b)
		}
		all := make([]retail.ItemID, 0, len(seen))
		for it := range seen {
			all = append(all, it)
		}
		res := tr.Observe(retail.NewBasket(all))
		if len(seen) == 0 {
			return res.Stability == 1
		}
		return res.Defined && math.Abs(res.Stability-1) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTrackerSupersetNeverLowersStability(t *testing.T) {
	// Adding items to the final window can only raise (or keep) stability.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		history := make([]retail.Basket, 25)
		for i := range history {
			history[i] = randomBasket(r, 6)
		}
		u := randomBasket(r, 6)
		extra := retail.ItemID(r.Intn(6) + 1)
		v := u.Union(retail.Basket{extra})

		a, _ := NewTracker(Options{Alpha: 2})
		b, _ := NewTracker(Options{Alpha: 2})
		for _, h := range history {
			a.Observe(h)
			b.Observe(h)
		}
		ra := a.Observe(u)
		rb := b.Observe(v)
		return rb.Stability >= ra.Stability-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestTrackerMissingSharesExplainLoss(t *testing.T) {
	// The shares of missing items must sum to exactly the stability loss:
	// Σ_missing share = 1 − stability.
	prop := func(seed int64) bool {
		tr, _ := NewTracker(Options{Alpha: 2})
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 40; i++ {
			res := tr.Observe(randomBasket(r, 7))
			if !res.Defined {
				continue
			}
			var lost float64
			for _, m := range res.Missing {
				if m.Share < 0 {
					return false
				}
				lost += m.Share
			}
			if math.Abs(lost-(1-res.Stability)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTrackerLongHistoryNumericallyRobust(t *testing.T) {
	// 5,000 windows: raw α^net would overflow float64 at α=2 long before
	// this; the shifted ratio must stay finite and exact.
	tr := newTestTracker(t, Options{Alpha: 2})
	for i := 0; i < 5000; i++ {
		var b retail.Basket
		switch i % 3 {
		case 0:
			b = basket(itemA, itemB)
		case 1:
			b = basket(itemA)
		default:
			b = basket(itemA, itemC)
		}
		res := tr.Observe(b)
		if math.IsNaN(res.Stability) || math.IsInf(res.Stability, 0) {
			t.Fatalf("window %d: stability = %v", i, res.Stability)
		}
		if res.Stability < 0 || res.Stability > 1 {
			t.Fatalf("window %d: stability out of range: %v", i, res.Stability)
		}
	}
	// A, present in every window, dominates: a final window missing A must
	// score near zero; containing only A must score near one.
	a, _ := NewTracker(Options{Alpha: 2})
	for i := 0; i < 1000; i++ {
		a.Observe(basket(itemA))
	}
	res := a.Observe(basket(itemA))
	if math.Abs(res.Stability-1) > 1e-12 {
		t.Fatalf("stability = %v, want 1", res.Stability)
	}
	res = a.Observe(basket())
	if res.Stability != 0 {
		t.Fatalf("stability after losing the only item = %v, want 0", res.Stability)
	}
}

func TestTrackerDropTracksDecreases(t *testing.T) {
	tr := newTestTracker(t, Options{Alpha: 2})
	tr.Observe(basket(itemA, itemB))
	r1 := tr.Observe(basket(itemA, itemB)) // stability 1
	if r1.Drop != 0 {
		t.Fatalf("no-decrease drop = %v", r1.Drop)
	}
	r2 := tr.Observe(basket(itemA)) // stability 0.5-ish
	if r2.Drop <= 0 {
		t.Fatalf("decrease not recorded: %+v", r2)
	}
	r3 := tr.Observe(basket(itemA, itemB)) // recovers
	if r3.Drop != 0 {
		t.Fatalf("recovery recorded as drop: %v", r3.Drop)
	}
}

// TestPolicyInvarianceOfStability verifies the analytical property
// documented in the package comment: stability, shares and blame order are
// identical under both counting policies (the α^(−W) factor cancels in the
// ratio); only the absolute significance exponents differ.
func TestPolicyInvarianceOfStability(t *testing.T) {
	prop := func(seed int64, leadingEmpties uint8) bool {
		fs, _ := NewTracker(Options{Alpha: 2, Policy: CountFromFirstSeen})
		or, _ := NewTracker(Options{Alpha: 2, Policy: CountFromOrigin})
		r := rand.New(rand.NewSource(seed))
		// Leading empty windows are exactly where the policies diverge.
		for i := 0; i < int(leadingEmpties%6); i++ {
			fs.Observe(basket())
			or.Observe(basket())
		}
		divergedNet := false
		for i := 0; i < 30; i++ {
			b := randomBasket(r, 6)
			rf := fs.Observe(b)
			ro := or.Observe(b)
			if math.Abs(rf.Stability-ro.Stability) > 1e-12 || rf.Defined != ro.Defined {
				return false
			}
			if len(rf.Missing) != len(ro.Missing) {
				return false
			}
			for j := range rf.Missing {
				if rf.Missing[j].Item != ro.Missing[j].Item {
					return false // blame order must match
				}
				if math.Abs(rf.Missing[j].Share-ro.Missing[j].Share) > 1e-12 {
					return false // shares must match
				}
				if rf.Missing[j].Net != ro.Missing[j].Net {
					divergedNet = true // absolute exponents may differ
				}
			}
		}
		_ = divergedNet
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPolicyChangesAbsoluteSignificance pins down the one thing the policy
// does change: the exponent scale in explanations.
func TestPolicyChangesAbsoluteSignificance(t *testing.T) {
	fs := newTestTracker(t, Options{Alpha: 2, Policy: CountFromFirstSeen})
	or := newTestTracker(t, Options{Alpha: 2, Policy: CountFromOrigin})
	for i := 0; i < 3; i++ { // three leading empty windows
		fs.Observe(basket())
		or.Observe(basket())
	}
	fs.Observe(basket(itemA))
	or.Observe(basket(itemA))
	netFS, _ := fs.SignificanceOf(itemA)
	netOR, _ := or.SignificanceOf(itemA)
	if netFS <= netOR {
		t.Fatalf("first-seen net %d should exceed origin net %d after leading empties", netFS, netOR)
	}
}

func TestNewTrackerRejectsBadOptions(t *testing.T) {
	if _, err := NewTracker(Options{Alpha: 1}); err == nil {
		t.Fatal("alpha=1 accepted")
	}
	if _, err := NewTracker(Options{Alpha: 0.9}); err == nil {
		t.Fatal("alpha<1 accepted")
	}
}
