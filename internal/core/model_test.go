package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

func testGrid(t *testing.T) window.Grid {
	t.Helper()
	g, err := window.NewGrid(time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), window.Span{Months: 2})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// paperHistory builds a miniature of the paper's Figure-2 customer: items
// are bought every window until some stop. Items: 1=coffee, 2=milk,
// 3=cheese, 4=bread (never dropped).
func paperHistory(g window.Grid, totalWindows, coffeeStops, milkCheeseStop int) retail.History {
	h := retail.History{Customer: 42}
	for k := 0; k < totalWindows; k++ {
		start, _ := g.Bounds(k)
		items := []retail.ItemID{4}
		if k < coffeeStops {
			items = append(items, 1)
		}
		if k < milkCheeseStop {
			items = append(items, 2, 3)
		}
		h.Receipts = append(h.Receipts, retail.Receipt{
			Time:  start.AddDate(0, 0, 3),
			Items: retail.NewBasket(items),
			Spend: float64(len(items)),
		})
	}
	return h
}

func TestModelAnalyzePaperScenario(t *testing.T) {
	g := testGrid(t)
	m, err := New(Options{Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := paperHistory(g, 12, 8, 10)
	wd, err := window.Windowize(h, g, -1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Analyze(wd)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 12 {
		t.Fatalf("series length = %d", s.Len())
	}

	// Stability 1 through window 7 (everything present).
	for k := 1; k < 8; k++ {
		v, ok := s.StabilityAt(k)
		if !ok || math.Abs(v-1) > 1e-12 {
			t.Fatalf("window %d stability = %v, %v", k, v, ok)
		}
	}
	// Window 8: coffee missing → drop, blamed on coffee.
	p8, _ := s.At(8)
	if p8.Stability >= 1 {
		t.Fatalf("window 8 stability = %v, want < 1", p8.Stability)
	}
	if len(p8.Missing) == 0 || p8.Missing[0].Item != 1 {
		t.Fatalf("window 8 blame = %+v, want coffee first", p8.Missing)
	}
	// Window 10: milk+cheese also missing → sharper drop.
	p10, _ := s.At(10)
	if p10.Stability >= p8.Stability {
		t.Fatalf("window 10 stability %v not below window 8 %v", p10.Stability, p8.Stability)
	}
	blamed := map[retail.ItemID]bool{}
	for _, b := range p10.Missing[:3] {
		blamed[b.Item] = true
	}
	if !blamed[2] || !blamed[3] {
		t.Fatalf("window 10 top blame = %+v, want milk and cheese present", p10.Missing[:3])
	}

	// Drops extraction mirrors the two events.
	drops := s.Drops(0.01, 3)
	if len(drops) < 2 {
		t.Fatalf("drops = %+v, want >= 2 events", drops)
	}
	if drops[0].GridIndex != 8 {
		t.Fatalf("first drop at window %d, want 8", drops[0].GridIndex)
	}
}

func TestModelAnalyzeStabilityMatchesAnalyze(t *testing.T) {
	g := testGrid(t)
	m, _ := New(Options{Alpha: 2})
	h := paperHistory(g, 10, 6, 8)
	wd, _ := window.Windowize(h, g, -1)
	full, err := m.Analyze(wd)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.AnalyzeStability(wd)
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() != fast.Len() {
		t.Fatal("length mismatch")
	}
	for i := range full.Points {
		if math.Abs(full.Points[i].Stability-fast.Points[i].Stability) > 1e-12 {
			t.Fatalf("point %d: %v vs %v", i, full.Points[i].Stability, fast.Points[i].Stability)
		}
	}
}

// TestModelAnalyzeWithMatchesAnalyze: scoring many customers through one
// reused tracker must be bit-identical to fresh-tracker analysis, in both
// explain modes and regardless of what the tracker held before.
func TestModelAnalyzeWithMatchesAnalyze(t *testing.T) {
	g := testGrid(t)
	m, _ := New(Options{Alpha: 2, MaxBlame: 5})
	tr, err := NewTracker(m.Options())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		h := paperHistory(g, 6+trial, 4+trial%3, 5+trial%4)
		wd, err := window.Windowize(h, g, -1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.Analyze(wd)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.AnalyzeWith(tr, wd)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Points) != len(want.Points) {
			t.Fatalf("trial %d: %d points, want %d", trial, len(got.Points), len(want.Points))
		}
		for i := range want.Points {
			pw, pg := want.Points[i], got.Points[i]
			if pw.GridIndex != pg.GridIndex || pw.Stability != pg.Stability ||
				pw.Defined != pg.Defined || pw.Drop != pg.Drop || len(pw.Missing) != len(pg.Missing) {
				t.Fatalf("trial %d point %d: reuse %+v, fresh %+v", trial, i, pg, pw)
			}
			for j := range pw.Missing {
				if pw.Missing[j] != pg.Missing[j] {
					t.Fatalf("trial %d point %d blame %d differs", trial, i, j)
				}
			}
		}
		wantFast, err := m.AnalyzeStability(wd)
		if err != nil {
			t.Fatal(err)
		}
		gotFast, err := m.AnalyzeStabilityWith(tr, wd)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantFast.Points {
			if wantFast.Points[i].Stability != gotFast.Points[i].Stability {
				t.Fatalf("trial %d fast point %d: %v vs %v", trial, i,
					gotFast.Points[i].Stability, wantFast.Points[i].Stability)
			}
		}
	}
}

func TestModelAnalyzeWithRejectsForeignTracker(t *testing.T) {
	g := testGrid(t)
	m, _ := New(Options{Alpha: 2})
	wd, _ := window.Windowize(paperHistory(g, 4, 3, 3), g, -1)
	if _, err := m.AnalyzeWith(nil, wd); err == nil {
		t.Fatal("nil tracker accepted")
	}
	other, _ := NewTracker(Options{Alpha: 3})
	if _, err := m.AnalyzeWith(other, wd); err == nil {
		t.Fatal("tracker with mismatched options accepted")
	}
	if _, err := m.AnalyzeStabilityWith(other, wd); err == nil {
		t.Fatal("fast path accepted mismatched options")
	}
}

func TestSeriesAccessors(t *testing.T) {
	g := testGrid(t)
	m, _ := New(Options{Alpha: 2})
	h := paperHistory(g, 6, 6, 6)
	wd, _ := window.Windowize(h, g, -1)
	s, _ := m.Analyze(wd)

	if _, ok := s.At(-1); ok {
		t.Fatal("At(-1) ok")
	}
	if _, ok := s.At(6); ok {
		t.Fatal("At(len) ok")
	}
	if _, ok := s.StabilityAt(99); ok {
		t.Fatal("StabilityAt(99) ok")
	}
	var empty Series
	if _, ok := empty.At(0); ok {
		t.Fatal("empty series At ok")
	}
	if !strings.Contains(s.String(), "customer=42") {
		t.Fatalf("String() = %q", s.String())
	}
	if !strings.Contains(empty.String(), "windows=[0,-1]") && !strings.Contains(empty.String(), "windows=[0,") {
		// Just exercise it; exact format free.
		_ = empty.String()
	}
}

func TestDetect(t *testing.T) {
	g := testGrid(t)
	m, _ := New(Options{Alpha: 2})
	h := paperHistory(g, 10, 5, 10)
	wd, _ := window.Windowize(h, g, -1)
	s, _ := m.Analyze(wd)

	dets := Detect(s, 0.9)
	if len(dets) != s.Len() {
		t.Fatalf("detections = %d, want %d", len(dets), s.Len())
	}
	for i, d := range dets {
		want := s.Points[i].Stability <= 0.9
		if d.Defecting != want {
			t.Fatalf("window %d: defecting=%v stability=%v", d.GridIndex, d.Defecting, d.Stability)
		}
	}
	// β=0 flags nothing (stability > 0 in this scenario is mostly true,
	// stability==0 would flag) — exercise the boundary semantics:
	// Stability > β ⇒ loyal.
	all := Detect(s, 1)
	flagged := 0
	for _, d := range all {
		if d.Defecting {
			flagged++
		}
	}
	if flagged != s.Len() {
		t.Fatalf("beta=1 flagged %d of %d (stability ≤ 1 always)", flagged, s.Len())
	}
}

func TestSeriesMinStability(t *testing.T) {
	g := testGrid(t)
	m, _ := New(Options{Alpha: 2})
	h := paperHistory(g, 10, 4, 10)
	wd, _ := window.Windowize(h, g, -1)
	s, _ := m.Analyze(wd)
	v, k, ok := s.MinStability()
	if !ok {
		t.Fatal("no defined minimum")
	}
	for _, p := range s.Points {
		if p.Defined && p.Stability < v {
			t.Fatalf("found lower stability %v at %d than reported min %v at %d", p.Stability, p.GridIndex, v, k)
		}
	}
	var empty Series
	if _, _, ok := empty.MinStability(); ok {
		t.Fatal("empty series has a minimum")
	}
}

func TestSeriesDropsTopJAndThreshold(t *testing.T) {
	g := testGrid(t)
	m, _ := New(Options{Alpha: 2})
	h := paperHistory(g, 12, 6, 8)
	wd, _ := window.Windowize(h, g, -1)
	s, _ := m.Analyze(wd)

	all := s.Drops(0, 0)
	capped := s.Drops(0, 1)
	if len(all) != len(capped) {
		t.Fatalf("topJ changed event count: %d vs %d", len(all), len(capped))
	}
	for i := range capped {
		if len(capped[i].Blame) > 1 {
			t.Fatalf("event %d blame not capped: %d", i, len(capped[i].Blame))
		}
	}
	// A huge threshold filters everything.
	if got := s.Drops(2, 3); len(got) != 0 {
		t.Fatalf("threshold 2 kept %d events", len(got))
	}
}

func TestModelRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{Alpha: 1}); err == nil {
		t.Fatal("alpha=1 accepted")
	}
}

func TestAnalyzeEmptyWindowed(t *testing.T) {
	g := testGrid(t)
	m, _ := New(Options{Alpha: 2})
	wd, err := window.Windowize(retail.History{Customer: 5}, g, -1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Analyze(wd)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("empty history produced %d points", s.Len())
	}
}
