package core
