//go:build !race

// Allocation-regression guards. The columnar tracker's steady state —
// scoring a window whose items have all been seen before — must not
// allocate at all; these tests pin that with testing.AllocsPerRun so the
// property can't silently erode. (Excluded under -race: the detector's
// instrumentation inflates allocation counts.)
package core

import (
	"testing"
	"time"

	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

func steadyBaskets() (retail.Basket, retail.Basket) {
	a := make([]retail.ItemID, 0, 50)
	b := make([]retail.ItemID, 0, 50)
	for p := 1; p <= 50; p++ {
		a = append(a, retail.ItemID(p))
		b = append(b, retail.ItemID(p+50))
	}
	return retail.NewBasket(a), retail.NewBasket(b)
}

// TestObserveStabilityZeroAllocSteadyState: once the repertoire and the
// significance memo have stabilized, ObserveStability is allocation-free.
// The feed alternates two disjoint 50-item baskets, so the count deficit
// maxC−c stays bounded (≤1) and the memo table stops growing — the
// realistic shape of a settled customer who buys from a stable repertoire.
func TestObserveStabilityZeroAllocSteadyState(t *testing.T) {
	a, b := steadyBaskets()
	tr, err := NewTracker(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ { // warm: repertoire, column capacity, memo table
		if i%2 == 0 {
			tr.ObserveStability(a)
		} else {
			tr.ObserveStability(b)
		}
	}
	n := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if n%2 == 0 {
			tr.ObserveStability(a)
		} else {
			tr.ObserveStability(b)
		}
		n++
	})
	if allocs != 0 {
		t.Fatalf("steady-state ObserveStability allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestObserveStabilityZeroAllocEmptyWindows: the attrition signal itself —
// empty windows after history — must also be allocation-free.
func TestObserveStabilityZeroAllocEmptyWindows(t *testing.T) {
	a, _ := steadyBaskets()
	tr, err := NewTracker(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		tr.ObserveStability(a)
	}
	empty := retail.Basket{}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.ObserveStability(empty)
	})
	if allocs != 0 {
		t.Fatalf("empty-window ObserveStability allocates %.2f allocs/op, want 0", allocs)
	}
}

// testWindowed builds a windowed database of n windows alternating between
// baskets a and b.
func testWindowed(t *testing.T, n int, a, b retail.Basket) window.Windowed {
	t.Helper()
	g, err := window.NewGrid(time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), window.Span{Months: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := retail.History{Customer: 1}
	for k := 0; k < n; k++ {
		items := a
		if k%2 == 1 {
			items = b
		}
		start, _ := g.Bounds(k)
		h.Receipts = append(h.Receipts, retail.Receipt{Time: start.Add(time.Hour), Items: items})
	}
	wd, err := window.Windowize(h, g, n-1)
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

// TestAnalyzeWithReuseAllocBudget pins the per-customer allocation budget
// of the tracker-reuse scoring path (Model.AnalyzeStabilityWith on a
// caller-owned tracker): after warm-up, the only allocation is the returned
// Series.Points slice — one alloc per customer.
func TestAnalyzeWithReuseAllocBudget(t *testing.T) {
	a, b := steadyBaskets()
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTracker(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	wd := testWindowed(t, 14, a, b)
	if _, err := m.AnalyzeStabilityWith(tr, wd); err != nil {
		t.Fatal(err) // warm the tracker's columns and memo
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := m.AnalyzeStabilityWith(tr, wd); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("per-customer AnalyzeStabilityWith allocates %.2f allocs/op, want <= 1 (the Points slice)", allocs)
	}
}
