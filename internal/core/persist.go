package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/gautrais/stability/internal/retail"
)

// Tracker state snapshot format (little-endian, varint-heavy):
//
//	magic "STK1" (4 bytes)
//	float64 alpha (IEEE 754 bits)
//	byte    policy
//	uvarint maxBlame
//	uvarint windows (W)
//	byte    started (0/1)
//	uvarint seq
//	byte    prevDefined (0/1)
//	float64 prevStability
//	uvarint itemCount
//	per item (ascending ItemID): uvarint idDelta, uvarint c
//
// Snapshots let a long-running monitor persist per-customer model state
// across restarts without replaying the full receipt history.
var trackerMagic = [4]byte{'S', 'T', 'K', '1'}

// WriteSnapshot serializes the tracker's full state.
func (t *Tracker) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(trackerMagic[:]); err != nil {
		return fmt.Errorf("core: write magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putF := func(v float64) error {
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(v))
		_, err := bw.Write(buf[:8])
		return err
	}
	putB := func(v bool) error {
		b := byte(0)
		if v {
			b = 1
		}
		return bw.WriteByte(b)
	}
	if err := putF(t.opts.Alpha); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(t.opts.Policy)); err != nil {
		return err
	}
	if err := putU(uint64(t.opts.MaxBlame)); err != nil {
		return err
	}
	if err := putU(uint64(t.windows)); err != nil {
		return err
	}
	if err := putB(t.started); err != nil {
		return err
	}
	if err := putU(uint64(t.seq)); err != nil {
		return err
	}
	if err := putB(t.prevDefined); err != nil {
		return err
	}
	if err := putF(t.prevStability); err != nil {
		return err
	}
	if err := putU(uint64(len(t.items))); err != nil {
		return err
	}
	// The item column is maintained in ascending id order — exactly the
	// snapshot's wire order.
	prev := uint64(0)
	for i, id := range t.items {
		if err := putU(uint64(id) - prev); err != nil {
			return err
		}
		prev = uint64(id)
		if err := putU(uint64(t.counts[i])); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrackerSnapshot restores a tracker from a snapshot written by
// WriteSnapshot. When r is already a *bufio.Reader it is used directly —
// callers embedding tracker snapshots in larger streams (package stream)
// depend on no read-ahead beyond the snapshot's own bytes.
func ReadTrackerSnapshot(r io.Reader) (*Tracker, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: read magic: %w", err)
	}
	if magic != trackerMagic {
		return nil, fmt.Errorf("core: bad magic %q (not a STK1 snapshot)", magic[:])
	}
	var f8 [8]byte
	getF := func() (float64, error) {
		if _, err := io.ReadFull(br, f8[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(f8[:])), nil
	}
	getB := func() (bool, error) {
		b, err := br.ReadByte()
		return b != 0, err
	}

	alpha, err := getF()
	if err != nil {
		return nil, fmt.Errorf("core: read alpha: %w", err)
	}
	policyByte, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("core: read policy: %w", err)
	}
	maxBlame, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: read maxBlame: %w", err)
	}
	opts := Options{Alpha: alpha, Policy: CountPolicy(policyByte), MaxBlame: int(maxBlame)}
	t, err := NewTracker(opts)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot options: %w", err)
	}
	windows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: read windows: %w", err)
	}
	t.windows = int32(windows)
	if t.started, err = getB(); err != nil {
		return nil, fmt.Errorf("core: read started: %w", err)
	}
	seq, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: read seq: %w", err)
	}
	t.seq = int(seq)
	if t.prevDefined, err = getB(); err != nil {
		return nil, fmt.Errorf("core: read prevDefined: %w", err)
	}
	if t.prevStability, err = getF(); err != nil {
		return nil, fmt.Errorf("core: read prevStability: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: read item count: %w", err)
	}
	const maxItems = 1 << 28
	if count > maxItems {
		return nil, fmt.Errorf("core: implausible item count %d", count)
	}
	if count > 0 && count <= 1<<16 {
		// Pre-size the columns for plausible repertoires; huge claimed
		// counts allocate incrementally so a corrupt header can't balloon.
		t.items = make([]retail.ItemID, 0, count)
		t.counts = make([]int32, 0, count)
	}
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("core: read item id: %w", err)
		}
		if d == 0 && i > 0 {
			// Ids are strictly ascending on the wire; a zero delta would
			// duplicate an entry in the canonical order.
			return nil, fmt.Errorf("core: duplicate item id %d in snapshot", prev)
		}
		prev += d
		if prev == 0 || prev > math.MaxUint32 {
			return nil, fmt.Errorf("core: item id %d out of range", prev)
		}
		c, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("core: read item counter: %w", err)
		}
		if c == 0 || c > windows {
			return nil, fmt.Errorf("core: item %d count %d inconsistent with %d windows", prev, c, windows)
		}
		t.items = append(t.items, retail.ItemID(prev)) // wire order is ascending
		t.counts = append(t.counts, int32(c))
		if int32(c) > t.maxCount {
			t.maxCount = int32(c)
		}
	}
	return t, nil
}
