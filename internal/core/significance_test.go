package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSignificance(t *testing.T) {
	tests := []struct {
		alpha float64
		c, l  int
		want  float64
	}{
		{2, 0, 0, 0},    // never bought → 0
		{2, 0, 5, 0},    // never bought, many misses → still 0
		{2, 1, 0, 2},    // α^1
		{2, 3, 1, 4},    // α^2
		{2, 1, 3, 0.25}, // α^-2
		{2, 2, 2, 1},    // α^0
		{3, 2, 0, 9},
		{1.5, 4, 2, 2.25},
	}
	for _, tt := range tests {
		if got := Significance(tt.alpha, tt.c, tt.l); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Significance(%v,%d,%d) = %v, want %v", tt.alpha, tt.c, tt.l, got, tt.want)
		}
	}
}

func TestSignificanceMonotoneInNet(t *testing.T) {
	// For c > 0 and α > 1, S strictly increases with c−l.
	prop := func(cRaw, lRaw uint8) bool {
		c, l := int(cRaw%50)+1, int(lRaw%50)
		s1 := Significance(2, c, l)
		s2 := Significance(2, c+1, l)
		s3 := Significance(2, c, l+1)
		return s2 > s1 && s3 < s1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLogSignificance(t *testing.T) {
	logS, ok := LogSignificance(2, 3, 1)
	if !ok || math.Abs(logS-2*math.Log(2)) > 1e-12 {
		t.Fatalf("LogSignificance(2,3,1) = %v, %v", logS, ok)
	}
	logS, ok = LogSignificance(2, 0, 4)
	if ok || !math.IsInf(logS, -1) {
		t.Fatalf("LogSignificance(2,0,4) = %v, %v, want -Inf,false", logS, ok)
	}
}

func TestLogSignificanceConsistentWithSignificance(t *testing.T) {
	prop := func(cRaw, lRaw uint8) bool {
		c, l := int(cRaw%20)+1, int(lRaw%20)
		s := Significance(2, c, l)
		logS, ok := LogSignificance(2, c, l)
		if !ok {
			return false
		}
		return math.Abs(math.Log(s)-logS) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOptionsValidate(t *testing.T) {
	good := []Options{
		{Alpha: 2},
		{Alpha: 1.0001, Policy: CountFromOrigin},
		{Alpha: 10, MaxBlame: 5},
	}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", o, err)
		}
	}
	bad := []Options{
		{Alpha: 1}, // paper requires α > 1
		{Alpha: 0.5},
		{Alpha: 0},
		{Alpha: -2},
		{Alpha: math.NaN()},
		{Alpha: math.Inf(1)},
		{Alpha: 2, Policy: CountPolicy(9)},
		{Alpha: 2, MaxBlame: -1},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", o)
		}
	}
}

func TestDefaultOptionsArePaper(t *testing.T) {
	o := DefaultOptions()
	if o.Alpha != 2 {
		t.Fatalf("default alpha = %v, paper uses 2", o.Alpha)
	}
	if o.Policy != CountFromFirstSeen {
		t.Fatalf("default policy = %v", o.Policy)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCountPolicyRoundTrip(t *testing.T) {
	for _, p := range []CountPolicy{CountFromFirstSeen, CountFromOrigin} {
		got, err := ParseCountPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: %v, %v", p, got, err)
		}
	}
	if _, err := ParseCountPolicy("whatever"); err == nil {
		t.Error("ParseCountPolicy accepted junk")
	}
	if s := CountPolicy(7).String(); s == "" {
		t.Error("unknown policy String is empty")
	}
}
