package core

import (
	"math"
	"sync"
	"sync/atomic"
)

// maxSigTerms caps the significance memo table. Entries are 8 bytes, so a
// fully grown table is 4 KiB; beyond the cap (a count spread of 512 between
// the most and least frequent item — far past the point where the smaller
// term has underflowed to zero at any realistic α) terms fall back to a
// direct math.Exp call with bit-identical results.
const maxSigTerms = 512

// SigTable memoizes the significance terms α^{−2d} = α^{2(c−maxC)} for
// count deficits d = maxC−c. The terms depend only on α, so one table can
// back every tracker and worker sharing the same options instead of each
// tracker growing a private 4 KiB memo.
//
// The table is grow-only and every published snapshot is immutable: readers
// load the current snapshot with one atomic pointer read and index it
// without locks, while growth copies into a fresh slice under a mutex and
// publishes it atomically. Entries are appended with exactly the math.Exp
// expression the pre-memo scan used — exp(−2d·ln α) with the exponent
// formed in int32 — so sums over memoized terms are bit-identical to an
// unmemoized tracker no matter which goroutine grew the table or in what
// order (TestSharedSigTableMatchesPrivate pins this).
type SigTable struct {
	logA float64
	// zeroFrom is the smallest deficit whose term exp(−2d·ln α) evaluates
	// to exactly +0 (sigZeroNever when no reachable deficit does). The
	// expression is monotone non-increasing in d and math.Exp underflows to
	// +0, so every deficit at or past the boundary can return literal 0
	// without calling math.Exp — bit-identical, and the dominant cost in
	// steady-state scoring of long-lapsed items (profile: math.Exp past the
	// memo cap was ~49% of BenchmarkTrackerObserve before this shortcut).
	zeroFrom int32
	terms    atomic.Pointer[[]float64]
	mu       sync.Mutex // serializes growth; readers never take it
}

// NewSigTable returns a fresh private table for significance base α.
// Callers normally want SharedSigTable instead; private tables exist so
// differential tests can compare shared and unshared trackers.
func NewSigTable(alpha float64) *SigTable {
	logA := math.Log(alpha)
	t := &SigTable{logA: logA, zeroFrom: zeroDeficit(logA)}
	empty := make([]float64, 0)
	t.terms.Store(&empty)
	return t
}

// sigZeroNever marks a table whose terms never underflow to zero within
// the searched deficit range (α ≤ 1, or α so close to 1 that the decay is
// negligible); such tables always evaluate past-cap terms directly.
const sigZeroNever = math.MaxInt32

// zeroDeficit finds the smallest deficit d for which the exact runtime
// expression math.Exp(float64(-2*d)*logA) is +0, by binary search over
// that same expression. The argument float64(−2d)·ln α is strictly
// decreasing in d and math.Exp is faithfully rounded, so once it returns
// +0 it returns +0 for every larger deficit — returning literal 0 at or
// past the boundary is bit-identical to calling math.Exp (the concurrent
// SigTable test crosses the boundary and pins this against direct
// evaluation). The search stays below 2³⁰ so −2d never wraps int32.
func zeroDeficit(logA float64) int32 {
	if !(logA > 0) {
		return sigZeroNever // α ≤ 1 (or NaN): terms do not decay to zero
	}
	lo, hi := int32(0), int32(1)<<30 // term(0)=1≠0; probe the far end
	if math.Exp(float64(-2*hi)*logA) != 0 {
		return sigZeroNever
	}
	for hi-lo > 1 { // invariant: term(lo) ≠ 0, term(hi) == 0
		mid := lo + (hi-lo)/2
		if math.Exp(float64(-2*mid)*logA) == 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// sigRegistry holds the process-wide tables, one per α. Lookup is by exact
// key (never a range — map iteration order must not matter anywhere near
// scoring), and the map only grows: a table, once published for an α, is
// the table for that α for the life of the process.
var sigRegistry = struct {
	mu      sync.Mutex
	byAlpha map[float64]*SigTable
}{byAlpha: make(map[float64]*SigTable)}

// SharedSigTable returns the process-wide significance table for α,
// creating it on first use. Every tracker built with the same α shares one
// grow-only memo, so a fleet of workers warms a single 4 KiB table instead
// of one per tracker.
func SharedSigTable(alpha float64) *SigTable {
	sigRegistry.mu.Lock()
	t := sigRegistry.byAlpha[alpha]
	if t == nil {
		t = NewSigTable(alpha)
		sigRegistry.byAlpha[alpha] = t
	}
	sigRegistry.mu.Unlock()
	return t
}

// Term returns α^{−2d} for the count deficit d ≥ 0, growing the memo when
// d is past the current snapshot (capped at maxSigTerms; beyond the cap the
// value is computed directly, bit-identically).
func (t *SigTable) Term(d int32) float64 {
	terms := *t.terms.Load()
	if int(d) < len(terms) {
		return terms[d]
	}
	return t.grow(d)
}

// snapshot returns the current immutable term slice. Trackers cache it so
// the per-item hot path is one bounds check and a load with no atomics.
func (t *SigTable) snapshot() []float64 { return *t.terms.Load() }

// grow extends the memo through deficit d and returns the term. Past the
// cap it falls back to direct evaluation without touching the table.
func (t *SigTable) grow(d int32) float64 {
	if d >= maxSigTerms {
		if d >= t.zeroFrom {
			return 0 // past the underflow boundary: exp would return +0
		}
		return math.Exp(float64(-2*d) * t.logA)
	}
	t.mu.Lock()
	terms := *t.terms.Load()
	if int(d) < len(terms) { // another goroutine grew past d first
		t.mu.Unlock()
		return terms[d]
	}
	grown := make([]float64, d+1)
	copy(grown, terms)
	for k := int32(len(terms)); k <= d; k++ {
		grown[k] = math.Exp(float64(-2*k) * t.logA)
	}
	t.terms.Store(&grown)
	t.mu.Unlock()
	return grown[d]
}
