package core

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/gautrais/stability/internal/retail"
)

// refTracker is a deliberately naive reference implementation of the
// stability recurrence: counts in a map, the max count recomputed by a full
// scan every window, every significance term evaluated with math.Exp on the
// spot, membership via binary search. It shares no code with Tracker's
// columnar/merge/memoized engine beyond the Options type — the differential
// test below requires the two to agree bit for bit, which pins down that
// the columnar rewrite changed the cost of the computation and nothing
// about the computation itself. (Iteration is in ascending item order here
// too: that ordering is part of the model's determinism contract, not an
// implementation detail.)
type refTracker struct {
	opts    Options
	logA    float64
	counts  map[retail.ItemID]int32
	windows int32
	started bool
	seq     int

	prevStability float64
	prevDefined   bool
}

func newRefTracker(opts Options) *refTracker {
	return &refTracker{opts: opts, logA: math.Log(opts.Alpha), counts: make(map[retail.ItemID]int32)}
}

func (t *refTracker) sortedItems() []retail.ItemID {
	items := make([]retail.ItemID, 0, len(t.counts))
	for p := range t.counts {
		items = append(items, p)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	return items
}

func (t *refTracker) observe(items retail.Basket, explain bool) Result {
	res := Result{Seq: t.seq}
	t.seq++

	skipCount := false
	if !t.started {
		if len(items) == 0 && t.opts.Policy == CountFromFirstSeen {
			skipCount = true
		} else {
			t.started = true
		}
	}

	if len(t.counts) > 0 {
		order := t.sortedItems()
		var maxC int32
		for _, c := range t.counts {
			if c > maxC {
				maxC = c
			}
		}
		var num, den float64
		for _, p := range order {
			term := math.Exp(float64(2*(t.counts[p]-maxC)) * t.logA)
			den += term
			if items.Contains(p) {
				num += term
			}
		}
		if den > 0 {
			res.Defined = true
			res.Stability = num / den
			if res.Stability > 1 {
				res.Stability = 1
			}
			if explain {
				missing := make([]Blame, 0)
				for _, p := range order {
					if items.Contains(p) {
						continue
					}
					c := t.counts[p]
					net := int(2*c - t.windows)
					missing = append(missing, Blame{
						Item:            p,
						Net:             net,
						LogSignificance: float64(net) * t.logA,
						Share:           math.Exp(float64(2*(c-maxC))*t.logA) / den,
					})
				}
				sort.Slice(missing, func(i, j int) bool {
					if missing[i].Net != missing[j].Net {
						return missing[i].Net > missing[j].Net
					}
					return missing[i].Item < missing[j].Item
				})
				if t.opts.MaxBlame > 0 && len(missing) > t.opts.MaxBlame {
					missing = missing[:t.opts.MaxBlame]
				}
				if len(missing) > 0 {
					res.Missing = missing
				}
			}
		}
	}
	if !res.Defined {
		res.Stability = 1
	}
	if t.prevDefined && res.Defined && res.Stability < t.prevStability {
		res.Drop = t.prevStability - res.Stability
	}
	t.prevStability, t.prevDefined = res.Stability, res.Defined

	if explain {
		for _, p := range items {
			if _, ok := t.counts[p]; !ok {
				res.NewItems = append(res.NewItems, p)
			}
		}
	}
	if !skipCount {
		res.Counted = true
		t.windows++
		for _, p := range items {
			t.counts[p]++
		}
	}
	return res
}

// equalResults compares two Results bit for bit (float equality is ==, not
// a tolerance: the engines must agree exactly).
func equalResults(a, b Result) bool {
	if a.Seq != b.Seq || a.Stability != b.Stability || a.Defined != b.Defined ||
		a.Drop != b.Drop || a.Counted != b.Counted {
		return false
	}
	if len(a.Missing) != len(b.Missing) || len(a.NewItems) != len(b.NewItems) {
		return false
	}
	for i := range a.Missing {
		if a.Missing[i] != b.Missing[i] {
			return false
		}
	}
	for i := range a.NewItems {
		if a.NewItems[i] != b.NewItems[i] {
			return false
		}
	}
	return true
}

// TestTrackerMatchesNaiveReference drives the columnar tracker and the
// naive map-based reference over randomized basket sequences — both count
// policies, explain on and off, varied α and blame caps, empty windows and
// large repertoires included — and requires every Result to be
// bit-identical. Midway through each sequence the columnar tracker is
// snapshotted and restored, and the restored tracker must keep agreeing
// with the reference, which pins the snapshot round-trip too. A third
// tracker rides along on a pre-warmed private SigTable (every memo entry
// materialized before the first observation) and must also agree bit for
// bit: the reference evaluates math.Exp on the spot, so this pins that a
// memo table grown by anyone, to any depth, changes nothing.
func TestTrackerMatchesNaiveReference(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"default", Options{Alpha: 2}},
		{"origin-policy", Options{Alpha: 2, Policy: CountFromOrigin}},
		{"low-alpha", Options{Alpha: 1.1, MaxBlame: 4}},
		{"high-alpha", Options{Alpha: 7.5, Policy: CountFromOrigin, MaxBlame: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				for _, explain := range []bool{false, true} {
					rng := rand.New(rand.NewSource(seed))
					tr, err := NewTracker(tc.opts)
					if err != nil {
						t.Fatal(err)
					}
					ref := newRefTracker(tc.opts)
					warmTab := NewSigTable(tc.opts.Alpha)
					warmTab.Term(maxSigTerms - 1) // fully grown up front
					trWarm, err := NewTrackerWithSigTable(tc.opts, warmTab)
					if err != nil {
						t.Fatal(err)
					}
					universe := 3 + rng.Intn(60)
					windows := 50
					restoreAt := 10 + rng.Intn(30)
					for k := 0; k < windows; k++ {
						if k == restoreAt {
							var buf bytes.Buffer
							if err := tr.WriteSnapshot(&buf); err != nil {
								t.Fatal(err)
							}
							restored, err := ReadTrackerSnapshot(&buf)
							if err != nil {
								t.Fatal(err)
							}
							tr = restored
						}
						var b retail.Basket
						if rng.Intn(8) != 0 { // 1 in 8 windows is empty
							b = randomBasket(rng, universe)
						} else {
							b = retail.Basket{}
						}
						var got, gotWarm, want Result
						if explain {
							got, gotWarm, want = tr.Observe(b), trWarm.Observe(b), ref.observe(b, true)
						} else {
							got, gotWarm, want = tr.ObserveStability(b), trWarm.ObserveStability(b), ref.observe(b, false)
						}
						if !equalResults(got, want) {
							t.Fatalf("seed %d explain=%v window %d:\ncolumnar %+v\nreference %+v",
								seed, explain, k, got, want)
						}
						if !equalResults(gotWarm, want) {
							t.Fatalf("seed %d explain=%v window %d:\nwarm-table %+v\nreference %+v",
								seed, explain, k, gotWarm, want)
						}
						if tr.Seen() != len(ref.counts) || tr.Windows() != int(ref.windows) {
							t.Fatalf("seed %d window %d: state diverged: seen %d/%d windows %d/%d",
								seed, k, tr.Seen(), len(ref.counts), tr.Windows(), int(ref.windows))
						}
					}
					// Post-fold significance exponents must agree for every
					// item ever bought (and for one item never bought).
					for _, p := range ref.sortedItems() {
						wantNet := int(2*ref.counts[p] - ref.windows)
						gotNet, seen := tr.SignificanceOf(p)
						if !seen || gotNet != wantNet {
							t.Fatalf("seed %d item %d: net %d/%v, want %d", seed, p, gotNet, seen, wantNet)
						}
					}
					if _, seen := tr.SignificanceOf(retail.ItemID(universe + 500)); seen {
						t.Fatalf("seed %d: unbought item reported seen", seed)
					}
				}
			}
		})
	}
}

// TestTrackerReferenceLeadingEmpties aims the differential test at the one
// code path random baskets rarely hold long enough: runs of leading empty
// windows, where the two count policies diverge.
func TestTrackerReferenceLeadingEmpties(t *testing.T) {
	for _, policy := range []CountPolicy{CountFromFirstSeen, CountFromOrigin} {
		opts := Options{Alpha: 2, Policy: policy}
		tr, err := NewTracker(opts)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefTracker(opts)
		feed := []retail.Basket{
			{}, {}, {}, {},
			basket(itemA, itemB),
			{},
			basket(itemA),
			{}, {},
			basket(itemB, itemC),
		}
		for k, b := range feed {
			got, want := tr.Observe(b), ref.observe(b, true)
			if !equalResults(got, want) {
				t.Fatalf("policy %v window %d:\ncolumnar %+v\nreference %+v", policy, k, got, want)
			}
		}
	}
}
