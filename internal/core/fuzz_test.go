package core

import (
	"bytes"
	"testing"
)

// FuzzReadTrackerSnapshot asserts the snapshot reader never panics on
// corrupt input and that accepted snapshots re-serialize consistently.
func FuzzReadTrackerSnapshot(f *testing.F) {
	tr, _ := NewTracker(Options{Alpha: 2})
	tr.Observe(basket(1, 2, 3))
	tr.Observe(basket(1))
	var buf bytes.Buffer
	if err := tr.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("STK1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		restored, err := ReadTrackerSnapshot(bytes.NewReader(input))
		if err != nil {
			return
		}
		// Accepted snapshots must have valid options and re-serialize.
		if err := restored.Options().Validate(); err != nil {
			t.Fatalf("restored tracker has invalid options: %v", err)
		}
		var out bytes.Buffer
		if err := restored.WriteSnapshot(&out); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		again, err := ReadTrackerSnapshot(&out)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if again.Windows() != restored.Windows() || again.Seen() != restored.Seen() {
			t.Fatalf("round trip changed state")
		}
	})
}
