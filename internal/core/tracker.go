package core

import (
	"math"
	"slices"
	"sort"

	"github.com/gautrais/stability/internal/retail"
)

// Tracker computes the stability series of one customer incrementally: feed
// windows in chronological order with Observe and read each window's
// stability, blame list, and bookkeeping from the returned Result.
//
// State is columnar: two parallel slices hold the repertoire in ascending
// item order — items[i] has been bought in counts[i] counted windows — plus
// the global counted-window count W; the exponent of the significance of
// any item is 2c−W (see the package comment). The canonical iteration is a
// single cache-friendly scan, and each window folds in with one sorted
// merge of repertoire × basket. Memory is O(distinct items), time per
// window is O(distinct items + |uk|). The significance terms α^{2(c−maxC)}
// depend only on the count deficit maxC−c and on α, so they come from a
// process-wide SigTable shared by every tracker with the same α rather
// than being recomputed with math.Exp per item per window.
//
// Trackers are not safe for concurrent use; analyses shard one tracker per
// customer (or reuse one tracker per worker via Reset).
type Tracker struct {
	opts   Options
	logA   float64
	items  []retail.ItemID // ascending item id: the canonical iteration order
	counts []int32         // counts[i] = c of items[i]; counts only grow
	// sig is the grow-only memo of α^{−2d} terms, shared across trackers
	// with the same α. terms caches its latest immutable snapshot so the
	// per-item hot path is one bounds check and a load with no atomics;
	// misses refresh the cache through the table. Both survive Reset.
	sig      *SigTable
	terms    []float64
	maxCount int32 // running max of counts; counts only grow, so never recomputed
	windows  int32 // W: counted prior windows
	started  bool  // a non-empty window has been counted
	seq      int   // observations so far (including uncounted leading ones)

	prevStability float64
	prevDefined   bool
}

// Blame attributes part of a stability decrease to one missing item.
type Blame struct {
	// Item is the missing (or, in Present lists, present) item.
	Item retail.ItemID
	// Net is the significance exponent c−l.
	Net int
	// LogSignificance is ln S(p,k) = Net·ln α.
	LogSignificance float64
	// Share is S(p,k) / Σ_q S(q,k): exactly how much stability the item's
	// absence from the window costs. Shares of all seen items sum to 1.
	Share float64
}

// Result describes one observed window.
type Result struct {
	// Seq is the 0-based observation sequence number within the tracker.
	Seq int
	// Stability is the paper's Stability_i^k in [0,1]. When Defined is
	// false (no counted prior history), it is 1 by convention.
	Stability float64
	// Defined reports whether the denominator Σ S(p,k) was positive.
	Defined bool
	// Drop is max(0, previous stability − this stability); 0 on the first
	// defined window.
	Drop float64
	// Missing lists the seen-but-absent items (c>0, not in the window),
	// most significant first — the paper's attrition explanation. Capped
	// at Options.MaxBlame when non-zero.
	Missing []Blame
	// NewItems lists items bought for the first time in this window; they
	// have zero significance and affect nothing yet.
	NewItems []retail.ItemID
	// Counted reports whether this window incremented the prior-window
	// count (false only for leading empty windows under
	// CountFromFirstSeen).
	Counted bool
}

// NewTracker validates opts and returns an empty tracker backed by the
// process-wide shared significance table for opts.Alpha.
func NewTracker(opts Options) (*Tracker, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return newTracker(opts, SharedSigTable(opts.Alpha)), nil
}

// NewTrackerWithSigTable is NewTracker on a caller-supplied significance
// table (normally a private NewSigTable). Results are bit-identical to a
// shared-table tracker — the differential tests pin it — so this exists for
// those tests and for callers that want memo isolation, not for speed.
func NewTrackerWithSigTable(opts Options, sig *SigTable) (*Tracker, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if sig == nil {
		sig = SharedSigTable(opts.Alpha)
	}
	return newTracker(opts, sig), nil
}

func newTracker(opts Options, sig *SigTable) *Tracker {
	return &Tracker{
		opts:  opts,
		logA:  math.Log(opts.Alpha),
		sig:   sig,
		terms: sig.snapshot(),
	}
}

// Options returns the tracker's configuration.
func (t *Tracker) Options() Options { return t.opts }

// Seen returns the number of distinct items observed so far.
func (t *Tracker) Seen() int { return len(t.items) }

// Windows returns W, the number of counted windows so far.
func (t *Tracker) Windows() int { return int(t.windows) }

// term returns α^{2(c−maxC)} for the count deficit d = maxC−c ≥ 0. The
// common case is one bounds check and a load from the cached snapshot;
// termSlow grows the shared table.
func (t *Tracker) term(d int32) float64 {
	if int(d) < len(t.terms) {
		return t.terms[d]
	}
	return t.termSlow(d)
}

// termSlow resolves a deficit past the cached snapshot. Deficits at or
// past the table's underflow boundary return 0 immediately — bit-identical
// to the math.Exp the table would run, and the steady-state case for items
// lapsed longer than the memo cap (the profile-guided win: this branch
// replaced the math.Exp calls that dominated BenchmarkTrackerObserve).
// Otherwise the shared table grows (or computes directly past its cap) and
// the cache is refreshed so subsequent windows stay on the fast path.
func (t *Tracker) termSlow(d int32) float64 {
	if d >= t.sig.zeroFrom {
		return 0
	}
	v := t.sig.Term(d)
	t.terms = t.sig.snapshot()
	return v
}

// Observe feeds the next window's item set uk (must be a normalized basket)
// and returns the window's Result. Stability is computed against the state
// before this window (c and l count windows v < k), then the window is
// folded into the counts.
func (t *Tracker) Observe(items retail.Basket) Result {
	res := t.observe(items, true)
	return res
}

// ObserveStability is Observe without building blame and new-item lists —
// the hot path for population-scale scoring. Results carry empty Missing
// and NewItems, and the steady state (no first-seen items in the window)
// performs no allocations.
func (t *Tracker) ObserveStability(items retail.Basket) Result {
	return t.observe(items, false)
}

func (t *Tracker) observe(items retail.Basket, explain bool) Result {
	res := Result{Seq: t.seq}
	t.seq++

	skipCount := false
	if !t.started {
		if len(items) == 0 && t.opts.Policy == CountFromFirstSeen {
			skipCount = true
		} else {
			t.started = true
		}
	}

	// Stability against prior state. Exponent of item p is 2c−W; shift by
	// the maximum exponent so the largest term is exactly 1. Iterating in
	// canonical (ascending item) order — never Go's randomized map order —
	// keeps the non-associative float sums bit-identical across runs,
	// restores and worker counts. The repertoire and the basket are both
	// sorted, so membership is a sorted merge, not a lookup per item.
	if len(t.items) > 0 {
		maxC := t.maxCount
		var num, den float64
		j := 0
		for i, p := range t.items {
			term := t.term(maxC - t.counts[i])
			den += term
			for j < len(items) && items[j] < p {
				j++ // basket item not in the repertoire: first purchase, S=0
			}
			if j < len(items) && items[j] == p {
				num += term
				j++
			}
		}
		if den > 0 {
			res.Defined = true
			res.Stability = num / den
			if res.Stability > 1 {
				res.Stability = 1 // guard against rounding
			}
			if explain {
				res.Missing = t.blame(items, maxC, den)
			}
		}
	}
	if !res.Defined {
		res.Stability = 1 // convention: no history means trivially stable
	}
	if t.prevDefined && res.Defined && res.Stability < t.prevStability {
		res.Drop = t.prevStability - res.Stability
	}
	t.prevStability, t.prevDefined = res.Stability, res.Defined

	if explain {
		res.NewItems = t.newItems(items)
	}
	if !skipCount {
		res.Counted = true
		t.windows++
		t.fold(items)
	} else {
		// Leading empty window under CountFromFirstSeen: nothing recorded.
		res.Counted = false
	}
	return res
}

// newItems lists the basket items absent from the repertoire, in basket
// (ascending) order. nil when every item has been seen before.
func (t *Tracker) newItems(items retail.Basket) []retail.ItemID {
	var out []retail.ItemID
	i := 0
	for _, p := range items {
		for i < len(t.items) && t.items[i] < p {
			i++
		}
		if i == len(t.items) || t.items[i] != p {
			out = append(out, p)
		}
	}
	return out
}

// fold merges the window's basket into the columnar counters: existing
// items are bumped in place, first-seen items are spliced in by a single
// backward merge that preserves the canonical ascending order, and the
// max-count watermark is maintained. The no-new-items steady state touches
// only the count column and allocates nothing.
func (t *Tracker) fold(items retail.Basket) {
	if len(items) == 0 {
		return
	}
	newN := 0
	i := 0
	for _, p := range items {
		for i < len(t.items) && t.items[i] < p {
			i++
		}
		if i < len(t.items) && t.items[i] == p {
			c := t.counts[i] + 1
			t.counts[i] = c
			if c > t.maxCount {
				t.maxCount = c
			}
			i++
		} else {
			newN++
		}
	}
	if newN == 0 {
		return
	}
	if t.maxCount < 1 {
		t.maxCount = 1 // first-seen items enter with c=1
	}
	oldN := len(t.items)
	t.items = slices.Grow(t.items, newN)[:oldN+newN]
	t.counts = slices.Grow(t.counts, newN)[:oldN+newN]
	// Merge from the back so every element moves at most once.
	w := oldN + newN - 1
	i = oldN - 1
	j := len(items) - 1
	for j >= 0 {
		switch {
		case i >= 0 && t.items[i] > items[j]:
			t.items[w] = t.items[i]
			t.counts[w] = t.counts[i]
			i--
		case i >= 0 && t.items[i] == items[j]:
			t.items[w] = t.items[i]
			t.counts[w] = t.counts[i] // already bumped in the first pass
			i--
			j--
		default:
			t.items[w] = items[j]
			t.counts[w] = 1
			j--
		}
		w--
	}
}

// blame builds the sorted missing-item list for the current window with the
// same repertoire × basket merge the stability scan uses.
func (t *Tracker) blame(items retail.Basket, maxC int32, den float64) []Blame {
	missing := make([]Blame, 0, 8)
	j := 0
	for i, p := range t.items {
		for j < len(items) && items[j] < p {
			j++
		}
		if j < len(items) && items[j] == p {
			j++
			continue
		}
		c := t.counts[i]
		net := int(2*c - t.windows)
		missing = append(missing, Blame{
			Item:            p,
			Net:             net,
			LogSignificance: float64(net) * t.logA,
			Share:           t.term(maxC-c) / den,
		})
	}
	sort.Slice(missing, func(i, j int) bool {
		if missing[i].Net != missing[j].Net {
			return missing[i].Net > missing[j].Net
		}
		return missing[i].Item < missing[j].Item
	})
	if t.opts.MaxBlame > 0 && len(missing) > t.opts.MaxBlame {
		missing = missing[:t.opts.MaxBlame]
	}
	return missing
}

// find returns the column index of item p, or ok=false when p has never
// been bought.
func (t *Tracker) find(p retail.ItemID) (int, bool) {
	i := sort.Search(len(t.items), func(i int) bool { return t.items[i] >= p })
	if i < len(t.items) && t.items[i] == p {
		return i, true
	}
	return i, false
}

// SignificanceOf returns the current (post-fold) significance exponent
// c−l of item p and whether the item has ever been bought. It reflects the
// state after the last Observe — i.e. the S(p, k+1) numerator exponent for
// the next window.
func (t *Tracker) SignificanceOf(p retail.ItemID) (net int, seen bool) {
	i, ok := t.find(p)
	if !ok {
		return 0, false
	}
	return int(2*t.counts[i] - t.windows), true
}

// Reset returns the tracker to its initial state, keeping options and
// retaining the column and memo-table capacity so a worker can score many
// customers with one tracker and no steady-state allocations.
func (t *Tracker) Reset() {
	t.items = t.items[:0]
	t.counts = t.counts[:0]
	t.maxCount = 0
	t.windows = 0
	t.started = false
	t.seq = 0
	t.prevStability = 0
	t.prevDefined = false
}
