package core

import (
	"math"
	"sort"

	"github.com/gautrais/stability/internal/retail"
)

// Tracker computes the stability series of one customer incrementally: feed
// windows in chronological order with Observe and read each window's
// stability, blame list, and bookkeeping from the returned Result.
//
// The tracker stores one counter per distinct item ever seen (c, the number
// of counted windows containing the item) plus the global counted-window
// count W; the exponent of the significance of any item is 2c−W (see the
// package comment). Memory is O(distinct items), time per window is
// O(distinct items + |uk| log |uk|).
//
// Trackers are not safe for concurrent use; analyses shard one tracker per
// customer.
type Tracker struct {
	opts     Options
	logA     float64
	counts   map[retail.ItemID]int32
	order    []retail.ItemID // ascending item id: the canonical iteration order
	maxCount int32           // running max of counts; counts only grow, so never recomputed
	windows  int32           // W: counted prior windows
	started  bool            // a non-empty window has been counted
	seq      int             // observations so far (including uncounted leading ones)

	prevStability float64
	prevDefined   bool
}

// Blame attributes part of a stability decrease to one missing item.
type Blame struct {
	// Item is the missing (or, in Present lists, present) item.
	Item retail.ItemID
	// Net is the significance exponent c−l.
	Net int
	// LogSignificance is ln S(p,k) = Net·ln α.
	LogSignificance float64
	// Share is S(p,k) / Σ_q S(q,k): exactly how much stability the item's
	// absence from the window costs. Shares of all seen items sum to 1.
	Share float64
}

// Result describes one observed window.
type Result struct {
	// Seq is the 0-based observation sequence number within the tracker.
	Seq int
	// Stability is the paper's Stability_i^k in [0,1]. When Defined is
	// false (no counted prior history), it is 1 by convention.
	Stability float64
	// Defined reports whether the denominator Σ S(p,k) was positive.
	Defined bool
	// Drop is max(0, previous stability − this stability); 0 on the first
	// defined window.
	Drop float64
	// Missing lists the seen-but-absent items (c>0, not in the window),
	// most significant first — the paper's attrition explanation. Capped
	// at Options.MaxBlame when non-zero.
	Missing []Blame
	// NewItems lists items bought for the first time in this window; they
	// have zero significance and affect nothing yet.
	NewItems []retail.ItemID
	// Counted reports whether this window incremented the prior-window
	// count (false only for leading empty windows under
	// CountFromFirstSeen).
	Counted bool
}

// NewTracker validates opts and returns an empty tracker.
func NewTracker(opts Options) (*Tracker, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{
		opts:   opts,
		logA:   math.Log(opts.Alpha),
		counts: make(map[retail.ItemID]int32),
	}, nil
}

// Options returns the tracker's configuration.
func (t *Tracker) Options() Options { return t.opts }

// Seen returns the number of distinct items observed so far.
func (t *Tracker) Seen() int { return len(t.counts) }

// Windows returns W, the number of counted windows so far.
func (t *Tracker) Windows() int { return int(t.windows) }

// Observe feeds the next window's item set uk (must be a normalized basket)
// and returns the window's Result. Stability is computed against the state
// before this window (c and l count windows v < k), then the window is
// folded into the counts.
func (t *Tracker) Observe(items retail.Basket) Result {
	res := t.observe(items, true)
	return res
}

// ObserveStability is Observe without building blame and new-item lists —
// the hot path for population-scale scoring. Results carry empty Missing
// and NewItems.
func (t *Tracker) ObserveStability(items retail.Basket) Result {
	return t.observe(items, false)
}

func (t *Tracker) observe(items retail.Basket, explain bool) Result {
	res := Result{Seq: t.seq}
	t.seq++

	skipCount := false
	if !t.started {
		if len(items) == 0 && t.opts.Policy == CountFromFirstSeen {
			skipCount = true
		} else {
			t.started = true
		}
	}

	// Stability against prior state. Exponent of item p is 2c−W; shift by
	// the maximum exponent so the largest term is exactly 1. Iterating in
	// canonical (ascending item) order — never Go's randomized map order —
	// keeps the non-associative float sums bit-identical across runs,
	// restores and worker counts.
	if len(t.counts) > 0 {
		maxC := t.maxCount
		var num, den float64
		for _, p := range t.order {
			c := t.counts[p]
			term := math.Exp(float64(2*(c-maxC)) * t.logA)
			den += term
			if items.Contains(p) {
				num += term
			}
		}
		if den > 0 {
			res.Defined = true
			res.Stability = num / den
			if res.Stability > 1 {
				res.Stability = 1 // guard against rounding
			}
			if explain {
				res.Missing = t.blame(items, maxC, den)
			}
		}
	}
	if !res.Defined {
		res.Stability = 1 // convention: no history means trivially stable
	}
	if t.prevDefined && res.Defined && res.Stability < t.prevStability {
		res.Drop = t.prevStability - res.Stability
	}
	t.prevStability, t.prevDefined = res.Stability, res.Defined

	// Fold the window in.
	if explain {
		for _, p := range items {
			if _, ok := t.counts[p]; !ok {
				res.NewItems = append(res.NewItems, p)
			}
		}
	}
	if !skipCount {
		res.Counted = true
		t.windows++
		for _, p := range items {
			c := t.counts[p] + 1
			t.counts[p] = c
			if c == 1 {
				t.insert(p)
			}
			if c > t.maxCount {
				t.maxCount = c
			}
		}
	} else {
		// Leading empty window under CountFromFirstSeen: nothing recorded.
		res.Counted = false
	}
	return res
}

// insert adds a first-seen item to the canonical order (baskets are
// normalized, so p is new and appears once per window).
func (t *Tracker) insert(p retail.ItemID) {
	i := sort.Search(len(t.order), func(i int) bool { return t.order[i] >= p })
	t.order = append(t.order, 0)
	copy(t.order[i+1:], t.order[i:])
	t.order[i] = p
}

// blame builds the sorted missing-item list for the current window.
func (t *Tracker) blame(items retail.Basket, maxC int32, den float64) []Blame {
	missing := make([]Blame, 0, 8)
	for _, p := range t.order {
		c := t.counts[p]
		if items.Contains(p) {
			continue
		}
		net := int(2*c - t.windows)
		missing = append(missing, Blame{
			Item:            p,
			Net:             net,
			LogSignificance: float64(net) * t.logA,
			Share:           math.Exp(float64(2*(c-maxC))*t.logA) / den,
		})
	}
	sort.Slice(missing, func(i, j int) bool {
		if missing[i].Net != missing[j].Net {
			return missing[i].Net > missing[j].Net
		}
		return missing[i].Item < missing[j].Item
	})
	if t.opts.MaxBlame > 0 && len(missing) > t.opts.MaxBlame {
		missing = missing[:t.opts.MaxBlame]
	}
	return missing
}

// SignificanceOf returns the current (post-fold) significance exponent
// c−l of item p and whether the item has ever been bought. It reflects the
// state after the last Observe — i.e. the S(p, k+1) numerator exponent for
// the next window.
func (t *Tracker) SignificanceOf(p retail.ItemID) (net int, seen bool) {
	c, ok := t.counts[p]
	if !ok {
		return 0, false
	}
	return int(2*c - t.windows), true
}

// Reset returns the tracker to its initial state, keeping options.
func (t *Tracker) Reset() {
	t.counts = make(map[retail.ItemID]int32)
	t.order = nil
	t.maxCount = 0
	t.windows = 0
	t.started = false
	t.seq = 0
	t.prevStability = 0
	t.prevDefined = false
}
