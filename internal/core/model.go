package core

import (
	"errors"
	"fmt"

	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

// Model is the configured stability model. It is stateless and safe for
// concurrent use; per-customer state lives in Trackers created on the fly.
type Model struct {
	opts Options
}

// New validates opts and returns a model.
func New(opts Options) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Model{opts: opts}, nil
}

// Options returns the model configuration.
func (m *Model) Options() Options { return m.opts }

// Point is one window of a customer's stability series, tagged with its
// grid index so it can be aligned across customers.
type Point struct {
	GridIndex int
	Result
}

// Series is the stability trajectory of one customer over a window grid.
type Series struct {
	Customer retail.CustomerID
	Grid     window.Grid
	Points   []Point
}

// Len returns the number of points.
func (s Series) Len() int { return len(s.Points) }

// At returns the point with the given grid index.
func (s Series) At(gridIndex int) (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	i := gridIndex - s.Points[0].GridIndex
	if i < 0 || i >= len(s.Points) {
		return Point{}, false
	}
	return s.Points[i], true
}

// StabilityAt returns the stability value at a grid index.
func (s Series) StabilityAt(gridIndex int) (float64, bool) {
	p, ok := s.At(gridIndex)
	if !ok {
		return 0, false
	}
	return p.Stability, true
}

// Analyze runs the model over one customer's windowed database and returns
// the full series with explanations.
func (m *Model) Analyze(wd window.Windowed) (Series, error) {
	return m.analyze(wd, true)
}

// AnalyzeStability runs the model without building explanation lists — the
// fast path for population-scale evaluation.
func (m *Model) AnalyzeStability(wd window.Windowed) (Series, error) {
	return m.analyze(wd, false)
}

func (m *Model) analyze(wd window.Windowed, explain bool) (Series, error) {
	t, err := NewTracker(m.opts)
	if err != nil {
		return Series{}, err
	}
	return m.analyzeWith(t, wd, explain), nil
}

// AnalyzeWith is Analyze running on a caller-owned tracker, which is Reset
// first. Reusing one tracker (and its column/memo capacity) across many
// customers is the allocation-free steady state for population workers;
// results are bit-identical to Analyze. The tracker must have been built
// from this model's Options.
func (m *Model) AnalyzeWith(t *Tracker, wd window.Windowed) (Series, error) {
	if err := m.checkTracker(t); err != nil {
		return Series{}, err
	}
	return m.analyzeWith(t, wd, true), nil
}

// AnalyzeStabilityWith is AnalyzeStability running on a caller-owned
// tracker (Reset first) — the hot path for population-scale scoring with
// per-worker tracker reuse.
func (m *Model) AnalyzeStabilityWith(t *Tracker, wd window.Windowed) (Series, error) {
	if err := m.checkTracker(t); err != nil {
		return Series{}, err
	}
	return m.analyzeWith(t, wd, false), nil
}

func (m *Model) checkTracker(t *Tracker) error {
	if t == nil {
		return errors.New("core: nil tracker")
	}
	if t.Options() != m.opts {
		return fmt.Errorf("core: tracker options %+v do not match model options %+v", t.Options(), m.opts)
	}
	return nil
}

func (m *Model) analyzeWith(t *Tracker, wd window.Windowed, explain bool) Series {
	t.Reset()
	s := Series{Customer: wd.Customer, Grid: wd.Grid, Points: make([]Point, 0, len(wd.Windows))}
	for _, w := range wd.Windows {
		var res Result
		if explain {
			res = t.Observe(w.Items)
		} else {
			res = t.ObserveStability(w.Items)
		}
		s.Points = append(s.Points, Point{GridIndex: w.Index, Result: res})
	}
	return s
}

// Detection is the β-threshold classification of one window.
type Detection struct {
	GridIndex int
	Stability float64
	// Defecting is true when stability ≤ β (the paper treats
	// Stability > β as loyal).
	Defecting bool
}

// Detect applies the loyalty threshold β to a series.
func Detect(s Series, beta float64) []Detection {
	out := make([]Detection, len(s.Points))
	for i, p := range s.Points {
		out[i] = Detection{
			GridIndex: p.GridIndex,
			Stability: p.Stability,
			Defecting: p.Stability <= beta,
		}
	}
	return out
}

// DropEvent is a window where stability decreased, with the items whose
// absence explains the decrease (most significant first) — the Figure 2
// annotation.
type DropEvent struct {
	GridIndex int
	From, To  float64
	Blame     []Blame
}

// Drops extracts the windows where stability fell by at least minDrop,
// keeping the top-j blamed items per event (j ≤ 0 keeps all).
func (s Series) Drops(minDrop float64, topJ int) []DropEvent {
	var out []DropEvent
	for i := 1; i < len(s.Points); i++ {
		cur, prev := s.Points[i], s.Points[i-1]
		if !cur.Defined || !prev.Defined {
			continue
		}
		drop := prev.Stability - cur.Stability
		if drop < minDrop {
			continue
		}
		blame := cur.Missing
		if topJ > 0 && len(blame) > topJ {
			blame = blame[:topJ]
		}
		out = append(out, DropEvent{
			GridIndex: cur.GridIndex,
			From:      prev.Stability,
			To:        cur.Stability,
			Blame:     blame,
		})
	}
	return out
}

// MinStability returns the lowest defined stability in the series and its
// grid index; ok=false when no point is defined.
func (s Series) MinStability() (value float64, gridIndex int, ok bool) {
	value = 2
	for _, p := range s.Points {
		if p.Defined && p.Stability < value {
			value, gridIndex, ok = p.Stability, p.GridIndex, true
		}
	}
	if !ok {
		return 0, 0, false
	}
	return value, gridIndex, true
}

// String summarizes the series compactly for logs.
func (s Series) String() string {
	lo, hi := 0, 0
	if len(s.Points) > 0 {
		lo, hi = s.Points[0].GridIndex, s.Points[len(s.Points)-1].GridIndex
	}
	return fmt.Sprintf("series(customer=%d windows=[%d,%d])", s.Customer, lo, hi)
}
