package store

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"testing/quick"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

// appendBytes appends raw segment bytes to path, as an external writer
// growing a snapshot chain would.
func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	must(t, err)
	_, err = f.Write(b)
	must(t, err)
	must(t, f.Close())
}

// collectPolls drains every complete segment the follower currently sees
// into the builder.
func collectPolls(t *testing.T, f *Follower, into *Builder) {
	t.Helper()
	for {
		st, err := f.Poll()
		must(t, err)
		if st == nil || st.NumReceipts() == 0 {
			return
		}
		st.Each(func(h retail.History) bool {
			for _, r := range h.Receipts {
				must(t, into.AddReceipt(h.Customer, r))
			}
			return true
		})
	}
}

// TestFollowerResyncAfterCompactionLosesNothing is the
// compaction-under-follower protocol as a property: a follower tails a
// growing chain, the chain is compacted mid-tail (shrinking the file
// underneath it), the file keeps growing, and the follower recovers by
// rebuilding from byte zero — the resynced view must equal the full store
// byte for byte, receipts from before, across, and after the compaction
// all included.
func TestFollowerResyncAfterCompactionLosesNothing(t *testing.T) {
	prop := func(seed int64, cut uint8) bool {
		full := seededStore(seed, 6, 9, 400)
		cuts := []time.Time{day(100), day(200), day(300)}
		k := int(cut)%2 + 2 // segments visible before compaction: 2 or 3
		prefixes := make([]*Store, len(cuts))
		for i, c := range cuts {
			prefixes[i] = prefixBefore(t, full, c)
		}
		dir := t.TempDir()
		path := dir + "/tail.stb"
		appendBytes(t, path, binaryBytes(t, prefixes[0]))
		for i := 1; i < k; i++ {
			appendBytes(t, path, deltaBytes(t, prefixes[i], prefixes[i-1]))
		}

		// Mid-tail: the follower has consumed the whole chain so far.
		fol := NewFollower(nil, path)
		pre := NewBuilder()
		collectPolls(t, fol, pre)
		if !storesEqual(prefixes[k-1], pre.Build()) {
			t.Fatal("pre-compaction tail does not match the written prefix")
		}

		// An external operator compacts the chain, then keeps appending.
		if _, err := CompactFile(nil, path, time.Time{}); err != nil {
			t.Fatal(err)
		}
		appendBytes(t, path, deltaBytes(t, full, prefixes[k-1]))

		// The shrink must surface as ErrFileShrank (the multi-segment chain
		// merges strictly smaller), and recovery is a rebuild from zero.
		if _, err := fol.Poll(); !errors.Is(err, ErrFileShrank) {
			t.Fatalf("poll after compaction: err = %v, want ErrFileShrank", err)
		}
		fol = NewFollower(nil, path)
		post := NewBuilder()
		collectPolls(t, fol, post)
		got := post.Build()
		if !storesEqual(full, got) {
			return false
		}
		return bytes.Equal(binaryBytes(t, full), binaryBytes(t, got))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
