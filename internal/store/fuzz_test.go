package store

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the lenient CSV reader never panics or errors on
// arbitrary input, and that whatever it accepts re-serializes cleanly.
func FuzzReadCSV(f *testing.F) {
	f.Add("customer,timestamp,spend,items\n7,2012-05-01T10:00:00Z,3.50,1|2|3\n")
	f.Add("7,2012-05-01T10:00:00Z,3.50,\n")
	f.Add("x,y,z\n")
	f.Add("")
	f.Add("7,2012-05-01T10:00:00Z,-1,1\n")
	f.Add("\"quoted,comma\",2012-05-01T10:00:00Z,1,1\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, _, err := ReadCSV(strings.NewReader(input), CSVOptions{Strict: false})
		if err != nil {
			// Lenient mode only errors on reader failures, which a string
			// reader cannot produce — anything else is a bug.
			t.Fatalf("lenient ReadCSV errored: %v", err)
		}
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		again, rep, err := ReadCSV(&buf, CSVOptions{Strict: true})
		if err != nil || rep.Skipped != 0 {
			t.Fatalf("round trip of accepted data failed: %v (%+v)", err, rep)
		}
		if again.NumReceipts() != s.NumReceipts() {
			t.Fatalf("round trip changed receipt count: %d vs %d", again.NumReceipts(), s.NumReceipts())
		}
	})
}

// FuzzReadBinary asserts the binary reader never panics on corrupt
// snapshots — it must fail with an error instead.
func FuzzReadBinary(f *testing.F) {
	valid := randomStore(5)
	var buf bytes.Buffer
	if err := valid.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("STB1"))
	f.Add([]byte{})
	f.Add([]byte("STB1\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, input []byte) {
		s, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		// Accepted input must re-serialize and round-trip.
		var out bytes.Buffer
		if err := s.WriteBinary(&out); err != nil {
			t.Fatalf("re-serialize accepted snapshot: %v", err)
		}
		again, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if again.NumReceipts() != s.NumReceipts() {
			t.Fatalf("round trip changed receipts")
		}
	})
}

// FuzzAppendBoundary fuzzes the frozen/appended split of a pseudo-random
// receipt schedule: whatever subset of receipts arrives after the base
// store froze — including receipts timestamped before the boundary, i.e.
// out-of-order appends across the old/new frontier — Append must produce
// byte-identical stores to a from-scratch sequential Build.
func FuzzAppendBoundary(f *testing.F) {
	f.Add(int64(1), uint64(0))                  // everything frozen, empty append
	f.Add(int64(2), ^uint64(0))                 // everything appended
	f.Add(int64(3), uint64(0xAAAAAAAAAAAAAAAA)) // alternating: every appended batch reaches across the boundary
	f.Add(int64(4), uint64(1)<<63|1)            // first and last receipts appended, middle frozen
	f.Add(int64(5), uint64(0x00000000FFFFFFFF)) // early half appended after the late half froze (fully out of order)
	f.Fuzz(func(t *testing.T, seed int64, mask uint64) {
		r := rand.New(rand.NewSource(seed))
		events := randomEvents(r, 48)
		ref := NewBuilder()
		base := NewBuilder()
		delta := NewBuilder()
		for i, ev := range events {
			if mask&(1<<(uint(i)%64)) != 0 {
				delta.Add(ev.id, ev.t, ev.items, ev.spend)
			} else {
				base.Add(ev.id, ev.t, ev.items, ev.spend)
			}
		}
		for i, ev := range events {
			if mask&(1<<(uint(i)%64)) == 0 {
				ref.Add(ev.id, ev.t, ev.items, ev.spend)
			}
		}
		for i, ev := range events {
			if mask&(1<<(uint(i)%64)) != 0 {
				ref.Add(ev.id, ev.t, ev.items, ev.spend)
			}
		}
		var want, got bytes.Buffer
		if err := ref.BuildWith(Options{Workers: 1}).WriteBinary(&want); err != nil {
			t.Fatal(err)
		}
		if err := delta.Append(base.Build()).WriteBinary(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("seed %d mask %x: Append differs from from-scratch Build", seed, mask)
		}
	})
}

// FuzzReadJSONL asserts the JSONL reader never panics.
func FuzzReadJSONL(f *testing.F) {
	f.Add(`{"customer":1,"time":"2012-05-01T00:00:00Z","spend":1,"items":[1,2]}` + "\n")
	f.Add("{}\n")
	f.Add("\n\n")
	f.Add("not json\n")
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = ReadJSONL(strings.NewReader(input))
	})
}
