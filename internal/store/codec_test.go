package store

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

// randomStore builds a pseudo-random store for round-trip properties.
func randomStore(seed int64) *Store {
	r := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	customers := r.Intn(5) + 1
	for c := 0; c < customers; c++ {
		id := retail.CustomerID(r.Intn(1000) + 1)
		receipts := r.Intn(8)
		for i := 0; i < receipts; i++ {
			items := make([]retail.ItemID, r.Intn(6))
			for j := range items {
				items[j] = retail.ItemID(r.Intn(50) + 1)
			}
			ts := day(r.Intn(400)).Add(time.Duration(r.Intn(86400)) * time.Second)
			spend := float64(r.Intn(10000)) / 100
			if err := b.Add(id, ts, items, spend); err != nil {
				panic(err)
			}
		}
	}
	return b.Build()
}

func storesEqual(a, b *Store) bool {
	if a.NumCustomers() != b.NumCustomers() || a.NumReceipts() != b.NumReceipts() {
		return false
	}
	for _, id := range a.Customers() {
		ha, err := a.History(id)
		if err != nil {
			return false
		}
		hb, err := b.History(id)
		if err != nil {
			return false
		}
		if len(ha.Receipts) != len(hb.Receipts) {
			return false
		}
		for i := range ha.Receipts {
			ra, rb := ha.Receipts[i], hb.Receipts[i]
			if !ra.Time.Equal(rb.Time) || ra.Spend != rb.Spend || !ra.Items.Equal(rb.Items) {
				return false
			}
		}
	}
	return true
}

func TestCSVRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		orig := randomStore(seed)
		var buf bytes.Buffer
		if err := orig.WriteCSV(&buf); err != nil {
			return false
		}
		got, rep, err := ReadCSV(&buf, CSVOptions{Strict: true})
		if err != nil || rep.Skipped != 0 {
			return false
		}
		// CSV stores spend with 2 decimals, which our generator respects.
		return storesEqual(orig, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestJSONLRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		orig := randomStore(seed)
		var buf bytes.Buffer
		if err := orig.WriteJSONL(&buf); err != nil {
			return false
		}
		got, err := ReadJSONL(&buf)
		if err != nil {
			return false
		}
		return storesEqual(orig, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		orig := randomStore(seed)
		var buf bytes.Buffer
		if err := orig.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return storesEqual(orig, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBinarySmallerThanCSV(t *testing.T) {
	s := randomStore(7)
	var csvBuf, binBuf bytes.Buffer
	if err := s.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBinary(&binBuf); err != nil {
		t.Fatal(err)
	}
	if s.NumReceipts() > 0 && binBuf.Len() >= csvBuf.Len() {
		t.Fatalf("binary (%d bytes) not smaller than CSV (%d bytes)", binBuf.Len(), csvBuf.Len())
	}
}

func TestReadCSVHeaderAndEmptyItems(t *testing.T) {
	in := "customer,timestamp,spend,items\n" +
		"7,2012-05-01T10:00:00Z,3.50,1|2|3\n" +
		"7,2012-05-02T10:00:00Z,0.00,\n"
	s, rep, err := ReadCSV(strings.NewReader(in), CSVOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 2 || rep.Skipped != 0 {
		t.Fatalf("report = %+v", rep)
	}
	h, err := s.History(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Receipts) != 2 {
		t.Fatalf("receipts = %d", len(h.Receipts))
	}
	if len(h.Receipts[1].Items) != 0 {
		t.Fatalf("empty-items row produced basket %v", h.Receipts[1].Items)
	}
}

func TestReadCSVMalformedRows(t *testing.T) {
	bad := []string{
		"x,2012-05-01T10:00:00Z,1.0,1",   // bad customer
		"1,yesterday,1.0,1",              // bad time
		"1,2012-05-01T10:00:00Z,lots,1",  // bad spend
		"1,2012-05-01T10:00:00Z,1.0,one", // bad item
		"1,2012-05-01T10:00:00Z,1.0,0",   // reserved item id
		"1,2012-05-01T10:00:00Z,1.0",     // short row
		"1,2012-05-01T10:00:00Z,-5,1",    // negative spend
	}
	for _, row := range bad {
		t.Run(row, func(t *testing.T) {
			// Strict: error.
			if _, _, err := ReadCSV(strings.NewReader(row+"\n"), CSVOptions{Strict: true}); err == nil {
				t.Fatalf("strict mode accepted %q", row)
			}
			// Lenient: skipped, not fatal.
			s, rep, err := ReadCSV(strings.NewReader(row+"\n"), CSVOptions{})
			if err != nil {
				t.Fatalf("lenient mode errored on %q: %v", row, err)
			}
			if rep.Skipped != 1 || s.NumReceipts() != 0 {
				t.Fatalf("lenient mode: report %+v, receipts %d", rep, s.NumReceipts())
			}
		})
	}
}

func TestReadCSVLenientKeepsGoodRows(t *testing.T) {
	in := "1,2012-05-01T10:00:00Z,1.00,1\n" +
		"garbage,row,here,zz\n" +
		"2,2012-05-02T10:00:00Z,2.00,2\n"
	s, rep, err := ReadCSV(strings.NewReader(in), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 2 || rep.Skipped != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if s.NumReceipts() != 2 {
		t.Fatalf("receipts = %d", s.NumReceipts())
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("malformed JSONL accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"customer":1,"time":"2012-05-01T00:00:00Z","spend":1,"items":[0]}` + "\n")); err == nil {
		t.Fatal("reserved item id accepted")
	}
	// Blank lines are fine.
	s, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumReceipts() != 0 {
		t.Fatal("blank input produced receipts")
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadBinary(strings.NewReader("JUNKJUNKJUNK")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated stream: write a valid store and cut it short.
	s := randomStore(3)
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 10 {
		if _, err := ReadBinary(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
			t.Fatal("truncated stream accepted")
		}
	}
}

func TestLabelsCSVRoundTrip(t *testing.T) {
	labels := []retail.Label{
		{Customer: 1, Cohort: retail.CohortLoyal, OnsetMonth: -1},
		{Customer: 2, Cohort: retail.CohortDefecting, OnsetMonth: 18},
		{Customer: 3, Cohort: retail.CohortUnknown, OnsetMonth: -1},
	}
	var buf bytes.Buffer
	if err := WriteLabelsCSV(&buf, labels); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLabelsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(labels) {
		t.Fatalf("round trip lost labels: %d vs %d", len(got), len(labels))
	}
	for i := range labels {
		if got[i] != labels[i] {
			t.Fatalf("label %d: %+v vs %+v", i, got[i], labels[i])
		}
	}
}

func TestReadLabelsCSVErrors(t *testing.T) {
	bad := []string{
		"x,loyal,-1\n",
		"1,sorta,-1\n",
		"1,loyal,soon\n",
	}
	for _, in := range bad {
		if _, err := ReadLabelsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

// splitStore builds a base store plus an appended extension from a random
// store: receipts up to the per-customer split stay in the base, the rest
// arrive through Append. Returns (prev, cur).
func splitStore(seed int64) (*Store, *Store) {
	full := randomStore(seed)
	base := NewBuilder()
	delta := NewBuilder()
	full.Each(func(h retail.History) bool {
		cut := len(h.Receipts) / 2
		for i, r := range h.Receipts {
			b := base
			if i >= cut {
				b = delta
			}
			if err := b.AddReceipt(h.Customer, r); err != nil {
				panic(err)
			}
		}
		return true
	})
	prev := base.Build()
	return prev, delta.Append(prev)
}

// TestBinaryDeltaAppend pins the binary streaming append path: a file of
// the base segment plus a delta segment decodes to the extended store, and
// the base bytes are untouched by construction.
func TestBinaryDeltaAppend(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		prev, cur := splitStore(seed)
		var file bytes.Buffer
		if err := prev.WriteBinary(&file); err != nil {
			t.Fatal(err)
		}
		if err := cur.WriteBinaryDelta(&file, prev); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(bytes.NewReader(file.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: read appended file: %v", seed, err)
		}
		var gotBytes, wantBytes bytes.Buffer
		if err := got.WriteBinary(&gotBytes); err != nil {
			t.Fatal(err)
		}
		if err := cur.WriteBinary(&wantBytes); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes.Bytes(), wantBytes.Bytes()) {
			t.Fatalf("seed %d: appended file decodes to a different store", seed)
		}
	}
}

// TestBinaryDeltaOfUnrelatedStore pins that the delta writer refuses
// stores that do not extend prev.
func TestBinaryDeltaOfUnrelatedStore(t *testing.T) {
	prev, _ := splitStore(1)
	other := randomStore(99)
	var buf bytes.Buffer
	if err := other.WriteBinaryDelta(&buf, prev); err == nil {
		t.Fatal("delta of an unrelated store accepted")
	}
}

// TestReadBinaryRejectsCorruptAppendedSegment pins the multi-segment error
// path: trailing garbage after a valid segment is a loud error, not a
// silent truncation.
func TestReadBinaryRejectsCorruptAppendedSegment(t *testing.T) {
	s := randomStore(3)
	var file bytes.Buffer
	if err := s.WriteBinary(&file); err != nil {
		t.Fatal(err)
	}
	file.WriteString("garbage")
	if _, err := ReadBinary(bytes.NewReader(file.Bytes())); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestCSVDeltaAppend pins the CSV streaming append path: header-less delta
// rows appended to the base file parse back to the extended store.
func TestCSVDeltaAppend(t *testing.T) {
	prev, cur := splitStore(2)
	var file bytes.Buffer
	if err := prev.WriteCSV(&file); err != nil {
		t.Fatal(err)
	}
	if err := cur.WriteCSVDelta(&file, prev); err != nil {
		t.Fatal(err)
	}
	got, rep, err := ReadCSV(bytes.NewReader(file.Bytes()), CSVOptions{Strict: true})
	if err != nil || rep.Skipped != 0 {
		t.Fatalf("read appended file: %v (%+v)", err, rep)
	}
	// Compare against a full rewrite parsed the same way (CSV rounds
	// spend, so compare file-to-file rather than file-to-memory).
	var fullFile bytes.Buffer
	if err := cur.WriteCSV(&fullFile); err != nil {
		t.Fatal(err)
	}
	want, _, err := ReadCSV(bytes.NewReader(fullFile.Bytes()), CSVOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if !storesEqual(got, want) {
		t.Fatal("appended CSV decodes to a different store than a full rewrite")
	}
}

// TestJSONLDeltaAppend pins the JSONL streaming append path.
func TestJSONLDeltaAppend(t *testing.T) {
	prev, cur := splitStore(4)
	var file bytes.Buffer
	if err := prev.WriteJSONL(&file); err != nil {
		t.Fatal(err)
	}
	if err := cur.WriteJSONLDelta(&file, prev); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !storesEqual(got, cur) {
		t.Fatal("appended JSONL decodes to a different store")
	}
}
