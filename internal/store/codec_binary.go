package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

// Binary snapshot format (little-endian, varint-heavy):
//
//	magic "STB1" (4 bytes)
//	uvarint customerCount
//	per customer:
//	  uvarint customerID
//	  uvarint receiptCount
//	  per receipt:
//	    varint  deltaUnixSeconds (delta from previous receipt; first is
//	            delta from the Unix epoch)
//	    uint64  spend bits (IEEE 754)
//	    uvarint itemCount
//	    uvarint item deltas (delta-encoded ascending ItemIDs, first from 0)
//
// Delta encoding exploits chronological receipt order and sorted baskets;
// on the synthetic datasets it is ~4x smaller than CSV.
//
// A snapshot file is one or more such segments concatenated: ReadBinary
// merges them all into one store. That is the streaming append path — an
// extended dataset is persisted by appending a segment holding only the
// new receipts (WriteBinaryDelta) after the existing bytes, which are
// never rewritten.
var binaryMagic = [4]byte{'S', 'T', 'B', '1'}

// WriteBinary serializes the store snapshot as a single segment.
func (s *Store) WriteBinary(w io.Writer) error {
	return writeBinarySegment(w, s.histories)
}

// WriteBinaryDelta serializes only the receipts s holds beyond prev as one
// STB1 segment (see DeltaSince for the extension contract). Appending the
// segment to a file that decodes to prev yields a file that decodes to s.
func (s *Store) WriteBinaryDelta(w io.Writer, prev *Store) error {
	delta, err := s.DeltaSince(prev)
	if err != nil {
		return err
	}
	return writeBinarySegment(w, delta)
}

// writeBinarySegment encodes one STB1 segment from a customer-ascending
// history slice.
func writeBinarySegment(w io.Writer, histories []retail.History) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("store: write magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(histories))); err != nil {
		return fmt.Errorf("store: write count: %w", err)
	}
	for _, h := range histories {
		if err := putUvarint(uint64(h.Customer)); err != nil {
			return fmt.Errorf("store: write customer: %w", err)
		}
		if err := putUvarint(uint64(len(h.Receipts))); err != nil {
			return fmt.Errorf("store: write receipt count: %w", err)
		}
		prev := int64(0)
		for _, r := range h.Receipts {
			ts := r.Time.Unix()
			if err := putVarint(ts - prev); err != nil {
				return fmt.Errorf("store: write time: %w", err)
			}
			prev = ts
			binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(r.Spend))
			if _, err := bw.Write(buf[:8]); err != nil {
				return fmt.Errorf("store: write spend: %w", err)
			}
			if err := putUvarint(uint64(len(r.Items))); err != nil {
				return fmt.Errorf("store: write item count: %w", err)
			}
			prevItem := uint64(0)
			for _, it := range r.Items {
				if err := putUvarint(uint64(it) - prevItem); err != nil {
					return fmt.Errorf("store: write item: %w", err)
				}
				prevItem = uint64(it)
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a snapshot produced by WriteBinary, including files
// grown by appending WriteBinaryDelta segments: every concatenated STB1
// segment is merged into one store. At least one segment is required.
func ReadBinary(r io.Reader) (*Store, error) {
	s, _, err := readBinaryAll(bufio.NewReader(r))
	return s, err
}

// readBinaryAll decodes every concatenated STB1 segment, returning the
// merged store and the segment count (what compaction collapses to one).
func readBinaryAll(br *bufio.Reader) (*Store, int, error) {
	b := NewBuilder()
	if err := readBinarySegment(br, b, true); err != nil {
		return nil, 0, err
	}
	segments := 1
	for {
		if _, err := br.Peek(1); err == io.EOF {
			break
		}
		if err := readBinarySegment(br, b, false); err != nil {
			return nil, 0, err
		}
		segments++
	}
	return b.Build(), segments, nil
}

// segmentReader is what readBinarySegment needs from its input: both
// ReadBinary's bufio.Reader over a whole file and the follower's
// bytes.Reader over a polled tail satisfy it (the latter exposes the
// consumed length, which is how the follower tracks segment boundaries).
type segmentReader interface {
	io.Reader
	io.ByteReader
}

// readBinarySegment decodes one STB1 segment into the builder. first
// distinguishes the error message for a file that isn't a snapshot at all
// from one with a corrupt appended segment.
func readBinarySegment(br segmentReader, b *Builder, first bool) error {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("store: read magic: %w", err)
	}
	if magic != binaryMagic {
		if first {
			return fmt.Errorf("store: bad magic %q (not a STB1 snapshot)", magic[:])
		}
		return fmt.Errorf("store: bad magic %q in appended segment", magic[:])
	}
	customers, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("store: read customer count: %w", err)
	}
	const maxCustomers = 1 << 34
	if customers > maxCustomers {
		return fmt.Errorf("store: implausible customer count %d", customers)
	}
	var spendBuf [8]byte
	for c := uint64(0); c < customers; c++ {
		cust, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("store: read customer id: %w", err)
		}
		receipts, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("store: read receipt count: %w", err)
		}
		prev := int64(0)
		for i := uint64(0); i < receipts; i++ {
			dt, err := binary.ReadVarint(br)
			if err != nil {
				return fmt.Errorf("store: read time delta: %w", err)
			}
			prev += dt
			if _, err := io.ReadFull(br, spendBuf[:]); err != nil {
				return fmt.Errorf("store: read spend: %w", err)
			}
			spend := math.Float64frombits(binary.LittleEndian.Uint64(spendBuf[:]))
			itemCount, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("store: read item count: %w", err)
			}
			const maxItems = 1 << 20
			if itemCount > maxItems {
				return fmt.Errorf("store: implausible basket size %d", itemCount)
			}
			items := make(retail.Basket, itemCount)
			prevItem := uint64(0)
			for j := range items {
				d, err := binary.ReadUvarint(br)
				if err != nil {
					return fmt.Errorf("store: read item: %w", err)
				}
				prevItem += d
				if prevItem == 0 || prevItem > math.MaxUint32 {
					return fmt.Errorf("store: item id %d out of range", prevItem)
				}
				items[j] = retail.ItemID(prevItem)
			}
			rec := retail.Receipt{Time: time.Unix(prev, 0).UTC(), Items: items, Spend: spend}
			if err := b.AddReceipt(retail.CustomerID(cust), rec); err != nil {
				return err
			}
		}
	}
	return nil
}
