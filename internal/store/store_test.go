package store

import (
	"errors"
	"testing"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

func day(n int) time.Time {
	return time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

func buildTestStore(t *testing.T) *Store {
	t.Helper()
	b := NewBuilder()
	// Out-of-order insertion on purpose.
	must(t, b.Add(2, day(10), []retail.ItemID{3, 1}, 7.5))
	must(t, b.Add(1, day(5), []retail.ItemID{1, 2}, 10))
	must(t, b.Add(1, day(1), []retail.ItemID{2, 2, 1}, 5))
	must(t, b.Add(2, day(3), []retail.ItemID{4}, 2))
	must(t, b.Add(1, day(9), nil, 0))
	return b.Build()
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuildSortsAndIndexes(t *testing.T) {
	s := buildTestStore(t)
	if s.NumCustomers() != 2 {
		t.Fatalf("NumCustomers = %d", s.NumCustomers())
	}
	if s.NumReceipts() != 5 {
		t.Fatalf("NumReceipts = %d", s.NumReceipts())
	}
	h, err := s.History(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Receipts) != 3 {
		t.Fatalf("customer 1 receipts = %d", len(h.Receipts))
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("built history invalid: %v", err)
	}
	if !h.Receipts[0].Time.Equal(day(1)) || !h.Receipts[2].Time.Equal(day(9)) {
		t.Fatalf("history not sorted: %v, %v", h.Receipts[0].Time, h.Receipts[2].Time)
	}
	// Baskets normalized on Add.
	if !h.Receipts[0].Items.Equal(retail.Basket{1, 2}) {
		t.Fatalf("basket not normalized: %v", h.Receipts[0].Items)
	}
}

func TestHistoryNotFound(t *testing.T) {
	s := buildTestStore(t)
	_, err := s.History(42)
	if !errors.Is(err, ErrNoCustomer) {
		t.Fatalf("err = %v, want ErrNoCustomer", err)
	}
}

func TestTimeRange(t *testing.T) {
	s := buildTestStore(t)
	min, max, ok := s.TimeRange()
	if !ok || !min.Equal(day(1)) || !max.Equal(day(10)) {
		t.Fatalf("TimeRange = %v..%v, %v", min, max, ok)
	}
	empty := NewBuilder().Build()
	if _, _, ok := empty.TimeRange(); ok {
		t.Fatal("empty store reported a time range")
	}
}

func TestCustomersSorted(t *testing.T) {
	s := buildTestStore(t)
	ids := s.Customers()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("Customers = %v", ids)
	}
}

func TestEachEarlyStop(t *testing.T) {
	s := buildTestStore(t)
	n := 0
	s.Each(func(h retail.History) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("Each visited %d histories after early stop", n)
	}
}

func TestScan(t *testing.T) {
	s := buildTestStore(t)
	// Customer 1 has receipts at days 1, 5, 9.
	tests := []struct {
		from, to int
		want     int
	}{
		{0, 100, 3},
		{1, 9, 2},  // [day1, day9) excludes day 9
		{1, 10, 3}, // includes day 9
		{2, 5, 0},
		{5, 6, 1},
		{50, 60, 0},
	}
	for _, tt := range tests {
		got, err := s.Scan(1, day(tt.from), day(tt.to))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != tt.want {
			t.Errorf("Scan [%d,%d) = %d receipts, want %d", tt.from, tt.to, len(got), tt.want)
		}
	}
	if _, err := s.Scan(42, day(0), day(1)); err == nil {
		t.Fatal("Scan unknown customer accepted")
	}
}

func TestSubset(t *testing.T) {
	s := buildTestStore(t)
	sub := s.Subset([]retail.CustomerID{2, 99})
	if sub.NumCustomers() != 1 {
		t.Fatalf("subset customers = %d", sub.NumCustomers())
	}
	if sub.NumReceipts() != 2 {
		t.Fatalf("subset receipts = %d", sub.NumReceipts())
	}
	if _, err := sub.History(1); err == nil {
		t.Fatal("subset includes excluded customer")
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	if err := b.Add(1, day(0), nil, -5); err == nil {
		t.Fatal("negative spend accepted")
	}
	if err := b.AddReceipt(1, retail.Receipt{Time: day(0), Items: retail.Basket{2, 1}}); err == nil {
		t.Fatal("denormalized AddReceipt accepted")
	}
	if err := b.AddReceipt(1, retail.Receipt{Time: day(0), Items: retail.Basket{1, 2}, Spend: -1}); err == nil {
		t.Fatal("negative-spend AddReceipt accepted")
	}
}

func TestBuilderMerge(t *testing.T) {
	a := NewBuilder()
	must(t, a.Add(1, day(0), []retail.ItemID{1}, 1))
	b := NewBuilder()
	must(t, b.Add(1, day(1), []retail.ItemID{2}, 2))
	must(t, b.Add(2, day(2), []retail.ItemID{3}, 3))
	a.Merge(b)
	s := a.Build()
	if s.NumCustomers() != 2 || s.NumReceipts() != 3 {
		t.Fatalf("merged store: %d customers, %d receipts", s.NumCustomers(), s.NumReceipts())
	}
	h, _ := s.History(1)
	if len(h.Receipts) != 2 {
		t.Fatalf("customer 1 merged receipts = %d", len(h.Receipts))
	}
}

func TestBuildIsRepeatableAndIsolated(t *testing.T) {
	b := NewBuilder()
	must(t, b.Add(1, day(0), []retail.ItemID{1}, 1))
	s1 := b.Build()
	must(t, b.Add(1, day(1), []retail.ItemID{2}, 2))
	s2 := b.Build()
	if s1.NumReceipts() != 1 {
		t.Fatalf("first snapshot changed after later Add: %d receipts", s1.NumReceipts())
	}
	if s2.NumReceipts() != 2 {
		t.Fatalf("second snapshot = %d receipts", s2.NumReceipts())
	}
}

func TestSummarize(t *testing.T) {
	s := buildTestStore(t)
	st := s.Summarize(2)
	if st.Customers != 2 || st.Receipts != 5 {
		t.Fatalf("stats: %+v", st)
	}
	if st.DistinctItems != 4 {
		t.Fatalf("DistinctItems = %d, want 4", st.DistinctItems)
	}
	if len(st.TopItems) != 2 {
		t.Fatalf("TopItems = %v", st.TopItems)
	}
	// Item 1 appears in 3 receipts, more than any other.
	if st.TopItems[0].Item != 1 || st.TopItems[0].Count != 3 {
		t.Fatalf("TopItems[0] = %+v", st.TopItems[0])
	}
	if len(st.MonthlyActiveCnt) != 1 || st.MonthlyActiveCnt[0] != 2 {
		t.Fatalf("MonthlyActiveCnt = %v", st.MonthlyActiveCnt)
	}
}

func TestMonthsBetween(t *testing.T) {
	tests := []struct {
		a, b time.Time
		want int
	}{
		{day(0), day(0), 0},
		{day(0), day(30), 0}, // May 1 .. May 31
		{day(0), day(31), 1}, // June 1
		{day(0), day(365), 12},
	}
	for _, tt := range tests {
		if got := monthsBetween(tt.a, tt.b); got != tt.want {
			t.Errorf("monthsBetween(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}
