package store

// Bounded-resource operations on persisted snapshots: windowed receipt
// eviction, STB1 segment-chain compaction, and a polling follower that
// tails a growing snapshot file. These are the store half of the
// always-on story; the monitor half (retention horizon, idle-customer
// eviction) lives in internal/stream.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	iofs "io/fs"
	"sort"
	"time"

	"github.com/gautrais/stability/internal/faultfs"
	"github.com/gautrais/stability/internal/retail"
)

// EvictBefore returns a store without the receipts timestamped before
// cutoff; customers left with no receipts are dropped entirely. Surviving
// receipt slices alias s (the store is immutable, so sharing is safe).
// WriteBinary of the result is byte-identical to a from-scratch build of
// the surviving receipts: eviction only removes chronological prefixes,
// so order and encoding are unchanged.
func (s *Store) EvictBefore(cutoff time.Time) *Store {
	histories := make([]retail.History, 0, len(s.histories))
	for _, h := range s.histories {
		rs := h.Receipts
		lo := sort.Search(len(rs), func(i int) bool { return !rs[i].Time.Before(cutoff) })
		if lo == len(rs) {
			continue
		}
		histories = append(histories, retail.History{Customer: h.Customer, Receipts: rs[lo:]})
	}
	return assemble(histories)
}

// CompactStats reports what one CompactFile call did.
type CompactStats struct {
	SegmentsBefore  int   // STB1 segments in the chain before (after: always 1)
	BytesBefore     int64 // file size before
	BytesAfter      int64 // file size after
	CustomersBefore int
	CustomersAfter  int // smaller only when a cutoff evicted whole customers
	ReceiptsBefore  int
	ReceiptsAfter   int
}

// CompactFile rewrites the STB1 segment chain at path as a single segment,
// evicting receipts before cutoff first (a zero cutoff keeps everything).
// The output is byte-identical to WriteBinary of the surviving receipts.
//
// The rewrite is crash-safe: the new bytes go to path+".tmp", are fsync'd,
// and renamed over path. A crash at any point leaves either the old chain
// or the new single segment on disk — never a mix, never a partial file at
// path. A leftover .tmp from a crashed run is overwritten by the next one.
func CompactFile(fsys faultfs.FS, path string, cutoff time.Time) (CompactStats, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	f, err := fsys.Open(path)
	if err != nil {
		return CompactStats{}, err
	}
	s, segments, err := readBinaryAll(bufio.NewReader(f))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return CompactStats{}, fmt.Errorf("store: compact %s: %w", path, err)
	}
	info, err := fsys.Stat(path)
	if err != nil {
		return CompactStats{}, err
	}
	stats := CompactStats{
		SegmentsBefore:  segments,
		BytesBefore:     info.Size(),
		CustomersBefore: s.NumCustomers(),
		ReceiptsBefore:  s.NumReceipts(),
	}
	if !cutoff.IsZero() {
		s = s.EvictBefore(cutoff)
	}
	stats.CustomersAfter = s.NumCustomers()
	stats.ReceiptsAfter = s.NumReceipts()

	tmp := path + ".tmp"
	tf, err := fsys.Create(tmp)
	if err != nil {
		return stats, fmt.Errorf("store: compact %s: %w", path, err)
	}
	if err := s.WriteBinary(tf); err != nil {
		tf.Close()
		fsys.Remove(tmp)
		return stats, fmt.Errorf("store: compact %s: %w", path, err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		fsys.Remove(tmp)
		return stats, fmt.Errorf("store: compact %s: sync: %w", path, err)
	}
	if err := tf.Close(); err != nil {
		fsys.Remove(tmp)
		return stats, fmt.Errorf("store: compact %s: close: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return stats, fmt.Errorf("store: compact %s: rename: %w", path, err)
	}
	info, err = fsys.Stat(path)
	if err != nil {
		return stats, err
	}
	stats.BytesAfter = info.Size()
	return stats, nil
}

// ErrFileShrank is returned by Follower.Poll when the followed file got
// smaller: it was compacted or replaced out from under the follower, so
// its byte offset no longer means anything. The caller must resynchronize
// (typically: rebuild from the whole file) rather than keep polling.
var ErrFileShrank = errors.New("store: followed file shrank (compacted or replaced)")

// Follower tails a growing STB1 segment chain by polling — stat for a size
// change, then decode the bytes past the last complete segment boundary.
// No inotify: polling is portable and the snapshot cadence is seconds, not
// microseconds.
//
// A torn tail (the writer caught mid-append, or a writer that crashed
// mid-append) decodes as a premature EOF and is retried from the same
// boundary on the next poll; varints and fixed-width fields can only
// shrink under truncation, never decode to different valid values, so a
// partial segment is always detected. Only a malformed segment — bad
// magic, corrupt counts — is a hard error. A crashed writer's permanently
// torn tail is indistinguishable from an in-progress append, so the
// follower retries it forever; if the writer later appends a fresh segment
// after the torn bytes, decoding fails loudly instead of skipping data.
type Follower struct {
	fsys     faultfs.FS
	path     string
	offset   int64 // bytes consumed; always a complete-segment boundary
	segments int   // complete segments consumed
	// sum is the running FNV-64a of every consumed byte. An append-only
	// writer never changes bytes before offset, so when the boundary stops
	// decoding the prefix hash discriminates: unchanged prefix = the
	// writer appended garbage (hard error), changed prefix = the file was
	// rewritten underneath us (ErrFileShrank) — which a compaction that
	// regrows past our offset before the next poll would otherwise
	// masquerade as corruption.
	sum hash.Hash64
}

// NewFollower returns a follower positioned at the start of path. The file
// need not exist yet: polls report nothing until it appears.
func NewFollower(fsys faultfs.FS, path string) *Follower {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	return &Follower{fsys: fsys, path: path, sum: fnv.New64a()}
}

// Offset reports the byte offset of the last complete segment boundary.
func (f *Follower) Offset() int64 { return f.offset }

// Segments reports how many complete segments have been consumed.
func (f *Follower) Segments() int { return f.segments }

// Poll decodes any segments appended since the last call and returns a
// store holding just those receipts, or (nil, nil) when no complete new
// segment has landed. Errors other than ErrFileShrank are transient
// (stat/open/read) or permanent corruption; both leave the follower at its
// last good boundary.
func (f *Follower) Poll() (*Store, error) {
	info, err := f.fsys.Stat(f.path)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	switch size := info.Size(); {
	case size == f.offset:
		return nil, nil
	case size < f.offset:
		return nil, fmt.Errorf("%w: %s is %d bytes, follower at %d", ErrFileShrank, f.path, size, f.offset)
	}
	file, err := f.fsys.Open(f.path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	if _, err := file.Seek(f.offset, io.SeekStart); err != nil {
		return nil, err
	}
	data, err := io.ReadAll(file)
	if err != nil {
		return nil, err
	}

	// Decode segment by segment, each into a fresh builder, so a torn
	// trailing segment never contaminates the complete ones before it.
	agg := NewBuilder()
	br := bytes.NewReader(data)
	base := f.offset
	newSegs := 0
	for br.Len() > 0 {
		segStart := int64(len(data)) - int64(br.Len())
		seg := NewBuilder()
		if err := readBinarySegment(br, seg, f.segments+newSegs == 0); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn tail: retry from this boundary next poll
			}
			if newSegs > 0 {
				// Deliver the complete segments before the corruption; the
				// offset now sits at the bad boundary, so the next poll
				// reports the hard error without losing these receipts.
				break
			}
			if rewritten, rerr := f.prefixChanged(); rerr == nil && rewritten {
				return nil, fmt.Errorf("%w: %s rewritten under follower at byte %d", ErrFileShrank, f.path, base+segStart)
			}
			return nil, fmt.Errorf("store: follow %s at byte %d: %w", f.path, base+segStart, err)
		}
		agg.Merge(seg)
		consumed := int64(len(data)) - int64(br.Len())
		f.sum.Write(data[segStart:consumed])
		f.offset = base + consumed
		f.segments++
		newSegs++
	}
	if newSegs == 0 {
		return nil, nil
	}
	return agg.Build(), nil
}

// prefixChanged re-reads the consumed prefix and reports whether its bytes
// differ from what the follower already decoded — the discriminator
// between an appended bad segment (prefix intact: corruption) and a file
// rewritten underneath the follower after it regrew past the old offset
// (prefix changed: resync like ErrFileShrank).
func (f *Follower) prefixChanged() (bool, error) {
	file, err := f.fsys.Open(f.path)
	if err != nil {
		return false, err
	}
	defer file.Close()
	h := fnv.New64a()
	n, err := io.CopyN(h, file, f.offset)
	if err != nil || n < f.offset {
		// The file shrank again between reads; either way the prefix the
		// follower consumed is gone.
		return true, nil
	}
	return h.Sum64() != f.sum.Sum64(), nil
}
