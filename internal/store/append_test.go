package store

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

// TestBuilderMergeAliasing is the regression test for the Merge aliasing
// bug: Merge used to store the other builder's *retail.History pointers
// directly, so a later Add on either builder mutated both. Merge must copy
// the history header (with clipped capacity) so the builders stay
// independent.
func TestBuilderMergeAliasing(t *testing.T) {
	other := NewBuilder()
	must(t, other.Add(7, day(0), []retail.ItemID{1}, 1))
	b := NewBuilder()
	b.Merge(other)

	// Mutating either builder after the merge must not leak into the other.
	must(t, b.Add(7, day(1), []retail.ItemID{2}, 2))
	must(t, other.Add(7, day(2), []retail.ItemID{3}, 3))

	sb := b.Build()
	so := other.Build()
	hb, err := sb.History(7)
	if err != nil {
		t.Fatal(err)
	}
	ho, err := so.History(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Receipts) != 2 {
		t.Fatalf("merged builder sees %d receipts, want 2 (its own Add leaked away or the other's leaked in)", len(hb.Receipts))
	}
	if len(ho.Receipts) != 2 {
		t.Fatalf("source builder sees %d receipts, want 2", len(ho.Receipts))
	}
	if !hb.Receipts[1].Items.Equal(retail.Basket{2}) {
		t.Fatalf("merged builder's second receipt = %v, want [2]", hb.Receipts[1].Items)
	}
	if !ho.Receipts[1].Items.Equal(retail.Basket{3}) {
		t.Fatalf("source builder's second receipt = %v, want [3] — the merge aliased the history", ho.Receipts[1].Items)
	}
}

// receiptEvent is one raw receipt for the append property tests.
type receiptEvent struct {
	id    retail.CustomerID
	t     time.Time
	items []retail.ItemID
	spend float64
}

// randomEvents draws a pseudo-random receipt schedule with plenty of
// duplicate timestamps (stable-order stress) and shared customers.
func randomEvents(r *rand.Rand, n int) []receiptEvent {
	events := make([]receiptEvent, n)
	for i := range events {
		items := make([]retail.ItemID, r.Intn(5))
		for j := range items {
			items[j] = retail.ItemID(r.Intn(40) + 1)
		}
		events[i] = receiptEvent{
			id: retail.CustomerID(r.Intn(8) + 1),
			// Coarse second resolution forces timestamp collisions.
			t:     day(r.Intn(60)).Add(time.Duration(r.Intn(8)) * time.Hour),
			items: items,
			spend: float64(r.Intn(1000)) / 100,
		}
	}
	return events
}

func addEvents(t *testing.T, b *Builder, events []receiptEvent) {
	t.Helper()
	for _, ev := range events {
		must(t, b.Add(ev.id, ev.t, ev.items, ev.spend))
	}
}

func storeBytes(t *testing.T, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAppendBuildEquivalence is the append/build property test: for random
// splits of a random receipt schedule into a frozen base and an appended
// batch — including receipts that land before the frozen boundary, brand
// -new customers, and duplicate timestamps — Append at every worker count
// is byte-identical (binary codec) to a from-scratch sequential Build of
// the whole schedule, and BuildWith is worker-count invariant.
func TestAppendBuildEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		events := randomEvents(r, 40+r.Intn(80))

		var oldEvents, newEvents []receiptEvent
		for _, ev := range events {
			// Random assignment (not a time split): the appended batch
			// regularly reaches across the old/new boundary out of order.
			if r.Intn(3) == 0 {
				newEvents = append(newEvents, ev)
			} else {
				oldEvents = append(oldEvents, ev)
			}
		}

		ref := NewBuilder()
		addEvents(t, ref, oldEvents)
		addEvents(t, ref, newEvents)
		want := storeBytes(t, ref.BuildWith(Options{Workers: 1}))

		base := NewBuilder()
		addEvents(t, base, oldEvents)
		for _, workers := range []int{1, 2, 4, 8} {
			prev := base.BuildWith(Options{Workers: workers})
			if got := storeBytes(t, prev); !bytes.Equal(got, storeBytes(t, base.BuildWith(Options{Workers: 1}))) {
				t.Fatalf("seed %d workers %d: BuildWith not worker-invariant", seed, workers)
			}
			delta := NewBuilder()
			addEvents(t, delta, newEvents)
			got := storeBytes(t, delta.AppendWith(prev, Options{Workers: workers}))
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d workers %d: Append+Build differs from sequential from-scratch Build", seed, workers)
			}
		}
	}
}

// TestAppendReusesFrozenHistories pins the zero-copy path: a customer the
// appended batch does not touch shares the previous store's receipt slice
// outright, and the previous store is never mutated.
func TestAppendReusesFrozenHistories(t *testing.T) {
	base := NewBuilder()
	must(t, base.Add(1, day(0), []retail.ItemID{1}, 1))
	must(t, base.Add(2, day(1), []retail.ItemID{2}, 2))
	prev := base.Build()

	delta := NewBuilder()
	must(t, delta.Add(2, day(2), []retail.ItemID{3}, 3))
	cur := delta.Append(prev)

	untouchedPrev, err := prev.History(1)
	if err != nil {
		t.Fatal(err)
	}
	untouchedCur, err := cur.History(1)
	if err != nil {
		t.Fatal(err)
	}
	if &untouchedPrev.Receipts[0] != &untouchedCur.Receipts[0] {
		t.Error("untouched history was copied instead of aliased")
	}
	prevTouched, err := prev.History(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(prevTouched.Receipts) != 1 {
		t.Fatalf("previous store mutated: customer 2 has %d receipts", len(prevTouched.Receipts))
	}
	curTouched, err := cur.History(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(curTouched.Receipts) != 2 {
		t.Fatalf("appended store: customer 2 has %d receipts, want 2", len(curTouched.Receipts))
	}
	if cur.NumReceipts() != 3 {
		t.Fatalf("appended store receipts = %d, want 3", cur.NumReceipts())
	}
	if _, _, ok := cur.TimeRange(); !ok {
		t.Fatal("appended store has no time range")
	}
}

// TestAppendNilOrEmptyPrev pins the degenerate cases.
func TestAppendNilOrEmptyPrev(t *testing.T) {
	delta := NewBuilder()
	must(t, delta.Add(1, day(0), []retail.ItemID{1}, 1))
	if s := delta.Append(nil); s.NumReceipts() != 1 {
		t.Fatalf("Append(nil) = %d receipts, want 1", s.NumReceipts())
	}
	if s := delta.Append(NewBuilder().Build()); s.NumReceipts() != 1 {
		t.Fatalf("Append(empty) = %d receipts, want 1", s.NumReceipts())
	}
	if s := NewBuilder().Append(delta.Build()); s.NumReceipts() != 1 {
		t.Fatalf("empty-builder Append = %d receipts, want 1", s.NumReceipts())
	}
}

// TestDeltaSince pins the delta contract: per-customer suffixes beyond
// prev, extension-shape violations rejected.
func TestDeltaSince(t *testing.T) {
	base := NewBuilder()
	must(t, base.Add(1, day(0), []retail.ItemID{1}, 1))
	must(t, base.Add(2, day(1), []retail.ItemID{2}, 2))
	prev := base.Build()

	delta := NewBuilder()
	must(t, delta.Add(2, day(3), []retail.ItemID{4}, 4))
	must(t, delta.Add(3, day(2), []retail.ItemID{3}, 3))
	cur := delta.Append(prev)

	got, err := cur.DeltaSince(prev)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("delta holds %d customers, want 2", len(got))
	}
	if got[0].Customer != 2 || len(got[0].Receipts) != 1 || !got[0].Receipts[0].Items.Equal(retail.Basket{4}) {
		t.Fatalf("delta[0] = %+v", got[0])
	}
	if got[1].Customer != 3 || len(got[1].Receipts) != 1 {
		t.Fatalf("delta[1] = %+v", got[1])
	}

	// Nil prev yields everything.
	all, err := cur.DeltaSince(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("DeltaSince(nil) = %d customers, want 3", len(all))
	}

	// A store that is not an extension is rejected.
	if _, err := prev.DeltaSince(cur); err == nil {
		t.Fatal("shrunken store accepted as extension")
	}
	mutated := NewBuilder()
	must(t, mutated.Add(1, day(0), []retail.ItemID{9}, 1)) // different boundary basket
	must(t, mutated.Add(2, day(1), []retail.ItemID{2}, 2))
	if _, err := mutated.Build().DeltaSince(prev); err == nil {
		t.Fatal("store with a rewritten boundary receipt accepted as extension")
	}
	missing := NewBuilder()
	must(t, missing.Add(2, day(1), []retail.ItemID{2}, 2))
	if _, err := missing.Build().DeltaSince(prev); err == nil {
		t.Fatal("store missing a prev customer accepted as extension")
	}
}
