package store

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/stats"
)

// Stats summarizes a store's contents, mirroring the dataset description in
// the paper's experiments section (customer count, receipt count, time
// span, item dictionary size, basket-size distribution).
type Stats struct {
	Customers        int
	Receipts         int
	DistinctItems    int
	First, Last      time.Time
	BasketSize       stats.Summary
	ReceiptsPerCust  stats.Summary
	SpendPerReceipt  stats.Summary
	TopItems         []ItemCount // most frequently bought items, descending
	MonthlyActiveCnt []int       // active customers per month since First
}

// ItemCount pairs an item with the number of receipts containing it.
type ItemCount struct {
	Item  retail.ItemID
	Count int
}

// Summarize computes dataset statistics. topN limits the TopItems list.
func (s *Store) Summarize(topN int) Stats {
	var (
		basketSizes []float64
		perCust     []float64
		spends      []float64
		itemCounts  = make(map[retail.ItemID]int)
	)
	st := Stats{Customers: len(s.histories), Receipts: s.receipts, First: s.minTime, Last: s.maxTime}
	months := 0
	if s.receipts > 0 {
		months = monthsBetween(s.minTime, s.maxTime) + 1
	}
	active := make([]map[retail.CustomerID]bool, months)
	for i := range active {
		active[i] = make(map[retail.CustomerID]bool)
	}
	for _, h := range s.histories {
		perCust = append(perCust, float64(len(h.Receipts)))
		for _, r := range h.Receipts {
			basketSizes = append(basketSizes, float64(len(r.Items)))
			spends = append(spends, r.Spend)
			for _, it := range r.Items {
				itemCounts[it]++
			}
			if months > 0 {
				m := monthsBetween(s.minTime, r.Time)
				if m >= 0 && m < months {
					active[m][h.Customer] = true
				}
			}
		}
	}
	st.DistinctItems = len(itemCounts)
	st.BasketSize = stats.Summarize(basketSizes)
	st.ReceiptsPerCust = stats.Summarize(perCust)
	st.SpendPerReceipt = stats.Summarize(spends)
	st.TopItems = make([]ItemCount, 0, len(itemCounts))
	//detlint:ignore R1 collects counts; TopItems is totally ordered (count desc, item asc) right below
	for it, c := range itemCounts {
		st.TopItems = append(st.TopItems, ItemCount{Item: it, Count: c})
	}
	sort.Slice(st.TopItems, func(i, j int) bool {
		if st.TopItems[i].Count != st.TopItems[j].Count {
			return st.TopItems[i].Count > st.TopItems[j].Count
		}
		return st.TopItems[i].Item < st.TopItems[j].Item
	})
	if topN > 0 && len(st.TopItems) > topN {
		st.TopItems = st.TopItems[:topN]
	}
	st.MonthlyActiveCnt = make([]int, months)
	for i, m := range active {
		st.MonthlyActiveCnt[i] = len(m)
	}
	return st
}

// monthsBetween counts whole calendar months from a to b (0 when a and b
// fall in the same month).
func monthsBetween(a, b time.Time) int {
	ay, am := a.Year(), int(a.Month())
	by, bm := b.Year(), int(b.Month())
	return (by-ay)*12 + bm - am
}

// Render writes a human-readable report.
func (st Stats) Render(w io.Writer) {
	fmt.Fprintf(w, "customers:       %d\n", st.Customers)
	fmt.Fprintf(w, "receipts:        %d\n", st.Receipts)
	fmt.Fprintf(w, "distinct items:  %d\n", st.DistinctItems)
	if !st.First.IsZero() {
		fmt.Fprintf(w, "time span:       %s .. %s (%d months)\n",
			st.First.Format("2006-01-02"), st.Last.Format("2006-01-02"), len(st.MonthlyActiveCnt))
	}
	fmt.Fprintf(w, "basket size:     %s\n", st.BasketSize)
	fmt.Fprintf(w, "receipts/cust:   %s\n", st.ReceiptsPerCust)
	fmt.Fprintf(w, "spend/receipt:   %s\n", st.SpendPerReceipt)
	if len(st.TopItems) > 0 {
		fmt.Fprintf(w, "top items:      ")
		for _, ic := range st.TopItems {
			fmt.Fprintf(w, " %d(%d)", ic.Item, ic.Count)
		}
		fmt.Fprintln(w)
	}
}
