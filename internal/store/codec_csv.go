package store

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

// CSV receipt format, one row per receipt:
//
//	customer,timestamp(RFC3339),spend,items
//
// where items is a "|"-separated list of segment identifiers. A header row
// "customer,timestamp,spend,items" is written and tolerated on read.
const csvHeader = "customer,timestamp,spend,items"

// WriteCSV serializes every receipt in customer order.
func (s *Store) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(strings.Split(csvHeader, ",")); err != nil {
		return fmt.Errorf("store: write csv header: %w", err)
	}
	if err := writeCSVHistories(cw, s.histories); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVDelta serializes only the receipts s holds beyond prev (see
// DeltaSince for the extension contract), without a header row: appending
// the output to a file that decodes to prev yields a file that decodes to
// s — the reader sorts per-customer rows, so trailing delta rows are fine.
func (s *Store) WriteCSVDelta(w io.Writer, prev *Store) error {
	delta, err := s.DeltaSince(prev)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := writeCSVHistories(cw, delta); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// writeCSVHistories streams one row per receipt in history order.
func writeCSVHistories(cw *csv.Writer, histories []retail.History) error {
	var sb strings.Builder
	for _, h := range histories {
		for _, r := range h.Receipts {
			sb.Reset()
			for i, it := range r.Items {
				if i > 0 {
					sb.WriteByte('|')
				}
				sb.WriteString(strconv.FormatUint(uint64(it), 10))
			}
			rec := []string{
				strconv.FormatUint(uint64(h.Customer), 10),
				r.Time.UTC().Format(time.RFC3339),
				strconv.FormatFloat(r.Spend, 'f', 2, 64),
				sb.String(),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("store: write csv row: %w", err)
			}
		}
	}
	return nil
}

// CSVOptions tunes ReadCSV.
type CSVOptions struct {
	// Strict aborts on the first malformed row. When false, malformed rows
	// are skipped and counted.
	Strict bool
}

// CSVReport describes what ReadCSV consumed.
type CSVReport struct {
	Rows    int // data rows seen (excluding header)
	Skipped int // malformed rows skipped (Strict=false only)
}

// ReadCSV parses the receipt CSV format into a fresh Store.
func ReadCSV(r io.Reader, opts CSVOptions) (*Store, CSVReport, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	b := NewBuilder()
	var rep CSVReport
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if opts.Strict {
				return nil, rep, fmt.Errorf("store: csv parse: %w", err)
			}
			rep.Skipped++
			continue
		}
		line++
		if line == 1 && len(rec) > 0 && rec[0] == "customer" {
			continue // header
		}
		rep.Rows++
		if err := addCSVRow(b, rec); err != nil {
			if opts.Strict {
				return nil, rep, fmt.Errorf("store: line %d: %w", line, err)
			}
			rep.Rows--
			rep.Skipped++
		}
	}
	return b.Build(), rep, nil
}

func addCSVRow(b *Builder, rec []string) error {
	if len(rec) != 4 {
		return fmt.Errorf("want 4 fields, got %d", len(rec))
	}
	cust, err := strconv.ParseUint(rec[0], 10, 64)
	if err != nil {
		return fmt.Errorf("bad customer %q: %w", rec[0], err)
	}
	ts, err := time.Parse(time.RFC3339, rec[1])
	if err != nil {
		return fmt.Errorf("bad timestamp %q: %w", rec[1], err)
	}
	spend, err := strconv.ParseFloat(rec[2], 64)
	if err != nil {
		return fmt.Errorf("bad spend %q: %w", rec[2], err)
	}
	var items []retail.ItemID
	if rec[3] != "" {
		for _, f := range strings.Split(rec[3], "|") {
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return fmt.Errorf("bad item %q: %w", f, err)
			}
			if v == 0 {
				return fmt.Errorf("item id 0 is reserved")
			}
			items = append(items, retail.ItemID(v))
		}
	}
	return b.Add(retail.CustomerID(cust), ts, items, spend)
}

// WriteLabelsCSV serializes ground-truth labels as
// "customer,cohort,onset_month" rows with a header.
func WriteLabelsCSV(w io.Writer, labels []retail.Label) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"customer", "cohort", "onset_month"}); err != nil {
		return fmt.Errorf("store: write labels header: %w", err)
	}
	for _, l := range labels {
		rec := []string{
			strconv.FormatUint(uint64(l.Customer), 10),
			l.Cohort.String(),
			strconv.Itoa(l.OnsetMonth),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("store: write label row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadLabelsCSV parses the label CSV format.
func ReadLabelsCSV(r io.Reader) ([]retail.Label, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	var out []retail.Label
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("store: labels csv parse: %w", err)
		}
		line++
		if line == 1 && rec[0] == "customer" {
			continue
		}
		cust, err := strconv.ParseUint(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("store: labels line %d: bad customer %q: %w", line, rec[0], err)
		}
		cohort, err := retail.ParseCohort(rec[1])
		if err != nil {
			return nil, fmt.Errorf("store: labels line %d: %w", line, err)
		}
		onset, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("store: labels line %d: bad onset %q: %w", line, rec[2], err)
		}
		out = append(out, retail.Label{Customer: retail.CustomerID(cust), Cohort: cohort, OnsetMonth: onset})
	}
	return out, nil
}
