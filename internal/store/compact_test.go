package store

import (
	"bytes"
	"errors"
	iofs "io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"github.com/gautrais/stability/internal/faultfs"
	"github.com/gautrais/stability/internal/retail"
)

// seededStore builds a deterministic store big enough to span several
// delta segments: every customer receives receipts, unlike randomStore.
func seededStore(seed int64, customers, receiptsPer, maxDay int) *Store {
	r := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	for c := 0; c < customers; c++ {
		id := retail.CustomerID(c*31 + 1)
		for i := 0; i < receiptsPer; i++ {
			items := make([]retail.ItemID, r.Intn(4)+1)
			for j := range items {
				items[j] = retail.ItemID(r.Intn(50) + 1)
			}
			ts := day(r.Intn(maxDay)).Add(time.Duration(r.Intn(86400)) * time.Second)
			if err := b.Add(id, ts, items, float64(r.Intn(10000))/100); err != nil {
				panic(err)
			}
		}
	}
	return b.Build()
}

// prefixBefore extracts the sub-store of receipts strictly before cutoff.
// Each per-customer slice is a chronological prefix, so the result
// satisfies DeltaSince's extension contract against the full store.
func prefixBefore(t *testing.T, s *Store, cutoff time.Time) *Store {
	t.Helper()
	b := NewBuilder()
	s.Each(func(h retail.History) bool {
		for _, r := range h.Receipts {
			if !r.Time.Before(cutoff) {
				break
			}
			must(t, b.AddReceipt(h.Customer, r))
		}
		return true
	})
	return b.Build()
}

// binaryBytes renders a store as a single STB1 segment.
func binaryBytes(t *testing.T, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	must(t, s.WriteBinary(&buf))
	return buf.Bytes()
}

// deltaBytes renders the receipts s holds beyond prev as one segment.
func deltaBytes(t *testing.T, s, prev *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	must(t, s.WriteBinaryDelta(&buf, prev))
	return buf.Bytes()
}

// writeChain persists full as a 3-segment chain (base + two deltas) and
// returns the path.
func writeChain(t *testing.T, full *Store) string {
	t.Helper()
	s1 := prefixBefore(t, full, day(150))
	s2 := prefixBefore(t, full, day(300))
	path := filepath.Join(t.TempDir(), "chain.stb")
	var buf bytes.Buffer
	buf.Write(binaryBytes(t, s1))
	buf.Write(deltaBytes(t, s2, s1))
	buf.Write(deltaBytes(t, full, s2))
	must(t, os.WriteFile(path, buf.Bytes(), 0o644))
	return path
}

func TestEvictBeforeMatchesFromScratch(t *testing.T) {
	prop := func(seed int64, cutDay uint16) bool {
		orig := randomStore(seed)
		cutoff := day(int(cutDay) % 450)
		got := orig.EvictBefore(cutoff)
		// From-scratch reference: rebuild keeping only surviving receipts.
		b := NewBuilder()
		orig.Each(func(h retail.History) bool {
			for _, r := range h.Receipts {
				if !r.Time.Before(cutoff) {
					if err := b.AddReceipt(h.Customer, r); err != nil {
						panic(err)
					}
				}
			}
			return true
		})
		want := b.Build()
		if !storesEqual(want, got) {
			return false
		}
		var wb, gb bytes.Buffer
		if want.WriteBinary(&wb) != nil || got.WriteBinary(&gb) != nil {
			return false
		}
		return bytes.Equal(wb.Bytes(), gb.Bytes())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEvictBeforeBoundaries(t *testing.T) {
	s := seededStore(11, 6, 8, 400)
	if got := s.EvictBefore(day(0)); !bytes.Equal(binaryBytes(t, got), binaryBytes(t, s)) {
		t.Fatal("cutoff before all receipts changed the store")
	}
	empty := s.EvictBefore(day(1000))
	if empty.NumCustomers() != 0 || empty.NumReceipts() != 0 {
		t.Fatalf("cutoff past all receipts left %d customers, %d receipts",
			empty.NumCustomers(), empty.NumReceipts())
	}
}

// TestCompactFileByteIdentical: compacting a 3-segment chain must produce
// exactly the bytes of a from-scratch WriteBinary, and be idempotent.
func TestCompactFileByteIdentical(t *testing.T) {
	full := seededStore(21, 8, 10, 400)
	path := writeChain(t, full)
	before, err := os.ReadFile(path)
	must(t, err)

	stats, err := CompactFile(faultfs.OS{}, path, time.Time{})
	must(t, err)
	got, err := os.ReadFile(path)
	must(t, err)
	want := binaryBytes(t, full)
	if !bytes.Equal(want, got) {
		t.Fatal("compacted file differs from from-scratch WriteBinary")
	}
	if stats.SegmentsBefore != 3 {
		t.Fatalf("SegmentsBefore = %d, want 3", stats.SegmentsBefore)
	}
	if stats.BytesBefore != int64(len(before)) || stats.BytesAfter != int64(len(want)) {
		t.Fatalf("byte stats %d->%d, want %d->%d",
			stats.BytesBefore, stats.BytesAfter, len(before), len(want))
	}
	if stats.ReceiptsBefore != full.NumReceipts() || stats.ReceiptsAfter != full.NumReceipts() {
		t.Fatalf("receipt stats %d->%d, want %d->%d",
			stats.ReceiptsBefore, stats.ReceiptsAfter, full.NumReceipts(), full.NumReceipts())
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("temp file left behind: stat err = %v", err)
	}

	again, err := CompactFile(faultfs.OS{}, path, time.Time{})
	must(t, err)
	if again.SegmentsBefore != 1 {
		t.Fatalf("second compaction saw %d segments, want 1", again.SegmentsBefore)
	}
	rebytes, err := os.ReadFile(path)
	must(t, err)
	if !bytes.Equal(want, rebytes) {
		t.Fatal("compaction is not idempotent")
	}
}

// TestCompactFileWithCutoff: compaction with a cutoff equals WriteBinary
// of EvictBefore on the merged store.
func TestCompactFileWithCutoff(t *testing.T) {
	full := seededStore(22, 8, 10, 400)
	path := writeChain(t, full)
	cutoff := day(200)

	stats, err := CompactFile(faultfs.OS{}, path, cutoff)
	must(t, err)
	got, err := os.ReadFile(path)
	must(t, err)
	survivors := full.EvictBefore(cutoff)
	if !bytes.Equal(binaryBytes(t, survivors), got) {
		t.Fatal("cutoff compaction differs from EvictBefore + WriteBinary")
	}
	if stats.ReceiptsAfter != survivors.NumReceipts() || stats.CustomersAfter != survivors.NumCustomers() {
		t.Fatalf("stats after = %d customers / %d receipts, want %d / %d",
			stats.CustomersAfter, stats.ReceiptsAfter, survivors.NumCustomers(), survivors.NumReceipts())
	}
	if stats.ReceiptsAfter >= stats.ReceiptsBefore {
		t.Fatal("cutoff at day 200 evicted nothing; test feed is too narrow")
	}
}

// TestCompactFileCrash drives the kill-mid-compaction crash points: a
// fault anywhere in the rewrite must leave the original chain byte-intact,
// and a clean rerun must converge to the from-scratch bytes.
func TestCompactFileCrash(t *testing.T) {
	full := seededStore(23, 8, 10, 400)
	cases := []struct {
		name        string
		fp          faultfs.Failpoint
		tmpSurvives bool
	}{
		{"crash-mid-write", faultfs.Failpoint{Op: faultfs.OpWrite, PathSuffix: ".tmp", Crash: true, CrashAtByte: 32}, false},
		{"write-error", faultfs.Failpoint{Op: faultfs.OpWrite, PathSuffix: ".tmp"}, false},
		{"sync-error", faultfs.Failpoint{Op: faultfs.OpSync, PathSuffix: ".tmp"}, false},
		{"create-error", faultfs.Failpoint{Op: faultfs.OpCreate, PathSuffix: ".tmp"}, false},
		{"rename-error", faultfs.Failpoint{Op: faultfs.OpRename, PathSuffix: ".tmp"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeChain(t, full)
			before, err := os.ReadFile(path)
			must(t, err)

			in := faultfs.NewInjector(faultfs.OS{})
			in.Arm(tc.fp)
			if _, err := CompactFile(in, path, time.Time{}); err == nil {
				t.Fatal("compaction with an injected fault reported success")
			}
			if in.Fired() == 0 {
				t.Fatal("failpoint never fired")
			}
			after, err := os.ReadFile(path)
			must(t, err)
			if !bytes.Equal(before, after) {
				t.Fatal("failed compaction touched the original file")
			}
			if !tc.tmpSurvives {
				if _, err := os.Stat(path + ".tmp"); !errors.Is(err, iofs.ErrNotExist) {
					t.Fatalf("stray temp file after failed compaction: stat err = %v", err)
				}
			}

			// Recovery: a clean rerun overwrites any stale .tmp remnant and
			// lands exactly on the from-scratch bytes.
			if _, err := CompactFile(faultfs.OS{}, path, time.Time{}); err != nil {
				t.Fatalf("recovery compaction failed: %v", err)
			}
			got, err := os.ReadFile(path)
			must(t, err)
			if !bytes.Equal(binaryBytes(t, full), got) {
				t.Fatal("recovered file differs from from-scratch WriteBinary")
			}
		})
	}
}

// TestCompactFileStaleTmpRemnant: a garbage .tmp left by a real crash must
// not poison the next compaction.
func TestCompactFileStaleTmpRemnant(t *testing.T) {
	full := seededStore(24, 6, 8, 400)
	path := writeChain(t, full)
	must(t, os.WriteFile(path+".tmp", []byte("torn garbage from a dead process"), 0o644))
	if _, err := CompactFile(faultfs.OS{}, path, time.Time{}); err != nil {
		t.Fatalf("compaction over a stale tmp failed: %v", err)
	}
	got, err := os.ReadFile(path)
	must(t, err)
	if !bytes.Equal(binaryBytes(t, full), got) {
		t.Fatal("compacted bytes differ with a stale tmp present")
	}
}

// TestFollowerTailAndCatchup: the follower sees the base segment, reports
// nothing while idle, and picks up each appended delta exactly once.
func TestFollowerTailAndCatchup(t *testing.T) {
	full := seededStore(31, 6, 9, 400)
	s1 := prefixBefore(t, full, day(150))
	s2 := prefixBefore(t, full, day(300))
	path := filepath.Join(t.TempDir(), "tail.stb")

	f := NewFollower(nil, path)
	if got, err := f.Poll(); err != nil || got != nil {
		t.Fatalf("poll before the file exists: store=%v err=%v", got, err)
	}

	base := binaryBytes(t, s1)
	must(t, os.WriteFile(path, base, 0o644))
	got, err := f.Poll()
	must(t, err)
	if got == nil || !storesEqual(s1, got) {
		t.Fatal("first poll did not return the base segment's receipts")
	}
	if f.Offset() != int64(len(base)) || f.Segments() != 1 {
		t.Fatalf("after base: offset=%d segments=%d, want %d/1", f.Offset(), f.Segments(), len(base))
	}
	if got, err := f.Poll(); err != nil || got != nil {
		t.Fatalf("idle poll: store=%v err=%v", got, err)
	}

	// Two deltas appended between polls arrive merged in one poll.
	d1 := deltaBytes(t, s2, s1)
	d2 := deltaBytes(t, full, s2)
	appendFile(t, path, append(append([]byte(nil), d1...), d2...))
	got, err = f.Poll()
	must(t, err)
	tail := NewBuilder()
	full.Each(func(h retail.History) bool {
		pre, _ := s1.History(h.Customer)
		for _, r := range h.Receipts[len(pre.Receipts):] {
			must(t, tail.AddReceipt(h.Customer, r))
		}
		return true
	})
	if got == nil || !storesEqual(tail.Build(), got) {
		t.Fatal("catch-up poll did not return exactly the appended receipts")
	}
	if f.Segments() != 3 || f.Offset() != int64(len(base)+len(d1)+len(d2)) {
		t.Fatalf("after catch-up: offset=%d segments=%d", f.Offset(), f.Segments())
	}
}

func appendFile(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	must(t, err)
	_, err = f.Write(b)
	must(t, err)
	must(t, f.Close())
}

// TestFollowerTornTailEveryByte truncates an appended segment at every
// byte boundary: each prefix must read as a torn tail (base delivered,
// no error, offset pinned at the boundary), and completing the segment
// must deliver exactly its receipts.
func TestFollowerTornTailEveryByte(t *testing.T) {
	full := seededStore(32, 4, 6, 400)
	s1 := prefixBefore(t, full, day(200))
	base := binaryBytes(t, s1)
	delta := deltaBytes(t, full, s1)
	if len(delta) < 16 {
		t.Fatalf("delta segment implausibly small (%d bytes); feed too narrow", len(delta))
	}
	dir := t.TempDir()
	for n := 0; n < len(delta); n++ {
		path := filepath.Join(dir, "torn.stb")
		must(t, os.WriteFile(path, append(append([]byte(nil), base...), delta[:n]...), 0o644))
		f := NewFollower(faultfs.OS{}, path)
		got, err := f.Poll()
		if err != nil {
			t.Fatalf("truncation at %d/%d: poll error %v", n, len(delta), err)
		}
		if got == nil || !storesEqual(s1, got) {
			t.Fatalf("truncation at %d: base segment not delivered", n)
		}
		if f.Offset() != int64(len(base)) || f.Segments() != 1 {
			t.Fatalf("truncation at %d: offset=%d segments=%d, want %d/1",
				n, f.Offset(), f.Segments(), len(base))
		}
		// Re-poll with the tail still torn: quiet retry, no movement.
		if got, err := f.Poll(); err != nil || got != nil {
			t.Fatalf("truncation at %d: torn re-poll store=%v err=%v", n, got, err)
		}
		// The writer finishes the append; the segment arrives whole.
		appendFile(t, path, delta[n:])
		got, err = f.Poll()
		if err != nil {
			t.Fatalf("truncation at %d: completed poll error %v", n, err)
		}
		if got == nil || got.NumReceipts() != full.NumReceipts()-s1.NumReceipts() {
			t.Fatalf("truncation at %d: completed segment not delivered", n)
		}
		if f.Offset() != int64(len(base)+len(delta)) {
			t.Fatalf("truncation at %d: final offset %d", n, f.Offset())
		}
	}
}

// TestFollowerCorruptTrailingSegment: a malformed appended segment is a
// hard error — after the good segments in the same poll are delivered.
func TestFollowerCorruptTrailingSegment(t *testing.T) {
	full := seededStore(33, 4, 6, 400)
	s1 := prefixBefore(t, full, day(200))
	base := binaryBytes(t, s1)
	delta := deltaBytes(t, full, s1)
	bad := append([]byte(nil), delta...)
	bad[0] ^= 0x5a // break the segment magic

	path := filepath.Join(t.TempDir(), "corrupt.stb")
	must(t, os.WriteFile(path, append(append([]byte(nil), base...), bad...), 0o644))
	f := NewFollower(faultfs.OS{}, path)
	got, err := f.Poll()
	must(t, err)
	if got == nil || !storesEqual(s1, got) {
		t.Fatal("good segment before the corruption was not delivered")
	}
	if _, err := f.Poll(); err == nil {
		t.Fatal("corrupt trailing segment did not surface a hard error")
	}
	if _, err := f.Poll(); err == nil {
		t.Fatal("corrupt trailing segment error is not sticky across polls")
	}
	if f.Offset() != int64(len(base)) {
		t.Fatalf("offset moved past corruption: %d", f.Offset())
	}

	// A file that was never a snapshot fails on the very first poll.
	junk := filepath.Join(t.TempDir(), "junk.stb")
	must(t, os.WriteFile(junk, []byte("not a snapshot at all, just text"), 0o644))
	if _, err := NewFollower(faultfs.OS{}, junk).Poll(); err == nil {
		t.Fatal("non-snapshot file accepted by follower")
	}
}

// TestFollowerShrunkFile: compaction under a live follower must be loud.
func TestFollowerShrunkFile(t *testing.T) {
	full := seededStore(34, 6, 9, 400)
	path := writeChain(t, full)
	f := NewFollower(faultfs.OS{}, path)
	if _, err := f.Poll(); err != nil {
		t.Fatal(err)
	}
	if _, err := CompactFile(faultfs.OS{}, path, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Poll(); !errors.Is(err, ErrFileShrank) {
		t.Fatalf("poll after compaction: err = %v, want ErrFileShrank", err)
	}
}
