package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

// jsonReceipt is the JSONL wire form of one receipt.
type jsonReceipt struct {
	Customer uint64    `json:"customer"`
	Time     time.Time `json:"time"`
	Spend    float64   `json:"spend"`
	Items    []uint32  `json:"items"`
}

// WriteJSONL serializes every receipt as one JSON object per line.
func (s *Store) WriteJSONL(w io.Writer) error {
	return writeJSONLHistories(w, s.histories)
}

// WriteJSONLDelta serializes only the receipts s holds beyond prev (see
// DeltaSince for the extension contract): appending the output to a file
// that decodes to prev yields a file that decodes to s.
func (s *Store) WriteJSONLDelta(w io.Writer, prev *Store) error {
	delta, err := s.DeltaSince(prev)
	if err != nil {
		return err
	}
	return writeJSONLHistories(w, delta)
}

func writeJSONLHistories(w io.Writer, histories []retail.History) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, h := range histories {
		for _, r := range h.Receipts {
			items := make([]uint32, len(r.Items))
			for i, it := range r.Items {
				items[i] = uint32(it)
			}
			jr := jsonReceipt{Customer: uint64(h.Customer), Time: r.Time.UTC(), Spend: r.Spend, Items: items}
			if err := enc.Encode(&jr); err != nil {
				return fmt.Errorf("store: jsonl encode: %w", err)
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL parses the JSONL receipt format into a fresh Store. Blank lines
// are ignored; any malformed line is an error (JSONL is our own export
// format, so corruption should fail loudly).
func ReadJSONL(r io.Reader) (*Store, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var jr jsonReceipt
		if err := json.Unmarshal(raw, &jr); err != nil {
			return nil, fmt.Errorf("store: jsonl line %d: %w", line, err)
		}
		items := make([]retail.ItemID, len(jr.Items))
		for i, it := range jr.Items {
			if it == 0 {
				return nil, fmt.Errorf("store: jsonl line %d: item id 0 is reserved", line)
			}
			items[i] = retail.ItemID(it)
		}
		if err := b.Add(retail.CustomerID(jr.Customer), jr.Time, items, jr.Spend); err != nil {
			return nil, fmt.Errorf("store: jsonl line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: jsonl scan: %w", err)
	}
	return b.Build(), nil
}
