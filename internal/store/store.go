// Package store implements the transaction store that feeds the stability
// model: an in-memory, read-optimized collection of per-customer purchase
// histories with time-range scans, summary statistics, and CSV / JSONL /
// binary codecs. It plays the role of the receipt database the paper's
// retailer provided.
//
// Ingest goes through a Builder which tolerates out-of-order arrival and
// duplicate receipt timestamps (both occur in real point-of-sale feeds);
// Build sorts each history once and freezes the result. A built Store is
// immutable and safe for concurrent readers.
package store

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/gautrais/stability/internal/population"
	"github.com/gautrais/stability/internal/retail"
)

// Store is an immutable set of customer purchase histories.
type Store struct {
	histories []retail.History // sorted by CustomerID
	index     map[retail.CustomerID]int
	minTime   time.Time
	maxTime   time.Time
	receipts  int
}

// ErrNoCustomer is returned when a customer is absent from the store.
var ErrNoCustomer = errors.New("store: customer not found")

// NumCustomers returns the number of customers.
func (s *Store) NumCustomers() int { return len(s.histories) }

// NumReceipts returns the total number of receipts.
func (s *Store) NumReceipts() int { return s.receipts }

// TimeRange returns the timestamps of the earliest and latest receipts.
// ok is false for an empty store.
func (s *Store) TimeRange() (min, max time.Time, ok bool) {
	if s.receipts == 0 {
		return time.Time{}, time.Time{}, false
	}
	return s.minTime, s.maxTime, true
}

// History returns the purchase history of one customer. The returned
// history shares the store's backing arrays and must not be mutated.
func (s *Store) History(id retail.CustomerID) (retail.History, error) {
	i, ok := s.index[id]
	if !ok {
		return retail.History{}, fmt.Errorf("%w: %d", ErrNoCustomer, id)
	}
	return s.histories[i], nil
}

// Customers returns all customer identifiers in ascending order.
func (s *Store) Customers() []retail.CustomerID {
	out := make([]retail.CustomerID, len(s.histories))
	for i, h := range s.histories {
		out[i] = h.Customer
	}
	return out
}

// Each calls fn for every history in customer order. fn must not mutate the
// history. Iteration stops early if fn returns false.
func (s *Store) Each(fn func(h retail.History) bool) {
	for _, h := range s.histories {
		if !fn(h) {
			return
		}
	}
}

// Scan returns the receipts of one customer within [from, to). The returned
// slice aliases the store and must not be mutated.
func (s *Store) Scan(id retail.CustomerID, from, to time.Time) ([]retail.Receipt, error) {
	h, err := s.History(id)
	if err != nil {
		return nil, err
	}
	rs := h.Receipts
	lo := sort.Search(len(rs), func(i int) bool { return !rs[i].Time.Before(from) })
	hi := sort.Search(len(rs), func(i int) bool { return !rs[i].Time.Before(to) })
	return rs[lo:hi], nil
}

// Subset returns a new store containing only the listed customers. Unknown
// identifiers are skipped. The subset shares receipt storage with s.
func (s *Store) Subset(ids []retail.CustomerID) *Store {
	b := NewBuilder()
	for _, id := range ids {
		if i, ok := s.index[id]; ok {
			h := s.histories[i]
			b.addHistory(h)
		}
	}
	return b.Build()
}

// Builder accumulates receipts and produces an immutable Store. The zero
// value is not usable; call NewBuilder. Builders are not safe for
// concurrent use (shard per goroutine and merge).
type Builder struct {
	byCustomer map[retail.CustomerID]*retail.History
}

// NewBuilder returns an empty store builder.
func NewBuilder() *Builder {
	return &Builder{byCustomer: make(map[retail.CustomerID]*retail.History)}
}

// Add appends one receipt. Items are normalized; out-of-order timestamps
// are fine (Build sorts). Empty baskets are legal (e.g., returns-only
// visits) but contribute nothing to the model.
func (b *Builder) Add(id retail.CustomerID, t time.Time, items []retail.ItemID, spend float64) error {
	if spend < 0 {
		return fmt.Errorf("store: customer %d: negative spend %v", id, spend)
	}
	h, ok := b.byCustomer[id]
	if !ok {
		h = &retail.History{Customer: id}
		b.byCustomer[id] = h
	}
	h.Receipts = append(h.Receipts, retail.Receipt{Time: t, Items: retail.NewBasket(items), Spend: spend})
	return nil
}

// AddReceipt appends an already-normalized receipt, avoiding the basket
// copy. The receipt's basket must be normalized (NewBasket output).
func (b *Builder) AddReceipt(id retail.CustomerID, r retail.Receipt) error {
	if r.Spend < 0 {
		return fmt.Errorf("store: customer %d: negative spend %v", id, r.Spend)
	}
	if !r.Items.IsNormalized() {
		return fmt.Errorf("store: customer %d: basket not normalized", id)
	}
	h, ok := b.byCustomer[id]
	if !ok {
		h = &retail.History{Customer: id}
		b.byCustomer[id] = h
	}
	h.Receipts = append(h.Receipts, r)
	return nil
}

func (b *Builder) addHistory(h retail.History) {
	cp := retail.History{Customer: h.Customer, Receipts: h.Receipts}
	b.byCustomer[h.Customer] = &cp
}

// Merge folds another builder's contents into b. The merged receipts are
// shared (receipts are immutable), but the history headers are copied with
// their capacity clipped, so later Adds on either builder can never reach
// into the other's backing arrays.
func (b *Builder) Merge(other *Builder) {
	//detlint:ignore R1 per-customer keyed merge; each id is touched exactly once, so visit order cannot leak
	for id, h := range other.byCustomer {
		mine, ok := b.byCustomer[id]
		if !ok {
			cp := retail.History{
				Customer: h.Customer,
				Receipts: h.Receipts[:len(h.Receipts):len(h.Receipts)],
			}
			b.byCustomer[id] = &cp
			continue
		}
		mine.Receipts = append(mine.Receipts, h.Receipts...)
	}
}

// Options tune how Build and Append execute. They never affect the built
// store: every worker count produces byte-identical stores.
type Options struct {
	// Workers is the per-history sort/merge pool size; <= 0 means
	// GOMAXPROCS.
	Workers int
}

// sortedIDs returns the builder's customer identifiers in ascending order.
func (b *Builder) sortedIDs() []retail.CustomerID {
	ids := make([]retail.CustomerID, 0, len(b.byCustomer))
	//detlint:ignore R1 collects ids that are sorted immediately below
	for id := range b.byCustomer {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sortedCopy returns an independent chronologically sorted copy of a
// history (stable, preserving insertion order among equal timestamps).
func sortedCopy(h *retail.History) retail.History {
	cp := retail.History{Customer: h.Customer, Receipts: make([]retail.Receipt, len(h.Receipts))}
	copy(cp.Receipts, h.Receipts)
	cp.Sort()
	return cp
}

// assemble freezes a customer-ascending history slice into a Store,
// deriving the index, receipt count and time range.
func assemble(histories []retail.History) *Store {
	s := &Store{
		histories: histories,
		index:     make(map[retail.CustomerID]int, len(histories)),
	}
	for i, h := range s.histories {
		s.index[h.Customer] = i
		s.receipts += len(h.Receipts)
		if first, last, ok := h.Span(); ok {
			if s.minTime.IsZero() || first.Before(s.minTime) {
				s.minTime = first
			}
			if s.maxTime.IsZero() || last.After(s.maxTime) {
				s.maxTime = last
			}
		}
	}
	return s
}

// Build sorts every history chronologically and freezes the store on all
// CPUs. The builder may keep being used; subsequent Builds include later
// additions.
func (b *Builder) Build() *Store {
	return b.BuildWith(Options{})
}

// BuildWith is Build with an explicit worker count: the per-history
// sort/copy fans out over the population engine, and the result is
// byte-identical at every worker count (each history sorts independently
// and histories assemble in ascending customer order).
func (b *Builder) BuildWith(opts Options) *Store {
	ids := b.sortedIDs()
	histories, _ := population.Map(len(ids), population.Options{Workers: opts.Workers},
		func(i int) (retail.History, error) {
			return sortedCopy(b.byCustomer[ids[i]]), nil
		})
	return assemble(histories)
}

// Append freezes a new store holding prev's histories plus the builder's
// receipts, on all CPUs. See AppendWith.
func (b *Builder) Append(prev *Store) *Store {
	return b.AppendWith(prev, Options{})
}

// AppendWith grows a frozen store without re-sorting history: customers
// untouched by the builder share prev's frozen receipt slices outright,
// and customers with new receipts get one linear merge of prev's sorted
// run with the (sorted) new batch — prev receipts win ties, exactly the
// stable order Build gives a builder holding old-then-new receipts. The
// per-customer merges fan out over the population engine; the result is
// byte-identical to a from-scratch Build of all receipts at every worker
// count. prev is never mutated; nil prev is an empty store.
func (b *Builder) AppendWith(prev *Store, opts Options) *Store {
	if prev == nil || len(prev.histories) == 0 {
		return b.BuildWith(opts)
	}
	newIDs := b.sortedIDs()
	// Plan the merged customer walk: ascending over the union of prev's
	// customers and the builder's.
	type job struct {
		frozen *retail.History // prev's history, nil for brand-new customers
		added  *retail.History // builder's receipts, nil for untouched ones
	}
	jobs := make([]job, 0, len(prev.histories)+len(newIDs))
	pi, ni := 0, 0
	for pi < len(prev.histories) || ni < len(newIDs) {
		switch {
		case ni == len(newIDs) || (pi < len(prev.histories) && prev.histories[pi].Customer < newIDs[ni]):
			jobs = append(jobs, job{frozen: &prev.histories[pi]})
			pi++
		case pi == len(prev.histories) || newIDs[ni] < prev.histories[pi].Customer:
			jobs = append(jobs, job{added: b.byCustomer[newIDs[ni]]})
			ni++
		default:
			jobs = append(jobs, job{frozen: &prev.histories[pi], added: b.byCustomer[newIDs[ni]]})
			pi++
			ni++
		}
	}
	histories, _ := population.Map(len(jobs), population.Options{Workers: opts.Workers},
		func(i int) (retail.History, error) {
			j := jobs[i]
			switch {
			case j.added == nil:
				return *j.frozen, nil // untouched: alias the frozen history
			case j.frozen == nil:
				return sortedCopy(j.added), nil
			}
			add := sortedCopy(j.added)
			old := j.frozen.Receipts
			merged := make([]retail.Receipt, 0, len(old)+len(add.Receipts))
			oi := 0
			for _, r := range add.Receipts {
				for oi < len(old) && !old[oi].Time.After(r.Time) {
					merged = append(merged, old[oi])
					oi++
				}
				merged = append(merged, r)
			}
			merged = append(merged, old[oi:]...)
			return retail.History{Customer: j.frozen.Customer, Receipts: merged}, nil
		})
	return assemble(histories)
}

// DeltaSince returns, per customer in ascending order, the receipts
// present in s but not in prev, assuming s extends prev: every prev
// history must be a prefix of its counterpart in s (the shape AppendWith
// produces from receipts arriving after prev's horizon). Customers whose
// histories are unchanged are omitted. The returned histories alias s and
// must not be mutated. A nil prev yields every history. The prefix
// property is checked cheaply (counts plus the boundary receipt), so
// stores that interleaved new receipts into the frozen past are rejected
// rather than mis-reported.
func (s *Store) DeltaSince(prev *Store) ([]retail.History, error) {
	if prev == nil {
		out := make([]retail.History, len(s.histories))
		copy(out, s.histories)
		return out, nil
	}
	for _, ph := range prev.histories {
		if _, ok := s.index[ph.Customer]; !ok {
			return nil, fmt.Errorf("store: customer %d present in prev but missing from the extended store", ph.Customer)
		}
	}
	var out []retail.History
	for _, h := range s.histories {
		prevN := 0
		if j, ok := prev.index[h.Customer]; ok {
			ph := prev.histories[j]
			prevN = len(ph.Receipts)
			if prevN > len(h.Receipts) {
				return nil, fmt.Errorf("store: customer %d shrank from %d to %d receipts (not an extension)",
					h.Customer, prevN, len(h.Receipts))
			}
			if prevN > 0 {
				a, b := ph.Receipts[prevN-1], h.Receipts[prevN-1]
				if !a.Time.Equal(b.Time) || a.Spend != b.Spend || !a.Items.Equal(b.Items) {
					return nil, fmt.Errorf("store: customer %d boundary receipt differs (not an extension)", h.Customer)
				}
			}
		}
		if prevN < len(h.Receipts) {
			out = append(out, retail.History{Customer: h.Customer, Receipts: h.Receipts[prevN:]})
		}
	}
	return out, nil
}
