// Package store implements the transaction store that feeds the stability
// model: an in-memory, read-optimized collection of per-customer purchase
// histories with time-range scans, summary statistics, and CSV / JSONL /
// binary codecs. It plays the role of the receipt database the paper's
// retailer provided.
//
// Ingest goes through a Builder which tolerates out-of-order arrival and
// duplicate receipt timestamps (both occur in real point-of-sale feeds);
// Build sorts each history once and freezes the result. A built Store is
// immutable and safe for concurrent readers.
package store

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

// Store is an immutable set of customer purchase histories.
type Store struct {
	histories []retail.History // sorted by CustomerID
	index     map[retail.CustomerID]int
	minTime   time.Time
	maxTime   time.Time
	receipts  int
}

// ErrNoCustomer is returned when a customer is absent from the store.
var ErrNoCustomer = errors.New("store: customer not found")

// NumCustomers returns the number of customers.
func (s *Store) NumCustomers() int { return len(s.histories) }

// NumReceipts returns the total number of receipts.
func (s *Store) NumReceipts() int { return s.receipts }

// TimeRange returns the timestamps of the earliest and latest receipts.
// ok is false for an empty store.
func (s *Store) TimeRange() (min, max time.Time, ok bool) {
	if s.receipts == 0 {
		return time.Time{}, time.Time{}, false
	}
	return s.minTime, s.maxTime, true
}

// History returns the purchase history of one customer. The returned
// history shares the store's backing arrays and must not be mutated.
func (s *Store) History(id retail.CustomerID) (retail.History, error) {
	i, ok := s.index[id]
	if !ok {
		return retail.History{}, fmt.Errorf("%w: %d", ErrNoCustomer, id)
	}
	return s.histories[i], nil
}

// Customers returns all customer identifiers in ascending order.
func (s *Store) Customers() []retail.CustomerID {
	out := make([]retail.CustomerID, len(s.histories))
	for i, h := range s.histories {
		out[i] = h.Customer
	}
	return out
}

// Each calls fn for every history in customer order. fn must not mutate the
// history. Iteration stops early if fn returns false.
func (s *Store) Each(fn func(h retail.History) bool) {
	for _, h := range s.histories {
		if !fn(h) {
			return
		}
	}
}

// Scan returns the receipts of one customer within [from, to). The returned
// slice aliases the store and must not be mutated.
func (s *Store) Scan(id retail.CustomerID, from, to time.Time) ([]retail.Receipt, error) {
	h, err := s.History(id)
	if err != nil {
		return nil, err
	}
	rs := h.Receipts
	lo := sort.Search(len(rs), func(i int) bool { return !rs[i].Time.Before(from) })
	hi := sort.Search(len(rs), func(i int) bool { return !rs[i].Time.Before(to) })
	return rs[lo:hi], nil
}

// Subset returns a new store containing only the listed customers. Unknown
// identifiers are skipped. The subset shares receipt storage with s.
func (s *Store) Subset(ids []retail.CustomerID) *Store {
	b := NewBuilder()
	for _, id := range ids {
		if i, ok := s.index[id]; ok {
			h := s.histories[i]
			b.addHistory(h)
		}
	}
	return b.Build()
}

// Builder accumulates receipts and produces an immutable Store. The zero
// value is not usable; call NewBuilder. Builders are not safe for
// concurrent use (shard per goroutine and merge).
type Builder struct {
	byCustomer map[retail.CustomerID]*retail.History
}

// NewBuilder returns an empty store builder.
func NewBuilder() *Builder {
	return &Builder{byCustomer: make(map[retail.CustomerID]*retail.History)}
}

// Add appends one receipt. Items are normalized; out-of-order timestamps
// are fine (Build sorts). Empty baskets are legal (e.g., returns-only
// visits) but contribute nothing to the model.
func (b *Builder) Add(id retail.CustomerID, t time.Time, items []retail.ItemID, spend float64) error {
	if spend < 0 {
		return fmt.Errorf("store: customer %d: negative spend %v", id, spend)
	}
	h, ok := b.byCustomer[id]
	if !ok {
		h = &retail.History{Customer: id}
		b.byCustomer[id] = h
	}
	h.Receipts = append(h.Receipts, retail.Receipt{Time: t, Items: retail.NewBasket(items), Spend: spend})
	return nil
}

// AddReceipt appends an already-normalized receipt, avoiding the basket
// copy. The receipt's basket must be normalized (NewBasket output).
func (b *Builder) AddReceipt(id retail.CustomerID, r retail.Receipt) error {
	if r.Spend < 0 {
		return fmt.Errorf("store: customer %d: negative spend %v", id, r.Spend)
	}
	if !r.Items.IsNormalized() {
		return fmt.Errorf("store: customer %d: basket not normalized", id)
	}
	h, ok := b.byCustomer[id]
	if !ok {
		h = &retail.History{Customer: id}
		b.byCustomer[id] = h
	}
	h.Receipts = append(h.Receipts, r)
	return nil
}

func (b *Builder) addHistory(h retail.History) {
	cp := retail.History{Customer: h.Customer, Receipts: h.Receipts}
	b.byCustomer[h.Customer] = &cp
}

// Merge folds another builder's contents into b.
func (b *Builder) Merge(other *Builder) {
	for id, h := range other.byCustomer {
		mine, ok := b.byCustomer[id]
		if !ok {
			b.byCustomer[id] = h
			continue
		}
		mine.Receipts = append(mine.Receipts, h.Receipts...)
	}
}

// Build sorts every history chronologically and freezes the store. The
// builder may keep being used; subsequent Builds include later additions.
func (b *Builder) Build() *Store {
	s := &Store{
		histories: make([]retail.History, 0, len(b.byCustomer)),
		index:     make(map[retail.CustomerID]int, len(b.byCustomer)),
	}
	for _, h := range b.byCustomer {
		cp := retail.History{Customer: h.Customer, Receipts: make([]retail.Receipt, len(h.Receipts))}
		copy(cp.Receipts, h.Receipts)
		cp.Sort()
		s.histories = append(s.histories, cp)
	}
	sort.Slice(s.histories, func(i, j int) bool { return s.histories[i].Customer < s.histories[j].Customer })
	for i, h := range s.histories {
		s.index[h.Customer] = i
		s.receipts += len(h.Receipts)
		if first, last, ok := h.Span(); ok {
			if s.minTime.IsZero() || first.Before(s.minTime) {
				s.minTime = first
			}
			if s.maxTime.IsZero() || last.After(s.maxTime) {
				s.maxTime = last
			}
		}
	}
	return s
}
