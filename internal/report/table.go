package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented result table rendered as aligned text,
// markdown, or CSV.
type Table struct {
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{Headers: headers}
}

// AddRow appends a row; cells are stringified with %v, floats with %.4g.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes an aligned plain-text table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// RenderMarkdown writes a GitHub-flavoured markdown table.
func (t *Table) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
}

// RenderCSV writes the table as CSV.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return fmt.Errorf("report: csv header: %w", err)
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriesCSV dumps chart series as long-form CSV
// (series,x,y) for external plotting.
func WriteSeriesCSV(w io.Writer, series ...Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y"}); err != nil {
		return fmt.Errorf("report: series csv header: %w", err)
	}
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			rec := []string{s.Name, fmt.Sprintf("%g", s.X[i]), fmt.Sprintf("%g", s.Y[i])}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("report: series csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
