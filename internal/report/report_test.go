package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestChartRenderBasics(t *testing.T) {
	c := NewChart("Test chart", "months", "auroc")
	c.Add(Series{Name: "model", X: []float64{12, 14, 16}, Y: []float64{0.5, 0.7, 0.9}, Marker: '*'})
	c.Add(Series{Name: "baseline", X: []float64{12, 14, 16}, Y: []float64{0.5, 0.6, 0.8}})
	c.AddVLine(14, "onset")
	var buf bytes.Buffer
	c.Render(&buf)
	out := buf.String()

	for _, want := range []string{"Test chart", "model", "baseline", "onset", "months", "auroc", "*", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered chart missing %q", want)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < c.Height+3 {
		t.Fatalf("chart has %d lines, want at least %d", len(lines), c.Height+3)
	}
}

func TestChartRenderEmpty(t *testing.T) {
	c := NewChart("Empty", "x", "y")
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Fatalf("empty chart output: %q", buf.String())
	}
}

func TestChartSkipsNaN(t *testing.T) {
	c := NewChart("NaN", "x", "y")
	c.Add(Series{Name: "s", X: []float64{1, 2, 3}, Y: []float64{0.5, math.NaN(), 0.7}})
	var buf bytes.Buffer
	c.Render(&buf) // must not panic
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestChartAutoYRange(t *testing.T) {
	c := NewChart("Auto", "x", "y")
	c.YMin, c.YMax = 0, 0 // force auto-range
	c.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{5, 15}})
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "15") {
		t.Errorf("auto range missing max label: %s", buf.String())
	}
}

func TestChartDefaultMarkersRotate(t *testing.T) {
	c := NewChart("Markers", "x", "y")
	for i := 0; i < 3; i++ {
		c.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{0.2, 0.8}})
	}
	markers := map[rune]bool{}
	for _, s := range c.series {
		markers[s.Marker] = true
	}
	if len(markers) != 3 {
		t.Fatalf("markers not distinct: %v", markers)
	}
}

func TestChartTinyGeometryClamped(t *testing.T) {
	c := NewChart("Tiny", "x", "y")
	c.Width, c.Height = 1, 1
	c.Add(Series{Name: "s", X: []float64{0, 10}, Y: []float64{0, 1}})
	var buf bytes.Buffer
	c.Render(&buf) // must not panic
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestChartSinglePoint(t *testing.T) {
	c := NewChart("One", "x", "y")
	c.Add(Series{Name: "s", X: []float64{5}, Y: []float64{0.5}})
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("single point not plotted")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value", "note")
	tb.AddRow("alpha", 2.0, "paper default")
	tb.AddRow("windows", 14, "2-month span")
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"name", "alpha", "paper default", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: every line has the value column at the same offset.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("v")
	tb.AddRow(0.123456789)
	tb.AddRow(float32(2.5))
	var buf bytes.Buffer
	tb.Render(&buf)
	if !strings.Contains(buf.String(), "0.1235") {
		t.Errorf("float not rounded to 4 significant digits: %s", buf.String())
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, 2)
	var buf bytes.Buffer
	tb.RenderMarkdown(&buf)
	out := buf.String()
	if !strings.HasPrefix(out, "| a | b |") {
		t.Fatalf("markdown header: %q", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Fatalf("markdown separator missing: %q", out)
	}
	if !strings.Contains(out, "| 1 | 2 |") {
		t.Fatalf("markdown row missing: %q", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x,y", 3) // comma must be quoted
	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Fatalf("comma cell not quoted: %q", out)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf,
		Series{Name: "s1", X: []float64{1, 2}, Y: []float64{0.1, 0.2}},
		Series{Name: "s2", X: []float64{1}, Y: []float64{0.9}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "series,x,y" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[3] != "s2,1,0.9" {
		t.Fatalf("row = %q", lines[3])
	}
}

func TestWriteSeriesCSVRaggedYTruncates(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, Series{Name: "s", X: []float64{1, 2, 3}, Y: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 { // header + 1 row only
		t.Fatalf("ragged series rows = %d", len(lines)-1)
	}
}
