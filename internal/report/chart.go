// Package report renders experiment results: ASCII line charts that mirror
// the paper's figures in a terminal, plus CSV and markdown emitters for the
// same series so results can be re-plotted externally.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name string
	// X and Y are parallel; NaN Y values are skipped.
	X, Y []float64
	// Marker is the rune plotted for this series ('*', 'o', ...).
	Marker rune
}

// Chart is a fixed-canvas ASCII line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 64)
	Height int // plot rows (default 18)
	YMin   float64
	YMax   float64
	series []Series
	vlines []VLine
}

// VLine is a vertical annotation line (e.g. "start of attrition").
type VLine struct {
	X     float64
	Label string
}

// NewChart returns a chart with default geometry and a [0,1] y-range —
// the range of both stability and AUROC.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 64, Height: 18, YMin: 0, YMax: 1}
}

// Add appends a series. Markers default to a per-series rotation.
func (c *Chart) Add(s Series) {
	if s.Marker == 0 {
		markers := []rune{'*', 'o', '+', 'x', '#'}
		s.Marker = markers[len(c.series)%len(markers)]
	}
	c.series = append(c.series, s)
}

// AddVLine appends a vertical annotation.
func (c *Chart) AddVLine(x float64, label string) {
	c.vlines = append(c.vlines, VLine{X: x, Label: label})
}

// Render writes the chart.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	xmin, xmax, ok := c.xRange()
	if !ok {
		fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	ymin, ymax := c.YMin, c.YMax
	if ymax <= ymin {
		ymin, ymax = autoYRange(c.series)
	}

	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	colOf := func(x float64) int {
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		return col
	}
	rowOf := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for _, v := range c.vlines {
		col := colOf(v.X)
		for row := 0; row < height; row++ {
			grid[row][col] = '|'
		}
	}
	for _, s := range c.series {
		prevCol, prevRow := -1, -1
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.Y[i]) {
				prevCol = -1
				continue
			}
			col, row := colOf(s.X[i]), rowOf(s.Y[i])
			if prevCol >= 0 {
				drawLine(grid, prevCol, prevRow, col, row, '.')
			}
			grid[row][col] = s.Marker
			prevCol, prevRow = col, row
		}
	}

	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	for row := 0; row < height; row++ {
		yval := ymax - (ymax-ymin)*float64(row)/float64(height-1)
		fmt.Fprintf(w, "%6.2f |%s\n", yval, string(grid[row]))
	}
	fmt.Fprintf(w, "       +%s\n", strings.Repeat("-", width))
	// X tick line: min, mid, max.
	mid := (xmin + xmax) / 2
	ticks := fmt.Sprintf("%-*s%-*s%s",
		width/2, fmt.Sprintf("%.6g", xmin),
		width/2-len(fmt.Sprintf("%.6g", mid))/2, fmt.Sprintf("%.6g", mid),
		fmt.Sprintf("%.6g", xmax))
	fmt.Fprintf(w, "        %s\n", ticks)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(w, "        x: %s   y: %s\n", c.XLabel, c.YLabel)
	}
	for _, s := range c.series {
		fmt.Fprintf(w, "        %c %s\n", s.Marker, s.Name)
	}
	for _, v := range c.vlines {
		fmt.Fprintf(w, "        | %s (x=%.6g)\n", v.Label, v.X)
	}
}

func (c *Chart) xRange() (xmin, xmax float64, ok bool) {
	first := true
	for _, s := range c.series {
		for _, x := range s.X {
			if first {
				xmin, xmax, first = x, x, false
				continue
			}
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
		}
	}
	for _, v := range c.vlines {
		if first {
			xmin, xmax, first = v.X, v.X, false
		} else {
			if v.X < xmin {
				xmin = v.X
			}
			if v.X > xmax {
				xmax = v.X
			}
		}
	}
	return xmin, xmax, !first
}

func autoYRange(series []Series) (ymin, ymax float64) {
	ymin, ymax = math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, y := range s.Y {
			if math.IsNaN(y) {
				continue
			}
			if y < ymin {
				ymin = y
			}
			if y > ymax {
				ymax = y
			}
		}
	}
	if math.IsInf(ymin, 1) {
		return 0, 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	pad := (ymax - ymin) * 0.05
	return ymin - pad, ymax + pad
}

// drawLine rasterizes a connecting segment with Bresenham, leaving endpoint
// cells to the marker pass.
func drawLine(grid [][]rune, x0, y0, x1, y1 int, ch rune) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	x, y := x0, y0
	for {
		if x == x1 && y == y1 {
			break
		}
		if (x != x0 || y != y0) && grid[y][x] == ' ' {
			grid[y][x] = ch
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
