package gen

import (
	"fmt"
	"sort"

	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/stats"
	"github.com/gautrais/stability/internal/store"
	"github.com/gautrais/stability/internal/taxonomy"
)

// DropEvent records one ground-truth segment loss of a defecting customer.
type DropEvent struct {
	// Month is the month index (from dataset start) at whose beginning the
	// segment stopped being bought.
	Month int
	// Segment is the lost segment.
	Segment retail.ItemID
}

// CustomerTruth is the generator's ground truth for one customer.
type CustomerTruth struct {
	Label retail.Label
	// Core lists the customer's core repertoire (active at generation
	// time zero), ascending.
	Core []retail.ItemID
	// Drops lists attrition segment losses in chronological order (empty
	// for loyal customers).
	Drops []DropEvent
	// DriftDrops lists ordinary taste-drift losses (any cohort). They are
	// genuine losses the model may legitimately blame, but they are not
	// attrition.
	DriftDrops []DropEvent
}

// GroundTruth indexes per-customer truth records.
type GroundTruth struct {
	ByCustomer map[retail.CustomerID]*CustomerTruth
}

// Labels returns every label sorted by customer identifier.
func (g *GroundTruth) Labels() []retail.Label {
	out := make([]retail.Label, 0, len(g.ByCustomer))
	for _, t := range g.ByCustomer {
		out = append(out, t.Label)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Customer < out[j].Customer })
	return out
}

// Defectors returns the identifiers of the defecting cohort, ascending.
func (g *GroundTruth) Defectors() []retail.CustomerID {
	var out []retail.CustomerID
	for id, t := range g.ByCustomer {
		if t.Label.Cohort == retail.CohortDefecting {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DroppedBy returns the month at which the customer dropped the given
// segment, or ok=false if they never did.
func (g *GroundTruth) DroppedBy(id retail.CustomerID, seg retail.ItemID) (month int, ok bool) {
	t, found := g.ByCustomer[id]
	if !found {
		return 0, false
	}
	for _, d := range t.Drops {
		if d.Segment == seg {
			return d.Month, true
		}
	}
	return 0, false
}

// buildSeasons assigns each segment a peak calendar month (0–11) or −1
// for non-seasonal segments. A SeasonalFraction of segments is seasonal.
func buildSeasons(cfg Config, r *stats.Rand) []int8 {
	seasons := make([]int8, cfg.Segments)
	for i := range seasons {
		seasons[i] = -1
		if cfg.SeasonalFraction > 0 && r.Bernoulli(cfg.SeasonalFraction) {
			seasons[i] = int8(r.Intn(12))
		}
	}
	return seasons
}

// Dataset bundles everything one generation run produces.
type Dataset struct {
	Config  Config
	Store   *store.Store
	Catalog *taxonomy.Catalog
	Truth   *GroundTruth
}

// Generate synthesizes a full dataset. It is deterministic in cfg.Seed.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := stats.NewRand(cfg.Seed)
	catRand := root.Fork()
	cat, err := buildCatalog(cfg, catRand)
	if err != nil {
		return nil, fmt.Errorf("gen: catalog: %w", err)
	}
	prices := segmentPrices(cat)
	seasons := buildSeasons(cfg, root.Fork())

	nDefect := int(float64(cfg.Customers)*cfg.DefectorFraction + 0.5)
	truth := &GroundTruth{ByCustomer: make(map[retail.CustomerID]*CustomerTruth, cfg.Customers)}
	sb := store.NewBuilder()

	popRand := root.Fork()
	for i := 0; i < cfg.Customers; i++ {
		id := retail.CustomerID(i + 1)
		defector := i < nDefect
		custRand := popRand.Fork()
		zipf := stats.NewZipf(custRand, cfg.Segments, cfg.ZipfExponent)
		p := newProfile(cfg, id, defector, zipf, custRand)
		p.seasons = seasons
		receipts, drops, driftDrops := p.simulate(cfg, prices, zipf)
		for _, r := range receipts {
			if err := sb.AddReceipt(id, r); err != nil {
				return nil, fmt.Errorf("gen: customer %d: %w", id, err)
			}
		}
		ct := &CustomerTruth{
			Label:      retail.Label{Customer: id, Cohort: retail.CohortLoyal, OnsetMonth: -1},
			Core:       make([]retail.ItemID, 0, len(p.core)),
			Drops:      drops,
			DriftDrops: driftDrops,
		}
		for _, c := range p.core {
			ct.Core = append(ct.Core, c.seg)
		}
		sort.Slice(ct.Core, func(a, b int) bool { return ct.Core[a] < ct.Core[b] })
		if defector {
			ct.Label.Cohort = retail.CohortDefecting
			ct.Label.OnsetMonth = p.onset
		}
		truth.ByCustomer[id] = ct
	}
	return &Dataset{Config: cfg, Store: sb.Build(), Catalog: cat, Truth: truth}, nil
}
