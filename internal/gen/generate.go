package gen

import (
	"fmt"
	"sort"

	"github.com/gautrais/stability/internal/population"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/stats"
	"github.com/gautrais/stability/internal/store"
	"github.com/gautrais/stability/internal/taxonomy"
)

// DropEvent records one ground-truth segment loss of a defecting customer.
type DropEvent struct {
	// Month is the month index (from dataset start) at whose beginning the
	// segment stopped being bought.
	Month int
	// Segment is the lost segment.
	Segment retail.ItemID
}

// CustomerTruth is the generator's ground truth for one customer.
type CustomerTruth struct {
	Label retail.Label
	// Core lists the customer's core repertoire (active at generation
	// time zero), ascending.
	Core []retail.ItemID
	// Drops lists attrition segment losses in chronological order (empty
	// for loyal customers).
	Drops []DropEvent
	// DriftDrops lists ordinary taste-drift losses (any cohort). They are
	// genuine losses the model may legitimately blame, but they are not
	// attrition.
	DriftDrops []DropEvent
}

// GroundTruth indexes per-customer truth records.
type GroundTruth struct {
	ByCustomer map[retail.CustomerID]*CustomerTruth
	// labels and defectors are sorted indexes built once — at generation
	// time by Generate, or lazily on first access for hand-assembled
	// truths. Accessors return copies, so callers can mutate the returned
	// slices freely. After mutating ByCustomer (Extend does, and callers
	// assembling truths by hand may), call InvalidateIndexes so the next
	// accessor rebuilds them.
	labels    []retail.Label
	defectors []retail.CustomerID
}

// InvalidateIndexes discards the sorted label and defector indexes so the
// next Labels/Defectors call rebuilds them from ByCustomer. Required after
// any mutation of ByCustomer that happens once the indexes exist (Extend
// calls it on every extension).
func (g *GroundTruth) InvalidateIndexes() {
	g.labels, g.defectors = nil, nil
}

// buildIndexes (re)derives the sorted label and defector indexes from
// ByCustomer.
func (g *GroundTruth) buildIndexes() {
	g.labels = make([]retail.Label, 0, len(g.ByCustomer))
	g.defectors = g.defectors[:0]
	//detlint:ignore R1 collects labels that are sorted by customer immediately below
	for _, t := range g.ByCustomer {
		g.labels = append(g.labels, t.Label)
	}
	sort.Slice(g.labels, func(i, j int) bool { return g.labels[i].Customer < g.labels[j].Customer })
	for _, l := range g.labels {
		if l.Cohort == retail.CohortDefecting {
			g.defectors = append(g.defectors, l.Customer)
		}
	}
}

// Labels returns every label sorted by customer identifier.
func (g *GroundTruth) Labels() []retail.Label {
	if g.labels == nil && len(g.ByCustomer) > 0 {
		g.buildIndexes()
	}
	out := make([]retail.Label, len(g.labels))
	copy(out, g.labels)
	return out
}

// Defectors returns the identifiers of the defecting cohort, ascending.
func (g *GroundTruth) Defectors() []retail.CustomerID {
	if g.labels == nil && len(g.ByCustomer) > 0 {
		g.buildIndexes()
	}
	out := make([]retail.CustomerID, len(g.defectors))
	copy(out, g.defectors)
	return out
}

// DroppedBy returns the month at which the customer dropped the given
// segment, or ok=false if they never did.
func (g *GroundTruth) DroppedBy(id retail.CustomerID, seg retail.ItemID) (month int, ok bool) {
	t, found := g.ByCustomer[id]
	if !found {
		return 0, false
	}
	for _, d := range t.Drops {
		if d.Segment == seg {
			return d.Month, true
		}
	}
	return 0, false
}

// buildSeasons assigns each segment a peak calendar month (0–11) or −1
// for non-seasonal segments. A SeasonalFraction of segments is seasonal.
func buildSeasons(cfg Config, r *stats.Rand) []int8 {
	seasons := make([]int8, cfg.Segments)
	for i := range seasons {
		seasons[i] = -1
		if cfg.SeasonalFraction > 0 && r.Bernoulli(cfg.SeasonalFraction) {
			seasons[i] = int8(r.Intn(12))
		}
	}
	return seasons
}

// Dataset bundles everything one generation run produces.
type Dataset struct {
	Config  Config
	Store   *store.Store
	Catalog *taxonomy.Catalog
	Truth   *GroundTruth
	// resume carries the per-customer simulation checkpoints Extend needs.
	// Datasets loaded from codec files have none and cannot be extended
	// (regenerate the base deterministically from its config instead).
	resume *resumeState
}

// Resumable reports whether the dataset carries the simulation checkpoints
// Extend needs (true for generated datasets, false for loaded ones).
func (ds *Dataset) Resumable() bool { return ds != nil && ds.resume != nil }

// checkpoint freezes one customer's simulation at a horizon: the profile
// (core repertoire, drop schedule position, RNG streams — the main stream
// plus the forked vacation stream) and the trip-loop cursor.
type checkpoint struct {
	p     *profile
	day   float64 // next trip day, at or beyond the simulated horizon
	month int     // last month boundary processed by the trip loop
}

// resumeState is everything Extend needs beyond the checkpoints: the
// population-shared tables that newProfile/simulateRange consume.
type resumeState struct {
	prices []float64
	cps    []*checkpoint // index i holds customer i+1
}

// Options tune how Generate executes. They never affect the generated
// data: every option value produces bit-identical datasets.
type Options struct {
	// Workers is the per-customer simulation pool size; <= 0 means
	// GOMAXPROCS.
	Workers int
}

// Generate synthesizes a full dataset on all CPUs. It is deterministic in
// cfg.Seed; see GenerateWith for the worker-count invariance contract.
func Generate(cfg Config) (*Dataset, error) {
	return GenerateWith(cfg, Options{})
}

// custGen is one customer's simulation output, merged sequentially into
// the store builder and truth map in customer order.
type custGen struct {
	truth    *CustomerTruth
	receipts []retail.Receipt
	cp       *checkpoint
}

// coreSegments lists the profile's core repertoire (including segments
// adopted by drift during simulation), ascending.
func coreSegments(p *profile) []retail.ItemID {
	out := make([]retail.ItemID, 0, len(p.core))
	for _, c := range p.core {
		out = append(out, c.seg)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// GenerateWith synthesizes a full dataset with an explicit worker count.
// The output is bit-identical at every worker count: the shared state
// (catalog, prices, seasons) is drawn before the fan-out, each customer's
// RNG stream is pre-forked sequentially from the population stream (one
// Int63 per customer — exactly what the sequential loop consumed), and the
// per-customer simulations ride population.Map, whose results merge back in
// customer order.
func GenerateWith(cfg Config, opts Options) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := stats.NewRand(cfg.Seed)
	catRand := root.Fork()
	cat, err := buildCatalog(cfg, catRand)
	if err != nil {
		return nil, fmt.Errorf("gen: catalog: %w", err)
	}
	prices := segmentPrices(cat)
	seasons := buildSeasons(cfg, root.Fork())

	nDefect := int(float64(cfg.Customers)*cfg.DefectorFraction + 0.5)

	// Pre-fork the per-customer RNG streams: cheap (one Int63 each) and
	// sequential, so customer i's generator seed does not depend on how the
	// remaining work is scheduled.
	popRand := root.Fork()
	seeds := make([]int64, cfg.Customers)
	for i := range seeds {
		seeds[i] = popRand.Int63()
	}
	// The Zipf cumulative table is identical for every customer; build it
	// once and give each customer a clone drawing from its private Rand.
	// NewZipf never draws from the Rand it is handed, so the prototype's
	// throwaway source leaves every stream untouched.
	zipfProto := stats.NewZipf(stats.NewRand(0), cfg.Segments, cfg.ZipfExponent)

	horizonDays := cfg.End().Sub(cfg.Start).Hours() / 24
	results, err := population.Map(cfg.Customers, population.Options{Workers: opts.Workers},
		func(i int) (custGen, error) {
			id := retail.CustomerID(i + 1)
			defector := i < nDefect
			custRand := stats.NewRand(seeds[i])
			zipf := zipfProto.Clone(custRand)
			p := newProfile(cfg, id, defector, zipf, custRand)
			p.seasons = seasons
			p.extendVacations(cfg, horizonDays)
			day, curMonth := p.startSimulation(cfg)
			receipts, drops, driftDrops, day, curMonth := p.simulateRange(cfg, prices, day, curMonth, horizonDays)
			ct := &CustomerTruth{
				Label:      retail.Label{Customer: id, Cohort: retail.CohortLoyal, OnsetMonth: -1},
				Core:       coreSegments(p),
				Drops:      drops,
				DriftDrops: driftDrops,
			}
			if defector {
				ct.Label.Cohort = retail.CohortDefecting
				ct.Label.OnsetMonth = p.onset
			}
			return custGen{truth: ct, receipts: receipts, cp: &checkpoint{p: p, day: day, month: curMonth}}, nil
		})
	if err != nil {
		return nil, err
	}

	truth := &GroundTruth{ByCustomer: make(map[retail.CustomerID]*CustomerTruth, cfg.Customers)}
	sb := store.NewBuilder()
	resume := &resumeState{prices: prices, cps: make([]*checkpoint, 0, cfg.Customers)}
	for i, cg := range results {
		id := retail.CustomerID(i + 1)
		for _, r := range cg.receipts {
			if err := sb.AddReceipt(id, r); err != nil {
				return nil, fmt.Errorf("gen: customer %d: %w", id, err)
			}
		}
		truth.ByCustomer[id] = cg.truth
		resume.cps = append(resume.cps, cg.cp)
	}
	truth.buildIndexes()
	st := sb.BuildWith(store.Options{Workers: opts.Workers})
	return &Dataset{Config: cfg, Store: st, Catalog: cat, Truth: truth, resume: resume}, nil
}
