package gen

import (
	"testing"
	"time"

	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/stats"
)

// smallConfig returns a fast configuration for tests.
func smallConfig() Config {
	cfg := NewConfig()
	cfg.Customers = 60
	cfg.Segments = 80
	cfg.ProductsPerSegment = 3
	return cfg
}

func TestConfigValidation(t *testing.T) {
	if err := NewConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"no customers", func(c *Config) { c.Customers = 0 }},
		{"bad fraction", func(c *Config) { c.DefectorFraction = 1.5 }},
		{"zero start", func(c *Config) { c.Start = time.Time{} }},
		{"short", func(c *Config) { c.Months = 1 }},
		{"onset too early", func(c *Config) { c.OnsetMonth = 0 }},
		{"onset beyond end", func(c *Config) { c.OnsetMonth = c.Months }},
		{"few segments", func(c *Config) { c.Segments = 2 }},
		{"no products", func(c *Config) { c.ProductsPerSegment = 0 }},
		{"bad zipf", func(c *Config) { c.ZipfExponent = 0 }},
		{"core bounds", func(c *Config) { c.CoreSegmentsMin = 10; c.CoreSegmentsMax = 5 }},
		{"core beyond catalog", func(c *Config) { c.CoreSegmentsMax = c.Segments + 1 }},
		{"no trips", func(c *Config) { c.TripsPerWeek = 0 }},
		{"neg tempo", func(c *Config) { c.TempoSigma = -1 }},
		{"neg impulse", func(c *Config) { c.ImpulseMean = -1 }},
		{"bad miss", func(c *Config) { c.MissProb = 1 }},
		{"neg vacations", func(c *Config) { c.VacationsPerYear = -1 }},
		{"vacation bounds", func(c *Config) { c.VacationDaysMin = 10; c.VacationDaysMax = 5 }},
		{"zero dropfrac", func(c *Config) { c.DropFractionPerMonth = 0 }},
		{"big dropfrac", func(c *Config) { c.DropFractionPerMonth = 1.5 }},
		{"zero decay", func(c *Config) { c.TripDecayPerMonth = 0 }},
		{"neg jitter", func(c *Config) { c.OnsetJitterMonths = -1 }},
		{"drift out of range", func(c *Config) { c.RepertoireDriftPerMonth = 1 }},
		{"neg severity", func(c *Config) { c.SeveritySigma = -0.1 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			cfg := NewConfig()
			m.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("mutation %q accepted", m.name)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Store.NumReceipts() != b.Store.NumReceipts() {
		t.Fatalf("receipt counts differ: %d vs %d", a.Store.NumReceipts(), b.Store.NumReceipts())
	}
	for _, id := range a.Store.Customers() {
		ha, _ := a.Store.History(id)
		hb, err := b.Store.History(id)
		if err != nil {
			t.Fatalf("customer %d missing in second run", id)
		}
		if len(ha.Receipts) != len(hb.Receipts) {
			t.Fatalf("customer %d: %d vs %d receipts", id, len(ha.Receipts), len(hb.Receipts))
		}
		for i := range ha.Receipts {
			if !ha.Receipts[i].Time.Equal(hb.Receipts[i].Time) || !ha.Receipts[i].Items.Equal(hb.Receipts[i].Items) {
				t.Fatalf("customer %d receipt %d differs", id, i)
			}
		}
	}
	c := cfg
	c.Seed = cfg.Seed + 1
	other, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if other.Store.NumReceipts() == a.Store.NumReceipts() {
		t.Log("warning: different seeds gave identical receipt counts (possible but unlikely)")
	}
}

func TestGenerateCohorts(t *testing.T) {
	cfg := smallConfig()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	labels := ds.Truth.Labels()
	if len(labels) != cfg.Customers {
		t.Fatalf("labels = %d, want %d", len(labels), cfg.Customers)
	}
	defectors, loyal := 0, 0
	for _, l := range labels {
		switch l.Cohort {
		case retail.CohortDefecting:
			defectors++
			if l.OnsetMonth < cfg.OnsetMonth || l.OnsetMonth > cfg.OnsetMonth+cfg.OnsetJitterMonths {
				t.Fatalf("defector onset %d outside [%d,%d]", l.OnsetMonth, cfg.OnsetMonth, cfg.OnsetMonth+cfg.OnsetJitterMonths)
			}
		case retail.CohortLoyal:
			loyal++
			if l.OnsetMonth != -1 {
				t.Fatalf("loyal customer has onset %d", l.OnsetMonth)
			}
		default:
			t.Fatalf("unknown cohort in labels")
		}
	}
	want := int(float64(cfg.Customers)*cfg.DefectorFraction + 0.5)
	if defectors != want {
		t.Fatalf("defectors = %d, want %d", defectors, want)
	}
	if got := ds.Truth.Defectors(); len(got) != defectors {
		t.Fatalf("Defectors() = %d ids", len(got))
	}
}

func TestGenerateDropsAfterOnsetOnly(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for id, truth := range ds.Truth.ByCustomer {
		if truth.Label.Cohort == retail.CohortLoyal {
			if len(truth.Drops) != 0 {
				t.Fatalf("loyal customer %d has attrition drops", id)
			}
			continue
		}
		if len(truth.Drops) == 0 {
			t.Fatalf("defector %d has no drops", id)
		}
		for _, d := range truth.Drops {
			if d.Month < truth.Label.OnsetMonth {
				t.Fatalf("defector %d dropped segment at month %d before onset %d", id, d.Month, truth.Label.OnsetMonth)
			}
			// Dropped segments come from the recorded core repertoire or a
			// drift-adopted segment; at minimum they must be valid ids.
			if d.Segment == retail.NoItem {
				t.Fatalf("defector %d dropped NoItem", id)
			}
		}
	}
}

func TestGenerateDroppedSegmentsNotBoughtAgain(t *testing.T) {
	cfg := smallConfig()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id, truth := range ds.Truth.ByCustomer {
		if truth.Label.Cohort != retail.CohortDefecting {
			continue
		}
		h, err := ds.Store.History(id)
		if err != nil {
			continue
		}
		for _, d := range truth.Drops {
			cut := cfg.Start.AddDate(0, d.Month, 0)
			for _, r := range h.Receipts {
				if r.Time.Before(cut) {
					continue
				}
				if r.Items.Contains(d.Segment) {
					t.Fatalf("customer %d bought dropped segment %d after month %d", id, d.Segment, d.Month)
				}
			}
		}
	}
}

func TestGenerateDefectorsStillShop(t *testing.T) {
	// Partial attrition: defectors must keep visiting the store after
	// onset (unlike contractual churn).
	cfg := smallConfig()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	onset := cfg.Start.AddDate(0, cfg.OnsetMonth+2, 0)
	still := 0
	total := 0
	for _, id := range ds.Truth.Defectors() {
		h, err := ds.Store.History(id)
		if err != nil {
			continue
		}
		total++
		for _, r := range h.Receipts {
			if r.Time.After(onset) {
				still++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("no defectors")
	}
	if frac := float64(still) / float64(total); frac < 0.9 {
		t.Fatalf("only %.0f%% of defectors still shop after onset+2mo", frac*100)
	}
}

func TestGroundTruthDroppedBy(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range ds.Truth.Defectors() {
		truth := ds.Truth.ByCustomer[id]
		if len(truth.Drops) == 0 {
			continue
		}
		d := truth.Drops[0]
		month, ok := ds.Truth.DroppedBy(id, d.Segment)
		if !ok || month != d.Month {
			t.Fatalf("DroppedBy(%d, %d) = %d, %v", id, d.Segment, month, ok)
		}
		if _, ok := ds.Truth.DroppedBy(id, retail.ItemID(60000)); ok {
			t.Fatal("DroppedBy found a never-dropped segment")
		}
		found = true
		break
	}
	if !found {
		t.Fatal("no drops to test")
	}
	if _, ok := ds.Truth.DroppedBy(999999, 1); ok {
		t.Fatal("DroppedBy found unknown customer")
	}
}

func TestGenerateCatalogShape(t *testing.T) {
	cfg := smallConfig()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Catalog.NumSegments() != cfg.Segments {
		t.Fatalf("segments = %d, want %d", ds.Catalog.NumSegments(), cfg.Segments)
	}
	if ds.Catalog.NumProducts() != cfg.Segments*cfg.ProductsPerSegment {
		t.Fatalf("products = %d", ds.Catalog.NumProducts())
	}
	// Figure-2 segments must exist by name.
	for _, name := range []string{"coffee", "milk", "sponge", "cheese"} {
		if _, err := ds.Catalog.SegmentByName(name); err != nil {
			t.Fatalf("catalog missing %q: %v", name, err)
		}
	}
	// All receipt items must be valid segment ids.
	ds.Store.Each(func(h retail.History) bool {
		for _, r := range h.Receipts {
			for _, it := range r.Items {
				if int(it) < 1 || int(it) > cfg.Segments {
					t.Errorf("customer %d bought invalid segment %d", h.Customer, it)
					return false
				}
			}
		}
		return true
	})
}

func TestGenerateTimeRangeWithinHorizon(t *testing.T) {
	cfg := smallConfig()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	min, max, ok := ds.Store.TimeRange()
	if !ok {
		t.Fatal("empty store")
	}
	if min.Before(cfg.Start) {
		t.Fatalf("receipt before dataset start: %v", min)
	}
	if !max.Before(cfg.End()) {
		t.Fatalf("receipt at/after dataset end: %v vs %v", max, cfg.End())
	}
}

func TestGenerateLateJoiners(t *testing.T) {
	cfg := smallConfig()
	cfg.JoinSpreadMonths = 10
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	early, late := 0, 0
	cut := cfg.Start.AddDate(0, 3, 0)
	ds.Store.Each(func(h retail.History) bool {
		first, _, ok := h.Span()
		if !ok {
			return true
		}
		if first.Before(cut) {
			early++
		} else {
			late++
		}
		return true
	})
	if late == 0 {
		t.Fatal("join spread produced no late joiners")
	}
	if early == 0 {
		t.Fatal("join spread produced no early joiners")
	}
	// Without spread, everyone joins in the first weeks.
	cfg2 := smallConfig()
	ds2, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	ds2.Store.Each(func(h retail.History) bool {
		first, _, ok := h.Span()
		if ok && !first.Before(cut) {
			t.Errorf("customer %d joined at %v with zero spread", h.Customer, first)
			return false
		}
		return true
	})
	// Validation: spread must stay below the onset.
	bad := smallConfig()
	bad.JoinSpreadMonths = bad.OnsetMonth
	if err := bad.Validate(); err == nil {
		t.Fatal("join spread >= onset accepted")
	}
}

func TestGenerateSeasonality(t *testing.T) {
	cfg := smallConfig()
	cfg.SeasonalFraction = 0.5
	cfg.SeasonLengthMonths = 4
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the season table the generator used (same fork order) to
	// verify the constraint directly.
	root := stats.NewRand(cfg.Seed)
	root.Fork() // catalog fork
	seasons := buildSeasons(cfg, root.Fork())
	seasonal := 0
	for _, s := range seasons {
		if s >= 0 {
			seasonal++
		}
	}
	if seasonal == 0 || seasonal == cfg.Segments {
		t.Fatalf("seasonal segments = %d of %d", seasonal, cfg.Segments)
	}
	// No receipt may contain an out-of-season segment.
	violations := 0
	ds.Store.Each(func(h retail.History) bool {
		for _, r := range h.Receipts {
			m := (int(cfg.Start.Month()) - 1 + monthsBetween(cfg.Start, r.Time)) % 12
			for _, it := range r.Items {
				peak := seasons[it-1]
				if peak < 0 {
					continue
				}
				offset := (m - int(peak) + 12) % 12
				lo := (cfg.SeasonLengthMonths - 1) / 2
				hi := cfg.SeasonLengthMonths - 1 - lo
				if !(offset <= hi || offset >= 12-lo) {
					violations++
				}
			}
		}
		return true
	})
	if violations > 0 {
		t.Fatalf("%d out-of-season purchases", violations)
	}
	// Validation bounds.
	bad := cfg
	bad.SeasonalFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("SeasonalFraction > 1 accepted")
	}
	bad = cfg
	bad.SeasonLengthMonths = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("SeasonLengthMonths 0 accepted")
	}
}

func monthsBetween(a, b time.Time) int {
	return (b.Year()-a.Year())*12 + int(b.Month()) - int(a.Month())
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Customers = -1
	if _, err := Generate(cfg); err == nil {
		t.Fatal("bad config accepted")
	}
}
