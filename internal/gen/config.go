// Package gen is the synthetic retail-transaction simulator standing in
// for the paper's proprietary dataset (receipts of 6M customers of a major
// French retailer, May 2012 – Aug 2014, 4M products in 3,388 segments).
//
// The simulator produces exactly the shape the model consumes — (customer,
// timestamp, basket-of-segments, spend) — with the two labelled cohorts the
// evaluation needs:
//
//   - Loyal customers: a stable core repertoire of segments bought with
//     per-segment periodicities, noisy trip schedules, impulse purchases
//     and occasional vacations.
//   - Defecting customers: identical behaviour until an onset month, then
//     partial attrition — progressive loss of core segments and decaying
//     trip frequency, never an abrupt exit (grocery defection is partial,
//     as the paper stresses).
//
// Because the generator knows which segments each defector dropped and
// when, it also provides the ground truth that the explanation-quality
// experiment (EXT-1 in DESIGN.md) scores against — something impossible
// with the real dataset.
package gen

import (
	"fmt"
	"time"
)

// Config parameterizes dataset generation. NewConfig supplies defaults
// matching the paper's setting scaled to laptop size; Validate enforces
// consistency.
type Config struct {
	// Seed drives every random choice; equal configs generate identical
	// datasets.
	Seed int64

	// Customers is the total number of customers across both cohorts.
	Customers int
	// DefectorFraction is the share of customers in the defecting cohort.
	// The paper's evaluation set pairs loyal customers with loyal-then-
	// defecting ones; 0.5 mirrors that balanced design.
	DefectorFraction float64

	// Start is the first day of the dataset (paper: May 2012).
	Start time.Time
	// Months is the dataset length in months (paper: 28, May 2012 – Aug
	// 2014).
	Months int
	// JoinSpreadMonths spreads each customer's first shopping day
	// uniformly over [0, JoinSpreadMonths] months after Start. 0 (the
	// default, matching the paper's long-lived loyal cohort) makes
	// everyone active from the first month; positive values create late
	// joiners, which is what distinguishes the prior-window counting
	// policies (EXT-4).
	JoinSpreadMonths int

	// OnsetMonth is the month index (0-based from Start) at which the
	// defecting cohort begins attrition (paper: month 18).
	OnsetMonth int
	// OnsetJitterMonths adds uniform per-customer lag in
	// [0, OnsetJitterMonths] to the onset, so defection is not perfectly
	// synchronized.
	OnsetJitterMonths int

	// Segments is the catalog size at the abstraction level the model uses
	// (paper: 3,388; default scaled down — the model's behaviour depends on
	// per-customer repertoires, not catalog breadth).
	Segments int
	// ProductsPerSegment controls SKU synthesis under each segment.
	ProductsPerSegment int
	// ZipfExponent skews segment popularity (higher = heavier head).
	ZipfExponent float64

	// CoreSegmentsMin/Max bound each customer's core repertoire size.
	CoreSegmentsMin, CoreSegmentsMax int

	// TripsPerWeek is the population-mean shopping frequency; individual
	// rates vary lognormally around it.
	TripsPerWeek float64
	// TempoSigma is the month-to-month lognormal noise on each customer's
	// trip rate (busy periods, holidays). Tempo noise blurs recency and
	// frequency for everyone, keeping the RFM baseline honest.
	TempoSigma float64
	// ImpulseMean is the mean number of non-core segments per trip.
	ImpulseMean float64
	// MissProb is the chance a due core segment is skipped on a trip —
	// behavioural noise that keeps loyal stability below a hard 1.0.
	MissProb float64

	// VacationsPerYear is the expected number of purchase gaps per year;
	// VacationDaysMin/Max bound their length. Vacations create false-alarm
	// pressure for any attrition detector.
	VacationsPerYear                 float64
	VacationDaysMin, VacationDaysMax int

	// DropFractionPerMonth is the share of a defector's remaining core
	// segments dropped at each month boundary after onset.
	DropFractionPerMonth float64
	// TripDecayPerMonth multiplies a defector's trip rate at each month
	// boundary after onset (partial attrition: rate decays, never zeroes).
	TripDecayPerMonth float64

	// RepertoireDriftPerMonth is the chance, each month, that a
	// non-defecting customer swaps one core segment for a fresh one —
	// ordinary taste drift. Drift keeps loyal stability strictly below 1
	// and AUROC away from a saturated 1.0, like real data does. Defectors
	// drift too, but only before their onset.
	RepertoireDriftPerMonth float64

	// SeveritySigma is the lognormal spread of per-defector attrition
	// severity: each defector's drop fraction and trip decay are scaled by
	// exp(N(0, SeveritySigma²)). Severity heterogeneity is what keeps
	// detection imperfect months after onset — mild defectors look like
	// drifting loyal customers for a long time. 0 disables heterogeneity.
	SeveritySigma float64

	// SeasonalFraction is the share of catalog segments that are seasonal:
	// bought only during a 4-month window around a segment-specific peak
	// month (ice cream in summer, clementines in winter). A loyal customer
	// whose repertoire includes seasonal segments shows annual stability
	// dips — a confounder every attrition detector faces on real grocery
	// data. 0 (default) disables seasonality; the official reproduction
	// numbers use 0 so they stay comparable with the paper's protocol.
	SeasonalFraction float64
	// SeasonLengthMonths is the width of the in-season window.
	SeasonLengthMonths int
}

// NewConfig returns the default configuration: the paper's timeline and
// onset, laptop-scale population and catalog.
func NewConfig() Config {
	return Config{
		Seed:                    1,
		Customers:               1600,
		DefectorFraction:        0.5,
		Start:                   time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC),
		Months:                  28,
		OnsetMonth:              18,
		OnsetJitterMonths:       1,
		Segments:                160,
		ProductsPerSegment:      25,
		ZipfExponent:            0.8,
		CoreSegmentsMin:         12,
		CoreSegmentsMax:         28,
		TripsPerWeek:            1.6,
		TempoSigma:              0.35,
		ImpulseMean:             1.8,
		MissProb:                0.12,
		VacationsPerYear:        1.2,
		VacationDaysMin:         7,
		VacationDaysMax:         21,
		DropFractionPerMonth:    0.20,
		TripDecayPerMonth:       0.90,
		RepertoireDriftPerMonth: 0.18,
		SeveritySigma:           1.0,
		SeasonalFraction:        0,
		SeasonLengthMonths:      4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Customers < 1:
		return fmt.Errorf("gen: Customers must be >= 1, got %d", c.Customers)
	case c.DefectorFraction < 0 || c.DefectorFraction > 1:
		return fmt.Errorf("gen: DefectorFraction must be in [0,1], got %v", c.DefectorFraction)
	case c.Start.IsZero():
		return fmt.Errorf("gen: zero Start time")
	case c.Months < 2:
		return fmt.Errorf("gen: Months must be >= 2, got %d", c.Months)
	case c.OnsetMonth < 1 || c.OnsetMonth >= c.Months:
		return fmt.Errorf("gen: OnsetMonth %d outside (0, Months=%d)", c.OnsetMonth, c.Months)
	case c.Segments < 4:
		return fmt.Errorf("gen: Segments must be >= 4, got %d", c.Segments)
	case c.ProductsPerSegment < 1:
		return fmt.Errorf("gen: ProductsPerSegment must be >= 1, got %d", c.ProductsPerSegment)
	case c.ZipfExponent <= 0:
		return fmt.Errorf("gen: ZipfExponent must be > 0, got %v", c.ZipfExponent)
	case c.CoreSegmentsMin < 1 || c.CoreSegmentsMax < c.CoreSegmentsMin:
		return fmt.Errorf("gen: core repertoire bounds [%d,%d] invalid", c.CoreSegmentsMin, c.CoreSegmentsMax)
	case c.CoreSegmentsMax > c.Segments:
		return fmt.Errorf("gen: CoreSegmentsMax %d exceeds Segments %d", c.CoreSegmentsMax, c.Segments)
	case c.TripsPerWeek <= 0:
		return fmt.Errorf("gen: TripsPerWeek must be > 0, got %v", c.TripsPerWeek)
	case c.TempoSigma < 0:
		return fmt.Errorf("gen: TempoSigma must be >= 0, got %v", c.TempoSigma)
	case c.ImpulseMean < 0:
		return fmt.Errorf("gen: ImpulseMean must be >= 0, got %v", c.ImpulseMean)
	case c.MissProb < 0 || c.MissProb >= 1:
		return fmt.Errorf("gen: MissProb must be in [0,1), got %v", c.MissProb)
	case c.VacationsPerYear < 0:
		return fmt.Errorf("gen: VacationsPerYear must be >= 0, got %v", c.VacationsPerYear)
	case c.VacationsPerYear > 0 && (c.VacationDaysMin < 1 || c.VacationDaysMax < c.VacationDaysMin):
		return fmt.Errorf("gen: vacation day bounds [%d,%d] invalid", c.VacationDaysMin, c.VacationDaysMax)
	case c.DropFractionPerMonth <= 0 || c.DropFractionPerMonth > 1:
		return fmt.Errorf("gen: DropFractionPerMonth must be in (0,1], got %v", c.DropFractionPerMonth)
	case c.TripDecayPerMonth <= 0 || c.TripDecayPerMonth > 1:
		return fmt.Errorf("gen: TripDecayPerMonth must be in (0,1], got %v", c.TripDecayPerMonth)
	case c.OnsetJitterMonths < 0:
		return fmt.Errorf("gen: OnsetJitterMonths must be >= 0, got %d", c.OnsetJitterMonths)
	case c.RepertoireDriftPerMonth < 0 || c.RepertoireDriftPerMonth >= 1:
		return fmt.Errorf("gen: RepertoireDriftPerMonth must be in [0,1), got %v", c.RepertoireDriftPerMonth)
	case c.SeveritySigma < 0:
		return fmt.Errorf("gen: SeveritySigma must be >= 0, got %v", c.SeveritySigma)
	case c.JoinSpreadMonths < 0 || c.JoinSpreadMonths >= c.OnsetMonth:
		return fmt.Errorf("gen: JoinSpreadMonths must be in [0, OnsetMonth=%d), got %d",
			c.OnsetMonth, c.JoinSpreadMonths)
	case c.SeasonalFraction < 0 || c.SeasonalFraction > 1:
		return fmt.Errorf("gen: SeasonalFraction must be in [0,1], got %v", c.SeasonalFraction)
	case c.SeasonalFraction > 0 && (c.SeasonLengthMonths < 1 || c.SeasonLengthMonths > 12):
		return fmt.Errorf("gen: SeasonLengthMonths must be in [1,12], got %d", c.SeasonLengthMonths)
	}
	return nil
}

// End returns the first instant after the dataset (Start + Months).
func (c Config) End() time.Time {
	return c.Start.AddDate(0, c.Months, 0)
}
