package gen

import (
	"math"
	"sort"
	"time"

	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/stats"
)

// coreItem is one segment of a customer's core repertoire with its
// replenishment cycle.
type coreItem struct {
	seg        retail.ItemID
	periodDays float64
	lastBought float64 // days since dataset start; negative = phase offset
	active     bool
}

// profile is the behavioural state of one simulated customer.
type profile struct {
	id        retail.CustomerID
	defector  bool
	onset     int     // month index; -1 for loyal
	baseRate  float64 // trips per week before decay/tempo modulation
	decayMult float64 // cumulative post-onset attrition decay
	tripRate  float64 // effective trips per week this month
	impulse   float64 // mean impulse segments per trip (current)
	missProb  float64 // per-trip chance of skipping a due core segment
	dropFrac  float64 // per-month share of remaining core segments dropped
	tripDecay float64 // per-month trip-rate multiplier post-onset
	driftProb float64 // per-month chance of an ordinary repertoire swap
	core      []coreItem
	vacations []vacation
	// Vacations are drawn lazily as a Poisson process on a dedicated forked
	// stream, so the materialized plan for any horizon is a prefix of the
	// plan for every longer horizon — the property that lets Extend resume a
	// customer bit-identically. vacNext is the start day of the first
	// vacation not yet materialized; vacRand is nil when vacations are
	// disabled.
	vacRand    *stats.Rand
	vacNext    float64
	vacGapDays float64
	r          *stats.Rand
	driftZipf  *stats.Zipf // sampler for drift-adopted segments
	// dropped marks attrition-lost segments: "stopped buying" means gone
	// for good, so impulse draws and drift adoption must skip them.
	dropped map[retail.ItemID]bool
	// seasons maps segment index (ItemID−1) to its peak calendar month, or
	// −1 for year-round segments. Shared across the population.
	seasons []int8
	// seasonLen and start cache the season geometry.
	seasonLen int
	start     time.Time
}

// inSeason reports whether a segment may be bought at the given day
// offset. Year-round segments always qualify.
func (p *profile) inSeason(seg retail.ItemID, day float64) bool {
	if len(p.seasons) == 0 || int(seg)-1 >= len(p.seasons) {
		return true
	}
	peak := p.seasons[seg-1]
	if peak < 0 {
		return true
	}
	m := (int(p.start.Month()) - 1 + monthOf(p.start, day)) % 12
	offset := (m - int(peak)%12 + 12) % 12
	lo := (p.seasonLen - 1) / 2
	hi := p.seasonLen - 1 - lo
	return offset <= hi || offset >= 12-lo
}

type vacation struct {
	startDay, endDay float64
}

// newProfile draws a customer's stable parameters.
func newProfile(cfg Config, id retail.CustomerID, defector bool, zipf *stats.Zipf, r *stats.Rand) *profile {
	p := &profile{
		id:        id,
		defector:  defector,
		onset:     -1,
		baseRate:  cfg.TripsPerWeek * r.LogNormal(0, 0.25),
		decayMult: 1,
		impulse:   cfg.ImpulseMean * r.LogNormal(0, 0.2),
		missProb:  cfg.MissProb,
		r:         r,
		driftZipf: zipf,
		dropped:   make(map[retail.ItemID]bool),
		seasonLen: cfg.SeasonLengthMonths,
		start:     cfg.Start,
	}
	p.tripRate = p.baseRate * r.LogNormal(0, cfg.TempoSigma)
	// Per-customer taste-drift intensity: most customers drift rarely, a
	// heavy tail drifts a lot (moves, family changes) and resembles mild
	// attrition — the overlap real churn data has.
	p.driftProb = clamp(cfg.RepertoireDriftPerMonth*r.LogNormal(0, 0.8), 0, 0.5)
	if defector {
		p.onset = cfg.OnsetMonth + r.IntBetween(0, cfg.OnsetJitterMonths)
		// Per-defector severity: a lognormal multiplier spreads both how
		// fast the repertoire erodes and how fast trips decay. Mild
		// defectors (small multiplier) stay near-indistinguishable from
		// drifting loyal customers for months.
		severity := r.LogNormal(0, cfg.SeveritySigma)
		p.dropFrac = clamp(cfg.DropFractionPerMonth*severity, 0.01, 0.6)
		decayAmount := (1 - cfg.TripDecayPerMonth) * severity
		p.tripDecay = clamp(1-decayAmount, 0.65, 1.0)
	}
	k := r.IntBetween(cfg.CoreSegmentsMin, cfg.CoreSegmentsMax)
	ranks := zipf.SampleDistinct(k)
	sort.Ints(ranks)
	p.core = make([]coreItem, 0, k)
	for _, rank := range ranks {
		// Replenishment period: heavy mass around weekly–biweekly, tail to
		// monthly-plus. Clamped so every core item recurs inside a 2-month
		// window with margin.
		period := 5 + r.Exponential(9)
		if period > 42 {
			period = 42
		}
		p.core = append(p.core, coreItem{
			seg:        retail.ItemID(rank + 1),
			periodDays: period,
			lastBought: -r.Float64() * period, // random phase
			active:     true,
		})
	}
	// Vacation plan: a homogeneous Poisson process (exponential gaps between
	// start days) on a dedicated forked stream. The process is materialized
	// only up to the current horizon by extendVacations, and the draws for
	// months [0, M) never depend on the total horizon — so extending a
	// dataset replays exactly the draws a longer from-scratch run makes.
	if cfg.VacationsPerYear > 0 {
		p.vacGapDays = 365.25 / cfg.VacationsPerYear
		p.vacRand = r.Fork()
		p.vacNext = p.vacRand.Exponential(p.vacGapDays)
	}
	return p
}

// extendVacations materializes the vacation plan through horizonDays.
// Starts arrive in increasing order, so the list stays sorted; calling with
// successively larger horizons appends exactly the vacations a from-scratch
// run with the larger horizon would have drawn.
func (p *profile) extendVacations(cfg Config, horizonDays float64) {
	if p.vacRand == nil {
		return
	}
	for p.vacNext < horizonDays {
		length := float64(p.vacRand.IntBetween(cfg.VacationDaysMin, cfg.VacationDaysMax))
		p.vacations = append(p.vacations, vacation{startDay: p.vacNext, endDay: p.vacNext + length})
		p.vacNext += p.vacRand.Exponential(p.vacGapDays)
	}
}

func (p *profile) onVacation(day float64) bool {
	for _, v := range p.vacations {
		if day >= v.startDay && day < v.endDay {
			return true
		}
		if v.startDay > day {
			break
		}
	}
	return false
}

// monthOf converts a day offset to a month index given the dataset start.
func monthOf(start time.Time, day float64) int {
	t := start.Add(time.Duration(day * 24 * float64(time.Hour)))
	return (t.Year()-start.Year())*12 + int(t.Month()) - int(start.Month())
}

// startSimulation draws the customer's join offset and first trip day,
// returning the initial trip-loop cursor for simulateRange.
func (p *profile) startSimulation(cfg Config) (day float64, curMonth int) {
	// Late joiners: the customer's first trip happens after their join
	// offset; everything before is pre-customer silence. Replenishment
	// phases shift with the join so baskets ramp up naturally instead of
	// dumping the whole repertoire into the first receipt.
	joinDay := p.r.Float64() * float64(cfg.JoinSpreadMonths) * 30.44
	if joinDay > 0 {
		for i := range p.core {
			p.core[i].lastBought += joinDay
		}
	}
	return joinDay + p.r.Exponential(7/p.tripRate), 0
}

// simulateRange runs the trip loop from the (day, curMonth) cursor until
// the horizon, generating receipts, attrition drop events and drift drop
// events. It returns the cursor at loop exit: day is the first trip at or
// beyond the horizon (its randomness already drawn), curMonth the last
// month boundary processed. Nothing inside the loop depends on the horizon,
// so resuming the returned cursor against a later horizon is bit-identical
// to having run the longer horizon from the start — the property gen.Extend
// is built on. Vacations must already be materialized through horizonDays.
func (p *profile) simulateRange(cfg Config, prices []float64, day float64, curMonth int, horizonDays float64) (receipts []retail.Receipt, drops, driftDrops []DropEvent, nextDay float64, nextMonth int) {
	zipf := p.driftZipf
	for day < horizonDays {
		m := monthOf(cfg.Start, day)
		// Apply month-boundary transitions (possibly several if trips are
		// sparse): ordinary repertoire drift for everyone pre-onset,
		// attrition for defectors post-onset.
		for curMonth < m {
			curMonth++
			if p.defector && curMonth >= p.onset {
				drops = append(drops, p.applyMonthlyAttrition(cfg, curMonth)...)
			} else if d, ok := p.applyMonthlyDrift(cfg, curMonth); ok {
				driftDrops = append(driftDrops, d)
			}
			// Month-to-month tempo: the same customer shops more some
			// months than others, independent of loyalty.
			p.tripRate = p.baseRate * p.decayMult * p.r.LogNormal(0, cfg.TempoSigma)
		}

		if !p.onVacation(day) {
			basket, spend := p.basketAt(day, prices, zipf)
			if len(basket) > 0 {
				ts := cfg.Start.Add(time.Duration(day * 24 * float64(time.Hour)))
				// Shift into shopping hours (08:00–20:00) deterministically
				// from the fractional day so ordering is preserved.
				receipts = append(receipts, retail.Receipt{Time: ts, Items: basket, Spend: spend})
			}
		}
		gap := p.r.Exponential(7 / p.tripRate)
		if gap < 0.25 {
			gap = 0.25 // at most a few trips per day
		}
		day += gap
	}
	return receipts, drops, driftDrops, day, curMonth
}

// applyMonthlyDrift occasionally swaps one active core segment for a fresh
// one — ordinary taste drift that keeps even loyal stability below 1.
func (p *profile) applyMonthlyDrift(cfg Config, month int) (DropEvent, bool) {
	if !p.r.Bernoulli(p.driftProb) {
		return DropEvent{}, false
	}
	var active []int
	inCore := make(map[retail.ItemID]bool, len(p.core))
	for i := range p.core {
		if p.core[i].active {
			active = append(active, i)
		}
		inCore[p.core[i].seg] = true
	}
	if len(active) == 0 {
		return DropEvent{}, false
	}
	idx := active[p.r.Intn(len(active))]
	dropped := p.core[idx].seg
	p.core[idx].active = false

	// Adopt a replacement segment not already in the repertoire.
	monthStart := float64(month) * 30.44
	for try := 0; try < 8; try++ {
		seg := retail.ItemID(p.driftZipf.Draw() + 1)
		if inCore[seg] {
			continue
		}
		period := 5 + p.r.Exponential(9)
		if period > 42 {
			period = 42
		}
		p.core = append(p.core, coreItem{
			seg:        seg,
			periodDays: period,
			lastBought: monthStart - p.r.Float64()*period,
			active:     true,
		})
		break
	}
	return DropEvent{Month: month, Segment: dropped}, true
}

// applyMonthlyAttrition drops a binomial share of remaining core segments
// and decays trip/impulse rates. Returns the drop events recorded at this
// month.
func (p *profile) applyMonthlyAttrition(cfg Config, month int) []DropEvent {
	var out []DropEvent
	remaining := 0
	for i := range p.core {
		if p.core[i].active {
			remaining++
		}
	}
	if remaining > 0 {
		// The first attrition month is front-loaded: defection typically
		// starts with a visible break (a competitor opened nearby, a move)
		// before settling into gradual erosion.
		frac := p.dropFrac
		if month == p.onset {
			frac = clamp(2*frac, 0, 0.7)
		}
		toDrop := p.r.Binomial(remaining, frac)
		// Ensure progress in the first attrition month so every defector
		// has at least one explainable loss.
		if toDrop == 0 && month == p.onset {
			toDrop = 1
		}
		for d := 0; d < toDrop; d++ {
			// Drop the least-popular remaining core segment with higher
			// probability: peripheral items go first, staples last —
			// mirrors partial attrition where customers keep buying bread
			// and milk the longest.
			idx := p.pickDropIndex()
			if idx < 0 {
				break
			}
			p.core[idx].active = false
			p.dropped[p.core[idx].seg] = true
			out = append(out, DropEvent{Month: month, Segment: p.core[idx].seg})
		}
	}
	// Trip frequency erodes from the month after onset: partial attrition
	// shifts basket content to a competitor before store visits thin out,
	// so recency/frequency signals lag basket-content signals. Impulse
	// buying does not decay — the customer who still walks the aisles still
	// grabs chocolate — which keeps receipt-level R/F/M signals partially
	// healthy while the stable repertoire erodes underneath.
	if month > p.onset {
		p.decayMult *= p.tripDecay
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// pickDropIndex chooses an active core index, biased toward higher segment
// identifiers (= less popular by construction).
func (p *profile) pickDropIndex() int {
	var weights []float64
	var idxs []int
	for i := range p.core {
		if p.core[i].active {
			idxs = append(idxs, i)
			weights = append(weights, math.Sqrt(float64(p.core[i].seg)))
		}
	}
	if len(idxs) == 0 {
		return -1
	}
	return idxs[p.r.PickWeighted(weights)]
}

// basketAt assembles the basket of one trip at the given day offset.
func (p *profile) basketAt(day float64, prices []float64, zipf *stats.Zipf) (retail.Basket, float64) {
	var items []retail.ItemID
	var spend float64
	for i := range p.core {
		c := &p.core[i]
		if !c.active {
			continue
		}
		if !p.inSeason(c.seg, day) {
			continue // out-of-season items stay due; they return with the season
		}
		if day-c.lastBought >= c.periodDays {
			if p.r.Bernoulli(1 - p.missProb) {
				items = append(items, c.seg)
				c.lastBought = day
				spend += priceOf(prices, c.seg) * p.r.LogNormal(0, 0.15)
			} else {
				// Missed this trip; slight nudge so it stays due next trip.
				c.lastBought = day - c.periodDays
			}
		}
	}
	n := p.r.Poisson(p.impulse)
	for i := 0; i < n; i++ {
		seg := retail.ItemID(zipf.Draw() + 1)
		if p.dropped[seg] {
			continue // lost segments stay lost, even to impulse
		}
		if !p.inSeason(seg, day) {
			continue
		}
		items = append(items, seg)
		spend += priceOf(prices, seg) * p.r.LogNormal(0, 0.15)
	}
	return retail.NewBasket(items), spend
}

func priceOf(prices []float64, seg retail.ItemID) float64 {
	if int(seg)-1 < len(prices) {
		return prices[seg-1]
	}
	return 2.5
}
