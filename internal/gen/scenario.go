package gen

import (
	"fmt"
	"time"

	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/stats"
	"github.com/gautrais/stability/internal/store"
	"github.com/gautrais/stability/internal/taxonomy"
)

// ScriptedDrop names segments a scripted customer stops buying at the
// start of a month.
type ScriptedDrop struct {
	Month    int
	Segments []string
}

// Scenario is a scripted single-customer dataset used to reproduce the
// paper's Figure 2 use case.
type Scenario struct {
	Store    *store.Store
	Catalog  *taxonomy.Catalog
	Customer retail.CustomerID
	Drops    []ScriptedDrop
	Grid     GridSpec
}

// GridSpec records the timeline the scenario was generated on.
type GridSpec struct {
	Start  time.Time
	Months int
}

// Figure2Config parameterizes the scripted use case. The defaults replay
// the paper's narrative exactly: a loyal customer on the May-2012 timeline
// who stops buying coffee at month 20 and milk, sponge and cheese at
// month 22.
type Figure2Config struct {
	Seed   int64
	Start  time.Time
	Months int
	// Repertoire lists the core segments the customer buys regularly. It
	// must include every segment named in Drops.
	Repertoire []string
	// PeriodDays is the replenishment cycle shared by repertoire items.
	PeriodDays float64
	// TripEveryDays is the (mean) gap between store visits.
	TripEveryDays float64
	// Drops scripts the losses.
	Drops []ScriptedDrop
}

// DefaultFigure2Config returns the paper's use case. Drops are scripted at
// months 18 and 20 — the customer starts defecting exactly at the cohort
// onset (month 18, the paper's "start of attrition") — so that on the
// 2-month window grid the first fully-missing windows end at months 20 and
// 22, where the paper's figure shows the two stability decreases
// ("decrease in month 20 … stopped buying coffee during this window";
// "in month 22 … milk, sponge and cheese").
func DefaultFigure2Config() Figure2Config {
	return Figure2Config{
		Seed:   7,
		Start:  time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC),
		Months: 28,
		Repertoire: []string{
			"coffee", "milk", "sponge", "cheese",
			"butter", "yogurt", "baguette", "pasta",
			"apples", "bananas", "toilet paper", "eggs",
		},
		PeriodDays:    9,
		TripEveryDays: 3.5,
		Drops: []ScriptedDrop{
			{Month: 18, Segments: []string{"coffee"}},
			{Month: 20, Segments: []string{"milk", "sponge", "cheese"}},
		},
	}
}

// Validate reports configuration errors.
func (c Figure2Config) Validate() error {
	if c.Start.IsZero() {
		return fmt.Errorf("gen: figure2: zero start")
	}
	if c.Months < 2 {
		return fmt.Errorf("gen: figure2: months must be >= 2, got %d", c.Months)
	}
	if len(c.Repertoire) == 0 {
		return fmt.Errorf("gen: figure2: empty repertoire")
	}
	if c.PeriodDays <= 0 || c.TripEveryDays <= 0 {
		return fmt.Errorf("gen: figure2: periods must be positive")
	}
	have := make(map[string]bool, len(c.Repertoire))
	for _, s := range c.Repertoire {
		have[s] = true
	}
	for _, d := range c.Drops {
		if d.Month < 1 || d.Month >= c.Months {
			return fmt.Errorf("gen: figure2: drop month %d outside (0,%d)", d.Month, c.Months)
		}
		for _, s := range d.Segments {
			if !have[s] {
				return fmt.Errorf("gen: figure2: drop references %q not in repertoire", s)
			}
		}
	}
	return nil
}

// Figure2Scenario builds the scripted dataset.
func Figure2Scenario(cfg Figure2Config) (*Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// A small named catalog covering the repertoire.
	catCfg := NewConfig()
	catCfg.Segments = len(baseSegments)
	catCfg.ProductsPerSegment = 3
	r := stats.NewRand(cfg.Seed)
	cat, err := buildCatalog(catCfg, r.Fork())
	if err != nil {
		return nil, fmt.Errorf("gen: figure2 catalog: %w", err)
	}
	repertoire, err := cat.AbstractNames(cfg.Repertoire)
	if err != nil {
		return nil, fmt.Errorf("gen: figure2 repertoire: %w", err)
	}
	dropAt := make(map[retail.ItemID]int) // segment -> month it is lost
	for _, d := range cfg.Drops {
		for _, name := range d.Segments {
			seg, err := cat.SegmentByName(name)
			if err != nil {
				return nil, err
			}
			dropAt[seg.ID] = d.Month
		}
	}

	const id = retail.CustomerID(42)
	sb := store.NewBuilder()
	horizonDays := cfg.Start.AddDate(0, cfg.Months, 0).Sub(cfg.Start).Hours() / 24
	last := make(map[retail.ItemID]float64, len(repertoire))
	for i, seg := range repertoire {
		// Stagger phases so baskets differ trip to trip.
		last[seg] = -cfg.PeriodDays * float64(i%3) / 3
	}
	day := 0.5
	for day < horizonDays {
		month := monthOf(cfg.Start, day)
		var items []retail.ItemID
		var spend float64
		for _, seg := range repertoire {
			if m, dropped := dropAt[seg]; dropped && month >= m {
				continue // lost segment: never bought again
			}
			if day-last[seg] >= cfg.PeriodDays {
				items = append(items, seg)
				last[seg] = day
				spend += 2.5 * r.LogNormal(0, 0.1)
			}
		}
		if len(items) > 0 {
			ts := cfg.Start.Add(time.Duration(day * 24 * float64(time.Hour)))
			if err := sb.AddReceipt(id, retail.Receipt{Time: ts, Items: retail.NewBasket(items), Spend: spend}); err != nil {
				return nil, err
			}
		}
		day += cfg.TripEveryDays * (0.9 + 0.2*r.Float64())
	}
	return &Scenario{
		Store:    sb.Build(),
		Catalog:  cat,
		Customer: id,
		Drops:    cfg.Drops,
		Grid:     GridSpec{Start: cfg.Start, Months: cfg.Months},
	}, nil
}
