package gen

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"github.com/gautrais/stability/internal/retail"
)

// extendConfig exercises every horizon-sensitive feature: seasonality,
// late joiners, vacations, drift and attrition all cross the extension
// boundary.
func extendConfig() Config {
	cfg := smallConfig()
	cfg.Customers = 50
	cfg.SeasonalFraction = 0.3
	cfg.JoinSpreadMonths = 4
	return cfg
}

// truthFingerprint deep-copies the comparable truth content: every label,
// drop schedule and core repertoire.
func truthFingerprint(t *testing.T, g *GroundTruth) map[retail.CustomerID]CustomerTruth {
	t.Helper()
	out := make(map[retail.CustomerID]CustomerTruth, len(g.ByCustomer))
	for id, ct := range g.ByCustomer {
		out[id] = CustomerTruth{
			Label:      ct.Label,
			Core:       append([]retail.ItemID(nil), ct.Core...),
			Drops:      append([]DropEvent(nil), ct.Drops...),
			DriftDrops: append([]DropEvent(nil), ct.DriftDrops...),
		}
	}
	return out
}

// TestExtendMatchesFromScratch pins the tentpole contract: extending a
// generated dataset is bit-identical — store bytes, truth records, label
// indexes — to generating the longer horizon from scratch, at every worker
// count on both sides of the comparison.
func TestExtendMatchesFromScratch(t *testing.T) {
	cfg := extendConfig()
	const extraMonths = 6

	longCfg := cfg
	longCfg.Months += extraMonths
	want, err := GenerateWith(longCfg, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantStore, _ := datasetFingerprint(t, want)
	wantTruth := truthFingerprint(t, want.Truth)

	for _, workers := range []int{1, 2, 4, 8} {
		ds, err := GenerateWith(cfg, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := Extend(ds, extraMonths, Options{Workers: workers}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ds.Config.Months != longCfg.Months {
			t.Fatalf("workers=%d: extended config has %d months, want %d", workers, ds.Config.Months, longCfg.Months)
		}
		gotStore, _ := datasetFingerprint(t, ds)
		if !bytes.Equal(gotStore, wantStore) {
			t.Errorf("workers=%d: extended store bytes differ from from-scratch generation", workers)
		}
		if got := truthFingerprint(t, ds.Truth); !reflect.DeepEqual(got, wantTruth) {
			t.Errorf("workers=%d: extended truth records differ from from-scratch generation", workers)
		}
		if !reflect.DeepEqual(ds.Truth.Labels(), want.Truth.Labels()) {
			t.Errorf("workers=%d: label index differs after extension", workers)
		}
		if !reflect.DeepEqual(ds.Truth.Defectors(), want.Truth.Defectors()) {
			t.Errorf("workers=%d: defector index differs after extension", workers)
		}
	}
}

// TestExtendChained pins that repeated extension equals one long
// extension equals from-scratch generation: the checkpoints stay live
// across Extend calls.
func TestExtendChained(t *testing.T) {
	cfg := extendConfig()
	longCfg := cfg
	longCfg.Months += 5
	want, err := Generate(longCfg)
	if err != nil {
		t.Fatal(err)
	}
	wantStore, _ := datasetFingerprint(t, want)

	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []int{1, 3, 1} {
		if err := Extend(ds, step, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	gotStore, _ := datasetFingerprint(t, ds)
	if !bytes.Equal(gotStore, wantStore) {
		t.Error("chained 1+3+1 month extensions differ from one 5-month horizon")
	}
}

// TestExtendGroundTruthIndexes pins the index-staleness satellite: Extend
// mutates ByCustomer after the indexes were built at generation time, so
// Labels/Defectors must reflect post-extension truth (via the
// InvalidateIndexes path), not the frozen base indexes.
func TestExtendGroundTruthIndexes(t *testing.T) {
	cfg := extendConfig()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Touch the accessors so the lazy indexes definitely exist pre-Extend.
	baseLabels := ds.Truth.Labels()
	if len(baseLabels) != cfg.Customers {
		t.Fatalf("base labels = %d, want %d", len(baseLabels), cfg.Customers)
	}
	if err := Extend(ds, 4, Options{}); err != nil {
		t.Fatal(err)
	}
	labels := ds.Truth.Labels()
	if len(labels) != cfg.Customers {
		t.Fatalf("labels after extension = %d, want %d", len(labels), cfg.Customers)
	}
	for i, l := range labels {
		if i > 0 && labels[i-1].Customer >= l.Customer {
			t.Fatal("labels not sorted after extension")
		}
		want := ds.Truth.ByCustomer[l.Customer].Label
		if l != want {
			t.Fatalf("customer %d: indexed label %+v != truth %+v", l.Customer, l, want)
		}
	}
	defectors := ds.Truth.Defectors()
	wantDefectors := 0
	for _, ct := range ds.Truth.ByCustomer {
		if ct.Label.Cohort == retail.CohortDefecting {
			wantDefectors++
		}
	}
	if len(defectors) != wantDefectors {
		t.Fatalf("defectors after extension = %d, want %d", len(defectors), wantDefectors)
	}
}

// TestInvalidateIndexesAfterManualMutation pins the explicit rebuild path
// for hand-mutated truths.
func TestInvalidateIndexesAfterManualMutation(t *testing.T) {
	g := &GroundTruth{ByCustomer: map[retail.CustomerID]*CustomerTruth{
		1: {Label: retail.Label{Customer: 1, Cohort: retail.CohortLoyal, OnsetMonth: -1}},
	}}
	if n := len(g.Labels()); n != 1 {
		t.Fatalf("labels = %d, want 1", n)
	}
	g.ByCustomer[2] = &CustomerTruth{Label: retail.Label{Customer: 2, Cohort: retail.CohortDefecting, OnsetMonth: 3}}
	g.InvalidateIndexes()
	if n := len(g.Labels()); n != 2 {
		t.Fatalf("labels after invalidate = %d, want 2", n)
	}
	if d := g.Defectors(); len(d) != 1 || d[0] != 2 {
		t.Fatalf("defectors after invalidate = %v, want [2]", d)
	}
}

// TestExtendRejectsNonResumable pins the loaded-dataset error path.
func TestExtendRejectsNonResumable(t *testing.T) {
	ds, err := Generate(extendConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Resumable() {
		t.Fatal("generated dataset should be resumable")
	}
	loaded := &Dataset{Config: ds.Config, Store: ds.Store, Catalog: ds.Catalog, Truth: ds.Truth}
	if loaded.Resumable() {
		t.Fatal("hand-assembled dataset should not be resumable")
	}
	if err := Extend(loaded, 1, Options{}); !errors.Is(err, ErrNotResumable) {
		t.Fatalf("Extend on non-resumable dataset: got %v, want ErrNotResumable", err)
	}
	if err := Extend(ds, 0, Options{}); err == nil {
		t.Fatal("Extend with 0 months accepted")
	}
	var nilDS *Dataset
	if err := Extend(nilDS, 1, Options{}); !errors.Is(err, ErrNotResumable) {
		t.Fatalf("Extend on nil dataset: got %v, want ErrNotResumable", err)
	}
}
