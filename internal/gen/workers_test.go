package gen

import (
	"bytes"
	"reflect"
	"testing"
)

// datasetFingerprint captures everything a worker-count change could
// plausibly disturb: the full store encoding, the sorted label and
// defector indexes, and every per-customer truth record.
func datasetFingerprint(t *testing.T, ds *Dataset) (storeBytes []byte, truth *GroundTruth) {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.Store.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), ds.Truth
}

// TestGenerateWorkerCountInvariance pins the tentpole contract: the
// parallel generator is byte-identical to the single-worker path at every
// worker count, including with the seasonality and late-joiner features
// enabled (the code paths that draw the most per-customer randomness).
func TestGenerateWorkerCountInvariance(t *testing.T) {
	cfg := smallConfig()
	cfg.Customers = 80
	cfg.SeasonalFraction = 0.3
	cfg.JoinSpreadMonths = 6

	base, err := GenerateWith(cfg, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseStore, baseTruth := datasetFingerprint(t, base)

	for _, workers := range []int{2, 4, 8} {
		ds, err := GenerateWith(cfg, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		gotStore, gotTruth := datasetFingerprint(t, ds)
		if !bytes.Equal(gotStore, baseStore) {
			t.Errorf("workers=%d: store bytes differ from workers=1", workers)
		}
		if !reflect.DeepEqual(gotTruth.Labels(), baseTruth.Labels()) {
			t.Errorf("workers=%d: labels differ from workers=1", workers)
		}
		if !reflect.DeepEqual(gotTruth.Defectors(), baseTruth.Defectors()) {
			t.Errorf("workers=%d: defectors differ from workers=1", workers)
		}
		if !reflect.DeepEqual(gotTruth.ByCustomer, baseTruth.ByCustomer) {
			t.Errorf("workers=%d: truth records differ from workers=1", workers)
		}
	}

	// Default Generate (all CPUs) is the same dataset too.
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotStore, _ := datasetFingerprint(t, ds)
	if !bytes.Equal(gotStore, baseStore) {
		t.Error("Generate (default workers) differs from workers=1")
	}
}

// TestGroundTruthIndexAccessorsReturnCopies guards the generation-time
// sorted indexes: accessors must hand out copies, not the cached slices.
func TestGroundTruthIndexAccessorsReturnCopies(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	labels := ds.Truth.Labels()
	labels[0].Customer = 999999
	if ds.Truth.Labels()[0].Customer == 999999 {
		t.Error("Labels() returned the cached slice, not a copy")
	}
	defectors := ds.Truth.Defectors()
	if len(defectors) == 0 {
		t.Fatal("no defectors")
	}
	defectors[0] = 999999
	if ds.Truth.Defectors()[0] == 999999 {
		t.Error("Defectors() returned the cached slice, not a copy")
	}
}

// TestGroundTruthLazyIndexes covers hand-assembled truths (loaded
// datasets): the indexes build on first access.
func TestGroundTruthLazyIndexes(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	manual := &GroundTruth{ByCustomer: ds.Truth.ByCustomer}
	if !reflect.DeepEqual(manual.Labels(), ds.Truth.Labels()) {
		t.Error("lazy Labels() differs from generation-time index")
	}
	if !reflect.DeepEqual(manual.Defectors(), ds.Truth.Defectors()) {
		t.Error("lazy Defectors() differs from generation-time index")
	}
}
