package gen

import (
	"fmt"

	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/stats"
	"github.com/gautrais/stability/internal/taxonomy"
)

// departmentNames and baseSegments seed the synthetic taxonomy with
// realistic grocery segments. The first entries deliberately include the
// products Figure 2 of the paper names (coffee, milk, sponge, cheese) so
// examples and the Figure-2 reproduction read like the paper.
var departmentNames = []string{
	"dairy", "beverages", "household", "bakery", "produce",
	"meat-fish", "frozen", "grocery", "snacks", "hygiene",
}

var baseSegments = []struct {
	name string
	dept string
}{
	{"milk", "dairy"}, {"coffee", "beverages"}, {"sponge", "household"}, {"cheese", "dairy"},
	{"butter", "dairy"}, {"yogurt", "dairy"}, {"cream", "dairy"}, {"eggs", "dairy"},
	{"tea", "beverages"}, {"orange juice", "beverages"}, {"sparkling water", "beverages"},
	{"still water", "beverages"}, {"soda", "beverages"}, {"beer", "beverages"}, {"wine", "beverages"},
	{"dish soap", "household"}, {"laundry detergent", "household"}, {"paper towels", "household"},
	{"toilet paper", "household"}, {"trash bags", "household"}, {"aluminium foil", "household"},
	{"baguette", "bakery"}, {"sliced bread", "bakery"}, {"croissants", "bakery"}, {"brioche", "bakery"},
	{"apples", "produce"}, {"bananas", "produce"}, {"tomatoes", "produce"}, {"lettuce", "produce"},
	{"potatoes", "produce"}, {"onions", "produce"}, {"carrots", "produce"}, {"lemons", "produce"},
	{"chicken", "meat-fish"}, {"ground beef", "meat-fish"}, {"ham", "meat-fish"}, {"salmon", "meat-fish"},
	{"sausages", "meat-fish"}, {"tuna", "meat-fish"},
	{"frozen pizza", "frozen"}, {"ice cream", "frozen"}, {"frozen vegetables", "frozen"},
	{"frozen fries", "frozen"},
	{"pasta", "grocery"}, {"rice", "grocery"}, {"flour", "grocery"}, {"sugar", "grocery"},
	{"olive oil", "grocery"}, {"vinegar", "grocery"}, {"canned tomatoes", "grocery"},
	{"cereal", "grocery"}, {"jam", "grocery"}, {"honey", "grocery"}, {"mustard", "grocery"},
	{"chocolate", "snacks"}, {"cookies", "snacks"}, {"chips", "snacks"}, {"crackers", "snacks"},
	{"candy", "snacks"}, {"nuts", "snacks"},
	{"shampoo", "hygiene"}, {"toothpaste", "hygiene"}, {"soap", "hygiene"}, {"deodorant", "hygiene"},
	{"razor blades", "hygiene"}, {"tissues", "hygiene"},
}

// buildCatalog synthesizes a catalog with cfg.Segments segments. The first
// len(baseSegments) use the realistic name bank; any surplus is generated
// as "<dept> specialty N". Products per segment get lognormal reference
// prices.
func buildCatalog(cfg Config, r *stats.Rand) (*taxonomy.Catalog, error) {
	b := taxonomy.NewBuilder()
	total := cfg.Segments
	for i := 0; i < total; i++ {
		var name, dept string
		if i < len(baseSegments) {
			name, dept = baseSegments[i].name, baseSegments[i].dept
		} else {
			dept = departmentNames[i%len(departmentNames)]
			name = fmt.Sprintf("%s specialty %d", dept, i-len(baseSegments)+1)
		}
		segID, err := b.AddSegment(name, dept)
		if err != nil {
			return nil, err
		}
		for p := 0; p < cfg.ProductsPerSegment; p++ {
			price := r.LogNormal(0.9, 0.5) // median ≈ 2.46 €
			pname := fmt.Sprintf("%s sku %d", name, p+1)
			if _, err := b.AddProduct(pname, segID, price); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// segmentPrices returns a per-segment representative price (mean of its
// SKUs), indexed by ItemID-1, used to synthesize receipt spend.
func segmentPrices(cat *taxonomy.Catalog) []float64 {
	prices := make([]float64, cat.NumSegments())
	counts := make([]int, cat.NumSegments())
	for pid := 1; pid <= cat.NumProducts(); pid++ {
		p, err := cat.Product(taxonomy.ProductID(pid))
		if err != nil {
			continue
		}
		prices[p.Segment-1] += p.Price
		counts[p.Segment-1]++
	}
	for i := range prices {
		if counts[i] > 0 {
			prices[i] /= float64(counts[i])
		} else {
			prices[i] = 2.5
		}
	}
	return prices
}

// popularItems returns all segment identifiers ordered 1..N; rank i is
// sampled with Zipf weight by the callers, so identifier order is
// popularity order by construction.
func popularItems(cat *taxonomy.Catalog) []retail.ItemID {
	out := make([]retail.ItemID, cat.NumSegments())
	for i := range out {
		out[i] = retail.ItemID(i + 1)
	}
	return out
}
