package gen

import (
	"testing"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

func TestFigure2ConfigValidation(t *testing.T) {
	if err := DefaultFigure2Config().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Figure2Config)
	}{
		{"zero start", func(c *Figure2Config) { c.Start = time.Time{} }},
		{"short", func(c *Figure2Config) { c.Months = 1 }},
		{"empty repertoire", func(c *Figure2Config) { c.Repertoire = nil }},
		{"bad period", func(c *Figure2Config) { c.PeriodDays = 0 }},
		{"bad trip gap", func(c *Figure2Config) { c.TripEveryDays = -1 }},
		{"drop month out of range", func(c *Figure2Config) { c.Drops[0].Month = 99 }},
		{"drop not in repertoire", func(c *Figure2Config) { c.Drops[0].Segments = []string{"caviar"} }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			cfg := DefaultFigure2Config()
			// Deep-copy the drops so mutations do not leak across cases.
			drops := make([]ScriptedDrop, len(cfg.Drops))
			for i, d := range cfg.Drops {
				drops[i] = ScriptedDrop{Month: d.Month, Segments: append([]string{}, d.Segments...)}
			}
			cfg.Drops = drops
			m.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("mutation %q accepted", m.name)
			}
		})
	}
}

func TestFigure2ScenarioShape(t *testing.T) {
	cfg := DefaultFigure2Config()
	sc, err := Figure2Scenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Store.NumCustomers() != 1 {
		t.Fatalf("customers = %d", sc.Store.NumCustomers())
	}
	h, err := sc.Store.History(sc.Customer)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Receipts) < 100 {
		t.Fatalf("only %d receipts over 28 months", len(h.Receipts))
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}

	// Dropped segments vanish exactly at their scripted months.
	for _, d := range sc.Drops {
		cut := cfg.Start.AddDate(0, d.Month, 0)
		for _, name := range d.Segments {
			seg, err := sc.Catalog.SegmentByName(name)
			if err != nil {
				t.Fatal(err)
			}
			boughtBefore, boughtAfter := false, false
			for _, r := range h.Receipts {
				if r.Items.Contains(seg.ID) {
					if r.Time.Before(cut) {
						boughtBefore = true
					} else {
						boughtAfter = true
					}
				}
			}
			if !boughtBefore {
				t.Errorf("%s never bought before its drop month", name)
			}
			if boughtAfter {
				t.Errorf("%s bought after its drop month %d", name, d.Month)
			}
		}
	}

	// Non-dropped repertoire items persist to the end.
	lastQuarter := cfg.Start.AddDate(0, cfg.Months-3, 0)
	butter, err := sc.Catalog.SegmentByName("butter")
	if err != nil {
		t.Fatal(err)
	}
	persisted := false
	for _, r := range h.Receipts {
		if r.Time.After(lastQuarter) && r.Items.Contains(butter.ID) {
			persisted = true
			break
		}
	}
	if !persisted {
		t.Error("butter (never dropped) missing from the last quarter")
	}
}

func TestFigure2ScenarioDeterministic(t *testing.T) {
	a, err := Figure2Scenario(DefaultFigure2Config())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure2Scenario(DefaultFigure2Config())
	if err != nil {
		t.Fatal(err)
	}
	ha, _ := a.Store.History(a.Customer)
	hb, _ := b.Store.History(b.Customer)
	if len(ha.Receipts) != len(hb.Receipts) {
		t.Fatalf("receipts differ: %d vs %d", len(ha.Receipts), len(hb.Receipts))
	}
	for i := range ha.Receipts {
		if !ha.Receipts[i].Time.Equal(hb.Receipts[i].Time) {
			t.Fatalf("receipt %d time differs", i)
		}
	}
}

func TestMonthOf(t *testing.T) {
	start := time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC)
	tests := []struct {
		day  float64
		want int
	}{
		{0, 0},
		{30, 0},   // May 31
		{31, 1},   // June 1
		{61, 2},   // July 1
		{365, 12}, // next May
	}
	for _, tt := range tests {
		if got := monthOf(start, tt.day); got != tt.want {
			t.Errorf("monthOf(%v) = %d, want %d", tt.day, got, tt.want)
		}
	}
}

func TestSegmentPricesPositive(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	prices := segmentPrices(ds.Catalog)
	if len(prices) != ds.Catalog.NumSegments() {
		t.Fatalf("prices = %d entries", len(prices))
	}
	for i, p := range prices {
		if p <= 0 {
			t.Fatalf("segment %d price = %v", i+1, p)
		}
	}
	if priceOf(prices, retail.ItemID(len(prices)+5)) != 2.5 {
		t.Fatal("out-of-range price fallback broken")
	}
}
