package gen

import (
	"errors"
	"fmt"

	"github.com/gautrais/stability/internal/population"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/store"
)

// ErrNotResumable is returned by Extend for datasets that carry no
// simulation checkpoints (e.g. datasets decoded from codec files).
// Regenerate the base deterministically from its config to obtain a
// resumable dataset.
var ErrNotResumable = errors.New("gen: dataset carries no simulation checkpoints")

// extGen is one customer's extension output, merged in customer order.
type extGen struct {
	receipts   []retail.Receipt
	drops      []DropEvent
	driftDrops []DropEvent
}

// Extend appends months to a generated dataset by resuming every
// customer's simulation from its checkpoint, without re-simulating the
// past. The result is bit-identical to a from-scratch Generate over the
// longer horizon — store bytes, truth records and downstream evaluation
// alike — at any worker count, because each customer's RNG streams resume
// exactly where the base run's trip loop left them and nothing in the loop
// depends on the total horizon. The store is grown with
// Builder.AppendWith, so the frozen per-customer histories are reused
// rather than re-sorted.
//
// Extend mutates ds in place (Config, Store, Truth, checkpoints) and may
// be called repeatedly: Extend(Extend(M), K1), K2) equals Generate over
// M+K1+K2 months.
func Extend(ds *Dataset, months int, opts Options) error {
	if !ds.Resumable() {
		return ErrNotResumable
	}
	if months < 1 {
		return fmt.Errorf("gen: Extend months must be >= 1, got %d", months)
	}
	newCfg := ds.Config
	newCfg.Months += months
	if err := newCfg.Validate(); err != nil {
		return err
	}
	horizonDays := newCfg.End().Sub(newCfg.Start).Hours() / 24
	cps := ds.resume.cps
	prices := ds.resume.prices
	results, err := population.Map(len(cps), population.Options{Workers: opts.Workers},
		func(i int) (extGen, error) {
			cp := cps[i]
			cp.p.extendVacations(newCfg, horizonDays)
			receipts, drops, driftDrops, day, curMonth := cp.p.simulateRange(newCfg, prices, cp.day, cp.month, horizonDays)
			cp.day, cp.month = day, curMonth
			return extGen{receipts: receipts, drops: drops, driftDrops: driftDrops}, nil
		})
	if err != nil {
		return err
	}

	sb := store.NewBuilder()
	for i, eg := range results {
		id := retail.CustomerID(i + 1)
		for _, r := range eg.receipts {
			if err := sb.AddReceipt(id, r); err != nil {
				return fmt.Errorf("gen: extend customer %d: %w", id, err)
			}
		}
		t := ds.Truth.ByCustomer[id]
		t.Drops = append(t.Drops, eg.drops...)
		t.DriftDrops = append(t.DriftDrops, eg.driftDrops...)
		// The core repertoire includes drift adoptions, which the extended
		// months may have added — re-derive it so truth records match a
		// from-scratch run of the longer horizon.
		t.Core = coreSegments(cps[i].p)
	}
	ds.Truth.InvalidateIndexes()
	ds.Store = sb.AppendWith(ds.Store, store.Options{Workers: opts.Workers})
	ds.Config = newCfg
	return nil
}
