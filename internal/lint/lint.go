// Package lint implements detlint, the static analyzer that enforces
// this repository's determinism contract at build time. Every score the
// system emits must be a bit-exact function of the input stream; the
// rules here reject the code shapes that historically break that —
// map-order iteration feeding output, wall-clock and globally-seeded
// randomness, hand-rolled goroutine fan-outs, reordering-prone float
// accumulation, and library code that exits instead of returning errors.
//
// The analyzer is stdlib-only (go/ast, go/parser, go/types, go/importer)
// per the repo's dependency-free constraint. See DESIGN.md "Static
// determinism checks" for the rule catalogue and rationale.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic. File is relative to the module root so
// output is stable regardless of where detlint runs from.
type Finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Package string `json:"package"`
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Config selects what to analyze and which rules run.
type Config struct {
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Rules enables a subset of rule IDs (e.g. "R1"). Empty means all.
	// The suppression-hygiene meta rule R0 is always on: a malformed
	// ignore must never be silenceable by disabling the rule it names.
	Rules []string
}

// Run loads the module at cfg.Dir and reports findings for every
// package matched by patterns ("./..." for the whole module; "./x/..."
// for a subtree; "./x" or "x" for one package). Findings are sorted by
// file, line, column, then rule, and suppressions
// (//detlint:ignore RULE reason) have already been applied.
func Run(cfg Config, patterns ...string) ([]Finding, error) {
	enabled, err := enabledRules(cfg.Rules)
	if err != nil {
		return nil, err
	}
	mod, err := LoadModule(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var findings []Finding
	for _, pkg := range mod.Pkgs {
		if !matchAny(pkg.Rel, patterns) {
			continue
		}
		findings = append(findings, runPackage(mod, pkg, enabled)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}

// runPackage applies the enabled rules to one package and filters the
// raw diagnostics through that package's suppression comments.
func runPackage(mod *Module, pkg *Package, enabled map[string]bool) []Finding {
	p := &pass{mod: mod, pkg: pkg}
	for _, r := range rules {
		if enabled[r.id] {
			r.check(p)
		}
	}
	sup := collectSuppressions(mod, pkg)
	kept := sup.filter(p.findings)
	kept = append(kept, sup.violations(mod, pkg)...)
	return kept
}

// pass carries one package's analysis state; rules report through it.
type pass struct {
	mod      *Module
	pkg      *Package
	findings []Finding
}

func (p *pass) report(rule string, pos token.Pos, format string, args ...any) {
	position := p.mod.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.mod.Dir, file); err == nil {
		file = filepath.ToSlash(rel)
	}
	p.findings = append(p.findings, Finding{
		Rule:    rule,
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Package: p.pkg.ImportPath,
		Message: fmt.Sprintf(format, args...),
	})
}

// enabledRules validates and expands the rule selection.
func enabledRules(ids []string) (map[string]bool, error) {
	enabled := make(map[string]bool, len(rules))
	if len(ids) == 0 {
		for _, r := range rules {
			enabled[r.id] = true
		}
		return enabled, nil
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if !knownRule(id) {
			return nil, fmt.Errorf("unknown rule %q (have %s)", id, strings.Join(ruleIDs(), ", "))
		}
		enabled[id] = true
	}
	return enabled, nil
}

// matchAny reports whether the package with module-relative import path
// rel is selected by any of the patterns.
func matchAny(rel string, patterns []string) bool {
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." {
			return true
		}
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
			continue
		}
		if pat == "." && rel == "" {
			return true
		}
		if rel == pat {
			return true
		}
	}
	return false
}
