package lint

import (
	"path/filepath"
	"strings"
)

// ignorePrefix is the suppression marker. The full syntax is
//
//	//detlint:ignore RULE[,RULE...] reason text
//
// placed on the flagged line or the line directly above it. The rule
// list and a non-empty reason are both mandatory: a suppression is a
// recorded decision, and a decision without a reason is itself a
// contract violation (reported as R0).
const ignorePrefix = "//detlint:ignore"

// suppression is one parsed //detlint:ignore comment.
type suppression struct {
	file   string // module-relative
	line   int
	rules  map[string]bool
	reason string
	bad    string // non-empty: why the comment is malformed (an R0 finding)
}

type suppressionSet struct {
	byLine map[string][]*suppression // file -> suppressions, any order
}

// collectSuppressions parses every //detlint:ignore comment in pkg.
func collectSuppressions(mod *Module, pkg *Package) *suppressionSet {
	set := &suppressionSet{byLine: make(map[string][]*suppression)}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := mod.Fset.Position(c.Pos())
				file := pos.Filename
				if rel, err := filepath.Rel(mod.Dir, file); err == nil {
					file = filepath.ToSlash(rel)
				}
				s := parseSuppression(text)
				s.file = file
				s.line = pos.Line
				set.byLine[file] = append(set.byLine[file], s)
			}
		}
	}
	return set
}

// parseSuppression validates the "RULE[,RULE...] reason" payload.
func parseSuppression(text string) *suppression {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return &suppression{bad: "bare //detlint:ignore: write //detlint:ignore RULE reason"}
	}
	s := &suppression{rules: make(map[string]bool)}
	for _, id := range strings.Split(fields[0], ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if !knownRule(id) {
			return &suppression{bad: "unknown rule " + id + " in //detlint:ignore (have " + strings.Join(ruleIDs(), ", ") + ")"}
		}
		s.rules[id] = true
	}
	if len(s.rules) == 0 {
		return &suppression{bad: "bare //detlint:ignore: write //detlint:ignore RULE reason"}
	}
	s.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
	if s.reason == "" {
		return &suppression{bad: "//detlint:ignore " + fields[0] + " has no reason: every suppression must explain itself"}
	}
	return s
}

// filter drops findings covered by a well-formed suppression on the
// same line or the line directly above.
func (set *suppressionSet) filter(findings []Finding) []Finding {
	var kept []Finding
	for _, f := range findings {
		if set.covers(f) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

func (set *suppressionSet) covers(f Finding) bool {
	for _, s := range set.byLine[f.File] {
		if s.bad != "" || !s.rules[f.Rule] {
			continue
		}
		if s.line == f.Line || s.line == f.Line-1 {
			return true
		}
	}
	return false
}

// violations reports every malformed suppression as an R0 finding. R0
// cannot be disabled and cannot itself be suppressed: the escape hatch
// must stay auditable.
func (set *suppressionSet) violations(mod *Module, pkg *Package) []Finding {
	var out []Finding
	for _, f := range pkg.Files {
		pos := mod.Fset.Position(f.Pos())
		file := pos.Filename
		if rel, err := filepath.Rel(mod.Dir, file); err == nil {
			file = filepath.ToSlash(rel)
		}
		for _, s := range set.byLine[file] {
			if s.bad == "" {
				continue
			}
			out = append(out, Finding{
				Rule:    "R0",
				File:    s.file,
				Line:    s.line,
				Col:     1,
				Package: pkg.ImportPath,
				Message: s.bad,
			})
		}
	}
	return out
}
