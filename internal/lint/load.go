package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Module is a parsed and type-checked Go module: every non-test package
// under the module root, in deterministic (path-sorted, dependency-first)
// order. Loading uses only go/parser + go/types + go/importer — no
// golang.org/x/tools — so detlint stays inside the repo's stdlib-only
// constraint.
type Module struct {
	Dir  string // absolute path of the directory holding go.mod
	Path string // module path declared in go.mod
	Fset *token.FileSet
	Pkgs []*Package
}

// Package is one type-checked package of the module. Test files
// (*_test.go) are not loaded: the determinism contract governs shipped
// code, and tests routinely use seeded math/rand and raw goroutines to
// attack that shipped code.
type Package struct {
	ImportPath string
	Rel        string // import path relative to the module root; "" for the root package
	Dir        string
	Name       string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// LoadModule discovers, parses, and type-checks every non-test package
// under dir, which must contain a go.mod. Module-internal imports are
// resolved against the packages being loaded; everything else (stdlib)
// is type-checked from source via go/importer.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{Dir: abs, Path: modPath, Fset: token.NewFileSet()}

	dirs, err := packageDirs(abs)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*Package, len(dirs))
	for _, d := range dirs {
		pkg, err := m.parseDir(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			byPath[pkg.ImportPath] = pkg
		}
	}

	order, err := topoOrder(byPath)
	if err != nil {
		return nil, err
	}

	src := importer.ForCompiler(m.Fset, "source", nil)
	chain := &chainImporter{local: make(map[string]*types.Package), fallback: src}
	for _, p := range order {
		if err := m.check(p, chain); err != nil {
			return nil, err
		}
		chain.local[p.ImportPath] = p.Types
		m.Pkgs = append(m.Pkgs, p)
	}
	return m, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module declaration", file)
}

// packageDirs walks the module tree collecting directories that hold at
// least one non-test .go file. testdata, vendor, hidden, and underscore
// directories are skipped, matching the go tool's own conventions (the
// lint fixtures under internal/lint/testdata stay invisible to the
// self-check this way).
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the non-test files of one directory into a Package
// (nil if the directory holds no non-test Go files after filtering).
func (m *Module) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(m.Dir, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	importPath := m.Path
	if rel != "" {
		importPath = m.Path + "/" + rel
	}

	pkg := &Package{ImportPath: importPath, Rel: rel, Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		} else if pkg.Name != f.Name.Name {
			return nil, fmt.Errorf("%s: multiple packages %s and %s", dir, pkg.Name, f.Name.Name)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// topoOrder sorts packages dependency-first so each package's
// module-internal imports are type-checked before it is. Ties break on
// import path, keeping the whole load deterministic.
func topoOrder(byPath map[string]*Package) ([]*Package, error) {
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(paths))
	var order []*Package
	var visit func(path string) error
	visit = func(path string) error {
		pkg, ok := byPath[path]
		if !ok {
			return nil // stdlib or external; the fallback importer handles it
		}
		switch state[path] {
		case visiting:
			return fmt.Errorf("import cycle through %s", path)
		case done:
			return nil
		}
		state[path] = visiting
		for _, imp := range moduleImports(pkg) {
			if err := visit(imp); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImports returns the sorted, deduplicated import paths of pkg.
func moduleImports(pkg *Package) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// check type-checks one package, populating pkg.Types and pkg.Info.
func (m *Module) check(pkg *Package, imp types.Importer) error {
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	tp, err := conf.Check(pkg.ImportPath, m.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("type-check %s: %w", pkg.ImportPath, err)
	}
	pkg.Types = tp
	pkg.Info = info
	return nil
}

// chainImporter resolves module-internal imports from the packages
// already checked in this load, falling back to the source importer for
// the standard library.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}
