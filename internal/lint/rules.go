package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// rule is one determinism-contract check. Every rule is individually
// toggleable via Config.Rules / detlint's -rules and -disable flags.
type rule struct {
	id    string
	name  string
	doc   string
	check func(*pass)
}

// rules is the catalogue, in ID order. DESIGN.md documents each rule's
// rationale; keep the two in sync.
var rules = []rule{
	{
		id:   "R1",
		name: "map-range",
		doc: "for…range over a map in scoring/output packages: iteration order is " +
			"nondeterministic and leaks into floats and rendered output",
		check: checkMapRange,
	},
	{
		id:   "R2",
		name: "wallclock-rand",
		doc: "time.Now, package-level math/rand functions, or rand.Seed outside " +
			"internal/stats: all randomness must ride seeded stats.Rand streams",
		check: checkWallclockRand,
	},
	{
		id:   "R3",
		name: "raw-goroutine",
		doc: "go statements or sync.WaitGroup fan-outs outside internal/population " +
			"and internal/stream: parallelism must ride population.Map/MapScratch",
		check: checkRawGoroutine,
	},
	{
		id:   "R4",
		name: "float-map-accum",
		doc: "floating-point accumulation inside a map-range body: the sum order " +
			"follows map iteration order, so the result jitters run to run",
		check: checkFloatMapAccum,
	},
	{
		id:   "R5",
		name: "exit-in-library",
		doc: "os.Exit or log.Fatal outside package main: library code must return " +
			"errors so population barrier first-error semantics hold",
		check: checkExitInLibrary,
	},
}

func knownRule(id string) bool {
	for _, r := range rules {
		if r.id == id {
			return true
		}
	}
	return false
}

func ruleIDs() []string {
	ids := make([]string, len(rules))
	for i, r := range rules {
		ids[i] = r.id
	}
	return ids
}

// r1Scope lists the module-relative package paths whose floats and
// rendered bytes are part of the determinism contract. cmd/* is added
// separately. The root package ("") is the public scoring facade and is
// in scope; internal/stats feeds every float in the system.
var r1Scope = map[string]bool{
	"":                     true,
	"internal/core":        true,
	"internal/serve":       true,
	"internal/stream":      true,
	"internal/gen":         true,
	"internal/store":       true,
	"internal/eval":        true,
	"internal/experiments": true,
	"internal/report":      true,
	"internal/stats":       true,
	"internal/faultfs":     true,
}

func inR1Scope(rel string) bool {
	return r1Scope[rel] || rel == "cmd" || strings.HasPrefix(rel, "cmd/")
}

// checkMapRange implements R1: no for…range over a map in scoring or
// output packages. Iterate a sorted key slice instead.
func checkMapRange(p *pass) {
	if !inR1Scope(p.pkg.Rel) {
		return
	}
	p.inspect(func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if isMap(p.typeOf(rng.X)) {
			p.report("R1", rng.For,
				"range over map %s: iteration order is nondeterministic; iterate sorted keys instead",
				types.ExprString(rng.X))
		}
		return true
	})
}

// checkWallclockRand implements R2: outside internal/stats, no
// time.Now and no package-level math/rand functions (rand.Seed,
// rand.Intn, …). rand.New/rand.NewSource/rand.NewZipf stay legal —
// they wrap an explicit seed, which is exactly what stats.Rand does.
func checkWallclockRand(p *pass) {
	if p.pkg.Rel == "internal/stats" {
		return
	}
	p.inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := p.funcUse(sel.Sel)
		if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
				p.report("R2", sel.Pos(),
					"time.%s leaks wall-clock into a deterministic pipeline; thread an explicit time through the call chain", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			switch fn.Name() {
			case "New", "NewSource", "NewZipf":
				// Explicit-seed constructors; stats.Rand is built on them.
			default:
				p.report("R2", sel.Pos(),
					"package-level %s.%s uses the shared global source; draw from a seeded stats.Rand stream instead",
					fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})
}

// checkRawGoroutine implements R3: outside internal/population and
// internal/stream, no go statements and no sync.WaitGroup. New
// parallelism rides population.Map/MapScratch, which pins input order
// and lowest-index first-error semantics.
func checkRawGoroutine(p *pass) {
	switch p.pkg.Rel {
	case "internal/population", "internal/stream":
		return
	}
	p.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			p.report("R3", n.Go,
				"raw go statement: new parallelism must ride population.Map/MapScratch for deterministic order and first-error")
		case *ast.SelectorExpr:
			if tn, ok := p.pkg.Info.Uses[n.Sel].(*types.TypeName); ok &&
				tn.Pkg() != nil && tn.Pkg().Path() == "sync" && tn.Name() == "WaitGroup" {
				p.report("R3", n.Pos(),
					"hand-rolled sync.WaitGroup fan-out: use population.Map/MapScratch instead")
			}
		}
		return true
	})
}

// checkFloatMapAccum implements R4 in every package: a float compound
// assignment (+=, -=, *=, /=) inside a map-range body, where the
// accumulator outlives the loop body, sums in map iteration order. The
// canonical fix is to iterate sorted keys (which R1 also demands in
// scoring packages) or accumulate into a slice and sum in index order.
func checkFloatMapAccum(p *pass) {
	p.inspect(func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMap(p.typeOf(rng.X)) {
			return true
		}
		ast.Inspect(rng.Body, func(inner ast.Node) bool {
			assign, ok := inner.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch assign.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			default:
				return true
			}
			for _, lhs := range assign.Lhs {
				if !isFloat(p.typeOf(lhs)) || p.declaredWithin(lhs, rng.Body) {
					continue
				}
				p.report("R4", assign.TokPos,
					"float accumulation %s %s … inside range over map %s follows map order; sum in canonical order instead",
					types.ExprString(lhs), assign.Tok, types.ExprString(rng.X))
			}
			return true
		})
		return true
	})
}

// checkExitInLibrary implements R5: only package main may call os.Exit
// or log.Fatal*. Library errors must propagate so the population
// barrier can pick the lowest-index first error deterministically.
func checkExitInLibrary(p *pass) {
	if p.pkg.Name == "main" {
		return
	}
	p.inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := p.funcUse(sel.Sel)
		if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "os" && fn.Name() == "Exit":
			p.report("R5", sel.Pos(), "os.Exit in library code: return an error instead")
		case fn.Pkg().Path() == "log" && strings.HasPrefix(fn.Name(), "Fatal"):
			p.report("R5", sel.Pos(), "log.%s in library code: return an error instead", fn.Name())
		}
		return true
	})
}

// inspect walks every file of the pass's package.
func (p *pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.pkg.Files {
		ast.Inspect(f, fn)
	}
}

// typeOf returns the type of e, or nil if unknown.
func (p *pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// funcUse resolves an identifier to the *types.Func it uses, if any.
func (p *pass) funcUse(id *ast.Ident) *types.Func {
	fn, _ := p.pkg.Info.Uses[id].(*types.Func)
	return fn
}

// declaredWithin reports whether e is an identifier whose object is
// declared inside node's source range — a per-iteration local, which
// cannot carry state across map iterations.
func (p *pass) declaredWithin(e ast.Expr, node ast.Node) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.pkg.Info.Uses[id]
	if obj == nil {
		obj = p.pkg.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
