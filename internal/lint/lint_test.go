package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden diagnostic files from current output.
var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenDiagnostics runs every rule over each fixture module under
// testdata/src and compares the rendered findings, line for line,
// against the checked-in golden file.
func TestGoldenDiagnostics(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixture modules under testdata/src")
	}
	for _, dir := range fixtures {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			findings, err := Run(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			for _, f := range findings {
				buf.WriteString(f.String())
				buf.WriteByte('\n')
			}
			goldenPath := filepath.Join("testdata", "golden", name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got := buf.String(); got != string(want) {
				t.Errorf("diagnostics diverge from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestRuleToggle verifies each rule can be enabled in isolation: a
// fixture that only violates rule X is clean under every other rule.
func TestRuleToggle(t *testing.T) {
	cases := []struct {
		fixture string
		rule    string
	}{
		{"maprange", "R1"},
		{"wallclock", "R2"},
		{"goroutines", "R3"},
		{"floatsum", "R4"},
		{"exits", "R5"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.fixture)

			only, err := Run(Config{Dir: dir, Rules: []string{tc.rule}})
			if err != nil {
				t.Fatal(err)
			}
			if len(only) == 0 {
				t.Fatalf("rule %s found nothing in its own fixture", tc.rule)
			}
			for _, f := range only {
				if f.Rule != tc.rule && f.Rule != "R0" {
					t.Fatalf("rule selection leaked: asked for %s, got %s", tc.rule, f.Rule)
				}
			}

			var others []string
			for _, id := range ruleIDs() {
				if id != tc.rule {
					others = append(others, id)
				}
			}
			rest, err := Run(Config{Dir: dir, Rules: others})
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range rest {
				if f.Rule == tc.rule {
					t.Fatalf("rule %s reported while disabled: %s", tc.rule, f)
				}
			}
		})
	}
}

// TestUnknownRuleRejected pins the config validation error.
func TestUnknownRuleRejected(t *testing.T) {
	if _, err := Run(Config{Dir: filepath.Join("testdata", "src", "maprange"), Rules: []string{"R9"}}); err == nil {
		t.Fatal("unknown rule accepted")
	}
}

// TestSuppressionRoundTrip writes a violating module, confirms the
// finding, adds a well-formed annotation, and confirms it is silenced —
// then strips the reason and confirms that degrades into an R0 finding
// while the original violation resurfaces.
func TestSuppressionRoundTrip(t *testing.T) {
	const violating = `package core

import "fmt"

func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`
	dir := t.TempDir()
	src := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(src, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module example.com/roundtrip\n\ngo 1.22\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(src, "core.go"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	write(violating)
	findings, err := Run(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Rule != "R1" {
		t.Fatalf("want exactly one R1 finding, got %v", findings)
	}

	suppressed := strings.Replace(violating,
		"\tfor k, v := range m {",
		"\t//detlint:ignore R1 fixture: output order is asserted elsewhere\n\tfor k, v := range m {", 1)
	write(suppressed)
	findings, err = Run(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("annotated violation still reported: %v", findings)
	}

	bare := strings.Replace(suppressed,
		"//detlint:ignore R1 fixture: output order is asserted elsewhere",
		"//detlint:ignore R1", 1)
	write(bare)
	findings, err = Run(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var rulesSeen []string
	for _, f := range findings {
		rulesSeen = append(rulesSeen, f.Rule)
	}
	if len(findings) != 2 || rulesSeen[0] != "R0" && rulesSeen[1] != "R0" {
		t.Fatalf("reasonless ignore should yield R0 plus the resurfaced R1, got %v", findings)
	}
	if !strings.Contains(findings[0].Message+findings[1].Message, "no reason") {
		t.Fatalf("R0 message should explain the missing reason, got %v", findings)
	}
}

// TestSelfCheckRepoClean is the gate the Makefile relies on: detlint
// over this repository reports nothing, and every suppression in the
// tree carries a written reason (a reasonless one would surface as R0
// right here).
func TestSelfCheckRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(Config{Dir: root}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repo violates its own determinism contract: %s", f)
	}
}

// TestPatternSelection pins the package pattern grammar.
func TestPatternSelection(t *testing.T) {
	dir := filepath.Join("testdata", "src", "maprange")

	all, err := Run(Config{Dir: dir}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	coreOnly, err := Run(Config{Dir: dir}, "./internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if len(coreOnly) == 0 || len(coreOnly) >= len(all) {
		t.Fatalf("pattern ./internal/core selected %d of %d findings", len(coreOnly), len(all))
	}
	for _, f := range coreOnly {
		if !strings.HasPrefix(f.File, "internal/core/") {
			t.Fatalf("pattern leaked finding outside internal/core: %s", f)
		}
	}
	cmdTree, err := Run(Config{Dir: dir}, "./cmd/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range cmdTree {
		if !strings.HasPrefix(f.File, "cmd/") {
			t.Fatalf("pattern ./cmd/... leaked: %s", f)
		}
	}
	if len(coreOnly)+len(cmdTree) != len(all) {
		t.Fatalf("pattern partition mismatch: %d + %d != %d", len(coreOnly), len(cmdTree), len(all))
	}
}
