// Package core exercises the suppression grammar: well-formed ignores
// silence their rule, malformed ones are R0 findings, and an ignore for
// the wrong rule suppresses nothing.
package core

// LineAbove is silenced by a comment on the preceding line.
func LineAbove(m map[int]int) int {
	n := 0
	//detlint:ignore R1 counts entries; order-independent
	for range m {
		n++
	}
	return n
}

// SameLine is silenced by a trailing comment on the flagged line.
func SameLine(m map[int]int) int {
	n := 0
	for range m { //detlint:ignore R1 counts entries; order-independent
		n++
	}
	return n
}

// Bare carries an ignore with no rule: the map range stays reported and
// the bare ignore is an R0 finding.
func Bare(m map[int]int) int {
	n := 0
	//detlint:ignore
	for range m {
		n++
	}
	return n
}

// NoReason names a rule but gives no reason: R0, and the range stays.
func NoReason(m map[int]int) int {
	n := 0
	//detlint:ignore R1
	for range m {
		n++
	}
	return n
}

// UnknownRule names a rule that does not exist: R0, and the range stays.
func UnknownRule(m map[int]int) int {
	n := 0
	//detlint:ignore R9 no such rule
	for range m {
		n++
	}
	return n
}

// WrongRule suppresses R2 on an R1 finding: the range stays reported.
func WrongRule(m map[int]int) int {
	n := 0
	//detlint:ignore R2 this reason covers the wrong rule
	for range m {
		n++
	}
	return n
}
