module example.com/suppress

go 1.22
