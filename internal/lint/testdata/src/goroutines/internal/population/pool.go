// Package population is the one place allowed to spawn goroutines and
// join them with WaitGroups: it owns the deterministic fan-out engine.
package population

import "sync"

// Map fans work out across goroutines; population is R3-exempt.
func Map(n int, f func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}
