// Package pipe is an R3 fixture: raw goroutines and hand-rolled
// WaitGroup fan-outs outside population/stream are contract violations.
package pipe

import "sync"

// Run spawns a raw goroutine and joins it by hand: both the go
// statement and the sync.WaitGroup use are flagged.
func Run(f func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f()
	}()
	wg.Wait()
}
