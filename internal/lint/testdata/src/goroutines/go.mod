module example.com/goroutines

go 1.22
