// Command app is an R1 fixture: cmd/* renders output, so map ranges
// are flagged here too.
package main

import "fmt"

func main() {
	m := map[string]int{"a": 1}
	for k, v := range m {
		fmt.Println(k, v)
	}
}
