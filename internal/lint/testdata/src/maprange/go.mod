module example.com/maprange

go 1.22
