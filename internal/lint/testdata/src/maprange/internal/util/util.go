// Package util is outside R1's scoring/output scope: map ranges here
// are legal (until they accumulate floats, which R4 owns).
package util

// Count may range the map freely; util is not a scoring package.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
