// Package core is an R1 fixture: it stands in for a scoring package, so
// ranging over a map here is a determinism-contract violation.
package core

import "sort"

// Keys ranges over a map to collect keys: flagged, even though the
// caller sorts, because core is a scoring package (rule R1 is about the
// shape, the suppression carries the proof of safety).
func Keys(m map[int]float64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// SumSlice ranges over a slice: not a map, not flagged.
func SumSlice(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// SuppressedKeys carries a well-formed annotation, so its map range is
// not reported.
func SuppressedKeys(m map[int]bool) int {
	n := 0
	//detlint:ignore R1 counts entries; the count is independent of visit order
	for range m {
		n++
	}
	return n
}
