// Package stats is the one package allowed to touch math/rand and the
// wall clock: it is where seeded streams are minted.
package stats

import (
	"math/rand"
	"time"
)

// Stamp may read the clock; stats is R2-exempt.
func Stamp() time.Time { return time.Now() }

// Draw may use the global source; stats is R2-exempt.
func Draw() int { return rand.Intn(10) }
