// Package clock is an R2 fixture: wall-clock reads and global math/rand
// outside internal/stats are contract violations.
package clock

import (
	"math/rand"
	"time"
)

// Elapsed reads the wall clock twice: both flagged.
func Elapsed() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// Draws uses the shared global source and reseeds it: both flagged.
func Draws() int {
	rand.Seed(42)
	return rand.Intn(10)
}

// Seeded builds an explicit-seed generator: rand.New/rand.NewSource are
// the allowed constructors, not flagged.
func Seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}
