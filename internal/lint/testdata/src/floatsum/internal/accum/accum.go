// Package accum is an R4 fixture. It sits outside R1's scoring scope on
// purpose: R4 polices float accumulation over map order in EVERY
// package, because a jittering float escapes through any API.
// This file is deliberately not gofmt-clean (fixture packages are
// excluded from the formatting gate).
package accum

// SumValues accumulates a float across map iterations: flagged.
func SumValues(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// Scale multiplies an outer float inside a map range: flagged.
func Scale(m map[string]float64) float64 {
	total  :=  1.0
	for _, v := range m {
		total *= v
	}
	return total
}

// FieldSum accumulates into a struct field: flagged.
type FieldSum struct{ Total float64 }

func (f *FieldSum) Add(m map[int]float64) {
	for _, v := range m {
		f.Total += v
	}
}

// CountValues accumulates an int: exact arithmetic, not flagged.
func CountValues(m map[string]float64) int {
	n := 0
	for range m {
		n += 1
	}
	return n
}

// PerEntry declares its accumulator inside the body: per-iteration
// state cannot carry order across iterations, not flagged.
func PerEntry(m map[string][]float64) []float64 {
	out := make([]float64, 0, len(m))
	for _, xs := range m {
		var rowSum float64
		for _, x := range xs {
			rowSum += x
		}
		out = append(out, rowSum)
	}
	return out
}

// SliceSum accumulates over a slice: order is the index order, not
// flagged.
func SliceSum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}
