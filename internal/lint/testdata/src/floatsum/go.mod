module example.com/floatsum

go 1.22
