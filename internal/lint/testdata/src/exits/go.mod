module example.com/exits

go 1.22
