// Command app is package main: exiting is its prerogative, not flagged.
package main

import (
	"log"
	"os"
)

func main() {
	if len(os.Args) > 1 {
		log.Fatal("unexpected arguments")
	}
	os.Exit(0)
}
