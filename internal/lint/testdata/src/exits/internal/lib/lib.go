// Package lib is an R5 fixture: library code must return errors so the
// population barrier keeps its lowest-index first-error semantics.
package lib

import (
	"log"
	"os"
)

// Die exits the process from library code: flagged.
func Die() {
	os.Exit(1)
}

// DieLoudly log.Fatals from library code: flagged.
func DieLoudly(err error) {
	log.Fatalf("lib: %v", err)
}
