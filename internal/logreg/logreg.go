// Package logreg implements binary logistic regression from scratch —
// the learner behind the paper's RFM comparator ("This RFM model is built
// using a logistic regression on these three types of variables").
//
// Training is full-batch gradient descent on the L2-regularized negative
// log-likelihood with backtracking line search, which converges reliably on
// the small, dense, standardized feature matrices the RFM extractor
// produces without any learning-rate tuning.
package logreg

import (
	"errors"
	"fmt"
	"math"

	"github.com/gautrais/stability/internal/linalg"
)

// TrainOptions configure Train.
type TrainOptions struct {
	// L2 is the ridge penalty λ applied to weights (never to the bias).
	L2 float64
	// MaxIter bounds gradient-descent iterations.
	MaxIter int
	// Tol stops training once the gradient's infinity norm falls below it.
	Tol float64
	// Standardize fits a per-feature standardizer on the training set and
	// bakes it into the classifier. Strongly recommended: RFM features mix
	// day counts and currency amounts with very different scales.
	Standardize bool
}

// DefaultTrainOptions returns a configuration that converges on every
// dataset in this repository's test suite.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{L2: 1e-3, MaxIter: 500, Tol: 1e-6, Standardize: true}
}

// Validate reports configuration errors.
func (o TrainOptions) Validate() error {
	if o.L2 < 0 {
		return fmt.Errorf("logreg: negative L2 %v", o.L2)
	}
	if o.MaxIter < 1 {
		return fmt.Errorf("logreg: MaxIter must be >= 1, got %d", o.MaxIter)
	}
	if o.Tol <= 0 {
		return fmt.Errorf("logreg: Tol must be > 0, got %v", o.Tol)
	}
	return nil
}

// Classifier is a trained binary logistic-regression model scoring
// P(y=1 | x) = σ(wᵀ·std(x) + b).
type Classifier struct {
	Weights []float64
	Bias    float64
	Std     *Standardizer // nil when Standardize was false
	// Iters and FinalLoss record how training went, for diagnostics.
	Iters     int
	FinalLoss float64
}

// ErrNoData is returned when the training set is empty.
var ErrNoData = errors.New("logreg: empty training set")

// ErrOneClass is returned when all labels agree; a discriminative model
// cannot be fit (and AUROC would be undefined anyway).
var ErrOneClass = errors.New("logreg: training labels contain a single class")

// Sigmoid is the numerically-stable logistic function.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// logistic loss of one example with label y ∈ {0,1}: stable log(1+e^-m)
// form via log1p.
func logLoss(z float64, y float64) float64 {
	// loss = -y·log σ(z) − (1−y)·log(1−σ(z))
	// For y=1: softplus(−z); for y=0: softplus(z).
	if y > 0.5 {
		return softplus(-z)
	}
	return softplus(z)
}

func softplus(z float64) float64 {
	if z > 30 {
		return z
	}
	if z < -30 {
		return math.Exp(z)
	}
	return math.Log1p(math.Exp(z))
}

// Train fits a classifier on X (n×d row-major feature rows) and labels
// y ∈ {0,1}.
func Train(X [][]float64, y []int, opts TrainOptions) (*Classifier, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := len(X)
	if n == 0 {
		return nil, ErrNoData
	}
	if len(y) != n {
		return nil, fmt.Errorf("logreg: %d rows but %d labels", n, len(y))
	}
	pos := 0
	for i, lbl := range y {
		if lbl != 0 && lbl != 1 {
			return nil, fmt.Errorf("logreg: label %d at row %d is not 0/1", lbl, i)
		}
		pos += lbl
	}
	if pos == 0 || pos == n {
		return nil, ErrOneClass
	}
	d := len(X[0])
	m, err := linalg.FromRows(X)
	if err != nil {
		return nil, fmt.Errorf("logreg: %w", err)
	}
	var std *Standardizer
	if opts.Standardize {
		std = FitStandardizer(X)
		for i := 0; i < m.Rows; i++ {
			std.TransformInPlace(m.Row(i))
		}
	}

	w := linalg.Zeros(d)
	b := 0.0
	grad := linalg.Zeros(d)
	probs := make([]float64, n)
	residual := make([]float64, n)

	loss := func(w []float64, b float64) float64 {
		var total float64
		for i := 0; i < n; i++ {
			z := linalg.Dot(m.Row(i), w) + b
			total += logLoss(z, float64(y[i]))
		}
		total /= float64(n)
		for _, v := range w {
			total += 0.5 * opts.L2 * v * v
		}
		return total
	}

	cur := loss(w, b)
	iters := 0
	for ; iters < opts.MaxIter; iters++ {
		// Gradient.
		for i := 0; i < n; i++ {
			z := linalg.Dot(m.Row(i), w) + b
			probs[i] = Sigmoid(z)
			residual[i] = probs[i] - float64(y[i])
		}
		m.MulTVec(residual, grad)
		linalg.Scale(1/float64(n), grad)
		linalg.Axpy(opts.L2, w, grad)
		gradB := 0.0
		for i := 0; i < n; i++ {
			gradB += residual[i]
		}
		gradB /= float64(n)

		gInf := linalg.NormInf(grad)
		if math.Abs(gradB) > gInf {
			gInf = math.Abs(gradB)
		}
		if gInf < opts.Tol {
			break
		}

		// Backtracking line search along the negative gradient.
		step := 1.0
		gradNorm2 := linalg.Dot(grad, grad) + gradB*gradB
		accepted := false
		for ls := 0; ls < 50; ls++ {
			cand := linalg.Clone(w)
			linalg.Axpy(-step, grad, cand)
			candB := b - step*gradB
			candLoss := loss(cand, candB)
			if candLoss <= cur-0.25*step*gradNorm2 {
				w, b, cur = cand, candB, candLoss
				accepted = true
				break
			}
			step /= 2
		}
		if !accepted {
			break // step underflow: converged as far as float64 allows
		}
	}
	return &Classifier{Weights: w, Bias: b, Std: std, Iters: iters, FinalLoss: cur}, nil
}

// Score returns P(y=1 | x).
func (c *Classifier) Score(x []float64) float64 {
	if len(x) != len(c.Weights) {
		panic(fmt.Sprintf("logreg: score with %d features, model has %d", len(x), len(c.Weights)))
	}
	var z float64
	if c.Std != nil {
		z = c.Bias
		for i, v := range x {
			z += c.Weights[i] * c.Std.transformOne(i, v)
		}
	} else {
		z = linalg.Dot(c.Weights, x) + c.Bias
	}
	return Sigmoid(z)
}

// ScoreAll scores every row of X.
func (c *Classifier) ScoreAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = c.Score(x)
	}
	return out
}

// Predict returns 1 when Score(x) ≥ threshold.
func (c *Classifier) Predict(x []float64, threshold float64) int {
	if c.Score(x) >= threshold {
		return 1
	}
	return 0
}
