package logreg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); got != 0.5 {
		t.Fatalf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(1000); got != 1 {
		t.Fatalf("Sigmoid(1000) = %v, want 1", got)
	}
	if got := Sigmoid(-1000); got != 0 && got > 1e-300 {
		t.Fatalf("Sigmoid(-1000) = %v, want ~0", got)
	}
	// Symmetry: σ(z) + σ(−z) = 1.
	prop := func(z float64) bool {
		if math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		return math.Abs(Sigmoid(z)+Sigmoid(-z)-1) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSigmoidMonotone(t *testing.T) {
	prev := Sigmoid(-10)
	for z := -9.5; z <= 10; z += 0.5 {
		cur := Sigmoid(z)
		if cur <= prev {
			t.Fatalf("not monotone at z=%v", z)
		}
		prev = cur
	}
}

func TestSoftplusStable(t *testing.T) {
	// softplus(z) ≈ z for huge z, ≈ 0 for very negative z, never NaN/Inf
	// at the extremes our loss sees.
	if got := softplus(1e4); got != 1e4 {
		t.Fatalf("softplus(1e4) = %v", got)
	}
	if got := softplus(-1e4); got != math.Exp(-1e4) {
		t.Fatalf("softplus(-1e4) = %v", got)
	}
	if math.Abs(softplus(0)-math.Ln2) > 1e-12 {
		t.Fatalf("softplus(0) = %v, want ln 2", softplus(0))
	}
}

// separableData builds a linearly separable problem: y = 1 iff x0 > 0.
func separableData(n int, seed int64) ([][]float64, []int) {
	r := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		x0 := r.NormFloat64()
		X[i] = []float64{x0, r.NormFloat64()}
		if x0 > 0 {
			y[i] = 1
		}
	}
	return X, y
}

func TestTrainSeparable(t *testing.T) {
	X, y := separableData(400, 1)
	clf, err := Train(X, y, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range X {
		if clf.Predict(X[i], 0.5) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.97 {
		t.Fatalf("accuracy %v on separable data", acc)
	}
	// The informative feature must dominate the noise feature.
	if math.Abs(clf.Weights[0]) < 2*math.Abs(clf.Weights[1]) {
		t.Fatalf("weights %v: informative feature not dominant", clf.Weights)
	}
}

func TestTrainWithoutStandardize(t *testing.T) {
	X, y := separableData(300, 2)
	opts := DefaultTrainOptions()
	opts.Standardize = false
	clf, err := Train(X, y, opts)
	if err != nil {
		t.Fatal(err)
	}
	if clf.Std != nil {
		t.Fatal("standardizer attached despite Standardize=false")
	}
	correct := 0
	for i := range X {
		if clf.Predict(X[i], 0.5) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.95 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestTrainScaleInvarianceViaStandardizer(t *testing.T) {
	// Badly scaled features (x1000) should not hurt when standardizing.
	X, y := separableData(300, 3)
	for i := range X {
		X[i][0] *= 1000
	}
	clf, err := Train(X, y, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range X {
		if clf.Predict(X[i], 0.5) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.95 {
		t.Fatalf("accuracy %v with scaled features", acc)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, DefaultTrainOptions()); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty: %v", err)
	}
	X := [][]float64{{1}, {2}}
	if _, err := Train(X, []int{1}, DefaultTrainOptions()); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Train(X, []int{1, 1}, DefaultTrainOptions()); !errors.Is(err, ErrOneClass) {
		t.Fatalf("one class: %v", err)
	}
	if _, err := Train(X, []int{0, 0}, DefaultTrainOptions()); !errors.Is(err, ErrOneClass) {
		t.Fatalf("one class: %v", err)
	}
	if _, err := Train(X, []int{0, 2}, DefaultTrainOptions()); err == nil {
		t.Fatal("non-binary label accepted")
	}
	bad := DefaultTrainOptions()
	bad.L2 = -1
	if _, err := Train(X, []int{0, 1}, bad); err == nil {
		t.Fatal("negative L2 accepted")
	}
	bad = DefaultTrainOptions()
	bad.MaxIter = 0
	if _, err := Train(X, []int{0, 1}, bad); err == nil {
		t.Fatal("zero MaxIter accepted")
	}
	bad = DefaultTrainOptions()
	bad.Tol = 0
	if _, err := Train(X, []int{0, 1}, bad); err == nil {
		t.Fatal("zero Tol accepted")
	}
}

func TestL2ShrinksWeights(t *testing.T) {
	X, y := separableData(300, 4)
	weak := DefaultTrainOptions()
	weak.L2 = 1e-6
	strong := DefaultTrainOptions()
	strong.L2 = 10
	a, err := Train(X, y, weak)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(X, y, strong)
	if err != nil {
		t.Fatal(err)
	}
	if normInf(b.Weights) >= normInf(a.Weights) {
		t.Fatalf("strong L2 weights %v not smaller than weak %v", b.Weights, a.Weights)
	}
}

func normInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func TestScoresAreProbabilities(t *testing.T) {
	X, y := separableData(200, 5)
	clf, err := Train(X, y, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range clf.ScoreAll(X) {
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score %v out of [0,1]", s)
		}
	}
}

func TestScorePanicsOnDimensionMismatch(t *testing.T) {
	X, y := separableData(50, 6)
	clf, _ := Train(X, y, DefaultTrainOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	clf.Score([]float64{1, 2, 3})
}

func TestTrainLossDecreases(t *testing.T) {
	X, y := separableData(200, 7)
	clf, err := Train(X, y, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Initial loss at w=0 is ln 2; training must improve on it.
	if clf.FinalLoss >= math.Ln2 {
		t.Fatalf("final loss %v did not beat ln 2", clf.FinalLoss)
	}
	if clf.Iters == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestFitStandardizer(t *testing.T) {
	X := [][]float64{{1, 10, 5}, {3, 10, 7}, {5, 10, 9}}
	s := FitStandardizer(X)
	if s.Mean[0] != 3 || s.Mean[1] != 10 || s.Mean[2] != 7 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	// Column 1 is constant: Std substituted with 1.
	if s.Std[1] != 1 {
		t.Fatalf("constant column std = %v, want 1", s.Std[1])
	}
	z := s.Transform([]float64{3, 10, 7})
	for _, v := range z {
		if v != 0 {
			t.Fatalf("transform of mean row = %v, want zeros", z)
		}
	}
	// Inverse round trip.
	x := []float64{4.2, 10, 6.1}
	back := s.Inverse(s.Transform(x))
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1e-12 {
			t.Fatalf("inverse round trip %v -> %v", x, back)
		}
	}
	// In-place variant matches.
	cp := []float64{4.2, 10, 6.1}
	s.TransformInPlace(cp)
	want := s.Transform([]float64{4.2, 10, 6.1})
	for i := range cp {
		if cp[i] != want[i] {
			t.Fatalf("TransformInPlace mismatch: %v vs %v", cp, want)
		}
	}
}

func TestFitStandardizerEmpty(t *testing.T) {
	s := FitStandardizer(nil)
	if len(s.Mean) != 0 {
		t.Fatalf("empty fit = %+v", s)
	}
}
