package logreg

import (
	"github.com/gautrais/stability/internal/stats"
)

// Standardizer centers and scales features to zero mean and unit variance,
// fit on a training set. Constant features (zero variance) pass through
// centered but unscaled so they cannot blow up.
type Standardizer struct {
	Mean []float64
	Std  []float64 // 1 substituted for zero-variance features
}

// FitStandardizer computes per-column mean and standard deviation of X.
func FitStandardizer(X [][]float64) *Standardizer {
	if len(X) == 0 {
		return &Standardizer{}
	}
	d := len(X[0])
	acc := make([]stats.Online, d)
	for _, row := range X {
		for j, v := range row {
			acc[j].Add(v)
		}
	}
	s := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	for j := range acc {
		s.Mean[j] = acc[j].Mean()
		sd := acc[j].Std()
		if sd == 0 {
			sd = 1
		}
		s.Std[j] = sd
	}
	return s
}

// Transform returns the standardized copy of x.
func (s *Standardizer) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = s.transformOne(i, v)
	}
	return out
}

// TransformInPlace standardizes x in place.
func (s *Standardizer) TransformInPlace(x []float64) {
	for i, v := range x {
		x[i] = s.transformOne(i, v)
	}
}

// Inverse undoes the transform (for reporting learned weights in original
// units).
func (s *Standardizer) Inverse(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v*s.Std[i] + s.Mean[i]
	}
	return out
}

func (s *Standardizer) transformOne(i int, v float64) float64 {
	return (v - s.Mean[i]) / s.Std[i]
}
