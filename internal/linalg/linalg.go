// Package linalg provides the minimal dense vector/matrix arithmetic the
// ML stack (logistic regression, feature standardization) needs. It is
// deliberately tiny: float64 slices, row-major matrices, no BLAS, bounds
// checked by construction.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns aᵀb. It panics on length mismatch (programming error).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha·x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the max-absolute-value norm of x.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Zeros returns a zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share a length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// MulVec computes m·x into dst (len dst = Rows). dst may not alias x.
func (m *Matrix) MulVec(x, dst []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: mulvec shape mismatch (%dx%d)·%d -> %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
}

// MulTVec computes mᵀ·x into dst (len dst = Cols). dst may not alias x.
func (m *Matrix) MulTVec(x, dst []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("linalg: multvec shape mismatch (%dx%d)ᵀ·%d -> %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), dst)
	}
}
