package linalg

import (
	"math"
	"testing"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
}

func TestAxpyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Axpy(1, []float64{1}, []float64{1, 2})
}

func TestScale(t *testing.T) {
	x := []float64{2, -4}
	Scale(0.5, x)
	if x[0] != 1 || x[1] != -2 {
		t.Fatalf("Scale = %v", x)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	if NormInf(x) != 4 {
		t.Fatalf("NormInf = %v", NormInf(x))
	}
	if Norm2(nil) != 0 || NormInf(nil) != 0 {
		t.Fatal("norms of empty vector != 0")
	}
}

func TestCloneAndZeros(t *testing.T) {
	x := []float64{1, 2}
	c := Clone(x)
	c[0] = 9
	if x[0] != 1 {
		t.Fatal("Clone aliases input")
	}
	z := Zeros(3)
	if len(z) != 3 || z[0] != 0 || z[2] != 0 {
		t.Fatalf("Zeros = %v", z)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatalf("At/Set broken: %+v", m)
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5 {
		t.Fatalf("Row = %v", row)
	}
	row[0] = 7 // views alias storage
	if m.At(1, 0) != 7 {
		t.Fatal("Row is not a view")
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows = %+v", m)
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Fatalf("FromRows(nil) = %+v, %v", empty, err)
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	dst := make([]float64, 2)
	m.MulVec([]float64{1, 1}, dst)
	if dst[0] != 3 || dst[1] != 7 {
		t.Fatalf("MulVec = %v", dst)
	}
}

func TestMulTVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	dst := make([]float64, 2)
	m.MulTVec([]float64{1, 1}, dst)
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("MulTVec = %v", dst)
	}
}

func TestMulVecShapePanics(t *testing.T) {
	m := NewMatrix(2, 3)
	assertPanics(t, func() { m.MulVec(make([]float64, 2), make([]float64, 2)) })
	assertPanics(t, func() { m.MulVec(make([]float64, 3), make([]float64, 3)) })
	assertPanics(t, func() { m.MulTVec(make([]float64, 3), make([]float64, 3)) })
	assertPanics(t, func() { NewMatrix(-1, 2) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestMulVecMulTVecAdjoint(t *testing.T) {
	// ⟨Mx, y⟩ == ⟨x, Mᵀy⟩ — the defining adjoint property.
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	x := []float64{1, -1, 2}
	y := []float64{3, 0.5}
	mx := make([]float64, 2)
	m.MulVec(x, mx)
	mty := make([]float64, 3)
	m.MulTVec(y, mty)
	if math.Abs(Dot(mx, y)-Dot(x, mty)) > 1e-12 {
		t.Fatalf("adjoint violated: %v vs %v", Dot(mx, y), Dot(x, mty))
	}
}
