package population

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

// workerSweep is the set of pool sizes every determinism test runs at.
var workerSweep = []int{0, 1, 2, 3, 8}

func TestMapOrdered(t *testing.T) {
	for _, w := range workerSweep {
		got, err := Map(100, Options{Workers: w}, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results", w, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndSingleton(t *testing.T) {
	got, err := Map(0, Options{Workers: 8}, func(i int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("empty: got (%v, %v), want (nil, nil)", got, err)
	}

	got, err = Map(1, Options{Workers: 8}, func(i int) (int, error) { return 41 + i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 41 {
		t.Fatalf("singleton: got %v", got)
	}
}

// TestMapFirstErrorDeterministic plants several failing indices and checks
// that every worker count reports the error of the LOWEST failing index,
// even when a later failure is reached first (the mid-shard case: the
// higher index fails instantly while the lower one is still being
// computed).
func TestMapFirstErrorDeterministic(t *testing.T) {
	fail := map[int]bool{13: true, 14: true, 77: true, 99: true}
	for _, w := range workerSweep {
		_, err := Map(100, Options{Workers: w}, func(i int) (int, error) {
			if fail[i] {
				if i == 13 {
					time.Sleep(2 * time.Millisecond) // let index 77/99 fail first
				}
				return 0, fmt.Errorf("boom at %d", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", w)
		}
		if got, want := err.Error(), "boom at 13"; got != want {
			t.Fatalf("workers=%d: error %q, want %q", w, got, want)
		}
	}
}

// TestMapErrorSentinel checks errors.Is survives the pool.
func TestMapErrorSentinel(t *testing.T) {
	sentinel := errors.New("sentinel")
	_, err := Map(10, Options{Workers: 4}, func(i int) (int, error) {
		if i == 5 {
			return 0, fmt.Errorf("wrap: %w", sentinel)
		}
		return 0, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap sentinel", err)
	}
}

// TestMapScratchWorkerLocalState: every fn call must receive the scratch
// of exactly one worker — scratches are never shared across goroutines, so
// mutating them without locks is safe. Each scratch records the indices it
// served; together they must partition the input.
func TestMapScratchWorkerLocalState(t *testing.T) {
	type scratch struct{ served []int }
	for _, w := range workerSweep {
		var made []*scratch
		got, err := MapScratch(100, Options{Workers: w},
			func() (*scratch, error) {
				s := &scratch{}
				made = append(made, s)
				return s, nil
			},
			func(i int, s *scratch) (int, error) {
				s.served = append(s.served, i)
				return i, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: out[%d] = %d", w, i, v)
			}
		}
		seen := make(map[int]int)
		for _, s := range made {
			for _, i := range s.served {
				seen[i]++
			}
		}
		if len(seen) != 100 {
			t.Fatalf("workers=%d: served %d distinct indices, want 100", w, len(seen))
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("workers=%d: index %d served %d times", w, i, n)
			}
		}
	}
}

// TestMapScratchNewScratchError: a scratch-construction failure surfaces
// as-is and no work runs.
func TestMapScratchNewScratchError(t *testing.T) {
	boom := errors.New("no scratch")
	for _, w := range workerSweep {
		_, err := MapScratch(10, Options{Workers: w},
			func() (int, error) { return 0, boom },
			func(i int, _ int) (int, error) {
				t.Fatal("fn ran despite scratch failure")
				return 0, nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: error %v, want %v", w, err, boom)
		}
	}
}

// TestMapScratchFirstErrorDeterministic mirrors Map's error contract on
// the scratch path.
func TestMapScratchFirstErrorDeterministic(t *testing.T) {
	fail := map[int]bool{13: true, 77: true}
	for _, w := range workerSweep {
		_, err := MapScratch(100, Options{Workers: w},
			func() (struct{}, error) { return struct{}{}, nil },
			func(i int, _ struct{}) (int, error) {
				if fail[i] {
					if i == 13 {
						time.Sleep(2 * time.Millisecond)
					}
					return 0, fmt.Errorf("boom at %d", i)
				}
				return i, nil
			})
		if err == nil || err.Error() != "boom at 13" {
			t.Fatalf("workers=%d: error %v, want boom at 13", w, err)
		}
	}
}

func TestMapReduceMatchesSequential(t *testing.T) {
	n := 257
	want := 0
	for i := 0; i < n; i++ {
		want += i * 3
	}
	for _, w := range workerSweep {
		got, err := MapReduce(n, Options{Workers: w}, 0,
			func(i int) (int, error) { return i * 3, nil },
			func(acc, v, _ int) int { return acc + v })
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: sum %d, want %d", w, got, want)
		}
	}
}

func TestMapReduceErrorZeroValue(t *testing.T) {
	got, err := MapReduce(10, Options{Workers: 4}, 42,
		func(i int) (int, error) { return 0, errors.New("x") },
		func(acc, v, _ int) int { return acc + v })
	if err == nil {
		t.Fatal("expected error")
	}
	if got != 0 {
		t.Fatalf("got %d on error, want zero value", got)
	}
}

// syntheticHistories builds a deterministic mini-population with varied
// repertoires and gaps so stability values are non-trivial.
func syntheticHistories(tb testing.TB, n int) ([]retail.History, window.Grid) {
	tb.Helper()
	origin := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
	grid, err := window.NewGrid(origin, window.Span{Months: 2})
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	histories := make([]retail.History, n)
	for c := 0; c < n; c++ {
		h := retail.History{Customer: retail.CustomerID(c + 1)}
		nItems := 3 + rng.Intn(8)
		for m := 0; m < 24; m++ {
			if rng.Float64() < 0.15 {
				continue // skipped month
			}
			items := make([]retail.ItemID, 0, nItems)
			for p := 0; p < nItems; p++ {
				if rng.Float64() < 0.8 {
					items = append(items, retail.ItemID(100*(c%5)+p+1))
				}
			}
			if len(items) == 0 {
				continue
			}
			h.Receipts = append(h.Receipts, retail.Receipt{
				Time:  origin.AddDate(0, m, 1+rng.Intn(20)),
				Items: retail.NewBasket(items),
				Spend: 10 + 5*float64(len(items)),
			})
		}
		histories[c] = h
	}
	return histories, grid
}

// TestAnalyzeDeterministicAcrossWorkers is the tentpole contract: the
// population engine's output is identical (down to every float bit and
// blame ordering) for Workers=1 and Workers=8.
func TestAnalyzeDeterministicAcrossWorkers(t *testing.T) {
	histories, grid := syntheticHistories(t, 60)
	model, err := core.New(core.Options{Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Analyze(model, histories, grid, 11, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(histories) {
		t.Fatalf("got %d series, want %d", len(base), len(histories))
	}
	for _, w := range workerSweep[1:] {
		got, err := Analyze(model, histories, grid, 11, Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: series differ from sequential baseline", w)
		}
	}
	// The stability-only path must agree on the values too.
	fast, err := AnalyzeStability(model, histories, grid, 11, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if len(base[i].Points) != len(fast[i].Points) {
			t.Fatalf("customer %d: point count mismatch", i)
		}
		for k := range base[i].Points {
			if base[i].Points[k].Stability != fast[i].Points[k].Stability {
				t.Fatalf("customer %d window %d: stability %v != %v",
					i, k, base[i].Points[k].Stability, fast[i].Points[k].Stability)
			}
		}
	}
}

// TestAnalyzeSeriesAlignment checks results land at their input index, not
// at a completion-order index.
func TestAnalyzeSeriesAlignment(t *testing.T) {
	histories, grid := syntheticHistories(t, 40)
	model, err := core.New(core.Options{Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	series, err := Analyze(model, histories, grid, 11, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range series {
		if s.Customer != histories[i].Customer {
			t.Fatalf("series[%d] is customer %d, want %d", i, s.Customer, histories[i].Customer)
		}
	}
}

func TestAnalyzeEmptyAndSingleton(t *testing.T) {
	histories, grid := syntheticHistories(t, 1)
	model, err := core.New(core.Options{Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	series, err := Analyze(model, nil, grid, 11, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if series != nil {
		t.Fatalf("empty population: got %v, want nil", series)
	}
	series, err = Analyze(model, histories, grid, 11, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].Customer != histories[0].Customer {
		t.Fatalf("singleton population: got %+v", series)
	}
}

func TestAnalyzeNilModel(t *testing.T) {
	histories, grid := syntheticHistories(t, 2)
	if _, err := Analyze(nil, histories, grid, 11, Options{}); err == nil {
		t.Fatal("expected nil-model error")
	}
	if _, err := AnalyzeStability(nil, histories, grid, 11, Options{}); err == nil {
		t.Fatal("expected nil-model error")
	}
}

// TestAnalyzeWindowizeErrorPropagates plants an unsorted history mid-shard
// and checks the windowize failure surfaces no matter the worker count.
func TestAnalyzeWindowizeErrorPropagates(t *testing.T) {
	histories, grid := syntheticHistories(t, 20)
	// Corrupt one history: receipts out of chronological order.
	bad := histories[11]
	if len(bad.Receipts) < 2 {
		t.Fatal("test history too short")
	}
	bad.Receipts[0], bad.Receipts[1] = bad.Receipts[1], bad.Receipts[0]
	histories[11] = bad
	model, err := core.New(core.Options{Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	var first error
	for _, w := range workerSweep {
		_, err := Analyze(model, histories, grid, 11, Options{Workers: w})
		if err == nil {
			t.Fatalf("workers=%d: expected windowize error", w)
		}
		if first == nil {
			first = err
		} else if err.Error() != first.Error() {
			t.Fatalf("workers=%d: error %q differs from %q", w, err, first)
		}
	}
}

func TestOptionsWorkerResolution(t *testing.T) {
	cases := []struct {
		opt  Options
		n    int
		want int
	}{
		{Options{Workers: 4}, 100, 4},
		{Options{Workers: 4}, 2, 2},  // capped at inputs
		{Options{Workers: -1}, 0, 1}, // floor of 1
		{Options{Workers: 16}, 16, 16},
	}
	for _, c := range cases {
		if got := c.opt.workers(c.n); got != c.want {
			t.Errorf("workers(%d) with %+v = %d, want %d", c.n, c.opt, got, c.want)
		}
	}
	if got := (Options{}).workers(1 << 20); got < 1 {
		t.Errorf("default workers = %d, want >= 1", got)
	}
}
