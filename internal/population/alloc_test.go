//go:build !race

// Allocation-regression guard for the population scoring path. With
// per-worker scratch (one reused tracker + windowed database), scoring a
// customer costs a pinned, small number of allocations: the returned
// Series.Points, one Items copy per non-empty window, and amortized buffer
// growth — NOT a tracker, a count map, and a windowed database per
// customer, which is what this test keeps from creeping back. (Excluded
// under -race: the detector's instrumentation inflates allocation counts.)
package population

import (
	"testing"
	"time"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

func TestAnalyzeStabilityPerCustomerAllocBudget(t *testing.T) {
	g, err := window.NewGrid(time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), window.Span{Months: 1})
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	const (
		customers          = 40
		windowsPerCustomer = 16
		receiptsPerWindow  = 4
	)
	histories := make([]retail.History, customers)
	for c := range histories {
		h := retail.History{Customer: retail.CustomerID(c + 1)}
		for k := 0; k < windowsPerCustomer; k++ {
			start, _ := g.Bounds(k)
			for r := 0; r < receiptsPerWindow; r++ {
				items := make([]retail.ItemID, 0, 12)
				for p := 0; p < 12; p++ {
					items = append(items, retail.ItemID((c*7+k*3+r*5+p)%40+1))
				}
				h.Receipts = append(h.Receipts, retail.Receipt{
					Time:  start.Add(time.Duration(r+1) * time.Hour),
					Items: retail.NewBasket(items),
				})
			}
		}
		histories[c] = h
	}

	opts := Options{Workers: 1}
	through := windowsPerCustomer - 1
	if _, err := AnalyzeStability(model, histories, g, through, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := AnalyzeStability(model, histories, g, through, opts); err != nil {
			t.Fatal(err)
		}
	})

	// Budget: per customer, 1 Points slice + 1 Items copy per non-empty
	// window + slack for the result Series and amortized scratch growth;
	// plus a small constant for the Map machinery (out slice, scratch).
	budget := float64(customers*(windowsPerCustomer+4) + 16)
	perCustomer := allocs / customers
	t.Logf("population scoring: %.1f allocs/op total, %.2f per customer (budget %.0f total)",
		allocs, perCustomer, budget)
	if allocs > budget {
		t.Fatalf("population scoring allocates %.1f allocs/op (%.2f per customer), budget %.0f",
			allocs, perCustomer, budget)
	}
}
