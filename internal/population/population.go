// Package population is the sharded population-scoring engine: it fans
// per-customer work across a bounded pool of goroutines with deterministic,
// input-ordered results and first-error (lowest input index) propagation.
//
// The paper scores attrition per customer, so population analyses are
// embarrassingly parallel: the model is stateless, each customer gets a
// private tracker, and results are independent. What needs care is the
// contract around the parallelism — callers must get exactly the answer the
// sequential loop would produce, in the same order, with the same error,
// regardless of worker count. The primitives here guarantee that:
//
//   - Map fans fn over input indices and returns results in input order.
//   - On error, the error reported is the one from the LOWEST failing input
//     index — not whichever goroutine lost the race — so error behaviour is
//     reproducible across runs and worker counts.
//   - MapReduce folds the ordered results sequentially, so any aggregation
//     (histogram, top-k, report) is bit-identical to a sequential pass.
//
// Analyze / AnalyzeStability build the standard per-customer pipeline
// (Windowize + Model.Analyze) on top of Map; any other population analysis
// can ride Map/MapReduce directly.
package population

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

var errNilModel = errors.New("population: nil model")

// Options tune the engine.
type Options struct {
	// Workers is the goroutine pool size; <= 0 means GOMAXPROCS. The pool
	// is additionally capped at the number of inputs.
	Workers int
}

// DefaultOptions returns the hardware-sized configuration.
func DefaultOptions() Options { return Options{} }

// workers resolves the effective pool size for n inputs.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map applies fn to every index in [0, n) across the worker pool and
// returns the results in input order. When any fn call fails, Map returns
// the error of the lowest failing index and remaining work is abandoned;
// indices below the reported one are guaranteed to have been attempted, so
// the (index, error) pair is deterministic across runs and worker counts.
func Map[T any](n int, opts Options, fn func(i int) (T, error)) ([]T, error) {
	return MapScratch(n, opts,
		func() (struct{}, error) { return struct{}{}, nil },
		func(i int, _ struct{}) (T, error) { return fn(i) })
}

// MapScratch is Map with worker-local scratch state: newScratch runs once
// per worker (sequentially, before any work starts — a failure is returned
// as-is and nothing runs) and the scratch value is passed to every fn call
// that worker makes. Reusable buffers, trackers, and windowed databases
// live in the scratch so the per-index cost stops paying per-customer
// allocations; fn must not let results alias scratch memory that a later
// call overwrites. Ordering and first-error determinism are exactly Map's.
func MapScratch[T, S any](n int, opts Options, newScratch func() (S, error), fn func(i int, scratch S) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers := opts.workers(n)
	scratches := make([]S, workers)
	for w := range scratches {
		s, err := newScratch()
		if err != nil {
			return nil, err
		}
		scratches[w] = s
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i, scratches[0])
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	// Interleaved sharding: worker w owns indices w, w+W, w+2W, … Combined
	// with the stop watermark below, this guarantees that every index below
	// the final minimum failing index is attempted, which is what makes the
	// reported error deterministic.
	var (
		stop     atomic.Int64 // lowest failing index so far
		mu       sync.Mutex
		firstIdx = math.MaxInt
		firstErr error
		wg       sync.WaitGroup
	)
	stop.Store(math.MaxInt64)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := scratches[w]
			for i := w; i < n; i += workers {
				if int64(i) >= stop.Load() {
					return // a lower index already failed; our remaining indices only grow
				}
				v, err := fn(i, scratch)
				if err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					for {
						cur := stop.Load()
						if int64(i) >= cur || stop.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					return
				}
				out[i] = v
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// MapReduce maps fn over [0, n) in parallel, then folds the results into
// acc sequentially in input order. Because the reduce step is ordered and
// single-threaded, any aggregation produces exactly the sequential-loop
// result at every worker count.
func MapReduce[T, R any](n int, opts Options, acc R, fn func(i int) (T, error), reduce func(acc R, v T, i int) R) (R, error) {
	vals, err := Map(n, opts, fn)
	if err != nil {
		var zero R
		return zero, err
	}
	for i, v := range vals {
		acc = reduce(acc, v, i)
	}
	return acc, nil
}

// Analyze runs the model with full explanations over every history:
// windowize on grid through window `through`, then Model.Analyze. Results
// align with the input histories.
func Analyze(model *core.Model, histories []retail.History, grid window.Grid, through int, opts Options) ([]core.Series, error) {
	return analyze(model, histories, grid, through, opts, true)
}

// AnalyzeStability is Analyze without blame or new-item lists — the hot
// path for population-scale scoring.
func AnalyzeStability(model *core.Model, histories []retail.History, grid window.Grid, through int, opts Options) ([]core.Series, error) {
	return analyze(model, histories, grid, through, opts, false)
}

// analyzeScratch is the per-worker reusable state: one tracker (columns and
// significance memo retained across customers via Reset) and one windowed
// database (window slice retained across customers via WindowizeInto).
type analyzeScratch struct {
	tracker *core.Tracker
	wd      window.Windowed
}

func analyze(model *core.Model, histories []retail.History, grid window.Grid, through int, opts Options, explain bool) ([]core.Series, error) {
	if model == nil {
		return nil, errNilModel
	}
	return MapScratch(len(histories), opts,
		func() (*analyzeScratch, error) {
			t, err := core.NewTracker(model.Options())
			if err != nil {
				return nil, err
			}
			return &analyzeScratch{tracker: t}, nil
		},
		func(i int, s *analyzeScratch) (core.Series, error) {
			if err := window.WindowizeInto(&s.wd, histories[i], grid, through); err != nil {
				return core.Series{}, err
			}
			if explain {
				return model.AnalyzeWith(s.tracker, s.wd)
			}
			return model.AnalyzeStabilityWith(s.tracker, s.wd)
		})
}
