package experiments

import (
	"fmt"
	"io"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/gen"
	"github.com/gautrais/stability/internal/population"
	"github.com/gautrais/stability/internal/report"
	"github.com/gautrais/stability/internal/retail"
)

// ExplanationQualityConfig drives EXT-1: scoring the model's blamed
// products against the generator's ground-truth dropped segments — the
// paper's stated future work ("deepen the study of the characterization of
// significant products that can explain customer defection"), which only a
// substrate with known ground truth can evaluate.
type ExplanationQualityConfig struct {
	Gen        gen.Config
	SpanMonths int
	Alpha      float64
	Policy     core.CountPolicy
	// Js lists the blame-list depths to score (precision@j / recall@j).
	Js []int
	// WindowSlack accepts a blame within ±WindowSlack windows of the
	// ground-truth drop window (a drop at the end of a window often
	// surfaces one window later because the item was already bought early
	// in its drop window).
	WindowSlack int
	// Workers sizes the per-defector analysis pool; <= 0 means GOMAXPROCS.
	// Results are identical at every worker count.
	Workers int
}

// DefaultExplanationQualityConfig returns the DESIGN.md setting.
func DefaultExplanationQualityConfig() ExplanationQualityConfig {
	return ExplanationQualityConfig{
		Gen:         gen.NewConfig(),
		SpanMonths:  2,
		Alpha:       2,
		Policy:      core.CountFromFirstSeen,
		Js:          []int{1, 3, 5},
		WindowSlack: 1,
	}
}

// ExplanationQualityResult holds precision/recall per depth.
type ExplanationQualityResult struct {
	Cfg ExplanationQualityConfig
	// Js, Precision, Recall are parallel.
	Js        []int
	Precision []float64
	Recall    []float64
	// TrueDrops counts scored ground-truth events; Customers counts scored
	// defectors.
	TrueDrops int
	Customers int
}

// ExplanationQuality runs EXT-1.
func ExplanationQuality(cfg ExplanationQualityConfig) (*ExplanationQualityResult, error) {
	ds, err := gen.GenerateWith(cfg.Gen, gen.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return ExplanationQualityOn(ds, cfg)
}

// ExplanationQualityOn runs EXT-1 on an existing dataset.
//
// Protocol: for every defector, the model's blame lists are collected at
// every window. A ground-truth drop (month m, segment s) counts as
// recalled@j when s appears in the top-j blame of the window containing m
// or any window within WindowSlack after it. A blamed item (top-j, at any
// window from onset onward) counts as precise when the customer truly
// dropped it within WindowSlack windows of the blame.
func ExplanationQualityOn(ds *gen.Dataset, cfg ExplanationQualityConfig) (*ExplanationQualityResult, error) {
	if len(cfg.Js) == 0 {
		return nil, fmt.Errorf("experiments: no blame depths")
	}
	maxJ := 0
	for _, j := range cfg.Js {
		if j < 1 {
			return nil, fmt.Errorf("experiments: blame depth %d < 1", j)
		}
		if j > maxJ {
			maxJ = j
		}
	}
	grid, err := gridFor(ds, cfg.SpanMonths)
	if err != nil {
		return nil, err
	}
	model, err := core.New(core.Options{Alpha: cfg.Alpha, Policy: cfg.Policy, MaxBlame: maxJ})
	if err != nil {
		return nil, err
	}
	lastK := ds.Config.Months/cfg.SpanMonths - 1

	res := &ExplanationQualityResult{Cfg: cfg, Js: cfg.Js}
	recalled := make([]int, len(cfg.Js))
	blamedTotal := make([]int, len(cfg.Js))
	blamedTrue := make([]int, len(cfg.Js))

	// Scored cohort: defectors with at least one ground-truth drop and a
	// purchase history, in ascending id order. Their full-explanation
	// analyses are independent, so they ride the population engine; the
	// precision/recall tally below folds the ordered results sequentially.
	var ids []retail.CustomerID
	var histories []retail.History
	for _, id := range ds.Truth.Defectors() {
		if len(ds.Truth.ByCustomer[id].Drops) == 0 {
			continue
		}
		h, err := ds.Store.History(id)
		if err != nil {
			continue
		}
		ids = append(ids, id)
		histories = append(histories, h)
	}
	allSeries, err := population.Analyze(model, histories, grid, lastK,
		population.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}

	for ci, id := range ids {
		truth := ds.Truth.ByCustomer[id]
		series := allSeries[ci]
		res.Customers++

		// Blame lists per grid index, truncated per depth on use.
		blameAt := make(map[int][]core.Blame, len(series.Points))
		for _, p := range series.Points {
			if p.Defined && len(p.Missing) > 0 {
				blameAt[p.GridIndex] = p.Missing
			}
		}
		// Ground truth drop windows. Drift drops are genuine losses too:
		// blaming them is correct model behaviour, so they count toward
		// precision (but recall is scored on attrition drops only).
		dropWindow := make(map[retail.ItemID]int, len(truth.Drops))
		for _, d := range truth.Drops {
			start := ds.Config.Start.AddDate(0, d.Month, 0)
			dropWindow[d.Segment] = grid.Index(start)
		}
		driftWindow := make(map[retail.ItemID]int, len(truth.DriftDrops))
		for _, d := range truth.DriftDrops {
			start := ds.Config.Start.AddDate(0, d.Month, 0)
			driftWindow[d.Segment] = grid.Index(start)
		}

		// Recall: each true drop must be blamed near its window.
		for _, d := range truth.Drops {
			res.TrueDrops++
			k0 := dropWindow[d.Segment]
			for ji, j := range cfg.Js {
				found := false
				for k := k0; k <= k0+cfg.WindowSlack && !found; k++ {
					blames := blameAt[k]
					if len(blames) > j {
						blames = blames[:j]
					}
					for _, b := range blames {
						if b.Item == d.Segment {
							found = true
							break
						}
					}
				}
				if found {
					recalled[ji]++
				}
			}
		}

		// Precision: blamed items at post-onset windows scored against
		// truth.
		onsetK := grid.Index(ds.Config.Start.AddDate(0, truth.Label.OnsetMonth, 0))
		//detlint:ignore R1 accumulates integer counters only; integer addition is exact and order-independent
		for k, blames := range blameAt {
			if k < onsetK {
				continue
			}
			for ji, j := range cfg.Js {
				top := blames
				if len(top) > j {
					top = top[:j]
				}
				for _, b := range top {
					blamedTotal[ji]++
					if kd, ok := dropWindow[b.Item]; ok && abs(k-kd) <= cfg.WindowSlack {
						blamedTrue[ji]++
					} else if kd, ok := driftWindow[b.Item]; ok && abs(k-kd) <= cfg.WindowSlack {
						blamedTrue[ji]++
					}
				}
			}
		}
	}
	if res.TrueDrops == 0 {
		return nil, fmt.Errorf("experiments: no ground-truth drops to score")
	}
	for ji := range cfg.Js {
		res.Recall = append(res.Recall, float64(recalled[ji])/float64(res.TrueDrops))
		p := 0.0
		if blamedTotal[ji] > 0 {
			p = float64(blamedTrue[ji]) / float64(blamedTotal[ji])
		}
		res.Precision = append(res.Precision, p)
	}
	return res, nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Table renders precision/recall per depth.
func (r *ExplanationQualityResult) Table() *report.Table {
	t := report.NewTable("j", "precision@j", "recall@j")
	for i, j := range r.Js {
		t.AddRow(j, r.Precision[i], r.Recall[i])
	}
	return t
}

// Render writes the result.
func (r *ExplanationQualityResult) Render(w io.Writer) {
	fmt.Fprintf(w, "EXT-1: explanation quality vs ground truth (%d defectors, %d true drops, slack=%d windows)\n\n",
		r.Customers, r.TrueDrops, r.Cfg.WindowSlack)
	r.Table().Render(w)
}
