package experiments

import "testing"

// TestFigure1SeasonalRobustness verifies the detection signal survives a
// heavily seasonal catalog: seasonal dips hit loyal and defecting
// customers alike, so post-onset AUROC must stay far above chance.
func TestFigure1SeasonalRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultFigure1Config()
	cfg.Gen = smallGen()
	cfg.Gen.SeasonalFraction = 0.3
	res, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	atPlus4, ok := res.AUROCAtMonth(res.OnsetMonth + 4)
	if !ok {
		t.Fatal("no point at onset+4")
	}
	if atPlus4 < 0.8 {
		t.Errorf("seasonal catalog broke detection: AUROC %.3f at onset+4", atPlus4)
	}
	for i, m := range res.Months {
		if m < res.OnsetMonth && (res.StabilityAUROC[i] < 0.3 || res.StabilityAUROC[i] > 0.7) {
			t.Errorf("pre-onset month %d AUROC %.3f far from chance under seasonality", m, res.StabilityAUROC[i])
		}
	}
	t.Logf("seasonal fig1: months=%v stability=%v", res.Months, res.StabilityAUROC)
}
