package experiments

import (
	"fmt"
	"io"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/gen"
	"github.com/gautrais/stability/internal/population"
	"github.com/gautrais/stability/internal/report"
)

// AblationConfig drives the α / window-span / counting-policy ablations
// (EXT-2, EXT-3, EXT-4 in DESIGN.md). Every variant runs on the same
// generated dataset so differences are attributable to the model setting
// alone.
type AblationConfig struct {
	Gen gen.Config
	// Baseline model setting; each ablation varies one dimension.
	SpanMonths int
	Alpha      float64
	Policy     core.CountPolicy
	// FirstMonth/LastMonth bound the AUROC series.
	FirstMonth, LastMonth int

	Alphas   []float64
	Spans    []int
	Policies []core.CountPolicy

	// Workers sizes the worker pool that fans out the independent ablation
	// variants (and customer scoring inside each); <= 0 means GOMAXPROCS.
	// Every series is identical at every worker count.
	Workers int
}

// DefaultAblationConfig returns the DESIGN.md ablation grids.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{
		Gen:        gen.NewConfig(),
		SpanMonths: 2,
		Alpha:      2,
		Policy:     core.CountFromFirstSeen,
		FirstMonth: 12,
		LastMonth:  24,
		Alphas:     []float64{1.25, 1.5, 2, 3, 4},
		Spans:      []int{1, 2, 3},
		Policies:   []core.CountPolicy{core.CountFromFirstSeen, core.CountFromOrigin},
	}
}

// AblationSeries is one variant's AUROC-vs-month curve.
type AblationSeries struct {
	Name   string
	Months []int
	AUROC  []float64
}

// AblationResult holds every variant of one ablation dimension.
type AblationResult struct {
	Title  string
	Series []AblationSeries
	Onset  int
}

// stabilityCurve computes the AUROC series of one model setting.
func stabilityCurve(pop *Population, ds *gen.Dataset, span int, opts core.Options, firstMonth, lastMonth int, popts population.Options) (AblationSeries, error) {
	grid, err := gridFor(ds, span)
	if err != nil {
		return AblationSeries{}, err
	}
	evalKs := evalWindows(span, firstMonth, lastMonth)
	if len(evalKs) == 0 {
		return AblationSeries{}, fmt.Errorf("experiments: no eval windows for span %d in [%d,%d]", span, firstMonth, lastMonth)
	}
	scores, err := stabilityScores(pop, grid, opts, evalKs, popts)
	if err != nil {
		return AblationSeries{}, err
	}
	var s AblationSeries
	for ki, k := range evalKs {
		auc, err := aurocAt(scores[ki], pop.Labels)
		if err != nil {
			return AblationSeries{}, err
		}
		s.Months = append(s.Months, grid.MonthOfWindowEnd(k))
		s.AUROC = append(s.AUROC, auc)
	}
	return s, nil
}

// AlphaAblation (EXT-2) varies α with the window span fixed.
func AlphaAblation(cfg AblationConfig) (*AblationResult, error) {
	ds, err := gen.GenerateWith(cfg.Gen, gen.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return AlphaAblationOn(ds, cfg)
}

// AlphaAblationOn runs EXT-2 on an existing dataset. The variants are
// independent model settings over the same population, so the sweep rides
// the population engine: variant cells run across the worker pool and fold
// back in grid order, with the lowest failing variant's error surfaced —
// exactly the sequential loop's behaviour at every worker count.
func AlphaAblationOn(ds *gen.Dataset, cfg AblationConfig) (*AblationResult, error) {
	pop, err := NewPopulation(ds)
	if err != nil {
		return nil, err
	}
	popts := population.Options{Workers: cfg.Workers}
	series, err := population.Map(len(cfg.Alphas), popts, func(i int) (AblationSeries, error) {
		a := cfg.Alphas[i]
		s, err := stabilityCurve(pop, ds, cfg.SpanMonths, core.Options{Alpha: a, Policy: cfg.Policy}, cfg.FirstMonth, cfg.LastMonth, popts)
		if err != nil {
			return AblationSeries{}, fmt.Errorf("experiments: alpha=%g: %w", a, err)
		}
		s.Name = fmt.Sprintf("alpha=%g", a)
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Title: "EXT-2: AUROC vs alpha", Onset: cfg.Gen.OnsetMonth, Series: series}, nil
}

// WindowAblation (EXT-3) varies the window span with α fixed.
func WindowAblation(cfg AblationConfig) (*AblationResult, error) {
	ds, err := gen.GenerateWith(cfg.Gen, gen.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return WindowAblationOn(ds, cfg)
}

// WindowAblationOn runs EXT-3 on an existing dataset (parallel over
// variants, like AlphaAblationOn).
func WindowAblationOn(ds *gen.Dataset, cfg AblationConfig) (*AblationResult, error) {
	pop, err := NewPopulation(ds)
	if err != nil {
		return nil, err
	}
	popts := population.Options{Workers: cfg.Workers}
	series, err := population.Map(len(cfg.Spans), popts, func(i int) (AblationSeries, error) {
		span := cfg.Spans[i]
		s, err := stabilityCurve(pop, ds, span, core.Options{Alpha: cfg.Alpha, Policy: cfg.Policy}, cfg.FirstMonth, cfg.LastMonth, popts)
		if err != nil {
			return AblationSeries{}, fmt.Errorf("experiments: span=%d: %w", span, err)
		}
		s.Name = fmt.Sprintf("w=%dmo", span)
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Title: "EXT-3: AUROC vs window span", Onset: cfg.Gen.OnsetMonth, Series: series}, nil
}

// PolicyAblation (EXT-4) compares prior-window counting policies on a
// population with late joiners (join spread of 12 months), where the
// policies assign different l(k) counts. The expected — and analytically
// provable — outcome is identical AUROC curves: the α^(−W) factor through
// which l(k) enters the significance cancels in the stability ratio, so
// stability is policy-invariant (see the internal/core package comment).
// This experiment is the empirical verification of that invariance.
func PolicyAblation(cfg AblationConfig) (*AblationResult, error) {
	if cfg.Gen.JoinSpreadMonths == 0 {
		cfg.Gen.JoinSpreadMonths = 12
	}
	ds, err := gen.GenerateWith(cfg.Gen, gen.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return PolicyAblationOn(ds, cfg)
}

// PolicyAblationOn runs EXT-4 on an existing dataset (parallel over
// variants, like AlphaAblationOn).
func PolicyAblationOn(ds *gen.Dataset, cfg AblationConfig) (*AblationResult, error) {
	pop, err := NewPopulation(ds)
	if err != nil {
		return nil, err
	}
	popts := population.Options{Workers: cfg.Workers}
	series, err := population.Map(len(cfg.Policies), popts, func(i int) (AblationSeries, error) {
		p := cfg.Policies[i]
		s, err := stabilityCurve(pop, ds, cfg.SpanMonths, core.Options{Alpha: cfg.Alpha, Policy: p}, cfg.FirstMonth, cfg.LastMonth, popts)
		if err != nil {
			return AblationSeries{}, fmt.Errorf("experiments: policy=%s: %w", p, err)
		}
		s.Name = fmt.Sprintf("policy=%s", p)
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Title: "EXT-4: AUROC vs counting policy", Onset: cfg.Gen.OnsetMonth, Series: series}, nil
}

// Chart renders every variant as one chart.
func (r *AblationResult) Chart() *report.Chart {
	c := report.NewChart(r.Title, "Number of months", "AUROC")
	for _, s := range r.Series {
		x := make([]float64, len(s.Months))
		for i, m := range s.Months {
			x[i] = float64(m)
		}
		c.Add(report.Series{Name: s.Name, X: x, Y: s.AUROC})
	}
	c.AddVLine(float64(r.Onset), "Start of attrition")
	return c
}

// Table renders the variants as rows with months as columns when every
// series shares the same month axis; otherwise (e.g. the window-span
// ablation, where each span evaluates at different months) it falls back
// to long form (variant, month, auroc).
func (r *AblationResult) Table() *report.Table {
	if len(r.Series) == 0 {
		return report.NewTable("variant", "month", "auroc")
	}
	sameAxis := true
	for _, s := range r.Series[1:] {
		if len(s.Months) != len(r.Series[0].Months) {
			sameAxis = false
			break
		}
		for i, m := range s.Months {
			if m != r.Series[0].Months[i] {
				sameAxis = false
				break
			}
		}
	}
	if !sameAxis {
		t := report.NewTable("variant", "month", "auroc")
		for _, s := range r.Series {
			for i, m := range s.Months {
				t.AddRow(s.Name, m, s.AUROC[i])
			}
		}
		return t
	}
	headers := []string{"variant"}
	if len(r.Series) > 0 {
		for _, m := range r.Series[0].Months {
			headers = append(headers, fmt.Sprintf("m%d", m))
		}
	}
	t := report.NewTable(headers...)
	for _, s := range r.Series {
		cells := make([]any, 0, len(s.AUROC)+1)
		cells = append(cells, s.Name)
		for _, v := range s.AUROC {
			cells = append(cells, v)
		}
		t.AddRow(cells...)
	}
	return t
}

// Render writes the chart and table.
func (r *AblationResult) Render(w io.Writer) {
	r.Chart().Render(w)
	fmt.Fprintln(w)
	r.Table().Render(w)
}
