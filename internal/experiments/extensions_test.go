package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gautrais/stability/internal/gen"
)

func TestGatewayExperiment(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.Gen = smallGen()
	res, err := Gateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Customers == 0 || res.Report.DropEvents == 0 {
		t.Fatalf("nothing characterized: %+v", res.Report)
	}
	// Nearly every defector should show at least one drop.
	if frac := float64(res.Report.WithDrops) / float64(res.Report.Customers); frac < 0.8 {
		t.Errorf("only %.0f%% of defectors have drop events", frac*100)
	}
	// First blame should usually be a true drop.
	if res.Scored == 0 {
		t.Fatal("no defectors scored for truth agreement")
	}
	if res.TruthAgreement < 0.4 {
		t.Errorf("truth agreement %.2f implausibly low", res.TruthAgreement)
	}
	// Totals are consistent: Σ FirstLoss over segments ≤ customers with
	// drops × TopJ.
	totalFirst := 0
	for _, s := range res.Report.PerSegment {
		totalFirst += s.FirstLoss
		if s.AnyLoss > res.Report.WithDrops {
			t.Fatalf("segment %d AnyLoss %d exceeds customers with drops %d",
				s.Segment, s.AnyLoss, res.Report.WithDrops)
		}
		if s.Blames < s.AnyLoss {
			t.Fatalf("segment %d blames %d < distinct customers %d", s.Segment, s.Blames, s.AnyLoss)
		}
	}
	if totalFirst > res.Report.WithDrops*cfg.Seg.TopJ {
		t.Fatalf("ΣFirstLoss %d exceeds %d", totalFirst, res.Report.WithDrops*cfg.Seg.TopJ)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "ground-truth agreement") {
		t.Error("render missing agreement line")
	}
}

func TestFamilyAblation(t *testing.T) {
	cfg := DefaultFamilyAblationConfig()
	cfg.Gen = smallGen()
	cfg.FirstMonth, cfg.LastMonth = 18, 24 // post-onset only: faster
	res, err := FamilyAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("variants = %d, want 4", len(res.Series))
	}
	byName := map[string]AblationSeries{}
	for _, s := range res.Series {
		byName[s.Name] = s
	}
	all, ok := byName["RFM (all)"]
	if !ok {
		t.Fatal("full-RFM variant missing")
	}
	last := len(all.AUROC) - 1
	// The full model should be at least as good as each single family at
	// the final month (generous tolerance for CV noise).
	for name, s := range byName {
		if name == "RFM (all)" {
			continue
		}
		if s.AUROC[last] > all.AUROC[last]+0.08 {
			t.Errorf("%s (%.3f) beats full RFM (%.3f) by more than noise",
				name, s.AUROC[last], all.AUROC[last])
		}
	}
	// Every variant's values are valid AUROCs.
	for _, s := range res.Series {
		for _, v := range s.AUROC {
			if v < 0 || v > 1 {
				t.Fatalf("%s AUROC %v out of range", s.Name, v)
			}
		}
	}
}

func TestLeadTime(t *testing.T) {
	cfg := DefaultLeadTimeConfig()
	cfg.Gen = smallGen()
	res, err := LeadTime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total == 0 {
		t.Fatal("no defectors scored")
	}
	// At a 5% per-window false-alarm budget, most defectors must be
	// detected within the horizon.
	if rate := float64(res.Detected) / float64(res.Total); rate < 0.7 {
		t.Errorf("detection rate %.2f too low", rate)
	}
	// Median delay should be small and positive — detection "in the first
	// months of the customer defection" (the paper's claim).
	if res.Summary.Median < 0 || res.Summary.Median > 6 {
		t.Errorf("median delay %v months outside [0,6]", res.Summary.Median)
	}
	// The realized loyal FPR should be in the neighbourhood of the budget
	// (it is calibrated on one window, realized over several).
	if res.LoyalFPR > cfg.MaxFPR*4 {
		t.Errorf("realized FPR %.3f far above budget %.3f", res.LoyalFPR, cfg.MaxFPR)
	}
	if res.Beta <= 0 || res.Beta >= 1 {
		t.Errorf("calibrated beta = %v", res.Beta)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "delay from onset") {
		t.Error("render missing summary")
	}
}

func TestLeadTimeValidation(t *testing.T) {
	cfg := DefaultLeadTimeConfig()
	cfg.MaxFPR = 0
	if _, err := LeadTime(cfg); err == nil {
		t.Fatal("MaxFPR=0 accepted")
	}
	cfg = DefaultLeadTimeConfig()
	cfg.CalibrationMonth = cfg.Gen.OnsetMonth + 2
	if _, err := LeadTime(cfg); err == nil {
		t.Fatal("post-onset calibration accepted")
	}
}

func TestGatewaySharedDataset(t *testing.T) {
	// GatewayOn must work on a dataset generated elsewhere (the cmd/repro
	// path uses Gateway; ablation-style reuse uses GatewayOn).
	ds, err := gen.Generate(smallGen())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGatewayConfig()
	cfg.Gen = smallGen()
	res, err := GatewayOn(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Customers == 0 {
		t.Fatal("no customers characterized")
	}
}
