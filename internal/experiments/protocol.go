// Package experiments reproduces every figure and experiment of the paper
// (and the extension experiments listed in DESIGN.md) on the synthetic
// substrate. Each experiment is a pure function from a config to a
// structured result that knows how to render itself as an ASCII chart,
// a table, and CSV.
//
// Evaluation protocol (shared): customers are windowized on a global grid
// anchored at the dataset start. At evaluation window k, the stability
// model scores each customer with 1 − Stability_i^k (higher = more likely
// defecting) and the RFM baseline scores P(defecting) from features
// extracted up to the end of window k. AUROC is computed against the
// ground-truth cohort labels. RFM is trained with stratified k-fold
// cross-validation and scored out-of-fold, so no customer is scored by a
// model that saw its own label; the stability model has no trainable
// parameters (α is fixed per experiment), so it scores every customer
// directly.
package experiments

import (
	"fmt"
	"sort"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/eval"
	"github.com/gautrais/stability/internal/gen"
	"github.com/gautrais/stability/internal/population"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/rfm"
	"github.com/gautrais/stability/internal/window"
)

// Population aligns the generated customers with their binary labels
// (true = defecting) for the evaluation protocol.
type Population struct {
	DS        *gen.Dataset
	IDs       []retail.CustomerID
	Labels    []bool
	Histories []retail.History
}

// NewPopulation indexes a dataset. Customers without a truth record are
// excluded (none exist in generated datasets; defensive for loaded ones).
func NewPopulation(ds *gen.Dataset) (*Population, error) {
	p := &Population{DS: ds}
	ids := make([]retail.CustomerID, 0, len(ds.Truth.ByCustomer))
	//detlint:ignore R1 collects keys that are sorted immediately below
	for id := range ds.Truth.ByCustomer {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		h, err := ds.Store.History(id)
		if err != nil {
			continue // labelled but never purchased: skip
		}
		t := ds.Truth.ByCustomer[id]
		p.IDs = append(p.IDs, id)
		p.Labels = append(p.Labels, t.Label.Cohort == retail.CohortDefecting)
		p.Histories = append(p.Histories, h)
	}
	if len(p.IDs) == 0 {
		return nil, fmt.Errorf("experiments: population is empty")
	}
	return p, nil
}

// N returns the population size.
func (p *Population) N() int { return len(p.IDs) }

// gridFor builds the evaluation grid for a dataset and span.
func gridFor(ds *gen.Dataset, spanMonths int) (window.Grid, error) {
	return window.NewGrid(ds.Config.Start, window.Span{Months: spanMonths})
}

// evalWindows returns the window indices whose end-months lie in
// [firstMonth, lastMonth]. End-months are multiples of the span; firstMonth
// is rounded up to the next multiple.
func evalWindows(span, firstMonth, lastMonth int) []int {
	var ks []int
	for k := 0; ; k++ {
		end := (k + 1) * span
		if end > lastMonth {
			break
		}
		if end >= firstMonth {
			ks = append(ks, k)
		}
	}
	return ks
}

// stabilityScores computes the per-customer defection scores 1 − stability
// at every requested window index. Rows are indexed like evalKs; columns
// align with pop.IDs. Customers with no materialized window at k (no
// purchase history yet) count as fully stable.
//
// Customers are scored on the population engine: the model is stateless
// and per-customer trackers are created inside AnalyzeStability, so each
// customer is an independent unit of work. popts sizes the worker pool;
// results are identical at every worker count.
func stabilityScores(pop *Population, grid window.Grid, opts core.Options, evalKs []int, popts population.Options) ([][]float64, error) {
	model, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	maxK := 0
	for _, k := range evalKs {
		if k > maxK {
			maxK = k
		}
	}
	cols, err := population.Map(pop.N(), popts, func(ci int) ([]float64, error) {
		h := pop.Histories[ci]
		// Materialize from window 0 so that the CountPolicy decision about
		// pre-first-purchase windows is the tracker's, not an artifact of
		// which windows exist.
		wd, err := window.WindowizeFrom(h, grid, 0, maxK)
		if err != nil {
			return nil, fmt.Errorf("experiments: windowize customer %d: %w", h.Customer, err)
		}
		series, err := model.AnalyzeStability(wd)
		if err != nil {
			return nil, err
		}
		col := make([]float64, len(evalKs))
		for ki, k := range evalKs {
			st := 1.0
			if v, ok := series.StabilityAt(k); ok {
				st = v
			}
			col[ki] = 1 - st
		}
		return col, nil
	})
	if err != nil {
		return nil, err
	}
	scores := make([][]float64, len(evalKs))
	for ki := range scores {
		scores[ki] = make([]float64, pop.N())
		for ci := range cols {
			scores[ki][ci] = cols[ci][ki]
		}
	}
	return scores, nil
}

// rfmScoresCV trains the RFM baseline with stratified folds at window k and
// returns pooled out-of-fold P(defecting) scores aligned with pop.IDs.
// workers bounds the RFM feature-extraction and scoring pools (it
// overrides topts.Workers), so a sweep that fans cells out in parallel
// does not multiply the per-cell pools by GOMAXPROCS.
func rfmScoresCV(pop *Population, grid window.Grid, k, folds int, seed int64, topts rfm.TrainOptions, workers int) ([]float64, error) {
	topts.Workers = workers
	kf := eval.KFold{K: folds, Seed: seed}
	splits, err := kf.Split(pop.Labels)
	if err != nil {
		return nil, err
	}
	scores := make([]float64, pop.N())
	for _, f := range splits {
		trainH := make([]retail.History, len(f.Train))
		trainY := make([]bool, len(f.Train))
		for i, idx := range f.Train {
			trainH[i] = pop.Histories[idx]
			trainY[i] = pop.Labels[idx]
		}
		baseline, err := rfm.Train(grid, k, trainH, trainY, topts)
		if err != nil {
			return nil, fmt.Errorf("experiments: rfm fold train (k=%d): %w", k, err)
		}
		testH := make([]retail.History, len(f.Test))
		for i, idx := range f.Test {
			testH[i] = pop.Histories[idx]
		}
		for i, s := range baseline.ScoreAll(testH, workers) {
			scores[f.Test[i]] = s
		}
	}
	return scores, nil
}

// aurocAt computes AUROC of the given scores against the population labels.
func aurocAt(scores []float64, labels []bool) (float64, error) {
	return eval.AUROC(scores, labels)
}
