package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/eval"
	"github.com/gautrais/stability/internal/gen"
	"github.com/gautrais/stability/internal/population"
	"github.com/gautrais/stability/internal/report"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/rfm"
	"github.com/gautrais/stability/internal/segments"
	"github.com/gautrais/stability/internal/stats"
)

// --- EXT-5: gateway-segment characterization ---

// GatewayConfig drives EXT-5: aggregating the model's explanations over
// the defecting cohort to find the segments whose loss opens defection.
type GatewayConfig struct {
	Gen        gen.Config
	SpanMonths int
	Alpha      float64
	Seg        segments.Options
	TopN       int
}

// DefaultGatewayConfig returns the DESIGN.md setting.
func DefaultGatewayConfig() GatewayConfig {
	return GatewayConfig{
		Gen:        gen.NewConfig(),
		SpanMonths: 2,
		Alpha:      2,
		Seg:        segments.DefaultOptions(),
		TopN:       15,
	}
}

// GatewayResult holds the population-level characterization plus a
// ground-truth validation: the fraction of first-loss blames that match a
// true first drop.
type GatewayResult struct {
	Cfg    GatewayConfig
	Report *segments.Report
	// Names maps segments to catalog names for rendering.
	Names func(retail.ItemID) string
	// TruthAgreement is the share of defectors whose model-identified
	// first-lost segment is among their true first-month drops (±1 window).
	TruthAgreement float64
	Scored         int
}

// Gateway runs EXT-5.
func Gateway(cfg GatewayConfig) (*GatewayResult, error) {
	ds, err := gen.GenerateWith(cfg.Gen, gen.Options{Workers: cfg.Seg.Workers})
	if err != nil {
		return nil, err
	}
	return GatewayOn(ds, cfg)
}

// GatewayOn runs EXT-5 on an existing dataset.
func GatewayOn(ds *gen.Dataset, cfg GatewayConfig) (*GatewayResult, error) {
	grid, err := gridFor(ds, cfg.SpanMonths)
	if err != nil {
		return nil, err
	}
	model, err := core.New(core.Options{Alpha: cfg.Alpha})
	if err != nil {
		return nil, err
	}
	// Defecting cohort only: the question is what defectors lose first.
	var histories []retail.History
	var ids []retail.CustomerID
	for _, id := range ds.Truth.Defectors() {
		h, err := ds.Store.History(id)
		if err != nil {
			continue
		}
		histories = append(histories, h)
		ids = append(ids, id)
	}
	through := ds.Config.Months/cfg.SpanMonths - 1
	rep, err := segments.Characterize(model, histories, grid, through, cfg.Seg)
	if err != nil {
		return nil, err
	}

	// Ground-truth validation: does the model's first blame match a true
	// early drop of that customer? Per-customer analyses ride the
	// population engine; the agreement tally folds in input order.
	popSeries, err := population.Analyze(model, histories, grid, through,
		population.Options{Workers: cfg.Seg.Workers})
	if err != nil {
		return nil, err
	}
	agree, scored := 0, 0
	for i := range histories {
		drops := popSeries[i].Drops(cfg.Seg.MinDrop, cfg.Seg.TopJ)
		if len(drops) == 0 {
			continue
		}
		truth := ds.Truth.ByCustomer[ids[i]]
		if truth == nil || len(truth.Drops) == 0 {
			continue
		}
		scored++
		firstBlames := drops[0].Blame
		// True drops within the first blame window ±1.
		k0 := drops[0].GridIndex
		matched := false
		for _, b := range firstBlames {
			if m, ok := ds.Truth.DroppedBy(ids[i], b.Item); ok {
				km := grid.Index(ds.Config.Start.AddDate(0, m, 0))
				if abs(km-k0) <= 1 {
					matched = true
					break
				}
			}
		}
		if matched {
			agree++
		}
	}
	res := &GatewayResult{Cfg: cfg, Report: rep, Names: ds.Catalog.SegmentName, Scored: scored}
	if scored > 0 {
		res.TruthAgreement = float64(agree) / float64(scored)
	}
	return res, nil
}

// Table renders the gateway ranking.
func (r *GatewayResult) Table() *report.Table { return r.Report.Table(r.Cfg.TopN, r.Names) }

// Render writes the characterization and the ground-truth agreement.
func (r *GatewayResult) Render(w io.Writer) {
	fmt.Fprintln(w, "EXT-5: gateway segments (defecting cohort)")
	fmt.Fprintln(w)
	r.Report.Render(w, r.Names)
	fmt.Fprintf(w, "\nground-truth agreement of first blame: %.1f%% of %d scored defectors\n",
		r.TruthAgreement*100, r.Scored)
}

// --- EXT-6: RFM family ablation ---

// FamilyAblationConfig drives EXT-6: which of the paper's three predictor
// families carries the RFM baseline's detection power?
type FamilyAblationConfig struct {
	Gen                   gen.Config
	SpanMonths            int
	FirstMonth, LastMonth int
	Folds                 int
	CVSeed                int64
	// Workers sizes the pool fanning out the (family, window) cells; <= 0
	// means GOMAXPROCS. Results are identical at every worker count.
	Workers int
}

// DefaultFamilyAblationConfig returns the DESIGN.md setting.
func DefaultFamilyAblationConfig() FamilyAblationConfig {
	return FamilyAblationConfig{
		Gen:        gen.NewConfig(),
		SpanMonths: 2,
		FirstMonth: 12,
		LastMonth:  24,
		Folds:      5,
		CVSeed:     77,
	}
}

// FamilyAblation runs EXT-6.
func FamilyAblation(cfg FamilyAblationConfig) (*AblationResult, error) {
	ds, err := gen.GenerateWith(cfg.Gen, gen.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return FamilyAblationOn(ds, cfg)
}

// FamilyAblationOn runs EXT-6 on an existing dataset.
func FamilyAblationOn(ds *gen.Dataset, cfg FamilyAblationConfig) (*AblationResult, error) {
	pop, err := NewPopulation(ds)
	if err != nil {
		return nil, err
	}
	grid, err := gridFor(ds, cfg.SpanMonths)
	if err != nil {
		return nil, err
	}
	evalKs := evalWindows(cfg.SpanMonths, cfg.FirstMonth, cfg.LastMonth)
	variants := []struct {
		name     string
		families []rfm.Family
	}{
		{"RFM (all)", nil},
		{"R only", []rfm.Family{rfm.Recency}},
		{"F only", []rfm.Family{rfm.Frequency}},
		{"M only", []rfm.Family{rfm.Monetary}},
	}
	// Every (family, window) cell is an independent cross-validated
	// train+score, so the whole grid fans out over the population engine
	// and folds back into per-family series in row-major order — identical
	// output and first-error behaviour at every worker count.
	nK := len(evalKs)
	aucs, err := population.Map(len(variants)*nK, population.Options{Workers: cfg.Workers},
		func(ci int) (float64, error) {
			v, k := variants[ci/nK], evalKs[ci%nK]
			topts := rfm.DefaultTrainOptions()
			topts.Families = v.families
			scores, err := rfmScoresCV(pop, grid, k, cfg.Folds, cfg.CVSeed, topts, cfg.Workers)
			if err != nil {
				return 0, fmt.Errorf("experiments: %s at window %d: %w", v.name, k, err)
			}
			return eval.AUROC(scores, pop.Labels)
		})
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "EXT-6: RFM predictor-family ablation", Onset: cfg.Gen.OnsetMonth}
	for vi, v := range variants {
		s := AblationSeries{Name: v.name}
		for ki, k := range evalKs {
			s.Months = append(s.Months, grid.MonthOfWindowEnd(k))
			s.AUROC = append(s.AUROC, aucs[vi*nK+ki])
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// --- EXT-7: detection lead time ---

// LeadTimeConfig drives EXT-7: with β calibrated to a false-alarm budget
// on the loyal cohort, how soon after (or before) the true onset does the
// model first flag each defector? This quantifies the paper's claim that
// the model "is able to identify customers that are likely to defect in
// the future months".
type LeadTimeConfig struct {
	Gen        gen.Config
	SpanMonths int
	Alpha      float64
	// MaxFPR is the accepted false-alarm rate among loyal customers when
	// calibrating β (per window).
	MaxFPR float64
	// CalibrationMonth is the month whose window calibrates β
	// (pre-onset, so calibration never sees attrition).
	CalibrationMonth int
	// Workers sizes the customer-scoring worker pool; <= 0 means
	// GOMAXPROCS. Results are identical at every worker count.
	Workers int
}

// DefaultLeadTimeConfig returns the DESIGN.md setting.
func DefaultLeadTimeConfig() LeadTimeConfig {
	g := gen.NewConfig()
	return LeadTimeConfig{
		Gen:              g,
		SpanMonths:       2,
		Alpha:            2,
		MaxFPR:           0.05,
		CalibrationMonth: g.OnsetMonth - 2,
	}
}

// LeadTimeResult summarizes detection delays.
type LeadTimeResult struct {
	Cfg  LeadTimeConfig
	Beta float64
	// Detected counts defectors flagged at least once after onset;
	// Total counts scored defectors.
	Detected, Total int
	// DelayMonths holds per-detected-defector (first-flag month − onset
	// month); negative = flagged before the recorded onset.
	DelayMonths []float64
	Summary     stats.Summary
	// LoyalFPR is the realized per-window false-alarm rate of loyal
	// customers over the post-onset windows.
	LoyalFPR float64
}

// LeadTime runs EXT-7.
func LeadTime(cfg LeadTimeConfig) (*LeadTimeResult, error) {
	ds, err := gen.GenerateWith(cfg.Gen, gen.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return LeadTimeOn(ds, cfg)
}

// LeadTimeOn runs EXT-7 on an existing dataset.
func LeadTimeOn(ds *gen.Dataset, cfg LeadTimeConfig) (*LeadTimeResult, error) {
	if cfg.MaxFPR <= 0 || cfg.MaxFPR >= 1 {
		return nil, fmt.Errorf("experiments: MaxFPR must be in (0,1), got %v", cfg.MaxFPR)
	}
	if cfg.CalibrationMonth < cfg.SpanMonths || cfg.CalibrationMonth > cfg.Gen.OnsetMonth {
		return nil, fmt.Errorf("experiments: CalibrationMonth %d must be pre-onset", cfg.CalibrationMonth)
	}
	pop, err := NewPopulation(ds)
	if err != nil {
		return nil, err
	}
	grid, err := gridFor(ds, cfg.SpanMonths)
	if err != nil {
		return nil, err
	}
	lastK := ds.Config.Months/cfg.SpanMonths - 1
	calibK := cfg.CalibrationMonth/cfg.SpanMonths - 1
	if calibK < 0 {
		calibK = 0
	}
	evalKs := make([]int, 0, lastK+1)
	for k := 0; k <= lastK; k++ {
		evalKs = append(evalKs, k)
	}
	opts := core.Options{Alpha: cfg.Alpha}
	scores, err := stabilityScores(pop, grid, opts, evalKs, population.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}

	// Calibrate β on the pre-onset calibration window: the defection score
	// is 1−stability, and the threshold admits at most MaxFPR of loyal
	// customers. (Labels at a pre-onset window carry no attrition signal,
	// so this is equivalent to a loyal-only quantile but keeps the ROC
	// machinery honest about ties.)
	loyalScores := make([]float64, 0, pop.N())
	for i, defecting := range pop.Labels {
		if !defecting {
			loyalScores = append(loyalScores, scores[calibK][i])
		}
	}
	sort.Float64s(loyalScores)
	// Smallest score threshold with ≤ MaxFPR loyal at/above it.
	idx := int(float64(len(loyalScores)) * (1 - cfg.MaxFPR))
	if idx >= len(loyalScores) {
		idx = len(loyalScores) - 1
	}
	threshold := loyalScores[idx]
	beta := 1 - threshold // stability ≤ β ⇔ score ≥ threshold

	res := &LeadTimeResult{Cfg: cfg, Beta: beta}
	onsetOf := make(map[retail.CustomerID]int, len(ds.Truth.ByCustomer))
	//detlint:ignore R1 rebuilds a keyed map; no order-dependent state escapes the loop
	for id, tr := range ds.Truth.ByCustomer {
		if tr.Label.Cohort == retail.CohortDefecting {
			onsetOf[id] = tr.Label.OnsetMonth
		}
	}
	loyalAlarms, loyalWindows := 0, 0
	firstPostOnsetK := cfg.Gen.OnsetMonth / cfg.SpanMonths
	for i, id := range pop.IDs {
		if onset, ok := onsetOf[id]; ok {
			res.Total++
			detectedAt := -1
			for k := calibK + 1; k <= lastK; k++ {
				if scores[k][i] > threshold || (scores[k][i] == threshold && threshold > 0) {
					detectedAt = k
					break
				}
			}
			if detectedAt >= 0 {
				res.Detected++
				res.DelayMonths = append(res.DelayMonths,
					float64(grid.MonthOfWindowEnd(detectedAt)-onset))
			}
		} else {
			for k := firstPostOnsetK; k <= lastK; k++ {
				loyalWindows++
				if scores[k][i] > threshold {
					loyalAlarms++
				}
			}
		}
	}
	if loyalWindows > 0 {
		res.LoyalFPR = float64(loyalAlarms) / float64(loyalWindows)
	}
	res.Summary = stats.Summarize(res.DelayMonths)
	return res, nil
}

// Render writes the lead-time summary.
func (r *LeadTimeResult) Render(w io.Writer) {
	fmt.Fprintf(w, "EXT-7: detection lead time (beta=%.3f calibrated at %.0f%% FPR, month %d)\n\n",
		r.Beta, r.Cfg.MaxFPR*100, r.Cfg.CalibrationMonth)
	fmt.Fprintf(w, "defectors detected: %d / %d (%.1f%%)\n",
		r.Detected, r.Total, 100*float64(r.Detected)/float64(max(1, r.Total)))
	fmt.Fprintf(w, "delay from onset (months): %s\n", r.Summary)
	fmt.Fprintf(w, "realized loyal false-alarm rate per window: %.3f\n", r.LoyalFPR)
	t := report.NewTable("quantile", "delay_months")
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		t.AddRow(fmt.Sprintf("p%.0f", q*100), stats.Quantile(r.DelayMonths, q))
	}
	fmt.Fprintln(w)
	t.Render(w)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
