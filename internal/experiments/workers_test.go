package experiments

import (
	"bytes"
	"testing"

	"github.com/gautrais/stability/internal/gen"
)

// TestSweepWorkerCountInvariance pins the parallel experiment sweeps to
// the sequential path: the fully rendered output (charts, tables, summary
// lines) of each sweep must be byte-identical at every worker count. The
// dataset is generated once so the comparison isolates the sweeps.
func TestSweepWorkerCountInvariance(t *testing.T) {
	ds, err := gen.Generate(smallGen())
	if err != nil {
		t.Fatal(err)
	}

	type runner func(workers int) ([]byte, error)
	sweeps := []struct {
		name string
		run  runner
	}{
		{"figure1", func(workers int) ([]byte, error) {
			cfg := DefaultFigure1Config()
			cfg.Gen = smallGen()
			cfg.Workers = workers
			res, err := Figure1On(ds, cfg)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			res.Render(&buf)
			return buf.Bytes(), nil
		}},
		{"paramsearch", func(workers int) ([]byte, error) {
			cfg := DefaultParamSearchConfig()
			cfg.Gen = smallGen()
			cfg.Alphas = []float64{1.5, 2, 3}
			cfg.Spans = []int{1, 2}
			cfg.Workers = workers
			res, err := ParamSearchOn(ds, cfg)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			res.Render(&buf)
			return buf.Bytes(), nil
		}},
		{"alpha-ablation", func(workers int) ([]byte, error) {
			cfg := DefaultAblationConfig()
			cfg.Gen = smallGen()
			cfg.Alphas = []float64{1.5, 3}
			cfg.Workers = workers
			res, err := AlphaAblationOn(ds, cfg)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			res.Render(&buf)
			return buf.Bytes(), nil
		}},
		{"family-ablation", func(workers int) ([]byte, error) {
			cfg := DefaultFamilyAblationConfig()
			cfg.Gen = smallGen()
			cfg.FirstMonth, cfg.LastMonth = 18, 24
			cfg.Workers = workers
			res, err := FamilyAblationOn(ds, cfg)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			res.Render(&buf)
			return buf.Bytes(), nil
		}},
		{"leadtime", func(workers int) ([]byte, error) {
			cfg := DefaultLeadTimeConfig()
			cfg.Gen = smallGen()
			cfg.Workers = workers
			res, err := LeadTimeOn(ds, cfg)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			res.Render(&buf)
			return buf.Bytes(), nil
		}},
		{"explain-quality", func(workers int) ([]byte, error) {
			cfg := DefaultExplanationQualityConfig()
			cfg.Gen = smallGen()
			cfg.Workers = workers
			res, err := ExplanationQualityOn(ds, cfg)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			res.Render(&buf)
			return buf.Bytes(), nil
		}},
	}
	for _, sweep := range sweeps {
		sweep := sweep
		t.Run(sweep.name, func(t *testing.T) {
			base, err := sweep.run(1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{3, 8} {
				got, err := sweep.run(workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !bytes.Equal(got, base) {
					t.Errorf("workers=%d: rendered output differs from workers=1", workers)
				}
			}
		})
	}
}
