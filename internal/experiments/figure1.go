package experiments

import (
	"fmt"
	"io"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/gen"
	"github.com/gautrais/stability/internal/population"
	"github.com/gautrais/stability/internal/report"
	"github.com/gautrais/stability/internal/rfm"
)

// Figure1Config parameterizes the Figure-1 reproduction: AUROC of attrition
// detection per month, stability model vs. RFM baseline.
type Figure1Config struct {
	Gen gen.Config
	// SpanMonths is the window length w (paper: 2).
	SpanMonths int
	// Alpha is the significance base α (paper: 2).
	Alpha float64
	// Policy is the prior-window counting policy.
	Policy core.CountPolicy
	// FirstMonth/LastMonth bound the evaluated month axis (paper: 12–24).
	FirstMonth, LastMonth int
	// Folds is the cross-validation fold count for the RFM baseline
	// (paper: 5).
	Folds int
	// CVSeed seeds the fold assignment.
	CVSeed int64
	// Workers sizes the worker pool for customer scoring and the
	// per-window AUROC sweep; <= 0 means GOMAXPROCS. Results are identical
	// at every worker count.
	Workers int
}

// DefaultFigure1Config returns the paper's experimental setting.
func DefaultFigure1Config() Figure1Config {
	return Figure1Config{
		Gen:        gen.NewConfig(),
		SpanMonths: 2,
		Alpha:      2,
		Policy:     core.CountFromFirstSeen,
		FirstMonth: 12,
		LastMonth:  24,
		Folds:      5,
		CVSeed:     99,
	}
}

// Validate reports configuration errors.
func (c Figure1Config) Validate() error {
	if err := c.Gen.Validate(); err != nil {
		return err
	}
	if c.SpanMonths < 1 {
		return fmt.Errorf("experiments: span must be >= 1, got %d", c.SpanMonths)
	}
	if c.FirstMonth < c.SpanMonths || c.LastMonth <= c.FirstMonth {
		return fmt.Errorf("experiments: month range [%d,%d] invalid for span %d", c.FirstMonth, c.LastMonth, c.SpanMonths)
	}
	if c.LastMonth > c.Gen.Months {
		return fmt.Errorf("experiments: LastMonth %d exceeds dataset months %d", c.LastMonth, c.Gen.Months)
	}
	if c.Folds < 2 {
		return fmt.Errorf("experiments: folds must be >= 2, got %d", c.Folds)
	}
	return nil
}

// Figure1Result holds the reproduced curves.
type Figure1Result struct {
	Cfg Figure1Config
	// Months lists the window end-months plotted on the x-axis.
	Months []int
	// StabilityAUROC and RFMAUROC are parallel to Months.
	StabilityAUROC []float64
	RFMAUROC       []float64
	// OnsetMonth echoes the configured start of attrition (vertical line in
	// the paper's figure).
	OnsetMonth int
	// Population is the evaluated customer count.
	Population int
}

// Figure1 runs the experiment.
func Figure1(cfg Figure1Config) (*Figure1Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ds, err := gen.GenerateWith(cfg.Gen, gen.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return Figure1On(ds, cfg)
}

// Figure1On runs the experiment on an existing dataset (reused by the
// ablations so every variant sees identical data).
func Figure1On(ds *gen.Dataset, cfg Figure1Config) (*Figure1Result, error) {
	pop, err := NewPopulation(ds)
	if err != nil {
		return nil, err
	}
	grid, err := gridFor(ds, cfg.SpanMonths)
	if err != nil {
		return nil, err
	}
	evalKs := evalWindows(cfg.SpanMonths, cfg.FirstMonth, cfg.LastMonth)
	if len(evalKs) == 0 {
		return nil, fmt.Errorf("experiments: no evaluation windows in [%d,%d] for span %d",
			cfg.FirstMonth, cfg.LastMonth, cfg.SpanMonths)
	}

	popts := population.Options{Workers: cfg.Workers}
	opts := core.Options{Alpha: cfg.Alpha, Policy: cfg.Policy}
	stab, err := stabilityScores(pop, grid, opts, evalKs, popts)
	if err != nil {
		return nil, err
	}

	// Each evaluation window's AUROC pair — one stability ranking, one
	// RFM cross-validated train+score — is independent of every other
	// window, so the month sweep rides the population engine too. Results
	// fold back in window order; a failure surfaces as the lowest failing
	// window's error, exactly like the sequential loop.
	type monthAUC struct {
		month      int
		sAUC, rAUC float64
	}
	cells, err := population.Map(len(evalKs), popts, func(ki int) (monthAUC, error) {
		k := evalKs[ki]
		month := grid.MonthOfWindowEnd(k)
		sAUC, err := aurocAt(stab[ki], pop.Labels)
		if err != nil {
			return monthAUC{}, fmt.Errorf("experiments: stability auroc at month %d: %w", month, err)
		}
		rfmScores, err := rfmScoresCV(pop, grid, k, cfg.Folds, cfg.CVSeed, rfm.DefaultTrainOptions(), cfg.Workers)
		if err != nil {
			return monthAUC{}, err
		}
		rAUC, err := aurocAt(rfmScores, pop.Labels)
		if err != nil {
			return monthAUC{}, fmt.Errorf("experiments: rfm auroc at month %d: %w", month, err)
		}
		return monthAUC{month: month, sAUC: sAUC, rAUC: rAUC}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{Cfg: cfg, OnsetMonth: cfg.Gen.OnsetMonth, Population: pop.N()}
	for _, c := range cells {
		res.Months = append(res.Months, c.month)
		res.StabilityAUROC = append(res.StabilityAUROC, c.sAUC)
		res.RFMAUROC = append(res.RFMAUROC, c.rAUC)
	}
	return res, nil
}

// Series converts the result to chart series.
func (r *Figure1Result) Series() (stability, rfmSeries report.Series) {
	x := make([]float64, len(r.Months))
	for i, m := range r.Months {
		x[i] = float64(m)
	}
	return report.Series{Name: "Stability model", X: x, Y: r.StabilityAUROC, Marker: '*'},
		report.Series{Name: "RFM model", X: x, Y: r.RFMAUROC, Marker: 'o'}
}

// Chart renders the paper's Figure 1.
func (r *Figure1Result) Chart() *report.Chart {
	c := report.NewChart("Figure 1: Performance of the attrition detection",
		"Number of months", "AUROC")
	s, rf := r.Series()
	c.Add(s)
	c.Add(rf)
	c.AddVLine(float64(r.OnsetMonth), "Start of attrition")
	return c
}

// Table renders the per-month values.
func (r *Figure1Result) Table() *report.Table {
	t := report.NewTable("month", "stability_auroc", "rfm_auroc")
	for i, m := range r.Months {
		t.AddRow(m, r.StabilityAUROC[i], r.RFMAUROC[i])
	}
	return t
}

// Render writes the chart and table.
func (r *Figure1Result) Render(w io.Writer) {
	r.Chart().Render(w)
	fmt.Fprintln(w)
	r.Table().Render(w)
	fmt.Fprintf(w, "\npopulation=%d span=%dmo alpha=%g folds=%d policy=%s\n",
		r.Population, r.Cfg.SpanMonths, r.Cfg.Alpha, r.Cfg.Folds, r.Cfg.Policy)
}

// AUROCAtMonth returns the stability-model AUROC at the given end-month.
func (r *Figure1Result) AUROCAtMonth(month int) (float64, bool) {
	for i, m := range r.Months {
		if m == month {
			return r.StabilityAUROC[i], true
		}
	}
	return 0, false
}
