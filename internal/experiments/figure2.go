package experiments

import (
	"fmt"
	"io"
	"strings"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/gen"
	"github.com/gautrais/stability/internal/report"
	"github.com/gautrais/stability/internal/window"
)

// Figure2Config parameterizes the individual-explanation use case.
type Figure2Config struct {
	Scenario gen.Figure2Config
	// SpanMonths and Alpha mirror the model setting of the paper (2, 2).
	SpanMonths int
	Alpha      float64
	// MinDrop is the stability decrease that counts as an explainable drop
	// event.
	MinDrop float64
	// TopJ caps the blamed products reported per drop.
	TopJ int
	// FirstMonth/LastMonth bound the plotted trace (paper: 12–24).
	FirstMonth, LastMonth int
}

// DefaultFigure2Config returns the paper's use case.
func DefaultFigure2Config() Figure2Config {
	return Figure2Config{
		Scenario:   gen.DefaultFigure2Config(),
		SpanMonths: 2,
		Alpha:      2,
		MinDrop:    0.03,
		TopJ:       3,
		FirstMonth: 12,
		LastMonth:  24,
	}
}

// NamedDrop is one detected stability decrease with human-readable blame.
type NamedDrop struct {
	// MonthEnd is the end-month of the window where the drop was observed.
	MonthEnd int
	From, To float64
	// Blame lists the most significant missing segments, best first.
	Blame []string
	// Shares are the stability cost of each blamed segment's absence.
	Shares []float64
}

// Figure2Result is the reproduced stability trace with explanations.
type Figure2Result struct {
	Cfg Figure2Config
	// Months and Stability are the trace (x = window end-month).
	Months    []int
	Stability []float64
	Drops     []NamedDrop
	// ExpectedDrops echoes the scripted ground truth for comparison.
	ExpectedDrops []gen.ScriptedDrop
}

// Figure2 runs the experiment.
func Figure2(cfg Figure2Config) (*Figure2Result, error) {
	if cfg.SpanMonths < 1 {
		return nil, fmt.Errorf("experiments: span must be >= 1, got %d", cfg.SpanMonths)
	}
	sc, err := gen.Figure2Scenario(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	grid, err := window.NewGrid(sc.Grid.Start, window.Span{Months: cfg.SpanMonths})
	if err != nil {
		return nil, err
	}
	h, err := sc.Store.History(sc.Customer)
	if err != nil {
		return nil, err
	}
	lastK := sc.Grid.Months/cfg.SpanMonths - 1
	wd, err := window.Windowize(h, grid, lastK)
	if err != nil {
		return nil, err
	}
	model, err := core.New(core.Options{Alpha: cfg.Alpha, Policy: core.CountFromFirstSeen})
	if err != nil {
		return nil, err
	}
	series, err := model.Analyze(wd)
	if err != nil {
		return nil, err
	}

	res := &Figure2Result{Cfg: cfg, ExpectedDrops: sc.Drops}
	for _, p := range series.Points {
		m := grid.MonthOfWindowEnd(p.GridIndex)
		if cfg.LastMonth > 0 && (m < cfg.FirstMonth || m > cfg.LastMonth) {
			continue
		}
		res.Months = append(res.Months, m)
		res.Stability = append(res.Stability, p.Stability)
	}
	for _, d := range series.Drops(cfg.MinDrop, cfg.TopJ) {
		nd := NamedDrop{
			MonthEnd: grid.MonthOfWindowEnd(d.GridIndex),
			From:     d.From,
			To:       d.To,
		}
		for _, b := range d.Blame {
			nd.Blame = append(nd.Blame, sc.Catalog.SegmentName(b.Item))
			nd.Shares = append(nd.Shares, b.Share)
		}
		res.Drops = append(res.Drops, nd)
	}
	return res, nil
}

// Chart renders the paper's Figure 2.
func (r *Figure2Result) Chart() *report.Chart {
	c := report.NewChart("Figure 2: Defecting customer stability value example",
		"Number of months", "Stability value")
	x := make([]float64, len(r.Months))
	for i, m := range r.Months {
		x[i] = float64(m)
	}
	c.Add(report.Series{Name: "Stability value", X: x, Y: r.Stability, Marker: '*'})
	// Annotate the detected decreases with their blamed products — the
	// paper's "Coffee loss" / "Milk, sponge and cheese loss" arrows.
	for _, d := range r.Drops {
		c.AddVLine(float64(d.MonthEnd), fmt.Sprintf("%s loss", strings.Join(d.Blame, ", ")))
	}
	return c
}

// Table renders the detected drop events.
func (r *Figure2Result) Table() *report.Table {
	t := report.NewTable("month", "stability_from", "stability_to", "blamed_products")
	for _, d := range r.Drops {
		t.AddRow(d.MonthEnd, d.From, d.To, strings.Join(d.Blame, ", "))
	}
	return t
}

// Render writes the chart, the drop table, and the scripted ground truth.
func (r *Figure2Result) Render(w io.Writer) {
	r.Chart().Render(w)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Detected stability drops and blamed products:")
	r.Table().Render(w)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Scripted ground truth:")
	for _, d := range r.ExpectedDrops {
		fmt.Fprintf(w, "  month %d: stopped buying %s\n", d.Month, strings.Join(d.Segments, ", "))
	}
}

// BlameAt returns the blamed products of the drop detected at the window
// whose end-month is closest to (and at least) the given ground-truth
// month.
func (r *Figure2Result) BlameAt(month int) ([]string, bool) {
	best := -1
	for i, d := range r.Drops {
		if d.MonthEnd >= month && (best < 0 || d.MonthEnd < r.Drops[best].MonthEnd) {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	return r.Drops[best].Blame, true
}
