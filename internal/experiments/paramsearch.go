package experiments

import (
	"fmt"
	"io"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/eval"
	"github.com/gautrais/stability/internal/gen"
	"github.com/gautrais/stability/internal/population"
	"github.com/gautrais/stability/internal/report"
)

// ParamSearchConfig parameterizes the 5-fold cross-validated grid search
// that selected w = 2 months and α = 2 in the paper (§3.1).
type ParamSearchConfig struct {
	Gen    gen.Config
	Alphas []float64
	Spans  []int
	// TargetMonths lists the post-onset months whose mean AUROC is the
	// selection objective (default: onset+2 … onset+6, the paper's
	// detection horizon).
	TargetMonths []int
	Folds        int
	CVSeed       int64
	Policy       core.CountPolicy
	// Workers sizes the worker pool that fans out the independent (α, w)
	// grid cells (and customer scoring inside each cell); <= 0 means
	// GOMAXPROCS. The ranked grid is identical at every worker count.
	Workers int
}

// DefaultParamSearchConfig returns the search space around the paper's
// published choice.
func DefaultParamSearchConfig() ParamSearchConfig {
	g := gen.NewConfig()
	return ParamSearchConfig{
		Gen:          g,
		Alphas:       []float64{1.25, 1.5, 2, 3, 4},
		Spans:        []int{1, 2, 3},
		TargetMonths: []int{g.OnsetMonth + 2, g.OnsetMonth + 4, g.OnsetMonth + 6},
		Folds:        5,
		CVSeed:       123,
		Policy:       core.CountFromFirstSeen,
	}
}

// ParamSearchResult holds the ranked grid.
type ParamSearchResult struct {
	Cfg     ParamSearchConfig
	Results []eval.GridResult // sorted: best first
}

// Best returns the selected grid point.
func (r *ParamSearchResult) Best() eval.GridPoint { return r.Results[0].GridPoint }

// ParamSearch runs the cross-validated grid search. For each (α, w) cell,
// each fold's score is the mean AUROC over the target months computed on
// that fold's held-out customers only; the cell's value is the fold mean.
// The stability model has no trained weights, so "training" folds only
// serve to make the selection honest about sampling noise — exactly the
// role cross-validation plays for a hyper-parameter-only model.
func ParamSearch(cfg ParamSearchConfig) (*ParamSearchResult, error) {
	if err := cfg.Gen.Validate(); err != nil {
		return nil, err
	}
	if cfg.Folds < 2 {
		return nil, fmt.Errorf("experiments: folds must be >= 2, got %d", cfg.Folds)
	}
	if len(cfg.TargetMonths) == 0 {
		return nil, fmt.Errorf("experiments: no target months")
	}
	ds, err := gen.GenerateWith(cfg.Gen, gen.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return ParamSearchOn(ds, cfg)
}

// ParamSearchOn runs the search on an existing dataset.
func ParamSearchOn(ds *gen.Dataset, cfg ParamSearchConfig) (*ParamSearchResult, error) {
	pop, err := NewPopulation(ds)
	if err != nil {
		return nil, err
	}
	kf := eval.KFold{K: cfg.Folds, Seed: cfg.CVSeed}
	folds, err := kf.Split(pop.Labels)
	if err != nil {
		return nil, err
	}

	results, err := eval.GridSearchParallel(cfg.Alphas, cfg.Spans, cfg.Workers, func(gp eval.GridPoint) ([]float64, error) {
		grid, err := gridFor(ds, gp.SpanMonths)
		if err != nil {
			return nil, err
		}
		// Evaluation windows: those ending at or after each target month,
		// snapped up to the span multiple.
		var evalKs []int
		for _, m := range cfg.TargetMonths {
			k := (m + gp.SpanMonths - 1) / gp.SpanMonths
			if k < 1 {
				k = 1
			}
			evalKs = append(evalKs, k-1)
		}
		opts := core.Options{Alpha: gp.Alpha, Policy: cfg.Policy}
		scores, err := stabilityScores(pop, grid, opts, evalKs, population.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		foldScores := make([]float64, 0, len(folds))
		for _, f := range folds {
			var sum float64
			for ki := range evalKs {
				testScores := make([]float64, len(f.Test))
				testLabels := make([]bool, len(f.Test))
				for i, idx := range f.Test {
					testScores[i] = scores[ki][idx]
					testLabels[i] = pop.Labels[idx]
				}
				auc, err := eval.AUROC(testScores, testLabels)
				if err != nil {
					return nil, err
				}
				sum += auc
			}
			foldScores = append(foldScores, sum/float64(len(evalKs)))
		}
		return foldScores, nil
	})
	if err != nil {
		return nil, err
	}
	return &ParamSearchResult{Cfg: cfg, Results: results}, nil
}

// Table renders the ranked grid.
func (r *ParamSearchResult) Table() *report.Table {
	t := report.NewTable("rank", "alpha", "window_months", "mean_auroc", "stderr")
	for i, g := range r.Results {
		t.AddRow(i+1, g.Alpha, g.SpanMonths, g.Mean, g.StdErr)
	}
	return t
}

// Render writes the ranked grid and the selection.
func (r *ParamSearchResult) Render(w io.Writer) {
	fmt.Fprintf(w, "CV-1: %d-fold cross-validated grid search (target months %v)\n\n",
		r.Cfg.Folds, r.Cfg.TargetMonths)
	r.Table().Render(w)
	best := r.Best()
	fmt.Fprintf(w, "\nselected: alpha=%g window=%d months (paper selected alpha=2, window=2 months)\n",
		best.Alpha, best.SpanMonths)
}
