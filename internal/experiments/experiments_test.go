package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/gen"
	"github.com/gautrais/stability/internal/population"
)

// smallGen returns a fast dataset config that still shows the attrition
// signal clearly.
func smallGen() gen.Config {
	cfg := gen.NewConfig()
	cfg.Customers = 240
	cfg.Segments = 80
	cfg.ProductsPerSegment = 2
	return cfg
}

func TestEvalWindows(t *testing.T) {
	tests := []struct {
		span, first, last int
		want              []int
	}{
		{2, 12, 24, []int{5, 6, 7, 8, 9, 10, 11}},
		{1, 3, 5, []int{2, 3, 4}},
		{3, 12, 24, []int{3, 4, 5, 6, 7}},
		{2, 13, 24, []int{6, 7, 8, 9, 10, 11}}, // 13 rounds up to 14
		{2, 25, 24, nil},
	}
	for _, tt := range tests {
		got := evalWindows(tt.span, tt.first, tt.last)
		if len(got) != len(tt.want) {
			t.Errorf("evalWindows(%d,%d,%d) = %v, want %v", tt.span, tt.first, tt.last, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("evalWindows(%d,%d,%d) = %v, want %v", tt.span, tt.first, tt.last, got, tt.want)
				break
			}
		}
	}
	// Window end-months must land on the months the paper plots.
	for _, k := range evalWindows(2, 12, 24) {
		if m := (k + 1) * 2; m < 12 || m > 24 || m%2 != 0 {
			t.Errorf("window %d ends at month %d", k, m)
		}
	}
}

func TestFigure1ConfigValidation(t *testing.T) {
	good := DefaultFigure1Config()
	if err := good.Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := good
	bad.SpanMonths = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("span 0 accepted")
	}
	bad = good
	bad.FirstMonth, bad.LastMonth = 20, 10
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted month range accepted")
	}
	bad = good
	bad.LastMonth = good.Gen.Months + 10
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-horizon range accepted")
	}
	bad = good
	bad.Folds = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("1 fold accepted")
	}
}

// TestFigure1Shape is the headline integration test: the reproduced curve
// must show the paper's qualitative result — near-chance AUROC before the
// attrition onset and strong detection after it, for both models.
func TestFigure1Shape(t *testing.T) {
	cfg := DefaultFigure1Config()
	cfg.Gen = smallGen()
	res, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Months) != 7 { // months 12..24 step 2
		t.Fatalf("months = %v", res.Months)
	}
	if res.Population != cfg.Gen.Customers {
		t.Fatalf("population = %d", res.Population)
	}

	for i, m := range res.Months {
		s, r := res.StabilityAUROC[i], res.RFMAUROC[i]
		if s < 0 || s > 1 || r < 0 || r > 1 {
			t.Fatalf("month %d: AUROC out of range: %v, %v", m, s, r)
		}
		if m <= res.OnsetMonth {
			// Pre-onset: no signal exists; allow generous sampling noise.
			if s < 0.35 || s > 0.65 {
				t.Errorf("month %d (pre-onset): stability AUROC %v far from 0.5", m, s)
			}
		}
	}
	// Two months after onset the paper reports 0.79; the synthetic
	// substrate must at least clear strong-detection territory.
	atPlus2, ok := res.AUROCAtMonth(res.OnsetMonth + 2)
	if !ok {
		t.Fatalf("no point at onset+2 (months=%v)", res.Months)
	}
	if atPlus2 < 0.65 {
		t.Errorf("AUROC at onset+2 = %v, want >= 0.65 (paper: 0.79)", atPlus2)
	}
	// Detection keeps improving (or holds) later in the defection.
	last := res.StabilityAUROC[len(res.StabilityAUROC)-1]
	if last < atPlus2-0.05 {
		t.Errorf("late AUROC %v fell below early %v", last, atPlus2)
	}
	// The RFM baseline must be in the same league (the paper's claim:
	// "similar performances").
	rfmLast := res.RFMAUROC[len(res.RFMAUROC)-1]
	if rfmLast < 0.7 {
		t.Errorf("RFM late AUROC %v implausibly low", rfmLast)
	}
}

func TestFigure1Render(t *testing.T) {
	cfg := DefaultFigure1Config()
	cfg.Gen = smallGen()
	res, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 1", "Stability model", "RFM model", "Start of attrition", "month"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestFigure2Explanations checks the individual use case end to end: the
// two scripted losses must be detected at the right months and blamed on
// the right products — the paper's core "actionable knowledge" claim.
func TestFigure2Explanations(t *testing.T) {
	res, err := Figure2(DefaultFigure2Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Drops) < 2 {
		t.Fatalf("detected %d drops, want >= 2", len(res.Drops))
	}

	coffee, ok := res.BlameAt(20)
	if !ok {
		t.Fatal("no drop detected near month 20")
	}
	if coffee[0] != "coffee" {
		t.Fatalf("month-20 blame = %v, want coffee first", coffee)
	}

	dairy, ok := res.BlameAt(22)
	if !ok {
		t.Fatal("no drop detected near month 22")
	}
	got := map[string]bool{}
	for _, n := range dairy {
		got[n] = true
	}
	for _, want := range []string{"milk", "sponge", "cheese"} {
		if !got[want] {
			t.Errorf("month-22 blame %v missing %q", dairy, want)
		}
	}

	// The trace must be loyal (≈1) before the first loss.
	for i, m := range res.Months {
		if m < 20 && res.Stability[i] < 0.95 {
			t.Errorf("month %d stability %v, want ~1 pre-loss", m, res.Stability[i])
		}
	}
}

func TestFigure2Render(t *testing.T) {
	res, err := Figure2(DefaultFigure2Config())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 2", "coffee", "milk", "ground truth"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure2BadConfig(t *testing.T) {
	cfg := DefaultFigure2Config()
	cfg.SpanMonths = 0
	if _, err := Figure2(cfg); err == nil {
		t.Fatal("span 0 accepted")
	}
}

func TestParamSearchRanksPlausibly(t *testing.T) {
	cfg := DefaultParamSearchConfig()
	cfg.Gen = smallGen()
	cfg.Alphas = []float64{1.5, 2, 3}
	cfg.Spans = []int{1, 2}
	res, err := ParamSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 6 {
		t.Fatalf("grid cells = %d", len(res.Results))
	}
	// Sorted descending by mean.
	for i := 1; i < len(res.Results); i++ {
		if res.Results[i].Mean > res.Results[i-1].Mean {
			t.Fatalf("grid not sorted at %d", i)
		}
	}
	// Every cell detects far better than chance at the post-onset target
	// months.
	for _, g := range res.Results {
		if g.Mean < 0.6 {
			t.Errorf("cell α=%v w=%d mean AUROC %v below 0.6", g.Alpha, g.SpanMonths, g.Mean)
		}
		if len(g.FoldScores) != cfg.Folds {
			t.Errorf("cell α=%v w=%d has %d fold scores", g.Alpha, g.SpanMonths, len(g.FoldScores))
		}
	}
	best := res.Best()
	if best.Alpha == 0 || best.SpanMonths == 0 {
		t.Fatalf("best = %+v", best)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "selected:") {
		t.Error("render missing selection line")
	}
}

func TestParamSearchValidation(t *testing.T) {
	cfg := DefaultParamSearchConfig()
	cfg.Folds = 1
	if _, err := ParamSearch(cfg); err == nil {
		t.Fatal("1 fold accepted")
	}
	cfg = DefaultParamSearchConfig()
	cfg.TargetMonths = nil
	if _, err := ParamSearch(cfg); err == nil {
		t.Fatal("no target months accepted")
	}
}

func TestExplanationQuality(t *testing.T) {
	cfg := DefaultExplanationQualityConfig()
	cfg.Gen = smallGen()
	res, err := ExplanationQuality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Customers == 0 || res.TrueDrops == 0 {
		t.Fatalf("nothing scored: %+v", res)
	}
	if len(res.Precision) != len(cfg.Js) || len(res.Recall) != len(cfg.Js) {
		t.Fatalf("metric lengths: %d/%d", len(res.Precision), len(res.Recall))
	}
	for i := range cfg.Js {
		if res.Precision[i] < 0 || res.Precision[i] > 1 || res.Recall[i] < 0 || res.Recall[i] > 1 {
			t.Fatalf("metrics out of range: %+v", res)
		}
	}
	// Recall must be monotone non-decreasing in j (deeper lists find more).
	for i := 1; i < len(res.Recall); i++ {
		if res.Recall[i] < res.Recall[i-1]-1e-12 {
			t.Fatalf("recall not monotone in j: %v", res.Recall)
		}
	}
	// The model must beat random guessing: blaming j of ~160 segments at
	// random would land far below these thresholds.
	if res.Recall[len(res.Recall)-1] < 0.2 {
		t.Errorf("recall@%d = %v, implausibly low", cfg.Js[len(cfg.Js)-1], res.Recall[len(res.Recall)-1])
	}
	if res.Precision[0] < 0.2 {
		t.Errorf("precision@1 = %v, implausibly low", res.Precision[0])
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "precision@j") {
		t.Error("render missing header")
	}
}

func TestExplanationQualityValidation(t *testing.T) {
	cfg := DefaultExplanationQualityConfig()
	cfg.Js = nil
	if _, err := ExplanationQuality(cfg); err == nil {
		t.Fatal("no depths accepted")
	}
	cfg = DefaultExplanationQualityConfig()
	cfg.Js = []int{0}
	if _, err := ExplanationQuality(cfg); err == nil {
		t.Fatal("depth 0 accepted")
	}
}

func TestAblations(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.Gen = smallGen()
	cfg.Alphas = []float64{1.5, 3}
	cfg.Spans = []int{1, 2}

	ds, err := gen.Generate(cfg.Gen)
	if err != nil {
		t.Fatal(err)
	}

	alpha, err := AlphaAblationOn(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(alpha.Series) != 2 {
		t.Fatalf("alpha variants = %d", len(alpha.Series))
	}
	win, err := WindowAblationOn(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(win.Series) != 2 {
		t.Fatalf("window variants = %d", len(win.Series))
	}
	pol, err := PolicyAblationOn(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Series) != 2 {
		t.Fatalf("policy variants = %d", len(pol.Series))
	}
	// Policies only differ in leading-empty handling; on a population that
	// starts buying immediately, both must show post-onset signal.
	for _, s := range pol.Series {
		last := s.AUROC[len(s.AUROC)-1]
		if last < 0.6 {
			t.Errorf("policy %s late AUROC = %v", s.Name, last)
		}
	}
	var buf bytes.Buffer
	alpha.Render(&buf)
	if !strings.Contains(buf.String(), "alpha=1.5") {
		t.Error("ablation render missing variant name")
	}
}

func TestPopulationFromDataset(t *testing.T) {
	ds, err := gen.Generate(smallGen())
	if err != nil {
		t.Fatal(err)
	}
	pop, err := NewPopulation(ds)
	if err != nil {
		t.Fatal(err)
	}
	if pop.N() != len(pop.Labels) || pop.N() != len(pop.Histories) {
		t.Fatalf("misaligned population: %d/%d/%d", pop.N(), len(pop.Labels), len(pop.Histories))
	}
	defectors := 0
	for _, l := range pop.Labels {
		if l {
			defectors++
		}
	}
	if defectors == 0 || defectors == pop.N() {
		t.Fatalf("degenerate label distribution: %d of %d", defectors, pop.N())
	}
}

func TestStabilityScoresShape(t *testing.T) {
	ds, err := gen.Generate(smallGen())
	if err != nil {
		t.Fatal(err)
	}
	pop, err := NewPopulation(ds)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := gridFor(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	ks := []int{5, 9, 11}
	scores, err := stabilityScores(pop, grid, core.Options{Alpha: 2}, ks, population.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(ks) {
		t.Fatalf("rows = %d", len(scores))
	}
	for ki, row := range scores {
		if len(row) != pop.N() {
			t.Fatalf("row %d has %d scores", ki, len(row))
		}
		for _, s := range row {
			if s < 0 || s > 1 {
				t.Fatalf("score %v out of [0,1]", s)
			}
		}
	}
}
