package window

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

func mayGrid(t *testing.T, months int) Grid {
	t.Helper()
	g, err := NewGrid(time.Date(2012, time.May, 15, 13, 0, 0, 0, time.UTC), Span{Months: months})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(time.Time{}, Span{Months: 2}); err == nil {
		t.Fatal("zero origin accepted")
	}
	if _, err := NewGrid(time.Now(), Span{Months: 0}); err == nil {
		t.Fatal("zero span accepted")
	}
	if _, err := NewGrid(time.Now(), Span{Months: -1}); err == nil {
		t.Fatal("negative span accepted")
	}
}

func TestGridOriginTruncatedToMonth(t *testing.T) {
	g := mayGrid(t, 2)
	want := time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC)
	if !g.Origin().Equal(want) {
		t.Fatalf("Origin = %v, want %v", g.Origin(), want)
	}
}

func TestMonthIndex(t *testing.T) {
	g := mayGrid(t, 2)
	tests := []struct {
		t    time.Time
		want int
	}{
		{time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), 0},
		{time.Date(2012, time.May, 31, 23, 59, 0, 0, time.UTC), 0},
		{time.Date(2012, time.June, 1, 0, 0, 0, 0, time.UTC), 1},
		{time.Date(2013, time.May, 1, 0, 0, 0, 0, time.UTC), 12},
		{time.Date(2014, time.August, 31, 0, 0, 0, 0, time.UTC), 27},
		{time.Date(2012, time.April, 30, 0, 0, 0, 0, time.UTC), -1},
		{time.Date(2011, time.May, 1, 0, 0, 0, 0, time.UTC), -12},
	}
	for _, tt := range tests {
		if got := g.MonthIndex(tt.t); got != tt.want {
			t.Errorf("MonthIndex(%v) = %d, want %d", tt.t, got, tt.want)
		}
	}
}

func TestIndexAndBounds(t *testing.T) {
	g := mayGrid(t, 2)
	tests := []struct {
		t    time.Time
		want int
	}{
		{time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), 0},
		{time.Date(2012, time.June, 30, 0, 0, 0, 0, time.UTC), 0},
		{time.Date(2012, time.July, 1, 0, 0, 0, 0, time.UTC), 1},
		{time.Date(2013, time.May, 2, 0, 0, 0, 0, time.UTC), 6},
		{time.Date(2012, time.April, 30, 0, 0, 0, 0, time.UTC), -1},
		{time.Date(2012, time.February, 1, 0, 0, 0, 0, time.UTC), -2},
		{time.Date(2011, time.May, 1, 0, 0, 0, 0, time.UTC), -6},
	}
	for _, tt := range tests {
		if got := g.Index(tt.t); got != tt.want {
			t.Errorf("Index(%v) = %d, want %d", tt.t, got, tt.want)
		}
	}
}

func TestIndexBoundsConsistency(t *testing.T) {
	// For every grid and time, Bounds(Index(t)) must contain t.
	prop := func(spanSeed, daySeed uint32) bool {
		span := int(spanSeed%5) + 1
		g, err := NewGrid(time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), Span{Months: span})
		if err != nil {
			return false
		}
		// Cover times before the origin as well (negative window indices).
		days := int(daySeed%3000) - 800
		ts := g.Origin().AddDate(0, 0, days).Add(7 * time.Hour)
		k := g.Index(ts)
		start, end := g.Bounds(k)
		return !ts.Before(start) && ts.Before(end)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBoundsAdjacency(t *testing.T) {
	g := mayGrid(t, 3)
	for k := -4; k < 8; k++ {
		_, endK := g.Bounds(k)
		startNext, _ := g.Bounds(k + 1)
		if !endK.Equal(startNext) {
			t.Fatalf("window %d end %v != window %d start %v", k, endK, k+1, startNext)
		}
	}
}

func TestMonthOfWindowEnd(t *testing.T) {
	g := mayGrid(t, 2)
	for k, want := range map[int]int{0: 2, 5: 12, 8: 18, 11: 24} {
		if got := g.MonthOfWindowEnd(k); got != want {
			t.Errorf("MonthOfWindowEnd(%d) = %d, want %d", k, got, want)
		}
	}
}

func receiptAt(g Grid, dayOffset int, items ...retail.ItemID) retail.Receipt {
	return retail.Receipt{
		Time:  g.Origin().AddDate(0, 0, dayOffset).Add(10 * time.Hour),
		Items: retail.NewBasket(items),
		Spend: float64(len(items)),
	}
}

func TestWindowizeBasic(t *testing.T) {
	g := mayGrid(t, 2)
	h := retail.History{Customer: 9, Receipts: []retail.Receipt{
		receiptAt(g, 0, 1, 2),
		receiptAt(g, 10, 2, 3),
		receiptAt(g, 70, 4), // window 1
		// nothing in window 2
		receiptAt(g, 200, 5), // window 3
	}}
	wd, err := Windowize(h, g, -1)
	if err != nil {
		t.Fatal(err)
	}
	if wd.FirstIndex != 0 || wd.Len() != 4 {
		t.Fatalf("FirstIndex=%d Len=%d", wd.FirstIndex, wd.Len())
	}
	w0, _ := wd.At(0)
	if !w0.Items.Equal(retail.Basket{1, 2, 3}) {
		t.Fatalf("u0 = %v, want union [1 2 3]", w0.Items)
	}
	if w0.Receipts != 2 || w0.Spend != 4 {
		t.Fatalf("w0 receipts=%d spend=%v", w0.Receipts, w0.Spend)
	}
	w2, _ := wd.At(2)
	if len(w2.Items) != 0 || w2.Receipts != 0 {
		t.Fatalf("empty window materialized wrong: %+v", w2)
	}
	w3, _ := wd.At(3)
	if !w3.Items.Equal(retail.Basket{5}) {
		t.Fatalf("u3 = %v", w3.Items)
	}
	if _, ok := wd.At(4); ok {
		t.Fatal("At(4) should be out of range")
	}
	if _, ok := wd.At(-1); ok {
		t.Fatal("At(-1) should be out of range")
	}
}

func TestWindowizeThroughExtends(t *testing.T) {
	g := mayGrid(t, 2)
	h := retail.History{Customer: 1, Receipts: []retail.Receipt{receiptAt(g, 0, 1)}}
	wd, err := Windowize(h, g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if wd.Len() != 6 || wd.LastIndex() != 5 {
		t.Fatalf("Len=%d LastIndex=%d", wd.Len(), wd.LastIndex())
	}
	for k := 1; k <= 5; k++ {
		w, ok := wd.At(k)
		if !ok || len(w.Items) != 0 {
			t.Fatalf("trailing window %d: %+v, %v", k, w, ok)
		}
	}
	// through below the history's own end is a no-op.
	wd2, err := Windowize(h, g, -10)
	if err != nil {
		t.Fatal(err)
	}
	if wd2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", wd2.Len())
	}
}

func TestWindowizeEmptyHistory(t *testing.T) {
	g := mayGrid(t, 2)
	wd, err := Windowize(retail.History{Customer: 1}, g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if wd.Len() != 0 {
		t.Fatalf("empty history produced %d windows", wd.Len())
	}
}

func TestWindowizeOutOfOrder(t *testing.T) {
	g := mayGrid(t, 2)
	h := retail.History{Customer: 1, Receipts: []retail.Receipt{
		receiptAt(g, 10, 1),
		receiptAt(g, 5, 2),
	}}
	if _, err := Windowize(h, g, -1); err == nil {
		t.Fatal("out-of-order receipts accepted")
	}
}

func TestWindowizePartitionProperty(t *testing.T) {
	// Windowing must partition receipts: every receipt lands in exactly the
	// window containing its timestamp, unions preserve all items, and
	// windows are dense and chronological.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		span := r.Intn(3) + 1
		g, err := NewGrid(time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), Span{Months: span})
		if err != nil {
			return false
		}
		n := r.Intn(40) + 1
		offsets := make([]int, n)
		for i := range offsets {
			offsets[i] = r.Intn(800)
		}
		// Sort offsets to build a valid chronological history.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && offsets[j] < offsets[j-1]; j-- {
				offsets[j], offsets[j-1] = offsets[j-1], offsets[j]
			}
		}
		h := retail.History{Customer: 5}
		itemUniverse := map[retail.ItemID]bool{}
		for _, off := range offsets {
			items := []retail.ItemID{retail.ItemID(r.Intn(10) + 1), retail.ItemID(r.Intn(10) + 1)}
			for _, it := range items {
				itemUniverse[it] = true
			}
			h.Receipts = append(h.Receipts, receiptAt(g, off, items...))
		}
		wd, err := Windowize(h, g, -1)
		if err != nil {
			return false
		}
		// Dense indices and matching bounds.
		totalReceipts := 0
		seen := map[retail.ItemID]bool{}
		for i, w := range wd.Windows {
			if w.Index != wd.FirstIndex+i {
				return false
			}
			start, end := g.Bounds(w.Index)
			if !w.Start.Equal(start) || !w.End.Equal(end) {
				return false
			}
			totalReceipts += w.Receipts
			for _, it := range w.Items {
				seen[it] = true
			}
			if !w.Items.IsNormalized() {
				return false
			}
		}
		if totalReceipts != len(h.Receipts) {
			return false
		}
		if len(seen) != len(itemUniverse) {
			return false
		}
		// Each receipt's window must contain its items.
		for _, rec := range h.Receipts {
			w, ok := wd.At(g.Index(rec.Time))
			if !ok {
				return false
			}
			for _, it := range rec.Items {
				if !w.Items.Contains(it) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestWindowizeFromLeadingEmpties(t *testing.T) {
	g := mayGrid(t, 2)
	// First receipt in window 3; materialize from window 0.
	h := retail.History{Customer: 2, Receipts: []retail.Receipt{receiptAt(g, 200, 7)}}
	wd, err := WindowizeFrom(h, g, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if wd.FirstIndex != 0 || wd.LastIndex() != 5 {
		t.Fatalf("range = [%d,%d], want [0,5]", wd.FirstIndex, wd.LastIndex())
	}
	for k := 0; k < 3; k++ {
		w, ok := wd.At(k)
		if !ok || len(w.Items) != 0 || w.Receipts != 0 {
			t.Fatalf("leading window %d not empty: %+v", k, w)
		}
	}
	w3, _ := wd.At(3)
	if !w3.Items.Equal(retail.Basket{7}) {
		t.Fatalf("window 3 = %v", w3.Items)
	}
	// from beyond the first receipt must not truncate the receipts' range.
	wd2, err := WindowizeFrom(h, g, 10, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := wd2.At(3); !ok {
		t.Fatal("receipt window lost when from > first receipt window")
	}
	// Empty history: no windows regardless of range.
	wd3, err := WindowizeFrom(retail.History{Customer: 3}, g, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if wd3.Len() != 0 {
		t.Fatalf("empty history materialized %d windows", wd3.Len())
	}
}

// randomHistory builds a chronological history with rng-driven receipt
// spacing and basket contents.
func randomHistory(rng *rand.Rand, g Grid, customer retail.CustomerID) retail.History {
	h := retail.History{Customer: customer}
	at := g.Origin().Add(time.Duration(rng.Intn(720)) * time.Hour)
	for i := 0; i < 5+rng.Intn(60); i++ {
		items := make([]retail.ItemID, 0, 8)
		for p := 0; p < rng.Intn(8); p++ {
			items = append(items, retail.ItemID(rng.Intn(20)+1))
		}
		h.Receipts = append(h.Receipts, retail.Receipt{
			Time:  at,
			Items: retail.NewBasket(items),
			Spend: float64(rng.Intn(100)),
		})
		at = at.Add(time.Duration(rng.Intn(600)) * time.Hour) // 0–25 days, ties allowed
	}
	return h
}

// equalWindowed compares the observable fields of two windowed databases,
// including the nil-ness of each window's item set.
func equalWindowed(a, b Windowed) bool {
	if a.Customer != b.Customer || a.Grid != b.Grid || a.FirstIndex != b.FirstIndex || len(a.Windows) != len(b.Windows) {
		return false
	}
	for i := range a.Windows {
		wa, wb := a.Windows[i], b.Windows[i]
		if wa.Index != wb.Index || !wa.Start.Equal(wb.Start) || !wa.End.Equal(wb.End) ||
			wa.Receipts != wb.Receipts || wa.Spend != wb.Spend {
			return false
		}
		if (wa.Items == nil) != (wb.Items == nil) || !wa.Items.Equal(wb.Items) {
			return false
		}
	}
	return true
}

// TestWindowizeIntoMatchesWindowize: the reusing path must produce exactly
// the database the allocating path does — including when the same Windowed
// is reused across customers of different shapes, which is how population
// workers drive it.
func TestWindowizeIntoMatchesWindowize(t *testing.T) {
	g := mayGrid(t, 2)
	rng := rand.New(rand.NewSource(11))
	var scratch Windowed
	for trial := 0; trial < 200; trial++ {
		h := randomHistory(rng, g, retail.CustomerID(trial+1))
		through := rng.Intn(20) - 5
		want, err := Windowize(h, g, through)
		if err != nil {
			t.Fatal(err)
		}
		if err := WindowizeInto(&scratch, h, g, through); err != nil {
			t.Fatal(err)
		}
		if !equalWindowed(want, scratch) {
			t.Fatalf("trial %d: WindowizeInto diverged\nwant %+v\ngot  %+v", trial, want, scratch)
		}
	}
	// Reuse must also fully overwrite a larger previous database with a
	// smaller one (stale windows must not leak).
	big := retail.History{Customer: 1, Receipts: []retail.Receipt{receiptAt(g, 0, 1), receiptAt(g, 700, 2)}}
	if err := WindowizeInto(&scratch, big, g, -1); err != nil {
		t.Fatal(err)
	}
	small := retail.History{Customer: 2, Receipts: []retail.Receipt{receiptAt(g, 0, 3)}}
	if err := WindowizeInto(&scratch, small, g, -1); err != nil {
		t.Fatal(err)
	}
	want, _ := Windowize(small, g, -1)
	if !equalWindowed(want, scratch) {
		t.Fatalf("shrinking reuse diverged: %+v", scratch)
	}
	// Empty history clears the reused value too.
	if err := WindowizeInto(&scratch, retail.History{Customer: 3}, g, 10); err != nil {
		t.Fatal(err)
	}
	if scratch.Len() != 0 || scratch.Customer != 3 {
		t.Fatalf("empty-history reuse: %+v", scratch)
	}
}

func TestWindowizeIntoOutOfOrder(t *testing.T) {
	g := mayGrid(t, 2)
	h := retail.History{Customer: 1, Receipts: []retail.Receipt{
		receiptAt(g, 10, 1),
		receiptAt(g, 5, 2),
	}}
	var wd Windowed
	if err := WindowizeInto(&wd, h, g, -1); err == nil {
		t.Fatal("out-of-order receipts accepted")
	}
}

func TestSlice(t *testing.T) {
	g := mayGrid(t, 1)
	h := retail.History{Customer: 1, Receipts: []retail.Receipt{
		receiptAt(g, 0, 1),
		receiptAt(g, 35, 2),
		receiptAt(g, 65, 3),
		receiptAt(g, 100, 4),
	}}
	wd, err := Windowize(h, g, -1)
	if err != nil {
		t.Fatal(err)
	}
	s := wd.Slice(1, 2)
	if s.FirstIndex != 1 || s.Len() != 2 {
		t.Fatalf("Slice(1,2): first=%d len=%d", s.FirstIndex, s.Len())
	}
	w, ok := s.At(2)
	if !ok || !w.Items.Equal(retail.Basket{3}) {
		t.Fatalf("sliced At(2) = %+v, %v", w, ok)
	}
	// Clamping.
	s2 := wd.Slice(-5, 100)
	if s2.Len() != wd.Len() {
		t.Fatalf("clamped slice len %d != %d", s2.Len(), wd.Len())
	}
	// Empty result.
	s3 := wd.Slice(3, 1)
	if s3.Len() != 0 {
		t.Fatalf("inverted slice len = %d", s3.Len())
	}
}

func TestSpanString(t *testing.T) {
	if got := (Span{Months: 2}).String(); got != "2mo" {
		t.Fatalf("String = %q", got)
	}
}
