// Package window implements the windowed-database construction from the
// paper: a customer's chronological receipt list Di is cut into consecutive
// non-overlapping windows of span w, and each window k carries
// uk — the set of all products bought during the window — delimited by
// [tBk, tEk).
//
// The grid is global: windows are anchored at a shared origin and measured
// in calendar months (the unit of the paper's experiments; the x-axis of
// both figures is "number of months"). A global grid makes window index k
// comparable across customers, which the population-level evaluation
// (AUROC at window k) requires. For the paper's cohort of long-lived loyal
// customers the global and per-customer views coincide.
package window

import (
	"errors"
	"fmt"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

// Span is a window length in whole calendar months. The paper's selected
// span is two months.
type Span struct {
	Months int
}

// Validate reports an error for non-positive spans.
func (s Span) Validate() error {
	if s.Months < 1 {
		return fmt.Errorf("window: span must be >= 1 month, got %d", s.Months)
	}
	return nil
}

// String renders the span, e.g. "2mo".
func (s Span) String() string { return fmt.Sprintf("%dmo", s.Months) }

// Grid anchors span-sized windows at an origin timestamp. Window k covers
// [Origin + k·Span, Origin + (k+1)·Span) in calendar months. The origin is
// truncated to the first instant of its month in UTC so month arithmetic is
// exact.
type Grid struct {
	origin time.Time
	span   Span
}

// NewGrid builds a grid from an origin time and a span.
func NewGrid(origin time.Time, span Span) (Grid, error) {
	if err := span.Validate(); err != nil {
		return Grid{}, err
	}
	if origin.IsZero() {
		return Grid{}, errors.New("window: zero origin")
	}
	o := time.Date(origin.Year(), origin.Month(), 1, 0, 0, 0, 0, time.UTC)
	return Grid{origin: o, span: span}, nil
}

// Origin returns the grid origin (first instant of the origin month, UTC).
func (g Grid) Origin() time.Time { return g.origin }

// Span returns the window span.
func (g Grid) Span() Span { return g.span }

// MonthIndex returns the number of whole calendar months between the origin
// and t (negative if t precedes the origin month).
func (g Grid) MonthIndex(t time.Time) int {
	t = t.UTC()
	return (t.Year()-g.origin.Year())*12 + int(t.Month()) - int(g.origin.Month())
}

// Index returns the window index containing t. Times before the origin get
// negative indices (floor division).
func (g Grid) Index(t time.Time) int {
	m := g.MonthIndex(t)
	if m >= 0 {
		return m / g.span.Months
	}
	return -((-m-1)/g.span.Months + 1)
}

// Bounds returns the half-open time interval [start, end) of window k.
func (g Grid) Bounds(k int) (start, end time.Time) {
	start = g.origin.AddDate(0, k*g.span.Months, 0)
	end = g.origin.AddDate(0, (k+1)*g.span.Months, 0)
	return start, end
}

// MonthOfWindowEnd returns the month index (since origin) at which window k
// ends — the x-coordinate the paper plots window-k results at.
func (g Grid) MonthOfWindowEnd(k int) int { return (k + 1) * g.span.Months }

// Window is one entry (tBk, tEk, uk) of the windowed database.
type Window struct {
	Index int
	Start time.Time
	End   time.Time
	// Items is uk: the union of every basket bought in the window
	// (normalized). Empty when the customer made no purchase.
	Items retail.Basket
	// Receipts counts the store visits inside the window.
	Receipts int
	// Spend is the summed monetary value inside the window.
	Spend float64
}

// Windowed is the windowed database Dwi of one customer: a dense,
// chronologically ordered run of windows. Windows with no purchases are
// present with empty item sets — emptiness is signal (it is how attrition
// manifests), so the representation never elides them.
type Windowed struct {
	Customer retail.CustomerID
	Grid     Grid
	// FirstIndex is the grid index of Windows[0].
	FirstIndex int
	Windows    []Window

	// unionAcc/unionSpare are the reused accumulator pair
	// WindowizeFromInto merges each open window's item set in; they ride
	// on the Windowed so a worker reusing one via WindowizeInto pays for
	// the buffers once, not per customer.
	unionAcc   retail.Basket
	unionSpare retail.Basket
}

// Len returns the number of windows.
func (wd Windowed) Len() int { return len(wd.Windows) }

// At returns the window with grid index k, or ok=false when k is outside
// the materialized range.
func (wd Windowed) At(k int) (Window, bool) {
	i := k - wd.FirstIndex
	if i < 0 || i >= len(wd.Windows) {
		return Window{}, false
	}
	return wd.Windows[i], true
}

// LastIndex returns the grid index of the final window (FirstIndex-1 when
// empty).
func (wd Windowed) LastIndex() int { return wd.FirstIndex + len(wd.Windows) - 1 }

// Windowize cuts a history into the windowed database over grid g,
// materializing every window from the first receipt's window through
// window `through` (inclusive). Passing through < first window index
// materializes exactly the receipts' range. An empty history yields an
// empty Windowed.
//
// The history must be chronologically sorted (store.Builder guarantees
// this); out-of-order input returns an error rather than silently
// mis-binning.
func Windowize(h retail.History, g Grid, through int) (Windowed, error) {
	from := 0
	if len(h.Receipts) > 0 {
		from = g.Index(h.Receipts[0].Time)
	}
	return WindowizeFrom(h, g, from, through)
}

// WindowizeFrom is Windowize with an explicit starting window: windows from
// `from` through `through` are materialized (extended as needed to cover
// every receipt). Leading windows before the customer's first purchase are
// empty; whether they count as prior windows is the model's CountPolicy
// decision, not the windowing engine's.
func WindowizeFrom(h retail.History, g Grid, from, through int) (Windowed, error) {
	var wd Windowed
	if err := WindowizeFromInto(&wd, h, g, from, through); err != nil {
		return Windowed{}, err
	}
	// One-shot results don't reuse the union scratch; drop it rather than
	// pin two buffers for the Windowed's lifetime.
	wd.unionAcc, wd.unionSpare = nil, nil
	return wd, nil
}

// WindowizeInto is Windowize writing into a caller-owned Windowed, reusing
// its window-slice capacity: a population worker scoring customer after
// customer pays for the window array once instead of per customer. The
// result is identical to Windowize; wd's previous contents are discarded.
// On error wd's contents are unspecified. A Windowed being reused this way
// (including struct copies of it, which share the internal scratch
// buffers) is owned by one goroutine, like any value this function
// mutates.
func WindowizeInto(wd *Windowed, h retail.History, g Grid, through int) error {
	from := 0
	if len(h.Receipts) > 0 {
		from = g.Index(h.Receipts[0].Time)
	}
	return WindowizeFromInto(wd, h, g, from, through)
}

// WindowizeFromInto is WindowizeFrom writing into a caller-owned Windowed
// (see WindowizeInto).
func WindowizeFromInto(wd *Windowed, h retail.History, g Grid, from, through int) error {
	wd.Customer = h.Customer
	wd.Grid = g
	wd.FirstIndex = 0
	wd.Windows = wd.Windows[:0]
	if len(h.Receipts) == 0 {
		return nil
	}
	first := g.Index(h.Receipts[0].Time)
	if from < first {
		first = from
	}
	last := g.Index(h.Receipts[len(h.Receipts)-1].Time)
	if through > last {
		last = through
	}
	wd.FirstIndex = first
	n := last - first + 1
	if cap(wd.Windows) < n {
		wd.Windows = make([]Window, n)
	} else {
		wd.Windows = wd.Windows[:n]
	}
	for i := range wd.Windows {
		k := first + i
		start, end := g.Bounds(k)
		wd.Windows[i] = Window{Index: k, Start: start, End: end}
	}
	// Receipts are chronological, so windows fill one after another: the
	// open window's item set accumulates in a reused buffer pair (one
	// UnionInto per receipt, no allocation) and is copied out exactly once
	// when the window is done — instead of allocating a merged basket per
	// receipt.
	var prev time.Time
	acc, spare := wd.unionAcc[:0], wd.unionSpare[:0]
	cur := -1 // index into wd.Windows of the accumulating window
	flush := func() {
		if cur >= 0 {
			wd.Windows[cur].Items = append(retail.Basket{}, acc...)
		}
	}
	for ri, r := range h.Receipts {
		if ri > 0 && r.Time.Before(prev) {
			return fmt.Errorf("window: customer %d: receipts out of order at %d", h.Customer, ri)
		}
		prev = r.Time
		i := g.Index(r.Time) - first
		if i != cur {
			flush()
			cur = i
			acc = acc[:0]
		}
		spare = retail.UnionInto(spare, acc, r.Items)
		acc, spare = spare, acc
		w := &wd.Windows[i]
		w.Receipts++
		w.Spend += r.Spend
	}
	flush()
	wd.unionAcc, wd.unionSpare = acc, spare
	return nil
}

// Slice returns a shallow copy of wd restricted to grid indices
// [from, to] (inclusive), clamped to the materialized range.
func (wd Windowed) Slice(from, to int) Windowed {
	if from < wd.FirstIndex {
		from = wd.FirstIndex
	}
	if to > wd.LastIndex() {
		to = wd.LastIndex()
	}
	if to < from {
		return Windowed{Customer: wd.Customer, Grid: wd.Grid, FirstIndex: from}
	}
	return Windowed{
		Customer:   wd.Customer,
		Grid:       wd.Grid,
		FirstIndex: from,
		Windows:    wd.Windows[from-wd.FirstIndex : to-wd.FirstIndex+1],
	}
}
