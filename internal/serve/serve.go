// Package serve implements attritiond's HTTP layer: bounded-ingestion
// receipt POSTs, per-customer stability queries, alert delivery by
// long-poll or SSE, health and metrics — a thin, goroutine-free shell
// around stream.Ingestor. API.md is the wire reference; DESIGN.md
// "attritiond serving architecture" explains how the pieces fit.
//
// Handlers run on net/http's connection goroutines and never spawn their
// own (the determinism contract allows raw goroutines only in
// internal/population and internal/stream); all concurrency lives behind
// the Ingestor. Scored output (alerts, stability values, snapshots)
// remains a pure function of the accepted receipt sequence; the only
// wall-clock in this package is latency telemetry.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/gautrais/stability/internal/faultfs"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/stream"
)

// Config parameterizes a Server. The zero value is not usable: Monitor
// must hold a valid monitor configuration.
type Config struct {
	// Monitor configures the wrapped monitor (grid, model, β, warm-up).
	Monitor stream.Config
	// Shards is the ingestion shard count; <= 0 means GOMAXPROCS.
	Shards int
	// QueueBatches bounds the ingestion queue in batches; <= 0 means 64.
	QueueBatches int
	// Policy is the queue-overflow policy: block, shed, or reject (429).
	Policy stream.OverflowPolicy
	// MaxBatch caps receipts per POST; <= 0 means 10000. Larger batches
	// are refused with 413.
	MaxBatch int
	// MaxBodyBytes caps the POST body size; <= 0 means 8 MiB.
	MaxBodyBytes int64
	// AlertBuffer caps the in-memory alert log; <= 0 means 65536.
	AlertBuffer int
	// StatePath enables SMN1 persistence (restore on start, save on
	// Close and every SaveInterval). Empty disables persistence.
	StatePath string
	// SaveInterval is the background snapshot period; 0 disables it.
	SaveInterval time.Duration
	// FlushInterval is the alert-delivery liveness barrier period; 0
	// disables it.
	FlushInterval time.Duration
	// TTLInterval is the idle-customer eviction sweep period; 0 disables
	// the sweep. It only matters with Monitor.RetentionWindows > 0, and
	// reclaims memory without changing scored output: customers past the
	// horizon are already fully scored at close barriers.
	TTLInterval time.Duration
	// LongPollMax caps the ?wait= duration of GET /v1/alerts; <= 0 means
	// 30s.
	LongPollMax time.Duration
	// SSEHeartbeat is the SSE keep-alive comment period; <= 0 means 15s.
	SSEHeartbeat time.Duration
	// WriteDeadline bounds each response write; <= 0 means 1m. It replaces
	// a global http.Server WriteTimeout (which would kill SSE streams):
	// every handler arms a per-request deadline, and the streaming paths
	// roll it forward on every write, so only a stalled client trips it.
	WriteDeadline time.Duration
	// FollowPath switches ingestion to follow mode: the pipeline tails
	// this STB1 file via store.Follower instead of accepting POST
	// /v1/receipts (which answers 409 while following).
	FollowPath string
	// FollowInterval is the follow-mode poll period; <= 0 means 500ms.
	FollowInterval time.Duration
	// JournalPath enables the daemon-owned STB1 receipt journal: accepted
	// receipts are appended one segment per close barrier. Mutually
	// exclusive with FollowPath (a followed file is already the journal).
	JournalPath string
	// CompactInterval is the scheduled self-compaction period for
	// JournalPath; 0 disables the scheduled tick (Ingestor.Compact still
	// works on demand).
	CompactInterval time.Duration
	// FS is the filesystem under persistence, journal, and follower;
	// nil means the real one. Tests inject faults through it.
	FS faultfs.FS
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 10000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.LongPollMax <= 0 {
		c.LongPollMax = 30 * time.Second
	}
	if c.SSEHeartbeat <= 0 {
		c.SSEHeartbeat = 15 * time.Second
	}
	if c.WriteDeadline <= 0 {
		c.WriteDeadline = time.Minute
	}
	return c
}

// Server is the attritiond HTTP service: an Ingestor plus the handlers
// that expose it. Create with New, mount Handler on an http.Server, and
// Close on shutdown (after http.Server.Shutdown has drained handlers).
type Server struct {
	cfg       Config
	ing       *stream.Ingestor
	mux       *http.ServeMux
	metrics   *serveMetrics
	closing   chan struct{}
	closeOnce sync.Once
}

// New validates cfg, restores state from cfg.StatePath when present, and
// returns a serving-ready Server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ing, err := stream.NewIngestor(stream.IngestorConfig{
		Monitor:         cfg.Monitor,
		Shards:          cfg.Shards,
		QueueBatches:    cfg.QueueBatches,
		Policy:          cfg.Policy,
		AlertBuffer:     cfg.AlertBuffer,
		StatePath:       cfg.StatePath,
		SaveInterval:    cfg.SaveInterval,
		FlushInterval:   cfg.FlushInterval,
		TTLInterval:     cfg.TTLInterval,
		FollowPath:      cfg.FollowPath,
		FollowInterval:  cfg.FollowInterval,
		JournalPath:     cfg.JournalPath,
		CompactInterval: cfg.CompactInterval,
		FS:              cfg.FS,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		ing:     ing,
		mux:     http.NewServeMux(),
		metrics: newServeMetrics(),
		closing: make(chan struct{}),
	}
	s.route("POST /v1/receipts", "ingest", s.handleIngest)
	s.route("GET /v1/customers/{id}/stability", "stability", s.handleStability)
	s.route("POST /v1/stability:batch", "stability_batch", s.handleStabilityBatch)
	s.route("GET /v1/alerts", "alerts", s.handleAlerts)
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /readyz", "readyz", s.handleReadyz)
	s.route("GET /metrics", "metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler serving the attritiond API.
func (s *Server) Handler() http.Handler { return s.mux }

// Ingestor exposes the underlying ingestion pipeline (metrics, pause,
// snapshots) for embedding processes like cmd/loadgen's self-serve mode.
func (s *Server) Ingestor() *stream.Ingestor { return s.ing }

// Close drains the ingestion queue, persists the final snapshot when
// StatePath is set, and stops the pipeline. Call after the http.Server
// has shut down, so no handler is mid-enqueue.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { close(s.closing) })
	err := s.ing.Close()
	if errors.Is(err, stream.ErrIngestorClosed) {
		return nil
	}
	return err
}

// route mounts a handler wrapped with latency recording, a rolling
// per-request write deadline, and panic recovery: a panicking handler
// answers 500 and bumps panics_recovered instead of killing the
// connection goroutine's response (http.ErrAbortHandler, the sanctioned
// abort, is re-raised for net/http to handle).
func (s *Server) route(pattern, name string, h func(http.ResponseWriter, *http.Request) int) {
	counters := s.metrics.endpoints[name]
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := now()
		s.extendWriteDeadline(w)
		status := 0
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					panic(p)
				}
				s.metrics.panics.Add(1)
				// Best effort: when the handler already wrote headers this
				// cannot reach the wire, but the connection stays serving.
				status = writeError(w, http.StatusInternalServerError, "internal error")
			}
			counters.record(now().Sub(start), status)
		}()
		status = h(w, r)
	})
}

// extendWriteDeadline (re)arms the per-request write deadline. Errors are
// ignored: test recorders don't support deadlines, and a connection
// already past its deadline fails at the next write regardless.
func (s *Server) extendWriteDeadline(w http.ResponseWriter) {
	_ = http.NewResponseController(w).SetWriteDeadline(now().Add(s.cfg.WriteDeadline))
}

// writeJSON emits a JSON response and returns the status for latency
// accounting.
func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
	return status
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) int {
	return writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// handleIngest implements POST /v1/receipts: decode, drop stale receipts,
// and enqueue the rest under the configured backpressure policy.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) int {
	if s.cfg.FollowPath != "" {
		return writeError(w, http.StatusConflict, "ingestion is file-driven (-follow %s); POST /v1/receipts is disabled", s.cfg.FollowPath)
	}
	select {
	case <-s.closing:
		return writeError(w, http.StatusServiceUnavailable, "server is shutting down")
	default:
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := decodeIngest(r.Body, s.cfg.MaxBatch)
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) || errors.Is(err, ErrBatchTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		return writeError(w, status, "%v", err)
	}
	events := toEvents(req.Receipts)
	// Stale receipts (window already closed, or pre-origin) can never be
	// scored: the monitor would only surface them as barrier errors, so
	// refuse them here and report the count.
	watermark := s.ing.Watermark()
	fresh := events[:0]
	stale := 0
	for _, ev := range events {
		if k := s.cfg.Monitor.Grid.Index(ev.Time); k < watermark || ev.Time.Before(s.cfg.Monitor.Grid.Origin()) {
			stale++
			continue
		}
		fresh = append(fresh, ev)
	}
	if stale > 0 {
		s.metrics.stale.Add(uint64(stale))
	}
	accepted, err := s.ing.Enqueue(fresh)
	switch {
	case errors.Is(err, stream.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "ingestion queue full", RetryAfterMS: 1000})
		return http.StatusTooManyRequests
	case errors.Is(err, stream.ErrIngestorClosed):
		return writeError(w, http.StatusServiceUnavailable, "server is shutting down")
	case err != nil:
		return writeError(w, http.StatusInternalServerError, "%v", err)
	}
	resp := IngestResponse{Stale: stale}
	if accepted {
		resp.Accepted = len(fresh)
	} else {
		resp.Shed = len(fresh)
	}
	return writeJSON(w, http.StatusOK, resp)
}

// handleStability implements GET /v1/customers/{id}/stability.
func (s *Server) handleStability(w http.ResponseWriter, r *http.Request) int {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "invalid customer id %q", r.PathValue("id"))
	}
	value, gridIndex, ok := s.ing.Stability(retail.CustomerID(id))
	if !ok {
		return writeError(w, http.StatusNotFound, "customer %d unknown or not yet scored", id)
	}
	start, end := s.cfg.Monitor.Grid.Bounds(gridIndex)
	return writeJSON(w, http.StatusOK, StabilityResponse{
		Customer:  id,
		Stability: value,
		Window:    gridIndex,
		Start:     start,
		End:       end,
	})
}

// handleStabilityBatch implements POST /v1/stability:batch: NDJSON queries
// in, NDJSON answers out, one line per query in request order. All queries
// are resolved through a single Ingestor.Stabilities call — one monitor
// synchronization for the whole fan-in instead of one per customer — and
// each response line is byte-identical to what the corresponding single
// GET /v1/customers/{id}/stability would return (a StabilityResponse for a
// scored customer, the same not-found ErrorResponse body for an unknown
// one; the differential tests pin this at shards {1,2,4,8}). Batches over
// Config.MaxBatch answer 413 before any lookup runs.
func (s *Server) handleStabilityBatch(w http.ResponseWriter, r *http.Request) int {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ids, err := decodeBatchQueries(r.Body, s.cfg.MaxBatch)
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) || errors.Is(err, ErrBatchTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		return writeError(w, status, "%v", err)
	}
	rows := s.ing.Stabilities(ids, nil)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, row := range rows {
		if !row.OK {
			if enc.Encode(ErrorResponse{Error: fmt.Sprintf("customer %d unknown or not yet scored", row.Customer)}) != nil {
				return http.StatusOK
			}
			continue
		}
		start, end := s.cfg.Monitor.Grid.Bounds(row.GridIndex)
		if enc.Encode(StabilityResponse{
			Customer:  uint64(row.Customer),
			Stability: row.Value,
			Window:    row.GridIndex,
			Start:     start,
			End:       end,
		}) != nil {
			return http.StatusOK
		}
	}
	return http.StatusOK
}

// maxAlertsPerPoll caps ?max= on GET /v1/alerts; larger (or zero) values
// are clamped so a single poll response stays bounded.
const maxAlertsPerPoll = 100000

// handleAlerts implements GET /v1/alerts: a single poll by default, a
// long-poll with ?wait=, or an SSE stream with ?stream=sse (or Accept:
// text/event-stream). Clients resume with ?after=<last seq>.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) int {
	q := r.URL.Query()
	after, err := parseUintParam(q.Get("after"), 0)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "invalid after: %v", err)
	}
	max, err := parseUintParam(q.Get("max"), 1000)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "invalid max: %v", err)
	}
	// AlertsSince treats max <= 0 as unlimited; clamp so neither ?max=0 nor
	// a value that wraps negative in the int conversion bypasses the cap.
	if max == 0 || max > maxAlertsPerPoll {
		max = maxAlertsPerPoll
	}
	if q.Get("stream") == "sse" || r.Header.Get("Accept") == "text/event-stream" {
		return s.streamSSE(w, r, after)
	}
	var wait time.Duration
	if ws := q.Get("wait"); ws != "" {
		wait, err = time.ParseDuration(ws)
		if err != nil {
			return writeError(w, http.StatusBadRequest, "invalid wait: %v", err)
		}
		if wait > s.cfg.LongPollMax {
			wait = s.cfg.LongPollMax
		}
	}
	batch, oldest, changed := s.ing.AlertsSince(after, int(max))
	if len(batch) == 0 && wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-changed:
			batch, oldest, _ = s.ing.AlertsSince(after, int(max))
		case <-timer.C:
		case <-r.Context().Done():
		case <-s.closing:
		}
		// The wait may have consumed most of the request's deadline; the
		// response write gets a fresh one.
		s.extendWriteDeadline(w)
	}
	resp := AlertsResponse{Alerts: make([]AlertOut, 0, len(batch)), Next: after, Oldest: oldest}
	for _, a := range batch {
		resp.Alerts = append(resp.Alerts, toAlertOut(a))
	}
	if n := len(batch); n > 0 {
		resp.Next = batch[n-1].Seq
	}
	return writeJSON(w, http.StatusOK, resp)
}

// streamSSE delivers alerts as server-sent events until the client
// disconnects or the server closes. Framing (one event per alert):
//
//	id: <seq>
//	event: alert
//	data: <AlertOut JSON>
//
// with ": keep-alive" comment lines between publications. Clients resume
// with ?after= or the standard Last-Event-ID header.
func (s *Server) streamSSE(w http.ResponseWriter, r *http.Request, after uint64) int {
	flusher, ok := w.(http.Flusher)
	if !ok {
		return writeError(w, http.StatusNotImplemented, "response writer does not support streaming")
	}
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		if v, err := strconv.ParseUint(lei, 10, 64); err == nil && v > after {
			after = v
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	heartbeat := time.NewTicker(s.cfg.SSEHeartbeat)
	defer heartbeat.Stop()
	for {
		// Roll the write deadline forward each round: the select below
		// wakes at least every heartbeat, so a live client keeps the
		// stream open indefinitely while a stalled one trips the deadline.
		s.extendWriteDeadline(w)
		batch, _, changed := s.ing.AlertsSince(after, 0)
		for _, a := range batch {
			payload, err := json.Marshal(toAlertOut(a))
			if err != nil {
				return http.StatusOK
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: alert\ndata: %s\n\n", a.Seq, payload); err != nil {
				return http.StatusOK
			}
			after = a.Seq
		}
		flusher.Flush()
		select {
		case <-changed:
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return http.StatusOK
			}
			flusher.Flush()
		case <-r.Context().Done():
			return http.StatusOK
		case <-s.closing:
			return http.StatusOK
		}
	}
}

// handleHealthz implements GET /healthz — the liveness probe. It answers
// 200 "ok" as long as the process serves requests, even when a
// maintenance loop is degraded (restarting a live daemon loses queued
// receipts and helps nothing); the degraded detail rides along for
// operators. Only shutdown flips it to 503 "closing".
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) int {
	health := s.ing.Health()
	resp := HealthResponse{
		Status:    "ok",
		Customers: s.ing.Customers(),
		Watermark: s.ing.Watermark(),
		Degraded:  health.Degraded,
		Reasons:   health.Reasons,
	}
	status := http.StatusOK
	select {
	case <-s.closing:
		resp.Status = "closing"
		status = http.StatusServiceUnavailable
	default:
	}
	return writeJSON(w, status, resp)
}

// handleReadyz implements GET /readyz — the readiness probe. Degraded
// maintenance (saver failing, compactor backing off, follower stalled)
// means the daemon should stop receiving new traffic but keep running, so
// degraded and closing both answer 503 here while /healthz stays 200.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) int {
	health := s.ing.Health()
	resp := HealthResponse{
		Status:    "ready",
		Customers: s.ing.Customers(),
		Watermark: s.ing.Watermark(),
		Degraded:  health.Degraded,
		Reasons:   health.Reasons,
	}
	status := http.StatusOK
	if health.Degraded {
		resp.Status = "degraded"
		status = http.StatusServiceUnavailable
	}
	select {
	case <-s.closing:
		resp.Status = "closing"
		status = http.StatusServiceUnavailable
	default:
	}
	return writeJSON(w, status, resp)
}

// handleMetrics implements GET /metrics: ingestion counters + serving
// counters + per-endpoint latency, as one flat JSON object.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) int {
	return writeJSON(w, http.StatusOK, MetricsResponse{
		IngestorMetrics: s.ing.Metrics(),
		ReceiptsStale:   s.metrics.stale.Load(),
		PanicsRecovered: s.metrics.panics.Load(),
		Endpoints:       s.metrics.snapshot(),
	})
}

func parseUintParam(s string, def uint64) (uint64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseUint(s, 10, 64)
}
