// Edge-hardening tests: handler panic recovery, liveness-vs-readiness
// under a degraded maintenance loop, follow-mode ingestion over HTTP, and
// SSE streams outliving the per-request write deadline. These are the
// serving-layer half of the self-healing story; the pipeline half lives in
// internal/stream's recovery suite.
package serve

import (
	"bufio"
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/gautrais/stability/internal/faultfs"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/store"
)

// waitServe polls cond for up to 20s (maintenance loops run on the
// drainer's tickers, so state changes land asynchronously).
func waitServe(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for tries := 0; tries < 20000; tries++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// appendReceiptSegment appends one STB1 segment holding batch to path, as
// an external snapshot writer growing the followed chain would.
func appendReceiptSegment(t *testing.T, path string, batch []ReceiptIn) {
	t.Helper()
	b := store.NewBuilder()
	for _, rc := range batch {
		items := make([]retail.ItemID, len(rc.Items))
		for j, it := range rc.Items {
			items[j] = retail.ItemID(it)
		}
		if err := b.Add(retail.CustomerID(rc.Customer), rc.Time, items, 0); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := b.Build().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServerPanicRecovery pins the panic wrapper: a panicking handler
// answers 500, bumps panics_recovered, and the daemon keeps serving — both
// for a panic before any write and for one after headers went out.
func TestServerPanicRecovery(t *testing.T) {
	s, ts := testServer(t, nil)
	s.route("GET /panic-test", "metrics", func(http.ResponseWriter, *http.Request) int {
		panic("boom")
	})
	s.route("GET /panic-late", "metrics", func(w http.ResponseWriter, _ *http.Request) int {
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write([]byte("partial")); err != nil {
			t.Errorf("partial write: %v", err)
		}
		panic("boom after headers")
	})

	var e ErrorResponse
	if code := getJSON(t, ts.URL, "/panic-test", &e); code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", code)
	}
	if e.Error != "internal error" {
		t.Fatalf("panicking handler: error %q", e.Error)
	}

	// Panic after the handler already wrote: the 500 cannot reach the wire,
	// but the connection must complete instead of being torn down.
	resp, err := http.Get(ts.URL + "/panic-late")
	if err != nil {
		t.Fatalf("panic-late request died: %v", err)
	}
	resp.Body.Close()

	var m MetricsResponse
	if code := getJSON(t, ts.URL, "/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics after panics: status %d", code)
	}
	if m.PanicsRecovered != 2 {
		t.Fatalf("PanicsRecovered = %d, want 2", m.PanicsRecovered)
	}

	// The daemon is still fully serving.
	var h HealthResponse
	if code := getJSON(t, ts.URL, "/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz after panics: status %d body %+v", code, h)
	}
	g := testGrid(t)
	if code := postReceipts(t, ts.URL, []ReceiptIn{
		{Customer: 7, Time: g.Origin().Add(time.Hour), Items: []uint32{1, 2}},
	}, nil); code != http.StatusOK {
		t.Fatalf("ingest after panics: status %d", code)
	}
}

// TestServerReadyzDegradedFault drives the periodic saver into persistent
// failure through a faultfs failpoint and pins the probe split: /readyz
// flips to 503 "degraded" with reasons while /healthz stays 200 "ok" (the
// process is live; restarting it would only lose queued receipts). Healing
// the filesystem flips readiness back without a restart.
func TestServerReadyzDegradedFault(t *testing.T) {
	in := faultfs.NewInjector(faultfs.OS{})
	in.Arm(faultfs.Failpoint{Op: faultfs.OpCreate, PathSuffix: ".tmp", Persistent: true})
	s, ts := testServer(t, func(c *Config) {
		c.StatePath = filepath.Join(t.TempDir(), "mon.smn")
		c.SaveInterval = time.Millisecond
		c.FS = in
	})
	g := testGrid(t)
	if code := postReceipts(t, ts.URL, []ReceiptIn{
		{Customer: 3, Time: g.Origin().Add(time.Hour), Items: []uint32{1}},
	}, nil); code != http.StatusOK {
		t.Fatalf("POST: status %d", code)
	}

	var ready HealthResponse
	waitServe(t, "readyz to report degraded", func() bool {
		return getJSON(t, ts.URL, "/readyz", &ready) == http.StatusServiceUnavailable &&
			ready.Status == "degraded"
	})
	if !ready.Degraded || len(ready.Reasons) == 0 {
		t.Fatalf("degraded readyz body lacks detail: %+v", ready)
	}
	if !strings.Contains(strings.Join(ready.Reasons, "; "), "saver") {
		t.Fatalf("degraded_reasons does not name the saver: %v", ready.Reasons)
	}

	// Liveness is unaffected: 200 "ok", with the degraded detail riding
	// along for operators.
	var live HealthResponse
	if code := getJSON(t, ts.URL, "/healthz", &live); code != http.StatusOK || live.Status != "ok" {
		t.Fatalf("healthz while degraded: status %d body %+v", code, live)
	}
	if !live.Degraded || len(live.Reasons) == 0 {
		t.Fatalf("healthz while degraded lacks detail: %+v", live)
	}
	var m MetricsResponse
	getJSON(t, ts.URL, "/metrics", &m)
	if !m.Degraded || m.StateSaveFailures == 0 {
		t.Fatalf("metrics while degraded: degraded=%v save_failures=%d", m.Degraded, m.StateSaveFailures)
	}

	// Heal the filesystem: the next successful save cycle clears the streak
	// and readiness recovers — no restart involved.
	in.Reset()
	waitServe(t, "readyz to heal", func() bool {
		var h HealthResponse
		return getJSON(t, ts.URL, "/readyz", &h) == http.StatusOK && h.Status == "ready" && !h.Degraded
	})

	if err := s.Close(); err != nil {
		t.Fatalf("close after heal: %v", err)
	}
}

// TestServerFollowModeDifferential runs the daemon in follow mode against
// a snapshot chain written segment by segment and pins the HTTP-visible
// output: POST /v1/receipts answers 409, and the delivered alert bytes
// equal the sequential reference replay of the same receipts.
func TestServerFollowModeDifferential(t *testing.T) {
	feed := testFeed(t, 31, 10, 400)
	want, _ := referenceReplay(t, testMonitorConfig(t), feed)

	stb := filepath.Join(t.TempDir(), "feed.stb")
	s, ts := testServer(t, func(c *Config) {
		c.Shards = 4
		c.FollowPath = stb
		c.FollowInterval = time.Millisecond
	})

	var e ErrorResponse
	if code := postReceipts(t, ts.URL, feed[:1], &e); code != http.StatusConflict {
		t.Fatalf("POST in follow mode: status %d, want 409", code)
	}
	if !strings.Contains(e.Error, "file-driven") {
		t.Fatalf("409 body does not explain follow mode: %q", e.Error)
	}

	appendReceiptSegment(t, stb, feed[:150])
	appendReceiptSegment(t, stb, feed[150:])
	waitServe(t, "follower to drain the chain", func() bool {
		return s.Ingestor().Metrics().ReceiptsIngested == uint64(len(feed))
	})
	waitWatermark(t, s, want[len(want)-1].GridIndex+1)

	got := fetchAlerts(t, ts.URL)
	var wantWire bytes.Buffer
	if err := EncodeAlerts(&wantWire, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeWire(t, got), wantWire.Bytes()) {
		t.Fatalf("follow-mode alert bytes diverge from the sequential replay (%d vs %d alerts)",
			len(got), len(want))
	}

	var m MetricsResponse
	getJSON(t, ts.URL, "/metrics", &m)
	if m.FollowPolls == 0 {
		t.Fatal("follow_polls never counted")
	}
}

// TestServerSSEOutlivesWriteDeadline streams SSE through a real TCP server
// with a write deadline several times shorter than the stream's life. The
// rolling per-request deadline must keep a live client connected (20
// heartbeats at 40ms span ~800ms against a 150ms deadline) and still
// deliver alerts published long after the first deadline would have hit.
func TestServerSSEOutlivesWriteDeadline(t *testing.T) {
	feed := testFeed(t, 11, 12, 400)
	s, ts := testServer(t, func(c *Config) {
		c.WriteDeadline = 150 * time.Millisecond
		c.SSEHeartbeat = 40 * time.Millisecond
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/alerts?stream=sse", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Heartbeats arrive one per 40ms, so reading 20 of them proves the
	// connection survived well past five 150ms deadlines.
	br := bufio.NewReader(resp.Body)
	heartbeats := 0
	for heartbeats < 20 {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream died after %d heartbeats: %v", heartbeats, err)
		}
		if strings.HasPrefix(line, ": keep-alive") {
			heartbeats++
		}
	}

	// Now publish alerts and confirm the same stream still delivers them.
	if ok, err := s.Ingestor().Enqueue(toEvents(feed)); !ok || err != nil {
		t.Fatalf("enqueue: ok=%v err=%v", ok, err)
	}
	waitServe(t, "feed to drain", func() bool {
		return s.Ingestor().Metrics().ReceiptsIngested == uint64(len(feed))
	})
	if emitted := s.Ingestor().Metrics().AlertsEmitted; emitted == 0 {
		t.Fatal("feed emitted no alerts before the final barrier")
	}
	sawAlert := false
	for tries := 0; tries < 2000 && !sawAlert; tries++ {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream died while waiting for an alert: %v", err)
		}
		sawAlert = strings.HasPrefix(line, "event: alert")
	}
	if !sawAlert {
		t.Fatal("no alert event arrived on the long-lived stream")
	}
}
