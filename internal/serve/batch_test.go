package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// postBatch POSTs an NDJSON stability batch and returns the status code and
// raw response body.
func postBatch(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/stability:batch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// getRaw GETs a path and returns the status code and raw response body.
func getRaw(t *testing.T, url, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestServerStabilityBatchDifferential is the batch half of the serving
// determinism contract: at every shard count, the POST /v1/stability:batch
// response must be byte-identical to the concatenation of the N single
// GET /v1/customers/{id}/stability response bodies for the same ids in the
// same order — scored and unknown customers alike (the single 404 body is
// a batch line too). One shard-fanned lookup, N lock round trips: same
// bytes.
func TestServerStabilityBatchDifferential(t *testing.T) {
	feed := testFeed(t, 23, 30, 700)
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s, ts := testServer(t, func(c *Config) { c.Shards = shards })
			if code := postReceipts(t, ts.URL, feed, nil); code != http.StatusOK {
				t.Fatalf("POST receipts: status %d", code)
			}
			waitWatermark(t, s, 1)

			// Every customer in the feed — scored or not — plus ids the
			// daemon has never seen, interleaved so shard fan-in and
			// miss lines are both exercised mid-batch.
			var ids []uint64
			seen := map[uint64]bool{}
			for _, rc := range feed {
				if !seen[rc.Customer] {
					seen[rc.Customer] = true
					ids = append(ids, rc.Customer, rc.Customer+1) // +1 is almost surely unknown
				}
			}
			var req strings.Builder
			for _, id := range ids {
				fmt.Fprintf(&req, "{\"customer\":%d}\n", id)
			}
			code, batchBody := postBatch(t, ts.URL, req.String())
			if code != http.StatusOK {
				t.Fatalf("batch: status %d: %s", code, batchBody)
			}

			var singles bytes.Buffer
			okCount := 0
			for _, id := range ids {
				scode, body := getRaw(t, ts.URL, fmt.Sprintf("/v1/customers/%d/stability", id))
				if scode == http.StatusOK {
					okCount++
				} else if scode != http.StatusNotFound {
					t.Fatalf("single query %d: status %d", id, scode)
				}
				singles.Write(body)
			}
			if okCount == 0 {
				t.Fatal("no customer scored; differential is vacuous")
			}
			if !bytes.Equal(batchBody, singles.Bytes()) {
				t.Fatalf("batch response differs from %d concatenated single responses\nbatch:\n%s\nsingles:\n%s",
					len(ids), batchBody, singles.Bytes())
			}
		})
	}
}

// TestServerStabilityBatchValidation covers the edges: empty batch, the
// MaxBatch cap (413 before any lookup), and malformed NDJSON (400, never a
// torn 200).
func TestServerStabilityBatchValidation(t *testing.T) {
	_, ts := testServer(t, func(c *Config) { c.MaxBatch = 3 })

	if code, body := postBatch(t, ts.URL, ""); code != http.StatusOK || len(body) != 0 {
		t.Errorf("empty batch: status %d body %q, want 200 with empty body", code, body)
	}
	over := strings.Repeat("{\"customer\":1}\n", 4)
	if code, _ := postBatch(t, ts.URL, over); code != http.StatusRequestEntityTooLarge {
		t.Errorf("over-cap batch: status %d, want 413", code)
	}
	if code, _ := postBatch(t, ts.URL, "{\"customer\":1}\n{nope}\n"); code != http.StatusBadRequest {
		t.Errorf("malformed line: status %d, want 400", code)
	}
	// In-cap unknown customers answer 200 with one not-found line each,
	// mirroring the single endpoint's 404 body.
	code, body := postBatch(t, ts.URL, "{\"customer\":42}\n")
	if code != http.StatusOK {
		t.Fatalf("unknown customer batch: status %d", code)
	}
	want := "{\"error\":\"customer 42 unknown or not yet scored\"}\n"
	if string(body) != want {
		t.Errorf("unknown customer line = %q, want %q", body, want)
	}
}
