package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/stream"
	"github.com/gautrais/stability/internal/window"
)

func testGrid(t *testing.T) window.Grid {
	t.Helper()
	g, err := window.NewGrid(time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), window.Span{Months: 2})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testMonitorConfig(t *testing.T) stream.Config {
	t.Helper()
	return stream.Config{
		Grid:          testGrid(t),
		Model:         core.Options{Alpha: 2},
		Beta:          0.7,
		TopJ:          3,
		WarmupWindows: 2,
	}
}

// testFeed builds the same kind of time-sorted multi-customer feed the
// stream tests use: ids spread across shards, baskets drawn from a small
// catalog so stability erodes and alerts fire.
func testFeed(t *testing.T, seed int64, customers, events int) []ReceiptIn {
	t.Helper()
	g := testGrid(t)
	r := rand.New(rand.NewSource(seed))
	day := 0
	feed := make([]ReceiptIn, 0, events)
	for i := 0; i < events; i++ {
		day += r.Intn(6)
		items := make([]uint32, r.Intn(5))
		for j := range items {
			items[j] = uint32(r.Intn(8) + 1)
		}
		feed = append(feed, ReceiptIn{
			Customer: uint64(r.Intn(customers)*7919 + 1),
			Time:     g.Origin().AddDate(0, 0, day).Add(7 * time.Hour),
			Items:    items,
		})
	}
	return feed
}

// referenceReplay drives the feed through the sequential single-threaded
// Monitor under the daemon's exact barrier rule (close every provably
// complete window when a receipt's month advances) and returns the
// delivery-sequenced alerts plus the final SMN1 snapshot — the ground
// truth the HTTP pipeline must reproduce byte for byte.
func referenceReplay(t *testing.T, cfg stream.Config, feed []ReceiptIn) ([]stream.SeqAlert, []byte) {
	t.Helper()
	m, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	origin := cfg.Grid.Origin()
	span := cfg.Grid.Span().Months
	maxMonth := math.MinInt / 2
	lastClosedK := -1
	var alerts []stream.SeqAlert
	var pending []stream.Alert
	emit := func(batch []stream.Alert) {
		sort.Slice(batch, func(i, j int) bool {
			if batch[i].GridIndex != batch[j].GridIndex {
				return batch[i].GridIndex < batch[j].GridIndex
			}
			return batch[i].Customer < batch[j].Customer
		})
		for _, a := range batch {
			alerts = append(alerts, stream.SeqAlert{Seq: uint64(len(alerts)) + 1, Alert: a})
		}
	}
	for _, rc := range feed {
		utc := rc.Time.UTC()
		mo := (utc.Year()-origin.Year())*12 + int(utc.Month()) - int(origin.Month())
		if mo > maxMonth {
			maxMonth = mo
			if closeK := mo/span - 1; closeK > lastClosedK {
				pending = append(pending, m.CloseThrough(closeK)...)
				emit(pending)
				pending = nil
				lastClosedK = closeK
			}
		}
		items := make([]retail.ItemID, len(rc.Items))
		for j, it := range rc.Items {
			items[j] = retail.ItemID(it)
		}
		a, err := m.Ingest(retail.CustomerID(rc.Customer), rc.Time, retail.NewBasket(items))
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, a...)
	}
	emit(pending)
	var snap bytes.Buffer
	if err := m.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	return alerts, snap.Bytes()
}

// testServer builds a Server plus an httptest front end; mutate tweaks the
// config before New.
func testServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Monitor: testMonitorConfig(t), Shards: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postReceipts POSTs one batch and decodes the response body into out
// (when non-nil), returning the status code.
func postReceipts(t *testing.T, url string, batch []ReceiptIn, out any) int {
	t.Helper()
	body, err := json.Marshal(IngestRequest{Receipts: batch})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/receipts", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode ingest response: %v", err)
		}
	}
	return resp.StatusCode
}

// getJSON GETs a path and decodes the JSON body, returning the status.
func getJSON(t *testing.T, url, path string, out any) int {
	t.Helper()
	resp, err := http.Get(url + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

// fetchAlerts pages through GET /v1/alerts with a small page size until it
// catches up.
func fetchAlerts(t *testing.T, url string) []AlertOut {
	t.Helper()
	var out []AlertOut
	after := uint64(0)
	for {
		var page AlertsResponse
		if code := getJSON(t, url, fmt.Sprintf("/v1/alerts?after=%d&max=57", after), &page); code != http.StatusOK {
			t.Fatalf("GET /v1/alerts: status %d", code)
		}
		out = append(out, page.Alerts...)
		if len(page.Alerts) == 0 {
			return out
		}
		after = page.Next
	}
}

// encodeWire renders alerts in the wire form (one AlertOut JSON per line),
// the byte-level comparator of the differential tests.
func encodeWire(t *testing.T, alerts []AlertOut) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, a := range alerts {
		if err := enc.Encode(a); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// waitWatermark polls until the drainer has advanced the watermark to at
// least k (barriers fire asynchronously on the drainer goroutine).
func waitWatermark(t *testing.T, s *Server, k int) {
	t.Helper()
	for tries := 0; tries < 2000; tries++ {
		if s.Ingestor().Watermark() >= k {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("watermark never reached %d (at %d)", k, s.Ingestor().Watermark())
}

// TestServerDifferential is the daemon-level half of the determinism
// contract: for every shard count and every backpressure policy, receipts
// POSTed through the HTTP layer yield an alert stream and a persisted SMN1
// snapshot byte-identical to a sequential Monitor replay of the same feed.
func TestServerDifferential(t *testing.T) {
	feed := testFeed(t, 11, 12, 400)
	wantAlerts, wantSnap := referenceReplay(t, testMonitorConfig(t), feed)
	if len(wantAlerts) == 0 {
		t.Fatal("reference produced no alerts; feed too tame to prove anything")
	}
	var wantWire bytes.Buffer
	if err := EncodeAlerts(&wantWire, wantAlerts); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, policy := range []stream.OverflowPolicy{stream.PolicyBlock, stream.PolicyShed, stream.PolicyReject} {
			t.Run(fmt.Sprintf("shards=%d/policy=%s", shards, policy), func(t *testing.T) {
				state := filepath.Join(t.TempDir(), "mon.smn")
				s, ts := testServer(t, func(c *Config) {
					c.Shards = shards
					c.Policy = policy
					c.StatePath = state
					// Large enough that shed/reject never trigger: overflow-free
					// runs must be identical under every policy.
					c.QueueBatches = len(feed)
					c.FlushInterval = time.Millisecond
				})
				for start := 0; start < len(feed); start += 19 {
					end := start + 19
					if end > len(feed) {
						end = len(feed)
					}
					var ir IngestResponse
					if code := postReceipts(t, ts.URL, feed[start:end], &ir); code != http.StatusOK {
						t.Fatalf("POST batch at %d: status %d", start, code)
					}
					if ir.Accepted != end-start || ir.Shed != 0 || ir.Stale != 0 {
						t.Fatalf("POST batch at %d: disposition %+v", start, ir)
					}
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				gotWire := encodeWire(t, fetchAlerts(t, ts.URL))
				if !bytes.Equal(wantWire.Bytes(), gotWire) {
					t.Error("alert wire bytes differ from sequential Monitor replay")
				}
				gotSnap, err := os.ReadFile(state)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wantSnap, gotSnap) {
					t.Error("persisted snapshot differs from sequential Monitor replay")
				}
			})
		}
	}
}

// TestServerOffsetTimestamps POSTs the feed with every timestamp spelled
// in a non-UTC zone, with evening instants so spellings like
// 2012-07-01T01:30:00+05:30 (June 30 in UTC) name a month their UTC
// reading hasn't reached, and pins the wire output byte-identical to the
// sequential replay. Regression test: the drainer indexed months in the
// spelling's own zone while the stale filter used Grid.Index (UTC), so
// such receipts closed windows early and the two layers disagreed.
func TestServerOffsetTimestamps(t *testing.T) {
	zone := time.FixedZone("UTC+5:30", 5*3600+1800)
	feed := testFeed(t, 11, 12, 400)
	crossings := 0
	for i := range feed {
		// 07:00 → 20:00 UTC, spelled 01:30 next day in the +05:30 zone.
		feed[i].Time = feed[i].Time.Add(13 * time.Hour).In(zone)
		if feed[i].Time.Month() != feed[i].Time.UTC().Month() {
			crossings++
		}
	}
	if crossings == 0 {
		t.Fatal("no spelling crosses a month boundary; feed proves nothing")
	}
	wantAlerts, wantSnap := referenceReplay(t, testMonitorConfig(t), feed)
	if len(wantAlerts) == 0 {
		t.Fatal("reference produced no alerts; feed too tame to prove anything")
	}
	var wantWire bytes.Buffer
	if err := EncodeAlerts(&wantWire, wantAlerts); err != nil {
		t.Fatal(err)
	}
	state := filepath.Join(t.TempDir(), "mon.smn")
	s, ts := testServer(t, func(c *Config) { c.Shards = 4; c.StatePath = state })
	for start := 0; start < len(feed); start += 19 {
		end := start + 19
		if end > len(feed) {
			end = len(feed)
		}
		var ir IngestResponse
		if code := postReceipts(t, ts.URL, feed[start:end], &ir); code != http.StatusOK {
			t.Fatalf("POST batch at %d: status %d", start, code)
		}
		if ir.Accepted != end-start || ir.Stale != 0 {
			t.Fatalf("POST batch at %d: disposition %+v", start, ir)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if gotWire := encodeWire(t, fetchAlerts(t, ts.URL)); !bytes.Equal(wantWire.Bytes(), gotWire) {
		t.Error("offset-spelled feed: alert wire bytes differ from sequential replay")
	}
	gotSnap, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantSnap, gotSnap) {
		t.Error("offset-spelled feed: persisted snapshot differs from sequential replay")
	}
}

// TestServerCloseConcurrent is a regression test: two racing Close calls
// used to both reach close(s.closing) and the loser panicked.
func TestServerCloseConcurrent(t *testing.T) {
	s, _ := testServer(t, nil)
	const callers = 4
	done := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() { done <- s.Close() }()
	}
	for i := 0; i < callers; i++ {
		if err := <-done; err != nil {
			t.Errorf("concurrent Close: %v", err)
		}
	}
}

// TestServerShutdownRoundTrip kills the daemon mid-feed and restarts it
// from the persisted state: the concatenated alert streams must equal an
// uninterrupted run's, modulo the per-process sequence numbers.
func TestServerShutdownRoundTrip(t *testing.T) {
	feed := testFeed(t, 23, 10, 360)
	wantAlerts, wantSnap := referenceReplay(t, testMonitorConfig(t), feed)
	cut := len(feed) / 2
	state := filepath.Join(t.TempDir(), "mon.smn")

	var got []AlertOut
	for leg, part := range [][]ReceiptIn{feed[:cut], feed[cut:]} {
		s, ts := testServer(t, func(c *Config) { c.Shards = 4; c.StatePath = state })
		for start := 0; start < len(part); start += 23 {
			end := start + 23
			if end > len(part) {
				end = len(part)
			}
			if code := postReceipts(t, ts.URL, part[start:end], nil); code != http.StatusOK {
				t.Fatalf("leg %d: POST status %d", leg, code)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("leg %d: close: %v", leg, err)
		}
		got = append(got, fetchAlerts(t, ts.URL)...)
	}
	// Sequence numbers restart on each leg; renumber the concatenation to
	// compare the delivered alerts themselves.
	for i := range got {
		got[i].Seq = uint64(i) + 1
	}
	var wantWire bytes.Buffer
	if err := EncodeAlerts(&wantWire, wantAlerts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantWire.Bytes(), encodeWire(t, got)) {
		t.Error("alerts across restart differ from uninterrupted run")
	}
	gotSnap, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantSnap, gotSnap) {
		t.Error("final snapshot differs from uninterrupted run")
	}
}

// TestServerIngestValidation covers the request-rejection surface of
// POST /v1/receipts.
func TestServerIngestValidation(t *testing.T) {
	_, ts := testServer(t, func(c *Config) {
		c.MaxBatch = 3
		c.MaxBodyBytes = 1 << 20
	})
	g := testGrid(t)

	resp, err := http.Post(ts.URL+"/v1/receipts", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	big := make([]ReceiptIn, 4)
	for i := range big {
		big[i] = ReceiptIn{Customer: uint64(i + 1), Time: g.Origin(), Items: []uint32{1}}
	}
	var er ErrorResponse
	if code := postReceipts(t, ts.URL, big, &er); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize batch: status %d, want 413", code)
	} else if !strings.Contains(er.Error, "receipt limit") {
		t.Errorf("oversize batch error = %q", er.Error)
	}

	resp, err = http.Post(ts.URL+"/v1/receipts", "application/json",
		strings.NewReader(`{"receipts":[{"customer":1,"time":"`+strings.Repeat("x", 2<<20)+`"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if code := getJSON(t, ts.URL, "/v1/receipts", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST route: status %d, want 405", code)
	}
	if code := getJSON(t, ts.URL, "/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", code)
	}
}

// TestServerStaleReceipts pins the stale filter: receipts whose window the
// watermark has already closed (or that precede the grid origin) are
// refused, counted, and reported.
func TestServerStaleReceipts(t *testing.T) {
	s, ts := testServer(t, nil)
	g := testGrid(t)
	// Receipts in months 0 and 2 close window 0 at the month-2 barrier.
	warm := []ReceiptIn{
		{Customer: 1, Time: g.Origin().Add(7 * time.Hour), Items: []uint32{1}},
		{Customer: 1, Time: g.Origin().AddDate(0, 2, 0).Add(7 * time.Hour), Items: []uint32{1}},
	}
	if code := postReceipts(t, ts.URL, warm, nil); code != http.StatusOK {
		t.Fatalf("warm POST: status %d", code)
	}
	waitWatermark(t, s, 1)

	stale := []ReceiptIn{
		{Customer: 2, Time: g.Origin().Add(24 * time.Hour), Items: []uint32{2}},             // window 0: closed
		{Customer: 2, Time: g.Origin().AddDate(0, -1, 0), Items: []uint32{2}},               // pre-origin
		{Customer: 2, Time: g.Origin().AddDate(0, 2, 1).Add(time.Hour), Items: []uint32{2}}, // fresh
	}
	var ir IngestResponse
	if code := postReceipts(t, ts.URL, stale, &ir); code != http.StatusOK {
		t.Fatalf("stale POST: status %d", code)
	}
	if ir.Stale != 2 || ir.Accepted != 1 {
		t.Errorf("disposition %+v, want stale=2 accepted=1", ir)
	}
	var m MetricsResponse
	if code := getJSON(t, ts.URL, "/metrics", &m); code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	if m.ReceiptsStale != 2 {
		t.Errorf("receipts_stale = %d, want 2", m.ReceiptsStale)
	}
}

// backpressuredServer pauses the drainer and fills the one-batch queue so
// the next POST must take the overflow path.
func backpressuredServer(t *testing.T, policy stream.OverflowPolicy) (*Server, *httptest.Server) {
	t.Helper()
	s, ts := testServer(t, func(c *Config) {
		c.QueueBatches = 1
		c.Policy = policy
	})
	if err := s.Ingestor().Pause(); err != nil {
		t.Fatal(err)
	}
	g := testGrid(t)
	fill := []ReceiptIn{{Customer: 9, Time: g.Origin().Add(time.Hour), Items: []uint32{1}}}
	var ir IngestResponse
	if code := postReceipts(t, ts.URL, fill, &ir); code != http.StatusOK || ir.Accepted != 1 {
		t.Fatalf("fill POST: status %d, %+v", code, ir)
	}
	return s, ts
}

func overflowReceipts(t *testing.T, n int) []ReceiptIn {
	t.Helper()
	g := testGrid(t)
	out := make([]ReceiptIn, n)
	for i := range out {
		out[i] = ReceiptIn{Customer: uint64(50 + i), Time: g.Origin().Add(2 * time.Hour), Items: []uint32{3}}
	}
	return out
}

func TestServerBackpressureReject(t *testing.T) {
	s, ts := backpressuredServer(t, stream.PolicyReject)
	body, _ := json.Marshal(IngestRequest{Receipts: overflowReceipts(t, 2)})
	resp, err := http.Post(ts.URL+"/v1/receipts", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.RetryAfterMS != 1000 {
		t.Errorf("retry_after_ms = %d, want 1000", er.RetryAfterMS)
	}
	s.Ingestor().Resume()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if m := s.Ingestor().Metrics(); m.ReceiptsRejected != 2 || m.ReceiptsIngested != 1 {
		t.Errorf("counters after reject: %+v", m)
	}
}

func TestServerBackpressureShed(t *testing.T) {
	s, ts := backpressuredServer(t, stream.PolicyShed)
	var ir IngestResponse
	if code := postReceipts(t, ts.URL, overflowReceipts(t, 3), &ir); code != http.StatusOK {
		t.Fatalf("status %d, want 200 (shed is not an error)", code)
	}
	if ir.Shed != 3 || ir.Accepted != 0 {
		t.Errorf("disposition %+v, want shed=3", ir)
	}
	s.Ingestor().Resume()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if m := s.Ingestor().Metrics(); m.ReceiptsShed != 3 || m.ReceiptsIngested != 1 {
		t.Errorf("counters after shed: %+v", m)
	}
}

func TestServerBackpressureBlock(t *testing.T) {
	s, ts := backpressuredServer(t, stream.PolicyBlock)
	done := make(chan IngestResponse, 1)
	go func() {
		var ir IngestResponse
		postReceipts(t, ts.URL, overflowReceipts(t, 2), &ir)
		done <- ir
	}()
	select {
	case ir := <-done:
		t.Fatalf("POST returned %+v while queue full and drainer paused", ir)
	case <-time.After(50 * time.Millisecond):
	}
	s.Ingestor().Resume()
	select {
	case ir := <-done:
		if ir.Accepted != 2 {
			t.Fatalf("unblocked POST disposition %+v", ir)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("POST still blocked after Resume")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if m := s.Ingestor().Metrics(); m.ReceiptsIngested != 3 || m.ReceiptsShed != 0 || m.ReceiptsRejected != 0 {
		t.Errorf("counters after block: %+v", m)
	}
}

// TestServerStability covers GET /v1/customers/{id}/stability.
func TestServerStability(t *testing.T) {
	s, ts := testServer(t, nil)
	g := testGrid(t)
	// Customer 1 purchases in windows 0 and 1; the window-1 receipt's month
	// (2) closes window 0, scoring it.
	feed := []ReceiptIn{
		{Customer: 1, Time: g.Origin().Add(7 * time.Hour), Items: []uint32{1, 2}},
		{Customer: 1, Time: g.Origin().AddDate(0, 1, 3), Items: []uint32{1, 2}},
		{Customer: 1, Time: g.Origin().AddDate(0, 2, 0).Add(7 * time.Hour), Items: []uint32{1, 2}},
	}
	if code := postReceipts(t, ts.URL, feed, nil); code != http.StatusOK {
		t.Fatalf("POST: status %d", code)
	}
	waitWatermark(t, s, 1)

	if code := getJSON(t, ts.URL, "/v1/customers/abc/stability", nil); code != http.StatusBadRequest {
		t.Errorf("bad id: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL, "/v1/customers/777/stability", nil); code != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", code)
	}

	var sr StabilityResponse
	if code := getJSON(t, ts.URL, "/v1/customers/1/stability", &sr); code != http.StatusOK {
		t.Fatalf("known id: status %d", code)
	}
	value, gridIndex, ok := s.Ingestor().Stability(1)
	if !ok {
		t.Fatal("ingestor lost customer 1")
	}
	start, end := g.Bounds(gridIndex)
	if sr.Customer != 1 || sr.Stability != value || sr.Window != gridIndex ||
		!sr.Start.Equal(start) || !sr.End.Equal(end) {
		t.Errorf("stability response %+v, want value=%v window=%d [%v,%v)", sr, value, gridIndex, start, end)
	}
}

// TestServerAlertsParams covers cursor paging, the max cap, parameter
// validation, and the empty long-poll timeout.
func TestServerAlertsParams(t *testing.T) {
	feed := testFeed(t, 11, 12, 400)
	want, _ := referenceReplay(t, testMonitorConfig(t), feed)
	if len(want) < 4 {
		t.Fatalf("reference produced only %d alerts", len(want))
	}
	s, ts := testServer(t, nil)
	if code := postReceipts(t, ts.URL, feed, nil); code != http.StatusOK {
		t.Fatalf("POST: status %d", code)
	}
	if err := s.Close(); err != nil { // barrier everything
		t.Fatal(err)
	}

	if code := getJSON(t, ts.URL, "/v1/alerts?after=x", nil); code != http.StatusBadRequest {
		t.Errorf("bad after: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL, "/v1/alerts?max=-1", nil); code != http.StatusBadRequest {
		t.Errorf("bad max: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL, "/v1/alerts?wait=banana", nil); code != http.StatusBadRequest {
		t.Errorf("bad wait: status %d, want 400", code)
	}

	var page AlertsResponse
	if code := getJSON(t, ts.URL, "/v1/alerts?max=2", &page); code != http.StatusOK {
		t.Fatalf("GET: status %d", code)
	}
	if len(page.Alerts) != 2 || page.Alerts[0].Seq != 1 || page.Next != 2 || page.Oldest != 1 {
		t.Errorf("first page: %d alerts, next=%d oldest=%d", len(page.Alerts), page.Next, page.Oldest)
	}
	if code := getJSON(t, ts.URL, "/v1/alerts?after=2&max=2", &page); code != http.StatusOK {
		t.Fatalf("GET: status %d", code)
	}
	if len(page.Alerts) != 2 || page.Alerts[0].Seq != 3 {
		t.Errorf("second page starts at seq %d, want 3", page.Alerts[0].Seq)
	}

	// Caught up: a bounded long-poll returns an empty batch after its wait.
	last := want[len(want)-1].Seq
	if code := getJSON(t, ts.URL, fmt.Sprintf("/v1/alerts?after=%d&wait=10ms", last), &page); code != http.StatusOK {
		t.Fatalf("long-poll: status %d", code)
	}
	if len(page.Alerts) != 0 || page.Next != last {
		t.Errorf("caught-up long-poll: %d alerts, next=%d want %d", len(page.Alerts), page.Next, last)
	}

	// Hostile extremes (regression tests): an after cursor past MaxInt64
	// used to panic in the slice-offset conversion, and max values of 0 or
	// beyond MaxInt64 used to wrap into "unlimited" past the cap.
	for _, after := range []uint64{math.MaxInt64, math.MaxUint64} {
		if code := getJSON(t, ts.URL, fmt.Sprintf("/v1/alerts?after=%d", after), &page); code != http.StatusOK {
			t.Errorf("after=%d: status %d, want 200", after, code)
		} else if len(page.Alerts) != 0 {
			t.Errorf("after=%d: got %d alerts, want 0", after, len(page.Alerts))
		}
	}
	for _, maxQ := range []string{"0", "18446744073709551615"} {
		if code := getJSON(t, ts.URL, "/v1/alerts?max="+maxQ, &page); code != http.StatusOK {
			t.Errorf("max=%s: status %d, want 200", maxQ, code)
		} else if len(page.Alerts) == 0 || len(page.Alerts) > maxAlertsPerPoll {
			t.Errorf("max=%s: got %d alerts, want 1..%d", maxQ, len(page.Alerts), maxAlertsPerPoll)
		}
	}
}

// TestServerAlertsLongPollWake proves a parked long-poll wakes when the
// next barrier publishes alerts.
func TestServerAlertsLongPollWake(t *testing.T) {
	feed := testFeed(t, 11, 12, 400)
	want, _ := referenceReplay(t, testMonitorConfig(t), feed)
	cut := len(feed) / 2
	s, ts := testServer(t, nil)
	if code := postReceipts(t, ts.URL, feed[:cut], nil); code != http.StatusOK {
		t.Fatalf("POST: status %d", code)
	}
	// Wait until the first half is fully drained, then note where we are.
	for tries := 0; s.Ingestor().Metrics().ReceiptsIngested < uint64(cut); tries++ {
		if tries > 5000 {
			t.Fatal("first half never drained")
		}
		time.Sleep(time.Millisecond)
	}
	after := s.Ingestor().Metrics().AlertsEmitted
	if after >= uint64(len(want)) {
		t.Fatalf("first half already emitted all %d alerts; pick a different cut", len(want))
	}

	got := make(chan AlertsResponse, 1)
	go func() {
		var page AlertsResponse
		getJSON(t, ts.URL, fmt.Sprintf("/v1/alerts?after=%d&wait=30s", after), &page)
		got <- page
	}()
	select {
	case page := <-got:
		t.Fatalf("long-poll returned %d alerts before any new barrier", len(page.Alerts))
	case <-time.After(50 * time.Millisecond):
	}
	if code := postReceipts(t, ts.URL, feed[cut:], nil); code != http.StatusOK {
		t.Fatalf("POST second half: status %d", code)
	}
	select {
	case page := <-got:
		if len(page.Alerts) == 0 || page.Alerts[0].Seq != after+1 {
			t.Fatalf("woken long-poll: %d alerts, first seq %v, want seq %d",
				len(page.Alerts), page.Alerts, after+1)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never woke on publication")
	}
}

// TestServerSSE pins the SSE framing: id/event/data per alert, keep-alive
// comments, Last-Event-ID resume.
func TestServerSSE(t *testing.T) {
	feed := testFeed(t, 11, 12, 400)
	want, _ := referenceReplay(t, testMonitorConfig(t), feed)
	s, _ := testServer(t, func(c *Config) { c.SSEHeartbeat = 5 * time.Millisecond })
	if ok, err := s.Ingestor().Enqueue(toEvents(feed)); !ok || err != nil {
		t.Fatalf("enqueue: ok=%v err=%v", ok, err)
	}
	// Wait for the drainer, but do not Close: the stream must stay live so
	// heartbeats fire. Alerts pending behind the final barrier stay unseen.
	for tries := 0; s.Ingestor().Metrics().ReceiptsIngested < uint64(len(feed)); tries++ {
		if tries > 5000 {
			t.Fatal("feed never drained")
		}
		time.Sleep(time.Millisecond)
	}
	emitted := s.Ingestor().Metrics().AlertsEmitted
	if emitted < 4 {
		t.Fatalf("only %d alerts emitted before the final barrier", emitted)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest("GET", "/v1/alerts?stream=sse", nil).WithContext(ctx)
	req.Header.Set("Last-Event-ID", "2")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)

	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if strings.Contains(body, "id: 1\n") || strings.Contains(body, "id: 2\n") {
		t.Error("SSE replayed events at or before Last-Event-ID")
	}
	if !strings.Contains(body, ": keep-alive\n\n") {
		t.Error("SSE emitted no keep-alive comments")
	}
	frames := strings.Split(strings.TrimSuffix(body, "\n\n"), "\n\n")
	seq := uint64(3)
	for _, frame := range frames {
		if strings.HasPrefix(frame, ":") {
			continue
		}
		wantAlert := want[seq-1]
		payload, err := json.Marshal(toAlertOut(wantAlert))
		if err != nil {
			t.Fatal(err)
		}
		if frame != fmt.Sprintf("id: %d\nevent: alert\ndata: %s", seq, payload) {
			t.Fatalf("frame for seq %d:\n%q\nwant:\n%q", seq, frame,
				fmt.Sprintf("id: %d\nevent: alert\ndata: %s", seq, payload))
		}
		seq++
	}
	if seq != emitted+1 {
		t.Errorf("SSE delivered through seq %d, want %d", seq-1, emitted)
	}
}

// TestServerHealthzAndMetrics covers the two operator endpoints, including
// the closing flip and per-endpoint latency counters.
func TestServerHealthzAndMetrics(t *testing.T) {
	s, ts := testServer(t, nil)
	g := testGrid(t)

	var h HealthResponse
	if code := getJSON(t, ts.URL, "/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: status %d body %+v", code, h)
	}
	if code := postReceipts(t, ts.URL, []ReceiptIn{
		{Customer: 3, Time: g.Origin().Add(time.Hour), Items: []uint32{1}},
	}, nil); code != http.StatusOK {
		t.Fatalf("POST: status %d", code)
	}
	getJSON(t, ts.URL, "/v1/customers/abc/stability", nil) // one 400 for the error counter

	var m MetricsResponse
	if code := getJSON(t, ts.URL, "/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if m.QueueCapacity != 64 {
		t.Errorf("queue_capacity = %d, want default 64", m.QueueCapacity)
	}
	byName := map[string]EndpointMetrics{}
	var names []string
	for _, e := range m.Endpoints {
		byName[e.Endpoint] = e
		names = append(names, e.Endpoint)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("endpoints not sorted: %v", names)
	}
	if byName["healthz"].Count != 1 || byName["ingest"].Count != 1 {
		t.Errorf("endpoint counts: healthz=%d ingest=%d, want 1 and 1",
			byName["healthz"].Count, byName["ingest"].Count)
	}
	if byName["stability"].Errors != 1 {
		t.Errorf("stability errors = %d, want 1 (the bad-id request)", byName["stability"].Errors)
	}

	// Flip to closing without tearing down the ingestor: health degrades and
	// ingestion refuses.
	close(s.closing)
	if code := getJSON(t, ts.URL, "/healthz", &h); code != http.StatusServiceUnavailable || h.Status != "closing" {
		t.Errorf("closing healthz: status %d body %+v", code, h)
	}
	if code := postReceipts(t, ts.URL, overflowReceipts(t, 1), nil); code != http.StatusServiceUnavailable {
		t.Errorf("closing ingest: status %d, want 503", code)
	}
	s.closing = make(chan struct{}) // restore so Cleanup's Close is clean
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestServerConfigErrors pins constructor validation.
func TestServerConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a zero config")
	}
	cfg := Config{Monitor: testMonitorConfig(t), Policy: stream.OverflowPolicy(9)}
	if _, err := New(cfg); err == nil {
		t.Error("New accepted an unknown policy")
	}
}

// TestEncodeAlertsWriterError propagates sink failures.
func TestEncodeAlertsWriterError(t *testing.T) {
	alerts := []stream.SeqAlert{{Seq: 1}}
	if err := EncodeAlerts(failWriter{}, alerts); err == nil {
		t.Error("EncodeAlerts swallowed the writer error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }
