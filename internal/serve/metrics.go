package serve

import (
	"sync/atomic"
	"time"
)

// EndpointMetrics reports one endpoint's cumulative call counts and
// latency, in microseconds. Latency is operator telemetry: it is the one
// wall-clock-derived value in the system and never feeds a score.
type EndpointMetrics struct {
	// Endpoint names the route ("ingest", "stability", "stability_batch",
	// "alerts", "healthz", "readyz", "metrics").
	Endpoint string `json:"endpoint"`
	// Count is the number of completed requests.
	Count uint64 `json:"count"`
	// Errors counts requests answered with status >= 400.
	Errors uint64 `json:"errors"`
	// TotalMicros is the summed handler latency; TotalMicros/Count is the
	// mean.
	TotalMicros uint64 `json:"total_us"`
	// MaxMicros is the largest single-request latency observed.
	MaxMicros uint64 `json:"max_us"`
}

// endpointCounters is the lock-free accumulator behind EndpointMetrics.
type endpointCounters struct {
	count, errors, totalMicros, maxMicros atomic.Uint64
}

func (c *endpointCounters) record(d time.Duration, status int) {
	us := uint64(d.Microseconds())
	c.count.Add(1)
	if status >= 400 {
		c.errors.Add(1)
	}
	c.totalMicros.Add(us)
	for {
		cur := c.maxMicros.Load()
		if us <= cur || c.maxMicros.CompareAndSwap(cur, us) {
			return
		}
	}
}

func (c *endpointCounters) snapshot(name string) EndpointMetrics {
	return EndpointMetrics{
		Endpoint:    name,
		Count:       c.count.Load(),
		Errors:      c.errors.Load(),
		TotalMicros: c.totalMicros.Load(),
		MaxMicros:   c.maxMicros.Load(),
	}
}

// endpointNames fixes the /metrics endpoint order (sorted by name).
var endpointNames = []string{"alerts", "healthz", "ingest", "metrics", "readyz", "stability", "stability_batch"}

// serveMetrics aggregates the serving layer's counters.
type serveMetrics struct {
	stale     atomic.Uint64
	panics    atomic.Uint64
	endpoints map[string]*endpointCounters
}

func newServeMetrics() *serveMetrics {
	m := &serveMetrics{endpoints: make(map[string]*endpointCounters, len(endpointNames))}
	for _, name := range endpointNames {
		m.endpoints[name] = &endpointCounters{}
	}
	return m
}

func (m *serveMetrics) snapshot() []EndpointMetrics {
	out := make([]EndpointMetrics, 0, len(endpointNames))
	for _, name := range endpointNames {
		out = append(out, m.endpoints[name].snapshot(name))
	}
	return out
}

// now reads the wall clock for latency telemetry.
//
//detlint:ignore R2 per-endpoint latency telemetry; measured durations go to /metrics only, never into scored output
func now() time.Time { return time.Now() }
