// Wire types: the JSON request/response schemas of the attritiond HTTP
// API, documented endpoint by endpoint in API.md (keep the two in sync).
// Every response is encoded from a struct, so field order — and therefore
// the response bytes for a given logical payload — is fixed.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/stream"
)

// ReceiptIn is one receipt of a POST /v1/receipts batch.
type ReceiptIn struct {
	// Customer is the purchasing customer's id.
	Customer uint64 `json:"customer"`
	// Time is the receipt timestamp, RFC 3339.
	Time time.Time `json:"time"`
	// Items lists the purchased product segments.
	Items []uint32 `json:"items"`
}

// IngestRequest is the POST /v1/receipts body.
type IngestRequest struct {
	// Receipts is the batch, ingested in slice order.
	Receipts []ReceiptIn `json:"receipts"`
}

// IngestResponse reports a batch's disposition.
type IngestResponse struct {
	// Accepted counts receipts queued for ingestion.
	Accepted int `json:"accepted"`
	// Shed counts receipts dropped by the shed overflow policy.
	Shed int `json:"shed,omitempty"`
	// Stale counts receipts refused because their window is already
	// closed (or precedes the grid origin).
	Stale int `json:"stale,omitempty"`
}

// ErrorResponse is the body of every non-2xx JSON response.
type ErrorResponse struct {
	// Error is a human-readable description.
	Error string `json:"error"`
	// RetryAfterMS accompanies 429 responses (PolicyReject, queue full).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// StabilityResponse answers GET /v1/customers/{id}/stability.
type StabilityResponse struct {
	// Customer echoes the queried id.
	Customer uint64 `json:"customer"`
	// Stability is the last scored stability in [0,1].
	Stability float64 `json:"stability"`
	// Window is the grid index of the scored window; Start/End bound it.
	Window int       `json:"window"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
}

// BatchStabilityQuery is one line of a POST /v1/stability:batch request
// body (NDJSON: one query object per line).
type BatchStabilityQuery struct {
	// Customer is the queried customer's id.
	Customer uint64 `json:"customer"`
}

// AlertOut is one alert on the wire, stamped with its delivery sequence.
type AlertOut struct {
	// Seq is the alert's position in the delivery log; pass the largest
	// seen back as ?after= to resume.
	Seq uint64 `json:"seq"`
	// Customer is the defecting customer.
	Customer uint64 `json:"customer"`
	// Window is the scored window's grid index; Start/End bound it.
	Window int       `json:"window"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	// Stability is the score that crossed the β threshold.
	Stability float64 `json:"stability"`
	// Drop is the decrease vs. the previous scored window, when any.
	Drop float64 `json:"drop,omitempty"`
	// Blame lists the most significant missing products.
	Blame []BlameOut `json:"blame,omitempty"`
}

// BlameOut attributes part of a stability decrease to one missing item.
type BlameOut struct {
	// Item is the missing product segment.
	Item uint32 `json:"item"`
	// Share is the fraction of the decrease this item explains.
	Share float64 `json:"share"`
}

// AlertsResponse answers a (long-)poll GET /v1/alerts.
type AlertsResponse struct {
	// Alerts is the delivery-ordered batch (possibly empty on timeout).
	Alerts []AlertOut `json:"alerts"`
	// Next is the cursor to pass as ?after= on the next poll.
	Next uint64 `json:"next"`
	// Oldest is the lowest sequence still buffered; a gap (after+1 <
	// oldest) means the consumer fell behind the alert buffer.
	Oldest uint64 `json:"oldest"`
}

// HealthResponse answers GET /healthz (liveness) and GET /readyz
// (readiness).
type HealthResponse struct {
	// Status is "ok" while serving and "closing" during shutdown on
	// /healthz; /readyz reports "ready", "degraded", or "closing".
	Status string `json:"status"`
	// Customers is the number of tracked customers.
	Customers int `json:"customers"`
	// Watermark is the lowest window index not yet closed.
	Watermark int `json:"watermark"`
	// Degraded reports a persistently failing maintenance loop (saver,
	// compactor, or follower); Reasons names the failing loops. Liveness
	// stays "ok" while degraded — readiness answers 503.
	Degraded bool `json:"degraded,omitempty"`
	// Reasons lists one entry per failing maintenance loop.
	Reasons []string `json:"degraded_reasons,omitempty"`
}

// MetricsResponse answers GET /metrics: the ingestion counters plus
// serving-layer counters and per-endpoint latency.
type MetricsResponse struct {
	stream.IngestorMetrics
	// ReceiptsStale counts receipts refused at the HTTP layer because
	// their window was already closed.
	ReceiptsStale uint64 `json:"receipts_stale"`
	// PanicsRecovered counts handler panics converted to 500 responses.
	PanicsRecovered uint64 `json:"panics_recovered"`
	// Endpoints reports per-endpoint call counts and latency, sorted by
	// endpoint name.
	Endpoints []EndpointMetrics `json:"endpoints"`
}

// toAlertOut converts a log alert to its wire form.
func toAlertOut(a stream.SeqAlert) AlertOut {
	out := AlertOut{
		Seq:       a.Seq,
		Customer:  uint64(a.Customer),
		Window:    a.GridIndex,
		Start:     a.Start,
		End:       a.End,
		Stability: a.Stability,
		Drop:      a.Drop,
	}
	for _, b := range a.Blame {
		out.Blame = append(out.Blame, BlameOut{Item: uint32(b.Item), Share: b.Share})
	}
	return out
}

// EncodeAlerts writes alerts as newline-delimited JSON, one AlertOut per
// line — the exact bytes the long-poll endpoint delivers for these alerts.
// The differential tests pin daemon output against a sequential Monitor
// replay encoded through this same function.
func EncodeAlerts(w io.Writer, alerts []stream.SeqAlert) error {
	enc := json.NewEncoder(w)
	for _, a := range alerts {
		if err := enc.Encode(toAlertOut(a)); err != nil {
			return err
		}
	}
	return nil
}

// ErrBatchTooLarge marks a syntactically valid batch that exceeds the
// configured per-POST receipt limit; the HTTP layer maps it to 413.
var ErrBatchTooLarge = errors.New("batch exceeds the per-request receipt limit")

// decodeIngest parses and validates a POST /v1/receipts body.
func decodeIngest(r io.Reader, maxBatch int) (*IngestRequest, error) {
	dec := json.NewDecoder(r)
	var req IngestRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid JSON body: %w", err)
	}
	if maxBatch > 0 && len(req.Receipts) > maxBatch {
		return nil, fmt.Errorf("%w: %d receipts > %d", ErrBatchTooLarge, len(req.Receipts), maxBatch)
	}
	return &req, nil
}

// decodeBatchQueries parses a POST /v1/stability:batch body: a stream of
// JSON query objects (one per line by convention, though the decoder
// accepts any whitespace separation). The whole batch is decoded and
// validated before any response byte is written, so a malformed line is a
// clean 400 and an oversized batch a clean 413, never a torn 200.
func decodeBatchQueries(r io.Reader, maxBatch int) ([]retail.CustomerID, error) {
	dec := json.NewDecoder(r)
	var ids []retail.CustomerID
	for {
		var q BatchStabilityQuery
		if err := dec.Decode(&q); err == io.EOF {
			return ids, nil
		} else if err != nil {
			return nil, fmt.Errorf("invalid query on line %d: %w", len(ids)+1, err)
		}
		if maxBatch > 0 && len(ids) >= maxBatch {
			return nil, fmt.Errorf("%w: > %d queries", ErrBatchTooLarge, maxBatch)
		}
		ids = append(ids, retail.CustomerID(q.Customer))
	}
}

// toEvents converts wire receipts to stream events, normalizing baskets.
func toEvents(receipts []ReceiptIn) []stream.ReceiptEvent {
	events := make([]stream.ReceiptEvent, len(receipts))
	for i, r := range receipts {
		items := make([]retail.ItemID, len(r.Items))
		for j, it := range r.Items {
			items[j] = retail.ItemID(it)
		}
		events[i] = stream.ReceiptEvent{
			Customer: retail.CustomerID(r.Customer),
			Time:     r.Time,
			Items:    retail.NewBasket(items),
		}
	}
	return events
}
