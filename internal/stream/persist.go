package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

// Monitor snapshot format:
//
//	magic "SMN1" (4 bytes)
//	int64   grid origin (unix seconds, UTC month start)
//	uvarint grid span months
//	uvarint customer count
//	per customer (ascending id):
//	  uvarint customer id
//	  varint  openK
//	  varint  lastScoredK
//	  byte    flags (bit0 lastDefined, bit1 scored, bit2 lastActiveK present)
//	  varint  lastActiveK (only when flags bit2 is set; pre-retention
//	          snapshots lack it and restore with lastActiveK = openK)
//	  float64 lastStability
//	  uvarint pending item count, then uvarint item deltas
//	  tracker snapshot (embedded, self-delimiting via its own counts)
//
// A restored monitor resumes exactly where the snapshot left off: the
// equivalence is property-tested. The format is shared by Monitor and
// ShardedMonitor — sharding is an operational knob, so the bytes carry no
// trace of the shard count and either monitor restores the other's snapshot.
var monitorMagic = [4]byte{'S', 'M', 'N', '1'}

// WriteSnapshot persists every tracked customer's state.
func (m *Monitor) WriteSnapshot(w io.Writer) error {
	return writeMonitorStates(w, m.cfg.Grid, m.states)
}

// snapshotWriter streams the SMN1 encoding state by state: the header is
// written on construction, then writeState once per customer in ascending
// id order, then flush. Splitting the writer from the iteration lets the
// sharded monitor stream its per-shard maps through a k-way id merge
// without first materializing one merged state map.
type snapshotWriter struct {
	w   io.Writer
	bw  *bufio.Writer
	buf [binary.MaxVarintLen64]byte
}

func (sw *snapshotWriter) putU(v uint64) error {
	n := binary.PutUvarint(sw.buf[:], v)
	_, err := sw.bw.Write(sw.buf[:n])
	return err
}

func (sw *snapshotWriter) putI(v int64) error {
	n := binary.PutVarint(sw.buf[:], v)
	_, err := sw.bw.Write(sw.buf[:n])
	return err
}

// newSnapshotWriter writes the SMN1 header (magic, grid, customer count).
func newSnapshotWriter(w io.Writer, grid window.Grid, customers int) (*snapshotWriter, error) {
	sw := &snapshotWriter{w: w, bw: bufio.NewWriter(w)}
	if _, err := sw.bw.Write(monitorMagic[:]); err != nil {
		return nil, fmt.Errorf("stream: write magic: %w", err)
	}
	binary.LittleEndian.PutUint64(sw.buf[:8], uint64(grid.Origin().Unix()))
	if _, err := sw.bw.Write(sw.buf[:8]); err != nil {
		return nil, err
	}
	if err := sw.putU(uint64(grid.Span().Months)); err != nil {
		return nil, err
	}
	if err := sw.putU(uint64(customers)); err != nil {
		return nil, err
	}
	return sw, nil
}

// writeState encodes one customer's state, including the embedded tracker
// snapshot.
func (sw *snapshotWriter) writeState(id retail.CustomerID, st *custState) error {
	if err := sw.putU(uint64(id)); err != nil {
		return err
	}
	if err := sw.putI(int64(st.openK)); err != nil {
		return err
	}
	if err := sw.putI(int64(st.lastScoredK)); err != nil {
		return err
	}
	flags := byte(4) // bit2: lastActiveK always written since the retention horizon landed
	if st.lastDefined {
		flags |= 1
	}
	if st.scored {
		flags |= 2
	}
	if err := sw.bw.WriteByte(flags); err != nil {
		return err
	}
	if err := sw.putI(int64(st.lastActiveK)); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(sw.buf[:8], math.Float64bits(st.lastStability))
	if _, err := sw.bw.Write(sw.buf[:8]); err != nil {
		return err
	}
	if err := sw.putU(uint64(len(st.pending))); err != nil {
		return err
	}
	prev := uint64(0)
	for _, it := range st.pending {
		if err := sw.putU(uint64(it) - prev); err != nil {
			return err
		}
		prev = uint64(it)
	}
	if err := sw.bw.Flush(); err != nil {
		return err
	}
	if err := st.tracker.WriteSnapshot(sw.w); err != nil {
		return fmt.Errorf("stream: customer %d tracker: %w", id, err)
	}
	return nil
}

func (sw *snapshotWriter) flush() error { return sw.bw.Flush() }

// sortedStateIDs returns a state map's customer ids ascending.
func sortedStateIDs(states map[retail.CustomerID]*custState) []retail.CustomerID {
	ids := make([]retail.CustomerID, 0, len(states))
	//detlint:ignore R1 collects ids that are sorted immediately below
	for id := range states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// writeMonitorStates streams the SMN1 encoding of a customer-state map.
// It iterates customers in ascending id order, so the bytes depend only on
// the logical state, never on which monitor flavor produced it.
func writeMonitorStates(w io.Writer, grid window.Grid, states map[retail.CustomerID]*custState) error {
	sw, err := newSnapshotWriter(w, grid, len(states))
	if err != nil {
		return err
	}
	for _, id := range sortedStateIDs(states) {
		if err := sw.writeState(id, states[id]); err != nil {
			return err
		}
	}
	return sw.flush()
}

// writeShardedStates streams the SMN1 encoding of disjoint per-shard state
// maps by merging their sorted id lists on the fly — customer states flow
// straight from the shard maps to the writer, with no merged intermediate
// map. The bytes are identical to writeMonitorStates over the union: the
// shard partition is disjoint, so the merged walk is the global ascending
// id order.
func writeShardedStates(w io.Writer, grid window.Grid, shardStates []map[retail.CustomerID]*custState) error {
	total := 0
	heads := make([][]retail.CustomerID, len(shardStates))
	for i, states := range shardStates {
		total += len(states)
		heads[i] = sortedStateIDs(states)
	}
	sw, err := newSnapshotWriter(w, grid, total)
	if err != nil {
		return err
	}
	for {
		// Pick the shard whose next id is smallest; the shard count is an
		// operational handful, so a linear scan beats heap bookkeeping.
		best := -1
		for i, ids := range heads {
			if len(ids) == 0 {
				continue
			}
			if best < 0 || ids[0] < heads[best][0] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		id := heads[best][0]
		heads[best] = heads[best][1:]
		if err := sw.writeState(id, shardStates[best][id]); err != nil {
			return err
		}
	}
	return sw.flush()
}

// ReadMonitorSnapshot restores a monitor persisted by WriteSnapshot (either
// flavor). The supplied config provides the operational knobs (β, TopJ,
// warm-up, hooks); its grid must match the snapshot's grid, and its model
// options are validated against each restored tracker's.
func ReadMonitorSnapshot(r io.Reader, cfg Config) (*Monitor, error) {
	states, err := readMonitorStates(r, cfg)
	if err != nil {
		return nil, err
	}
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	//detlint:ignore R1 addRestored is order-insensitive; the id index is sort-rebuilt at the next barrier
	for id, st := range states {
		m.addRestored(id, st)
	}
	return m, nil
}

// readMonitorStates decodes an SMN1 snapshot into a customer-state map,
// validating cfg and every embedded tracker along the way.
func readMonitorStates(r io.Reader, cfg Config) (map[retail.CustomerID]*custState, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("stream: read magic: %w", err)
	}
	if magic != monitorMagic {
		return nil, fmt.Errorf("stream: bad magic %q (not a SMN1 snapshot)", magic[:])
	}
	var f8 [8]byte
	if _, err := io.ReadFull(br, f8[:]); err != nil {
		return nil, fmt.Errorf("stream: read origin: %w", err)
	}
	origin := int64(binary.LittleEndian.Uint64(f8[:]))
	span, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("stream: read span: %w", err)
	}
	if cfg.Grid.Origin().Unix() != origin || uint64(cfg.Grid.Span().Months) != span {
		return nil, fmt.Errorf("stream: snapshot grid (origin %d, span %dmo) does not match config grid (origin %d, span %dmo)",
			origin, span, cfg.Grid.Origin().Unix(), cfg.Grid.Span().Months)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("stream: read customer count: %w", err)
	}
	const maxCustomers = 1 << 34
	if count > maxCustomers {
		return nil, fmt.Errorf("stream: implausible customer count %d", count)
	}
	states := make(map[retail.CustomerID]*custState, count)
	for i := uint64(0); i < count; i++ {
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("stream: read customer id: %w", err)
		}
		openK, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("stream: read openK: %w", err)
		}
		lastScoredK, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("stream: read lastScoredK: %w", err)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("stream: read flags: %w", err)
		}
		// Pre-retention snapshots lack lastActiveK; openK is the
		// conservative restore (the customer gets a full horizon of grace
		// past their open window before eviction, never a premature drop).
		lastActiveK := openK
		if flags&4 != 0 {
			lastActiveK, err = binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("stream: read lastActiveK: %w", err)
			}
		}
		if _, err := io.ReadFull(br, f8[:]); err != nil {
			return nil, fmt.Errorf("stream: read lastStability: %w", err)
		}
		pendingCount, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("stream: read pending count: %w", err)
		}
		const maxItems = 1 << 20
		if pendingCount > maxItems {
			return nil, fmt.Errorf("stream: implausible pending size %d", pendingCount)
		}
		pending := make(retail.Basket, pendingCount)
		prev := uint64(0)
		for j := range pending {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("stream: read pending item: %w", err)
			}
			prev += d
			if prev == 0 || prev > math.MaxUint32 {
				return nil, fmt.Errorf("stream: pending item %d out of range", prev)
			}
			pending[j] = retail.ItemID(prev)
		}
		tracker, err := core.ReadTrackerSnapshot(br)
		if err != nil {
			return nil, fmt.Errorf("stream: customer %d tracker: %w", id, err)
		}
		if tracker.Options() != cfg.Model {
			return nil, fmt.Errorf("stream: customer %d tracker options %+v do not match config %+v",
				id, tracker.Options(), cfg.Model)
		}
		states[retail.CustomerID(id)] = &custState{
			tracker:       tracker,
			openK:         int(openK),
			pending:       pending,
			lastStability: math.Float64frombits(binary.LittleEndian.Uint64(f8[:])),
			lastDefined:   flags&1 != 0,
			lastScoredK:   int(lastScoredK),
			scored:        flags&2 != 0,
			lastActiveK:   int(lastActiveK),
		}
	}
	return states, nil
}
