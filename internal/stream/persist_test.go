package stream

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

// TestMonitorSnapshotRoundTrip: a restored monitor must behave exactly
// like the original on any continuation of the feed — alerts, stability
// values and blame identical.
func TestMonitorSnapshotRoundTrip(t *testing.T) {
	g, err := window.NewGrid(time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), window.Span{Months: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Grid: g, Model: core.Options{Alpha: 2, MaxBlame: 3}, Beta: 0.7, TopJ: 3, WarmupWindows: 2}

	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		type ev struct {
			id    retail.CustomerID
			t     time.Time
			items retail.Basket
		}
		feed := make([]ev, 0, 80)
		day := 0
		for i := 0; i < 80; i++ {
			day += r.Intn(10)
			items := make([]retail.ItemID, r.Intn(5))
			for j := range items {
				items[j] = retail.ItemID(r.Intn(8) + 1)
			}
			feed = append(feed, ev{
				id:    retail.CustomerID(r.Intn(3) + 1),
				t:     g.Origin().AddDate(0, 0, day).Add(8 * time.Hour),
				items: retail.NewBasket(items),
			})
		}
		split := len(feed) / 2

		// Original: run the whole feed.
		orig, err := New(cfg)
		if err != nil {
			return false
		}
		var origAlerts []Alert
		for _, e := range feed {
			a, err := orig.Ingest(e.id, e.t, e.items)
			if err != nil {
				return false
			}
			origAlerts = append(origAlerts, a...)
		}
		origAlerts = append(origAlerts, orig.CloseThrough(20)...)

		// Snapshotted: run half, persist, restore, run the rest.
		first, err := New(cfg)
		if err != nil {
			return false
		}
		var snapAlerts []Alert
		for _, e := range feed[:split] {
			a, err := first.Ingest(e.id, e.t, e.items)
			if err != nil {
				return false
			}
			snapAlerts = append(snapAlerts, a...)
		}
		var buf bytes.Buffer
		if err := first.WriteSnapshot(&buf); err != nil {
			return false
		}
		restored, err := ReadMonitorSnapshot(&buf, cfg)
		if err != nil {
			return false
		}
		for _, e := range feed[split:] {
			a, err := restored.Ingest(e.id, e.t, e.items)
			if err != nil {
				return false
			}
			snapAlerts = append(snapAlerts, a...)
		}
		snapAlerts = append(snapAlerts, restored.CloseThrough(20)...)

		if len(origAlerts) != len(snapAlerts) {
			return false
		}
		for i := range origAlerts {
			a, b := origAlerts[i], snapAlerts[i]
			if a.Customer != b.Customer || a.GridIndex != b.GridIndex {
				return false
			}
			if math.Abs(a.Stability-b.Stability) > 1e-15 {
				return false
			}
			if len(a.Blame) != len(b.Blame) {
				return false
			}
			for j := range a.Blame {
				if a.Blame[j].Item != b.Blame[j].Item {
					return false
				}
			}
		}
		// Per-customer last stabilities agree too.
		for id := retail.CustomerID(1); id <= 3; id++ {
			va, ka, oka := orig.Stability(id)
			vb, kb, okb := restored.Stability(id)
			if oka != okb || ka != kb || math.Abs(va-vb) > 1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReadMonitorSnapshotValidation(t *testing.T) {
	g, _ := window.NewGrid(time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), window.Span{Months: 2})
	cfg := Config{Grid: g, Model: core.Options{Alpha: 2}, Beta: 0.5}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(1, g.Origin().AddDate(0, 0, 3), retail.Basket{1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	// Wrong grid span.
	g3, _ := window.NewGrid(g.Origin(), window.Span{Months: 3})
	bad := cfg
	bad.Grid = g3
	if _, err := ReadMonitorSnapshot(bytes.NewReader(snap), bad); err == nil {
		t.Fatal("mismatched grid accepted")
	}
	// Wrong model options.
	bad = cfg
	bad.Model = core.Options{Alpha: 3}
	if _, err := ReadMonitorSnapshot(bytes.NewReader(snap), bad); err == nil {
		t.Fatal("mismatched model options accepted")
	}
	// Garbage and truncation.
	if _, err := ReadMonitorSnapshot(bytes.NewReader([]byte("XXXXYYYY")), cfg); err == nil {
		t.Fatal("bad magic accepted")
	}
	for cut := 0; cut < len(snap); cut += 3 {
		if _, err := ReadMonitorSnapshot(bytes.NewReader(snap[:cut]), cfg); err == nil {
			t.Fatalf("truncated snapshot (%d bytes) accepted", cut)
		}
	}
	// Intact snapshot restores.
	restored, err := ReadMonitorSnapshot(bytes.NewReader(snap), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Customers() != 1 {
		t.Fatalf("restored customers = %d", restored.Customers())
	}
}
