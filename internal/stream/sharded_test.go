package stream

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

type feedEvent struct {
	id    retail.CustomerID
	t     time.Time
	items retail.Basket
}

// randomFeed builds a time-sorted multi-customer feed over roughly
// maxWindows grid windows. Customer ids are deliberately spread out so they
// land on different shards under FNV-1a.
func randomFeed(t *testing.T, seed int64, customers, events int) []feedEvent {
	t.Helper()
	g := testGrid(t)
	r := rand.New(rand.NewSource(seed))
	day := 0
	feed := make([]feedEvent, 0, events)
	for i := 0; i < events; i++ {
		day += r.Intn(6)
		items := make([]retail.ItemID, r.Intn(5))
		for j := range items {
			items[j] = retail.ItemID(r.Intn(8) + 1)
		}
		feed = append(feed, feedEvent{
			id:    retail.CustomerID(r.Intn(customers)*7919 + 1),
			t:     g.Origin().AddDate(0, 0, day).Add(7 * time.Hour),
			items: retail.NewBasket(items),
		})
	}
	return feed
}

// alertsEqual compares two alert batches field by field.
func alertsEqual(a, b []Alert) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Customer != y.Customer || x.GridIndex != y.GridIndex {
			return false
		}
		if x.Stability != y.Stability || x.Drop != y.Drop {
			return false
		}
		if !x.Start.Equal(y.Start) || !x.End.Equal(y.End) {
			return false
		}
		if len(x.Blame) != len(y.Blame) {
			return false
		}
		for j := range x.Blame {
			if x.Blame[j].Item != y.Blame[j].Item || x.Blame[j].Share != y.Blame[j].Share {
				return false
			}
		}
	}
	return true
}

// replaySingle runs the feed through the single-threaded Monitor with a
// CloseThrough barrier at every window boundary, collecting one sorted alert
// batch per barrier — the reference output the sharded engine must match
// byte for byte.
func replaySingle(t *testing.T, cfg Config, feed []feedEvent, lastK int) (batches [][]Alert, m *Monitor) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pending []Alert
	flush := func(closeK int) {
		pending = append(pending, m.CloseThrough(closeK)...)
		sortAlerts(pending)
		batches = append(batches, pending)
		pending = nil
	}
	prevK := 0
	for _, ev := range feed {
		if k := cfg.Grid.Index(ev.t); k > prevK {
			flush(k - 1)
			prevK = k
		}
		a, err := m.Ingest(ev.id, ev.t, ev.items)
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, a...)
	}
	flush(lastK)
	return batches, m
}

// replaySharded is the same replay through a ShardedMonitor.
func replaySharded(t *testing.T, cfg Config, shards int, feed []feedEvent, lastK int) (batches [][]Alert, s *ShardedMonitor) {
	t.Helper()
	s, err := NewSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	prevK := 0
	for _, ev := range feed {
		if k := cfg.Grid.Index(ev.t); k > prevK {
			a, err := s.CloseThrough(k - 1)
			if err != nil {
				t.Fatal(err)
			}
			batches = append(batches, a)
			prevK = k
		}
		if err := s.Ingest(ev.id, ev.t, ev.items); err != nil {
			t.Fatal(err)
		}
	}
	a, err := s.CloseThrough(lastK)
	if err != nil {
		t.Fatal(err)
	}
	batches = append(batches, a)
	return batches, s
}

// TestShardedMatchesMonitor is the headline equivalence property: for any
// feed and any shard count, the sharded engine's alert batches, per-customer
// stabilities, and snapshot bytes are identical to the single-threaded
// Monitor's.
func TestShardedMatchesMonitor(t *testing.T) {
	cfg := testConfig(t, 0.7)
	cfg.WarmupWindows = 2
	const lastK = 20
	prop := func(seed int64) bool {
		feed := randomFeed(t, seed, 8, 120)
		wantBatches, single := replaySingle(t, cfg, feed, lastK)
		var wantSnap bytes.Buffer
		if err := single.WriteSnapshot(&wantSnap); err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 4, 8} {
			gotBatches, sharded := replaySharded(t, cfg, shards, feed, lastK)
			if len(gotBatches) != len(wantBatches) {
				t.Logf("seed %d shards %d: %d batches, want %d", seed, shards, len(gotBatches), len(wantBatches))
				return false
			}
			for i := range wantBatches {
				if !alertsEqual(wantBatches[i], gotBatches[i]) {
					t.Logf("seed %d shards %d: batch %d differs", seed, shards, i)
					return false
				}
			}
			for _, ev := range feed {
				v1, k1, ok1 := single.Stability(ev.id)
				v2, k2, ok2 := sharded.Stability(ev.id)
				if v1 != v2 || k1 != k2 || ok1 != ok2 {
					t.Logf("seed %d shards %d: stability of %d differs", seed, shards, ev.id)
					return false
				}
			}
			if single.Customers() != sharded.Customers() {
				return false
			}
			var gotSnap bytes.Buffer
			if err := sharded.WriteSnapshot(&gotSnap); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantSnap.Bytes(), gotSnap.Bytes()) {
				t.Logf("seed %d shards %d: snapshot bytes differ", seed, shards)
				return false
			}
			if _, err := sharded.Close(); err != nil {
				t.Fatal(err)
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestShardedSnapshotRoundTripShardCounts writes a snapshot with S shards
// and restores it with S' shards (including the single-threaded Monitor as
// S'=0): alerts on the continuation and every customer's stability must be
// identical, because shard count is not part of the persisted state.
func TestShardedSnapshotRoundTripShardCounts(t *testing.T) {
	cfg := testConfig(t, 0.7)
	feed := randomFeed(t, 42, 10, 200)
	split := len(feed) / 2
	const lastK = 25

	// Reference: single-threaded monitor over the whole feed.
	refBatches, ref := replaySingle(t, cfg, feed, lastK)
	var refAll []Alert
	for _, b := range refBatches {
		refAll = append(refAll, b...)
	}

	for _, pair := range [][2]int{{1, 4}, {4, 1}, {2, 8}, {8, 3}, {3, 5}} {
		writeShards, readShards := pair[0], pair[1]
		t.Run(fmt.Sprintf("write-%d-read-%d", writeShards, readShards), func(t *testing.T) {
			first, err := NewSharded(cfg, writeShards)
			if err != nil {
				t.Fatal(err)
			}
			var all []Alert
			ingest := func(s *ShardedMonitor, evs []feedEvent) {
				for _, ev := range evs {
					if err := s.Ingest(ev.id, ev.t, ev.items); err != nil {
						t.Fatal(err)
					}
				}
			}
			ingest(first, feed[:split])
			// Drain buffered alerts before snapshotting: they are output,
			// not state, and would otherwise be lost across the restart.
			a, err := first.Flush()
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, a...)
			var snap bytes.Buffer
			if err := first.WriteSnapshot(&snap); err != nil {
				t.Fatal(err)
			}
			if _, err := first.Close(); err != nil {
				t.Fatal(err)
			}

			restored, err := ReadShardedMonitorSnapshot(bytes.NewReader(snap.Bytes()), cfg, readShards)
			if err != nil {
				t.Fatal(err)
			}
			ingest(restored, feed[split:])
			a, err = restored.CloseThrough(lastK)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, a...)

			// The reference batches alerts at every window boundary; the
			// round-trip batches them at the snapshot point and the end.
			// Batch boundaries differ, the alert sequence must not: compare
			// the full per-customer-window sequences sorted the same way.
			sortAlerts(refAll)
			sortAlerts(all)
			if !alertsEqual(refAll, all) {
				t.Fatalf("alerts differ after %d->%d shard round-trip: got %d, want %d",
					writeShards, readShards, len(all), len(refAll))
			}
			for _, ev := range feed {
				v1, k1, ok1 := ref.Stability(ev.id)
				v2, k2, ok2 := restored.Stability(ev.id)
				if v1 != v2 || k1 != k2 || ok1 != ok2 {
					t.Fatalf("stability of customer %d differs after round-trip", ev.id)
				}
			}
			if _, err := restored.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}

	// Cross-flavor: a Monitor snapshot restores into a ShardedMonitor and
	// vice versa, byte-identically.
	t.Run("cross-flavor", func(t *testing.T) {
		var singleSnap bytes.Buffer
		if err := ref.WriteSnapshot(&singleSnap); err != nil {
			t.Fatal(err)
		}
		sharded, err := ReadShardedMonitorSnapshot(bytes.NewReader(singleSnap.Bytes()), cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		var shardedSnap bytes.Buffer
		if err := sharded.WriteSnapshot(&shardedSnap); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(singleSnap.Bytes(), shardedSnap.Bytes()) {
			t.Fatal("sharded re-snapshot is not byte-identical to the Monitor snapshot")
		}
		if _, err := ReadMonitorSnapshot(bytes.NewReader(shardedSnap.Bytes()), cfg); err != nil {
			t.Fatalf("Monitor cannot restore a ShardedMonitor snapshot: %v", err)
		}
		if _, err := sharded.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestShardedConcurrentProducers drives Ingest from many goroutines owning
// disjoint customer sets (the per-customer ordering contract) and checks the
// result against the sequential engine. Run with -race.
func TestShardedConcurrentProducers(t *testing.T) {
	cfg := testConfig(t, 0.7)
	const producers = 8
	const lastK = 15

	// Per-producer feeds: each producer owns customers ≡ p (mod producers).
	perProducer := make([][]feedEvent, producers)
	r := rand.New(rand.NewSource(7))
	g := testGrid(t)
	for p := 0; p < producers; p++ {
		day := 0
		for i := 0; i < 60; i++ {
			day += r.Intn(5)
			items := make([]retail.ItemID, r.Intn(4)+1)
			for j := range items {
				items[j] = retail.ItemID(r.Intn(6) + 1)
			}
			perProducer[p] = append(perProducer[p], feedEvent{
				id:    retail.CustomerID(r.Intn(4)*producers + p + 1),
				t:     g.Origin().AddDate(0, 0, day).Add(5 * time.Hour),
				items: retail.NewBasket(items),
			})
		}
	}

	// Sequential reference: customers are independent, so feeding each
	// producer's stream in turn gives the same per-customer results.
	single, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want []Alert
	for _, evs := range perProducer {
		for _, ev := range evs {
			a, err := single.Ingest(ev.id, ev.t, ev.items)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, a...)
		}
	}
	want = append(want, single.CloseThrough(lastK)...)
	sortAlerts(want)

	for _, shards := range []int{1, 3, 8} {
		s, err := NewSharded(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(evs []feedEvent) {
				defer wg.Done()
				for _, ev := range evs {
					if err := s.Ingest(ev.id, ev.t, ev.items); err != nil {
						t.Error(err)
						return
					}
				}
			}(perProducer[p])
		}
		wg.Wait()
		got, err := s.CloseThrough(lastK)
		if err != nil {
			t.Fatal(err)
		}
		if !alertsEqual(want, got) {
			t.Fatalf("shards=%d: concurrent-producer alerts differ: got %d, want %d", shards, len(got), len(want))
		}
		if s.Customers() != single.Customers() {
			t.Fatalf("shards=%d: customers = %d, want %d", shards, s.Customers(), single.Customers())
		}
		final, err := s.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(final) != 0 {
			t.Fatalf("shards=%d: Close returned %d alerts after CloseThrough", shards, len(final))
		}
	}
}

// TestShardedFlushBarrier: Flush delivers every alert raised by enqueued
// receipts exactly once, and a second Flush is empty.
func TestShardedFlushBarrier(t *testing.T) {
	g := testGrid(t)
	cfg := testConfig(t, 0.7)
	s, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	full := retail.NewBasket([]retail.ItemID{1, 2, 3, 4})
	// Four healthy windows, then erosion; ingesting window 5 closes window 4
	// inside the shard goroutine, so the alert sits in the shard buffer.
	for k := 0; k < 4; k++ {
		if err := s.Ingest(7, at(g, k, 3), full); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Ingest(7, at(g, 4, 3), retail.NewBasket([]retail.ItemID{1})); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(7, at(g, 5, 3), retail.NewBasket([]retail.ItemID{1})); err != nil {
		t.Fatal(err)
	}
	alerts, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Customer != 7 || alerts[0].GridIndex != 4 {
		t.Fatalf("Flush alerts = %+v, want one for customer 7 window 4", alerts)
	}
	again, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second Flush redelivered %d alerts", len(again))
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedEmptyAndSingleton covers the degenerate populations.
func TestShardedEmptyAndSingleton(t *testing.T) {
	g := testGrid(t)
	cfg := testConfig(t, 0.7)

	empty, err := NewSharded(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a, err := empty.Flush(); err != nil || len(a) != 0 {
		t.Fatalf("empty Flush = %v, %v", a, err)
	}
	if a, err := empty.CloseThrough(10); err != nil || len(a) != 0 {
		t.Fatalf("empty CloseThrough = %v, %v", a, err)
	}
	if empty.Customers() != 0 {
		t.Fatalf("empty Customers = %d", empty.Customers())
	}
	var snap bytes.Buffer
	if err := empty.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadShardedMonitorSnapshot(bytes.NewReader(snap.Bytes()), cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Customers() != 0 {
		t.Fatalf("restored empty monitor has %d customers", restored.Customers())
	}
	if _, err := empty.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Close(); err != nil {
		t.Fatal(err)
	}

	// Singleton population: behaves exactly like the Monitor tests.
	one, err := NewSharded(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	full := retail.NewBasket([]retail.ItemID{1, 2})
	for k := 0; k < 3; k++ {
		if err := one.Ingest(4, at(g, k, 1), full); err != nil {
			t.Fatal(err)
		}
	}
	alerts, err := one.CloseThrough(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 3 {
		t.Fatalf("singleton alerts = %d, want 3", len(alerts))
	}
	v, k, ok := one.Stability(4)
	if !ok || k != 5 || v != 0 {
		t.Fatalf("singleton Stability = %v,%d,%v", v, k, ok)
	}
	if one.Customers() != 1 {
		t.Fatalf("singleton Customers = %d", one.Customers())
	}
	if _, err := one.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedErrorSurfacing: ingest errors surface at the next barrier as
// the lowest-sequence error, then clear.
func TestShardedErrorSurfacing(t *testing.T) {
	g := testGrid(t)
	cfg := testConfig(t, 0.5)
	s, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := retail.NewBasket([]retail.ItemID{1})
	// Two customers advance to window 5, then both receive stale receipts —
	// customer 2's first in feed order, so its error must be the one
	// reported regardless of which shards they hash to.
	for _, id := range []retail.CustomerID{2, 9} {
		if err := s.Ingest(id, at(g, 3, 0), b); err != nil {
			t.Fatal(err)
		}
		if err := s.Ingest(id, at(g, 5, 0), b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Ingest(2, at(g, 4, 0), b); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(9, at(g, 4, 0), b); err != nil {
		t.Fatal(err)
	}
	alerts, err := s.Flush()
	if !errors.Is(err, ErrStale) {
		t.Fatalf("Flush error = %v, want ErrStale", err)
	}
	if !strings.Contains(err.Error(), "customer 2") {
		t.Fatalf("error %q does not name the lowest-sequence offender", err)
	}
	_ = alerts
	// The error was delivered; the next barrier is clean and the monitor
	// keeps serving the unaffected feed.
	if _, err := s.Flush(); err != nil {
		t.Fatalf("error not cleared after delivery: %v", err)
	}
	if err := s.Ingest(2, at(g, 6, 0), b); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CloseThrough(6); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedClosed: lifecycle errors after Close, accessors still usable.
func TestShardedClosed(t *testing.T) {
	g := testGrid(t)
	cfg := testConfig(t, 0.5)
	s, err := NewSharded(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := retail.NewBasket([]retail.ItemID{1})
	for k := 0; k < 2; k++ {
		if err := s.Ingest(3, at(g, k, 1), b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(3, at(g, 2, 1), b); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close = %v", err)
	}
	if _, err := s.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close = %v", err)
	}
	if _, err := s.CloseThrough(5); !errors.Is(err, ErrClosed) {
		t.Fatalf("CloseThrough after Close = %v", err)
	}
	if _, err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v", err)
	}
	// Read-only surface stays live on the quiescent state.
	if s.Customers() != 1 {
		t.Fatalf("Customers after Close = %d", s.Customers())
	}
	if v, k, ok := s.Stability(3); !ok || k != 0 || v != 1 {
		t.Fatalf("Stability after Close = %v,%d,%v", v, k, ok)
	}
	var snap bytes.Buffer
	if err := s.WriteSnapshot(&snap); err != nil {
		t.Fatalf("WriteSnapshot after Close: %v", err)
	}
	if _, err := ReadMonitorSnapshot(bytes.NewReader(snap.Bytes()), cfg); err != nil {
		t.Fatalf("snapshot written after Close does not restore: %v", err)
	}
}

// TestShardedConcurrentSnapshots: WriteSnapshot is safe (and identical)
// from many goroutines at once — the stop-the-world pauses must serialize,
// not interleave into a shard-park deadlock. Run with -race.
func TestShardedConcurrentSnapshots(t *testing.T) {
	cfg := testConfig(t, 0.7)
	feed := randomFeed(t, 3, 6, 80)
	s, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range feed {
		if err := s.Ingest(ev.id, ev.t, ev.items); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	const writers = 6
	snaps := make([][]byte, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			if err := s.WriteSnapshot(&buf); err != nil {
				t.Error(err)
				return
			}
			snaps[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 1; i < writers; i++ {
		if !bytes.Equal(snaps[0], snaps[i]) {
			t.Fatalf("concurrent snapshot %d differs", i)
		}
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedDefaultsAndValidation: shards <= 0 resolves to GOMAXPROCS, and
// config validation runs before any goroutine starts.
func TestShardedDefaultsAndValidation(t *testing.T) {
	cfg := testConfig(t, 0.5)
	s, err := NewSharded(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() < 1 {
		t.Fatalf("Shards = %d", s.Shards())
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Beta = 1
	if _, err := NewSharded(bad, 4); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := ReadShardedMonitorSnapshot(bytes.NewReader(nil), bad, 2); err == nil {
		t.Fatal("invalid config accepted by snapshot restore")
	}
}
