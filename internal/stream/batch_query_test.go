package stream

import (
	"fmt"
	"testing"

	"github.com/gautrais/stability/internal/retail"
)

// queryIDs builds the batch query set for a feed: every customer that
// appears, plus interleaved never-seen ids, in a fixed mixed order.
func queryIDs(feed []feedEvent) []retail.CustomerID {
	var ids []retail.CustomerID
	seen := map[retail.CustomerID]bool{}
	for _, ev := range feed {
		if !seen[ev.id] {
			seen[ev.id] = true
			ids = append(ids, ev.id, ev.id+1) // +1 is (almost surely) unknown
		}
	}
	return ids
}

// TestStabilitiesMatchesSingles pins the batch query contract at every
// shard count, on both the open (shard-fanned control message) and closed
// (direct read) paths: row i of Stabilities(ids, dst) must equal what the
// single Stability(ids[i]) call returns, and both must equal the
// sequential Monitor's answers for the same replay.
func TestStabilitiesMatchesSingles(t *testing.T) {
	feed := randomFeed(t, 7, 40, 900)
	lastK := 6
	_, ref := replaySingle(t, testConfig(t, 0.7), feed, lastK)
	ids := queryIDs(feed)
	want := ref.Stabilities(ids, nil)

	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			_, s := replaySharded(t, testConfig(t, 0.7), shards, feed, lastK)
			check := func(phase string) {
				got := s.Stabilities(ids, nil)
				if len(got) != len(ids) {
					t.Fatalf("%s: %d rows for %d ids", phase, len(got), len(ids))
				}
				anyOK := false
				for i, row := range got {
					v, k, ok := s.Stability(ids[i])
					if row.Customer != ids[i] || row.Value != v || row.GridIndex != k || row.OK != ok {
						t.Fatalf("%s row %d: batch %+v, single (%v,%d,%v)", phase, i, row, v, k, ok)
					}
					if row != want[i] {
						t.Fatalf("%s row %d: sharded %+v, sequential %+v", phase, i, row, want[i])
					}
					anyOK = anyOK || row.OK
				}
				if !anyOK {
					t.Fatalf("%s: no scored customer; differential is vacuous", phase)
				}
			}
			check("open")
			if _, err := s.Close(); err != nil {
				t.Fatal(err)
			}
			check("closed")
		})
	}
}

// TestStabilitiesReusesDst pins the dst-recycling contract: a dst with
// enough capacity is truncated and refilled in place, a short one is
// replaced.
func TestStabilitiesReusesDst(t *testing.T) {
	feed := randomFeed(t, 9, 10, 200)
	_, m := replaySingle(t, testConfig(t, 0.7), feed, 4)
	ids := queryIDs(feed)

	dst := make([]CustomerStability, 0, len(ids)+16)
	out := m.Stabilities(ids, dst)
	if &out[0] != &dst[:1][0] {
		t.Error("capacious dst was not reused")
	}
	short := make([]CustomerStability, 0, 1)
	out2 := m.Stabilities(ids, short)
	if len(out2) != len(ids) {
		t.Fatalf("short dst: %d rows, want %d", len(out2), len(ids))
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("row %d differs across dst strategies: %+v vs %+v", i, out[i], out2[i])
		}
	}
}
