// Self-healing maintenance for the serving path: the drainer goroutine
// doubles as a supervisor that, between receipt batches, saves snapshots
// with bounded retry + backoff, appends accepted receipts to an STB1
// journal and self-compacts it crash-safely, and (in follow mode) tails a
// growing snapshot file as the ingest source, resyncing automatically when
// the file is compacted underneath it.
//
// Everything here rides the existing drainer select loop — no new
// goroutines (R3) — and every schedule decision (retry counts, backoff
// depth) is tick-counted, never wall-clock-derived (R2): which alerts
// exist and what the SMN1 state is remain a pure function of the accepted
// receipt sequence, fault outcomes included.
package stream

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/store"
)

const (
	// degradedThreshold is the consecutive-failure count past which a
	// maintenance loop (saver, compactor, follower) marks the pipeline
	// degraded in Health().
	degradedThreshold = 3
	// maintRetries bounds the immediate in-cycle retries of a failed
	// maintenance attempt: one cycle makes at most 1+maintRetries attempts
	// before it gives up and backs off.
	maintRetries = 2
	// maxBackoffTicks caps the exponential backoff skip.
	maxBackoffTicks = 32
)

// backoff is tick-counted exponential backoff for a periodic maintenance
// loop: after f consecutive failed cycles, the next min(2^(f-1),
// maxBackoffTicks) ticks are skipped before the loop tries again.
// Counting ticks instead of reading a clock keeps the failure-path
// schedule a pure function of the tick/outcome sequence.
type backoff struct {
	fails int
	skip  int
}

// due reports whether this tick should run, consuming one skip otherwise.
func (b *backoff) due() bool {
	if b.skip > 0 {
		b.skip--
		return false
	}
	return true
}

func (b *backoff) failure() {
	b.fails++
	n := maxBackoffTicks
	if b.fails <= 5 {
		n = 1 << (b.fails - 1)
	}
	if n > maxBackoffTicks {
		n = maxBackoffTicks
	}
	b.skip = n
}

func (b *backoff) success() { b.fails, b.skip = 0, 0 }

// IngestorHealth is the pipeline's readiness snapshot: Degraded flips when
// a maintenance loop has failed degradedThreshold consecutive times, and
// Reasons name the failing loops. A degraded ingestor still serves queries
// and ingests receipts — degradation means its durability or input loop is
// in trouble, the signal a readiness probe should act on.
type IngestorHealth struct {
	// Degraded reports whether any maintenance loop is persistently
	// failing.
	Degraded bool `json:"degraded"`
	// Reasons lists one entry per failing loop (saver, compactor,
	// follower); empty when healthy.
	Reasons []string `json:"degraded_reasons,omitempty"`
}

// Health reports the maintenance loops' readiness state.
func (i *Ingestor) Health() IngestorHealth {
	var h IngestorHealth
	if n := i.saveFailStreak.Load(); n >= degradedThreshold {
		h.Reasons = append(h.Reasons, fmt.Sprintf("saver failing: %d consecutive save cycles failed", n))
	}
	if n := i.compactFailStreak.Load(); n >= degradedThreshold {
		h.Reasons = append(h.Reasons, fmt.Sprintf("compactor backing off: %d consecutive compactions failed", n))
	}
	if n := i.followFailStreak.Load(); n >= degradedThreshold {
		h.Reasons = append(h.Reasons, fmt.Sprintf("follower stalled: %d consecutive polls failed", n))
	}
	h.Degraded = len(h.Reasons) > 0
	return h
}

// maintain runs one supervised maintenance cycle: skip while backing off,
// try once plus up to maintRetries immediate retries, then record the
// outcome in the backoff state and the consecutive-failure gauge.
func (i *Ingestor) maintain(bo *backoff, streak *atomic.Int64, retried, failed *atomic.Uint64, attempt func() bool) {
	if !bo.due() {
		return
	}
	for r := 0; r <= maintRetries; r++ {
		if r > 0 && retried != nil {
			retried.Add(1)
		}
		if attempt() {
			bo.success()
			streak.Store(0)
			return
		}
	}
	failed.Add(1)
	bo.failure()
	streak.Add(1)
}

// saveCycle is the drainer's periodic snapshot tick: saveAttempt with
// bounded retry, exponential backoff across failed cycles, and the
// state_save_failures / degraded accounting.
func (i *Ingestor) saveCycle() {
	i.maintain(&i.saveBo, &i.saveFailStreak, &i.saveRetries, &i.saveFailures, i.saveAttempt)
}

// compactCycle is the drainer's scheduled self-compaction tick. A journal
// already compacted to one segment (and with nothing buffered or torn) is
// left alone — the cycle is idempotent maintenance, not busywork.
func (i *Ingestor) compactCycle() {
	if i.journalSegs.Load() <= 1 && i.journalPending == 0 && i.journalTrunc < 0 {
		return
	}
	i.maintain(&i.compactBo, &i.compactFailStreak, nil, &i.compactFails, func() bool {
		_, err := i.compactJournal()
		return err == nil
	})
}

// Compact quiesces the pipeline via the Pause/Resume handshake and
// compacts the receipt journal now: pending receipts are flushed and the
// STB1 chain is rewritten as a single segment, crash-safely (tmp + fsync +
// rename — a crash leaves the old chain or the new segment, never a mix).
// The explicit counterpart of the scheduled CompactInterval tick.
func (i *Ingestor) Compact() (store.CompactStats, error) {
	if i.cfg.JournalPath == "" {
		return store.CompactStats{}, errors.New("stream: no journal configured")
	}
	if err := i.Pause(); err != nil {
		return store.CompactStats{}, err
	}
	defer i.Resume()
	stats, err := i.compactJournal()
	if err != nil {
		i.compactFails.Add(1)
		i.compactFailStreak.Add(1)
	} else {
		i.compactFailStreak.Store(0)
	}
	return stats, err
}

// compactJournal repairs any torn tail, flushes buffered receipts, and
// rewrites the journal chain as one segment. Runs on the drainer (or with
// the drainer parked by Pause).
func (i *Ingestor) compactJournal() (store.CompactStats, error) {
	if err := i.journalRepair(); err != nil {
		return store.CompactStats{}, err
	}
	i.journalFlush()
	if i.journalSegs.Load() == 0 {
		return store.CompactStats{}, nil
	}
	stats, err := store.CompactFile(i.cfg.FS, i.cfg.JournalPath, time.Time{})
	if err != nil {
		return stats, err
	}
	i.journalSegs.Store(1)
	i.compactions.Add(1)
	return stats, nil
}

// openJournal validates an existing journal at startup: it finds the last
// complete-segment boundary, cuts a torn tail left by a crashed append
// (failing loudly on real corruption instead of silently dropping data),
// and seeds the segment gauge.
func (i *Ingestor) openJournal() error {
	path := i.cfg.JournalPath
	probe := store.NewFollower(i.cfg.FS, path)
	if _, err := probe.Poll(); err != nil {
		return fmt.Errorf("stream: journal %s: %w", path, err)
	}
	var size int64
	switch info, err := i.cfg.FS.Stat(path); {
	case err == nil:
		size = info.Size()
	case errors.Is(err, iofs.ErrNotExist):
		return nil // no journal yet; the first flush creates it
	default:
		return err
	}
	if size > probe.Offset() {
		// Trailing bytes past the last complete segment: a torn append
		// from a crashed run polls clean (nil) and is cut; a corrupt
		// segment makes this second poll fail loudly.
		if _, err := probe.Poll(); err != nil {
			return fmt.Errorf("stream: journal %s: %w", path, err)
		}
		if err := i.cfg.FS.Truncate(path, probe.Offset()); err != nil {
			return err
		}
	}
	i.journalSegs.Store(int64(probe.Segments()))
	return nil
}

// journalAdd buffers one accepted receipt for the next journal segment.
// Spend is not part of the serving wire format, so journaled receipts
// carry zero spend; the monitor never reads it.
func (i *Ingestor) journalAdd(ev ReceiptEvent) {
	if i.journalBuf == nil {
		return
	}
	if err := i.journalBuf.Add(ev.Customer, ev.Time, ev.Items, 0); err != nil {
		i.journalErrs.Add(1)
		return
	}
	i.journalPending++
}

// journalFlush appends the buffered receipts as one STB1 segment. On
// failure the receipts stay buffered and the next flush point retries, so
// a transient disk fault costs segment granularity, never receipts.
func (i *Ingestor) journalFlush() {
	if i.journalBuf == nil || i.journalPending == 0 {
		return
	}
	if err := i.journalAppend(i.journalBuf.Build()); err != nil {
		i.journalErrs.Add(1)
		return
	}
	i.journalBuf = store.NewBuilder()
	i.journalPending = 0
	i.journalSegs.Add(1)
}

// journalRepair cuts the journal back to the last complete-segment
// boundary recorded when an append failed partway.
func (i *Ingestor) journalRepair() error {
	if i.journalTrunc < 0 {
		return nil
	}
	if err := i.cfg.FS.Truncate(i.cfg.JournalPath, i.journalTrunc); err != nil {
		return err
	}
	i.journalTrunc = -1
	return nil
}

// journalAppend writes one segment to the end of the journal. A failed
// write may leave a torn trailing segment, so the pre-append size is
// remembered and the file is truncated back to it before the next append.
func (i *Ingestor) journalAppend(delta *store.Store) error {
	path := i.cfg.JournalPath
	if err := i.journalRepair(); err != nil {
		return err
	}
	var size int64
	switch info, err := i.cfg.FS.Stat(path); {
	case err == nil:
		size = info.Size()
	case errors.Is(err, iofs.ErrNotExist):
	default:
		return err
	}
	f, err := i.cfg.FS.OpenAppend(path)
	if err != nil {
		return err
	}
	err = delta.WriteBinary(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		i.journalTrunc = size
		return err
	}
	return nil
}

// followPoll is the drainer's follow-mode tick: poll the tailed file for
// complete new segments and feed them through the standard barrier path.
// ErrFileShrank (the file was compacted or replaced underneath the
// follower) triggers an immediate resync followed by a fresh poll, so one
// tick is enough to recover.
func (i *Ingestor) followPoll() {
	i.followPolls.Add(1)
	st, err := i.follower.Poll()
	if err != nil && errors.Is(err, store.ErrFileShrank) {
		i.resyncFollower()
		st, err = i.follower.Poll()
	}
	if err != nil {
		i.followErrs.Add(1)
		i.followFailStreak.Add(1)
		return
	}
	i.followFailStreak.Store(0)
	if st == nil || st.NumReceipts() == 0 {
		return
	}
	i.processFollowBatch(st)
}

// processFollowBatch turns one polled store delta into the event feed:
// receipts in already-closed windows are skipped (exactly the `monitor
// -follow` staleness rule), the rest are stably time-sorted and handed to
// the standard process loop, whose month-advance barriers implement the
// conservative close rule. Store.Each iterates customers in ascending id
// order with chronological receipts per customer, so equal timestamps
// break ties by customer id — the same total order a sequential replay of
// the file uses, making poll batching invisible in the output.
func (i *Ingestor) processFollowBatch(s *store.Store) {
	minK := i.lastClosedK + 1
	var evs []ReceiptEvent
	s.Each(func(h retail.History) bool {
		for _, r := range h.Receipts {
			if r.Time.Before(i.grid.origin) || i.windowOfMonth(i.monthIndex(r.Time)) < minK {
				continue
			}
			evs = append(evs, ReceiptEvent{Customer: h.Customer, Time: r.Time, Items: r.Items})
		}
		return true
	})
	if len(evs) == 0 {
		return
	}
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].Time.Before(evs[b].Time) })
	i.process(evs)
}

// resyncFollower rebuilds the pipeline from the whole (compacted) file: a
// fresh monitor replaces the current one under the swap lock, the follower
// restarts from byte zero, and alerts for windows the old incarnation
// already published are suppressed via suppressK — so the delivered alert
// sequence and the SMN1 state stay byte-identical to a sequential replay
// of the file, straight through the compaction.
func (i *Ingestor) resyncFollower() {
	i.followResync.Add(1)
	fresh, err := NewSharded(i.cfg.Monitor, i.cfg.Shards)
	if err != nil {
		// cfg was validated at construction, so this is unreachable in
		// practice; leave the old monitor in place and let the next tick
		// retry the resync (the follower still reports the shrink).
		i.followErrs.Add(1)
		i.followFailStreak.Add(1)
		return
	}
	if i.lastClosedK > i.suppressK {
		i.suppressK = i.lastClosedK
	}
	i.monMu.Lock()
	old := i.mon
	i.evictedBase += old.Evicted()
	i.mon = fresh
	alerts, _ := old.Close()
	i.monMu.Unlock()
	i.publish(alerts)
	i.follower = store.NewFollower(i.cfg.FS, i.cfg.FollowPath)
	i.maxMonth = math.MinInt / 2
	i.lastClosedK = -1
}

// restartFollowReplay converts a restored-state start into a full-file
// replay: the restored snapshot's watermark proves which windows the
// previous run already closed and published, so the replay suppresses
// those alerts and rebuilds everything else from the file. Runs before the
// drainer starts. (Replaying the file beats resuming from the snapshot
// here: a snapshot taken mid-month holds pending partial baskets that the
// file would re-deliver, and double-counting them would corrupt scores.)
func (i *Ingestor) restartFollowReplay() error {
	fresh, err := NewSharded(i.cfg.Monitor, i.cfg.Shards)
	if err != nil {
		return err
	}
	old := i.mon
	i.mon = fresh
	old.Close()
	i.suppressK = i.lastClosedK
	i.lastClosedK = -1
	i.maxMonth = math.MinInt / 2
	return nil
}
