package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	iofs "io/fs"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/faultfs"
	"github.com/gautrais/stability/internal/retail"
)

// snapshotBytes builds a small but structurally complete SMN1 snapshot:
// several customers, scored history, and a non-empty pending basket.
func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	g := testGrid(t)
	m, err := New(testConfig(t, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []retail.CustomerID{3, 11, 40000} {
		for w := 0; w <= 2; w++ {
			if _, err := m.Ingest(c, at(g, w, int(c%20)), retail.NewBasket([]retail.ItemID{1, retail.ItemID(c%7 + 2)})); err != nil {
				t.Fatal(err)
			}
		}
	}
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotTruncationAlwaysErrors cuts a valid SMN1 snapshot at every
// byte boundary: every prefix must fail to restore with an error — a torn
// state file can never produce a silently partial monitor.
func TestSnapshotTruncationAlwaysErrors(t *testing.T) {
	snap := snapshotBytes(t)
	cfg := testConfig(t, 0.7)
	if _, err := ReadMonitorSnapshot(bytes.NewReader(snap), cfg); err != nil {
		t.Fatalf("intact snapshot failed to restore: %v", err)
	}
	for n := 0; n < len(snap); n++ {
		if _, err := ReadMonitorSnapshot(bytes.NewReader(snap[:n]), cfg); err == nil {
			t.Fatalf("truncation at byte %d of %d restored without error", n, len(snap))
		}
	}
}

// TestSnapshotCorruptMagicRejected flips each magic byte in turn.
func TestSnapshotCorruptMagicRejected(t *testing.T) {
	snap := snapshotBytes(t)
	cfg := testConfig(t, 0.7)
	for i := 0; i < 4; i++ {
		bad := append([]byte(nil), snap...)
		bad[i] ^= 0x5a
		if _, err := ReadMonitorSnapshot(bytes.NewReader(bad), cfg); err == nil {
			t.Fatalf("corrupt magic byte %d accepted", i)
		}
	}
}

// TestSnapshotPreRetentionCompat hand-encodes a customer record the way
// pre-retention writers did — flags bit2 clear, no lastActiveK field — and
// checks it restores with the conservative default lastActiveK = openK.
func TestSnapshotPreRetentionCompat(t *testing.T) {
	cfg := testConfig(t, 0.7)
	var buf bytes.Buffer
	sw, err := newSnapshotWriter(&buf, cfg.Grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	const openK, lastScoredK = 5, 4
	if err := sw.putU(7); err != nil { // customer id
		t.Fatal(err)
	}
	if err := sw.putI(openK); err != nil {
		t.Fatal(err)
	}
	if err := sw.putI(lastScoredK); err != nil {
		t.Fatal(err)
	}
	if err := sw.bw.WriteByte(3); err != nil { // lastDefined|scored, no bit2
		t.Fatal(err)
	}
	var f8 [8]byte
	binary.LittleEndian.PutUint64(f8[:], math.Float64bits(0.25))
	if _, err := sw.bw.Write(f8[:]); err != nil {
		t.Fatal(err)
	}
	if err := sw.putU(0); err != nil { // empty pending
		t.Fatal(err)
	}
	if err := sw.flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := core.NewTracker(cfg.Model)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	states, err := readMonitorStates(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatalf("pre-retention snapshot failed to restore: %v", err)
	}
	st, ok := states[7]
	if !ok {
		t.Fatal("customer 7 missing after restore")
	}
	if st.lastActiveK != openK {
		t.Fatalf("restored lastActiveK = %d, want openK = %d", st.lastActiveK, openK)
	}
	if st.lastStability != 0.25 || !st.lastDefined || !st.scored || st.lastScoredK != lastScoredK {
		t.Fatalf("restored state mangled: %+v", st)
	}
}

// TestIngestorCrashMidStateSave drives the kill-mid-state-save crash
// points: with a fault injected into the final save, Close must fail
// loudly, the previous state file must survive byte-identical, and a clean
// recovery run over the lost tail must converge to the uninterrupted run's
// exact bytes.
func TestIngestorCrashMidStateSave(t *testing.T) {
	feed := randomFeed(t, 77, 10, 500)
	cut := len(feed) / 2
	wantAlerts, wantSnap := replayIngestReference(t, ingestorConfig(t, 1).Monitor, feed)

	cases := []struct {
		name        string
		fp          faultfs.Failpoint
		tmpSurvives bool
	}{
		{"crash-mid-write", faultfs.Failpoint{Op: faultfs.OpWrite, PathSuffix: ".tmp", Crash: true, CrashAtByte: 64}, false},
		{"write-error", faultfs.Failpoint{Op: faultfs.OpWrite, PathSuffix: ".tmp"}, false},
		{"sync-error", faultfs.Failpoint{Op: faultfs.OpSync, PathSuffix: ".tmp"}, false},
		{"create-error", faultfs.Failpoint{Op: faultfs.OpCreate, PathSuffix: ".tmp"}, false},
		{"rename-error", faultfs.Failpoint{Op: faultfs.OpRename, PathSuffix: ".tmp"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			state := filepath.Join(t.TempDir(), "mon.smn")

			// Leg 1: clean run over the first half; Close persists v1.
			cfg := ingestorConfig(t, 4)
			cfg.StatePath = state
			ing, err := NewIngestor(cfg)
			if err != nil {
				t.Fatal(err)
			}
			enqueueAll(t, ing, feed[:cut], 7)
			if err := ing.Close(); err != nil {
				t.Fatal(err)
			}
			alerts := drainLog(t, ing)
			v1, err := os.ReadFile(state)
			if err != nil {
				t.Fatal(err)
			}

			// Leg 2: the process "dies" during the shutdown save.
			in := faultfs.NewInjector(faultfs.OS{})
			in.Arm(tc.fp)
			cfg2 := ingestorConfig(t, 4)
			cfg2.StatePath = state
			cfg2.FS = in
			ing2, err := NewIngestor(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			enqueueAll(t, ing2, feed[cut:], 7)
			if err := ing2.Close(); err == nil {
				t.Fatal("Close with an injected save fault reported success (silent partial state)")
			}
			if in.Fired() == 0 {
				t.Fatal("failpoint never fired")
			}
			if got := ing2.Metrics().SaveErrors; got == 0 {
				t.Fatal("save error not counted")
			}
			got, err := os.ReadFile(state)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(v1, got) {
				t.Fatal("crashed save corrupted the previous state file")
			}
			if !tc.tmpSurvives {
				if _, err := os.Stat(state + ".tmp"); !errors.Is(err, iofs.ErrNotExist) {
					t.Fatalf("stray temp file after failed save: stat err = %v", err)
				}
			}

			// Leg 3: recover from v1 and replay the lost tail; the final
			// bytes must match the uninterrupted run exactly.
			cfg3 := ingestorConfig(t, 4)
			cfg3.StatePath = state
			ing3, err := NewIngestor(cfg3)
			if err != nil {
				t.Fatal(err)
			}
			enqueueAll(t, ing3, feed[cut:], 7)
			if err := ing3.Close(); err != nil {
				t.Fatal(err)
			}
			alerts = append(alerts, drainLog(t, ing3)...)
			final, err := os.ReadFile(state)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantSnap, final) {
				t.Fatal("recovered state differs from the uninterrupted run")
			}
			if !alertsEqual(wantAlerts, alerts) {
				t.Fatal("recovered alert stream differs from the uninterrupted run")
			}
		})
	}
}

// TestIngestorRestoreFaultFailsLoudly: an injected error opening the state
// file must abort startup, never silently start from an empty monitor.
func TestIngestorRestoreFaultFailsLoudly(t *testing.T) {
	state := filepath.Join(t.TempDir(), "mon.smn")
	cfg := ingestorConfig(t, 2)
	cfg.StatePath = state
	ing, err := NewIngestor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enqueueAll(t, ing, randomFeed(t, 5, 4, 50), 7)
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	in := faultfs.NewInjector(faultfs.OS{})
	in.Arm(faultfs.Failpoint{Op: faultfs.OpOpen, PathSuffix: "mon.smn"})
	cfg2 := ingestorConfig(t, 2)
	cfg2.StatePath = state
	cfg2.FS = in
	if _, err := NewIngestor(cfg2); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("NewIngestor with failing restore: err = %v, want ErrInjected", err)
	}
}
