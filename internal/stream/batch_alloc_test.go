//go:build !race

// Batch-query allocation guards: the steady-state batch stability path
// must be allocation-free per customer. Excluded under -race because the
// race runtime adds bookkeeping allocations.

package stream

import "testing"

// TestStabilitiesAllocFreePerCustomer pins the batch query cost model:
// with a recycled dst, the closed (direct-read) path performs zero
// allocations regardless of batch size, and the open (shard-fanned) path
// performs a constant number — the per-shard control closures and the
// barrier — that does not grow with the number of customers queried.
func TestStabilitiesAllocFreePerCustomer(t *testing.T) {
	feed := randomFeed(t, 5, 64, 1200)
	ids := queryIDs(feed)
	if len(ids) < 96 {
		t.Fatalf("feed yielded only %d query ids", len(ids))
	}
	_, s := replaySharded(t, testConfig(t, 0.7), 4, feed, 6)
	dst := make([]CustomerStability, 0, len(ids))

	small := testing.AllocsPerRun(100, func() { dst = s.Stabilities(ids[:16], dst) })
	large := testing.AllocsPerRun(100, func() { dst = s.Stabilities(ids, dst) })
	if large > small {
		t.Errorf("open path allocates per customer: %.1f allocs at %d ids vs %.1f at 16",
			large, len(ids), small)
	}

	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(100, func() { dst = s.Stabilities(ids, dst) }); got != 0 {
		t.Errorf("closed sharded batch query: %.1f allocs/op, want 0", got)
	}

	_, m := replaySingle(t, testConfig(t, 0.7), feed, 6)
	if got := testing.AllocsPerRun(100, func() { dst = m.Stabilities(ids, dst) }); got != 0 {
		t.Errorf("sequential batch query: %.1f allocs/op, want 0", got)
	}
}
