package stream

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/gautrais/stability/internal/faultfs"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/store"
)

// appendFeedSegment appends the feed slice to path as one STB1 segment,
// the way an external snapshot writer grows a chain.
func appendFeedSegment(t *testing.T, path string, feed []feedEvent) {
	t.Helper()
	if len(feed) == 0 {
		return
	}
	b := store.NewBuilder()
	for _, ev := range feed {
		if err := b.Add(ev.id, ev.t, ev.items, 0); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := b.Build().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the deadline expires. The waits are
// liveness only — which receipts the pipeline accepts and what it outputs
// never depend on poll timing, and the equality assertions prove it.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// followConfig builds a follow-mode ingestor config with fast ticks.
func followConfig(t *testing.T, shards int, stb, state string) IngestorConfig {
	t.Helper()
	cfg := ingestorConfig(t, shards)
	cfg.FollowPath = stb
	cfg.FollowInterval = time.Millisecond
	cfg.StatePath = state
	return cfg
}

// TestFollowModeMatchesSequentialReplay is the follow-mode half of the
// determinism contract: a daemon tailing a growing STB1 file must emit the
// same alert log and persist the same SMN1 bytes as a sequential Monitor
// replay of that file, at every shard count, regardless of how the
// appends interleave with the polls.
func TestFollowModeMatchesSequentialReplay(t *testing.T) {
	feed := randomFeed(t, 51, 12, 700)
	wantAlerts, wantSnap := replayIngestReference(t, ingestorConfig(t, 1).Monitor, feed)
	if len(wantAlerts) == 0 {
		t.Fatal("reference produced no alerts; feed too tame to prove anything")
	}
	for _, shards := range []int{1, 2, 4, 8} {
		dir := t.TempDir()
		stb := filepath.Join(dir, "feed.stb")
		state := filepath.Join(dir, "mon.smn")
		ing, err := NewIngestor(followConfig(t, shards, stb, state))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ing.Enqueue([]ReceiptEvent{{}}); err != ErrFollowing {
			t.Fatalf("Enqueue in follow mode: err = %v, want ErrFollowing", err)
		}
		for start := 0; start < len(feed); start += 37 {
			end := start + 37
			if end > len(feed) {
				end = len(feed)
			}
			appendFeedSegment(t, stb, feed[start:end])
		}
		waitFor(t, "follower to consume the feed", func() bool {
			return ing.Metrics().ReceiptsIngested == uint64(len(feed))
		})
		if err := ing.Close(); err != nil {
			t.Fatal(err)
		}
		if got := drainLog(t, ing); !alertsEqual(wantAlerts, got) {
			t.Errorf("shards=%d: follow-mode alert log differs from sequential replay (%d vs %d alerts)",
				shards, len(got), len(wantAlerts))
		}
		snap, err := os.ReadFile(state)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantSnap, snap) {
			t.Errorf("shards=%d: follow-mode SMN1 state differs from sequential replay", shards)
		}
	}
}

// TestFollowModeResyncUnderCompaction compacts the tailed file out from
// under a mid-tail follower, then keeps appending: the daemon must detect
// the rewrite, resync by replaying the compacted file with already-
// published windows suppressed, and still end byte-identical to the
// one-shot replay.
func TestFollowModeResyncUnderCompaction(t *testing.T) {
	feed := randomFeed(t, 52, 10, 600)
	cut := 300
	wantAlerts, wantSnap := replayIngestReference(t, ingestorConfig(t, 1).Monitor, feed)
	if len(wantAlerts) == 0 {
		t.Fatal("reference produced no alerts")
	}
	for _, shards := range []int{1, 4} {
		dir := t.TempDir()
		stb := filepath.Join(dir, "feed.stb")
		state := filepath.Join(dir, "mon.smn")
		// First half as two segments, so compaction genuinely shrinks.
		appendFeedSegment(t, stb, feed[:cut/2])
		appendFeedSegment(t, stb, feed[cut/2:cut])
		ing, err := NewIngestor(followConfig(t, shards, stb, state))
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, "follower to reach the compaction point", func() bool {
			return ing.Metrics().ReceiptsIngested == uint64(cut)
		})
		if _, err := store.CompactFile(nil, stb, time.Time{}); err != nil {
			t.Fatal(err)
		}
		appendFeedSegment(t, stb, feed[cut:])
		// The resync replays the whole compacted file (cut receipts) before
		// consuming the tail, so the counter lands exactly at cut + len(feed).
		waitFor(t, "resync replay to finish", func() bool {
			return ing.Metrics().ReceiptsIngested == uint64(cut+len(feed))
		})
		if err := ing.Close(); err != nil {
			t.Fatal(err)
		}
		if got := ing.Metrics(); got.FollowResyncs == 0 {
			t.Errorf("shards=%d: compaction under the follower triggered no resync", shards)
		}
		if got := drainLog(t, ing); !alertsEqual(wantAlerts, got) {
			t.Errorf("shards=%d: alert log across resync differs from sequential replay (%d vs %d alerts)",
				shards, len(got), len(wantAlerts))
		}
		snap, err := os.ReadFile(state)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantSnap, snap) {
			t.Errorf("shards=%d: SMN1 state across resync differs from sequential replay", shards)
		}
	}
}

// TestFollowModeRestartMidTail stops a follow-mode daemon mid-tail (clean
// shutdown with state) and restarts it against the same file: the restart
// replays the file with the previous run's published windows suppressed,
// so the concatenated alert logs and the final state bytes must equal an
// uninterrupted run — which equals the sequential replay.
func TestFollowModeRestartMidTail(t *testing.T) {
	feed := randomFeed(t, 53, 10, 600)
	cut := 330
	wantAlerts, wantSnap := replayIngestReference(t, ingestorConfig(t, 1).Monitor, feed)
	if len(wantAlerts) == 0 {
		t.Fatal("reference produced no alerts")
	}
	dir := t.TempDir()
	stb := filepath.Join(dir, "feed.stb")
	state := filepath.Join(dir, "mon.smn")

	appendFeedSegment(t, stb, feed[:cut/2])
	appendFeedSegment(t, stb, feed[cut/2:cut])
	ing, err := NewIngestor(followConfig(t, 4, stb, state))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first incarnation to consume the partial tail", func() bool {
		return ing.Metrics().ReceiptsIngested == uint64(cut)
	})
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	alerts := drainLog(t, ing)

	// Restart: the tail keeps growing while the daemon is down.
	appendFeedSegment(t, stb, feed[cut:])
	ing2, err := NewIngestor(followConfig(t, 4, stb, state))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "restarted incarnation to replay and catch up", func() bool {
		return ing2.Metrics().ReceiptsIngested == uint64(len(feed))
	})
	if err := ing2.Close(); err != nil {
		t.Fatal(err)
	}
	alerts = append(alerts, drainLog(t, ing2)...)
	if !alertsEqual(wantAlerts, alerts) {
		t.Errorf("alert log across restart differs from sequential replay (%d vs %d alerts)",
			len(alerts), len(wantAlerts))
	}
	snap, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantSnap, snap) {
		t.Error("SMN1 state across restart differs from sequential replay")
	}
}

// journalExpected renders the feed as the journal's canonical compacted
// bytes: every accepted receipt, zero spend, merged and sorted.
func journalExpected(t *testing.T, feed []feedEvent) []byte {
	t.Helper()
	b := store.NewBuilder()
	for _, ev := range feed {
		if err := b.Add(ev.id, ev.t, ev.items, 0); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := b.Build().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// journalStore decodes a journal chain (all segments merged).
func journalStore(t *testing.T, path string) *store.Store {
	t.Helper()
	fol := store.NewFollower(nil, path)
	agg := store.NewBuilder()
	st, err := fol.Poll()
	if err != nil {
		t.Fatal(err)
	}
	for st != nil && st.NumReceipts() > 0 {
		st.Each(func(h retail.History) bool {
			for _, r := range h.Receipts {
				if err := agg.AddReceipt(h.Customer, r); err != nil {
					t.Fatal(err)
				}
			}
			return true
		})
		if st, err = fol.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	return agg.Build()
}

// buildJournalChain runs a journaling ingestor over the feed and returns
// the resulting multi-segment chain bytes.
func buildJournalChain(t *testing.T, feed []feedEvent, journal string) []byte {
	t.Helper()
	cfg := ingestorConfig(t, 2)
	cfg.JournalPath = journal
	ing, err := NewIngestor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enqueueAll(t, ing, feed, 13)
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if segs := ing.Metrics().JournalSegments; segs < 2 {
		t.Fatalf("journal chain has %d segments, want >= 2 for a real compaction", segs)
	}
	chain, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	return chain
}

// TestJournalRecordsAcceptedReceipts: the daemon-owned journal must hold
// exactly the accepted receipt sequence, and Compact must rewrite the
// chain to the canonical single-segment bytes while the daemon serves.
func TestJournalRecordsAcceptedReceipts(t *testing.T) {
	feed := randomFeed(t, 61, 9, 500)
	journal := filepath.Join(t.TempDir(), "receipts.stbj")
	cfg := ingestorConfig(t, 4)
	cfg.JournalPath = journal
	ing, err := NewIngestor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enqueueAll(t, ing, feed, 17)
	waitFor(t, "queue to drain", func() bool {
		return ing.Metrics().ReceiptsIngested == uint64(len(feed))
	})
	if _, err := ing.Compact(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if want := journalExpected(t, feed); !bytes.Equal(want, got) {
		t.Error("compacted journal differs from canonical bytes of the accepted receipts")
	}
	m := ing.Metrics()
	if m.Compactions != 1 || m.JournalSegments != 1 {
		t.Errorf("compactions = %d, segments = %d; want 1, 1", m.Compactions, m.JournalSegments)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing after the compaction must not add anything: the journal
	// already held every accepted receipt.
	after, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, after) {
		t.Error("Close after Compact changed the journal")
	}
}

// TestJournalCompactionCrashAtEveryByte is the acceptance sweep: with a
// crash injected at every byte offset of the compaction rewrite, the
// daemon's Compact must fail loudly leaving the pre-compaction chain
// untouched, and a retry must land exactly on the compacted bytes — never
// a torn state.
func TestJournalCompactionCrashAtEveryByte(t *testing.T) {
	feed := randomFeed(t, 62, 5, 150)
	dir := t.TempDir()
	journal := filepath.Join(dir, "receipts.stbj")
	chain := buildJournalChain(t, feed, journal)
	want := journalExpected(t, feed)

	for off := 0; off < len(want); off++ {
		if err := os.WriteFile(journal, chain, 0o644); err != nil {
			t.Fatal(err)
		}
		in := faultfs.NewInjector(faultfs.OS{})
		in.Arm(faultfs.Failpoint{Op: faultfs.OpWrite, PathSuffix: ".tmp", Crash: true, CrashAtByte: int64(off)})
		cfg := ingestorConfig(t, 1)
		cfg.JournalPath = journal
		cfg.FS = in
		ing, err := NewIngestor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ing.Compact(); err == nil {
			t.Fatalf("offset %d: Compact with a crash injected reported success", off)
		}
		got, err := os.ReadFile(journal)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(chain, got) {
			t.Fatalf("offset %d: failed compaction tore the chain", off)
		}
		in.Reset()
		if _, err := ing.Compact(); err != nil {
			t.Fatalf("offset %d: recovery compaction failed: %v", off, err)
		}
		if got, err = os.ReadFile(journal); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("offset %d: recovered journal differs from canonical bytes", off)
		}
		m := ing.Metrics()
		if m.CompactionFailures != 1 || m.Compactions != 1 {
			t.Fatalf("offset %d: failures = %d, compactions = %d; want 1, 1", off, m.CompactionFailures, m.Compactions)
		}
		if err := ing.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalTornTailTruncatedOnRestart: a crashed append leaves a torn
// trailing segment; the next start must cut it back to the last complete
// boundary and keep journaling, while real corruption refuses to start.
func TestJournalTornTailTruncatedOnRestart(t *testing.T) {
	feed := randomFeed(t, 63, 6, 300)
	dir := t.TempDir()
	journal := filepath.Join(dir, "receipts.stbj")
	chain := buildJournalChain(t, feed, journal)

	// Torn tail: half of another segment's bytes (a valid segment prefix).
	var extra bytes.Buffer
	b := store.NewBuilder()
	for _, ev := range feed[:40] {
		if err := b.Add(ev.id, ev.t.AddDate(2, 0, 0), ev.items, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Build().WriteBinary(&extra); err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte(nil), chain...), extra.Bytes()[:extra.Len()/2]...)
	if err := os.WriteFile(journal, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := ingestorConfig(t, 2)
	cfg.JournalPath = journal
	ing, err := NewIngestor(cfg)
	if err != nil {
		t.Fatalf("restart over a torn journal tail failed: %v", err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chain, got) {
		t.Error("torn tail was not truncated back to the last complete segment")
	}

	// Corruption (mangled segment magic — the codec's structural
	// invariant; payload bytes carry no checksum) must refuse to start.
	bad := append([]byte(nil), chain...)
	bad[0] ^= 0x5a
	if err := os.WriteFile(journal, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewIngestor(cfg); err == nil {
		t.Error("NewIngestor over a corrupt journal started silently")
	}
}

// TestJournalAppendFaultKeepsReceipts: a transient write fault on a
// journal append must not lose receipts — they stay buffered, the torn
// tail is repaired, and the next barrier lands them.
func TestJournalAppendFaultKeepsReceipts(t *testing.T) {
	feed := randomFeed(t, 64, 8, 500)
	journal := filepath.Join(t.TempDir(), "receipts.stbj")
	in := faultfs.NewInjector(faultfs.OS{})
	// Fail the 3rd write to the journal file — mid-chain, after some
	// segments exist, leaving a torn tail for the repair path.
	in.Arm(faultfs.Failpoint{Op: faultfs.OpWrite, PathSuffix: ".stbj", CountDown: 2})
	cfg := ingestorConfig(t, 4)
	cfg.JournalPath = journal
	cfg.FS = in
	ing, err := NewIngestor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enqueueAll(t, ing, feed, 11)
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if in.Fired() == 0 {
		t.Fatal("failpoint never fired")
	}
	if got := ing.Metrics().JournalErrors; got == 0 {
		t.Fatal("journal append fault not counted")
	}
	want := journalExpected(t, feed)
	var buf bytes.Buffer
	if err := journalStore(t, journal).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Error("journal after a transient append fault lost or duplicated receipts")
	}
}

// TestSaveCycleBackoffAndDegradedFault drives the supervised saver through
// persistent failure into the degraded health state and back: retries and
// failures are counted, readiness degrades after the threshold, and a
// healed disk restores both the saves and the health.
func TestSaveCycleBackoffAndDegradedFault(t *testing.T) {
	state := filepath.Join(t.TempDir(), "mon.smn")
	in := faultfs.NewInjector(faultfs.OS{})
	in.Arm(faultfs.Failpoint{Op: faultfs.OpCreate, PathSuffix: ".tmp", Persistent: true})
	cfg := ingestorConfig(t, 2)
	cfg.StatePath = state
	cfg.SaveInterval = time.Millisecond
	cfg.FS = in
	ing, err := NewIngestor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enqueueAll(t, ing, randomFeed(t, 65, 4, 60), 7)
	waitFor(t, "saver to degrade", func() bool {
		m := ing.Metrics()
		return m.Degraded && m.StateSaveFailures >= degradedThreshold && m.SaveRetries > 0
	})
	if h := ing.Health(); !h.Degraded || len(h.Reasons) == 0 {
		t.Fatalf("degraded health missing reasons: %+v", h)
	}
	in.Reset()
	waitFor(t, "saver to heal", func() bool {
		return !ing.Metrics().Degraded
	})
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("healed saver never persisted state: %v", err)
	}
}
