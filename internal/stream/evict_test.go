package stream

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

// attritionFeed builds a defection-shaped feed: every customer is active
// from window 0 through a customer-specific last window (gaps inside the
// active span never reach maxGap windows), then silent forever — the shape
// the retention horizon is designed for. Returns the time-sorted feed and
// each customer's last active window.
func attritionFeed(t *testing.T, seed int64, customers, maxWindow, maxGap int) ([]feedEvent, map[retail.CustomerID]int) {
	t.Helper()
	g := testGrid(t)
	r := rand.New(rand.NewSource(seed))
	last := make(map[retail.CustomerID]int, customers)
	var feed []feedEvent
	for c := 0; c < customers; c++ {
		id := retail.CustomerID(c*7919 + 1)
		lastW := r.Intn(maxWindow) + 1
		last[id] = lastW
		prev := 0
		for w := 0; w <= lastW; w++ {
			// Buy at the last window, at window 0, whenever a longer gap
			// would cross the horizon, and otherwise at random.
			if w != 0 && w != lastW && w-prev < maxGap && r.Float64() < 0.45 {
				continue
			}
			prev = w
			items := make([]retail.ItemID, r.Intn(3)+1)
			for j := range items {
				items[j] = retail.ItemID(r.Intn(8) + 1)
			}
			feed = append(feed, feedEvent{
				id:    id,
				t:     at(g, w, r.Intn(25)),
				items: retail.NewBasket(items),
			})
		}
	}
	sort.SliceStable(feed, func(i, j int) bool { return feed[i].t.Before(feed[j].t) })
	return feed, last
}

// TestEvictedMatchesFullInsideHorizon is the tentpole equivalence property:
// for a defection-shaped feed, a monitor with a retention horizon H emits
// exactly the full-retention monitor's alerts with GridIndex inside each
// customer's horizon (last active window + H), bit for bit — eviction only
// removes scoring that would happen after the horizon, never changes it.
// Retained customers' stabilities also match, and the sharded engine
// reproduces the evicting sequential monitor byte-identically at every
// shard count.
func TestEvictedMatchesFullInsideHorizon(t *testing.T) {
	const (
		horizon   = 3
		maxWindow = 12
	)
	feed, last := attritionFeed(t, 99, 30, maxWindow, horizon)

	fullCfg := testConfig(t, 0.7)
	evictCfg := fullCfg
	evictCfg.RetentionWindows = horizon

	fullBatches, fullMon := replaySingle(t, fullCfg, feed, maxWindow)
	evictBatches, evictMon := replaySingle(t, evictCfg, feed, maxWindow)

	if len(fullBatches) != len(evictBatches) {
		t.Fatalf("batch counts differ: full %d, evicting %d", len(fullBatches), len(evictBatches))
	}
	total := 0
	for bi := range fullBatches {
		var want []Alert
		for _, a := range fullBatches[bi] {
			if a.GridIndex <= last[a.Customer]+horizon {
				want = append(want, a)
			}
		}
		if !alertsEqual(want, evictBatches[bi]) {
			t.Fatalf("batch %d: evicting alerts differ from horizon-filtered full alerts (%d vs %d)",
				bi, len(evictBatches[bi]), len(want))
		}
		total += len(evictBatches[bi])
	}
	if total == 0 {
		t.Fatal("no alerts inside the horizon; feed too tame to prove anything")
	}

	// Customers still inside their horizon at the last barrier must carry
	// identical stabilities in both monitors.
	retained := 0
	for id, lw := range last {
		if lw+horizon <= maxWindow {
			continue // evicted by the final barrier
		}
		retained++
		fv, fk, fok := fullMon.Stability(id)
		ev, ek, eok := evictMon.Stability(id)
		if fv != ev || fk != ek || fok != eok {
			t.Fatalf("customer %d: retained stability (%v,%d,%v) != full (%v,%d,%v)",
				id, ev, ek, eok, fv, fk, fok)
		}
	}
	if retained == 0 || retained == len(last) {
		t.Fatalf("retained %d of %d customers; feed exercises only one side of the horizon", retained, len(last))
	}
	if got := evictMon.Customers(); got != retained {
		t.Fatalf("evicting monitor tracks %d customers, want %d retained", got, retained)
	}
	if got := evictMon.Evicted(); got != uint64(len(last)-retained) {
		t.Fatalf("Evicted() = %d, want %d", got, len(last)-retained)
	}

	// Closing far past every horizon drains the monitor completely: the
	// memory bound holds over unbounded silent time.
	evictMon.CloseThrough(maxWindow + horizon + int(2))
	if got := evictMon.Customers(); got != 0 {
		t.Fatalf("customers after closing past every horizon: %d, want 0", got)
	}
	if got := evictMon.Evicted(); got != uint64(len(last)) {
		t.Fatalf("cumulative evictions %d, want %d", got, len(last))
	}

	// The sharded engine must reproduce the evicting sequential monitor
	// batch-for-batch and snapshot-byte-for-byte at every shard count.
	var wantSnap bytes.Buffer
	_, seqMon := replaySingle(t, evictCfg, feed, maxWindow)
	if err := seqMon.WriteSnapshot(&wantSnap); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		gotBatches, s := replaySharded(t, evictCfg, shards, feed, maxWindow)
		for bi := range evictBatches {
			if !alertsEqual(evictBatches[bi], gotBatches[bi]) {
				t.Fatalf("shards=%d batch %d: sharded evicting alerts differ from sequential", shards, bi)
			}
		}
		var snap bytes.Buffer
		if err := s.WriteSnapshot(&snap); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantSnap.Bytes(), snap.Bytes()) {
			t.Fatalf("shards=%d: snapshot bytes differ from sequential evicting monitor", shards)
		}
		if got := s.Evicted(); got != uint64(len(last)-retained) {
			t.Fatalf("shards=%d: Evicted() = %d, want %d", shards, got, len(last)-retained)
		}
		if _, err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEvictionResurrectionDeterministic feeds a stream where customers go
// silent past the horizon and then return — the resurrection path, where
// the old relationship is scored to its horizon and a fresh one starts.
// The outcome must be byte-identical at every shard count.
func TestEvictionResurrectionDeterministic(t *testing.T) {
	feed := randomFeed(t, 41, 40, 400)
	cfg := testConfig(t, 0.7)
	cfg.RetentionWindows = 1
	lastK := cfg.Grid.Index(feed[len(feed)-1].t)

	wantBatches, seqMon := replaySingle(t, cfg, feed, lastK)
	if seqMon.Evicted() == 0 {
		t.Fatal("no horizon crossings; feed does not exercise resurrection")
	}
	var wantSnap bytes.Buffer
	if err := seqMon.WriteSnapshot(&wantSnap); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		gotBatches, s := replaySharded(t, cfg, shards, feed, lastK)
		if len(gotBatches) != len(wantBatches) {
			t.Fatalf("shards=%d: %d batches, want %d", shards, len(gotBatches), len(wantBatches))
		}
		for bi := range wantBatches {
			if !alertsEqual(wantBatches[bi], gotBatches[bi]) {
				t.Fatalf("shards=%d batch %d: resurrection alerts differ from sequential", shards, bi)
			}
		}
		var snap bytes.Buffer
		if err := s.WriteSnapshot(&snap); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantSnap.Bytes(), snap.Bytes()) {
			t.Fatalf("shards=%d: snapshot bytes differ after resurrections", shards)
		}
		if got := s.Evicted(); got != seqMon.Evicted() {
			t.Fatalf("shards=%d: Evicted() = %d, want %d", shards, got, seqMon.Evicted())
		}
		if _, err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMonitorEvictIdle exercises the explicit sweep: nothing happens while
// the horizon is open, the customer's remaining silent windows are scored
// when it closes, and a post-eviction receipt starts a fresh relationship.
func TestMonitorEvictIdle(t *testing.T) {
	g := testGrid(t)
	cfg := testConfig(t, 0.7)
	cfg.RetentionWindows = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(1, at(g, 0, 3), retail.NewBasket([]retail.ItemID{1, 2})); err != nil {
		t.Fatal(err)
	}
	if alerts, n := m.EvictIdle(1); n != 0 || len(alerts) != 0 {
		t.Fatalf("EvictIdle(1) evicted %d customers (%d alerts); horizon still open", n, len(alerts))
	}
	if _, n := m.EvictIdle(2); n != 1 {
		t.Fatalf("EvictIdle(2) evicted %d customers, want 1", n)
	}
	if m.Customers() != 0 || m.Evicted() != 1 {
		t.Fatalf("after sweep: customers=%d evicted=%d, want 0/1", m.Customers(), m.Evicted())
	}
	// Scored windows 0..2 were closed by the sweep; a receipt far later is a
	// brand-new relationship, not a stale-window error.
	if _, err := m.Ingest(1, at(g, 9, 1), retail.NewBasket([]retail.ItemID{1})); err != nil {
		t.Fatalf("post-eviction receipt: %v", err)
	}
	if m.Customers() != 1 {
		t.Fatalf("customers after return: %d, want 1", m.Customers())
	}

	// Without a horizon the sweep is a no-op.
	m2, err := New(testConfig(t, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Ingest(1, at(g, 0, 3), retail.NewBasket([]retail.ItemID{1})); err != nil {
		t.Fatal(err)
	}
	if _, n := m2.EvictIdle(1 << 20); n != 0 {
		t.Fatalf("unbounded monitor evicted %d customers", n)
	}
}

// TestIngestorRestoreEvictsPastHorizon restores a full-retention snapshot
// under a newly configured horizon: the construction-time sweep must
// reclaim every customer already past it — deterministically, computable
// from the snapshot alone — and the TTL ticker must change nothing after.
func TestIngestorRestoreEvictsPastHorizon(t *testing.T) {
	const horizon = 2
	feed, _ := attritionFeed(t, 7, 20, 10, horizon)
	state := filepath.Join(t.TempDir(), "mon.smn")
	cfg := ingestorConfig(t, 2) // full retention
	cfg.StatePath = state
	ing, err := NewIngestor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enqueueAll(t, ing, feed, 9)
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	// Expected outcome of the restore sweep, from a sequential restore.
	snap, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	evictCfg := cfg.Monitor
	evictCfg.RetentionWindows = horizon
	seq, err := ReadMonitorSnapshot(bytes.NewReader(snap), evictCfg)
	if err != nil {
		t.Fatal(err)
	}
	k, ok := seq.Watermark()
	if !ok {
		t.Fatal("empty restored monitor")
	}
	sweepAlerts, evicted := seq.EvictIdle(k - 1)
	if evicted == 0 || seq.Customers() == 0 {
		t.Fatalf("restore sweep evicts %d and retains %d; feed exercises only one side", evicted, seq.Customers())
	}
	if len(sweepAlerts) != 0 {
		t.Fatalf("restore sweep raised %d alerts; expired customers were already fully scored", len(sweepAlerts))
	}

	cfg2 := ingestorConfig(t, 4)
	cfg2.Monitor.RetentionWindows = horizon
	cfg2.StatePath = state
	cfg2.TTLInterval = time.Millisecond
	ing2, err := NewIngestor(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer ing2.Close()
	m := ing2.Metrics()
	if m.CustomersRetained != seq.Customers() || m.CustomersEvicted != seq.Evicted() {
		t.Fatalf("after restore sweep: retained=%d evicted=%d, want %d/%d",
			m.CustomersRetained, m.CustomersEvicted, seq.Customers(), seq.Evicted())
	}
	// Let the TTL ticker fire a few times: pure reclaim, nothing to change.
	time.Sleep(10 * time.Millisecond)
	m2 := ing2.Metrics()
	if m2.CustomersRetained != m.CustomersRetained || m2.CustomersEvicted != m.CustomersEvicted {
		t.Fatalf("TTL ticks changed the population: %+v -> %+v", m, m2)
	}
	if got, _, _ := ing2.AlertsSince(0, 0); len(got) != 0 {
		t.Fatalf("TTL ticks published %d alerts from already-scored windows", len(got))
	}
}

// TestEvictionSnapshotRoundTrip proves lastActiveK survives persistence: a
// restored monitor evicts at exactly the same barrier as the original.
func TestEvictionSnapshotRoundTrip(t *testing.T) {
	g := testGrid(t)
	cfg := testConfig(t, 0.7)
	cfg.RetentionWindows = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Customer 1 last active in window 3, customer 2 in window 1.
	for w := 0; w <= 3; w++ {
		if _, err := m.Ingest(1, at(g, w, 2), retail.NewBasket([]retail.ItemID{1, 2})); err != nil {
			t.Fatal(err)
		}
		if w <= 1 {
			if _, err := m.Ingest(2, at(g, w, 2), retail.NewBasket([]retail.ItemID{3})); err != nil {
				t.Fatal(err)
			}
		}
	}
	var snap bytes.Buffer
	if err := m.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	r, err := ReadMonitorSnapshot(bytes.NewReader(snap.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	origAlerts := m.CloseThrough(3)
	restAlerts := r.CloseThrough(3)
	if !alertsEqual(origAlerts, restAlerts) {
		t.Fatal("restored monitor's alerts differ from original at the eviction barrier")
	}
	// Window 3 ends customer 2's horizon (1+2); customer 1 is retained.
	for name, mon := range map[string]*Monitor{"original": m, "restored": r} {
		if got := mon.Customers(); got != 1 {
			t.Fatalf("%s: %d customers after barrier, want 1", name, got)
		}
		if got := mon.Evicted(); got != 1 {
			t.Fatalf("%s: evicted %d, want 1", name, got)
		}
	}
}
