package stream

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

func testGrid(t *testing.T) window.Grid {
	t.Helper()
	g, err := window.NewGrid(time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), window.Span{Months: 2})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testConfig(t *testing.T, beta float64) Config {
	return Config{Grid: testGrid(t), Model: core.Options{Alpha: 2}, Beta: beta, TopJ: 3}
}

func at(g window.Grid, k int, day int) time.Time {
	start, _ := g.Bounds(k)
	return start.AddDate(0, 0, day)
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(t, 0.5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Beta = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("beta=1 accepted")
	}
	bad = good
	bad.Beta = -0.1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative beta accepted")
	}
	bad = good
	bad.TopJ = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative TopJ accepted")
	}
	bad = good
	bad.Model.Alpha = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("alpha=1 accepted")
	}
	if err := (Config{Model: core.Options{Alpha: 2}}).Validate(); err == nil {
		t.Fatal("zero grid accepted")
	}
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted bad config")
	}
}

func TestMonitorAlertsOnErosion(t *testing.T) {
	g := testGrid(t)
	m, err := New(testConfig(t, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	full := retail.NewBasket([]retail.ItemID{1, 2, 3, 4})
	// Four healthy windows.
	var alerts []Alert
	for k := 0; k < 4; k++ {
		a, err := m.Ingest(7, at(g, k, 3), full)
		if err != nil {
			t.Fatal(err)
		}
		alerts = append(alerts, a...)
	}
	if len(alerts) != 0 {
		t.Fatalf("healthy customer alerted: %+v", alerts)
	}
	// Window 4: only item 1 — closing it requires a receipt in window 5.
	if _, err := m.Ingest(7, at(g, 4, 3), retail.NewBasket([]retail.ItemID{1})); err != nil {
		t.Fatal(err)
	}
	a, err := m.Ingest(7, at(g, 5, 3), retail.NewBasket([]retail.ItemID{1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 {
		t.Fatalf("expected 1 alert, got %d", len(a))
	}
	alert := a[0]
	if alert.Customer != 7 || alert.GridIndex != 4 {
		t.Fatalf("alert = %+v", alert)
	}
	if alert.Stability > 0.7 {
		t.Fatalf("alert stability %v above beta", alert.Stability)
	}
	if len(alert.Blame) == 0 {
		t.Fatal("alert carries no blame")
	}
	blamed := map[retail.ItemID]bool{}
	for _, b := range alert.Blame {
		blamed[b.Item] = true
	}
	for _, want := range []retail.ItemID{2, 3, 4} {
		if !blamed[want] {
			t.Errorf("missing item %d not blamed: %+v", want, alert.Blame)
		}
	}
	if alert.Drop <= 0 {
		t.Fatalf("alert drop = %v", alert.Drop)
	}
	if alert.End.Before(alert.Start) {
		t.Fatal("alert window bounds inverted")
	}
}

func TestMonitorSkippedWindowsScoreEmpty(t *testing.T) {
	g := testGrid(t)
	m, _ := New(testConfig(t, 0.7))
	full := retail.NewBasket([]retail.ItemID{1, 2})
	for k := 0; k < 3; k++ {
		if _, err := m.Ingest(9, at(g, k, 2), full); err != nil {
			t.Fatal(err)
		}
	}
	// Jump straight to window 6: windows 2..5 close, 3..5 empty.
	alerts, err := m.Ingest(9, at(g, 6, 2), full)
	if err != nil {
		t.Fatal(err)
	}
	// Empty windows have stability 0 → alerts for windows 3, 4, 5.
	if len(alerts) != 3 {
		t.Fatalf("alerts = %d, want 3 (one per empty window)", len(alerts))
	}
	for i, a := range alerts {
		if a.GridIndex != 3+i {
			t.Fatalf("alert %d at window %d, want %d", i, a.GridIndex, 3+i)
		}
		if a.Stability != 0 {
			t.Fatalf("empty-window stability = %v", a.Stability)
		}
	}
}

func TestMonitorStaleReceipt(t *testing.T) {
	g := testGrid(t)
	m, _ := New(testConfig(t, 0.5))
	b := retail.NewBasket([]retail.ItemID{1})
	if _, err := m.Ingest(1, at(g, 3, 0), b); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(1, at(g, 5, 0), b); err != nil {
		t.Fatal(err)
	}
	_, err := m.Ingest(1, at(g, 4, 0), b)
	if !errors.Is(err, ErrStale) {
		t.Fatalf("stale receipt error = %v", err)
	}
	// Same-window receipts are fine in any order.
	if _, err := m.Ingest(1, at(g, 5, 1), b); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorCloseThrough(t *testing.T) {
	g := testGrid(t)
	m, _ := New(testConfig(t, 0.7))
	full := retail.NewBasket([]retail.ItemID{1, 2})
	for k := 0; k < 3; k++ {
		if _, err := m.Ingest(4, at(g, k, 1), full); err != nil {
			t.Fatal(err)
		}
	}
	// Customer goes silent; watermark advances to window 5.
	alerts := m.CloseThrough(5)
	// Windows 2 (full, pending) scores fine; 3,4,5 empty → 3 alerts.
	if len(alerts) != 3 {
		t.Fatalf("alerts = %d, want 3", len(alerts))
	}
	v, k, ok := m.Stability(4)
	if !ok || k != 5 || v != 0 {
		t.Fatalf("Stability = %v,%d,%v", v, k, ok)
	}
	// Closing again through the same watermark is a no-op.
	if extra := m.CloseThrough(5); len(extra) != 0 {
		t.Fatalf("re-close produced %d alerts", len(extra))
	}
}

func TestMonitorStabilityAccessor(t *testing.T) {
	g := testGrid(t)
	m, _ := New(testConfig(t, 0.5))
	if _, _, ok := m.Stability(99); ok {
		t.Fatal("unknown customer has stability")
	}
	b := retail.NewBasket([]retail.ItemID{1})
	if _, err := m.Ingest(2, at(g, 0, 1), b); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := m.Stability(2); ok {
		t.Fatal("open-window customer reported scored stability")
	}
	if _, err := m.Ingest(2, at(g, 1, 1), b); err != nil {
		t.Fatal(err)
	}
	v, k, ok := m.Stability(2)
	if !ok || k != 0 || v != 1 {
		t.Fatalf("Stability = %v,%d,%v; want 1,0,true", v, k, ok)
	}
	if m.Customers() != 1 {
		t.Fatalf("Customers = %d", m.Customers())
	}
}

func TestMonitorUndefinedWindowsDoNotAlertByDefault(t *testing.T) {
	g := testGrid(t)
	cfg := testConfig(t, 0.99) // aggressive beta
	m, _ := New(cfg)
	b := retail.NewBasket([]retail.ItemID{1})
	if _, err := m.Ingest(3, at(g, 0, 1), b); err != nil {
		t.Fatal(err)
	}
	// First window closes with no prior history: stability 1, undefined.
	alerts, err := m.Ingest(3, at(g, 1, 1), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 0 {
		t.Fatalf("undefined window alerted: %+v", alerts)
	}

	// With AlertOnUndefined and beta ~1... stability 1 > beta still no
	// alert; use an empty leading window instead.
	cfg.AlertOnUndefined = true
	m2, _ := New(cfg)
	if _, err := m2.Ingest(3, at(g, 1, 1), b); err != nil {
		t.Fatal(err)
	}
	// Leading window under first-seen policy: skip-counted but still
	// scored as undefined stability 1 — never ≤ beta < 1, so no alert
	// either way. This documents that brand-new customers cannot alert.
	alerts = m2.CloseThrough(1)
	if len(alerts) != 0 {
		t.Fatalf("new customer alerted: %+v", alerts)
	}
}

// TestMonitorMatchesBatchPipeline is the equivalence property: streaming
// ingestion must produce exactly the stability series of the batch
// pipeline on the same receipts.
func TestMonitorMatchesBatchPipeline(t *testing.T) {
	g := testGrid(t)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random history: receipts over ~10 windows with gaps.
		h := retail.History{Customer: 77}
		day := 0
		for i := 0; i < 30; i++ {
			day += r.Intn(40)
			items := make([]retail.ItemID, r.Intn(5))
			for j := range items {
				items[j] = retail.ItemID(r.Intn(8) + 1)
			}
			h.Receipts = append(h.Receipts, retail.Receipt{
				Time:  g.Origin().AddDate(0, 0, day).Add(9 * time.Hour),
				Items: retail.NewBasket(items),
			})
		}
		lastK := g.Index(h.Receipts[len(h.Receipts)-1].Time)

		// Batch.
		model, err := core.New(core.Options{Alpha: 2})
		if err != nil {
			return false
		}
		wd, err := window.Windowize(h, g, lastK)
		if err != nil {
			return false
		}
		batch, err := model.Analyze(wd)
		if err != nil {
			return false
		}

		// Stream.
		m, err := New(Config{Grid: g, Model: core.Options{Alpha: 2}, Beta: 0.5})
		if err != nil {
			return false
		}
		var scored []Scored
		m.OnScored(func(s Scored) { scored = append(scored, s) })
		for _, rec := range h.Receipts {
			if _, err := m.Ingest(h.Customer, rec.Time, rec.Items); err != nil {
				return false
			}
		}
		m.CloseThrough(lastK)

		if len(scored) != batch.Len() {
			return false
		}
		for i, s := range scored {
			bp := batch.Points[i]
			if s.GridIndex != bp.GridIndex {
				return false
			}
			if math.Abs(s.Result.Stability-bp.Stability) > 1e-12 || s.Result.Defined != bp.Defined {
				return false
			}
			if len(s.Result.Missing) != len(bp.Missing) {
				return false
			}
			for j := range s.Result.Missing {
				if s.Result.Missing[j].Item != bp.Missing[j].Item {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMonitorMultipleCustomersIndependent(t *testing.T) {
	g := testGrid(t)
	m, _ := New(testConfig(t, 0.7))
	a := retail.NewBasket([]retail.ItemID{1, 2})
	bk := retail.NewBasket([]retail.ItemID{3, 4})
	for k := 0; k < 4; k++ {
		if _, err := m.Ingest(1, at(g, k, 1), a); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Ingest(2, at(g, k, 2), bk); err != nil {
			t.Fatal(err)
		}
	}
	// Customer 1 erodes; customer 2 stays healthy.
	if _, err := m.Ingest(1, at(g, 4, 1), retail.NewBasket([]retail.ItemID{1})); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(2, at(g, 4, 1), bk); err != nil {
		t.Fatal(err)
	}
	alerts := m.CloseThrough(4)
	if len(alerts) != 1 || alerts[0].Customer != 1 {
		t.Fatalf("alerts = %+v, want exactly customer 1", alerts)
	}
	if m.Customers() != 2 {
		t.Fatalf("Customers = %d", m.Customers())
	}
}

func TestMonitorTopJCapsBlame(t *testing.T) {
	g := testGrid(t)
	cfg := testConfig(t, 0.9)
	cfg.TopJ = 2
	m, _ := New(cfg)
	full := retail.NewBasket([]retail.ItemID{1, 2, 3, 4, 5, 6})
	for k := 0; k < 3; k++ {
		if _, err := m.Ingest(5, at(g, k, 1), full); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Ingest(5, at(g, 3, 1), retail.NewBasket([]retail.ItemID{1})); err != nil {
		t.Fatal(err)
	}
	alerts := m.CloseThrough(3)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d", len(alerts))
	}
	if len(alerts[0].Blame) != 2 {
		t.Fatalf("blame = %d items, want TopJ=2", len(alerts[0].Blame))
	}
}

func TestMonitorWarmupSuppressesColdStartAlerts(t *testing.T) {
	g := testGrid(t)
	cfg := testConfig(t, 0.7)
	cfg.WarmupWindows = 3
	m, _ := New(cfg)
	full := retail.NewBasket([]retail.ItemID{1, 2, 3})
	// Window 0 full, window 1 erodes hard — but warm-up (3 windows) must
	// suppress the alert.
	if _, err := m.Ingest(8, at(g, 0, 1), full); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(8, at(g, 1, 1), retail.NewBasket([]retail.ItemID{1})); err != nil {
		t.Fatal(err)
	}
	alerts, err := m.Ingest(8, at(g, 2, 1), full)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 0 {
		t.Fatalf("warm-up did not suppress alert: %+v", alerts)
	}
	// After warm-up, the same erosion must alert.
	for k := 3; k < 6; k++ {
		if _, err := m.Ingest(8, at(g, k, 1), full); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Ingest(8, at(g, 6, 1), retail.NewBasket([]retail.ItemID{1})); err != nil {
		t.Fatal(err)
	}
	alerts = m.CloseThrough(6)
	if len(alerts) != 1 {
		t.Fatalf("post-warm-up erosion alerts = %d, want 1", len(alerts))
	}
	// Validation.
	bad := cfg
	bad.WarmupWindows = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative warm-up accepted")
	}
}

func TestMonitorDenormalizedInputTolerated(t *testing.T) {
	g := testGrid(t)
	m, _ := New(testConfig(t, 0.5))
	// Raw, unsorted, duplicated input must be normalized on ingest.
	if _, err := m.Ingest(1, at(g, 0, 1), retail.Basket{3, 1, 3, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(1, at(g, 1, 1), retail.Basket{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	v, _, ok := m.Stability(1)
	if !ok || v != 1 {
		t.Fatalf("stability = %v, %v", v, ok)
	}
}
