package stream

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

// ingestorConfig builds a small-queue ingestor config on the shared test
// grid.
func ingestorConfig(t *testing.T, shards int) IngestorConfig {
	t.Helper()
	cfg := testConfig(t, 0.7)
	cfg.WarmupWindows = 2
	return IngestorConfig{Monitor: cfg, Shards: shards}
}

// enqueueAll offers the feed in fixed-size batches and fails the test on
// any refusal — used where the policy is block (lossless).
func enqueueAll(t *testing.T, i *Ingestor, feed []feedEvent, batchSize int) {
	t.Helper()
	for start := 0; start < len(feed); start += batchSize {
		end := start + batchSize
		if end > len(feed) {
			end = len(feed)
		}
		batch := make([]ReceiptEvent, 0, end-start)
		for _, ev := range feed[start:end] {
			batch = append(batch, ReceiptEvent{Customer: ev.id, Time: ev.t, Items: ev.items})
		}
		ok, err := i.Enqueue(batch)
		if err != nil || !ok {
			t.Fatalf("enqueue batch at %d: ok=%v err=%v", start, ok, err)
		}
	}
}

// replayIngestReference replays the feed through the sequential Monitor
// with the Ingestor's exact barrier rule — close every provably complete
// window when a receipt's month advances — and returns the concatenated
// per-barrier sorted alerts plus the final SMN1 snapshot. This is the
// reference the daemon-side pipeline must reproduce byte for byte.
func replayIngestReference(t *testing.T, cfg Config, feed []feedEvent) ([]Alert, []byte) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	span := cfg.Grid.Span().Months
	maxMonth := math.MinInt / 2
	lastClosedK := -1
	var alerts, pending []Alert
	for _, ev := range feed {
		if mo := monthOfEvent(cfg.Grid, ev.t); mo > maxMonth {
			maxMonth = mo
			if closeK := mo/span - 1; closeK > lastClosedK {
				pending = append(pending, m.CloseThrough(closeK)...)
				sortAlerts(pending)
				alerts = append(alerts, pending...)
				pending = nil
				lastClosedK = closeK
			}
		}
		a, err := m.Ingest(ev.id, ev.t, ev.items)
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, a...)
	}
	sortAlerts(pending)
	alerts = append(alerts, pending...)
	var snap bytes.Buffer
	if err := m.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	return alerts, snap.Bytes()
}

// drainLog reads the full alert log and checks the sequence numbering is
// contiguous from 1.
func drainLog(t *testing.T, i *Ingestor) []Alert {
	t.Helper()
	seqs, _, _ := i.AlertsSince(0, 0)
	out := make([]Alert, len(seqs))
	for idx, sa := range seqs {
		if sa.Seq != uint64(idx)+1 {
			t.Fatalf("alert %d has seq %d, want %d", idx, sa.Seq, idx+1)
		}
		out[idx] = sa.Alert
	}
	return out
}

// TestIngestorMatchesSequentialMonitor is the serving-path half of the
// determinism contract: for every shard count, pushing a feed through the
// bounded queue + drainer pipeline yields an alert log and a persisted
// SMN1 snapshot byte-identical to a sequential Monitor replay under the
// same watermark rule. The flush ticker runs hot to prove wall-clock
// barriers cannot perturb the output.
func TestIngestorMatchesSequentialMonitor(t *testing.T) {
	feed := randomFeed(t, 7, 12, 700)
	wantAlerts, wantSnap := replayIngestReference(t, ingestorConfig(t, 1).Monitor, feed)
	if len(wantAlerts) == 0 {
		t.Fatal("reference produced no alerts; feed too tame to prove anything")
	}
	for _, shards := range []int{1, 2, 4, 8} {
		state := filepath.Join(t.TempDir(), "mon.smn")
		cfg := ingestorConfig(t, shards)
		cfg.StatePath = state
		cfg.QueueBatches = 4
		cfg.FlushInterval = time.Millisecond
		ing, err := NewIngestor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		enqueueAll(t, ing, feed, 13)
		if err := ing.Close(); err != nil {
			t.Fatal(err)
		}
		got := drainLog(t, ing)
		if !alertsEqual(wantAlerts, got) {
			t.Errorf("shards=%d: alert log differs from sequential replay (%d vs %d alerts)",
				shards, len(got), len(wantAlerts))
		}
		gotSnap, err := os.ReadFile(state)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantSnap, gotSnap) {
			t.Errorf("shards=%d: persisted snapshot differs from sequential replay", shards)
		}
		m := ing.Metrics()
		if m.ReceiptsIngested != uint64(len(feed)) {
			t.Errorf("shards=%d: ingested %d receipts, want %d", shards, m.ReceiptsIngested, len(feed))
		}
		if m.AlertsEmitted != uint64(len(wantAlerts)) {
			t.Errorf("shards=%d: emitted %d alerts, want %d", shards, m.AlertsEmitted, len(wantAlerts))
		}
		if m.Saves == 0 || m.SaveErrors != 0 {
			t.Errorf("shards=%d: saves=%d saveErrors=%d", shards, m.Saves, m.SaveErrors)
		}
	}
}

// TestIngestorResumeByteIdentical kills the pipeline mid-stream, restores
// from the persisted snapshot, and finishes the feed: the concatenated
// alert logs and the final state file must match an uninterrupted run.
func TestIngestorResumeByteIdentical(t *testing.T) {
	feed := randomFeed(t, 21, 10, 600)
	wantAlerts, wantSnap := replayIngestReference(t, ingestorConfig(t, 1).Monitor, feed)

	for _, cut := range []int{1, len(feed) / 3, len(feed) / 2, len(feed) - 1} {
		state := filepath.Join(t.TempDir(), "mon.smn")
		var got []Alert
		for leg, part := range [][]feedEvent{feed[:cut], feed[cut:]} {
			cfg := ingestorConfig(t, 4)
			cfg.StatePath = state
			ing, err := NewIngestor(cfg)
			if err != nil {
				t.Fatalf("cut=%d leg %d: %v", cut, leg, err)
			}
			enqueueAll(t, ing, part, 7)
			if err := ing.Close(); err != nil {
				t.Fatalf("cut=%d leg %d: close: %v", cut, leg, err)
			}
			got = append(got, drainLog(t, ing)...)
		}
		if !alertsEqual(wantAlerts, got) {
			t.Errorf("cut=%d: resumed alert stream differs from uninterrupted run", cut)
		}
		gotSnap, err := os.ReadFile(state)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantSnap, gotSnap) {
			t.Errorf("cut=%d: final snapshot differs from uninterrupted run", cut)
		}
	}
}

// pausedIngestor builds an ingestor with the drainer parked and the queue
// filled to capacity, the setup under which each overflow policy's behavior
// is deterministic.
func pausedIngestor(t *testing.T, policy OverflowPolicy) *Ingestor {
	t.Helper()
	cfg := ingestorConfig(t, 2)
	cfg.QueueBatches = 2
	cfg.Policy = policy
	ing, err := NewIngestor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	if err := ing.Pause(); err != nil {
		t.Fatal(err)
	}
	g := testGrid(t)
	for b := 0; b < cfg.QueueBatches; b++ {
		ok, err := ing.Enqueue([]ReceiptEvent{{
			Customer: retail.CustomerID(b + 1),
			Time:     at(g, 0, b),
			Items:    retail.NewBasket([]retail.ItemID{1}),
		}})
		if !ok || err != nil {
			t.Fatalf("fill batch %d: ok=%v err=%v", b, ok, err)
		}
	}
	if d := ing.Metrics().QueueDepth; d != cfg.QueueBatches {
		t.Fatalf("queue depth %d after fill, want %d", d, cfg.QueueBatches)
	}
	return ing
}

func overflowBatch(t *testing.T, n int) []ReceiptEvent {
	t.Helper()
	g := testGrid(t)
	batch := make([]ReceiptEvent, n)
	for j := range batch {
		batch[j] = ReceiptEvent{
			Customer: retail.CustomerID(100 + j),
			Time:     at(g, 0, 3),
			Items:    retail.NewBasket([]retail.ItemID{2}),
		}
	}
	return batch
}

func TestIngestorPolicyBlock(t *testing.T) {
	ing := pausedIngestor(t, PolicyBlock)
	done := make(chan error, 1)
	go func() {
		ok, err := ing.Enqueue(overflowBatch(t, 3))
		if err == nil && !ok {
			err = errors.New("blocked enqueue returned ok=false")
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("Enqueue returned while queue full and drainer paused: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	ing.Resume()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Enqueue still blocked after Resume")
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if m := ing.Metrics(); m.ReceiptsIngested != 5 || m.ReceiptsShed != 0 || m.ReceiptsRejected != 0 {
		t.Fatalf("block policy lost receipts: %+v", m)
	}
}

func TestIngestorPolicyShed(t *testing.T) {
	ing := pausedIngestor(t, PolicyShed)
	ok, err := ing.Enqueue(overflowBatch(t, 3))
	if ok || err != nil {
		t.Fatalf("shed: got ok=%v err=%v, want dropped with nil error", ok, err)
	}
	ing.Resume()
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if m := ing.Metrics(); m.ReceiptsShed != 3 || m.ReceiptsIngested != 2 || m.ReceiptsRejected != 0 {
		t.Fatalf("shed policy counters: %+v", m)
	}
}

func TestIngestorPolicyReject(t *testing.T) {
	ing := pausedIngestor(t, PolicyReject)
	ok, err := ing.Enqueue(overflowBatch(t, 3))
	if ok || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("reject: got ok=%v err=%v, want ErrQueueFull", ok, err)
	}
	ing.Resume()
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if m := ing.Metrics(); m.ReceiptsRejected != 3 || m.ReceiptsIngested != 2 || m.ReceiptsShed != 0 {
		t.Fatalf("reject policy counters: %+v", m)
	}
}

// TestIngestorAlertLog covers the ring: trimming to AlertBuffer, gap
// reporting through oldest, the max cap, and the long-poll wake channel.
func TestIngestorAlertLog(t *testing.T) {
	cfg := ingestorConfig(t, 1)
	cfg.AlertBuffer = 4
	ing, err := NewIngestor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	_, _, wait := ing.AlertsSince(0, 0)
	select {
	case <-wait:
		t.Fatal("wait channel closed before any publication")
	default:
	}

	mk := func(n int) []Alert {
		out := make([]Alert, n)
		for j := range out {
			out[j] = Alert{Customer: retail.CustomerID(j + 1), GridIndex: j}
		}
		return out
	}
	ing.publish(mk(6)) // seqs 1..6, ring keeps 3..6

	select {
	case <-wait:
	default:
		t.Fatal("wait channel not closed by publish")
	}

	batch, oldest, _ := ing.AlertsSince(0, 0)
	if oldest != 3 {
		t.Fatalf("oldest=%d, want 3 after trimming to AlertBuffer=4", oldest)
	}
	if len(batch) != 4 || batch[0].Seq != 3 || batch[3].Seq != 6 {
		t.Fatalf("full read returned %d alerts, seqs %v", len(batch), batch)
	}

	batch, _, _ = ing.AlertsSince(4, 0)
	if len(batch) != 2 || batch[0].Seq != 5 {
		t.Fatalf("resume after 4: got %d alerts starting at %d", len(batch), batch[0].Seq)
	}

	batch, _, _ = ing.AlertsSince(0, 2)
	if len(batch) != 2 || batch[1].Seq != 4 {
		t.Fatalf("max=2: got %d alerts", len(batch))
	}

	if batch, _, _ := ing.AlertsSince(6, 0); len(batch) != 0 {
		t.Fatalf("caught-up read returned %d alerts", len(batch))
	}
}

// TestIngestorAlertsSinceHugeAfter is a regression test: cursors far past
// the newest sequence (e.g. a forged ?after= or Last-Event-ID of MaxInt64
// and beyond) used to wrap negative in the slice-offset conversion and
// panic; they must return an empty batch.
func TestIngestorAlertsSinceHugeAfter(t *testing.T) {
	ing, err := NewIngestor(ingestorConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	alerts := make([]Alert, 3)
	for j := range alerts {
		alerts[j] = Alert{Customer: retail.CustomerID(j + 1), GridIndex: j}
	}
	ing.publish(alerts) // seqs 1..3

	for _, after := range []uint64{3, 4, math.MaxInt64, math.MaxInt64 + 1, math.MaxUint64} {
		if batch, _, _ := ing.AlertsSince(after, 10); len(batch) != 0 {
			t.Errorf("after=%d: got %d alerts, want 0", after, len(batch))
		}
	}
	if batch, _, _ := ing.AlertsSince(2, 10); len(batch) != 1 || batch[0].Seq != 3 {
		t.Errorf("after=2: got %v, want exactly seq 3", batch)
	}
}

// TestIngestorOffsetTimestampsMatchSequential spells every receipt
// timestamp in a non-UTC fixed zone, with evening instants so spellings
// like 2012-07-01T01:30:00+05:30 (June 30 in UTC) land on the far side of
// a month boundary, and pins the pipeline output byte-identical to the
// sequential replay. Regression test: the drainer's month indexing used
// the spelling's own zone, so such a receipt advanced the watermark a
// month early, force-closed a window that still had valid receipts in
// flight, and broke the determinism contract.
func TestIngestorOffsetTimestampsMatchSequential(t *testing.T) {
	zone := time.FixedZone("UTC+5:30", 5*3600+1800)
	feed := randomFeed(t, 7, 12, 700)
	crossings := 0
	for idx := range feed {
		// 07:00 → 20:00 UTC, spelled 01:30 next day in the +05:30 zone.
		feed[idx].t = feed[idx].t.Add(13 * time.Hour).In(zone)
		if feed[idx].t.Month() != feed[idx].t.UTC().Month() {
			crossings++
		}
	}
	if crossings == 0 {
		t.Fatal("no spelling crosses a month boundary; feed proves nothing")
	}
	wantAlerts, wantSnap := replayIngestReference(t, ingestorConfig(t, 1).Monitor, feed)
	if len(wantAlerts) == 0 {
		t.Fatal("reference produced no alerts; feed too tame to prove anything")
	}
	for _, shards := range []int{1, 4} {
		state := filepath.Join(t.TempDir(), "mon.smn")
		cfg := ingestorConfig(t, shards)
		cfg.StatePath = state
		ing, err := NewIngestor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		enqueueAll(t, ing, feed, 13)
		if err := ing.Close(); err != nil {
			t.Fatal(err)
		}
		got := drainLog(t, ing)
		if !alertsEqual(wantAlerts, got) {
			t.Errorf("shards=%d: offset-spelled feed diverges from sequential replay (%d vs %d alerts)",
				shards, len(got), len(wantAlerts))
		}
		gotSnap, err := os.ReadFile(state)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantSnap, gotSnap) {
			t.Errorf("shards=%d: persisted snapshot differs from sequential replay", shards)
		}
		if m := ing.Metrics(); m.IngestErrors != 0 {
			t.Errorf("shards=%d: %d ingest errors", shards, m.IngestErrors)
		}
	}
}

// TestIngestorLifecycle pins the closed-state errors and pause misuse.
func TestIngestorLifecycle(t *testing.T) {
	ing, err := NewIngestor(ingestorConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := ing.Pause(); err == nil {
		t.Fatal("double Pause succeeded")
	}
	if err := ing.Close(); err != nil { // Close must release a paused drainer
		t.Fatal(err)
	}
	if err := ing.Close(); !errors.Is(err, ErrIngestorClosed) {
		t.Fatalf("second Close: %v", err)
	}
	if ok, err := ing.Enqueue(overflowBatch(t, 1)); ok || !errors.Is(err, ErrIngestorClosed) {
		t.Fatalf("Enqueue after Close: ok=%v err=%v", ok, err)
	}
	if err := ing.Pause(); !errors.Is(err, ErrIngestorClosed) {
		t.Fatalf("Pause after Close: %v", err)
	}
	if ok, err := ing.Enqueue(nil); !ok || err != nil {
		t.Fatalf("empty batch must be a no-op even when closed: ok=%v err=%v", ok, err)
	}
}

// TestIngestorBackgroundSaver waits for the periodic saver to write the
// state file without any Close.
func TestIngestorBackgroundSaver(t *testing.T) {
	state := filepath.Join(t.TempDir(), "mon.smn")
	cfg := ingestorConfig(t, 1)
	cfg.StatePath = state
	cfg.SaveInterval = time.Millisecond
	ing, err := NewIngestor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	for tries := 0; tries < 1000; tries++ {
		if ing.Metrics().Saves > 0 {
			if _, err := os.Stat(state); err != nil {
				t.Fatalf("saves counted but state file missing: %v", err)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("background saver never fired")
}

// TestIngestorConfigValidation covers Validate and the policy parser.
func TestIngestorConfigValidation(t *testing.T) {
	good := ingestorConfig(t, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Policy = OverflowPolicy(42)
	if err := bad.Validate(); err == nil {
		t.Error("unknown policy passed Validate")
	}
	if _, err := NewIngestor(bad); err == nil {
		t.Error("NewIngestor accepted unknown policy")
	}
	bad = good
	bad.SaveInterval = -time.Second
	if err := bad.Validate(); err == nil {
		t.Error("negative SaveInterval passed Validate")
	}
	bad = good
	bad.Monitor.Beta = -1
	if err := bad.Validate(); err == nil {
		t.Error("invalid monitor config passed Validate")
	}

	for _, p := range []OverflowPolicy{PolicyBlock, PolicyShed, PolicyReject} {
		back, err := ParseOverflowPolicy(p.String())
		if err != nil || back != p {
			t.Errorf("ParseOverflowPolicy(%q) = %v, %v", p.String(), back, err)
		}
	}
	if _, err := ParseOverflowPolicy("drop"); err == nil {
		t.Error("ParseOverflowPolicy accepted garbage")
	}
	if s := OverflowPolicy(9).String(); s != "OverflowPolicy(9)" {
		t.Errorf("unknown policy String() = %q", s)
	}
}
