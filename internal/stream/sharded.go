// Sharded ingestion: a ShardedMonitor fans receipts across N single-threaded
// shard Monitors by customer hash, so the online path scales with cores while
// keeping every guarantee of the sequential monitor. Each customer maps to
// exactly one shard (FNV-1a over the id), each shard is driven by its own
// goroutine over a bounded FIFO channel, so per-customer receipt order is
// preserved and per-customer results are bit-identical to the single-threaded
// Monitor at every shard count.
//
// Alerts cannot be returned synchronously from an asynchronous Ingest, so they
// accumulate per shard and are delivered at barriers — Flush, CloseThrough,
// Close — merged in a canonical order (grid index, then customer id). Because
// the alert set is shard-count independent and the merge order is total, the
// delivered batches are byte-identical for any shard count, including the
// single-threaded Monitor's sorted output; the equivalence is property-tested.
//
// Errors follow the same discipline as internal/population: each Ingest call
// is stamped with a feed sequence number, each shard remembers the
// lowest-sequence error since the last barrier, and the barrier reports the
// error with the lowest sequence across shards — for a sequential feed that
// is deterministically the first bad receipt, regardless of shard count.
package stream

import (
	"errors"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

// ErrClosed is returned by operations on a ShardedMonitor after Close.
var ErrClosed = errors.New("stream: sharded monitor is closed")

// shardChanCap bounds each shard's ingest channel. A full channel applies
// backpressure to producers rather than buffering without limit.
const shardChanCap = 512

// shardMsg is one unit of work on a shard channel: a receipt (ctl nil), a
// control closure run on the shard goroutine with exclusive access to the
// shard's state, or a stop signal.
type shardMsg struct {
	id    retail.CustomerID
	t     time.Time
	items retail.Basket
	seq   uint64
	ctl   func()
	stop  bool
}

// shard pairs one single-threaded Monitor with its feed channel. All fields
// besides ch are owned by the shard goroutine; other goroutines reach them
// only through ctl closures (or after the goroutine has exited).
type shard struct {
	mon *Monitor
	ch  chan shardMsg
	// alerts buffers ingest-time alerts until the next barrier.
	alerts []Alert
	// firstErr/errSeq track the lowest-sequence ingest error since the last
	// barrier.
	firstErr error
	errSeq   uint64
}

func (sh *shard) run(done *sync.WaitGroup) {
	defer done.Done()
	for msg := range sh.ch {
		switch {
		case msg.stop:
			return
		case msg.ctl != nil:
			msg.ctl()
		default:
			alerts, err := sh.mon.Ingest(msg.id, msg.t, msg.items)
			sh.alerts = append(sh.alerts, alerts...)
			if err != nil && (sh.firstErr == nil || msg.seq < sh.errSeq) {
				sh.firstErr, sh.errSeq = err, msg.seq
			}
		}
	}
}

// ShardedMonitor is the parallel ingestion engine: hash-partitioned shard
// Monitors behind a fan-in Ingest. Ingest is safe for concurrent use by
// multiple producers; per-customer receipt order is preserved for receipts
// whose Ingest calls are ordered (a single producer, or external
// synchronization). Alerts are delivered at Flush/CloseThrough/Close
// barriers in (grid index, customer id) order.
//
// Close must not run concurrently with other calls; stop all producers
// first. The other methods may be used concurrently with each other.
type ShardedMonitor struct {
	cfg    Config
	shards []*shard
	seq    atomic.Uint64
	closed atomic.Bool
	done   sync.WaitGroup
	// snapMu serializes WriteSnapshot's stop-the-world pause: two
	// interleaved pauses could each park a different shard first and wait
	// on each other forever.
	snapMu sync.Mutex
}

// NewSharded validates cfg and returns a running sharded monitor. shards <= 0
// means GOMAXPROCS. Shard count is an operational knob like a worker count:
// it affects throughput only, never results or snapshots.
func NewSharded(cfg Config, shards int) (*ShardedMonitor, error) {
	s, err := newSharded(cfg, shards)
	if err != nil {
		return nil, err
	}
	s.start()
	return s, nil
}

// newSharded builds the monitor without starting shard goroutines, so the
// snapshot-restore path can populate shard states race-free first.
func newSharded(cfg Config, shards int) (*ShardedMonitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	s := &ShardedMonitor{cfg: cfg, shards: make([]*shard, shards)}
	for i := range s.shards {
		mon, err := New(cfg)
		if err != nil {
			return nil, err
		}
		s.shards[i] = &shard{mon: mon, ch: make(chan shardMsg, shardChanCap)}
	}
	return s, nil
}

func (s *ShardedMonitor) start() {
	for _, sh := range s.shards {
		s.done.Add(1)
		go sh.run(&s.done)
	}
}

// FNV-1a 64-bit over the customer id's 8 little-endian bytes.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func shardIndex(id retail.CustomerID, n int) int {
	h := uint64(fnvOffset64)
	x := uint64(id)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return int(h % uint64(n))
}

// Shards returns the shard count.
func (s *ShardedMonitor) Shards() int { return len(s.shards) }

// Ingest enqueues one receipt on its customer's shard. Receipts must arrive
// in non-decreasing window order per customer, exactly as for Monitor.Ingest;
// a violation surfaces as an ErrStale-wrapped error at the next barrier.
// Ingest blocks when the shard's channel is full (backpressure). The basket
// must not be mutated by the caller after Ingest returns.
func (s *ShardedMonitor) Ingest(id retail.CustomerID, t time.Time, items retail.Basket) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.shards[shardIndex(id, len(s.shards))].ch <- shardMsg{
		id: id, t: t, items: items, seq: s.seq.Add(1),
	}
	return nil
}

// barrier drains every shard (channel FIFO guarantees all previously
// enqueued receipts are processed first), runs fn on each shard goroutine,
// and merges the collected alerts into (grid index, customer id) order.
// The reported error is the lowest-sequence ingest error across shards since
// the last barrier; reporting clears it.
func (s *ShardedMonitor) barrier(fn func(sh *shard) []Alert) ([]Alert, error) {
	type out struct {
		alerts []Alert
		err    error
		seq    uint64
	}
	outs := make([]out, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		i, sh := i, sh
		wg.Add(1)
		sh.ch <- shardMsg{ctl: func() {
			defer wg.Done()
			outs[i] = out{alerts: fn(sh), err: sh.firstErr, seq: sh.errSeq}
			sh.firstErr, sh.errSeq = nil, 0
		}}
	}
	wg.Wait()
	var merged []Alert
	var err error
	errSeq := uint64(math.MaxUint64)
	for _, o := range outs {
		merged = append(merged, o.alerts...)
		if o.err != nil && o.seq < errSeq {
			err, errSeq = o.err, o.seq
		}
	}
	sortAlerts(merged)
	return merged, err
}

// sortAlerts orders alerts by (grid index, customer id) — a total order,
// since a customer scores each window at most once, so the merged output is
// identical for every shard count.
func sortAlerts(alerts []Alert) {
	sort.Slice(alerts, func(i, j int) bool {
		if alerts[i].GridIndex != alerts[j].GridIndex {
			return alerts[i].GridIndex < alerts[j].GridIndex
		}
		return alerts[i].Customer < alerts[j].Customer
	})
}

// drainFn hands over a shard's buffered ingest alerts.
func drainFn(sh *shard) []Alert {
	a := sh.alerts
	sh.alerts = nil
	return a
}

// Flush is the barrier without window closing: it waits for every enqueued
// receipt to be processed and returns the alerts they raised, merged
// deterministically, plus the first ingest error since the last barrier.
func (s *ShardedMonitor) Flush() ([]Alert, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	return s.barrier(drainFn)
}

// CloseThrough drains every shard, force-closes every tracked customer's
// windows through grid index k (scoring silent windows as empty, exactly as
// Monitor.CloseThrough), and returns all pending plus newly raised alerts in
// (grid index, customer id) order.
func (s *ShardedMonitor) CloseThrough(k int) ([]Alert, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	return s.barrier(func(sh *shard) []Alert {
		return append(drainFn(sh), sh.mon.CloseThrough(k)...)
	})
}

// EvictIdle drains every shard and applies Monitor.EvictIdle(k) on each,
// returning the merged alerts in canonical order plus the number of
// customers evicted across shards. A CloseThrough barrier already evicts
// inline; this is the explicit sweep the ingestion TTL job drives.
func (s *ShardedMonitor) EvictIdle(k int) ([]Alert, int, error) {
	if s.closed.Load() {
		return nil, 0, ErrClosed
	}
	var n atomic.Int64
	alerts, err := s.barrier(func(sh *shard) []Alert {
		a, evicted := sh.mon.EvictIdle(k)
		n.Add(int64(evicted))
		return append(drainFn(sh), a...)
	})
	return alerts, int(n.Load()), err
}

// Evicted returns the cumulative number of customers dropped at the
// retention horizon across all shards, like Monitor.Evicted.
func (s *ShardedMonitor) Evicted() uint64 {
	if s.closed.Load() {
		var total uint64
		for _, sh := range s.shards {
			total += sh.mon.Evicted()
		}
		return total
	}
	var total atomic.Uint64
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		sh := sh
		wg.Add(1)
		sh.ch <- shardMsg{ctl: func() {
			total.Add(sh.mon.Evicted())
			wg.Done()
		}}
	}
	wg.Wait()
	return total.Load()
}

// Close drains every shard, returns any remaining buffered alerts and
// pending error, and stops the shard goroutines. Stop all producers first;
// Ingest/Flush/CloseThrough after Close return ErrClosed, while read-only
// accessors (Stability, Customers, WriteSnapshot) keep working.
func (s *ShardedMonitor) Close() ([]Alert, error) {
	if s.closed.Swap(true) {
		return nil, ErrClosed
	}
	alerts, err := s.barrier(drainFn)
	for _, sh := range s.shards {
		sh.ch <- shardMsg{stop: true}
	}
	s.done.Wait()
	return alerts, err
}

// Stability returns the customer's last scored stability, like
// Monitor.Stability. It synchronizes with the owning shard, so it reflects
// every receipt enqueued before the call (by this goroutine).
func (s *ShardedMonitor) Stability(id retail.CustomerID) (value float64, gridIndex int, ok bool) {
	sh := s.shards[shardIndex(id, len(s.shards))]
	if s.closed.Load() {
		return sh.mon.Stability(id)
	}
	done := make(chan struct{})
	sh.ch <- shardMsg{ctl: func() {
		value, gridIndex, ok = sh.mon.Stability(id)
		close(done)
	}}
	<-done
	return value, gridIndex, ok
}

// Stabilities answers a batch of stability queries in request order,
// filling dst (truncated and reused when capacity suffices) with one row
// per id — row i is exactly what Stability(ids[i]) would return, and the
// differential serve tests pin that equivalence byte-for-byte at shards
// {1,2,4,8}.
//
// Where Stability pays one control-message round trip per customer, a
// batch pays one per *shard*: every shard goroutine receives the whole id
// slice once and fills the disjoint subset of rows it owns (ids hash to
// exactly one shard, so the writes cannot overlap and need no locks). Per
// customer the work is one hash and one map lookup — no allocation, no
// synchronization — which is what makes population-wide score sweeps a
// fast path rather than N round trips.
func (s *ShardedMonitor) Stabilities(ids []retail.CustomerID, dst []CustomerStability) []CustomerStability {
	if cap(dst) >= len(ids) {
		dst = dst[:len(ids)]
	} else {
		dst = make([]CustomerStability, len(ids))
	}
	n := len(s.shards)
	if s.closed.Load() {
		for i, id := range ids {
			sh := s.shards[shardIndex(id, n)]
			v, k, ok := sh.mon.Stability(id)
			dst[i] = CustomerStability{Customer: id, Value: v, GridIndex: k, OK: ok}
		}
		return dst
	}
	// The closures capture a never-reassigned copy of the slice header so
	// the dst parameter itself stays off the heap: reassigning a captured
	// variable would force it heap-allocated at function entry, charging
	// the allocation-free closed path too.
	out := dst
	var wg sync.WaitGroup
	for si, sh := range s.shards {
		si, sh := si, sh
		wg.Add(1)
		sh.ch <- shardMsg{ctl: func() {
			for i, id := range ids {
				if shardIndex(id, n) != si {
					continue
				}
				v, k, ok := sh.mon.Stability(id)
				out[i] = CustomerStability{Customer: id, Value: v, GridIndex: k, OK: ok}
			}
			wg.Done()
		}}
	}
	wg.Wait()
	return dst
}

// Customers returns the number of customers tracked across all shards.
func (s *ShardedMonitor) Customers() int {
	counts := make([]int, len(s.shards))
	if s.closed.Load() {
		for i, sh := range s.shards {
			counts[i] = sh.mon.Customers()
		}
	} else {
		var wg sync.WaitGroup
		for i, sh := range s.shards {
			i, sh := i, sh
			wg.Add(1)
			sh.ch <- shardMsg{ctl: func() {
				counts[i] = sh.mon.Customers()
				wg.Done()
			}}
		}
		wg.Wait()
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// WriteSnapshot persists the monitor in the same SMN1 format as
// Monitor.WriteSnapshot: shard count is an operational knob, not persisted
// state, so the bytes are identical to the single-threaded monitor's for the
// same feed and a snapshot written with S shards restores with any S'. The
// shards are drained and held quiescent while their states stream out
// through a k-way merge of the per-shard sorted id lists — states flow
// straight from each shard map to the writer, with no merged intermediate
// map, so the pause's memory overhead is one id slice per shard instead of
// a copy of the whole population's state index. Buffered alerts are not
// part of the snapshot — Flush before snapshotting if they must not be
// lost across a restart.
func (s *ShardedMonitor) WriteSnapshot(w io.Writer) error {
	if s.closed.Load() {
		return writeShardedStates(w, s.cfg.Grid, s.shardStates())
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	release := make(chan struct{})
	var arrived sync.WaitGroup
	for _, sh := range s.shards {
		arrived.Add(1)
		sh.ch <- shardMsg{ctl: func() {
			arrived.Done()
			<-release
		}}
	}
	// All shard goroutines are parked on release: their states are
	// quiescent and safe to read from here until release closes.
	arrived.Wait()
	err := writeShardedStates(w, s.cfg.Grid, s.shardStates())
	close(release)
	return err
}

// shardStates collects the disjoint per-shard state maps. Callers must
// hold all shards quiescent.
func (s *ShardedMonitor) shardStates() []map[retail.CustomerID]*custState {
	states := make([]map[retail.CustomerID]*custState, len(s.shards))
	for i, sh := range s.shards {
		states[i] = sh.mon.states
	}
	return states
}

// Watermark returns the lowest open (not yet scored) window index across
// all tracked customers — after a uniform CloseThrough(k) barrier this is
// k+1, the index replay should resume feeding from. ok is false when no
// customers are tracked.
func (s *ShardedMonitor) Watermark() (k int, ok bool) {
	if s.closed.Load() {
		for _, sh := range s.shards {
			if sk, sok := sh.mon.Watermark(); sok && (!ok || sk < k) {
				k, ok = sk, true
			}
		}
		return k, ok
	}
	type minK struct {
		k  int
		ok bool
	}
	mins := make([]minK, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		i, sh := i, sh
		wg.Add(1)
		sh.ch <- shardMsg{ctl: func() {
			k, ok := sh.mon.Watermark()
			mins[i] = minK{k: k, ok: ok}
			wg.Done()
		}}
	}
	wg.Wait()
	for _, m := range mins {
		if m.ok && (!ok || m.k < k) {
			k, ok = m.k, true
		}
	}
	return k, ok
}

// ReadShardedMonitorSnapshot restores a sharded monitor from any SMN1
// snapshot — written by a Monitor or by a ShardedMonitor with any shard
// count. cfg follows the ReadMonitorSnapshot contract; shards <= 0 means
// GOMAXPROCS.
func ReadShardedMonitorSnapshot(r io.Reader, cfg Config, shards int) (*ShardedMonitor, error) {
	states, err := readMonitorStates(r, cfg)
	if err != nil {
		return nil, err
	}
	s, err := newSharded(cfg, shards)
	if err != nil {
		return nil, err
	}
	//detlint:ignore R1 addRestored is order-insensitive and shard assignment depends only on the id hash
	for id, st := range states {
		s.shards[shardIndex(id, len(s.shards))].mon.addRestored(id, st)
	}
	s.start()
	return s, nil
}
