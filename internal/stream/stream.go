// Package stream provides online attrition monitoring: receipts are
// ingested one at a time (the shape of a live point-of-sale feed), windows
// roll over automatically on the configured grid, and an Alert is emitted
// whenever a customer's stability falls to or below the loyalty threshold
// β — with the blamed products attached, so each alert is immediately
// actionable.
//
// The monitor produces byte-identical stability values to the batch
// pipeline (window.Windowize + core.Model.Analyze); the equivalence is
// property-tested. A window is scored when it closes, i.e. when a later
// receipt (or an explicit CloseThrough) proves no more purchases can fall
// inside it. Windows with no purchases at all are scored as empty — absence
// is the signal attrition lives in.
//
// Monitor is the single-threaded engine; ShardedMonitor fans the same
// engine across customer-hash shards for multi-core ingestion with
// identical results (see sharded.go).
package stream

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

// Config parameterizes a Monitor.
type Config struct {
	// Grid is the window grid receipts are bucketed on.
	Grid window.Grid
	// Model configures the stability model (α, policy, blame cap).
	Model core.Options
	// Beta is the loyalty threshold: a scored window with
	// stability ≤ Beta raises an alert (the paper's detection rule:
	// stability > β ⇒ loyal).
	Beta float64
	// TopJ caps the blamed products attached to each alert (0 = all).
	TopJ int
	// AlertOnUndefined controls whether windows with no prior history
	// (stability = 1 by convention, Defined = false) can alert. Default
	// false: a brand-new customer is not defecting.
	AlertOnUndefined bool
	// WarmupWindows suppresses alerts until the customer has at least this
	// many counted windows of history. Early windows score against a thin
	// significance profile and alert noisily (cold start); 3–4 windows of
	// warm-up removes most of that noise. 0 disables warm-up.
	WarmupWindows int
	// RetentionWindows bounds memory over unbounded time: a customer last
	// active in window s is scored through window s+RetentionWindows — the
	// silent windows that drive the stability decay toward an alert — and
	// then dropped. Inside that horizon alerts and stabilities are
	// bit-identical to a monitor retaining everything (property-tested);
	// a dropped customer who returns starts a fresh relationship, exactly
	// as a new customer id would. 0 retains every customer forever.
	RetentionWindows int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.Beta < 0 || c.Beta >= 1 {
		return fmt.Errorf("stream: beta must be in [0,1), got %v", c.Beta)
	}
	if c.TopJ < 0 {
		return fmt.Errorf("stream: TopJ must be >= 0, got %d", c.TopJ)
	}
	if c.WarmupWindows < 0 {
		return fmt.Errorf("stream: WarmupWindows must be >= 0, got %d", c.WarmupWindows)
	}
	if c.RetentionWindows < 0 {
		return fmt.Errorf("stream: RetentionWindows must be >= 0, got %d", c.RetentionWindows)
	}
	if c.Grid.Span().Months < 1 {
		return errors.New("stream: zero-value grid")
	}
	return nil
}

// Alert is one detection event.
type Alert struct {
	Customer  retail.CustomerID
	GridIndex int
	// Start/End bound the scored window.
	Start, End time.Time
	Stability  float64
	// Drop is the decrease vs. the customer's previous scored window.
	Drop float64
	// Blame lists the most significant missing products.
	Blame []core.Blame
}

// Scored is one closed window's result (alerting or not), for callers that
// want the full stream rather than alerts only.
type Scored struct {
	Customer  retail.CustomerID
	GridIndex int
	Result    core.Result
}

// ErrStale is returned when a receipt arrives for a window that has
// already been closed for its customer.
var ErrStale = errors.New("stream: receipt for an already-closed window")

type custState struct {
	tracker *core.Tracker
	openK   int // grid index of the open (accumulating) window
	// pending accumulates the open window's item set; scratch is the spare
	// buffer UnionInto merges into, swapped with pending on every receipt
	// so the steady state reuses two buffers instead of allocating a merged
	// basket per receipt.
	pending retail.Basket
	scratch retail.Basket
	// lastStability/lastDefined feed Alert.Drop; scored reports whether
	// any window has been scored yet.
	lastStability float64
	lastDefined   bool
	lastScoredK   int
	scored        bool
	// lastActiveK is the window of the customer's newest receipt; the
	// retention horizon measures silence from here.
	lastActiveK int
}

// Monitor ingests receipts and emits alerts. Not safe for concurrent use;
// ShardedMonitor wraps it with hash-partitioned parallel ingestion for
// multi-core feeds.
type Monitor struct {
	cfg    Config
	states map[retail.CustomerID]*custState
	// ids is the sorted customer index CloseThrough iterates; newIDs
	// buffers customers first seen since the last merge. Folding the
	// (small) new batch in with one sort + one linear merge keeps barriers
	// from re-sorting the whole customer set: a steady-state barrier over n
	// customers is O(n), not O(n log n).
	ids    []retail.CustomerID
	newIDs []retail.CustomerID
	// scoredHook, when set, receives every closed window (used by tests
	// and by callers that want full traces).
	scoredHook func(Scored)
	// evicted counts customers dropped at the retention horizon.
	evicted uint64
}

// New validates cfg and returns an empty monitor.
func New(cfg Config) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Monitor{cfg: cfg, states: make(map[retail.CustomerID]*custState)}, nil
}

// OnScored registers a hook receiving every closed window in scoring
// order. Pass nil to remove.
func (m *Monitor) OnScored(fn func(Scored)) { m.scoredHook = fn }

// Customers returns the number of customers currently tracked.
func (m *Monitor) Customers() int { return len(m.states) }

// Ingest feeds one receipt. Receipts must arrive in non-decreasing window
// order per customer (receipts within the same window may arrive in any
// order). Closing earlier windows may emit alerts, which are returned.
func (m *Monitor) Ingest(id retail.CustomerID, t time.Time, items retail.Basket) ([]Alert, error) {
	if !items.IsNormalized() {
		items = retail.NewBasket(items)
	}
	k := m.cfg.Grid.Index(t)
	st, ok := m.states[id]
	if !ok {
		tr, err := core.NewTracker(m.cfg.Model)
		if err != nil {
			return nil, err
		}
		st = &custState{tracker: tr, openK: k, lastScoredK: k - 1, lastActiveK: k}
		m.states[id] = st
		m.newIDs = append(m.newIDs, id)
	}
	if k < st.openK {
		return nil, fmt.Errorf("%w: customer %d window %d (open is %d)", ErrStale, id, k, st.openK)
	}
	var alerts []Alert
	if limit, bounded := m.horizonLimit(st); bounded && k > limit {
		// The customer returns after their retention horizon: score the old
		// relationship through the horizon (exactly what eviction would have
		// done) and start a fresh one — a returning churned customer is a
		// new relationship, bit-identical to a barrier having evicted them.
		alerts = m.closeThrough(id, st, k-1) // clamps at limit
		tr, err := core.NewTracker(m.cfg.Model)
		if err != nil {
			return nil, err
		}
		m.evicted++
		// Reuse the pointer: the id stays valid in the sorted index.
		*st = custState{tracker: tr, openK: k, lastScoredK: k - 1, lastActiveK: k}
	} else if k > st.openK {
		alerts = m.closeThrough(id, st, k-1)
	}
	if k > st.lastActiveK {
		st.lastActiveK = k
	}
	st.scratch = retail.UnionInto(st.scratch, st.pending, items)
	st.pending, st.scratch = st.scratch, st.pending
	return alerts, nil
}

// horizonLimit returns the last window index the customer may still score:
// with a retention horizon of H windows and last activity in window s, the
// customer scores windows through s+H and nothing after. bounded is false
// when RetentionWindows is 0 (retain forever).
func (m *Monitor) horizonLimit(st *custState) (limit int, bounded bool) {
	if m.cfg.RetentionWindows <= 0 {
		return 0, false
	}
	return st.lastActiveK + m.cfg.RetentionWindows, true
}

// closeThrough scores the open window and any empty windows up to and
// including k, leaving a fresh open window at k+1. With a retention horizon
// configured, k is clamped to the customer's horizon: windows past it are
// never scored, no matter how late the closing barrier arrives, so the
// scored-window set is independent of barrier timing.
func (m *Monitor) closeThrough(id retail.CustomerID, st *custState, k int) []Alert {
	if limit, bounded := m.horizonLimit(st); bounded && k > limit {
		k = limit
	}
	var alerts []Alert
	for st.openK <= k {
		res := st.tracker.Observe(st.pending)
		st.pending = st.pending[:0] // Observe retains nothing; keep the buffer
		if m.scoredHook != nil {
			m.scoredHook(Scored{Customer: id, GridIndex: st.openK, Result: res})
		}
		if a, ok := m.toAlert(id, st, res); ok {
			alerts = append(alerts, a)
		}
		st.lastStability, st.lastDefined = res.Stability, res.Defined
		st.lastScoredK = st.openK
		st.scored = true
		st.openK++
	}
	return alerts
}

func (m *Monitor) toAlert(id retail.CustomerID, st *custState, res core.Result) (Alert, bool) {
	if !res.Defined && !m.cfg.AlertOnUndefined {
		return Alert{}, false
	}
	// tracker.Windows() already includes the just-scored window; warm-up
	// requires that many windows *before* the scored one.
	if st.tracker.Windows()-1 < m.cfg.WarmupWindows {
		return Alert{}, false
	}
	if res.Stability > m.cfg.Beta {
		return Alert{}, false
	}
	start, end := m.cfg.Grid.Bounds(st.openK)
	blame := res.Missing
	if m.cfg.TopJ > 0 && len(blame) > m.cfg.TopJ {
		blame = blame[:m.cfg.TopJ]
	}
	drop := 0.0
	if st.lastDefined && res.Defined && res.Stability < st.lastStability {
		drop = st.lastStability - res.Stability
	}
	return Alert{
		Customer:  id,
		GridIndex: st.openK,
		Start:     start,
		End:       end,
		Stability: res.Stability,
		Drop:      drop,
		Blame:     blame,
	}, true
}

// mergeIDs folds the customers first seen since the last merge into the
// sorted index: sort the new batch, then one backward in-place merge. New
// customers arrive only on their first receipt, so the batch is small (and
// usually empty) at a steady-state barrier.
func (m *Monitor) mergeIDs() {
	if len(m.newIDs) == 0 {
		return
	}
	sort.Slice(m.newIDs, func(i, j int) bool { return m.newIDs[i] < m.newIDs[j] })
	ni := len(m.ids)
	m.ids = append(m.ids, m.newIDs...)
	// Backward merge: ids[0:ni] and newIDs are each sorted and disjoint
	// (a customer enters newIDs only when absent from states).
	for w, nj := len(m.ids)-1, len(m.newIDs)-1; nj >= 0; w-- {
		if ni > 0 && m.ids[ni-1] > m.newIDs[nj] {
			m.ids[w] = m.ids[ni-1]
			ni--
		} else {
			m.ids[w] = m.newIDs[nj]
			nj--
		}
	}
	m.newIDs = m.newIDs[:0]
}

// addRestored registers a snapshot-restored customer state. The index is
// rebuilt lazily at the next barrier, so restore order does not matter.
func (m *Monitor) addRestored(id retail.CustomerID, st *custState) {
	m.states[id] = st
	m.newIDs = append(m.newIDs, id)
}

// CloseThrough force-closes every tracked customer's windows through grid
// index k (inclusive), scoring them (empty where no purchases arrived) and
// returning any alerts, ordered by customer id. Use at end-of-feed, or
// periodically with the feed's watermark so silent customers — the
// defecting ones — still get scored. With a retention horizon configured,
// customers whose horizon ends at or before k are scored through it and
// evicted in the same pass.
func (m *Monitor) CloseThrough(k int) []Alert {
	m.mergeIDs()
	var alerts []Alert
	evicted := false
	for _, id := range m.ids {
		st := m.states[id]
		if limit, bounded := m.horizonLimit(st); bounded && limit <= k {
			if st.openK <= limit {
				alerts = append(alerts, m.closeThrough(id, st, limit)...)
			}
			delete(m.states, id)
			m.evicted++
			evicted = true
			continue
		}
		if st.openK <= k {
			alerts = append(alerts, m.closeThrough(id, st, k)...)
		}
	}
	if evicted {
		m.compactIDs()
	}
	return alerts
}

// EvictIdle drops every customer whose retention horizon ends at or before
// grid index k: their remaining windows inside the horizon are scored
// (empty, possibly alerting) and the state is freed. CloseThrough applies
// the same rule inline, so under a steadily advancing feed a sweep finds
// nothing; EvictIdle exists for explicit sweeps — the ingestion TTL job,
// and restores of a snapshot taken under a longer (or no) horizon. It
// returns the alerts raised and the number of customers evicted, and is a
// no-op when RetentionWindows is 0.
func (m *Monitor) EvictIdle(k int) ([]Alert, int) {
	if m.cfg.RetentionWindows <= 0 {
		return nil, 0
	}
	m.mergeIDs()
	var alerts []Alert
	n := 0
	for _, id := range m.ids {
		st := m.states[id]
		if limit := st.lastActiveK + m.cfg.RetentionWindows; limit <= k {
			if st.openK <= limit {
				alerts = append(alerts, m.closeThrough(id, st, limit)...)
			}
			delete(m.states, id)
			m.evicted++
			n++
		}
	}
	if n > 0 {
		m.compactIDs()
	}
	return alerts, n
}

// Evicted returns the cumulative number of customers dropped at the
// retention horizon (including horizon-crossing returns, which end the old
// relationship). Restored monitors start the count at zero.
func (m *Monitor) Evicted() uint64 { return m.evicted }

// compactIDs filters evicted customers out of the sorted index in place.
func (m *Monitor) compactIDs() {
	w := 0
	for _, id := range m.ids {
		if _, ok := m.states[id]; ok {
			m.ids[w] = id
			w++
		}
	}
	m.ids = m.ids[:w]
}

// Watermark returns the lowest open (not yet scored) window index across
// all tracked customers — after CloseThrough(k) it is k+1, the index
// replay should resume feeding from. ok is false when no customers are
// tracked.
func (m *Monitor) Watermark() (k int, ok bool) {
	//detlint:ignore R1 folds a minimum over values; min is commutative, so visit order cannot leak
	for _, st := range m.states {
		if !ok || st.openK < k {
			k, ok = st.openK, true
		}
	}
	return k, ok
}

// Stability returns the last scored stability of a customer, with ok=false
// when the customer is unknown or no window has been scored yet.
func (m *Monitor) Stability(id retail.CustomerID) (value float64, gridIndex int, ok bool) {
	st, found := m.states[id]
	if !found || !st.scored {
		return 0, 0, false
	}
	return st.lastStability, st.lastScoredK, true
}

// CustomerStability is one row of a batch stability query: the answer
// Stability would give for Customer, with OK false when the customer is
// unknown or not yet scored (Value and GridIndex are then zero).
type CustomerStability struct {
	Customer  retail.CustomerID
	Value     float64
	GridIndex int
	OK        bool
}

// Stabilities answers a batch of stability queries in request order,
// appending one row per id into dst (which is truncated and reused when
// its capacity suffices — a caller-recycled dst makes the steady state
// allocation-free). Row i is exactly what Stability(ids[i]) would return.
func (m *Monitor) Stabilities(ids []retail.CustomerID, dst []CustomerStability) []CustomerStability {
	if cap(dst) >= len(ids) {
		dst = dst[:len(ids)]
	} else {
		dst = make([]CustomerStability, len(ids))
	}
	for i, id := range ids {
		v, k, ok := m.Stability(id)
		dst[i] = CustomerStability{Customer: id, Value: v, GridIndex: k, OK: ok}
	}
	return dst
}
