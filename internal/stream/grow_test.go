package stream

import (
	"bytes"
	"testing"
	"time"

	"github.com/gautrais/stability/internal/retail"
)

// monthOfEvent returns the month index (from the grid origin) an event
// falls in.
func monthOfEvent(g interface{ Origin() time.Time }, t time.Time) int {
	t, o := t.UTC(), g.Origin()
	return (t.Year()-o.Year())*12 + int(t.Month()) - int(o.Month())
}

// driver abstracts the two monitor flavors behind one replay loop so the
// growth equivalence test exercises both with identical mechanics.
type driver interface {
	ingest(id retail.CustomerID, t time.Time, items retail.Basket) error
	closeThrough(k int) ([]Alert, error)
	snapshot() ([]byte, error)
	watermark() (int, bool)
}

type singleDriver struct {
	m       *Monitor
	pending []Alert
}

func (d *singleDriver) ingest(id retail.CustomerID, t time.Time, items retail.Basket) error {
	alerts, err := d.m.Ingest(id, t, items)
	d.pending = append(d.pending, alerts...)
	return err
}

func (d *singleDriver) closeThrough(k int) ([]Alert, error) {
	out := append(d.pending, d.m.CloseThrough(k)...)
	d.pending = nil
	return out, nil
}

func (d *singleDriver) snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := d.m.WriteSnapshot(&buf)
	return buf.Bytes(), err
}

func (d *singleDriver) watermark() (int, bool) { return d.m.Watermark() }

type shardedDriver struct{ s *ShardedMonitor }

func (d *shardedDriver) ingest(id retail.CustomerID, t time.Time, items retail.Basket) error {
	return d.s.Ingest(id, t, items)
}

func (d *shardedDriver) closeThrough(k int) ([]Alert, error) { return d.s.CloseThrough(k) }

func (d *shardedDriver) snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := d.s.WriteSnapshot(&buf)
	return buf.Bytes(), err
}

func (d *shardedDriver) watermark() (int, bool) { return d.s.Watermark() }

// replayGrowFeed drives a feed slice through the monitor with watermark
// barriers at window boundaries, collecting all alerts in barrier order.
func replayGrowFeed(t *testing.T, d driver, feed []feedEvent, lastK *int) []Alert {
	t.Helper()
	g := testGrid(t)
	var alerts []Alert
	for _, ev := range feed {
		if k := g.Index(ev.t); k > *lastK {
			batch, err := d.closeThrough(k - 1)
			if err != nil {
				t.Fatal(err)
			}
			alerts = append(alerts, batch...)
			*lastK = k
		}
		if err := d.ingest(ev.id, ev.t, ev.items); err != nil {
			t.Fatal(err)
		}
	}
	return alerts
}

// TestMonitorGrowingFeedEquivalence pins the growing-store workload for
// both monitor flavors: feeding a dataset month by month — as if the store
// were extended in place between batches, with a watermark close after
// each month — yields byte-identical alerts and SMN1 snapshots to one
// batch replay of the full feed. The feed length deliberately ends
// mid-window, so the trailing partial window's pending state crosses the
// incremental boundary too.
func TestMonitorGrowingFeedEquivalence(t *testing.T) {
	cfg := testConfig(t, 0.6)
	cfg.WarmupWindows = 1
	g := testGrid(t)
	feed := randomFeed(t, 42, 12, 900)

	lastMonth := 0
	for _, ev := range feed {
		if m := monthOfEvent(g, ev.t); m > lastMonth {
			lastMonth = m
		}
	}
	finalK := g.Index(g.Origin().AddDate(0, lastMonth+1, 0).AddDate(0, 0, -1))

	flavors := []struct {
		name string
		mk   func() driver
	}{
		{"single", func() driver {
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return &singleDriver{m: m}
		}},
		{"sharded-3", func() driver {
			s, err := NewSharded(cfg, 3)
			if err != nil {
				t.Fatal(err)
			}
			return &shardedDriver{s: s}
		}},
	}
	for _, fl := range flavors {
		t.Run(fl.name, func(t *testing.T) {
			// Batch replay of the complete feed.
			batch := fl.mk()
			lastK := 0
			batchAlerts := replayGrowFeed(t, batch, feed, &lastK)
			final, err := batch.closeThrough(finalK)
			if err != nil {
				t.Fatal(err)
			}
			batchAlerts = append(batchAlerts, final...)
			batchSnap, err := batch.snapshot()
			if err != nil {
				t.Fatal(err)
			}

			// Incremental replay: one batch per month, watermark close
			// after each month — the shape of a monitor fed from a store
			// growing by gen.Extend.
			inc := fl.mk()
			var incAlerts []Alert
			lastK = 0
			for m := 0; m <= lastMonth; m++ {
				var monthFeed []feedEvent
				for _, ev := range feed {
					if monthOfEvent(g, ev.t) == m {
						monthFeed = append(monthFeed, ev)
					}
				}
				incAlerts = append(incAlerts, replayGrowFeed(t, inc, monthFeed, &lastK)...)
				// Month-end watermark: close every window that has fully
				// ended, exactly what a live deployment does at the end of
				// an append batch.
				monthEnd := g.Origin().AddDate(0, m+1, 0)
				if closeK := g.Index(monthEnd) - 1; closeK >= 0 {
					got, err := inc.closeThrough(closeK)
					if err != nil {
						t.Fatal(err)
					}
					incAlerts = append(incAlerts, got...)
					lastK = closeK + 1
				}
			}
			final, err = inc.closeThrough(finalK)
			if err != nil {
				t.Fatal(err)
			}
			incAlerts = append(incAlerts, final...)
			incSnap, err := inc.snapshot()
			if err != nil {
				t.Fatal(err)
			}

			if !alertsEqual(batchAlerts, incAlerts) {
				t.Errorf("incremental alerts differ from batch replay (%d vs %d)", len(incAlerts), len(batchAlerts))
			}
			if !bytes.Equal(batchSnap, incSnap) {
				t.Error("incremental snapshot bytes differ from batch replay")
			}
		})
	}
}

// TestWatermark pins the resume index contract for both flavors: no
// customers means no watermark; after CloseThrough(k) every flavor reports
// k+1.
func TestWatermark(t *testing.T) {
	cfg := testConfig(t, 0.5)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Watermark(); ok {
		t.Fatal("empty monitor reported a watermark")
	}
	g := testGrid(t)
	if _, err := m.Ingest(1, at(g, 2, 3), retail.Basket{1}); err != nil {
		t.Fatal(err)
	}
	if k, ok := m.Watermark(); !ok || k != 2 {
		t.Fatalf("watermark after first receipt = %d,%v, want 2,true", k, ok)
	}
	m.CloseThrough(4)
	if k, ok := m.Watermark(); !ok || k != 5 {
		t.Fatalf("watermark after CloseThrough(4) = %d,%v, want 5,true", k, ok)
	}

	s, err := NewSharded(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Watermark(); ok {
		t.Fatal("empty sharded monitor reported a watermark")
	}
	for id := retail.CustomerID(1); id <= 9; id++ {
		if err := s.Ingest(id, at(g, 1, 2), retail.Basket{1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.CloseThrough(3); err != nil {
		t.Fatal(err)
	}
	if k, ok := s.Watermark(); !ok || k != 4 {
		t.Fatalf("sharded watermark after CloseThrough(3) = %d,%v, want 4,true", k, ok)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if k, ok := s.Watermark(); !ok || k != 4 {
		t.Fatalf("sharded watermark after Close = %d,%v, want 4,true", k, ok)
	}
}
