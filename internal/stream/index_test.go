package stream

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

func alertLess(a, b Alert) bool {
	if a.GridIndex != b.GridIndex {
		return a.GridIndex < b.GridIndex
	}
	return a.Customer < b.Customer
}

// indexEvent is one precomputed feed step, so both monitors replay the
// identical stream.
type indexEvent struct {
	id     retail.CustomerID
	t      int // day offset inside window k
	k      int
	basket retail.Basket
}

func buildRandomFeed(rng *rand.Rand, lastK int) (events []indexEvent, barriers map[int]bool) {
	nCust := 10 + rng.Intn(40)
	ids := make([]retail.CustomerID, nCust)
	for i := range ids {
		// Non-contiguous, shuffled ids: insertion order never matches
		// index order.
		ids[i] = retail.CustomerID(rng.Intn(100000) + 1)
	}
	barriers = make(map[int]bool)
	for k := 0; k <= lastK; k++ {
		for _, id := range ids {
			if rng.Intn(3) == 0 {
				continue // silent window: the attrition signal
			}
			events = append(events, indexEvent{
				id: id, t: rng.Intn(50), k: k,
				basket: retail.NewBasket([]retail.ItemID{
					retail.ItemID(rng.Intn(20) + 1), retail.ItemID(rng.Intn(20) + 1),
				}),
			})
		}
		if rng.Intn(2) == 0 {
			barriers[k] = true
		}
	}
	return events, barriers
}

func replayFeed(t *testing.T, m *Monitor, grid window.Grid, events []indexEvent, barriers map[int]bool, lastK int, checkOrder bool) []Alert {
	t.Helper()
	var all []Alert
	cur := 0
	for k := 0; k <= lastK; k++ {
		for cur < len(events) && events[cur].k == k {
			ev := events[cur]
			alerts, err := m.Ingest(ev.id, at(grid, ev.k, ev.t), ev.basket)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, alerts...)
			cur++
		}
		if barriers[k] {
			batch := m.CloseThrough(k)
			if checkOrder {
				for i := 1; i < len(batch); i++ {
					if batch[i].Customer < batch[i-1].Customer {
						t.Fatalf("barrier at k=%d out of customer order", k)
					}
				}
			}
			all = append(all, batch...)
		}
	}
	return append(all, m.CloseThrough(lastK)...)
}

// TestCloseThroughBarrierOrderProperty is the property test guarding the
// sorted-customer index: for random feeds with customers arriving in
// random id order and barriers at random watermarks, (1) every barrier's
// alerts come out in ascending customer order, and (2) the union of all
// barrier alerts equals the alerts of an identical monitor barriered only
// once at the end — intermediate barriers change when windows close, never
// what they score.
func TestCloseThroughBarrierOrderProperty(t *testing.T) {
	const lastK = 8
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial + 1)))
		cfg := testConfig(t, 0.6)
		events, barriers := buildRandomFeed(rng, lastK)

		incremental, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		final, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gathered := replayFeed(t, incremental, cfg.Grid, events, barriers, lastK, true)
		reference := replayFeed(t, final, cfg.Grid, events, nil, lastK, false)

		sort.Slice(gathered, func(i, j int) bool { return alertLess(gathered[i], gathered[j]) })
		sort.Slice(reference, func(i, j int) bool { return alertLess(reference[i], reference[j]) })
		if len(gathered) != len(reference) {
			t.Fatalf("trial %d: %d alerts with barriers vs %d without", trial, len(gathered), len(reference))
		}
		for i := range gathered {
			g, r := gathered[i], reference[i]
			if g.Customer != r.Customer || g.GridIndex != r.GridIndex || g.Stability != r.Stability {
				t.Fatalf("trial %d: alert %d differs: %+v vs %+v", trial, i, g, r)
			}
		}
	}
}

// TestCloseThroughOrderSurvivesSnapshotRestore checks the restored
// monitor's lazily rebuilt index: a mid-stream snapshot/restore must not
// perturb barrier order or content.
func TestCloseThroughOrderSurvivesSnapshotRestore(t *testing.T) {
	cfg := testConfig(t, 0.6)
	grid := cfg.Grid
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	ids := make([]retail.CustomerID, 30)
	for i := range ids {
		ids[i] = retail.CustomerID(rng.Intn(5000) + 1)
	}
	ingest := func(m *Monitor, k int) {
		for _, id := range ids {
			basket := retail.NewBasket([]retail.ItemID{retail.ItemID(id%17 + 1), retail.ItemID(id%5 + 1)})
			if _, err := m.Ingest(id, at(grid, k, int(id)%50), basket); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k := 0; k <= 3; k++ {
		ingest(m, k)
	}
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadMonitorSnapshot(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 4; k <= 6; k++ {
		ingest(m, k)
		ingest(restored, k)
	}
	want := m.CloseThrough(6)
	got := restored.CloseThrough(6)
	if len(want) != len(got) {
		t.Fatalf("restored barrier: %d alerts vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Customer != got[i].Customer || want[i].GridIndex != got[i].GridIndex ||
			want[i].Stability != got[i].Stability {
			t.Fatalf("alert %d differs after restore: %+v vs %+v", i, got[i], want[i])
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Customer < got[i-1].Customer {
			t.Fatalf("restored barrier out of customer order at %d", i)
		}
	}
}
