// Serving-path ingestion: an Ingestor puts a bounded queue with an explicit
// overflow policy in front of a ShardedMonitor, so a serving layer (HTTP
// handlers, replication appliers, …) can feed the monitor from many
// producers without unbounded buffering when a slow shard stalls the feed.
//
// One drainer goroutine owns the queue→monitor hand-off. It preserves the
// queue's FIFO order, advances the window watermark as receipt months
// advance (closing every window that provably ended, exactly the
// `attrition monitor -state` rule: a stream can never prove the month of
// its newest receipt complete), and appends every barrier's alerts to an
// in-memory sequence-numbered log that long-poll and SSE consumers read.
// Because barriers fire at deterministic positions in the receipt stream —
// not on wall-clock — the alert log contents are a pure function of the
// accepted receipt sequence; the equivalence with a sequential Monitor
// replay is differential-tested in internal/serve.
//
// The optional background saver and flush tickers are wall-clock driven by
// nature (crash-recovery snapshots, alert-delivery liveness); they never
// change which alerts exist or what the SMN1 state is, only when both
// become visible.
package stream

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gautrais/stability/internal/faultfs"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/store"
)

// OverflowPolicy selects what Ingestor.Enqueue does when the bounded
// ingestion queue is full — the explicit backpressure story for the
// serving path.
type OverflowPolicy int

const (
	// PolicyBlock blocks the producer until queue space frees up. Lossless;
	// a stalled shard propagates pressure all the way to producers.
	PolicyBlock OverflowPolicy = iota
	// PolicyShed drops the offered batch and counts it. Producers never
	// stall; the monitor sees a gap (shed receipts are gone for good).
	PolicyShed
	// PolicyReject fails fast with ErrQueueFull so the producer can retry
	// later — the HTTP layer maps it to 429 + Retry-After.
	PolicyReject
)

// String returns the policy's flag spelling (block, shed, reject).
func (p OverflowPolicy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	case PolicyShed:
		return "shed"
	case PolicyReject:
		return "reject"
	default:
		return fmt.Sprintf("OverflowPolicy(%d)", int(p))
	}
}

// ParseOverflowPolicy parses a policy's flag spelling.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "block":
		return PolicyBlock, nil
	case "shed":
		return PolicyShed, nil
	case "reject":
		return PolicyReject, nil
	default:
		return 0, fmt.Errorf("stream: unknown overflow policy %q (want block, shed or reject)", s)
	}
}

// ErrQueueFull is returned by Enqueue under PolicyReject when the
// ingestion queue has no room for the offered batch.
var ErrQueueFull = errors.New("stream: ingestion queue full")

// ErrIngestorClosed is returned by operations on an Ingestor after Close.
var ErrIngestorClosed = errors.New("stream: ingestor is closed")

// ErrFollowing is returned by Enqueue when the ingestor is in follow mode:
// a follow-mode pipeline is fed exclusively by tailing the snapshot file,
// so accepting side-channel batches would break the byte-equality with a
// replay of that file.
var ErrFollowing = errors.New("stream: ingestor is file-driven (follow mode)")

// ReceiptEvent is one receipt offered to an Ingestor.
type ReceiptEvent struct {
	// Customer identifies the purchasing customer.
	Customer retail.CustomerID
	// Time is the receipt timestamp; it must not precede the grid origin.
	Time time.Time
	// Items is the basket; it is normalized on ingestion if needed.
	Items retail.Basket
}

// SeqAlert is an Alert stamped with its position in the Ingestor's alert
// log. Sequence numbers start at 1 and never repeat; consumers resume
// delivery by passing the last sequence they saw back to AlertsSince.
type SeqAlert struct {
	// Seq is the alert's 1-based position in the delivery log.
	Seq uint64
	Alert
}

// IngestorConfig parameterizes an Ingestor.
type IngestorConfig struct {
	// Monitor configures the wrapped sharded monitor (grid, model, β,
	// warm-up) exactly as for NewSharded.
	Monitor Config
	// Shards is the shard count; <= 0 means GOMAXPROCS. Operational knob:
	// results are identical at every shard count.
	Shards int
	// QueueBatches bounds the ingestion queue, counted in enqueued batches;
	// <= 0 means 64. When the queue is full, Policy decides.
	QueueBatches int
	// Policy is the queue-overflow policy (default PolicyBlock).
	Policy OverflowPolicy
	// AlertBuffer caps the in-memory alert log; older alerts are dropped
	// once the log exceeds it. <= 0 means 65536. Consumers that fall more
	// than AlertBuffer alerts behind observe a gap (AlertsSince reports the
	// oldest retained sequence).
	AlertBuffer int
	// StatePath, when non-empty, enables persistence: New restores from
	// the file when it exists, Close writes it atomically, and SaveInterval
	// snapshots it periodically in between.
	StatePath string
	// SaveInterval is the background snapshot period; 0 disables the
	// periodic saver (Close still persists). Ignored when StatePath is "".
	SaveInterval time.Duration
	// FlushInterval is the period of liveness Flush barriers, which deliver
	// ingest-time alerts buffered inside shards to the alert log between
	// window closes. 0 disables them. For a time-ordered feed every alert
	// is raised at a window-close barrier, so flushes change nothing; for
	// out-of-order feeds they only affect when alerts become visible,
	// never which alerts exist.
	FlushInterval time.Duration
	// TTLInterval is the period of idle-customer eviction sweeps; it only
	// matters when Monitor.RetentionWindows > 0. Close barriers already
	// evict inline as the feed advances, so the sweep is memory-reclaim
	// timing for the cases barriers can't reach: a restore of a snapshot
	// taken under a longer (or no) horizon, and a feed gone quiet. The
	// eviction cutoff is always the already-closed watermark, so which
	// customers exist at any barrier never depends on sweep timing.
	// 0 disables the ticker.
	TTLInterval time.Duration
	// FollowPath, when non-empty, switches the ingestor to file-driven
	// ingestion: instead of accepting Enqueue batches (Enqueue returns
	// ErrFollowing), the drainer tails the STB1 segment chain at FollowPath
	// through a store.Follower, polling every FollowInterval. Torn tails
	// are retried; a shrunken file (compacted or replaced underneath the
	// follower) triggers an automatic resync: the monitor is rebuilt from
	// the whole file and alerts for windows already published are
	// suppressed, so the delivered alert sequence and SMN1 state stay
	// byte-identical to a sequential Monitor replay of the file.
	FollowPath string
	// FollowInterval is the follow-mode poll period; <= 0 means 500ms.
	// Ignored when FollowPath is "". Poll timing never affects which
	// alerts exist — only when they become visible.
	FollowInterval time.Duration
	// JournalPath, when non-empty, appends every accepted receipt as STB1
	// delta segments to the given file — a replayable record of exactly
	// what the monitor scored. The journal grows one segment per close
	// barrier (plus one per periodic save and on Close); CompactInterval
	// maintenance ticks rewrite the chain to a single segment crash-safely.
	// Mutually exclusive with FollowPath (the followed file already is the
	// journal).
	JournalPath string
	// CompactInterval is the period of journal self-compaction maintenance
	// ticks; 0 disables them (Compact can still be called explicitly).
	// Requires JournalPath.
	CompactInterval time.Duration
	// FS, when non-nil, routes state-file I/O (restore, background and
	// final saves, the journal, the followed file) through the given
	// filesystem — the fault-injection seam for crash-recovery tests. nil
	// means the real filesystem.
	FS faultfs.FS
}

func (c IngestorConfig) withDefaults() IngestorConfig {
	if c.QueueBatches <= 0 {
		c.QueueBatches = 64
	}
	if c.AlertBuffer <= 0 {
		c.AlertBuffer = 65536
	}
	if c.FollowPath != "" && c.FollowInterval <= 0 {
		c.FollowInterval = 500 * time.Millisecond
	}
	if c.FS == nil {
		c.FS = faultfs.OS{}
	}
	return c
}

// Validate reports configuration errors.
func (c IngestorConfig) Validate() error {
	if err := c.Monitor.Validate(); err != nil {
		return err
	}
	switch c.Policy {
	case PolicyBlock, PolicyShed, PolicyReject:
	default:
		return fmt.Errorf("stream: unknown overflow policy %d", int(c.Policy))
	}
	if c.SaveInterval < 0 || c.FlushInterval < 0 || c.TTLInterval < 0 || c.FollowInterval < 0 || c.CompactInterval < 0 {
		return errors.New("stream: negative ticker interval")
	}
	if c.FollowPath != "" && c.JournalPath != "" {
		return errors.New("stream: follow and journal are mutually exclusive (the followed file already is the receipt journal)")
	}
	if c.CompactInterval > 0 && c.JournalPath == "" {
		return errors.New("stream: compact interval requires a journal path")
	}
	return nil
}

// IngestorMetrics is a point-in-time snapshot of an Ingestor's counters.
// All counters are cumulative since New (restore does not carry counters
// over — they describe this process, the SMN1 state describes the model).
type IngestorMetrics struct {
	// ReceiptsIngested counts receipts handed to the monitor.
	ReceiptsIngested uint64 `json:"receipts_ingested"`
	// BatchesIngested counts batches drained from the queue.
	BatchesIngested uint64 `json:"batches_ingested"`
	// ReceiptsShed counts receipts dropped by PolicyShed.
	ReceiptsShed uint64 `json:"receipts_shed"`
	// ReceiptsRejected counts receipts refused by PolicyReject.
	ReceiptsRejected uint64 `json:"receipts_rejected"`
	// IngestErrors counts barriers that surfaced an ingest error (stale
	// receipts are the usual cause); each barrier reports at most one.
	IngestErrors uint64 `json:"ingest_errors"`
	// AlertsEmitted counts alerts appended to the delivery log.
	AlertsEmitted uint64 `json:"alerts_emitted"`
	// QueueDepth is the current number of queued batches.
	QueueDepth int `json:"queue_depth"`
	// QueueCapacity is the queue bound, in batches.
	QueueCapacity int `json:"queue_capacity"`
	// Watermark is the lowest window index not yet closed; receipts for
	// earlier windows are stale.
	Watermark int `json:"watermark"`
	// Saves and SaveErrors count background + final snapshot attempts.
	// Every attempt increments Saves; every failed attempt (including
	// in-cycle retries) increments SaveErrors.
	Saves      uint64 `json:"saves"`
	SaveErrors uint64 `json:"save_errors"`
	// SaveRetries counts in-cycle retries of failed snapshot writes.
	SaveRetries uint64 `json:"save_retries"`
	// StateSaveFailures counts save cycles that exhausted every retry —
	// the operator-facing "the snapshot on disk is going stale" signal.
	// Consecutive failures put the saver in backoff and, past the degraded
	// threshold, flip Health().Degraded.
	StateSaveFailures uint64 `json:"state_save_failures"`
	// Compactions and CompactionFailures count journal self-compaction
	// cycles (zero forever when no JournalPath/CompactInterval is set).
	Compactions        uint64 `json:"compactions"`
	CompactionFailures uint64 `json:"compaction_failures"`
	// JournalErrors counts failed journal segment appends; failed appends
	// are retried at the next flush point, so the journal heals itself
	// unless the disk fault persists.
	JournalErrors uint64 `json:"journal_errors"`
	// JournalSegments is the journal's STB1 segment count (1 right after a
	// compaction; 0 when journaling is off or the journal is empty).
	JournalSegments int `json:"journal_segments"`
	// FollowPolls/FollowErrors/FollowResyncs count follow-mode tail polls,
	// failed polls, and full resyncs after the followed file shrank.
	FollowPolls   uint64 `json:"follow_polls"`
	FollowErrors  uint64 `json:"follow_errors"`
	FollowResyncs uint64 `json:"follow_resyncs"`
	// CustomersEvicted counts customers dropped at the retention horizon
	// (0 forever when no horizon is configured).
	CustomersEvicted uint64 `json:"customers_evicted"`
	// CustomersRetained is the number of customers currently tracked — the
	// gauge that shows the memory bound holding.
	CustomersRetained int `json:"customers_retained"`
	// Degraded mirrors Health().Degraded: a maintenance loop (saver,
	// compactor, follower) has failed degradedThreshold times in a row.
	Degraded bool `json:"degraded"`
}

// Ingestor is the serving-path feed: a bounded batch queue with an
// explicit overflow policy in front of a ShardedMonitor, drained by a
// single goroutine that advances the window watermark and publishes every
// barrier's alerts to a sequence-numbered log.
//
// Enqueue is safe for concurrent use. Per-customer receipt order must be
// preserved by producers across Enqueue calls (the Monitor contract);
// receipts within one batch are ingested in slice order. Stop producers
// before Close, exactly as for ShardedMonitor.
type Ingestor struct {
	cfg  IngestorConfig
	grid gridInfo

	// monMu guards mon and evictedBase against the follower-resync swap:
	// the drainer replaces a resyncing monitor under the write lock while
	// concurrent readers (Stability, Customers, Metrics, WriteSnapshot)
	// hold the read lock for the duration of their call, so no reader can
	// touch a monitor whose shard goroutines have been stopped. Outside
	// follow mode the lock is never contended.
	monMu sync.RWMutex
	mon   *ShardedMonitor
	// evictedBase carries eviction counts across resync monitor swaps.
	evictedBase uint64

	queue chan []ReceiptEvent
	stop  chan struct{}
	// pauseReq hands the drainer a resume channel to park on; see Pause.
	pauseReq    chan chan struct{}
	drainDone   chan struct{}
	flushTick   *time.Ticker
	saveTick    *time.Ticker
	ttlTick     *time.Ticker
	compactTick *time.Ticker
	followTick  *time.Ticker

	// Drainer-owned watermark state: maxMonth is the largest receipt month
	// seen, lastClosedK the highest barrier-closed window.
	maxMonth    int
	lastClosedK int
	// suppressK drops alerts for windows at or below it from the delivery
	// log: after a follow-mode resync (or restart) the replay re-raises
	// alerts the previous incarnation already delivered. math.MinInt/2
	// disables suppression.
	suppressK int

	// Drainer-owned maintenance state: tick-counted backoff (never
	// wall-clock — backoff depth is a pure function of the failure
	// sequence), the follower, and the journal append buffer.
	saveBo     backoff
	compactBo  backoff
	follower   *store.Follower
	journalBuf *store.Builder
	// journalPending counts receipts buffered in journalBuf since the last
	// successful append.
	journalPending int
	// journalTrunc, when >= 0, is the size the journal must be cut back to
	// before the next append: a failed append may have left a torn segment.
	journalTrunc int64

	receipts     atomic.Uint64
	batches      atomic.Uint64
	shed         atomic.Uint64
	rejected     atomic.Uint64
	ingestErrs   atomic.Uint64
	saves        atomic.Uint64
	saveErrs     atomic.Uint64
	saveRetries  atomic.Uint64
	saveFailures atomic.Uint64
	compactions  atomic.Uint64
	compactFails atomic.Uint64
	journalErrs  atomic.Uint64
	journalSegs  atomic.Int64
	followPolls  atomic.Uint64
	followErrs   atomic.Uint64
	followResync atomic.Uint64
	// Consecutive-failure gauges behind Health(): reset to zero on the
	// first success of the corresponding loop.
	saveFailStreak    atomic.Int64
	compactFailStreak atomic.Int64
	followFailStreak  atomic.Int64
	watermark         atomic.Int64
	closed            atomic.Bool

	// pmu guards the pause/resume handshake.
	pmu    sync.Mutex
	resume chan struct{}

	// mu guards the alert log ring.
	mu      sync.Mutex
	log     []SeqAlert
	nextSeq uint64
	changed chan struct{}
}

// gridInfo caches the grid lookups the drainer needs per receipt.
type gridInfo struct {
	origin time.Time
	span   int
}

// NewIngestor validates cfg, restores SMN1 state from cfg.StatePath when
// the file exists, and starts the drainer (and any configured tickers).
func NewIngestor(cfg IngestorConfig) (*Ingestor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	mon, restored, err := openIngestorMonitor(cfg)
	if err != nil {
		return nil, err
	}
	i := &Ingestor{
		cfg:          cfg,
		mon:          mon,
		grid:         gridInfo{origin: cfg.Monitor.Grid.Origin(), span: cfg.Monitor.Grid.Span().Months},
		queue:        make(chan []ReceiptEvent, cfg.QueueBatches),
		stop:         make(chan struct{}),
		pauseReq:     make(chan chan struct{}),
		drainDone:    make(chan struct{}),
		maxMonth:     math.MinInt / 2,
		lastClosedK:  -1,
		suppressK:    math.MinInt / 2,
		journalTrunc: -1,
		nextSeq:      1,
		changed:      make(chan struct{}),
	}
	if restored {
		if k, ok := mon.Watermark(); ok {
			i.lastClosedK = k - 1
		}
		if cfg.FollowPath == "" {
			// The snapshot may have been taken under a longer (or no)
			// horizon: sweep once before the drainer starts, so
			// restored-but-expired customers are reclaimed without waiting
			// for feed traffic.
			i.evictSweep()
		} else if err := i.restartFollowReplay(); err != nil {
			mon.Close()
			return nil, err
		}
	}
	if cfg.FollowPath != "" {
		i.follower = store.NewFollower(cfg.FS, cfg.FollowPath)
	}
	if cfg.JournalPath != "" {
		i.journalBuf = store.NewBuilder()
		if err := i.openJournal(); err != nil {
			i.mon.Close()
			return nil, err
		}
	}
	wm := i.lastClosedK
	if i.suppressK > wm {
		wm = i.suppressK
	}
	i.watermark.Store(int64(wm + 1))
	var flushC, saveC, ttlC, compactC, followC <-chan time.Time
	if cfg.FlushInterval > 0 {
		i.flushTick = time.NewTicker(cfg.FlushInterval)
		flushC = i.flushTick.C
	}
	if cfg.SaveInterval > 0 && cfg.StatePath != "" {
		i.saveTick = time.NewTicker(cfg.SaveInterval)
		saveC = i.saveTick.C
	}
	if cfg.TTLInterval > 0 && cfg.Monitor.RetentionWindows > 0 {
		i.ttlTick = time.NewTicker(cfg.TTLInterval)
		ttlC = i.ttlTick.C
	}
	if cfg.CompactInterval > 0 && cfg.JournalPath != "" {
		i.compactTick = time.NewTicker(cfg.CompactInterval)
		compactC = i.compactTick.C
	}
	if cfg.FollowPath != "" {
		i.followTick = time.NewTicker(cfg.FollowInterval)
		followC = i.followTick.C
	}
	go i.drain(flushC, saveC, ttlC, compactC, followC)
	return i, nil
}

// openIngestorMonitor restores the monitor from cfg.StatePath when the
// file exists, else starts fresh.
func openIngestorMonitor(cfg IngestorConfig) (mon *ShardedMonitor, restored bool, err error) {
	if cfg.StatePath != "" {
		f, err := cfg.FS.Open(cfg.StatePath)
		switch {
		case err == nil:
			defer f.Close()
			mon, err := ReadShardedMonitorSnapshot(f, cfg.Monitor, cfg.Shards)
			if err != nil {
				return nil, false, fmt.Errorf("stream: restore %s: %w", cfg.StatePath, err)
			}
			return mon, true, nil
		case !errors.Is(err, iofs.ErrNotExist):
			return nil, false, err
		}
	}
	mon, err = NewSharded(cfg.Monitor, cfg.Shards)
	return mon, false, err
}

// Enqueue offers one batch for ingestion. The batch is accepted (queued,
// true), shed under PolicyShed (false, nil), or refused under PolicyReject
// (false, ErrQueueFull). Under PolicyBlock the call waits for queue space.
// The batch slice and its baskets must not be mutated after Enqueue
// returns true.
func (i *Ingestor) Enqueue(batch []ReceiptEvent) (bool, error) {
	if len(batch) == 0 {
		return true, nil
	}
	if i.cfg.FollowPath != "" {
		return false, ErrFollowing
	}
	if i.closed.Load() {
		return false, ErrIngestorClosed
	}
	if i.cfg.Policy == PolicyBlock {
		select {
		case i.queue <- batch:
			return true, nil
		case <-i.stop:
			return false, ErrIngestorClosed
		}
	}
	select {
	case i.queue <- batch:
		return true, nil
	case <-i.stop:
		return false, ErrIngestorClosed
	default:
	}
	if i.cfg.Policy == PolicyShed {
		i.shed.Add(uint64(len(batch)))
		return false, nil
	}
	i.rejected.Add(uint64(len(batch)))
	return false, ErrQueueFull
}

// drain is the single queue consumer: it feeds the monitor in queue order,
// fires watermark barriers as receipt months advance, and services pause
// requests and tickers. nil ticker channels block forever, so disabled
// tickers cost nothing.
func (i *Ingestor) drain(flushC, saveC, ttlC, compactC, followC <-chan time.Time) {
	defer close(i.drainDone)
	for {
		select {
		case resume := <-i.pauseReq:
			<-resume
		case <-flushC:
			i.flushBarrier()
		case <-saveC:
			i.saveCycle()
		case <-ttlC:
			i.evictSweep()
		case <-compactC:
			i.compactCycle()
		case <-followC:
			i.followPoll()
		case batch := <-i.queue:
			i.process(batch)
		case <-i.stop:
			// Drain what made it into the queue before the stop, then exit;
			// Close runs the final barrier and save.
			for {
				select {
				case batch := <-i.queue:
					i.process(batch)
				default:
					return
				}
			}
		}
	}
}

// process ingests one batch. When a receipt's month advances past every
// month seen so far, every window that ended at or before that month's
// start is provably complete — the conservative `monitor -state` rule — so
// a CloseThrough barrier fires before the receipt is ingested.
func (i *Ingestor) process(batch []ReceiptEvent) {
	for _, ev := range batch {
		if m := i.monthIndex(ev.Time); m > i.maxMonth {
			i.maxMonth = m
			// closeK is the last window ending at or before the start of
			// month m. Guarding on lastClosedK makes the barrier positions
			// a pure function of the receipt sequence.
			if closeK := i.windowOfMonth(m) - 1; closeK > i.lastClosedK {
				i.closeBarrier(closeK)
			}
		}
		if err := i.mon.Ingest(ev.Customer, ev.Time, ev.Items); err != nil {
			// Only ErrClosed is synchronous, and Close stops this drainer
			// first, so this is unreachable in practice; count it anyway.
			i.ingestErrs.Add(1)
			return
		}
		i.journalAdd(ev)
		i.receipts.Add(1)
	}
	i.batches.Add(1)
}

// monthIndex returns the month index of t from the grid origin, in UTC
// like Grid.MonthIndex — the barrier positions must agree with Grid.Index
// or the drainer and the HTTP stale filter would disagree on offset-bearing
// timestamps.
func (i *Ingestor) monthIndex(t time.Time) int {
	t = t.UTC()
	return (t.Year()-i.grid.origin.Year())*12 + int(t.Month()) - int(i.grid.origin.Month())
}

// windowOfMonth returns the grid index of the window containing month m.
func (i *Ingestor) windowOfMonth(m int) int {
	if m >= 0 {
		return m / i.grid.span
	}
	return -((-m + i.grid.span - 1) / i.grid.span)
}

// closeBarrier force-closes windows through k and publishes the alerts.
// The published watermark only moves forward: during a follow-mode resync
// replay lastClosedK rewinds internally, but windows the previous monitor
// incarnation closed stay closed as far as consumers are concerned.
func (i *Ingestor) closeBarrier(k int) {
	alerts, err := i.mon.CloseThrough(k)
	if err != nil {
		i.ingestErrs.Add(1)
	}
	i.lastClosedK = k
	if wm := int64(k + 1); wm > i.watermark.Load() {
		i.watermark.Store(wm)
	}
	i.publish(alerts)
	// A close barrier is a deterministic position in the receipt sequence —
	// the right moment to persist the journal segment covering everything
	// up to it.
	i.journalFlush()
}

// evictSweep force-evicts customers idle past the retention horizon as of
// the already-closed watermark — the TTL job. Close barriers evict inline,
// so the sweep is pure memory reclamation with a deterministic cutoff:
// which customers exist at any barrier never depends on sweep timing.
func (i *Ingestor) evictSweep() {
	if i.cfg.Monitor.RetentionWindows <= 0 {
		return
	}
	alerts, _, err := i.mon.EvictIdle(i.lastClosedK)
	if err != nil {
		i.ingestErrs.Add(1)
	}
	i.publish(alerts)
}

// flushBarrier delivers shard-buffered ingest alerts without closing
// windows.
func (i *Ingestor) flushBarrier() {
	alerts, err := i.mon.Flush()
	if err != nil {
		i.ingestErrs.Add(1)
	}
	i.publish(alerts)
}

// publish appends alerts to the sequence-numbered log, trims it to the
// configured buffer, and wakes waiting consumers. Alerts for windows at or
// below suppressK are dropped: a follow-mode resync replay re-raises
// alerts the previous monitor incarnation already delivered, and delivering
// them twice would break the byte-equality with an uninterrupted run.
func (i *Ingestor) publish(alerts []Alert) {
	if i.suppressK > math.MinInt/2 && len(alerts) > 0 {
		kept := alerts[:0]
		for _, a := range alerts {
			if a.GridIndex > i.suppressK {
				kept = append(kept, a)
			}
		}
		alerts = kept
	}
	if len(alerts) == 0 {
		return
	}
	i.mu.Lock()
	for _, a := range alerts {
		i.log = append(i.log, SeqAlert{Seq: i.nextSeq, Alert: a})
		i.nextSeq++
	}
	if excess := len(i.log) - i.cfg.AlertBuffer; excess > 0 {
		i.log = append(i.log[:0], i.log[excess:]...)
	}
	close(i.changed)
	i.changed = make(chan struct{})
	i.mu.Unlock()
}

// AlertsSince returns up to max alerts with sequence numbers strictly
// greater than after, in delivery order. oldest is the lowest sequence
// still retained (consumers detect a gap when after+1 < oldest), and wait
// is a channel closed at the next publication — select on it to long-poll.
// max <= 0 means no limit.
func (i *Ingestor) AlertsSince(after uint64, max int) (batch []SeqAlert, oldest uint64, wait <-chan struct{}) {
	i.mu.Lock()
	defer i.mu.Unlock()
	oldest = i.nextSeq
	if len(i.log) > 0 {
		oldest = i.log[0].Seq
	}
	start := len(i.log)
	if after < oldest {
		start = 0
	} else if d := after - oldest + 1; d < uint64(len(i.log)) {
		// after >= oldest >= 1, so neither subtraction nor the +1 can wrap;
		// clamping before the int conversion keeps huge after values (e.g. a
		// forged Last-Event-ID) from producing a negative slice index.
		start = int(d)
	}
	if start < len(i.log) {
		n := len(i.log) - start
		if max > 0 && n > max {
			n = max
		}
		batch = make([]SeqAlert, n)
		copy(batch, i.log[start:start+n])
	}
	return batch, oldest, i.changed
}

// Pause parks the drainer until Resume: queued batches stay queued, so the
// backpressure policies act deterministically (tests and operational
// quiesce both rely on this). Pause returns once the drainer is parked; a
// second Pause before Resume is an error.
func (i *Ingestor) Pause() error {
	i.pmu.Lock()
	defer i.pmu.Unlock()
	if i.resume != nil {
		return errors.New("stream: ingestor already paused")
	}
	r := make(chan struct{})
	select {
	case i.pauseReq <- r:
		i.resume = r
		return nil
	case <-i.stop:
		return ErrIngestorClosed
	}
}

// Resume releases a paused drainer. Resuming a running ingestor is a
// no-op.
func (i *Ingestor) Resume() {
	i.pmu.Lock()
	defer i.pmu.Unlock()
	if i.resume != nil {
		close(i.resume)
		i.resume = nil
	}
}

// Stability returns the customer's last scored stability, synchronized
// with the owning shard (it reflects every receipt already handed to the
// monitor, not receipts still queued).
func (i *Ingestor) Stability(id retail.CustomerID) (value float64, gridIndex int, ok bool) {
	i.monMu.RLock()
	defer i.monMu.RUnlock()
	return i.mon.Stability(id)
}

// Stabilities answers a batch of stability queries under one monitor-lock
// acquisition, fanning per-shard inside the monitor — where N Stability
// calls pay N lock round trips, a batch pays one. Row i is exactly what
// Stability(ids[i]) would return; dst is reused as in
// ShardedMonitor.Stabilities.
func (i *Ingestor) Stabilities(ids []retail.CustomerID, dst []CustomerStability) []CustomerStability {
	i.monMu.RLock()
	defer i.monMu.RUnlock()
	return i.mon.Stabilities(ids, dst)
}

// Customers returns the number of customers tracked across all shards.
func (i *Ingestor) Customers() int {
	i.monMu.RLock()
	defer i.monMu.RUnlock()
	return i.mon.Customers()
}

// Watermark returns the lowest window index not yet closed by a barrier;
// receipts for earlier windows are stale and should be refused upstream.
func (i *Ingestor) Watermark() int { return int(i.watermark.Load()) }

// Metrics returns a snapshot of the ingestion counters.
func (i *Ingestor) Metrics() IngestorMetrics {
	i.monMu.RLock()
	evicted := i.evictedBase + i.mon.Evicted()
	retained := i.mon.Customers()
	i.monMu.RUnlock()
	return IngestorMetrics{
		ReceiptsIngested:   i.receipts.Load(),
		BatchesIngested:    i.batches.Load(),
		ReceiptsShed:       i.shed.Load(),
		ReceiptsRejected:   i.rejected.Load(),
		IngestErrors:       i.ingestErrs.Load(),
		AlertsEmitted:      i.alertsEmitted(),
		QueueDepth:         len(i.queue),
		QueueCapacity:      cap(i.queue),
		Watermark:          int(i.watermark.Load()),
		Saves:              i.saves.Load(),
		SaveErrors:         i.saveErrs.Load(),
		SaveRetries:        i.saveRetries.Load(),
		StateSaveFailures:  i.saveFailures.Load(),
		Compactions:        i.compactions.Load(),
		CompactionFailures: i.compactFails.Load(),
		JournalErrors:      i.journalErrs.Load(),
		JournalSegments:    int(i.journalSegs.Load()),
		FollowPolls:        i.followPolls.Load(),
		FollowErrors:       i.followErrs.Load(),
		FollowResyncs:      i.followResync.Load(),
		CustomersEvicted:   evicted,
		CustomersRetained:  retained,
		Degraded:           i.Health().Degraded,
	}
}

func (i *Ingestor) alertsEmitted() uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.nextSeq - 1
}

// saveAttempt makes one snapshot attempt: flush shard-buffered alerts to
// the log (so a crash after the save loses only alerts never delivered to
// any consumer), pending journal receipts to disk, then write the SMN1
// state atomically (tmp + rename). Called from the drainer's retrying
// saveCycle and from Close.
func (i *Ingestor) saveAttempt() bool {
	if i.cfg.StatePath == "" {
		return true
	}
	if !i.mon.closed.Load() {
		i.flushBarrier()
	}
	i.journalFlush()
	i.saves.Add(1)
	if err := i.writeStateFile(); err != nil {
		i.saveErrs.Add(1)
		return false
	}
	return true
}

func (i *Ingestor) writeStateFile() error {
	tmp := i.cfg.StatePath + ".tmp"
	f, err := i.cfg.FS.Create(tmp)
	if err != nil {
		return err
	}
	if err := i.mon.WriteSnapshot(f); err != nil {
		f.Close()
		i.cfg.FS.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		i.cfg.FS.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		i.cfg.FS.Remove(tmp)
		return err
	}
	return i.cfg.FS.Rename(tmp, i.cfg.StatePath)
}

// WriteSnapshot streams the monitor's SMN1 state, usable before and after
// Close. Windows past the watermark stay open in the snapshot — their
// pending baskets persist — so a restored ingestor resumes losslessly.
func (i *Ingestor) WriteSnapshot(w io.Writer) error {
	return i.mon.WriteSnapshot(w)
}

// Close drains the queue, delivers every shard-buffered alert, persists
// the final SMN1 snapshot when StatePath is set, and stops the monitor.
// Close never force-closes windows past the watermark: more data may
// follow in the newest month, so pending windows persist open — restoring
// from StatePath and continuing the feed yields byte-identical alerts and
// state to an uninterrupted run. Stop producers first.
func (i *Ingestor) Close() error {
	if i.closed.Swap(true) {
		return ErrIngestorClosed
	}
	for _, t := range []*time.Ticker{i.flushTick, i.saveTick, i.ttlTick, i.compactTick, i.followTick} {
		if t != nil {
			t.Stop()
		}
	}
	i.Resume()
	close(i.stop)
	<-i.drainDone
	alerts, err := i.mon.Close()
	if err != nil {
		i.ingestErrs.Add(1)
	}
	i.publish(alerts)
	i.journalFlush()
	if i.cfg.StatePath != "" {
		i.saves.Add(1)
		if err := i.writeStateFile(); err != nil {
			i.saveErrs.Add(1)
			return err
		}
	}
	return nil
}
