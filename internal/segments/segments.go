// Package segments deepens "the characterization of significant products
// that can explain customer defection" — the future work the paper's
// conclusion announces. It aggregates the model's per-customer
// explanations across a population into per-segment attrition statistics:
// which segments are lost first when defection starts (gateway segments),
// which appear in explanations at all, and how much stability their loss
// costs — the input a retailer needs to decide which categories to defend.
package segments

import (
	"fmt"
	"io"
	"sort"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/population"
	"github.com/gautrais/stability/internal/report"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

// Options tune the aggregation.
type Options struct {
	// MinDrop is the stability decrease for a window to count as a drop
	// event.
	MinDrop float64
	// TopJ caps how many blamed segments per drop event are aggregated.
	TopJ int
	// Workers sizes the analysis worker pool; <= 0 means GOMAXPROCS. The
	// aggregate is identical at every worker count.
	Workers int
}

// DefaultOptions returns the aggregation used by the EXT-5 experiment.
func DefaultOptions() Options { return Options{MinDrop: 0.05, TopJ: 3} }

// Validate reports option errors.
func (o Options) Validate() error {
	if o.MinDrop < 0 || o.MinDrop > 1 {
		return fmt.Errorf("segments: MinDrop must be in [0,1], got %v", o.MinDrop)
	}
	if o.TopJ < 1 {
		return fmt.Errorf("segments: TopJ must be >= 1, got %d", o.TopJ)
	}
	return nil
}

// Stats aggregates one segment's role in the population's attrition.
type Stats struct {
	Segment retail.ItemID
	// FirstLoss counts customers whose *first* drop event blamed this
	// segment (within the top-j) — the gateway-product signal.
	FirstLoss int
	// AnyLoss counts customers with any drop event blaming this segment.
	AnyLoss int
	// Blames counts drop events blaming this segment (a customer can
	// contribute several).
	Blames int
	// ShareSum accumulates the stability share lost to this segment
	// across its blames; MeanShare = ShareSum / Blames.
	ShareSum float64
}

// MeanShare returns the mean stability cost per blame.
func (s Stats) MeanShare() float64 {
	if s.Blames == 0 {
		return 0
	}
	return s.ShareSum / float64(s.Blames)
}

// Report is the population-level characterization.
type Report struct {
	Options    Options
	Customers  int // customers analyzed
	WithDrops  int // customers with at least one drop event
	DropEvents int
	// PerSegment is sorted by FirstLoss desc, then AnyLoss desc, then
	// segment id.
	PerSegment []Stats
}

// Characterize runs the model over every history and aggregates blame. The
// analysis windows run from each customer's first purchase through window
// `through`.
//
// The per-customer analyses are sharded across opts.Workers goroutines; the
// blame aggregation folds the results sequentially in input order, so the
// report is identical to a sequential pass at every worker count.
func Characterize(model *core.Model, histories []retail.History, grid window.Grid, through int, opts Options) (*Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("segments: nil model")
	}
	rep := &Report{Options: opts}
	acc := make(map[retail.ItemID]*Stats)
	get := func(id retail.ItemID) *Stats {
		s, ok := acc[id]
		if !ok {
			s = &Stats{Segment: id}
			acc[id] = s
		}
		return s
	}
	// Map: score one customer and extract their drop events (the only part
	// of the series the aggregation consumes). Reduce: ordered sequential
	// fold, identical to the sequential loop.
	popOpts := population.Options{Workers: opts.Workers}
	_, err := population.MapReduce(len(histories), popOpts, rep,
		func(i int) ([]core.DropEvent, error) {
			wd, err := window.Windowize(histories[i], grid, through)
			if err != nil {
				return nil, err
			}
			series, err := model.Analyze(wd)
			if err != nil {
				return nil, err
			}
			return series.Drops(opts.MinDrop, opts.TopJ), nil
		},
		func(rep *Report, drops []core.DropEvent, _ int) *Report {
			rep.Customers++
			if len(drops) == 0 {
				return rep
			}
			rep.WithDrops++
			rep.DropEvents += len(drops)
			for di, d := range drops {
				for _, b := range d.Blame {
					s := get(b.Item)
					s.Blames++
					s.ShareSum += b.Share
					if di == 0 {
						s.FirstLoss++
					}
				}
			}
			// AnyLoss: distinct customers per segment.
			seen := map[retail.ItemID]bool{}
			for _, d := range drops {
				for _, b := range d.Blame {
					if !seen[b.Item] {
						seen[b.Item] = true
						get(b.Item).AnyLoss++
					}
				}
			}
			return rep
		})
	if err != nil {
		return nil, err
	}
	rep.PerSegment = make([]Stats, 0, len(acc))
	for _, s := range acc {
		rep.PerSegment = append(rep.PerSegment, *s)
	}
	sort.Slice(rep.PerSegment, func(i, j int) bool {
		a, b := rep.PerSegment[i], rep.PerSegment[j]
		if a.FirstLoss != b.FirstLoss {
			return a.FirstLoss > b.FirstLoss
		}
		if a.AnyLoss != b.AnyLoss {
			return a.AnyLoss > b.AnyLoss
		}
		return a.Segment < b.Segment
	})
	return rep, nil
}

// Top returns the n leading segments (fewer if the report is shorter).
func (r *Report) Top(n int) []Stats {
	if n > len(r.PerSegment) {
		n = len(r.PerSegment)
	}
	return r.PerSegment[:n]
}

// Table renders the top-n segments with a naming function (pass
// catalog.SegmentName, or nil for raw identifiers).
func (r *Report) Table(n int, name func(retail.ItemID) string) *report.Table {
	t := report.NewTable("segment", "first_loss", "any_loss", "blames", "mean_share")
	for _, s := range r.Top(n) {
		label := fmt.Sprintf("%d", s.Segment)
		if name != nil {
			label = name(s.Segment)
		}
		t.AddRow(label, s.FirstLoss, s.AnyLoss, s.Blames, s.MeanShare())
	}
	return t
}

// Render writes the headline and the top-20 table.
func (r *Report) Render(w io.Writer, name func(retail.ItemID) string) {
	fmt.Fprintf(w, "segment characterization: %d customers, %d with drops, %d drop events\n\n",
		r.Customers, r.WithDrops, r.DropEvents)
	r.Table(20, name).Render(w)
}
