package segments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

func testGrid(t *testing.T) window.Grid {
	t.Helper()
	g, err := window.NewGrid(time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), window.Span{Months: 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// erodingHistory builds a customer who buys `items` every window, then
// loses them one by one in the given order starting at window lossStart.
func erodingHistory(g window.Grid, id retail.CustomerID, items []retail.ItemID, lossOrder []retail.ItemID, lossStart, totalWindows int) retail.History {
	h := retail.History{Customer: id}
	lost := map[retail.ItemID]bool{}
	for k := 0; k < totalWindows; k++ {
		if k >= lossStart && k-lossStart < len(lossOrder) {
			lost[lossOrder[k-lossStart]] = true
		}
		var basket []retail.ItemID
		for _, it := range items {
			if !lost[it] {
				basket = append(basket, it)
			}
		}
		start, _ := g.Bounds(k)
		h.Receipts = append(h.Receipts, retail.Receipt{
			Time:  start.AddDate(0, 0, 2),
			Items: retail.NewBasket(basket),
		})
	}
	return h
}

func TestCharacterizeGatewaySegments(t *testing.T) {
	g := testGrid(t)
	model, err := core.New(core.Options{Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	items := []retail.ItemID{1, 2, 3, 4, 5}
	// Everyone loses segment 5 first, then 4.
	var histories []retail.History
	for i := 0; i < 10; i++ {
		histories = append(histories, erodingHistory(g, retail.CustomerID(i+1),
			items, []retail.ItemID{5, 4}, 8, 14))
	}
	// Plus stable customers contributing no drops.
	for i := 10; i < 15; i++ {
		histories = append(histories, erodingHistory(g, retail.CustomerID(i+1),
			items, nil, 0, 14))
	}
	rep, err := Characterize(model, histories, g, 13, Options{MinDrop: 0.05, TopJ: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Customers != 15 {
		t.Fatalf("customers = %d", rep.Customers)
	}
	if rep.WithDrops != 10 {
		t.Fatalf("withDrops = %d", rep.WithDrops)
	}
	if len(rep.PerSegment) == 0 {
		t.Fatal("no segments aggregated")
	}
	top := rep.PerSegment[0]
	if top.Segment != 5 {
		t.Fatalf("gateway segment = %d, want 5", top.Segment)
	}
	if top.FirstLoss != 10 {
		t.Fatalf("segment 5 FirstLoss = %d, want 10", top.FirstLoss)
	}
	// Segment 4 is lost second: blamed but never first.
	var s4 *Stats
	for i := range rep.PerSegment {
		if rep.PerSegment[i].Segment == 4 {
			s4 = &rep.PerSegment[i]
		}
	}
	if s4 == nil {
		t.Fatal("segment 4 absent from report")
	}
	if s4.FirstLoss != 0 {
		t.Fatalf("segment 4 FirstLoss = %d, want 0", s4.FirstLoss)
	}
	if s4.AnyLoss != 10 {
		t.Fatalf("segment 4 AnyLoss = %d, want 10", s4.AnyLoss)
	}
	// Shares are meaningful.
	if top.MeanShare() <= 0 || top.MeanShare() > 1 {
		t.Fatalf("mean share = %v", top.MeanShare())
	}
}

func TestCharacterizeAnyLossCountsDistinctCustomers(t *testing.T) {
	g := testGrid(t)
	model, _ := core.New(core.Options{Alpha: 2})
	// One customer loses 3, recovers it, loses it again: AnyLoss must be 1
	// even though Blames >= 2.
	h := retail.History{Customer: 1}
	pattern := [][]retail.ItemID{
		{1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2, 3},
		{1, 2}, // lose 3
		{1, 2, 3},
		{1, 2}, // lose 3 again
		{1, 2, 3},
	}
	for k, items := range pattern {
		start, _ := g.Bounds(k)
		h.Receipts = append(h.Receipts, retail.Receipt{
			Time:  start.AddDate(0, 0, 1),
			Items: retail.NewBasket(items),
		})
	}
	rep, err := Characterize(model, []retail.History{h}, g, len(pattern)-1, Options{MinDrop: 0.01, TopJ: 1})
	if err != nil {
		t.Fatal(err)
	}
	var s3 *Stats
	for i := range rep.PerSegment {
		if rep.PerSegment[i].Segment == 3 {
			s3 = &rep.PerSegment[i]
		}
	}
	if s3 == nil {
		t.Fatal("segment 3 absent")
	}
	if s3.AnyLoss != 1 {
		t.Fatalf("AnyLoss = %d, want 1 (distinct customers)", s3.AnyLoss)
	}
	if s3.Blames < 2 {
		t.Fatalf("Blames = %d, want >= 2", s3.Blames)
	}
}

func TestCharacterizeValidation(t *testing.T) {
	g := testGrid(t)
	model, _ := core.New(core.Options{Alpha: 2})
	if _, err := Characterize(model, nil, g, 5, Options{MinDrop: -1, TopJ: 1}); err == nil {
		t.Fatal("negative MinDrop accepted")
	}
	if _, err := Characterize(model, nil, g, 5, Options{MinDrop: 0.1, TopJ: 0}); err == nil {
		t.Fatal("TopJ=0 accepted")
	}
	if _, err := Characterize(nil, nil, g, 5, DefaultOptions()); err == nil {
		t.Fatal("nil model accepted")
	}
	rep, err := Characterize(model, nil, g, 5, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Customers != 0 || len(rep.PerSegment) != 0 {
		t.Fatalf("empty population report: %+v", rep)
	}
}

func TestReportTopAndRender(t *testing.T) {
	g := testGrid(t)
	model, _ := core.New(core.Options{Alpha: 2})
	items := []retail.ItemID{1, 2, 3}
	histories := []retail.History{
		erodingHistory(g, 1, items, []retail.ItemID{3}, 6, 10),
	}
	rep, err := Characterize(model, histories, g, 9, Options{MinDrop: 0.05, TopJ: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Top(100); len(got) != len(rep.PerSegment) {
		t.Fatalf("Top(100) = %d entries", len(got))
	}
	if got := rep.Top(1); len(got) != 1 {
		t.Fatalf("Top(1) = %d entries", len(got))
	}
	var buf bytes.Buffer
	rep.Render(&buf, func(id retail.ItemID) string { return "seg-" + string(rune('0'+id)) })
	out := buf.String()
	if !strings.Contains(out, "seg-3") {
		t.Fatalf("render missing named segment: %s", out)
	}
	if !strings.Contains(out, "drop events") {
		t.Fatal("render missing headline")
	}
	// Nil namer renders raw ids.
	var buf2 bytes.Buffer
	rep.Render(&buf2, nil)
	if !strings.Contains(buf2.String(), "3") {
		t.Fatal("nil-namer render missing id")
	}
}
