// Package retail defines the domain model shared by every subsystem of the
// stability library: items (product segments), baskets, timestamped
// receipts, per-customer purchase histories, and cohort labels.
//
// The model follows the paper's formalization: the purchases of customer i
// form a chronologically ordered list Di = ⟨(b1,t1) … (bN,tN)⟩ where each
// basket bj is a subset of the item universe I. Items are dictionary-encoded
// segment identifiers (see package taxonomy); the stability model operates
// at the segment level of abstraction, as the paper's evaluation does.
package retail

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// ItemID identifies a product segment. The zero value is not a valid item;
// identifiers are assigned densely starting at 1 by the taxonomy catalog,
// which keeps 0 free as a sentinel.
type ItemID uint32

// NoItem is the sentinel "absent item" identifier.
const NoItem ItemID = 0

// CustomerID identifies a customer account (loyalty-card holder).
type CustomerID uint64

// Basket is the set of items bought in one receipt. Baskets are kept sorted
// by ItemID with duplicates removed; use NewBasket to normalize raw input.
type Basket []ItemID

// NewBasket returns a normalized (sorted, deduplicated) basket built from
// raw item identifiers. The input slice is not modified.
func NewBasket(items []ItemID) Basket {
	if len(items) == 0 {
		return Basket{}
	}
	b := make(Basket, len(items))
	copy(b, items)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	out := b[:1]
	for _, it := range b[1:] {
		if it != out[len(out)-1] {
			out = append(out, it)
		}
	}
	return out
}

// Contains reports whether the basket contains item p. The basket must be
// normalized (sorted ascending), which NewBasket guarantees.
func (b Basket) Contains(p ItemID) bool {
	i := sort.Search(len(b), func(i int) bool { return b[i] >= p })
	return i < len(b) && b[i] == p
}

// Union returns the normalized union of b and other.
func (b Basket) Union(other Basket) Basket {
	return UnionInto(make(Basket, 0, len(b)+len(other)), b, other)
}

// UnionInto appends the normalized union of a and b to dst[:0] and returns
// it, reusing dst's capacity — the allocation-free path for long-lived
// accumulators (e.g. a streaming monitor's open-window basket). dst must
// not alias a or b; a and b must be normalized.
func UnionInto(dst, a, b Basket) Basket {
	out := dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Equal reports whether two normalized baskets hold the same items.
func (b Basket) Equal(other Basket) bool {
	if len(b) != len(other) {
		return false
	}
	for i := range b {
		if b[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the basket.
func (b Basket) Clone() Basket {
	out := make(Basket, len(b))
	copy(out, b)
	return out
}

// IsNormalized reports whether the basket is sorted ascending with no
// duplicates.
func (b Basket) IsNormalized() bool {
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			return false
		}
	}
	return true
}

// Receipt is one timestamped store visit: the basket content and the total
// monetary value of the visit. Spend is used only by the RFM baseline; the
// stability model itself consumes basket contents alone.
type Receipt struct {
	Time  time.Time
	Items Basket
	Spend float64
}

// History is the chronologically ordered purchase record Di of one customer.
type History struct {
	Customer CustomerID
	Receipts []Receipt
}

// Validate checks the structural invariants of a history: receipts sorted by
// time (ties allowed), normalized baskets, non-negative spend.
func (h *History) Validate() error {
	for i, r := range h.Receipts {
		if i > 0 && r.Time.Before(h.Receipts[i-1].Time) {
			return fmt.Errorf("retail: customer %d: receipt %d out of order (%s before %s)",
				h.Customer, i, r.Time.Format(time.RFC3339), h.Receipts[i-1].Time.Format(time.RFC3339))
		}
		if !r.Items.IsNormalized() {
			return fmt.Errorf("retail: customer %d: receipt %d basket not normalized", h.Customer, i)
		}
		if r.Spend < 0 {
			return fmt.Errorf("retail: customer %d: receipt %d negative spend %v", h.Customer, i, r.Spend)
		}
	}
	return nil
}

// Sort orders receipts chronologically in place (stable, preserving insert
// order among equal timestamps).
func (h *History) Sort() {
	sort.SliceStable(h.Receipts, func(i, j int) bool {
		return h.Receipts[i].Time.Before(h.Receipts[j].Time)
	})
}

// Span returns the time of the first and last receipts. ok is false for an
// empty history.
func (h *History) Span() (first, last time.Time, ok bool) {
	if len(h.Receipts) == 0 {
		return time.Time{}, time.Time{}, false
	}
	return h.Receipts[0].Time, h.Receipts[len(h.Receipts)-1].Time, true
}

// TotalSpend returns the summed monetary value of every receipt.
func (h *History) TotalSpend() float64 {
	var total float64
	for _, r := range h.Receipts {
		total += r.Spend
	}
	return total
}

// Items returns the set of distinct items bought across the whole history.
func (h *History) Items() Basket {
	var u Basket
	for _, r := range h.Receipts {
		u = u.Union(r.Items)
	}
	return u
}

// Cohort classifies a customer for evaluation purposes, mirroring the labels
// the retailer supplied for the paper's experiments.
type Cohort int8

const (
	// CohortUnknown marks customers with no supplied label.
	CohortUnknown Cohort = iota
	// CohortLoyal marks behaviourally loyal customers that did not defect.
	CohortLoyal
	// CohortDefecting marks loyal customers that defected during the
	// observation period (partial attrition).
	CohortDefecting
)

// String returns the lowercase cohort name.
func (c Cohort) String() string {
	switch c {
	case CohortLoyal:
		return "loyal"
	case CohortDefecting:
		return "defecting"
	default:
		return "unknown"
	}
}

// ParseCohort converts a cohort name back to its value. It accepts the
// strings produced by Cohort.String.
func ParseCohort(s string) (Cohort, error) {
	switch s {
	case "loyal":
		return CohortLoyal, nil
	case "defecting":
		return CohortDefecting, nil
	case "unknown":
		return CohortUnknown, nil
	}
	return CohortUnknown, fmt.Errorf("retail: unknown cohort %q", s)
}

// Label is the ground-truth evaluation record for one customer.
type Label struct {
	Customer CustomerID
	Cohort   Cohort
	// OnsetMonth is the month index (relative to the dataset origin, first
	// month = 0) at which defection began. It is meaningful only for
	// CohortDefecting; -1 otherwise.
	OnsetMonth int
}

// ErrEmptyHistory is returned by operations that require at least one
// receipt.
var ErrEmptyHistory = errors.New("retail: empty history")
