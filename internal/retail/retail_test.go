package retail

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNewBasketNormalizes(t *testing.T) {
	tests := []struct {
		name string
		in   []ItemID
		want Basket
	}{
		{"empty", nil, Basket{}},
		{"single", []ItemID{5}, Basket{5}},
		{"sorted kept", []ItemID{1, 2, 3}, Basket{1, 2, 3}},
		{"unsorted", []ItemID{3, 1, 2}, Basket{1, 2, 3}},
		{"duplicates", []ItemID{2, 2, 2}, Basket{2}},
		{"mixed", []ItemID{5, 1, 5, 3, 1}, Basket{1, 3, 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NewBasket(tt.in)
			if !got.Equal(tt.want) {
				t.Fatalf("NewBasket(%v) = %v, want %v", tt.in, got, tt.want)
			}
			if !got.IsNormalized() {
				t.Fatalf("NewBasket(%v) = %v is not normalized", tt.in, got)
			}
		})
	}
}

func TestNewBasketDoesNotMutateInput(t *testing.T) {
	in := []ItemID{3, 1, 2}
	NewBasket(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input slice mutated: %v", in)
	}
}

func TestBasketContains(t *testing.T) {
	b := NewBasket([]ItemID{2, 4, 6, 8})
	for _, p := range []ItemID{2, 4, 6, 8} {
		if !b.Contains(p) {
			t.Errorf("Contains(%d) = false, want true", p)
		}
	}
	for _, p := range []ItemID{1, 3, 5, 7, 9, 100} {
		if b.Contains(p) {
			t.Errorf("Contains(%d) = true, want false", p)
		}
	}
	if (Basket{}).Contains(1) {
		t.Error("empty basket Contains(1) = true")
	}
}

func TestBasketUnion(t *testing.T) {
	tests := []struct {
		name string
		a, b Basket
		want Basket
	}{
		{"both empty", Basket{}, Basket{}, Basket{}},
		{"left empty", Basket{}, Basket{1, 2}, Basket{1, 2}},
		{"right empty", Basket{1, 2}, Basket{}, Basket{1, 2}},
		{"disjoint", Basket{1, 3}, Basket{2, 4}, Basket{1, 2, 3, 4}},
		{"overlapping", Basket{1, 2, 3}, Basket{2, 3, 4}, Basket{1, 2, 3, 4}},
		{"identical", Basket{1, 2}, Basket{1, 2}, Basket{1, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.Union(tt.b)
			if !got.Equal(tt.want) {
				t.Fatalf("%v ∪ %v = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestBasketUnionProperties(t *testing.T) {
	gen := func(r *rand.Rand) Basket {
		n := r.Intn(12)
		items := make([]ItemID, n)
		for i := range items {
			items[i] = ItemID(r.Intn(20) + 1)
		}
		return NewBasket(items)
	}
	cfg := &quick.Config{MaxCount: 200, Values: nil}
	// Commutativity.
	commutative := func(seedA, seedB int64) bool {
		a := gen(rand.New(rand.NewSource(seedA)))
		b := gen(rand.New(rand.NewSource(seedB)))
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(commutative, cfg); err != nil {
		t.Error(err)
	}
	// Idempotence and containment.
	contains := func(seedA, seedB int64) bool {
		a := gen(rand.New(rand.NewSource(seedA)))
		b := gen(rand.New(rand.NewSource(seedB)))
		u := a.Union(b)
		if !u.IsNormalized() {
			return false
		}
		for _, p := range a {
			if !u.Contains(p) {
				return false
			}
		}
		for _, p := range b {
			if !u.Contains(p) {
				return false
			}
		}
		return u.Union(u).Equal(u)
	}
	if err := quick.Check(contains, cfg); err != nil {
		t.Error(err)
	}
}

// TestUnionInto: the buffer-reusing union must agree with Union and
// actually reuse dst's capacity.
func TestUnionInto(t *testing.T) {
	gen := func(r *rand.Rand) Basket {
		n := r.Intn(12)
		items := make([]ItemID, n)
		for i := range items {
			items[i] = ItemID(r.Intn(20) + 1)
		}
		return NewBasket(items)
	}
	agrees := func(seedA, seedB int64) bool {
		a := gen(rand.New(rand.NewSource(seedA)))
		b := gen(rand.New(rand.NewSource(seedB)))
		return UnionInto(nil, a, b).Equal(a.Union(b))
	}
	if err := quick.Check(agrees, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}

	// Capacity reuse: a dst with enough room must not be reallocated.
	dst := make(Basket, 0, 16)
	a, b := Basket{1, 3, 5}, Basket{2, 3, 6}
	out := UnionInto(dst, a, b)
	if !out.Equal(Basket{1, 2, 3, 5, 6}) {
		t.Fatalf("UnionInto = %v", out)
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("UnionInto reallocated despite sufficient capacity")
	}
	// Inputs must be untouched.
	if !a.Equal(Basket{1, 3, 5}) || !b.Equal(Basket{2, 3, 6}) {
		t.Fatalf("inputs mutated: %v %v", a, b)
	}
	// Reuse with stale longer contents is truncated, not merged with.
	out = UnionInto(out, Basket{9}, nil)
	if !out.Equal(Basket{9}) {
		t.Fatalf("stale dst leaked: %v", out)
	}
}

func TestBasketClone(t *testing.T) {
	a := NewBasket([]ItemID{1, 2, 3})
	c := a.Clone()
	if !c.Equal(a) {
		t.Fatalf("clone %v != original %v", c, a)
	}
	c[0] = 99
	if a[0] == 99 {
		t.Fatal("clone shares backing array with original")
	}
}

func TestBasketEqual(t *testing.T) {
	if !(Basket{}).Equal(Basket{}) {
		t.Error("empty baskets not equal")
	}
	if (Basket{1}).Equal(Basket{1, 2}) {
		t.Error("different lengths reported equal")
	}
	if (Basket{1, 3}).Equal(Basket{1, 2}) {
		t.Error("different items reported equal")
	}
}

func TestIsNormalized(t *testing.T) {
	tests := []struct {
		b    Basket
		want bool
	}{
		{Basket{}, true},
		{Basket{1}, true},
		{Basket{1, 2, 3}, true},
		{Basket{1, 1}, false},
		{Basket{2, 1}, false},
	}
	for _, tt := range tests {
		if got := tt.b.IsNormalized(); got != tt.want {
			t.Errorf("IsNormalized(%v) = %v, want %v", tt.b, got, tt.want)
		}
	}
}

func day(n int) time.Time {
	return time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

func TestHistoryValidate(t *testing.T) {
	good := History{Customer: 1, Receipts: []Receipt{
		{Time: day(0), Items: NewBasket([]ItemID{1})},
		{Time: day(1), Items: NewBasket([]ItemID{2})},
		{Time: day(1), Items: NewBasket([]ItemID{3})}, // tie is fine
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid history rejected: %v", err)
	}

	outOfOrder := History{Customer: 1, Receipts: []Receipt{
		{Time: day(2), Items: Basket{}},
		{Time: day(1), Items: Basket{}},
	}}
	if err := outOfOrder.Validate(); err == nil {
		t.Fatal("out-of-order history accepted")
	}

	denormal := History{Customer: 1, Receipts: []Receipt{
		{Time: day(0), Items: Basket{2, 1}},
	}}
	if err := denormal.Validate(); err == nil {
		t.Fatal("denormalized basket accepted")
	}

	negative := History{Customer: 1, Receipts: []Receipt{
		{Time: day(0), Items: Basket{}, Spend: -1},
	}}
	if err := negative.Validate(); err == nil {
		t.Fatal("negative spend accepted")
	}
}

func TestHistorySort(t *testing.T) {
	h := History{Customer: 1, Receipts: []Receipt{
		{Time: day(3), Spend: 3, Items: Basket{}},
		{Time: day(1), Spend: 1, Items: Basket{}},
		{Time: day(2), Spend: 2, Items: Basket{}},
	}}
	h.Sort()
	for i := 1; i < len(h.Receipts); i++ {
		if h.Receipts[i].Time.Before(h.Receipts[i-1].Time) {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if h.Receipts[0].Spend != 1 || h.Receipts[2].Spend != 3 {
		t.Fatalf("unexpected order: %+v", h.Receipts)
	}
}

func TestHistorySortStable(t *testing.T) {
	h := History{Customer: 1, Receipts: []Receipt{
		{Time: day(1), Spend: 1, Items: Basket{}},
		{Time: day(1), Spend: 2, Items: Basket{}},
		{Time: day(1), Spend: 3, Items: Basket{}},
	}}
	h.Sort()
	if h.Receipts[0].Spend != 1 || h.Receipts[1].Spend != 2 || h.Receipts[2].Spend != 3 {
		t.Fatalf("equal-timestamp order not preserved: %+v", h.Receipts)
	}
}

func TestHistorySpanAndTotals(t *testing.T) {
	var empty History
	if _, _, ok := empty.Span(); ok {
		t.Fatal("empty history reported a span")
	}
	if empty.TotalSpend() != 0 {
		t.Fatal("empty history has non-zero spend")
	}
	if len(empty.Items()) != 0 {
		t.Fatal("empty history has items")
	}

	h := History{Customer: 1, Receipts: []Receipt{
		{Time: day(0), Items: NewBasket([]ItemID{1, 2}), Spend: 10},
		{Time: day(5), Items: NewBasket([]ItemID{2, 3}), Spend: 5.5},
	}}
	first, last, ok := h.Span()
	if !ok || !first.Equal(day(0)) || !last.Equal(day(5)) {
		t.Fatalf("Span() = %v,%v,%v", first, last, ok)
	}
	if got := h.TotalSpend(); got != 15.5 {
		t.Fatalf("TotalSpend() = %v, want 15.5", got)
	}
	if got := h.Items(); !got.Equal(Basket{1, 2, 3}) {
		t.Fatalf("Items() = %v, want [1 2 3]", got)
	}
}

func TestCohortStringAndParse(t *testing.T) {
	for _, c := range []Cohort{CohortUnknown, CohortLoyal, CohortDefecting} {
		parsed, err := ParseCohort(c.String())
		if err != nil {
			t.Fatalf("ParseCohort(%q): %v", c.String(), err)
		}
		if parsed != c {
			t.Fatalf("round trip %v -> %q -> %v", c, c.String(), parsed)
		}
	}
	if _, err := ParseCohort("bogus"); err == nil {
		t.Fatal("ParseCohort accepted bogus input")
	}
}
