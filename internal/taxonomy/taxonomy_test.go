package taxonomy

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/gautrais/stability/internal/retail"
)

func buildTestCatalog(t *testing.T) *Catalog {
	t.Helper()
	b := NewBuilder()
	dairy, err := b.AddSegment("Milk", "dairy")
	if err != nil {
		t.Fatal(err)
	}
	bev, err := b.AddSegment("Coffee", "beverages")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddProduct("whole milk 1L", dairy, 1.2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddProduct("arabica beans", bev, 6.5); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddProduct("espresso pods", bev, 4.2); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestBuilderAssignsDenseIDs(t *testing.T) {
	c := buildTestCatalog(t)
	if c.NumSegments() != 2 {
		t.Fatalf("NumSegments = %d", c.NumSegments())
	}
	if c.NumProducts() != 3 {
		t.Fatalf("NumProducts = %d", c.NumProducts())
	}
	s, err := c.Segment(1)
	if err != nil || s.Name != "Milk" {
		t.Fatalf("Segment(1) = %+v, %v", s, err)
	}
	p, err := c.Product(2)
	if err != nil || p.Name != "arabica beans" || p.Segment != 2 {
		t.Fatalf("Product(2) = %+v, %v", p, err)
	}
}

func TestBuilderInterning(t *testing.T) {
	b := NewBuilder()
	id1, err := b.AddSegment("milk", "dairy")
	if err != nil {
		t.Fatal(err)
	}
	// Same name (case/space-insensitive) returns the same id.
	id2, err := b.AddSegment("  MILK ", "dairy")
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("interning failed: %d vs %d", id1, id2)
	}
	// Conflicting department errors.
	if _, err := b.AddSegment("milk", "frozen"); err == nil {
		t.Fatal("conflicting department accepted")
	}
	// Same department (or empty) is fine.
	if _, err := b.AddSegment("milk", ""); err != nil {
		t.Fatalf("empty-department re-registration rejected: %v", err)
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	if _, err := b.AddSegment("", "x"); err == nil {
		t.Fatal("empty segment name accepted")
	}
	if _, err := b.AddProduct("", 1, 1); err == nil {
		t.Fatal("empty product name accepted")
	}
	if _, err := b.AddProduct("thing", 99, 1); err == nil {
		t.Fatal("product with unknown segment accepted")
	}
	if _, err := b.AddProduct("thing", retail.NoItem, 1); err == nil {
		t.Fatal("product with NoItem segment accepted")
	}
}

func TestCatalogLookups(t *testing.T) {
	c := buildTestCatalog(t)

	s, err := c.SegmentByName("coffee")
	if err != nil || s.ID != 2 {
		t.Fatalf("SegmentByName = %+v, %v", s, err)
	}
	if _, err := c.SegmentByName("tea"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing segment error = %v", err)
	}

	p, err := c.ProductByName("ESPRESSO PODS")
	if err != nil || p.ID != 3 {
		t.Fatalf("ProductByName = %+v, %v", p, err)
	}
	if _, err := c.ProductByName("nothing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing product error = %v", err)
	}

	seg, err := c.SegmentOf(3)
	if err != nil || seg != 2 {
		t.Fatalf("SegmentOf(3) = %d, %v", seg, err)
	}
	if _, err := c.SegmentOf(0); err == nil {
		t.Fatal("SegmentOf(0) accepted")
	}
	if _, err := c.Segment(0); err == nil {
		t.Fatal("Segment(0) accepted")
	}
	if _, err := c.Segment(5); err == nil {
		t.Fatal("Segment(5) accepted")
	}
}

func TestSegmentNameFallback(t *testing.T) {
	c := buildTestCatalog(t)
	if got := c.SegmentName(1); got != "Milk" {
		t.Fatalf("SegmentName(1) = %q", got)
	}
	if got := c.SegmentName(99); got != "segment-99" {
		t.Fatalf("SegmentName(99) = %q", got)
	}
}

func TestDepartments(t *testing.T) {
	c := buildTestCatalog(t)
	depts := c.Departments()
	if len(depts) != 2 || depts[0] != "beverages" || depts[1] != "dairy" {
		t.Fatalf("Departments = %v", depts)
	}
	ids := c.SegmentsIn("dairy")
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("SegmentsIn(dairy) = %v", ids)
	}
	if got := c.SegmentsIn("nope"); len(got) != 0 {
		t.Fatalf("SegmentsIn(nope) = %v", got)
	}
}

func TestAbstract(t *testing.T) {
	c := buildTestCatalog(t)
	// Products 2 and 3 are both coffee; 1 is milk.
	b, err := c.Abstract([]ProductID{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(retail.Basket{1, 2}) {
		t.Fatalf("Abstract = %v, want [1 2]", b)
	}
	if _, err := c.Abstract([]ProductID{42}); err == nil {
		t.Fatal("Abstract with unknown product accepted")
	}
}

func TestAbstractNames(t *testing.T) {
	c := buildTestCatalog(t)
	b, err := c.AbstractNames([]string{"coffee", "milk", "coffee"})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(retail.Basket{1, 2}) {
		t.Fatalf("AbstractNames = %v", b)
	}
	if _, err := c.AbstractNames([]string{"tea"}); err == nil {
		t.Fatal("unknown name accepted")
	}
	names := c.BasketNames(b)
	if len(names) != 2 || names[0] != "Milk" || names[1] != "Coffee" {
		t.Fatalf("BasketNames = %v", names)
	}
}

func TestSegmentsCopy(t *testing.T) {
	c := buildTestCatalog(t)
	segs := c.Segments()
	segs[0].Name = "tampered"
	if c.SegmentName(1) == "tampered" {
		t.Fatal("Segments() exposes internal storage")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := buildTestCatalog(t)
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSegments() != c.NumSegments() || got.NumProducts() != c.NumProducts() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			got.NumSegments(), got.NumProducts(), c.NumSegments(), c.NumProducts())
	}
	for id := retail.ItemID(1); int(id) <= c.NumSegments(); id++ {
		a, _ := c.Segment(id)
		b, _ := got.Segment(id)
		if a != b {
			t.Fatalf("segment %d mismatch: %+v vs %+v", id, a, b)
		}
	}
	for id := ProductID(1); int(id) <= c.NumProducts(); id++ {
		a, _ := c.Product(id)
		b, _ := got.Product(id)
		if a != b {
			t.Fatalf("product %d mismatch: %+v vs %+v", id, a, b)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"unknown kind", "monster,1,x,y\n"},
		{"short segment row", "segment,1,milk\n"},
		{"bad segment id", "segment,abc,milk,dairy\n"},
		{"non-dense ids", "segment,5,milk,dairy\n"},
		{"short product row", "segment,1,milk,dairy\nproduct,1,sku\n"},
		{"bad product price", "segment,1,milk,dairy\nproduct,1,sku,1,cheap\n"},
		{"bad product segment ref", "segment,1,milk,dairy\nproduct,1,sku,9,1.0\n"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in)); err == nil {
				t.Fatalf("accepted %q", tt.in)
			}
		})
	}
}

func TestConcurrentBuilder(t *testing.T) {
	b := NewBuilder()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			var err error
			for i := 0; i < 100 && err == nil; i++ {
				_, err = b.AddSegment("shared-segment", "dept")
			}
			done <- err
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Build().NumSegments(); got != 1 {
		t.Fatalf("concurrent interning produced %d segments, want 1", got)
	}
}
