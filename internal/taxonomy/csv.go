package taxonomy

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/gautrais/stability/internal/retail"
)

// WriteCSV serializes the catalog as two concatenated CSV sections:
//
//	segment,<id>,<name>,<department>
//	product,<id>,<name>,<segment-id>,<price>
//
// Rows appear in identifier order so the file round-trips identically.
func (c *Catalog) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, s := range c.segments {
		rec := []string{"segment", strconv.FormatUint(uint64(s.ID), 10), s.Name, s.Department}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("taxonomy: write segment row: %w", err)
		}
	}
	for _, p := range c.products {
		rec := []string{"product", strconv.FormatUint(uint64(p.ID), 10), p.Name,
			strconv.FormatUint(uint64(p.Segment), 10), strconv.FormatFloat(p.Price, 'g', -1, 64)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("taxonomy: write product row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a catalog produced by WriteCSV. Identifiers in the file
// must be dense and in order (the format WriteCSV produces); the function
// validates this so that corrupted files fail loudly instead of silently
// renumbering.
func ReadCSV(r io.Reader) (*Catalog, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	b := NewBuilder()
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("taxonomy: csv parse: %w", err)
		}
		line++
		if len(rec) == 0 {
			continue
		}
		switch rec[0] {
		case "segment":
			if len(rec) != 4 {
				return nil, fmt.Errorf("taxonomy: line %d: segment row needs 4 fields, got %d", line, len(rec))
			}
			want, err := strconv.ParseUint(rec[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("taxonomy: line %d: bad segment id %q: %w", line, rec[1], err)
			}
			id, err := b.AddSegment(rec[2], rec[3])
			if err != nil {
				return nil, fmt.Errorf("taxonomy: line %d: %w", line, err)
			}
			if uint64(id) != want {
				return nil, fmt.Errorf("taxonomy: line %d: segment %q expected id %d, assigned %d (file not dense/ordered)",
					line, rec[2], want, id)
			}
		case "product":
			if len(rec) != 5 {
				return nil, fmt.Errorf("taxonomy: line %d: product row needs 5 fields, got %d", line, len(rec))
			}
			want, err := strconv.ParseUint(rec[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("taxonomy: line %d: bad product id %q: %w", line, rec[1], err)
			}
			seg, err := strconv.ParseUint(rec[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("taxonomy: line %d: bad segment ref %q: %w", line, rec[3], err)
			}
			price, err := strconv.ParseFloat(rec[4], 64)
			if err != nil {
				return nil, fmt.Errorf("taxonomy: line %d: bad price %q: %w", line, rec[4], err)
			}
			id, err := b.AddProduct(rec[2], retail.ItemID(seg), price)
			if err != nil {
				return nil, fmt.Errorf("taxonomy: line %d: %w", line, err)
			}
			if uint64(id) != want {
				return nil, fmt.Errorf("taxonomy: line %d: product %q expected id %d, assigned %d (file not dense/ordered)",
					line, rec[2], want, id)
			}
		default:
			return nil, fmt.Errorf("taxonomy: line %d: unknown row kind %q", line, rec[0])
		}
	}
	return b.Build(), nil
}
