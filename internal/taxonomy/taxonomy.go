// Package taxonomy implements the product hierarchy the paper's dataset
// ships with: individual products (4 million in the paper) are abstracted
// into segments (3,388 in the paper), which are grouped into departments.
// The stability model runs at the segment level; this package provides the
// dictionary-encoded catalog, name interning, and basket abstraction from
// product level to segment level.
package taxonomy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/gautrais/stability/internal/retail"
)

// ProductID identifies one product (SKU). 0 is reserved.
type ProductID uint32

// Segment is one product segment — the abstraction level the model uses.
type Segment struct {
	ID         retail.ItemID
	Name       string
	Department string
}

// Product is one SKU belonging to a segment.
type Product struct {
	ID      ProductID
	Name    string
	Segment retail.ItemID
	// Price is a reference unit price used by the synthetic generator and
	// the RFM monetary features.
	Price float64
}

// Catalog is the immutable product taxonomy. Build one with a Builder or
// load one with ReadCSV. All lookups are safe for concurrent use once
// built.
type Catalog struct {
	segments []Segment // index = ItemID-1
	products []Product // index = ProductID-1

	segByName  map[string]retail.ItemID
	prodByName map[string]ProductID
	byDept     map[string][]retail.ItemID
}

// ErrNotFound is returned when a name or identifier is absent.
var ErrNotFound = errors.New("taxonomy: not found")

// NumSegments returns the number of segments in the catalog.
func (c *Catalog) NumSegments() int { return len(c.segments) }

// NumProducts returns the number of products in the catalog.
func (c *Catalog) NumProducts() int { return len(c.products) }

// Segment returns the segment with the given identifier.
func (c *Catalog) Segment(id retail.ItemID) (Segment, error) {
	if id == retail.NoItem || int(id) > len(c.segments) {
		return Segment{}, fmt.Errorf("%w: segment id %d", ErrNotFound, id)
	}
	return c.segments[id-1], nil
}

// SegmentName returns the segment's name, or "segment-N" if the identifier
// is unknown (useful for rendering partially-labelled data).
func (c *Catalog) SegmentName(id retail.ItemID) string {
	if s, err := c.Segment(id); err == nil {
		return s.Name
	}
	return fmt.Sprintf("segment-%d", id)
}

// SegmentByName resolves a segment name.
func (c *Catalog) SegmentByName(name string) (Segment, error) {
	id, ok := c.segByName[canon(name)]
	if !ok {
		return Segment{}, fmt.Errorf("%w: segment %q", ErrNotFound, name)
	}
	return c.segments[id-1], nil
}

// Product returns the product with the given identifier.
func (c *Catalog) Product(id ProductID) (Product, error) {
	if id == 0 || int(id) > len(c.products) {
		return Product{}, fmt.Errorf("%w: product id %d", ErrNotFound, id)
	}
	return c.products[id-1], nil
}

// ProductByName resolves a product name.
func (c *Catalog) ProductByName(name string) (Product, error) {
	id, ok := c.prodByName[canon(name)]
	if !ok {
		return Product{}, fmt.Errorf("%w: product %q", ErrNotFound, name)
	}
	return c.products[id-1], nil
}

// SegmentOf returns the segment a product belongs to.
func (c *Catalog) SegmentOf(p ProductID) (retail.ItemID, error) {
	prod, err := c.Product(p)
	if err != nil {
		return retail.NoItem, err
	}
	return prod.Segment, nil
}

// Departments lists the distinct department names, sorted.
func (c *Catalog) Departments() []string {
	out := make([]string, 0, len(c.byDept))
	for d := range c.byDept {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// SegmentsIn returns the segment identifiers in a department, sorted.
func (c *Catalog) SegmentsIn(dept string) []retail.ItemID {
	ids := c.byDept[canon(dept)]
	out := make([]retail.ItemID, len(ids))
	copy(out, ids)
	return out
}

// Segments returns a copy of all segments ordered by identifier.
func (c *Catalog) Segments() []Segment {
	out := make([]Segment, len(c.segments))
	copy(out, c.segments)
	return out
}

// Abstract maps a basket of products to the normalized basket of their
// segments — the abstraction step the paper applies before running the
// model. Unknown products yield an error.
func (c *Catalog) Abstract(products []ProductID) (retail.Basket, error) {
	items := make([]retail.ItemID, 0, len(products))
	for _, p := range products {
		seg, err := c.SegmentOf(p)
		if err != nil {
			return nil, err
		}
		items = append(items, seg)
	}
	return retail.NewBasket(items), nil
}

// AbstractNames maps segment names to a normalized basket, for tests,
// examples and CLI input.
func (c *Catalog) AbstractNames(names []string) (retail.Basket, error) {
	items := make([]retail.ItemID, 0, len(names))
	for _, n := range names {
		s, err := c.SegmentByName(n)
		if err != nil {
			return nil, err
		}
		items = append(items, s.ID)
	}
	return retail.NewBasket(items), nil
}

// BasketNames renders a basket as sorted segment names.
func (c *Catalog) BasketNames(b retail.Basket) []string {
	out := make([]string, 0, len(b))
	for _, id := range b {
		out = append(out, c.SegmentName(id))
	}
	return out
}

func canon(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// Builder assembles a Catalog incrementally. It interns names: adding the
// same segment or product twice returns the original identifier. Builders
// are safe for concurrent use.
type Builder struct {
	mu         sync.Mutex
	segments   []Segment
	products   []Product
	segByName  map[string]retail.ItemID
	prodByName map[string]ProductID
}

// NewBuilder returns an empty catalog builder.
func NewBuilder() *Builder {
	return &Builder{
		segByName:  make(map[string]retail.ItemID),
		prodByName: make(map[string]ProductID),
	}
}

// AddSegment interns a segment by name and returns its identifier. The
// department of the first registration wins; registering the same name with
// a different department is an error.
func (b *Builder) AddSegment(name, department string) (retail.ItemID, error) {
	key := canon(name)
	if key == "" {
		return retail.NoItem, errors.New("taxonomy: empty segment name")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if id, ok := b.segByName[key]; ok {
		if b.segments[id-1].Department != canon(department) && department != "" {
			return retail.NoItem, fmt.Errorf("taxonomy: segment %q re-registered with department %q (was %q)",
				name, department, b.segments[id-1].Department)
		}
		return id, nil
	}
	id := retail.ItemID(len(b.segments) + 1)
	b.segments = append(b.segments, Segment{ID: id, Name: strings.TrimSpace(name), Department: canon(department)})
	b.segByName[key] = id
	return id, nil
}

// AddProduct interns a product under an existing segment identifier.
func (b *Builder) AddProduct(name string, segment retail.ItemID, price float64) (ProductID, error) {
	key := canon(name)
	if key == "" {
		return 0, errors.New("taxonomy: empty product name")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if segment == retail.NoItem || int(segment) > len(b.segments) {
		return 0, fmt.Errorf("taxonomy: product %q references unknown segment %d", name, segment)
	}
	if id, ok := b.prodByName[key]; ok {
		return id, nil
	}
	id := ProductID(len(b.products) + 1)
	b.products = append(b.products, Product{ID: id, Name: strings.TrimSpace(name), Segment: segment, Price: price})
	b.prodByName[key] = id
	return id, nil
}

// Build freezes the builder into an immutable Catalog. The builder remains
// usable; Build may be called repeatedly.
func (b *Builder) Build() *Catalog {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := &Catalog{
		segments:   make([]Segment, len(b.segments)),
		products:   make([]Product, len(b.products)),
		segByName:  make(map[string]retail.ItemID, len(b.segByName)),
		prodByName: make(map[string]ProductID, len(b.prodByName)),
		byDept:     make(map[string][]retail.ItemID),
	}
	copy(c.segments, b.segments)
	copy(c.products, b.products)
	for k, v := range b.segByName {
		c.segByName[k] = v
	}
	for k, v := range b.prodByName {
		c.prodByName[k] = v
	}
	for _, s := range c.segments {
		c.byDept[s.Department] = append(c.byDept[s.Department], s.ID)
	}
	return c
}
