package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.bin")
	var fsys FS = OS{}
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	af, err := fsys.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if err := af.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := fsys.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(len("hello world")) {
		t.Fatalf("size %d, want %d", info.Size(), len("hello world"))
	}
	moved := filepath.Join(dir, "b.bin")
	if err := fsys.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	if got := string(readAll(t, moved)); got != "hello world" {
		t.Fatalf("content %q", got)
	}
	if err := fsys.Remove(moved); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorOpErrors(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{})
	cases := []struct {
		op  Op
		run func(path string) error
	}{
		{OpCreate, func(p string) error { _, err := in.Create(p); return err }},
		{OpOpen, func(p string) error { _, err := in.Open(p); return err }},
		{OpRename, func(p string) error { return in.Rename(p, p+".new") }},
		{OpRemove, func(p string) error { return in.Remove(p) }},
		{OpStat, func(p string) error { _, err := in.Stat(p); return err }},
	}
	for _, tc := range cases {
		in.Reset()
		path := filepath.Join(dir, string(tc.op)+".bin")
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		in.Arm(Failpoint{Op: tc.op, PathSuffix: string(tc.op) + ".bin"})
		if err := tc.run(path); !errors.Is(err, ErrInjected) {
			t.Fatalf("%s: err = %v, want ErrInjected", tc.op, err)
		}
		// The point is consumed: the same operation now succeeds.
		if err := tc.run(path); errors.Is(err, ErrInjected) {
			t.Fatalf("%s: failpoint fired twice", tc.op)
		}
		if in.Fired() != 1 {
			t.Fatalf("%s: fired = %d, want 1", tc.op, in.Fired())
		}
	}
}

func TestInjectorCountDownAndSuffix(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{})
	in.Arm(Failpoint{Op: OpCreate, PathSuffix: ".tmp", CountDown: 2})
	// Non-matching suffix never counts down.
	for i := 0; i < 5; i++ {
		f, err := in.Create(filepath.Join(dir, "plain.bin"))
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	for i := 0; i < 2; i++ {
		f, err := in.Create(filepath.Join(dir, "state.tmp"))
		if err != nil {
			t.Fatalf("countdown create %d: %v", i, err)
		}
		f.Close()
	}
	if _, err := in.Create(filepath.Join(dir, "state.tmp")); !errors.Is(err, ErrInjected) {
		t.Fatalf("third matching create: err = %v, want ErrInjected", err)
	}
}

func TestInjectorPersistent(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{})
	in.Arm(Failpoint{Op: OpSync, Persistent: true})
	f, err := in.Create(filepath.Join(dir, "a.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d: err = %v, want ErrInjected", i, err)
		}
	}
	if in.Fired() != 3 {
		t.Fatalf("fired = %d, want 3", in.Fired())
	}
}

func TestInjectorWriteError(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{})
	in.Arm(Failpoint{Op: OpWrite, CountDown: 1})
	f, err := in.Create(filepath.Join(dir, "a.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("second")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write: err = %v, want ErrInjected", err)
	}
	// A plain write error is not a crash: the next write goes through.
	if _, err := f.Write([]byte("third")); err != nil {
		t.Fatalf("third write after clean failure: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := string(readAll(t, filepath.Join(dir, "a.bin"))); got != "firstthird" {
		t.Fatalf("content %q, want %q", got, "firstthird")
	}
}

func TestInjectorCrashAtByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.stb")
	in := NewInjector(OS{})
	in.Arm(Failpoint{Op: OpWrite, PathSuffix: ".stb", Crash: true, CrashAtByte: 7})
	f, err := in.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcd")); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	n, err := f.Write([]byte("efgh"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("crash write: err = %v, want ErrInjected", err)
	}
	if n != 3 {
		t.Fatalf("crash write landed %d bytes, want 3 (budget 7 - 4 written)", n)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: err = %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: err = %v, want ErrCrashed", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close after crash must release the handle: %v", err)
	}
	if got := string(readAll(t, path)); got != "abcdefg" {
		t.Fatalf("on-disk prefix %q, want %q", got, "abcdefg")
	}
	// The crash point is consumed: a rewrite (the recovery path) succeeds.
	f2, err := in.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write([]byte("recovered")); err != nil {
		t.Fatalf("post-recovery write: %v", err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := string(readAll(t, path)); got != "recovered" {
		t.Fatalf("recovered content %q", got)
	}
}

func TestInjectorCrashAtByteZero(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.stb")
	in := NewInjector(OS{})
	in.Arm(Failpoint{Op: OpWrite, Crash: true})
	f, err := in.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abc"))
	if n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("write = (%d, %v), want (0, ErrInjected)", n, err)
	}
	f.Close()
	if got := readAll(t, path); len(got) != 0 {
		t.Fatalf("crash at byte 0 left %d bytes", len(got))
	}
}
