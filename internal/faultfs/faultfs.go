// Package faultfs is the failpoint layer under the persistence paths: a
// minimal filesystem interface (FS/File) with two implementations — OS,
// the passthrough the production binaries use, and Injector, a
// deterministic fault injector the crash-recovery tests drive.
//
// The injector speaks in failpoints: "fail the Nth write to files whose
// name has this suffix", "crash after byte B of the temp file", "make
// rename fail once". A crashed file keeps every byte written before the
// crash point and refuses everything after it, which is exactly what a
// power cut mid-append leaves on disk. Faults trigger at deterministic
// operation counts — never timers or randomness — so every crash test
// replays bit-identically (the determinism contract extends to the
// failure paths).
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strings"
	"sync"
)

// FS is the slice of filesystem the persistence paths need: create a temp
// file, read an existing one, atomically swap via rename, clean up, stat
// for the follower's cheap size poll.
type FS interface {
	// Create truncates or creates name for writing.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// OpenAppend opens name for appending, creating it when absent — the
	// segment-append path (WriteBinaryDelta onto a growing STB1 chain).
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Stat reports file metadata (the follower polls size this way).
	Stat(name string) (fs.FileInfo, error)
	// Truncate cuts name to size — the torn-tail repair path (a crashed
	// segment append leaves a partial segment that must be cut back to the
	// last complete-segment boundary before the chain can grow again).
	Truncate(name string, size int64) error
}

// File is the subset of *os.File the persistence paths use.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file to stable storage.
	Sync() error
}

// OS is the passthrough FS over the real filesystem.
type OS struct{}

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// Open implements FS.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// OpenAppend implements FS.
func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Stat implements FS.
func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Op names one interceptable filesystem operation.
type Op string

// The interceptable operations. OpWrite and OpSync fire per call on files
// whose open matched the failpoint's suffix.
const (
	OpCreate   Op = "create"
	OpOpen     Op = "open"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpStat     Op = "stat"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpTruncate Op = "truncate"
)

// ErrInjected is the sentinel wrapped by every injected failure.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by operations on a file after its crash point:
// the process is "dead" as far as this file handle is concerned.
var ErrCrashed = fmt.Errorf("%w: file crashed", ErrInjected)

// Failpoint is one armed fault. The zero CountDown fires on the first
// matching operation; CountDown = n skips n matches first. A failpoint
// fires exactly once unless Persistent is set.
type Failpoint struct {
	// Op selects the operation to intercept.
	Op Op
	// PathSuffix restricts the failpoint to paths with this suffix
	// (empty matches every path). Matching is on the name passed to the
	// FS call, so tests match on basenames or extensions.
	PathSuffix string
	// CountDown is the number of matching operations to let through
	// before firing.
	CountDown int
	// Persistent keeps the failpoint armed after it fires.
	Persistent bool
	// Crash turns an OpWrite failpoint into a crash point: the first
	// CrashAtByte bytes of the matched file's lifetime writes are kept
	// (a short write lands the partial prefix), then the file is dead —
	// every later write/sync fails with ErrCrashed, only Close works.
	// Without Crash, an OpWrite failpoint fails the whole call cleanly.
	Crash bool
	// CrashAtByte is the byte budget of a Crash failpoint; 0 crashes
	// before anything lands.
	CrashAtByte int64
}

// Injector wraps an inner FS and fails operations according to armed
// failpoints. Safe for concurrent use. Operations that no failpoint
// matches pass straight through.
type Injector struct {
	inner FS

	mu     sync.Mutex
	points []*Failpoint
	fired  int
}

// NewInjector returns an injector over inner with no failpoints armed.
func NewInjector(inner FS) *Injector {
	return &Injector{inner: inner}
}

// Arm adds one failpoint. Points are matched in arming order.
func (in *Injector) Arm(fp Failpoint) {
	in.mu.Lock()
	defer in.mu.Unlock()
	cp := fp
	in.points = append(in.points, &cp)
}

// Reset disarms every failpoint and zeroes the fired counter.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.points = nil
	in.fired = 0
}

// Fired returns the number of faults injected since the last Reset.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// match consumes at most one failpoint for (op, name); it returns the
// matched point with fire=true when the operation must fail.
func (in *Injector) match(op Op, name string) (fp Failpoint, fire bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, p := range in.points {
		if p.Op != op || !strings.HasSuffix(name, p.PathSuffix) {
			continue
		}
		if p.Op == OpWrite && p.Crash {
			continue // crash points fire through writeBudget, not here
		}
		if p.CountDown > 0 {
			p.CountDown--
			continue
		}
		in.fired++
		cp := *p
		if !p.Persistent {
			in.points = append(in.points[:i], in.points[i+1:]...)
		}
		return cp, true
	}
	return Failpoint{}, false
}

// writeBudget finds an armed crash-at-byte write failpoint for name
// without consuming it; ok=false means writes to name are unrestricted.
func (in *Injector) writeBudget(name string) (budget int64, ok bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, p := range in.points {
		if p.Op == OpWrite && p.Crash && strings.HasSuffix(name, p.PathSuffix) {
			return p.CrashAtByte, true
		}
	}
	return 0, false
}

// consumeCrash retires the crash-at-byte failpoint for name (called once
// the crash has happened, so later opens of the same path write freely).
func (in *Injector) consumeCrash(name string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, p := range in.points {
		if p.Op == OpWrite && p.Crash && strings.HasSuffix(name, p.PathSuffix) {
			if !p.Persistent {
				in.points = append(in.points[:i], in.points[i+1:]...)
			}
			in.fired++
			return
		}
	}
}

func injectedErr(op Op, name string) error {
	return fmt.Errorf("%w: %s %s", ErrInjected, op, name)
}

// Create implements FS.
func (in *Injector) Create(name string) (File, error) {
	if _, fire := in.match(OpCreate, name); fire {
		return nil, injectedErr(OpCreate, name)
	}
	f, err := in.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, name: name, f: f}, nil
}

// Open implements FS.
func (in *Injector) Open(name string) (File, error) {
	if _, fire := in.match(OpOpen, name); fire {
		return nil, injectedErr(OpOpen, name)
	}
	f, err := in.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, name: name, f: f}, nil
}

// OpenAppend implements FS.
func (in *Injector) OpenAppend(name string) (File, error) {
	if _, fire := in.match(OpOpen, name); fire {
		return nil, injectedErr(OpOpen, name)
	}
	f, err := in.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, name: name, f: f}, nil
}

// Rename implements FS.
func (in *Injector) Rename(oldname, newname string) error {
	if _, fire := in.match(OpRename, oldname); fire {
		return injectedErr(OpRename, oldname)
	}
	return in.inner.Rename(oldname, newname)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	if _, fire := in.match(OpRemove, name); fire {
		return injectedErr(OpRemove, name)
	}
	return in.inner.Remove(name)
}

// Stat implements FS.
func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	if _, fire := in.match(OpStat, name); fire {
		return nil, injectedErr(OpStat, name)
	}
	return in.inner.Stat(name)
}

// Truncate implements FS.
func (in *Injector) Truncate(name string, size int64) error {
	if _, fire := in.match(OpTruncate, name); fire {
		return injectedErr(OpTruncate, name)
	}
	return in.inner.Truncate(name, size)
}

// faultFile interposes the injector on a file's write path. written
// tracks lifetime bytes so crash-at-byte budgets are cumulative across
// writes, like a real torn append.
type faultFile struct {
	in      *Injector
	name    string
	f       File
	written int64
	crashed bool
}

func (ff *faultFile) Read(p []byte) (int, error) { return ff.f.Read(p) }

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) { return ff.f.Seek(offset, whence) }

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.crashed {
		return 0, ErrCrashed
	}
	if budget, ok := ff.in.writeBudget(ff.name); ok {
		if remaining := budget - ff.written; remaining < int64(len(p)) {
			// Crash point inside this write: persist the short prefix,
			// then die. The handle stays usable only for Close, exactly
			// like a process killed mid-write.
			if remaining < 0 {
				remaining = 0
			}
			n, _ := ff.f.Write(p[:remaining])
			ff.written += int64(n)
			ff.crashed = true
			ff.in.consumeCrash(ff.name)
			return n, fmt.Errorf("%w: write crashed at byte %d of %s", ErrInjected, budget, ff.name)
		}
	}
	if _, fire := ff.in.match(OpWrite, ff.name); fire {
		return 0, injectedErr(OpWrite, ff.name)
	}
	n, err := ff.f.Write(p)
	ff.written += int64(n)
	return n, err
}

func (ff *faultFile) Sync() error {
	if ff.crashed {
		return ErrCrashed
	}
	if _, fire := ff.in.match(OpSync, ff.name); fire {
		return injectedErr(OpSync, ff.name)
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	// Close always releases the descriptor: a crashed process's kernel
	// closes its files, keeping whatever bytes made it to the page cache.
	return ff.f.Close()
}
