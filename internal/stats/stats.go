// Package stats provides the small statistical toolkit used across the
// library: descriptive summaries, online (streaming) moments, quantiles,
// histograms, and deterministic random-variate helpers layered on
// math/rand. Everything is stdlib-only and allocation-conscious.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64 // unbiased sample variance
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns the zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	var o Online
	min, max := xs[0], xs[0]
	for _, x := range xs {
		o.Add(x)
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return Summary{
		N:      len(xs),
		Mean:   o.Mean(),
		Var:    o.Var(),
		Std:    o.Std(),
		Min:    min,
		Max:    max,
		Median: Quantile(xs, 0.5),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// Online accumulates mean and variance in one pass using Welford's
// algorithm. The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 with no observations).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the unbiased sample variance (0 with fewer than two
// observations).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Merge combines another accumulator into o (parallel Welford merge).
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n := o.n + other.n
	delta := other.mean - o.mean
	o.mean += delta * float64(other.n) / float64(n)
	o.m2 += other.m2 + delta*delta*float64(o.n)*float64(other.n)/float64(n)
	o.n = n
}

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdErr returns the standard error of the mean of xs.
func StdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	return o.Std() / math.Sqrt(float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It does not modify xs. It returns NaN for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return minOf(xs)
	}
	if q >= 1 {
		return maxOf(xs)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the
// range are clamped into the first/last bin so totals always match the
// number of Add calls.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram builds a histogram with the given number of bins over
// [lo, hi). It panics if bins < 1 or hi <= lo, which are programming errors.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}

// Fraction returns the share of observations in bin i (0 when empty).
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
