package stats

import (
	"math"
	"math/rand"
)

// Rand wraps a seeded source with the random variates the synthetic
// generator needs. It is deterministic for a given seed and NOT safe for
// concurrent use (callers shard one Rand per goroutine).
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent deterministic generator from the current
// stream. Forked generators let subsystems (catalog, each customer, ...)
// draw reproducibly regardless of how much randomness their siblings
// consume.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Int63())
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exponential draws an exponentially distributed value with the given mean.
func (r *Rand) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.ExpFloat64() * mean
}

// LogNormal draws exp(N(mu, sigma²)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Poisson draws a Poisson-distributed count with mean lambda. It uses
// Knuth's product method for small lambda and a normal approximation with
// continuity correction above 30, which is ample for basket-size scale
// parameters.
func (r *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Binomial draws the number of successes in n Bernoulli(p) trials.
func (r *Rand) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// n is small everywhere we use this (repertoire sizes), so direct
	// simulation is both exact and fast enough.
	k := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			k++
		}
	}
	return k
}

// IntBetween returns a uniform integer in [lo, hi] inclusive.
func (r *Rand) IntBetween(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// FloatBetween returns a uniform float in [lo, hi).
func (r *Rand) FloatBetween(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Float64()*(hi-lo)
}

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^s, modelling the heavy-tailed popularity of retail segments.
type Zipf struct {
	cum []float64 // cumulative normalized weights
	r   *Rand
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n < 1 {
		n = 1
	}
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, r: r}
}

// Clone returns a sampler that shares z's cumulative-weight table but
// draws from r. The table is immutable after NewZipf, so one table can
// serve any number of goroutines, each cloning it with a private Rand —
// the parallel dataset generator builds the O(n) table once instead of
// once per customer.
func (z *Zipf) Clone(r *Rand) *Zipf {
	return &Zipf{cum: z.cum, r: r}
}

// Draw returns one rank.
func (z *Zipf) Draw() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// SampleDistinct draws k distinct ranks (k ≤ n) by rejection, falling back
// to a full shuffle when k is a large share of n.
func (z *Zipf) SampleDistinct(k int) []int {
	n := len(z.cum)
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if k > n/2 {
		perm := z.r.Perm(n)
		return perm[:k]
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := z.Draw()
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Shuffle permutes xs in place.
func Shuffle[T any](r *Rand, xs []T) {
	r.Rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// PickWeighted returns an index drawn with probability proportional to
// weights[i]. Zero or negative total weight falls back to uniform.
func (r *Rand) PickWeighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	u := r.Float64() * total
	var acc float64
	for i, w := range weights {
		if w > 0 {
			acc += w
			if u < acc {
				return i
			}
		}
	}
	return len(weights) - 1
}
