package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", s.Mean)
	}
	// Unbiased sample variance of this classic dataset is 32/7.
	if !almostEqual(s.Var, 32.0/7, 1e-12) {
		t.Fatalf("Var = %v, want %v", s.Var, 32.0/7)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Fatalf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	prop := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological floats
			}
		}
		var o Online
		for _, x := range xs {
			o.Add(x)
		}
		batch := Mean(xs)
		if o.N() != len(xs) {
			return false
		}
		if len(xs) == 0 {
			return o.Mean() == 0
		}
		return almostEqual(o.Mean(), batch, 1e-6*(1+math.Abs(batch)))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOnlineVariance(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if !almostEqual(o.Var(), 32.0/7, 1e-12) {
		t.Fatalf("Var = %v, want %v", o.Var(), 32.0/7)
	}
	if !almostEqual(o.Std(), math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("Std = %v", o.Std())
	}
}

func TestOnlineFewObservations(t *testing.T) {
	var o Online
	if o.Var() != 0 || o.Std() != 0 {
		t.Fatal("zero-observation variance should be 0")
	}
	o.Add(42)
	if o.Var() != 0 {
		t.Fatal("one-observation variance should be 0")
	}
	if o.Mean() != 42 {
		t.Fatalf("Mean = %v", o.Mean())
	}
}

func TestOnlineMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var whole Online
	for _, x := range xs {
		whole.Add(x)
	}
	for split := 0; split <= len(xs); split++ {
		var a, b Online
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("split %d: N = %d", split, a.N())
		}
		if !almostEqual(a.Mean(), whole.Mean(), 1e-9) {
			t.Fatalf("split %d: Mean = %v, want %v", split, a.Mean(), whole.Mean())
		}
		if !almostEqual(a.Var(), whole.Var(), 1e-9) {
			t.Fatalf("split %d: Var = %v, want %v", split, a.Var(), whole.Var())
		}
	}
}

func TestMeanAndStdErr(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !almostEqual(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Fatal("Mean([1 2 3]) != 2")
	}
	if StdErr([]float64{5}) != 0 {
		t.Fatal("StdErr of singleton != 0")
	}
	// StdErr of {1,2,3}: std = 1, n = 3.
	if !almostEqual(StdErr([]float64{1, 2, 3}), 1/math.Sqrt(3), 1e-12) {
		t.Fatalf("StdErr = %v", StdErr([]float64{1, 2, 3}))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4} // unsorted on purpose
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-0.5, 1}, {1.5, 4},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	// -3 clamps to bin 0, 42 clamps to bin 4.
	if h.Counts[0] != 3 { // 0, 1.9, -3
		t.Fatalf("bin0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.99, 42
		t.Fatalf("bin4 = %d, want 2", h.Counts[4])
	}
	if !almostEqual(h.BinCenter(0), 1, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", h.BinCenter(0))
	}
	if !almostEqual(h.Fraction(0), 3.0/7, 1e-12) {
		t.Fatalf("Fraction(0) = %v", h.Fraction(0))
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Total() {
		t.Fatalf("counts sum %d != total %d", sum, h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	assertPanics(t, func() { NewHistogram(0, 1, 0) }, "zero bins")
	assertPanics(t, func() { NewHistogram(1, 1, 3) }, "empty range")
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if h.Fraction(0) != 0 {
		t.Fatal("empty histogram fraction != 0")
	}
}

func assertPanics(t *testing.T, fn func(), name string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}
