package stats

import (
	"math"
	"testing"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRand(1)
	f1 := r.Fork()
	f2 := r.Fork()
	// Forks must not share state with each other.
	v1, v2 := f1.Float64(), f2.Float64()
	if v1 == v2 {
		t.Fatal("sibling forks produced identical first draws")
	}
	// Forking is deterministic given the parent stream position.
	r2 := NewRand(1)
	g1 := r2.Fork()
	if g1.Float64() != v1 {
		t.Fatal("fork not reproducible from same parent state")
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRand(7)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) = true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) = false")
	}
	n := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			n++
		}
	}
	got := float64(n) / trials
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) frequency %v", got)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRand(11)
	if r.Exponential(0) != 0 || r.Exponential(-1) != 0 {
		t.Fatal("non-positive mean should return 0")
	}
	var o Online
	for i := 0; i < 50000; i++ {
		o.Add(r.Exponential(5))
	}
	if math.Abs(o.Mean()-5) > 0.15 {
		t.Fatalf("Exponential(5) mean %v", o.Mean())
	}
}

func TestPoissonMoments(t *testing.T) {
	r := NewRand(13)
	for _, lambda := range []float64{0.5, 3, 12, 50} { // spans both algorithms
		var o Online
		for i := 0; i < 30000; i++ {
			o.Add(float64(r.Poisson(lambda)))
		}
		if math.Abs(o.Mean()-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean %v", lambda, o.Mean())
		}
		if math.Abs(o.Var()-lambda) > 0.12*lambda+0.1 {
			t.Errorf("Poisson(%v) var %v", lambda, o.Var())
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-2) != 0 {
		t.Error("Poisson of non-positive lambda should be 0")
	}
}

func TestBinomial(t *testing.T) {
	r := NewRand(17)
	if r.Binomial(0, 0.5) != 0 {
		t.Fatal("Binomial(0, .) != 0")
	}
	if r.Binomial(10, 0) != 0 {
		t.Fatal("Binomial(., 0) != 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Fatal("Binomial(10, 1) != 10")
	}
	var o Online
	for i := 0; i < 20000; i++ {
		k := r.Binomial(20, 0.25)
		if k < 0 || k > 20 {
			t.Fatalf("Binomial out of range: %d", k)
		}
		o.Add(float64(k))
	}
	if math.Abs(o.Mean()-5) > 0.1 {
		t.Fatalf("Binomial(20,0.25) mean %v", o.Mean())
	}
}

func TestIntBetween(t *testing.T) {
	r := NewRand(19)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntBetween(3, 6)
		if v < 3 || v > 6 {
			t.Fatalf("IntBetween(3,6) = %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 6; v++ {
		if !seen[v] {
			t.Errorf("IntBetween never produced %d", v)
		}
	}
	if r.IntBetween(5, 5) != 5 || r.IntBetween(7, 3) != 7 {
		t.Error("degenerate bounds mishandled")
	}
}

func TestFloatBetween(t *testing.T) {
	r := NewRand(23)
	for i := 0; i < 1000; i++ {
		v := r.FloatBetween(1.5, 2.5)
		if v < 1.5 || v >= 2.5 {
			t.Fatalf("FloatBetween out of range: %v", v)
		}
	}
	if r.FloatBetween(2, 2) != 2 {
		t.Error("degenerate range should return lo")
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(29)
	z := NewZipf(r, 100, 1.0)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		v := z.Draw()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 should be drawn far more often than rank 50.
	if counts[0] <= counts[50]*5 {
		t.Fatalf("no popularity skew: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Theoretical ratio between rank 0 and rank 9 is 10 (s=1).
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 5 || ratio > 20 {
		t.Fatalf("rank0/rank9 ratio %v, want near 10", ratio)
	}
}

func TestZipfSampleDistinct(t *testing.T) {
	r := NewRand(31)
	z := NewZipf(r, 50, 0.8)
	for _, k := range []int{1, 5, 20, 26, 49, 50, 60} {
		got := z.SampleDistinct(k)
		wantLen := k
		if k > 50 {
			wantLen = 50
		}
		if len(got) != wantLen {
			t.Fatalf("SampleDistinct(%d) returned %d items", k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 50 {
				t.Fatalf("SampleDistinct out of range: %d", v)
			}
			if seen[v] {
				t.Fatalf("SampleDistinct(%d) returned duplicate %d", k, v)
			}
			seen[v] = true
		}
	}
}

func TestZipfDegenerate(t *testing.T) {
	r := NewRand(37)
	z := NewZipf(r, 0, 1) // clamped to 1 rank
	if z.N() != 1 {
		t.Fatalf("N = %d, want 1", z.N())
	}
	if z.Draw() != 0 {
		t.Fatal("single-rank Zipf must draw 0")
	}
}

func TestShuffle(t *testing.T) {
	r := NewRand(41)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	orig := append([]int(nil), xs...)
	Shuffle(r, xs)
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 55 {
		t.Fatal("shuffle lost elements")
	}
	same := true
	for i := range xs {
		if xs[i] != orig[i] {
			same = false
		}
	}
	if same {
		t.Fatal("shuffle produced identity permutation (astronomically unlikely)")
	}
}

func TestPickWeighted(t *testing.T) {
	r := NewRand(43)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[r.PickWeighted([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("weights not respected: %v", counts)
	}
	frac := float64(counts[2]) / 30000
	if math.Abs(frac-0.7) > 0.02 {
		t.Fatalf("weight-7 frequency %v, want ~0.7", frac)
	}
	// Zero/negative weights fall back to uniform without panicking.
	idx := r.PickWeighted([]float64{0, 0})
	if idx < 0 || idx > 1 {
		t.Fatalf("fallback index %d", idx)
	}
	idx = r.PickWeighted([]float64{-1, 3})
	if idx < 0 || idx > 1 {
		t.Fatalf("negative-weight index %d", idx)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRand(47)
	var below, above int
	for i := 0; i < 20000; i++ {
		if r.LogNormal(1.0, 0.5) < math.E {
			below++
		} else {
			above++
		}
	}
	// Median of LogNormal(mu, sigma) is e^mu.
	frac := float64(below) / 20000
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("median split %v, want ~0.5", frac)
	}
}
