// Package eval provides the evaluation stack behind the paper's
// experiments: ROC curves and AUROC (the paper's Figure-1 metric),
// threshold-based confusion metrics, stratified k-fold cross-validation
// (the paper's parameter-selection protocol), and grid search.
package eval

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrDegenerate is returned when a metric needs both classes and the input
// has only one.
var ErrDegenerate = errors.New("eval: need at least one positive and one negative example")

// AUROC computes the area under the ROC curve of scores against binary
// labels (true = positive class), using the rank statistic
// U/(n⁺·n⁻) with midranks for ties — the exact trapezoidal area.
//
// Higher scores must indicate the positive class. In this repository the
// positive class is "defecting", so stability values are negated (or
// 1−stability used) before calling.
func AUROC(scores []float64, labels []bool) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("eval: %d scores but %d labels", len(scores), len(labels))
	}
	n := len(scores)
	pos, neg := 0, 0
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, ErrDegenerate
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Midrank assignment.
	var rankSumPos float64
	i := 0
	for i < n {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		// ranks i+1 .. j+1 share the midrank.
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			if labels[idx[k]] {
				rankSumPos += mid
			}
		}
		i = j + 1
	}
	u := rankSumPos - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg)), nil
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	// Threshold classifies score ≥ Threshold as positive.
	Threshold float64
	FPR, TPR  float64
}

// ROC computes the full ROC curve, one point per distinct score plus the
// (0,0) and (1,1) anchors, ordered by increasing FPR.
func ROC(scores []float64, labels []bool) ([]ROCPoint, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("eval: %d scores but %d labels", len(scores), len(labels))
	}
	pos, neg := 0, 0
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, ErrDegenerate
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	curve := []ROCPoint{{Threshold: math.Inf(1), FPR: 0, TPR: 0}}
	tp, fp := 0, 0
	for i := 0; i < len(idx); {
		s := scores[idx[i]]
		for i < len(idx) && scores[idx[i]] == s {
			if labels[idx[i]] {
				tp++
			} else {
				fp++
			}
			i++
		}
		curve = append(curve, ROCPoint{
			Threshold: s,
			FPR:       float64(fp) / float64(neg),
			TPR:       float64(tp) / float64(pos),
		})
	}
	return curve, nil
}

// TrapezoidAUC integrates a ROC curve by the trapezoid rule. For curves
// from ROC it equals AUROC up to floating-point error; exposed separately
// so the equivalence is testable.
func TrapezoidAUC(curve []ROCPoint) float64 {
	var auc float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		auc += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return auc
}

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Confuse thresholds scores (≥ threshold ⇒ positive) against labels.
func Confuse(scores []float64, labels []bool, threshold float64) Confusion {
	var c Confusion
	for i, s := range scores {
		predicted := s >= threshold
		switch {
		case predicted && labels[i]:
			c.TP++
		case predicted && !labels[i]:
			c.FP++
		case !predicted && labels[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Accuracy returns (TP+TN)/total, 0 on empty input.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Precision returns TP/(TP+FP), 0 when no positives were predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 0 when no positives exist.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// BestF1 sweeps every distinct score as a threshold and returns the
// threshold maximizing F1 together with the confusion matrix there.
func BestF1(scores []float64, labels []bool) (threshold float64, best Confusion) {
	uniq := append([]float64(nil), scores...)
	sort.Float64s(uniq)
	uniq = dedupFloats(uniq)
	bestF1 := -1.0
	for _, t := range uniq {
		c := Confuse(scores, labels, t)
		if f := c.F1(); f > bestF1 {
			bestF1, threshold, best = f, t, c
		}
	}
	return threshold, best
}

func dedupFloats(xs []float64) []float64 {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
