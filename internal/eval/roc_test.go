package eval

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAUROCPerfect(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	auc, err := AUROC(scores, labels)
	if err != nil || auc != 1 {
		t.Fatalf("AUROC = %v, %v, want 1", auc, err)
	}
}

func TestAUROCAntiPerfect(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	auc, err := AUROC(scores, labels)
	if err != nil || auc != 0 {
		t.Fatalf("AUROC = %v, %v, want 0", auc, err)
	}
}

func TestAUROCHandComputed(t *testing.T) {
	// scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
	// Pairs: (0.8,0.6)=1 (0.8,0.2)=1 (0.4,0.6)=0 (0.4,0.2)=1 → 3/4.
	scores := []float64{0.8, 0.4, 0.6, 0.2}
	labels := []bool{true, true, false, false}
	auc, err := AUROC(scores, labels)
	if err != nil || math.Abs(auc-0.75) > 1e-12 {
		t.Fatalf("AUROC = %v, want 0.75", auc)
	}
}

func TestAUROCTies(t *testing.T) {
	// A tie between a positive and a negative counts 1/2.
	scores := []float64{0.5, 0.5}
	labels := []bool{true, false}
	auc, err := AUROC(scores, labels)
	if err != nil || math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("tied AUROC = %v, want 0.5", auc)
	}
	// All-identical scores → 0.5 regardless of labels.
	scores = []float64{1, 1, 1, 1, 1}
	labels = []bool{true, false, true, false, false}
	auc, err = AUROC(scores, labels)
	if err != nil || math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("constant AUROC = %v, want 0.5", auc)
	}
}

func TestAUROCErrors(t *testing.T) {
	if _, err := AUROC([]float64{1}, []bool{true, false}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := AUROC([]float64{1, 2}, []bool{true, true}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("one-class err = %v", err)
	}
	if _, err := AUROC(nil, nil); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("empty err = %v", err)
	}
}

func TestAUROCInvariantToMonotoneTransform(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40) + 4
		scores := make([]float64, n)
		labels := make([]bool, n)
		pos := 0
		for i := range scores {
			scores[i] = r.NormFloat64()
			labels[i] = r.Intn(2) == 0
			if labels[i] {
				pos++
			}
		}
		if pos == 0 || pos == n {
			return true
		}
		a1, err1 := AUROC(scores, labels)
		mapped := make([]float64, n)
		for i, s := range scores {
			mapped[i] = math.Exp(s) // strictly monotone
		}
		a2, err2 := AUROC(mapped, labels)
		return err1 == nil && err2 == nil && math.Abs(a1-a2) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestAUROCComplementSymmetry(t *testing.T) {
	// Negating scores flips AUROC to 1−AUROC.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40) + 4
		scores := make([]float64, n)
		labels := make([]bool, n)
		pos := 0
		for i := range scores {
			scores[i] = math.Round(r.NormFloat64()*4) / 4 // create ties
			labels[i] = r.Intn(2) == 0
			if labels[i] {
				pos++
			}
		}
		if pos == 0 || pos == n {
			return true
		}
		a, err1 := AUROC(scores, labels)
		neg := make([]float64, n)
		for i, s := range scores {
			neg[i] = -s
		}
		b, err2 := AUROC(neg, labels)
		return err1 == nil && err2 == nil && math.Abs(a+b-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestROCCurveShape(t *testing.T) {
	scores := []float64{0.9, 0.7, 0.7, 0.3, 0.1}
	labels := []bool{true, true, false, false, true}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if curve[0].FPR != 0 || curve[0].TPR != 0 {
		t.Fatalf("curve must start at (0,0): %+v", curve[0])
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve must end at (1,1): %+v", last)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("curve not monotone at %d: %+v -> %+v", i, curve[i-1], curve[i])
		}
		if curve[i].Threshold > curve[i-1].Threshold {
			t.Fatalf("thresholds not descending at %d", i)
		}
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC([]float64{1}, []bool{true}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ROC([]float64{1, 2}, []bool{true}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestTrapezoidMatchesRankAUROC(t *testing.T) {
	// The trapezoid area under the ROC curve equals the rank statistic —
	// the standard equivalence, which doubles as a cross-check of both
	// implementations (including tie handling).
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(60) + 4
		scores := make([]float64, n)
		labels := make([]bool, n)
		pos := 0
		for i := range scores {
			scores[i] = math.Round(r.NormFloat64()*3) / 3 // force ties
			labels[i] = r.Intn(3) == 0
			if labels[i] {
				pos++
			}
		}
		if pos == 0 || pos == n {
			return true
		}
		rank, err1 := AUROC(scores, labels)
		curve, err2 := ROC(scores, labels)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(rank-TrapezoidAUC(curve)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConfusionMetrics(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.6, 0.4, 0.2}
	labels := []bool{true, false, true, false, false}
	c := Confuse(scores, labels, 0.5)
	if c.TP != 2 || c.FP != 1 || c.FN != 0 || c.TN != 2 {
		t.Fatalf("confusion = %+v", c)
	}
	if math.Abs(c.Accuracy()-0.8) > 1e-12 {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
	if math.Abs(c.Precision()-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", c.Precision())
	}
	if c.Recall() != 1 {
		t.Fatalf("recall = %v", c.Recall())
	}
	wantF1 := 2 * (2.0 / 3) * 1 / (2.0/3 + 1)
	if math.Abs(c.F1()-wantF1) > 1e-12 {
		t.Fatalf("f1 = %v, want %v", c.F1(), wantF1)
	}
}

func TestConfusionZeroDivisions(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion metrics must be 0")
	}
}

func TestBestF1(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.2}
	labels := []bool{true, true, false, false}
	threshold, c := BestF1(scores, labels)
	if c.F1() != 1 {
		t.Fatalf("best F1 = %v on separable data", c.F1())
	}
	if threshold > 0.8 || threshold <= 0.3 {
		t.Fatalf("threshold = %v, want in (0.3, 0.8]", threshold)
	}
}
