package eval

import (
	"fmt"
	"sort"

	"github.com/gautrais/stability/internal/stats"
)

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Point     float64
	Lo, Hi    float64
	Level     float64 // e.g. 0.95
	Resamples int
}

// String renders the interval compactly.
func (c CI) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f] (%.0f%%, B=%d)", c.Point, c.Lo, c.Hi, c.Level*100, c.Resamples)
}

// BootstrapAUROC estimates a percentile-bootstrap confidence interval for
// the AUROC by resampling customers with replacement, stratified by class
// (so every resample keeps both classes and the statistic stays defined).
// Deterministic in seed.
func BootstrapAUROC(scores []float64, labels []bool, resamples int, level float64, seed int64) (CI, error) {
	if resamples < 10 {
		return CI{}, fmt.Errorf("eval: need >= 10 resamples, got %d", resamples)
	}
	if level <= 0 || level >= 1 {
		return CI{}, fmt.Errorf("eval: level must be in (0,1), got %v", level)
	}
	point, err := AUROC(scores, labels)
	if err != nil {
		return CI{}, err
	}
	var pos, neg []int
	for i, l := range labels {
		if l {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	r := stats.NewRand(seed)
	values := make([]float64, 0, resamples)
	resScores := make([]float64, len(scores))
	resLabels := make([]bool, len(labels))
	for b := 0; b < resamples; b++ {
		n := 0
		for range pos {
			idx := pos[r.Intn(len(pos))]
			resScores[n], resLabels[n] = scores[idx], true
			n++
		}
		for range neg {
			idx := neg[r.Intn(len(neg))]
			resScores[n], resLabels[n] = scores[idx], false
			n++
		}
		v, err := AUROC(resScores[:n], resLabels[:n])
		if err != nil {
			return CI{}, err
		}
		values = append(values, v)
	}
	sort.Float64s(values)
	alpha := (1 - level) / 2
	lo := values[int(alpha*float64(len(values)))]
	hiIdx := int((1 - alpha) * float64(len(values)))
	if hiIdx >= len(values) {
		hiIdx = len(values) - 1
	}
	hi := values[hiIdx]
	return CI{Point: point, Lo: lo, Hi: hi, Level: level, Resamples: resamples}, nil
}
