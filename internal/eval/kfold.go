package eval

import (
	"fmt"

	"github.com/gautrais/stability/internal/population"
	"github.com/gautrais/stability/internal/stats"
)

// Fold is one train/test split; indices refer to the caller's example
// ordering.
type Fold struct {
	Train []int
	Test  []int
}

// KFold produces stratified k-fold splits: each fold preserves the overall
// positive/negative ratio, as the paper's 5-fold cross-validation protocol
// requires on an imbalanced churn dataset.
type KFold struct {
	K    int
	Seed int64
}

// Split partitions n examples with the given labels into K folds. Every
// index appears in exactly one Test set; Train is the complement. It
// errors when K < 2 or either class has fewer members than K.
func (kf KFold) Split(labels []bool) ([]Fold, error) {
	if kf.K < 2 {
		return nil, fmt.Errorf("eval: k-fold needs K >= 2, got %d", kf.K)
	}
	var pos, neg []int
	for i, l := range labels {
		if l {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	if len(pos) < kf.K || len(neg) < kf.K {
		return nil, fmt.Errorf("eval: stratified %d-fold needs >= %d of each class (have %d pos, %d neg)",
			kf.K, kf.K, len(pos), len(neg))
	}
	r := stats.NewRand(kf.Seed)
	stats.Shuffle(r, pos)
	stats.Shuffle(r, neg)

	folds := make([]Fold, kf.K)
	assign := func(idxs []int) {
		for i, idx := range idxs {
			folds[i%kf.K].Test = append(folds[i%kf.K].Test, idx)
		}
	}
	assign(pos)
	assign(neg)
	inTest := make([]int, len(labels)) // fold index + 1
	for f := range folds {
		for _, idx := range folds[f].Test {
			inTest[idx] = f + 1
		}
	}
	for f := range folds {
		for i := range labels {
			if inTest[i] != f+1 {
				folds[f].Train = append(folds[f].Train, i)
			}
		}
	}
	return folds, nil
}

// CrossValidate runs fn once per fold and returns the per-fold values,
// their mean, and the standard error. fn typically trains on fold.Train
// and scores fold.Test, returning an AUROC.
func CrossValidate(folds []Fold, fn func(f Fold) (float64, error)) (values []float64, mean, stderr float64, err error) {
	values = make([]float64, 0, len(folds))
	for i, f := range folds {
		v, ferr := fn(f)
		if ferr != nil {
			return nil, 0, 0, fmt.Errorf("eval: fold %d: %w", i, ferr)
		}
		values = append(values, v)
	}
	return values, stats.Mean(values), stats.StdErr(values), nil
}

// GridPoint is one (α, window-span) cell of the paper's parameter search.
type GridPoint struct {
	Alpha      float64
	SpanMonths int
}

// GridResult records the cross-validated score of one grid point.
type GridResult struct {
	GridPoint
	FoldScores []float64
	Mean       float64
	StdErr     float64
}

// GridSearch evaluates every (α, span) combination with the supplied
// cross-validated scorer and returns results sorted by descending mean,
// ties broken toward smaller α then smaller span (prefer the simpler
// model). It is GridSearchParallel with a single worker.
func GridSearch(alphas []float64, spans []int, score func(GridPoint) ([]float64, error)) ([]GridResult, error) {
	return GridSearchParallel(alphas, spans, 1, score)
}

// GridSearchParallel is GridSearch with the independent (α, span) cells
// fanned across the population engine's worker pool (workers <= 0 means
// GOMAXPROCS). The scorer must be safe for concurrent calls. Results,
// their order, and the reported error (lowest cell in row-major
// alphas×spans order — exactly the cell the sequential loop would have
// failed on first) are identical at every worker count.
func GridSearchParallel(alphas []float64, spans []int, workers int, score func(GridPoint) ([]float64, error)) ([]GridResult, error) {
	if len(alphas) == 0 || len(spans) == 0 {
		return nil, fmt.Errorf("eval: empty grid (%d alphas, %d spans)", len(alphas), len(spans))
	}
	cells := make([]GridPoint, 0, len(alphas)*len(spans))
	for _, a := range alphas {
		for _, s := range spans {
			cells = append(cells, GridPoint{Alpha: a, SpanMonths: s})
		}
	}
	out, err := population.Map(len(cells), population.Options{Workers: workers},
		func(i int) (GridResult, error) {
			gp := cells[i]
			foldScores, err := score(gp)
			if err != nil {
				return GridResult{}, fmt.Errorf("eval: grid point α=%v w=%dmo: %w", gp.Alpha, gp.SpanMonths, err)
			}
			return GridResult{
				GridPoint:  gp,
				FoldScores: foldScores,
				Mean:       stats.Mean(foldScores),
				StdErr:     stats.StdErr(foldScores),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	sortGrid(out)
	return out, nil
}

func sortGrid(rs []GridResult) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && gridLess(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func gridLess(a, b GridResult) bool {
	if a.Mean != b.Mean {
		return a.Mean > b.Mean
	}
	if a.Alpha != b.Alpha {
		return a.Alpha < b.Alpha
	}
	return a.SpanMonths < b.SpanMonths
}
