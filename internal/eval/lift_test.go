package eval

import (
	"math"
	"testing"
)

func TestLiftCurvePerfectRanking(t *testing.T) {
	// 10 customers, 2 positives ranked on top.
	scores := []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	labels := []bool{true, true, false, false, false, false, false, false, false, false}
	pts, err := LiftCurve(scores, labels, []float64{0.2, 0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Gain != 1 {
		t.Fatalf("top-20%% gain = %v, want 1 (both positives captured)", pts[0].Gain)
	}
	if math.Abs(pts[0].Lift-5) > 1e-12 {
		t.Fatalf("top-20%% lift = %v, want 5", pts[0].Lift)
	}
	if pts[2].Gain != 1 || math.Abs(pts[2].Lift-1) > 1e-12 {
		t.Fatalf("full-population point = %+v, want gain 1 lift 1", pts[2])
	}
}

func TestLiftCurveRandomRanking(t *testing.T) {
	// Constant scores: stable sort keeps original order; the first 50%
	// holds 50% of positives when positives are spread evenly.
	n := 100
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range labels {
		labels[i] = i%2 == 0 // alternating, so any prefix is balanced
	}
	pts, err := LiftCurve(scores, labels, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pts[0].Lift-1) > 0.05 {
		t.Fatalf("random ranking lift = %v, want ~1", pts[0].Lift)
	}
}

func TestLiftCurveErrors(t *testing.T) {
	if _, err := LiftCurve([]float64{1}, []bool{true, false}, []float64{0.5}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := LiftCurve([]float64{1, 2}, []bool{true, true}, []float64{0.5}); err == nil {
		t.Fatal("degenerate labels accepted")
	}
	if _, err := LiftCurve([]float64{1, 2}, []bool{true, false}, nil); err == nil {
		t.Fatal("no fractions accepted")
	}
	if _, err := LiftCurve([]float64{1, 2}, []bool{true, false}, []float64{0}); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := LiftCurve([]float64{1, 2}, []bool{true, false}, []float64{1.5}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestPRCurve(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.6}
	labels := []bool{true, false, true, false}
	curve, err := PRCurve(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 4 {
		t.Fatalf("curve points = %d", len(curve))
	}
	// First point: only the 0.9 positive predicted → precision 1, recall 0.5.
	if curve[0].Precision != 1 || curve[0].Recall != 0.5 {
		t.Fatalf("first point = %+v", curve[0])
	}
	last := curve[len(curve)-1]
	if last.Recall != 1 || last.Precision != 0.5 {
		t.Fatalf("last point = %+v", last)
	}
	// Recall is monotone non-decreasing.
	for i := 1; i < len(curve); i++ {
		if curve[i].Recall < curve[i-1].Recall {
			t.Fatalf("recall not monotone at %d", i)
		}
	}
}

func TestAveragePrecision(t *testing.T) {
	// Perfect ranking → AP = 1.
	ap, err := AveragePrecision([]float64{3, 2, 1, 0}, []bool{true, true, false, false})
	if err != nil || math.Abs(ap-1) > 1e-12 {
		t.Fatalf("perfect AP = %v, %v", ap, err)
	}
	// Hand-computed: labels at ranks 1 and 3 of 4.
	// P@1 = 1 (R 0→0.5), P@3 = 2/3 (R 0.5→1): AP = 0.5·1 + 0.5·(2/3) = 5/6.
	ap, err = AveragePrecision([]float64{4, 3, 2, 1}, []bool{true, false, true, false})
	if err != nil || math.Abs(ap-5.0/6) > 1e-12 {
		t.Fatalf("AP = %v, want 5/6", ap)
	}
	if _, err := AveragePrecision([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Fatal("degenerate accepted")
	}
}

func TestThresholdAtFPR(t *testing.T) {
	// Scores: negatives at 0.1, 0.2, 0.3, 0.4; positives at 0.5, 0.6.
	scores := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	labels := []bool{false, false, false, false, true, true}
	// FPR budget 0: threshold must exclude every negative.
	th, err := ThresholdAtFPR(scores, labels, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := Confuse(scores, labels, th)
	if c.FP != 0 {
		t.Fatalf("threshold %v admits %d false positives", th, c.FP)
	}
	if c.TP != 2 {
		t.Fatalf("threshold %v captures %d/2 positives", th, c.TP)
	}
	// FPR budget 0.25: one negative allowed.
	th, err = ThresholdAtFPR(scores, labels, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	c = Confuse(scores, labels, th)
	if c.FP > 1 {
		t.Fatalf("budget 0.25 admitted %d FPs", c.FP)
	}
	if _, err := ThresholdAtFPR(scores, labels, -0.1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := ThresholdAtFPR(scores, labels, 1.5); err == nil {
		t.Fatal("budget > 1 accepted")
	}
}
