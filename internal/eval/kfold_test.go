package eval

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func makeLabels(pos, neg int) []bool {
	labels := make([]bool, pos+neg)
	for i := 0; i < pos; i++ {
		labels[i] = true
	}
	return labels
}

func TestKFoldPartition(t *testing.T) {
	labels := makeLabels(23, 41)
	kf := KFold{K: 5, Seed: 1}
	folds, err := kf.Split(labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := make([]int, len(labels))
	for _, f := range folds {
		for _, idx := range f.Test {
			seen[idx]++
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d appears in %d test sets", i, n)
		}
	}
	// Train is the exact complement of Test within each fold.
	for fi, f := range folds {
		inTest := map[int]bool{}
		for _, idx := range f.Test {
			inTest[idx] = true
		}
		if len(f.Train)+len(f.Test) != len(labels) {
			t.Fatalf("fold %d sizes: %d + %d != %d", fi, len(f.Train), len(f.Test), len(labels))
		}
		for _, idx := range f.Train {
			if inTest[idx] {
				t.Fatalf("fold %d: index %d in both train and test", fi, idx)
			}
		}
	}
}

func TestKFoldStratification(t *testing.T) {
	labels := makeLabels(20, 80)
	kf := KFold{K: 5, Seed: 7}
	folds, err := kf.Split(labels)
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range folds {
		pos := 0
		for _, idx := range f.Test {
			if labels[idx] {
				pos++
			}
		}
		// Overall rate is 20%; each fold of 20 should hold exactly 4.
		if pos != 4 {
			t.Fatalf("fold %d has %d positives, want 4", fi, pos)
		}
	}
}

func TestKFoldDeterministicInSeed(t *testing.T) {
	labels := makeLabels(10, 10)
	a, err := (KFold{K: 4, Seed: 3}).Split(labels)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (KFold{K: 4, Seed: 3}).Split(labels)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if fmt.Sprint(a[i].Test) != fmt.Sprint(b[i].Test) {
			t.Fatalf("fold %d differs across identical seeds", i)
		}
	}
	c, err := (KFold{K: 4, Seed: 4}).Split(labels)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if fmt.Sprint(a[i].Test) != fmt.Sprint(c[i].Test) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical folds")
	}
}

func TestKFoldErrors(t *testing.T) {
	if _, err := (KFold{K: 1, Seed: 0}).Split(makeLabels(5, 5)); err == nil {
		t.Fatal("K=1 accepted")
	}
	if _, err := (KFold{K: 5, Seed: 0}).Split(makeLabels(3, 50)); err == nil {
		t.Fatal("too few positives accepted")
	}
	if _, err := (KFold{K: 5, Seed: 0}).Split(makeLabels(50, 3)); err == nil {
		t.Fatal("too few negatives accepted")
	}
}

func TestCrossValidate(t *testing.T) {
	folds := []Fold{{Test: []int{0}}, {Test: []int{1}}, {Test: []int{2}}}
	vals, mean, stderr, err := CrossValidate(folds, func(f Fold) (float64, error) {
		return float64(f.Test[0]), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || mean != 1 {
		t.Fatalf("vals=%v mean=%v", vals, mean)
	}
	if stderr <= 0 {
		t.Fatalf("stderr = %v", stderr)
	}
	_, _, _, err = CrossValidate(folds, func(f Fold) (float64, error) {
		if f.Test[0] == 1 {
			return 0, errors.New("boom")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("fold error swallowed")
	}
}

func TestGridSearchRankingAndTieBreak(t *testing.T) {
	alphas := []float64{2, 3}
	spans := []int{1, 2}
	// Score: prefer (3,2) strictly; tie (2,1) and (2,2).
	results, err := GridSearch(alphas, spans, func(gp GridPoint) ([]float64, error) {
		switch {
		case gp.Alpha == 3 && gp.SpanMonths == 2:
			return []float64{0.9, 0.9}, nil
		case gp.Alpha == 3:
			return []float64{0.5, 0.5}, nil
		default:
			return []float64{0.7, 0.7}, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Alpha != 3 || results[0].SpanMonths != 2 {
		t.Fatalf("winner = %+v", results[0].GridPoint)
	}
	// Tied cells: smaller alpha first, then smaller span.
	if results[1].Alpha != 2 || results[1].SpanMonths != 1 {
		t.Fatalf("second = %+v", results[1].GridPoint)
	}
	if results[2].Alpha != 2 || results[2].SpanMonths != 2 {
		t.Fatalf("third = %+v", results[2].GridPoint)
	}
	if results[3].Alpha != 3 || results[3].SpanMonths != 1 {
		t.Fatalf("last = %+v", results[3].GridPoint)
	}
}

func TestGridSearchErrors(t *testing.T) {
	if _, err := GridSearch(nil, []int{1}, nil); err == nil {
		t.Fatal("empty alphas accepted")
	}
	if _, err := GridSearch([]float64{2}, nil, nil); err == nil {
		t.Fatal("empty spans accepted")
	}
	_, err := GridSearch([]float64{2}, []int{1}, func(GridPoint) ([]float64, error) {
		return nil, errors.New("scorer failed")
	})
	if err == nil {
		t.Fatal("scorer error swallowed")
	}
}

// TestGridSearchParallelWorkerInvariance pins the parallel grid search to
// the sequential one: identical ranked results at every worker count, and
// on failure the reported error is the lowest cell's in row-major
// alphas×spans order — not whichever goroutine finished first.
func TestGridSearchParallelWorkerInvariance(t *testing.T) {
	alphas := []float64{1.5, 2, 3}
	spans := []int{1, 2}
	score := func(gp GridPoint) ([]float64, error) {
		v := gp.Alpha/10 + float64(gp.SpanMonths)/100
		return []float64{v, v + 0.01}, nil
	}
	base, err := GridSearch(alphas, spans, score)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := GridSearchParallel(alphas, spans, workers, score)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d results vs %d", workers, len(got), len(base))
		}
		for i := range got {
			if got[i].GridPoint != base[i].GridPoint || got[i].Mean != base[i].Mean ||
				got[i].StdErr != base[i].StdErr {
				t.Fatalf("workers=%d: result %d = %+v, want %+v", workers, i, got[i], base[i])
			}
		}
	}

	// Two failing cells: the error must name the row-major-lowest one —
	// (alpha=2, span=1) before (alpha=3, span=2) — at every worker count.
	failing := func(gp GridPoint) ([]float64, error) {
		if gp.Alpha == 2 && gp.SpanMonths == 1 {
			return nil, errors.New("first bad cell")
		}
		if gp.Alpha == 3 && gp.SpanMonths == 2 {
			return nil, errors.New("second bad cell")
		}
		return []float64{0.5, 0.5}, nil
	}
	for _, workers := range []int{1, 2, 4, 8} {
		_, err := GridSearchParallel(alphas, spans, workers, failing)
		if err == nil {
			t.Fatalf("workers=%d: error swallowed", workers)
		}
		if !strings.Contains(err.Error(), "first bad cell") {
			t.Fatalf("workers=%d: error = %v, want the row-major-lowest cell's", workers, err)
		}
	}
}
