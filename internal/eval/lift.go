package eval

import (
	"fmt"
	"sort"
)

// LiftPoint is one depth of a lift/gains chart: targeting the top
// `Fraction` of customers by score captures `Gain` of all positives, a
// lift of `Lift` over random targeting.
type LiftPoint struct {
	Fraction float64 // share of the population targeted (0,1]
	Gain     float64 // share of positives captured
	Lift     float64 // Gain / Fraction
}

// LiftCurve computes the cumulative gains chart at the given depth
// fractions (e.g. 0.05, 0.1, 0.2 — the deciles retail campaigns use, as in
// Buckinx & Van den Poel's churn evaluation). Scores are descending-is-
// positive; ties are broken by original index for determinism.
func LiftCurve(scores []float64, labels []bool, fractions []float64) ([]LiftPoint, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("eval: %d scores but %d labels", len(scores), len(labels))
	}
	if len(fractions) == 0 {
		return nil, fmt.Errorf("eval: no fractions")
	}
	pos := 0
	for _, l := range labels {
		if l {
			pos++
		}
	}
	if pos == 0 || pos == len(labels) {
		return nil, ErrDegenerate
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	out := make([]LiftPoint, 0, len(fractions))
	for _, f := range fractions {
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("eval: fraction %v outside (0,1]", f)
		}
		n := int(f*float64(len(scores)) + 0.5)
		if n < 1 {
			n = 1
		}
		captured := 0
		for _, i := range idx[:n] {
			if labels[i] {
				captured++
			}
		}
		gain := float64(captured) / float64(pos)
		frac := float64(n) / float64(len(scores))
		out = append(out, LiftPoint{Fraction: frac, Gain: gain, Lift: gain / frac})
	}
	return out, nil
}

// PRPoint is one operating point of a precision-recall curve.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PRCurve computes the precision-recall curve, one point per distinct
// score, ordered by increasing recall.
func PRCurve(scores []float64, labels []bool) ([]PRPoint, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("eval: %d scores but %d labels", len(scores), len(labels))
	}
	pos := 0
	for _, l := range labels {
		if l {
			pos++
		}
	}
	if pos == 0 || pos == len(labels) {
		return nil, ErrDegenerate
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var out []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(idx); {
		s := scores[idx[i]]
		for i < len(idx) && scores[idx[i]] == s {
			if labels[idx[i]] {
				tp++
			} else {
				fp++
			}
			i++
		}
		out = append(out, PRPoint{
			Threshold: s,
			Precision: float64(tp) / float64(tp+fp),
			Recall:    float64(tp) / float64(pos),
		})
	}
	return out, nil
}

// AveragePrecision integrates the PR curve by the step rule
// Σ (Rᵢ − Rᵢ₋₁)·Pᵢ — the AP metric.
func AveragePrecision(scores []float64, labels []bool) (float64, error) {
	curve, err := PRCurve(scores, labels)
	if err != nil {
		return 0, err
	}
	var ap, prevRecall float64
	for _, p := range curve {
		ap += (p.Recall - prevRecall) * p.Precision
		prevRecall = p.Recall
	}
	return ap, nil
}

// ThresholdAtFPR returns the largest threshold whose false-positive rate
// does not exceed the target — how a retailer calibrates β to an
// acceptable false-alarm budget on a loyal population.
func ThresholdAtFPR(scores []float64, labels []bool, maxFPR float64) (float64, error) {
	curve, err := ROC(scores, labels)
	if err != nil {
		return 0, err
	}
	if maxFPR < 0 || maxFPR > 1 {
		return 0, fmt.Errorf("eval: maxFPR %v outside [0,1]", maxFPR)
	}
	best := curve[0].Threshold // +Inf: predict nothing
	for _, p := range curve[1:] {
		if p.FPR <= maxFPR {
			best = p.Threshold
		} else {
			break
		}
	}
	return best, nil
}
