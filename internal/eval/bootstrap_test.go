package eval

import (
	"math/rand"
	"testing"
)

func TestBootstrapAUROCBracketsPoint(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 400
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		labels[i] = i%2 == 0
		if labels[i] {
			scores[i] = r.NormFloat64() + 1 // separated by ~1σ
		} else {
			scores[i] = r.NormFloat64()
		}
	}
	ci, err := BootstrapAUROC(scores, labels, 200, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > ci.Point || ci.Hi < ci.Point {
		t.Fatalf("interval [%v,%v] does not bracket point %v", ci.Lo, ci.Hi, ci.Point)
	}
	if ci.Hi-ci.Lo <= 0 {
		t.Fatalf("degenerate interval: %+v", ci)
	}
	// 1σ separation → AUROC ≈ Φ(1/√2) ≈ 0.76; the interval should sit in
	// that neighbourhood and be reasonably tight at n=400.
	if ci.Point < 0.68 || ci.Point > 0.84 {
		t.Fatalf("point = %v, want ≈ 0.76", ci.Point)
	}
	if ci.Hi-ci.Lo > 0.15 {
		t.Fatalf("interval too wide: %v", ci.Hi-ci.Lo)
	}
	if ci.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestBootstrapAUROCDeterministic(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.4, 0.3, 0.2}
	labels := []bool{true, true, true, false, false, false}
	a, err := BootstrapAUROC(scores, labels, 50, 0.9, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapAUROC(scores, labels, 50, 0.9, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed gave %+v vs %+v", a, b)
	}
	c, err := BootstrapAUROC(scores, labels, 50, 0.9, 12)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Log("different seeds coincided (possible on tiny data)")
	}
}

func TestBootstrapAUROCValidation(t *testing.T) {
	scores := []float64{1, 0}
	labels := []bool{true, false}
	if _, err := BootstrapAUROC(scores, labels, 5, 0.95, 1); err == nil {
		t.Fatal("too few resamples accepted")
	}
	if _, err := BootstrapAUROC(scores, labels, 50, 0, 1); err == nil {
		t.Fatal("level 0 accepted")
	}
	if _, err := BootstrapAUROC(scores, labels, 50, 1, 1); err == nil {
		t.Fatal("level 1 accepted")
	}
	if _, err := BootstrapAUROC([]float64{1, 2}, []bool{true, true}, 50, 0.9, 1); err == nil {
		t.Fatal("degenerate labels accepted")
	}
}
