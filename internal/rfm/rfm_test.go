package rfm

import (
	"math"
	"testing"
	"time"

	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

func testGrid(t *testing.T) window.Grid {
	t.Helper()
	g, err := window.NewGrid(time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), window.Span{Months: 2})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func receipt(g window.Grid, dayOffset int, spend float64) retail.Receipt {
	return retail.Receipt{
		Time:  g.Origin().AddDate(0, 0, dayOffset).Add(12 * time.Hour),
		Items: retail.NewBasket([]retail.ItemID{1}),
		Spend: spend,
	}
}

func TestFeatureNamesMatchDimensions(t *testing.T) {
	if len(FeatureNames) != NumFeatures {
		t.Fatalf("FeatureNames %d != NumFeatures %d", len(FeatureNames), NumFeatures)
	}
	e := Extractor{Grid: testGrid(t)}
	x := e.Extract(retail.History{Customer: 1}, 3)
	if len(x) != NumFeatures {
		t.Fatalf("vector length %d != %d", len(x), NumFeatures)
	}
}

func TestExtractEmptyHistory(t *testing.T) {
	e := Extractor{Grid: testGrid(t)}
	x := e.Extract(retail.History{Customer: 1}, 2)
	// Recency = days from origin to end of window 2 (6 months).
	if x[0] <= 0 {
		t.Fatalf("recency = %v, want > 0", x[0])
	}
	if x[3] != 0 || x[7] != 0 {
		t.Fatalf("frequency/monetary of empty history: f=%v m=%v", x[3], x[7])
	}
	if math.Abs(x[1]-math.Log1p(x[0])) > 1e-12 {
		t.Fatalf("log recency inconsistent: %v vs log1p(%v)", x[1], x[0])
	}
}

func TestExtractBasic(t *testing.T) {
	g := testGrid(t)
	e := Extractor{Grid: g}
	h := retail.History{Customer: 1, Receipts: []retail.Receipt{
		receipt(g, 0, 10),
		receipt(g, 10, 20),
		receipt(g, 70, 30), // window 1
	}}
	x := e.Extract(h, 1)
	if x[3] != 3 { // frequency_total
		t.Fatalf("frequency_total = %v", x[3])
	}
	if x[4] != 1 { // frequency_recent: only the day-70 receipt in window 1
		t.Fatalf("frequency_recent = %v", x[4])
	}
	if x[7] != 60 { // monetary_total
		t.Fatalf("monetary_total = %v", x[7])
	}
	if x[8] != 20 { // monetary_mean
		t.Fatalf("monetary_mean = %v", x[8])
	}
	if x[9] != 30 { // monetary_recent
		t.Fatalf("monetary_recent = %v", x[9])
	}
	// interpurchase_mean of gaps 10 and 60 days = 35.
	if math.Abs(x[6]-35) > 1e-9 {
		t.Fatalf("interpurchase_mean = %v, want 35", x[6])
	}
	// Recency: end of window 1 is 2012-09-01; last receipt day 70 (2012-07-10).
	_, end := g.Bounds(1)
	wantRecency := end.Sub(h.Receipts[2].Time).Hours() / 24
	if math.Abs(x[0]-wantRecency) > 1e-9 {
		t.Fatalf("recency = %v, want %v", x[0], wantRecency)
	}
}

func TestExtractNoFutureLeakage(t *testing.T) {
	g := testGrid(t)
	e := Extractor{Grid: g}
	base := retail.History{Customer: 1, Receipts: []retail.Receipt{
		receipt(g, 0, 10),
		receipt(g, 30, 10),
	}}
	withFuture := retail.History{Customer: 1, Receipts: append(
		append([]retail.Receipt{}, base.Receipts...),
		receipt(g, 200, 999), // far beyond the as-of window
	)}
	a := e.Extract(base, 1)
	b := e.Extract(withFuture, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("feature %s leaked the future: %v vs %v", FeatureNames[i], a[i], b[i])
		}
	}
}

func TestExtractSingleReceipt(t *testing.T) {
	g := testGrid(t)
	e := Extractor{Grid: g}
	h := retail.History{Customer: 1, Receipts: []retail.Receipt{receipt(g, 5, 12)}}
	x := e.Extract(h, 0)
	if x[3] != 1 || x[7] != 12 {
		t.Fatalf("single receipt features: f=%v m=%v", x[3], x[7])
	}
	// Degenerate gap uses span from first receipt to window end; must be
	// finite and non-negative.
	if x[6] < 0 || math.IsNaN(x[6]) {
		t.Fatalf("interpurchase fallback = %v", x[6])
	}
}

// synthPopulation builds loyal customers (steady receipts all through) and
// defectors (receipts stop early) for baseline training.
func synthPopulation(g window.Grid, n int) ([]retail.History, []bool) {
	histories := make([]retail.History, n)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		defecting := i%2 == 0
		h := retail.History{Customer: retail.CustomerID(i + 1)}
		limit := 360 // ~6 windows of 2 months
		if defecting {
			limit = 200 + (i % 40) // stops during window 3-4
		}
		for day := i % 7; day < limit; day += 6 + i%3 {
			h.Receipts = append(h.Receipts, receipt(g, day, 10+float64(i%5)))
		}
		histories[i] = h
		labels[i] = defecting
	}
	return histories, labels
}

func TestTrainAndScoreSeparatesCohorts(t *testing.T) {
	g := testGrid(t)
	histories, labels := synthPopulation(g, 120)
	b, err := Train(g, 5, histories, labels, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	var defMean, loyMean float64
	var nd, nl int
	for i, h := range histories {
		s := b.Score(h)
		if s < 0 || s > 1 {
			t.Fatalf("score %v out of range", s)
		}
		if labels[i] {
			defMean += s
			nd++
		} else {
			loyMean += s
			nl++
		}
	}
	defMean /= float64(nd)
	loyMean /= float64(nl)
	if defMean <= loyMean+0.2 {
		t.Fatalf("defector mean score %v not well above loyal %v", defMean, loyMean)
	}
}

func TestFamilyString(t *testing.T) {
	tests := map[Family]string{
		Recency: "recency", Frequency: "frequency", Monetary: "monetary", Family(9): "unknown",
	}
	for f, want := range tests {
		if got := f.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", f, got, want)
		}
	}
}

func TestFamilyColumnsPartition(t *testing.T) {
	// The three families must partition the full column set.
	all := FamilyColumns(AllFamilies)
	if len(all) != NumFeatures {
		t.Fatalf("all families cover %d of %d columns", len(all), NumFeatures)
	}
	seen := map[int]bool{}
	for _, f := range AllFamilies {
		for _, c := range FamilyColumns([]Family{f}) {
			if seen[c] {
				t.Fatalf("column %d in two families", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != NumFeatures {
		t.Fatalf("families cover %d of %d columns", len(seen), NumFeatures)
	}
	// Family names match column prefixes/markers.
	for _, c := range FamilyColumns([]Family{Recency}) {
		if FeatureNames[c] == "" {
			t.Fatal("unnamed column")
		}
	}
}

func TestExtractorFamilyRestriction(t *testing.T) {
	g := testGrid(t)
	h := retail.History{Customer: 1, Receipts: []retail.Receipt{
		receipt(g, 0, 10), receipt(g, 10, 20), receipt(g, 70, 30),
	}}
	full := Extractor{Grid: g}
	mOnly := Extractor{Grid: g, Families: []Family{Monetary}}
	xFull := full.Extract(h, 1)
	xM := mOnly.Extract(h, 1)
	if len(xM) != 4 {
		t.Fatalf("monetary-only vector has %d columns", len(xM))
	}
	// Monetary columns are 7..10 of the full vector.
	for i, c := range FamilyColumns([]Family{Monetary}) {
		if xM[i] != xFull[c] {
			t.Fatalf("restricted column %d = %v, full[%d] = %v", i, xM[i], c, xFull[c])
		}
	}
	names := mOnly.Names()
	if len(names) != 4 || names[0] != "monetary_total" {
		t.Fatalf("Names() = %v", names)
	}
	if n := (Extractor{Grid: g}).Names(); len(n) != NumFeatures {
		t.Fatalf("full Names() = %d entries", len(n))
	}
}

func TestTrainWithFamilyRestriction(t *testing.T) {
	g := testGrid(t)
	histories, labels := synthPopulation(g, 80)
	opts := DefaultTrainOptions()
	opts.Families = []Family{Recency}
	b, err := Train(g, 5, histories, labels, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Recency features alone still separate stopped-vs-steady synthetic
	// cohorts (defectors' last receipt is months old).
	var defMean, loyMean float64
	var nd, nl int
	for i, h := range histories {
		s := b.Score(h)
		if labels[i] {
			defMean += s
			nd++
		} else {
			loyMean += s
			nl++
		}
	}
	if defMean/float64(nd) <= loyMean/float64(nl) {
		t.Fatalf("recency-only baseline failed to separate: %v vs %v",
			defMean/float64(nd), loyMean/float64(nl))
	}
	if len(b.Clf.Weights) != 3 {
		t.Fatalf("recency-only model has %d weights", len(b.Clf.Weights))
	}
}

func TestTrainValidation(t *testing.T) {
	g := testGrid(t)
	histories, labels := synthPopulation(g, 10)
	if _, err := Train(g, 5, histories, labels[:5], DefaultTrainOptions()); err == nil {
		t.Fatal("length mismatch accepted")
	}
	allLoyal := make([]bool, len(histories))
	if _, err := Train(g, 5, histories, allLoyal, DefaultTrainOptions()); err == nil {
		t.Fatal("single-class training accepted")
	}
}
