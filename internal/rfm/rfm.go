// Package rfm implements the paper's comparator: the standard RFM
// (recency / frequency / monetary) attrition model, built — as in the
// paper — with a logistic regression restricted to predictors from those
// three behavioural families, following the methodology of Buckinx &
// Van den Poel (2005).
//
// For an evaluation window k, features are extracted from the history up to
// the end of window k (never beyond: no leakage from the future), so the
// baseline and the stability model see exactly the same information.
package rfm

import (
	"fmt"
	"math"
	"time"

	"github.com/gautrais/stability/internal/logreg"
	"github.com/gautrais/stability/internal/population"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

// Family is one of the paper's three behavioural predictor families.
type Family int8

const (
	// Recency covers time-since-last-purchase predictors.
	Recency Family = iota
	// Frequency covers visit-count and inter-purchase predictors.
	Frequency
	// Monetary covers spend predictors.
	Monetary
)

// String names the family.
func (f Family) String() string {
	switch f {
	case Recency:
		return "recency"
	case Frequency:
		return "frequency"
	case Monetary:
		return "monetary"
	default:
		return "unknown"
	}
}

// AllFamilies is the full RFM predictor set.
var AllFamilies = []Family{Recency, Frequency, Monetary}

// FeatureNames lists the extracted predictors in column order. Every
// predictor belongs to the R, F or M family, as the paper prescribes
// ("we only used predictors associated to the recency, frequency and
// monetary variables").
var FeatureNames = []string{
	"recency_days",       // R: days since last purchase at the as-of instant
	"log_recency",        // R: log(1+recency_days)
	"recency_ratio",      // R: recency / mean inter-purchase gap
	"frequency_total",    // F: receipts over the whole observed history
	"frequency_recent",   // F: receipts in the last window
	"frequency_trend",    // F: recent window receipts minus per-window mean
	"interpurchase_mean", // F: mean days between consecutive receipts
	"monetary_total",     // M: total spend over the observed history
	"monetary_mean",      // M: mean spend per receipt
	"monetary_recent",    // M: spend in the last window
	"monetary_trend",     // M: recent window spend minus per-window mean
}

// featureFamily maps each column to its family, parallel to FeatureNames.
var featureFamily = []Family{
	Recency, Recency, Recency,
	Frequency, Frequency, Frequency, Frequency,
	Monetary, Monetary, Monetary, Monetary,
}

// NumFeatures is the dimensionality of the extracted vectors.
var NumFeatures = len(FeatureNames)

// FamilyColumns returns the column indices belonging to the given
// families, in FeatureNames order.
func FamilyColumns(families []Family) []int {
	want := map[Family]bool{}
	for _, f := range families {
		want[f] = true
	}
	var cols []int
	for i, f := range featureFamily {
		if want[f] {
			cols = append(cols, i)
		}
	}
	return cols
}

// Extractor computes RFM feature vectors aligned to a window grid.
type Extractor struct {
	Grid window.Grid
	// Families restricts extraction to the listed predictor families
	// (nil/empty = all three). Used by the family-ablation experiment.
	Families []Family
}

// columns returns the active column indices.
func (e Extractor) columns() []int {
	if len(e.Families) == 0 {
		return FamilyColumns(AllFamilies)
	}
	return FamilyColumns(e.Families)
}

// Names returns the active feature names in column order.
func (e Extractor) Names() []string {
	cols := e.columns()
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = FeatureNames[c]
	}
	return out
}

// Extract computes the feature vector of one customer as of the end of
// window asOf (exclusive). Receipts after that instant are ignored. A
// customer with no receipts before the as-of instant yields the "never
// seen" vector: maximal recency, zero frequency and monetary value. When
// Families is set, only those families' columns are returned.
func (e Extractor) Extract(h retail.History, asOf int) []float64 {
	full := e.extractAll(h, asOf)
	if len(e.Families) == 0 {
		return full
	}
	cols := e.columns()
	out := make([]float64, len(cols))
	for i, c := range cols {
		out[i] = full[c]
	}
	return out
}

// extractAll computes every predictor.
func (e Extractor) extractAll(h retail.History, asOf int) []float64 {
	_, end := e.Grid.Bounds(asOf)
	lastStart, _ := e.Grid.Bounds(asOf)
	x := make([]float64, NumFeatures)

	var (
		nTotal       int
		nRecent      int
		spendTotal   float64
		spendRecent  float64
		last         time.Time
		firstTime    time.Time
		prevTime     time.Time
		gapSum       float64
		gapN         int
		firstWindowK int
	)
	for _, r := range h.Receipts {
		if !r.Time.Before(end) {
			break // receipts are chronological; the rest is future
		}
		if nTotal == 0 {
			firstTime = r.Time
			firstWindowK = e.Grid.Index(r.Time)
		} else {
			gapSum += r.Time.Sub(prevTime).Hours() / 24
			gapN++
		}
		prevTime = r.Time
		nTotal++
		spendTotal += r.Spend
		last = r.Time
		if !r.Time.Before(lastStart) {
			nRecent++
			spendRecent += r.Spend
		}
	}

	if nTotal == 0 {
		// Never purchased: maximal recency, zeros elsewhere.
		origin := e.Grid.Origin()
		days := end.Sub(origin).Hours() / 24
		x[0] = days
		x[1] = math.Log1p(days)
		x[2] = days // ratio against a 1-day gap floor
		return x
	}

	recency := end.Sub(last).Hours() / 24
	gapMean := 0.0
	if gapN > 0 {
		gapMean = gapSum / float64(gapN)
	}
	windowsObserved := asOf - firstWindowK + 1
	if windowsObserved < 1 {
		windowsObserved = 1
	}
	perWindowMeanN := float64(nTotal) / float64(windowsObserved)
	perWindowMeanSpend := spendTotal / float64(windowsObserved)

	x[0] = recency
	x[1] = math.Log1p(recency)
	if gapMean > 0 {
		x[2] = recency / gapMean
	} else {
		x[2] = recency
	}
	x[3] = float64(nTotal)
	x[4] = float64(nRecent)
	x[5] = float64(nRecent) - perWindowMeanN
	if gapN > 0 {
		x[6] = gapMean
	} else {
		// Single receipt: use the observed span as a degenerate gap.
		x[6] = end.Sub(firstTime).Hours() / 24
	}
	x[7] = spendTotal
	x[8] = spendTotal / float64(nTotal)
	x[9] = spendRecent
	x[10] = spendRecent - perWindowMeanSpend
	return x
}

// Baseline is a trained RFM attrition classifier for a fixed as-of window.
type Baseline struct {
	Extractor Extractor
	AsOf      int
	Clf       *logreg.Classifier
}

// TrainOptions configure baseline training.
type TrainOptions struct {
	Logreg logreg.TrainOptions
	// Families restricts the predictors to the listed families (nil = all
	// three, the paper's setting).
	Families []Family
	// Workers sizes the feature-extraction worker pool; <= 0 means
	// GOMAXPROCS. Extraction is per-customer and order-preserving, so the
	// design matrix is identical at every worker count.
	Workers int
}

// DefaultTrainOptions mirrors logreg defaults with the full RFM predictor
// set.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Logreg: logreg.DefaultTrainOptions()}
}

// Train fits the RFM baseline on the given histories: label 1 means
// defecting. Histories and labels are parallel slices.
func Train(grid window.Grid, asOf int, histories []retail.History, defecting []bool, opts TrainOptions) (*Baseline, error) {
	if len(histories) != len(defecting) {
		return nil, fmt.Errorf("rfm: %d histories but %d labels", len(histories), len(defecting))
	}
	ex := Extractor{Grid: grid, Families: opts.Families}
	X, err := population.Map(len(histories), population.Options{Workers: opts.Workers},
		func(i int) ([]float64, error) { return ex.Extract(histories[i], asOf), nil })
	if err != nil {
		return nil, err
	}
	y := make([]int, len(histories))
	for i := range histories {
		if defecting[i] {
			y[i] = 1
		}
	}
	clf, err := logreg.Train(X, y, opts.Logreg)
	if err != nil {
		return nil, fmt.Errorf("rfm: train: %w", err)
	}
	return &Baseline{Extractor: ex, AsOf: asOf, Clf: clf}, nil
}

// Score returns P(defecting) for one customer at the baseline's as-of
// window.
func (b *Baseline) Score(h retail.History) float64 {
	return b.Clf.Score(b.Extractor.Extract(h, b.AsOf))
}

// ScoreAll scores every history on the population engine, returning
// P(defecting) aligned with the input. The trained classifier is read-only,
// so scoring shards freely; workers <= 0 means GOMAXPROCS.
func (b *Baseline) ScoreAll(histories []retail.History, workers int) []float64 {
	// fn never fails, so Map cannot return an error here.
	scores, err := population.Map(len(histories), population.Options{Workers: workers},
		func(i int) (float64, error) { return b.Score(histories[i]), nil })
	if err != nil {
		panic(err) // unreachable
	}
	return scores
}
