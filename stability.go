// Package stability is the public API of this repository: a from-scratch
// Go implementation of the customer-stability model for individual-level
// attrition detection and explanation in grocery retail, reproducing
//
//	Gautrais, Cellier, Guyet, Quiniou, Termier.
//	"Understanding Customer Attrition at an Individual Level:
//	 a New Model in Grocery Retail Context." EDBT 2016.
//
// The model scores each customer and time window with a stability value in
// [0,1]: 1 when every product the customer habitually buys showed up in the
// window, lower in proportion to the significance of the products that went
// missing. Unlike population-level churn scores (RFM), every decrease is
// attributable to concrete products — actionable knowledge for win-back
// campaigns.
//
// # Quick start
//
//	opts := stability.DefaultOptions()        // α = 2, as published
//	model, _ := stability.NewModel(opts)
//	grid, _ := stability.NewGrid(datasetStart, 2) // 2-month windows
//	series, _ := stability.AnalyzeHistory(model, history, grid, lastWindow)
//	for _, drop := range series.Drops(0.05, 3) {
//	    // drop.Blame lists the products whose absence explains the drop
//	}
//
// # Population scoring
//
// Scoring one customer at a time does not scale to retailer-sized
// populations. AnalyzePopulation shards the per-customer work across a
// worker pool while keeping results input-ordered and errors
// deterministic, so it is a drop-in replacement for the sequential loop:
//
//	series, _ := stability.AnalyzePopulation(model, histories, grid, lastWindow,
//	    stability.PopulationOptions{Workers: 8}) // 0 = GOMAXPROCS
//	for i, s := range series {
//	    // series[i] is histories[i]'s trajectory, identical at any worker count
//	    _ = s
//	}
//
// The heavy lifting lives in internal packages (core model, windowing
// engine, population engine, transaction store, taxonomy, RFM baseline,
// evaluation stack, synthetic data generator); this package re-exports the
// stable surface.
package stability

import (
	"time"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/population"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/window"
)

// Core model types, re-exported.
type (
	// Options parameterize the model (α, counting policy, blame cap).
	Options = core.Options
	// Model is the configured, stateless stability model.
	Model = core.Model
	// Tracker computes one customer's stability incrementally.
	Tracker = core.Tracker
	// Series is a customer's stability trajectory.
	Series = core.Series
	// Point is one window of a Series.
	Point = core.Point
	// Result describes one observed window.
	Result = core.Result
	// Blame attributes a stability decrease to a missing product.
	Blame = core.Blame
	// DropEvent is a detected stability decrease with blamed products.
	DropEvent = core.DropEvent
	// Detection is a β-thresholded loyal/defecting call.
	Detection = core.Detection
	// CountPolicy selects the prior-window counting convention.
	CountPolicy = core.CountPolicy
)

// Counting policies.
const (
	CountFromFirstSeen = core.CountFromFirstSeen
	CountFromOrigin    = core.CountFromOrigin
)

// Domain types, re-exported.
type (
	// ItemID identifies a product segment.
	ItemID = retail.ItemID
	// CustomerID identifies a customer.
	CustomerID = retail.CustomerID
	// Basket is a normalized set of items in one receipt.
	Basket = retail.Basket
	// Receipt is one timestamped store visit.
	Receipt = retail.Receipt
	// History is a customer's chronological receipt list.
	History = retail.History
	// Label is a ground-truth cohort record.
	Label = retail.Label
	// Cohort classifies a customer (loyal / defecting / unknown).
	Cohort = retail.Cohort
)

// Cohort values.
const (
	CohortUnknown   = retail.CohortUnknown
	CohortLoyal     = retail.CohortLoyal
	CohortDefecting = retail.CohortDefecting
)

// Windowing types, re-exported.
type (
	// Grid anchors span-sized windows at an origin.
	Grid = window.Grid
	// Span is a window length in calendar months.
	Span = window.Span
	// Window is one (tB, tE, uk) entry of a windowed database.
	Window = window.Window
	// Windowed is a customer's windowed database Dwi.
	Windowed = window.Windowed
)

// DefaultOptions returns the paper's published configuration (α = 2).
func DefaultOptions() Options { return core.DefaultOptions() }

// NewModel validates opts and builds a model.
func NewModel(opts Options) (*Model, error) { return core.New(opts) }

// NewTracker builds an incremental per-customer tracker.
func NewTracker(opts Options) (*Tracker, error) { return core.NewTracker(opts) }

// NewGrid anchors a window grid of the given span (in calendar months) at
// origin.
func NewGrid(origin time.Time, spanMonths int) (Grid, error) {
	return window.NewGrid(origin, window.Span{Months: spanMonths})
}

// Windowize cuts a history into its windowed database over grid g,
// materializing windows through index `through` (pass -1 for exactly the
// history's own range).
func Windowize(h History, g Grid, through int) (Windowed, error) {
	return window.Windowize(h, g, through)
}

// AnalyzeHistory windowizes a history and runs the model over it, returning
// the stability series with explanations.
func AnalyzeHistory(m *Model, h History, g Grid, through int) (Series, error) {
	wd, err := window.Windowize(h, g, through)
	if err != nil {
		return Series{}, err
	}
	return m.Analyze(wd)
}

// PopulationOptions tune population-scale analysis.
type PopulationOptions = population.Options

// AnalyzePopulation runs AnalyzeHistory over every history on the sharded
// population engine: per-customer work fans across opts.Workers goroutines
// (0 = GOMAXPROCS), results align with the input histories, and the first
// error — by input position, not goroutine timing — aborts the run. Output
// is identical to a sequential AnalyzeHistory loop at every worker count.
func AnalyzePopulation(m *Model, histories []History, g Grid, through int, opts PopulationOptions) ([]Series, error) {
	return population.Analyze(m, histories, g, through, opts)
}

// Detect applies the loyalty threshold β to a series: stability ≤ β means
// defecting at that window.
func Detect(s Series, beta float64) []Detection { return core.Detect(s, beta) }

// NewBasket normalizes raw item identifiers into a Basket.
func NewBasket(items []ItemID) Basket { return retail.NewBasket(items) }

// Significance returns the paper's S = α^(c−l) for c > 0, else 0.
func Significance(alpha float64, c, l int) float64 { return core.Significance(alpha, c, l) }
