package stability_test

import (
	"bytes"
	"math"
	"testing"
	"time"

	"github.com/gautrais/stability"
)

func mustModel(t *testing.T) *stability.Model {
	t.Helper()
	m, err := stability.NewModel(stability.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustGrid(t *testing.T, span int) stability.Grid {
	t.Helper()
	g, err := stability.NewGrid(time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), span)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFacadeAnalyzeHistory(t *testing.T) {
	g := mustGrid(t, 2)
	m := mustModel(t)
	h := stability.History{Customer: 1}
	for k := 0; k < 8; k++ {
		start, _ := g.Bounds(k)
		items := []stability.ItemID{1, 2}
		if k >= 5 {
			items = []stability.ItemID{1} // item 2 lost at window 5
		}
		h.Receipts = append(h.Receipts, stability.Receipt{
			Time:  start.AddDate(0, 0, 2),
			Items: stability.NewBasket(items),
			Spend: 5,
		})
	}
	s, err := stability.AnalyzeHistory(m, h, g, -1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 8 {
		t.Fatalf("series length = %d", s.Len())
	}
	v, ok := s.StabilityAt(4)
	if !ok || math.Abs(v-1) > 1e-12 {
		t.Fatalf("window 4 stability = %v", v)
	}
	v5, _ := s.StabilityAt(5)
	if v5 >= 1 {
		t.Fatalf("window 5 stability = %v, want < 1", v5)
	}
	drops := s.Drops(0.01, 1)
	if len(drops) == 0 || drops[0].Blame[0].Item != 2 {
		t.Fatalf("drops = %+v, want item 2 blamed", drops)
	}
	dets := stability.Detect(s, 0.9)
	if len(dets) != 8 {
		t.Fatalf("detections = %d", len(dets))
	}
}

func TestFacadeTracker(t *testing.T) {
	tr, err := stability.NewTracker(stability.Options{Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr.Observe(stability.NewBasket([]stability.ItemID{1, 2}))
	res := tr.Observe(stability.NewBasket([]stability.ItemID{1}))
	if math.Abs(res.Stability-0.5) > 1e-12 {
		t.Fatalf("stability = %v, want 0.5", res.Stability)
	}
}

func TestFacadeSignificance(t *testing.T) {
	if got := stability.Significance(2, 3, 1); got != 4 {
		t.Fatalf("Significance = %v", got)
	}
}

func TestFacadeSampleRoundTrip(t *testing.T) {
	cfg := stability.DefaultSampleConfig()
	cfg.Customers = 40
	cfg.Segments = 70
	cfg.ProductsPerSegment = 2
	ds, err := stability.GenerateSample(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Receipts CSV round trip through the facade.
	var buf bytes.Buffer
	if err := stability.WriteReceiptsCSV(&buf, ds.Store); err != nil {
		t.Fatal(err)
	}
	got, rep, err := stability.ReadReceiptsCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 0 || got.NumReceipts() != ds.Store.NumReceipts() {
		t.Fatalf("round trip: %+v, %d vs %d receipts", rep, got.NumReceipts(), ds.Store.NumReceipts())
	}

	// Snapshot round trip.
	buf.Reset()
	if err := stability.WriteSnapshot(&buf, ds.Store); err != nil {
		t.Fatal(err)
	}
	snap, err := stability.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumReceipts() != ds.Store.NumReceipts() {
		t.Fatal("snapshot round trip lost receipts")
	}

	// JSONL round trip.
	buf.Reset()
	if err := stability.WriteReceiptsJSONL(&buf, ds.Store); err != nil {
		t.Fatal(err)
	}
	jl, err := stability.ReadReceiptsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if jl.NumReceipts() != ds.Store.NumReceipts() {
		t.Fatal("jsonl round trip lost receipts")
	}

	// Labels round trip.
	buf.Reset()
	if err := stability.WriteLabelsCSV(&buf, ds.Truth.Labels()); err != nil {
		t.Fatal(err)
	}
	labels, err := stability.ReadLabelsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != cfg.Customers {
		t.Fatalf("labels = %d", len(labels))
	}

	// Catalog round trip.
	buf.Reset()
	if err := stability.WriteCatalogCSV(&buf, ds.Catalog); err != nil {
		t.Fatal(err)
	}
	cat, err := stability.ReadCatalogCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cat.NumSegments() != ds.Catalog.NumSegments() {
		t.Fatal("catalog round trip lost segments")
	}
}

func TestFacadeScenario(t *testing.T) {
	sc, err := stability.GenerateScenario(stability.DefaultScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := mustModel(t)
	g := mustGrid(t, 2)
	h, err := sc.Store.History(sc.Customer)
	if err != nil {
		t.Fatal(err)
	}
	s, err := stability.AnalyzeHistory(m, h, g, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Coffee is blamed at the window ending month 20 (grid index 9).
	p, ok := s.At(9)
	if !ok || len(p.Missing) == 0 {
		t.Fatalf("no blame at window 9: %+v", p)
	}
	coffee, err := sc.Catalog.SegmentByName("coffee")
	if err != nil {
		t.Fatal(err)
	}
	if p.Missing[0].Item != coffee.ID {
		t.Fatalf("window 9 blame = %v, want coffee (%d)", p.Missing[0].Item, coffee.ID)
	}
}

func TestFacadeAUROC(t *testing.T) {
	auc, err := stability.AUROC([]float64{0.9, 0.1}, []bool{true, false})
	if err != nil || auc != 1 {
		t.Fatalf("AUROC = %v, %v", auc, err)
	}
	curve, err := stability.ROC([]float64{0.9, 0.1}, []bool{true, false})
	if err != nil || len(curve) < 2 {
		t.Fatalf("ROC = %v, %v", curve, err)
	}
}

func TestFacadeBuilders(t *testing.T) {
	sb := stability.NewStoreBuilder()
	if err := sb.Add(1, time.Date(2012, 5, 1, 0, 0, 0, 0, time.UTC), []stability.ItemID{1}, 2); err != nil {
		t.Fatal(err)
	}
	if sb.Build().NumReceipts() != 1 {
		t.Fatal("builder lost receipt")
	}
	cb := stability.NewCatalogBuilder()
	seg, err := cb.AddSegment("milk", "dairy")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cb.AddProduct("milk 1L", seg, 1.2); err != nil {
		t.Fatal(err)
	}
	if cb.Build().NumSegments() != 1 {
		t.Fatal("catalog builder lost segment")
	}
}

func TestFacadeWindowize(t *testing.T) {
	g := mustGrid(t, 2)
	h := stability.History{Customer: 1, Receipts: []stability.Receipt{
		{Time: g.Origin().AddDate(0, 0, 3), Items: stability.NewBasket([]stability.ItemID{1})},
	}}
	wd, err := stability.Windowize(h, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if wd.Len() != 5 {
		t.Fatalf("windows = %d, want 5", wd.Len())
	}
}

func TestFacadeTrackerSnapshot(t *testing.T) {
	tr, err := stability.NewTracker(stability.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr.Observe(stability.NewBasket([]stability.ItemID{1, 2}))
	var buf bytes.Buffer
	if err := tr.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := stability.ReadTrackerSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Seen() != 2 {
		t.Fatalf("restored Seen = %d", restored.Seen())
	}
}

func TestFacadeCharacterize(t *testing.T) {
	g := mustGrid(t, 1)
	m := mustModel(t)
	h := stability.History{Customer: 1}
	for k := 0; k < 8; k++ {
		items := []stability.ItemID{1, 2, 3}
		if k >= 5 {
			items = []stability.ItemID{1, 2}
		}
		start, _ := g.Bounds(k)
		h.Receipts = append(h.Receipts, stability.Receipt{
			Time:  start.AddDate(0, 0, 1),
			Items: stability.NewBasket(items),
		})
	}
	rep, err := stability.Characterize(m, []stability.History{h}, g, 7, stability.DefaultCharacterizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.WithDrops != 1 || len(rep.PerSegment) == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.PerSegment[0].Segment != 3 {
		t.Fatalf("gateway segment = %d, want 3", rep.PerSegment[0].Segment)
	}
}

// TestEndToEndPipeline is the full public-API integration test: generate →
// persist → reload → analyze → evaluate, asserting the attrition signal
// survives the round trip.
func TestEndToEndPipeline(t *testing.T) {
	cfg := stability.DefaultSampleConfig()
	cfg.Customers = 150
	cfg.Segments = 80
	cfg.ProductsPerSegment = 2
	ds, err := stability.GenerateSample(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := stability.WriteSnapshot(&buf, ds.Store); err != nil {
		t.Fatal(err)
	}
	st, err := stability.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	m := mustModel(t)
	g := mustGrid(t, 2)
	evalK := (cfg.OnsetMonth+4)/2 - 1 // window ending onset+4

	var scores []float64
	var labels []bool
	for _, id := range st.Customers() {
		h, err := st.History(id)
		if err != nil {
			t.Fatal(err)
		}
		s, err := stability.AnalyzeHistory(m, h, g, evalK)
		if err != nil {
			t.Fatal(err)
		}
		v := 1.0
		if sv, ok := s.StabilityAt(evalK); ok {
			v = sv
		}
		scores = append(scores, 1-v)
		truth := ds.Truth.ByCustomer[id]
		labels = append(labels, truth != nil && truth.Label.Cohort == stability.CohortDefecting)
	}
	auc, err := stability.AUROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.75 {
		t.Fatalf("end-to-end AUROC at onset+4 = %v, want >= 0.75", auc)
	}
}
