// Paramsearch: select the model's α and window span on your own data the
// way the paper did — by cross-validated AUROC — using only the public API
// (model, grid, AUROC).
//
//	go run ./examples/paramsearch
package main

import (
	"fmt"
	"log"

	"github.com/gautrais/stability"
)

func main() {
	cfg := stability.DefaultSampleConfig()
	cfg.Customers = 300
	cfg.Seed = 11
	ds, err := stability.GenerateSample(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth labels -> evaluation arrays.
	ids := ds.Store.Customers()
	labels := make([]bool, len(ids))
	for i, id := range ids {
		t := ds.Truth.ByCustomer[id]
		labels[i] = t != nil && t.Label.Cohort == stability.CohortDefecting
	}
	targetMonth := cfg.OnsetMonth + 2 // detect within two months of onset

	alphas := []float64{1.25, 1.5, 2, 3, 4}
	spans := []int{1, 2, 3}
	fmt.Printf("grid search over alpha x window span (objective: AUROC at month %d)\n\n", targetMonth)
	fmt.Printf("%8s %8s %10s\n", "alpha", "span", "auroc")

	bestAUC, bestAlpha, bestSpan := -1.0, 0.0, 0
	for _, span := range spans {
		grid, err := stability.NewGrid(cfg.Start, span)
		if err != nil {
			log.Fatal(err)
		}
		// Evaluation window: the one ending at (or just after) the target.
		k := (targetMonth + span - 1) / span
		if k < 1 {
			k = 1
		}
		k--
		for _, alpha := range alphas {
			model, err := stability.NewModel(stability.Options{Alpha: alpha})
			if err != nil {
				log.Fatal(err)
			}
			scores := make([]float64, len(ids))
			for i, id := range ids {
				h, err := ds.Store.History(id)
				if err != nil {
					log.Fatal(err)
				}
				series, err := stability.AnalyzeHistory(model, h, grid, k)
				if err != nil {
					log.Fatal(err)
				}
				s := 1.0
				if v, ok := series.StabilityAt(k); ok {
					s = v
				}
				scores[i] = 1 - s // higher = more likely defecting
			}
			auc, err := stability.AUROC(scores, labels)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8.2f %8d %10.4f\n", alpha, span, auc)
			if auc > bestAUC {
				bestAUC, bestAlpha, bestSpan = auc, alpha, span
			}
		}
	}
	fmt.Printf("\nselected: alpha=%g span=%d months (AUROC %.4f); the paper selected alpha=2, span=2\n",
		bestAlpha, bestSpan, bestAUC)
}
