// Campaign: the retailer workflow the paper motivates — scan the whole
// customer base at the latest window, rank customers by stability, and for
// each at-risk customer list the significant products they stopped buying,
// producing a targeted win-back list ("target his marketing on significant
// products that this customer is not buying anymore").
//
//	go run ./examples/campaign
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"github.com/gautrais/stability"
)

type atRisk struct {
	id        stability.CustomerID
	stability float64
	missing   []string
}

func main() {
	cfg := stability.DefaultSampleConfig()
	cfg.Customers = 400
	cfg.Seed = 7
	ds, err := stability.GenerateSample(cfg)
	if err != nil {
		log.Fatal(err)
	}
	opts := stability.DefaultOptions()
	opts.MaxBlame = 3 // keep only the top blamed products per window
	model, err := stability.NewModel(opts)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := stability.NewGrid(cfg.Start, 2)
	if err != nil {
		log.Fatal(err)
	}
	lastWindow := cfg.Months/2 - 1

	var ranked []atRisk
	for _, id := range ds.Store.Customers() {
		h, err := ds.Store.History(id)
		if err != nil {
			log.Fatal(err)
		}
		series, err := stability.AnalyzeHistory(model, h, grid, lastWindow)
		if err != nil {
			log.Fatal(err)
		}
		p, ok := series.At(lastWindow)
		if !ok || !p.Defined {
			continue
		}
		entry := atRisk{id: id, stability: p.Stability}
		for _, b := range p.Missing {
			entry.missing = append(entry.missing, ds.Catalog.SegmentName(b.Item))
		}
		ranked = append(ranked, entry)
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].stability < ranked[j].stability })

	fmt.Printf("win-back campaign: %d customers scored at the latest window\n", len(ranked))
	fmt.Println("top 10 at-risk customers and the products to win them back with:")
	for i, r := range ranked {
		if i >= 10 {
			break
		}
		cohort := "?"
		if t, ok := ds.Truth.ByCustomer[r.id]; ok {
			cohort = t.Label.Cohort.String()
		}
		fmt.Printf("%2d. customer %-5d stability %.3f (truth: %-9s) promote: %s\n",
			i+1, r.id, r.stability, cohort, strings.Join(r.missing, ", "))
	}

	// Sanity summary: how many of the bottom decile are true defectors?
	decile := len(ranked) / 10
	defectors := 0
	for _, r := range ranked[:decile] {
		if t, ok := ds.Truth.ByCustomer[r.id]; ok && t.Label.Cohort == stability.CohortDefecting {
			defectors++
		}
	}
	fmt.Printf("\nbottom stability decile: %d/%d are ground-truth defectors\n", defectors, decile)
}
