// Streaming: monitor a live receipt feed and react to attrition alerts as
// they fire — the production deployment shape of the stability model. The
// example drives the sharded monitor from a dataset that GROWS while the
// monitor runs: a base horizon is generated and replayed as a
// point-of-sale stream, then the dataset is extended month by month
// (resuming each customer's simulation — the past is never re-simulated)
// and only the appended receipts are fed. The watermark advances at each
// window boundary so silent (defecting!) customers still get scored, and
// each alert prints the products to win the customer back with.
//
// Incremental consumption is lossless: at the end, the monitor state is
// byte-identical to a batch replay of the final dataset through a fresh
// monitor — the example checks the two SMN1 snapshots and says so.
//
//	go run ./examples/streaming
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"
	"strings"

	"github.com/gautrais/stability"
)

const (
	baseMonths   = 22 // generated up front (attrition onset is month 18)
	extraMonths  = 6  // appended one month at a time while monitoring
	monitorSpan  = 2  // window span in months
	monitorBeta  = 0.6
	monitorShard = 4
)

type event struct {
	id stability.CustomerID
	r  stability.Receipt
}

// feedOf flattens histories into one timestamp-ordered feed (ties keep
// ascending customer order, so the feed is deterministic).
func feedOf(histories []stability.History) []event {
	var feed []event
	for _, h := range histories {
		for _, r := range h.Receipts {
			feed = append(feed, event{h.Customer, r})
		}
	}
	sort.SliceStable(feed, func(i, j int) bool { return feed[i].r.Time.Before(feed[j].r.Time) })
	return feed
}

func main() {
	cfg := stability.DefaultSampleConfig()
	cfg.Customers = 120
	cfg.Seed = 5
	cfg.Months = baseMonths
	ds, err := stability.GenerateSample(cfg)
	if err != nil {
		log.Fatal(err)
	}

	grid, err := stability.NewGrid(cfg.Start, monitorSpan)
	if err != nil {
		log.Fatal(err)
	}
	monitorCfg := stability.MonitorConfig{
		Grid:          grid,
		Model:         stability.DefaultOptions(),
		Beta:          monitorBeta, // alert when stability falls to 0.6 or below
		TopJ:          3,
		WarmupWindows: 4, // no alerts until 8 months of history
	}
	monitor, err := stability.NewShardedMonitor(monitorCfg, stability.MonitorOptions{Shards: monitorShard})
	if err != nil {
		log.Fatal(err)
	}

	alertsTotal := 0
	trueAlerts := 0
	handle := func(alerts []stability.Alert) {
		for _, a := range alerts {
			alertsTotal++
			truth := ds.Truth.ByCustomer[a.Customer]
			verdict := "loyal?!"
			if truth != nil && truth.Label.Cohort == stability.CohortDefecting {
				verdict = "true defector"
				trueAlerts++
			}
			var names []string
			for _, b := range a.Blame {
				names = append(names, ds.Catalog.SegmentName(b.Item))
			}
			if alertsTotal <= 12 { // print the first few, summarize the rest
				fmt.Printf("ALERT %s customer %-4d stability %.2f (%s) win-back: %s\n",
					a.End.Format("2006-01"), a.Customer, a.Stability, verdict, strings.Join(names, ", "))
			}
		}
	}

	// ingest replays a feed slice, advancing the watermark at each window
	// boundary: the CloseThrough barrier drains every shard, scores
	// customers silent for a whole window (their silence is the signal),
	// and surfaces any ingest error from the batch.
	lastK := 0
	ingest := func(feed []event) {
		for _, ev := range feed {
			if k := grid.Index(ev.r.Time); k > lastK {
				alerts, err := monitor.CloseThrough(k - 1)
				if err != nil {
					log.Fatal(err)
				}
				handle(alerts)
				lastK = k
			}
			if err := monitor.Ingest(ev.id, ev.r.Time, ev.r.Items); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Phase 1: replay the base horizon as a live feed.
	base, err := ds.Store.DeltaSince(nil)
	if err != nil {
		log.Fatal(err)
	}
	baseFeed := feedOf(base)
	fmt.Printf("replaying %d receipts from %d customers as a live feed across %d shards\n\n",
		len(baseFeed), cfg.Customers, monitor.Shards())
	ingest(baseFeed)

	// Phase 2: the dataset keeps growing underneath the monitor. Each
	// month, the simulation resumes from its checkpoint (bit-identical to
	// having generated the longer horizon up front) and only the appended
	// receipts — DeltaSince against the previous frozen store — are fed.
	for m := 0; m < extraMonths; m++ {
		prev := ds.Store
		if err := stability.ExtendSample(ds, 1, stability.SampleOptions{}); err != nil {
			log.Fatal(err)
		}
		delta, err := ds.Store.DeltaSince(prev)
		if err != nil {
			log.Fatal(err)
		}
		newFeed := feedOf(delta)
		fmt.Printf("-- month %d appended: %d new receipts\n", ds.Config.Months, len(newFeed))
		ingest(newFeed)
	}

	// Close every window the final horizon covers.
	finalK := grid.Index(ds.Config.End().AddDate(0, 0, -1))
	alerts, err := monitor.CloseThrough(finalK)
	if err != nil {
		log.Fatal(err)
	}
	handle(alerts)
	var incremental bytes.Buffer
	if err := monitor.WriteSnapshot(&incremental); err != nil {
		log.Fatal(err)
	}
	if _, err := monitor.Close(); err != nil {
		log.Fatal(err)
	}

	// Cross-check: a batch replay of the final store through a fresh
	// monitor must land in exactly the same state.
	batchSnap, batchAlerts := batchReplay(monitorCfg, grid, ds, finalK)
	if !bytes.Equal(incremental.Bytes(), batchSnap) {
		log.Fatal("incremental replay snapshot diverged from batch replay of the final store")
	}
	if alertsTotal != batchAlerts {
		log.Fatalf("alert counts diverged: incremental %d, batch %d", alertsTotal, batchAlerts)
	}
	fmt.Printf("\nincremental replay == batch replay of the final store: true (%d alerts each)\n", alertsTotal)

	if alertsTotal == 0 {
		fmt.Println("no alerts fired")
		return
	}
	fmt.Printf("%d alerts total; %d (%.0f%%) were ground-truth defectors\n",
		alertsTotal, trueAlerts, 100*float64(trueAlerts)/float64(alertsTotal))
}

// batchReplay feeds the complete final store through a fresh monitor in
// one pass and returns its snapshot bytes and alert count.
func batchReplay(cfg stability.MonitorConfig, grid stability.Grid, ds *stability.SampleDataset, finalK int) ([]byte, int) {
	monitor, err := stability.NewShardedMonitor(cfg, stability.MonitorOptions{Shards: 1})
	if err != nil {
		log.Fatal(err)
	}
	all, err := ds.Store.DeltaSince(nil)
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	lastK := 0
	for _, ev := range feedOf(all) {
		if k := grid.Index(ev.r.Time); k > lastK {
			alerts, err := monitor.CloseThrough(k - 1)
			if err != nil {
				log.Fatal(err)
			}
			count += len(alerts)
			lastK = k
		}
		if err := monitor.Ingest(ev.id, ev.r.Time, ev.r.Items); err != nil {
			log.Fatal(err)
		}
	}
	alerts, err := monitor.CloseThrough(finalK)
	if err != nil {
		log.Fatal(err)
	}
	count += len(alerts)
	var snap bytes.Buffer
	if err := monitor.WriteSnapshot(&snap); err != nil {
		log.Fatal(err)
	}
	if _, err := monitor.Close(); err != nil {
		log.Fatal(err)
	}
	return snap.Bytes(), count
}
