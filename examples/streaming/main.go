// Streaming: monitor a live receipt feed and react to attrition alerts as
// they fire — the production deployment shape of the stability model. The
// example replays a generated dataset in timestamp order as if it were a
// point-of-sale stream through the sharded monitor (receipts fan out across
// customer-hash shards, one goroutine each, so ingestion scales with cores),
// advances the watermark at each window boundary so silent (defecting!)
// customers still get scored, and prints each alert with the products to win
// the customer back with. Alerts arrive at the watermark barriers in
// (window, customer) order — identical output for any shard count.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"github.com/gautrais/stability"
)

func main() {
	cfg := stability.DefaultSampleConfig()
	cfg.Customers = 120
	cfg.Seed = 5
	ds, err := stability.GenerateSample(cfg)
	if err != nil {
		log.Fatal(err)
	}

	grid, err := stability.NewGrid(cfg.Start, 2)
	if err != nil {
		log.Fatal(err)
	}
	monitor, err := stability.NewShardedMonitor(stability.MonitorConfig{
		Grid:          grid,
		Model:         stability.DefaultOptions(),
		Beta:          0.6, // alert when stability falls to 0.6 or below
		TopJ:          3,
		WarmupWindows: 4, // no alerts until 8 months of history
	}, stability.MonitorOptions{Shards: 4}) // 0 = one shard per core
	if err != nil {
		log.Fatal(err)
	}

	// Flatten the dataset into one timestamp-ordered feed.
	type event struct {
		id stability.CustomerID
		r  stability.Receipt
	}
	var feed []event
	for _, id := range ds.Store.Customers() {
		h, err := ds.Store.History(id)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range h.Receipts {
			feed = append(feed, event{id, r})
		}
	}
	sort.Slice(feed, func(i, j int) bool { return feed[i].r.Time.Before(feed[j].r.Time) })
	fmt.Printf("replaying %d receipts from %d customers as a live feed across %d shards\n\n",
		len(feed), cfg.Customers, monitor.Shards())

	alertsTotal := 0
	trueAlerts := 0
	handle := func(alerts []stability.Alert) {
		for _, a := range alerts {
			alertsTotal++
			truth := ds.Truth.ByCustomer[a.Customer]
			verdict := "loyal?!"
			if truth != nil && truth.Label.Cohort == stability.CohortDefecting {
				verdict = "true defector"
				trueAlerts++
			}
			var names []string
			for _, b := range a.Blame {
				names = append(names, ds.Catalog.SegmentName(b.Item))
			}
			if alertsTotal <= 12 { // print the first few, summarize the rest
				fmt.Printf("ALERT %s customer %-4d stability %.2f (%s) win-back: %s\n",
					a.End.Format("2006-01"), a.Customer, a.Stability, verdict, strings.Join(names, ", "))
			}
		}
	}

	// Advance the watermark at window boundaries: the CloseThrough barrier
	// drains every shard, scores customers silent for a whole window (their
	// silence is the signal), and surfaces any ingest error from the batch.
	lastK := 0
	for _, ev := range feed {
		if k := grid.Index(ev.r.Time); k > lastK {
			alerts, err := monitor.CloseThrough(k - 1)
			if err != nil {
				log.Fatal(err)
			}
			handle(alerts)
			lastK = k
		}
		if err := monitor.Ingest(ev.id, ev.r.Time, ev.r.Items); err != nil {
			log.Fatal(err)
		}
	}
	alerts, err := monitor.CloseThrough(cfg.Months/2 - 1)
	if err != nil {
		log.Fatal(err)
	}
	handle(alerts)
	if _, err := monitor.Close(); err != nil {
		log.Fatal(err)
	}

	if alertsTotal == 0 {
		fmt.Println("\nno alerts fired")
		return
	}
	fmt.Printf("\n%d alerts total; %d (%.0f%%) were ground-truth defectors\n",
		alertsTotal, trueAlerts, 100*float64(trueAlerts)/float64(alertsTotal))
}
