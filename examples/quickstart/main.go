// Quickstart: generate a small labelled dataset, run the stability model on
// one defecting customer, and print the trace with explanations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/gautrais/stability"
)

func main() {
	// 1. A small synthetic dataset (substitute for real receipt data):
	//    200 customers over the paper's 28-month timeline, half of whom
	//    begin partial attrition at month 18.
	cfg := stability.DefaultSampleConfig()
	cfg.Customers = 200
	cfg.Seed = 2024
	ds, err := stability.GenerateSample(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d customers, %d receipts\n", ds.Store.NumCustomers(), ds.Store.NumReceipts())

	// 2. The model, configured as published: α = 2, 2-month windows.
	model, err := stability.NewModel(stability.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	grid, err := stability.NewGrid(cfg.Start, 2)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Pick the first ground-truth defector and analyze them.
	defectors := ds.Truth.Defectors()
	id := defectors[0]
	history, err := ds.Store.History(id)
	if err != nil {
		log.Fatal(err)
	}
	lastWindow := cfg.Months/2 - 1
	series, err := stability.AnalyzeHistory(model, history, grid, lastWindow)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncustomer %d (defecting since month %d) — stability per 2-month window:\n",
		id, ds.Truth.ByCustomer[id].Label.OnsetMonth)
	for _, p := range series.Points {
		bar := int(p.Stability * 40)
		fmt.Printf("  window %2d (ends month %2d)  %.3f  %s\n",
			p.GridIndex, (p.GridIndex+1)*2, p.Stability, stars(bar))
	}

	// 4. Explain the drops: which products went missing?
	fmt.Println("\nstability drops and blamed segments:")
	for _, d := range series.Drops(0.05, 3) {
		fmt.Printf("  window %d: %.3f -> %.3f, missing:", d.GridIndex, d.From, d.To)
		for _, b := range d.Blame {
			fmt.Printf(" %s(share %.2f)", ds.Catalog.SegmentName(b.Item), b.Share)
		}
		fmt.Println()
	}

	// 5. Threshold detection: which windows look defecting at β = 0.7?
	flagged := 0
	for _, det := range stability.Detect(series, 0.7) {
		if det.Defecting {
			flagged++
		}
	}
	fmt.Printf("\nwindows flagged as defecting at beta=0.7: %d of %d\n", flagged, series.Len())
}

func stars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
