// Explanation: replay the paper's Figure-2 use case — a loyal customer
// whose stability trace reveals, window by window, exactly which products
// they stopped buying (coffee at month 20; milk, sponge and cheese at
// month 22).
//
//	go run ./examples/explanation
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/gautrais/stability"
)

func main() {
	sc, err := stability.GenerateScenario(stability.DefaultScenarioConfig())
	if err != nil {
		log.Fatal(err)
	}
	model, err := stability.NewModel(stability.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	grid, err := stability.NewGrid(sc.Grid.Start, 2)
	if err != nil {
		log.Fatal(err)
	}
	history, err := sc.Store.History(sc.Customer)
	if err != nil {
		log.Fatal(err)
	}
	series, err := stability.AnalyzeHistory(model, history, grid, sc.Grid.Months/2-1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("stability trace (x = window end month):")
	for _, p := range series.Points {
		month := (p.GridIndex + 1) * 2
		fmt.Printf("  month %2d: %.3f\n", month, p.Stability)
	}

	fmt.Println("\ndiagnosis:")
	for _, d := range series.Drops(0.03, 3) {
		month := (d.GridIndex + 1) * 2
		var names []string
		for _, b := range d.Blame {
			names = append(names, sc.Catalog.SegmentName(b.Item))
		}
		fmt.Printf("  month %2d: stability fell %.3f -> %.3f because the customer stopped buying %s\n",
			month, d.From, d.To, strings.Join(names, ", "))
	}

	fmt.Println("\nscripted ground truth:")
	for _, d := range sc.Drops {
		fmt.Printf("  month %2d: stopped buying %s\n", d.Month, strings.Join(d.Segments, ", "))
	}
}
