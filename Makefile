# Tier-1 verification and repo tooling. `make verify` is the gate every
# change must pass; it is exactly what CI and the roadmap call tier-1.
# `make ci` chains the same targets the GitHub workflow runs, in the same
# order, so a local pass and a CI pass cannot drift.

GO ?= go

.PHONY: verify build test lint race bench bench-smoke ci

ci: verify lint race bench-smoke ## everything .github/workflows/ci.yml runs

verify: build test ## tier-1: go build ./... && go test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint: ## gofmt cleanliness + go vet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

race: ## race-detector pass over the concurrent packages
	$(GO) test -race ./internal/population ./internal/segments ./internal/experiments ./internal/stream

bench: ## full benchmark suite (population + shard sweeps included)
	$(GO) test -run '^$$' -bench . -benchmem .

bench-smoke: ## one iteration of every benchmark, so benches can't bit-rot
	$(GO) test -run '^$$' -bench . -benchtime 1x .
