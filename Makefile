# Tier-1 verification and repo tooling. `make verify` is the gate every
# change must pass; it is exactly what CI and the roadmap call tier-1.

GO ?= go

.PHONY: verify build test lint race bench

verify: build test ## tier-1: go build ./... && go test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint: ## gofmt cleanliness + go vet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

race: ## race-detector pass over the concurrent packages
	$(GO) test -race ./internal/population ./internal/segments ./internal/experiments ./internal/stream

bench: ## full benchmark suite (population sweep included)
	$(GO) test -run '^$$' -bench . -benchmem .
