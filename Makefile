# Tier-1 verification and repo tooling. `make verify` is the gate every
# change must pass; it is exactly what CI and the roadmap call tier-1.
# `make ci` chains the same targets the GitHub workflow runs, in the same
# order, so a local pass and a CI pass cannot drift.

GO ?= go
# Benchtime for bench-json: 1s for a real baseline, overridden to 1x by
# bench-smoke so CI gets a structural artifact without the full cost.
BENCHTIME ?= 1s
# Output of bench-json. bench-smoke redirects it to BENCH_SMOKE.json
# (untracked) so a smoke run can never clobber the checked-in 1s baseline
# BENCH_PR10.json with single-iteration noise. BENCH_PR3/PR4/PR5/PR7.json
# are kept for the perf trajectory.
BENCHJSON_OUT ?= BENCH_PR10.json
# Baseline bench-diff compares against, and the regression thresholds.
# Smoke runs are single-iteration, so the defaults are deliberately loose:
# the diff is a tripwire for order-of-magnitude regressions and alloc-count
# jumps, not a timing oracle (diff two 1s bench-json runs for that).
BENCH_BASELINE ?= BENCH_PR10.json
BENCH_DIFF_THRESHOLD ?= 1.0
BENCH_DIFF_ALLOCS_THRESHOLD ?= 0.25

# Coverage gate for `make cover`. The module sits at ~83% total today;
# the floor trips if a PR drops it below 80%.
COVER_PROFILE ?= cover.out
COVER_FLOOR ?= 80

# Profile capture knobs: which benchmark `make profile` drives and for how
# long. The default targets the tracker inner loop — the profile that
# motivated the SigTable underflow shortcut (see DESIGN.md).
PROFILE_BENCH ?= BenchmarkTrackerObserve
PROFILE_TIME ?= 2s

.PHONY: verify build test lint detlint detlint-json race cover bench bench-smoke bench-json bench-diff profile loadtest loadtest-evict loadtest-follow loadtest-query fault-log clean ci

ci: verify lint race cover bench-smoke loadtest loadtest-evict loadtest-follow loadtest-query fault-log ## everything .github/workflows/ci.yml runs

verify: build test ## tier-1: go build ./... && go test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# internal/lint/testdata holds detlint fixture packages that are
# intentionally non-idiomatic (one is deliberately unformatted); the go
# tool already ignores testdata directories for vet/build, and the gofmt
# sweep filters them out the same way. Real code keeps full coverage.
lint: ## gofmt cleanliness + go vet + detlint determinism contract
	@out="$$(gofmt -l . | grep -v '^internal/lint/testdata/' || true)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/detlint ./...

detlint: ## static determinism-contract check (R1-R5), human-readable
	$(GO) run ./cmd/detlint ./...

detlint-json: ## detlint findings as detlint.json (CI artifact); still exits non-zero on findings
	@$(GO) run ./cmd/detlint -json ./... > detlint.json; rc=$$?; \
	echo "wrote detlint.json"; exit $$rc

race: ## race-detector pass over the whole module
	$(GO) test -race ./...

cover: ## module-wide coverage profile with a total-coverage floor
	$(GO) test -coverprofile=$(COVER_PROFILE) ./...
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t + 0 < f + 0) ? 1 : 0 }' || \
		{ echo "coverage below floor"; exit 1; }

bench: ## full benchmark suite (population + shard sweeps included)
	$(GO) test -run '^$$' -bench . -benchmem .

bench-smoke: ## one iteration of every benchmark (emits BENCH_SMOKE.json), so benches can't bit-rot
	$(MAKE) bench-json BENCHTIME=1x BENCHJSON_OUT=BENCH_SMOKE.json

bench-json: ## machine-readable benchmark results -> $(BENCHJSON_OUT)
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) . > bench-raw.out
	$(GO) run ./cmd/benchjson < bench-raw.out > $(BENCHJSON_OUT).tmp
	@mv $(BENCHJSON_OUT).tmp $(BENCHJSON_OUT)
	@rm -f bench-raw.out
	@echo "wrote $(BENCHJSON_OUT)"

loadtest: ## attritiond smoke load test: in-process daemon, concurrent replay, exact verification vs a sequential Monitor
	$(GO) run ./cmd/loadgen -customers 120 -months 16 -conns 4 -batch 150 -queries 300

loadtest-evict: ## loadtest with a retention horizon + TTL sweeps: -churn silences customers so evictions actually fire, and the eviction counters must match the sequential replay exactly
	$(GO) run ./cmd/loadgen -customers 120 -months 24 -conns 4 -batch 150 -queries 300 \
		-retention 2 -ttl-interval 5ms -churn 0.3

loadtest-follow: ## loadtest in follow mode: loadgen appends STB1 segments, the daemon tails them, the chain is compacted mid-tail (live resync), and verification stays exact
	$(GO) run ./cmd/loadgen -customers 120 -months 16 -batch 150 -queries 300 -follow

loadtest-query: ## loadtest with batch stability queries interleaved at every month barrier, each answer exact-verified against a shadow sequential replay
	$(GO) run ./cmd/loadgen -customers 120 -months 16 -conns 4 -batch 150 -queries 300 -query-mix

profile: ## capture cpu.pprof + heap.pprof from $(PROFILE_BENCH); inspect with `go tool pprof cpu.pprof`
	$(GO) test -run '^$$' -bench '$(PROFILE_BENCH)' -benchtime $(PROFILE_TIME) \
		-cpuprofile cpu.pprof -memprofile heap.pprof -o profile-bench.test .
	@echo "wrote cpu.pprof, heap.pprof (binary: profile-bench.test)"

fault-log: ## verbose fault-injection + crash-recovery test log -> faultlog.txt (CI artifact); still exits non-zero on failure
	@$(GO) test -v -count=1 \
		-run 'Crash|Fault|Injector|TornTail|Corrupt|Truncat|StaleTmp|Shrunk|Resync|Panic|Degrad' \
		./internal/faultfs/ ./internal/store/ ./internal/stream/ ./internal/serve/ > faultlog.txt; rc=$$?; \
	echo "wrote faultlog.txt"; exit $$rc

clean: ## drop generated/untracked artifacts (coverage, smoke benches, lint + fault logs) and the Go build cache for this module
	$(GO) clean ./...
	rm -f $(COVER_PROFILE) BENCH_SMOKE.json bench-raw.out bench-diff.txt detlint.json faultlog.txt
	rm -f BENCH_PR*.json.tmp BENCH_SMOKE.json.tmp
	rm -f cpu.pprof heap.pprof profile-bench.test

bench-diff: ## diff smoke results (regenerated when absent) against $(BENCH_BASELINE); writes bench-diff.txt, exits non-zero on regression
	@test -f BENCH_SMOKE.json || $(MAKE) bench-smoke
	@$(GO) run ./cmd/benchjson diff \
		-threshold $(BENCH_DIFF_THRESHOLD) -allocs-threshold $(BENCH_DIFF_ALLOCS_THRESHOLD) \
		$(BENCH_BASELINE) BENCH_SMOKE.json > bench-diff.txt; \
	rc=$$?; cat bench-diff.txt; exit $$rc
