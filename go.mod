module github.com/gautrais/stability

go 1.22
