package stability

import (
	"io"

	"github.com/gautrais/stability/internal/eval"
	"github.com/gautrais/stability/internal/store"
	"github.com/gautrais/stability/internal/taxonomy"
)

// Storage types, re-exported.
type (
	// Store is an immutable set of customer purchase histories.
	Store = store.Store
	// StoreBuilder accumulates receipts into a Store.
	StoreBuilder = store.Builder
	// Catalog is the product taxonomy (products → segments → departments).
	Catalog = taxonomy.Catalog
	// CatalogBuilder assembles a Catalog.
	CatalogBuilder = taxonomy.Builder
	// Segment is a product segment.
	Segment = taxonomy.Segment
	// Product is one SKU.
	Product = taxonomy.Product
	// ProductID identifies one SKU.
	ProductID = taxonomy.ProductID
	// StoreStats summarizes a dataset.
	StoreStats = store.Stats
)

// NewStoreBuilder returns an empty transaction-store builder.
func NewStoreBuilder() *StoreBuilder { return store.NewBuilder() }

// NewCatalogBuilder returns an empty taxonomy builder.
func NewCatalogBuilder() *CatalogBuilder { return taxonomy.NewBuilder() }

// ReadReceiptsCSV parses the receipt CSV format
// (customer,timestamp,spend,items with "|"-separated segment ids). With
// strict=false, malformed rows are skipped and counted in the report.
func ReadReceiptsCSV(r io.Reader, strict bool) (*Store, store.CSVReport, error) {
	return store.ReadCSV(r, store.CSVOptions{Strict: strict})
}

// WriteReceiptsCSV serializes a store in the receipt CSV format.
func WriteReceiptsCSV(w io.Writer, s *Store) error { return s.WriteCSV(w) }

// ReadReceiptsJSONL parses the JSONL receipt export.
func ReadReceiptsJSONL(r io.Reader) (*Store, error) { return store.ReadJSONL(r) }

// WriteReceiptsJSONL serializes a store as one JSON object per receipt.
func WriteReceiptsJSONL(w io.Writer, s *Store) error { return s.WriteJSONL(w) }

// ReadSnapshot parses the compact binary snapshot format.
func ReadSnapshot(r io.Reader) (*Store, error) { return store.ReadBinary(r) }

// WriteSnapshot serializes a store in the compact binary snapshot format.
func WriteSnapshot(w io.Writer, s *Store) error { return s.WriteBinary(w) }

// ReadLabelsCSV parses cohort labels (customer,cohort,onset_month).
func ReadLabelsCSV(r io.Reader) ([]Label, error) { return store.ReadLabelsCSV(r) }

// WriteLabelsCSV serializes cohort labels.
func WriteLabelsCSV(w io.Writer, labels []Label) error { return store.WriteLabelsCSV(w, labels) }

// ReadCatalogCSV parses a taxonomy catalog export.
func ReadCatalogCSV(r io.Reader) (*Catalog, error) { return taxonomy.ReadCSV(r) }

// WriteCatalogCSV serializes a taxonomy catalog.
func WriteCatalogCSV(w io.Writer, c *Catalog) error { return c.WriteCSV(w) }

// AUROC computes the area under the ROC curve of scores against labels
// (true = positive class, higher scores = more positive).
func AUROC(scores []float64, labels []bool) (float64, error) {
	return eval.AUROC(scores, labels)
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint = eval.ROCPoint

// ROC computes the full ROC curve.
func ROC(scores []float64, labels []bool) ([]ROCPoint, error) {
	return eval.ROC(scores, labels)
}
