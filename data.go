package stability

import (
	"io"
	"strings"
	"time"

	"github.com/gautrais/stability/internal/eval"
	"github.com/gautrais/stability/internal/store"
	"github.com/gautrais/stability/internal/taxonomy"
)

// Storage types, re-exported.
type (
	// Store is an immutable set of customer purchase histories.
	Store = store.Store
	// StoreBuilder accumulates receipts into a Store.
	StoreBuilder = store.Builder
	// Catalog is the product taxonomy (products → segments → departments).
	Catalog = taxonomy.Catalog
	// CatalogBuilder assembles a Catalog.
	CatalogBuilder = taxonomy.Builder
	// Segment is a product segment.
	Segment = taxonomy.Segment
	// Product is one SKU.
	Product = taxonomy.Product
	// ProductID identifies one SKU.
	ProductID = taxonomy.ProductID
	// StoreStats summarizes a dataset.
	StoreStats = store.Stats
)

// NewStoreBuilder returns an empty transaction-store builder.
func NewStoreBuilder() *StoreBuilder { return store.NewBuilder() }

// NewCatalogBuilder returns an empty taxonomy builder.
func NewCatalogBuilder() *CatalogBuilder { return taxonomy.NewBuilder() }

// ReadReceiptsCSV parses the receipt CSV format
// (customer,timestamp,spend,items with "|"-separated segment ids). With
// strict=false, malformed rows are skipped and counted in the report.
func ReadReceiptsCSV(r io.Reader, strict bool) (*Store, store.CSVReport, error) {
	return store.ReadCSV(r, store.CSVOptions{Strict: strict})
}

// WriteReceiptsCSV serializes a store in the receipt CSV format.
func WriteReceiptsCSV(w io.Writer, s *Store) error { return s.WriteCSV(w) }

// ReadReceiptsJSONL parses the JSONL receipt export.
func ReadReceiptsJSONL(r io.Reader) (*Store, error) { return store.ReadJSONL(r) }

// WriteReceiptsJSONL serializes a store as one JSON object per receipt.
func WriteReceiptsJSONL(w io.Writer, s *Store) error { return s.WriteJSONL(w) }

// ReadSnapshot parses the compact binary snapshot format, including files
// grown by appending delta segments (WriteSnapshotDelta).
func ReadSnapshot(r io.Reader) (*Store, error) { return store.ReadBinary(r) }

// WriteSnapshot serializes a store in the compact binary snapshot format.
func WriteSnapshot(w io.Writer, s *Store) error { return s.WriteBinary(w) }

// WriteReceiptsCSVDelta writes only the receipts s holds beyond prev as
// header-less CSV rows: appending them to a file that decodes to prev
// yields a file that decodes to s. s must extend prev (same receipts, new
// ones appended per customer), which is what ExtendSample produces.
func WriteReceiptsCSVDelta(w io.Writer, s, prev *Store) error { return s.WriteCSVDelta(w, prev) }

// WriteReceiptsJSONLDelta writes only the receipts s holds beyond prev as
// JSONL lines, for appending to an existing export. s must extend prev.
func WriteReceiptsJSONLDelta(w io.Writer, s, prev *Store) error { return s.WriteJSONLDelta(w, prev) }

// WriteSnapshotDelta writes only the receipts s holds beyond prev as one
// binary snapshot segment, for appending to an existing snapshot file —
// the existing bytes are never rewritten. s must extend prev.
func WriteSnapshotDelta(w io.Writer, s, prev *Store) error { return s.WriteBinaryDelta(w, prev) }

// CompactStats reports what one CompactSnapshotFile call did.
type CompactStats = store.CompactStats

// CompactSnapshotFile rewrites the snapshot segment chain at path as one
// segment, evicting receipts before cutoff first (zero cutoff keeps all).
// The result is byte-identical to a from-scratch WriteSnapshot of the
// surviving receipts, and the rewrite is crash-safe (temp + fsync +
// rename): a crash leaves either the old chain or the new file, never a
// partial one.
func CompactSnapshotFile(path string, cutoff time.Time) (CompactStats, error) {
	return store.CompactFile(nil, path, cutoff)
}

// SnapshotFollower tails a growing snapshot segment chain by polling,
// tolerating torn (mid-append) tails. See store.Follower.
type SnapshotFollower = store.Follower

// NewSnapshotFollower returns a follower positioned at the start of path.
// The file need not exist yet; polls report nothing until it does.
func NewSnapshotFollower(path string) *SnapshotFollower { return store.NewFollower(nil, path) }

// ErrSnapshotShrank is returned by SnapshotFollower.Poll when the followed
// file got smaller (compacted or replaced); the follower must resync.
var ErrSnapshotShrank = store.ErrFileShrank

// ReceiptFormat bundles one receipt codec's operations, keyed both by
// format name (datagen's -formats list) and by path suffix (attrition's
// -data/-out dispatch). Keeping the triples in one table means a format's
// read, write and delta-append paths can never drift apart per call site.
type ReceiptFormat struct {
	// Name keys the format in format lists ("csv", "jsonl", "bin").
	Name string
	// File is the conventional file name in a dataset directory.
	File string
	// Extensions are the path suffixes that select this format.
	Extensions []string
	// Read parses a complete file strictly (the CSV codec also has a
	// lenient mode via ReadReceiptsCSV for hand-edited files).
	Read func(r io.Reader) (*Store, error)
	// Write serializes a full store.
	Write func(w io.Writer, s *Store) error
	// WriteDelta appends only the receipts cur holds beyond prev.
	WriteDelta func(w io.Writer, cur, prev *Store) error
}

// ReceiptFormats lists every supported receipt codec.
func ReceiptFormats() []ReceiptFormat {
	return []ReceiptFormat{
		{
			Name:       "csv",
			File:       "receipts.csv",
			Extensions: []string{".csv"},
			Read: func(r io.Reader) (*Store, error) {
				st, _, err := ReadReceiptsCSV(r, true)
				return st, err
			},
			Write:      WriteReceiptsCSV,
			WriteDelta: WriteReceiptsCSVDelta,
		},
		{
			Name:       "jsonl",
			File:       "receipts.jsonl",
			Extensions: []string{".jsonl"},
			Read:       ReadReceiptsJSONL,
			Write:      WriteReceiptsJSONL,
			WriteDelta: WriteReceiptsJSONLDelta,
		},
		{
			Name:       "bin",
			File:       "receipts.stb",
			Extensions: []string{".stb", ".bin"},
			Read:       ReadSnapshot,
			Write:      WriteSnapshot,
			WriteDelta: WriteSnapshotDelta,
		},
	}
}

// ReceiptFormatNamed returns the format a -formats list entry names.
func ReceiptFormatNamed(name string) (ReceiptFormat, bool) {
	for _, f := range ReceiptFormats() {
		if f.Name == name {
			return f, true
		}
	}
	return ReceiptFormat{}, false
}

// ReceiptFormatForPath returns the format a path's suffix selects,
// defaulting to CSV.
func ReceiptFormatForPath(path string) ReceiptFormat {
	formats := ReceiptFormats()
	for _, f := range formats {
		for _, ext := range f.Extensions {
			if strings.HasSuffix(path, ext) {
				return f
			}
		}
	}
	return formats[0]
}

// ReadLabelsCSV parses cohort labels (customer,cohort,onset_month).
func ReadLabelsCSV(r io.Reader) ([]Label, error) { return store.ReadLabelsCSV(r) }

// WriteLabelsCSV serializes cohort labels.
func WriteLabelsCSV(w io.Writer, labels []Label) error { return store.WriteLabelsCSV(w, labels) }

// ReadCatalogCSV parses a taxonomy catalog export.
func ReadCatalogCSV(r io.Reader) (*Catalog, error) { return taxonomy.ReadCSV(r) }

// WriteCatalogCSV serializes a taxonomy catalog.
func WriteCatalogCSV(w io.Writer, c *Catalog) error { return c.WriteCSV(w) }

// AUROC computes the area under the ROC curve of scores against labels
// (true = positive class, higher scores = more positive).
func AUROC(scores []float64, labels []bool) (float64, error) {
	return eval.AUROC(scores, labels)
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint = eval.ROCPoint

// ROC computes the full ROC curve.
func ROC(scores []float64, labels []bool) ([]ROCPoint, error) {
	return eval.ROC(scores, labels)
}
