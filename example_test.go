package stability_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"github.com/gautrais/stability"
)

// windowGrid builds the timeline used throughout the examples: the paper's
// May-2012 dataset start with 2-month windows.
func exampleGrid() stability.Grid {
	g, err := stability.NewGrid(time.Date(2012, time.May, 1, 0, 0, 0, 0, time.UTC), 2)
	if err != nil {
		panic(err)
	}
	return g
}

// ExampleTracker walks the significance arithmetic on a two-item history —
// the numbers match the worked example in the package documentation.
func ExampleTracker() {
	tracker, err := stability.NewTracker(stability.Options{Alpha: 2})
	if err != nil {
		panic(err)
	}
	// Window 0: first sight of both items — no prior history to judge by.
	r := tracker.Observe(stability.NewBasket([]stability.ItemID{1, 2}))
	fmt.Printf("window 0: stability %.2f (defined %v)\n", r.Stability, r.Defined)
	// Window 1: item 2 missing. Both items have S = 2^1, so losing one of
	// two equally-significant items halves the stability.
	r = tracker.Observe(stability.NewBasket([]stability.ItemID{1}))
	fmt.Printf("window 1: stability %.2f, missing item %d\n", r.Stability, r.Missing[0].Item)
	// Output:
	// window 0: stability 1.00 (defined false)
	// window 1: stability 0.50, missing item 2
}

// ExampleModel_Analyze scores a customer whose habitual item disappears,
// then reads the explanation off the drop event.
func ExampleModel_Analyze() {
	g := exampleGrid()
	model, err := stability.NewModel(stability.DefaultOptions())
	if err != nil {
		panic(err)
	}
	h := stability.History{Customer: 7}
	for k := 0; k < 8; k++ {
		items := []stability.ItemID{10, 20}
		if k >= 5 {
			items = []stability.ItemID{10} // item 20 lost from window 5 on
		}
		start, _ := g.Bounds(k)
		h.Receipts = append(h.Receipts, stability.Receipt{
			Time:  start.AddDate(0, 0, 3),
			Items: stability.NewBasket(items),
		})
	}
	series, err := stability.AnalyzeHistory(model, h, g, -1)
	if err != nil {
		panic(err)
	}
	for _, d := range series.Drops(0.05, 1) {
		fmt.Printf("drop at window %d: %.3f -> %.3f, blame item %d\n",
			d.GridIndex, d.From, d.To, d.Blame[0].Item)
	}
	// Output:
	// drop at window 5: 1.000 -> 0.500, blame item 20
}

// ExampleSignificance shows the paper's significance formula directly.
func ExampleSignificance() {
	// Bought in 3 of 4 prior windows: S = 2^(3-1) = 4.
	fmt.Println(stability.Significance(2, 3, 1))
	// Never bought: S = 0 regardless of misses.
	fmt.Println(stability.Significance(2, 0, 9))
	// Output:
	// 4
	// 0
}

// ExampleNewMonitor runs the streaming monitor over a hand-built feed and
// prints the alert it raises when a habitual product disappears.
func ExampleNewMonitor() {
	g := exampleGrid()
	monitor, err := stability.NewMonitor(stability.MonitorConfig{
		Grid:  g,
		Model: stability.DefaultOptions(),
		Beta:  0.7,
		TopJ:  2,
	})
	if err != nil {
		panic(err)
	}
	full := stability.NewBasket([]stability.ItemID{1, 2, 3})
	thin := stability.NewBasket([]stability.ItemID{1})
	for k := 0; k < 4; k++ {
		start, _ := g.Bounds(k)
		if _, err := monitor.Ingest(42, start.AddDate(0, 0, 2), full); err != nil {
			panic(err)
		}
	}
	start, _ := g.Bounds(4)
	if _, err := monitor.Ingest(42, start.AddDate(0, 0, 2), thin); err != nil {
		panic(err)
	}
	for _, alert := range monitor.CloseThrough(4) {
		fmt.Printf("customer %d window %d stability %.2f missing %d items\n",
			alert.Customer, alert.GridIndex, alert.Stability, len(alert.Blame))
	}
	// Output:
	// customer 42 window 4 stability 0.33 missing 2 items
}

// ExampleNewShardedMonitor runs the same feed through the parallel
// ingestion engine: receipts fan out across customer-hash shards, and the
// CloseThrough barrier returns the alerts in a deterministic (window,
// customer) order — identical for any shard count.
func ExampleNewShardedMonitor() {
	g := exampleGrid()
	monitor, err := stability.NewShardedMonitor(stability.MonitorConfig{
		Grid:  g,
		Model: stability.DefaultOptions(),
		Beta:  0.7,
		TopJ:  2,
	}, stability.MonitorOptions{Shards: 4}) // 0 = one shard per core
	if err != nil {
		panic(err)
	}
	full := stability.NewBasket([]stability.ItemID{1, 2, 3})
	thin := stability.NewBasket([]stability.ItemID{1})
	for _, id := range []stability.CustomerID{7, 42} {
		for k := 0; k < 4; k++ {
			start, _ := g.Bounds(k)
			if err := monitor.Ingest(id, start.AddDate(0, 0, 2), full); err != nil {
				panic(err)
			}
		}
	}
	start, _ := g.Bounds(4)
	if err := monitor.Ingest(42, start.AddDate(0, 0, 2), thin); err != nil {
		panic(err)
	}
	if err := monitor.Ingest(7, start.AddDate(0, 0, 2), full); err != nil {
		panic(err)
	}
	alerts, err := monitor.CloseThrough(4)
	if err != nil {
		panic(err)
	}
	for _, alert := range alerts {
		fmt.Printf("customer %d window %d stability %.2f missing %d items\n",
			alert.Customer, alert.GridIndex, alert.Stability, len(alert.Blame))
	}
	if _, err := monitor.Close(); err != nil {
		panic(err)
	}
	// Output:
	// customer 42 window 4 stability 0.33 missing 2 items
}

// ExampleNewServer drives the attrition-as-a-service HTTP engine without a
// network: receipts go in through POST /v1/receipts, and after the queue
// drains the defection alert comes back out of GET /v1/alerts. In
// production the handler is mounted on an http.Server (see cmd/attritiond)
// and alerts stream out by long-poll or SSE; API.md documents the wire
// protocol.
func ExampleNewServer() {
	g := exampleGrid()
	srv, err := stability.NewServer(stability.ServerConfig{
		Monitor: stability.MonitorConfig{
			Grid:  g,
			Model: stability.DefaultOptions(),
			Beta:  0.7,
			TopJ:  2,
		},
	})
	if err != nil {
		panic(err)
	}
	// Customer 42 buys three products for four windows, then drops to one
	// in window 4; the window-5 receipt advances the watermark, proving
	// window 4 complete and triggering the alert.
	var receipts []string
	basket := func(k int, items string) {
		start, _ := g.Bounds(k)
		receipts = append(receipts, fmt.Sprintf(`{"customer":42,"time":%q,"items":[%s]}`,
			start.AddDate(0, 0, 2).Format(time.RFC3339), items))
	}
	for k := 0; k < 4; k++ {
		basket(k, "1,2,3")
	}
	basket(4, "1")
	basket(5, "1,2,3")

	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest("POST", "/v1/receipts",
		strings.NewReader(`{"receipts":[`+strings.Join(receipts, ",")+`]}`)))
	fmt.Println("POST /v1/receipts:", w.Code)

	if err := srv.Close(); err != nil { // drain the queue, publish alerts
		panic(err)
	}
	w = httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/v1/alerts", nil))
	var alerts struct {
		Alerts []struct {
			Seq       uint64  `json:"seq"`
			Customer  uint64  `json:"customer"`
			Window    int     `json:"window"`
			Stability float64 `json:"stability"`
		} `json:"alerts"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &alerts); err != nil {
		panic(err)
	}
	for _, a := range alerts.Alerts {
		fmt.Printf("alert %d: customer %d window %d stability %.2f\n",
			a.Seq, a.Customer, a.Window, a.Stability)
	}
	// Output:
	// POST /v1/receipts: 200
	// alert 1: customer 42 window 4 stability 0.33
}

// ExampleNewIngestor uses the serving-path pipeline without the HTTP
// layer: a bounded queue with an overflow policy in front of the sharded
// monitor, and a sequence-numbered alert log to read deliveries from.
func ExampleNewIngestor() {
	g := exampleGrid()
	ing, err := stability.NewIngestor(stability.IngestorConfig{
		Monitor: stability.MonitorConfig{
			Grid:  g,
			Model: stability.DefaultOptions(),
			Beta:  0.7,
			TopJ:  2,
		},
		Policy: stability.IngestBlock, // producers wait when the queue fills
	})
	if err != nil {
		panic(err)
	}
	var batch []stability.ReceiptEvent
	add := func(k int, items []stability.ItemID) {
		start, _ := g.Bounds(k)
		batch = append(batch, stability.ReceiptEvent{
			Customer: 42,
			Time:     start.AddDate(0, 0, 2),
			Items:    stability.NewBasket(items),
		})
	}
	for k := 0; k < 4; k++ {
		add(k, []stability.ItemID{1, 2, 3})
	}
	add(4, []stability.ItemID{1})
	add(5, []stability.ItemID{1, 2, 3}) // advances the watermark past window 4

	if _, err := ing.Enqueue(batch); err != nil {
		panic(err)
	}
	if err := ing.Close(); err != nil { // drain, barrier, publish
		panic(err)
	}
	alerts, _, _ := ing.AlertsSince(0, 10)
	for _, a := range alerts {
		fmt.Printf("seq %d: customer %d window %d stability %.2f\n",
			a.Seq, a.Customer, a.GridIndex, a.Stability)
	}
	// Output:
	// seq 1: customer 42 window 4 stability 0.33
}

// ExampleMonitor_WriteSnapshot persists a monitor mid-stream and restores
// it — the pattern a long-running scoring service uses across restarts.
func ExampleMonitor_WriteSnapshot() {
	g := exampleGrid()
	cfg := stability.MonitorConfig{Grid: g, Model: stability.DefaultOptions(), Beta: 0.5}
	monitor, err := stability.NewMonitor(cfg)
	if err != nil {
		panic(err)
	}
	start, _ := g.Bounds(0)
	if _, err := monitor.Ingest(1, start, stability.NewBasket([]stability.ItemID{5})); err != nil {
		panic(err)
	}

	var state bytes.Buffer
	if err := monitor.WriteSnapshot(&state); err != nil {
		panic(err)
	}
	restored, err := stability.ReadMonitorSnapshot(&state, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("customers after restart:", restored.Customers())
	// Output:
	// customers after restart: 1
}
