// Command benchjson converts `go test -bench` text output (read from
// stdin) into machine-readable JSON (written to stdout), so benchmark
// trajectories can be archived per PR and diffed across commits — `make
// bench-json` wires it to BENCH_PR4.json and CI uploads the file as an
// artifact.
//
// The diff subcommand compares two such reports and exits non-zero on
// regressions beyond a threshold (`make bench-diff` wires it to the
// checked-in baseline):
//
//	benchjson diff [-threshold 0.25] [-allocs-threshold 0.25] old.json new.json
//
// Standard metrics (ns/op, B/op, allocs/op, MB/s) get their own fields;
// any custom b.ReportMetric unit (e.g. receipts/op, customers/op) lands in
// the Metrics map. Context lines (goos, goarch, pkg, cpu) are captured as
// they appear. A FAIL anywhere in the stream makes the command exit
// non-zero so a broken bench can't silently produce a plausible artifact.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line. The per-op fields are pointers
// so a measured zero (e.g. the tracker's 0 allocs/op steady state) is
// recorded in the JSON rather than elided as an empty value — absent means
// "not measured" (no -benchmem), null never appears.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     *float64           `json:"ns_per_op,omitempty"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	MBPerS      *float64           `json:"mb_per_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole run.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(runDiff(os.Args[2:], os.Stdout, os.Stderr))
	}
	report, failed, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// Refuse to emit anything before the input is known good: stdout is
	// usually redirected onto the baseline file, and a partial-but-plausible
	// report from a failed run must not replace it.
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: input contains FAIL, refusing to write a report")
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (Report, bool, error) {
	var (
		report Report
		failed bool
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			report.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		case strings.HasPrefix(line, "FAIL"), strings.Contains(line, "--- FAIL"):
			failed = true
		}
	}
	return report, failed, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkTrackerObserve/repertoire-200-4  694808  1775 ns/op  0 B/op  0 allocs/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	// The rest is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = &v
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		case "MB/s":
			b.MBPerS = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
