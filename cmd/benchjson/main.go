// Command benchjson converts `go test -bench` text output (read from
// stdin) into machine-readable JSON (written to stdout), so benchmark
// trajectories can be archived per PR and diffed across commits — `make
// bench-json` wires it to BENCH_PR4.json and CI uploads the file as an
// artifact.
//
// The diff subcommand compares two such reports and exits non-zero on
// regressions beyond a threshold (`make bench-diff` wires it to the
// checked-in baseline):
//
//	benchjson diff [-threshold 0.25] [-allocs-threshold 0.25] old.json new.json
//
// Standard metrics (ns/op, B/op, allocs/op, MB/s) get their own fields;
// any custom b.ReportMetric unit (e.g. receipts/op, customers/op) lands in
// the Metrics map. Context lines (goos, goarch, pkg, cpu) are captured as
// they appear. A FAIL anywhere in the stream makes the command exit
// non-zero so a broken bench can't silently produce a plausible artifact.
//
// Throughput is derived, not just recorded: a receipts/op or scores/op
// metric (or a batch-N bench-name suffix standing in for scores/op)
// combined with ns/op yields first-class receipts_per_sec /
// scores_per_sec fields, and the diff subcommand gates on throughput
// decreases beyond -threshold the same way it gates on ns/op increases.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line. The per-op fields are pointers
// so a measured zero (e.g. the tracker's 0 allocs/op steady state) is
// recorded in the JSON rather than elided as an empty value — absent means
// "not measured" (no -benchmem), null never appears.
type Benchmark struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     *float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	MBPerS      *float64 `json:"mb_per_s,omitempty"`
	// ReceiptsPerSec and ScoresPerSec are derived headline throughput:
	// the per-op quantity (receipts/op, scores/op, or a batch-N name
	// suffix) divided by seconds per op. Higher is better, and the diff
	// subcommand treats decreases as regressions.
	ReceiptsPerSec *float64           `json:"receipts_per_sec,omitempty"`
	ScoresPerSec   *float64           `json:"scores_per_sec,omitempty"`
	Metrics        map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole run.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(runDiff(os.Args[2:], os.Stdout, os.Stderr))
	}
	report, failed, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// Refuse to emit anything before the input is known good: stdout is
	// usually redirected onto the baseline file, and a partial-but-plausible
	// report from a failed run must not replace it.
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: input contains FAIL, refusing to write a report")
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (Report, bool, error) {
	var (
		report Report
		failed bool
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			report.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				deriveThroughput(&b)
				report.Benchmarks = append(report.Benchmarks, b)
			}
		case strings.HasPrefix(line, "FAIL"), strings.Contains(line, "--- FAIL"):
			failed = true
		}
	}
	return report, failed, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkTrackerObserve/repertoire-200-4  694808  1775 ns/op  0 B/op  0 allocs/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	// The rest is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = &v
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		case "MB/s":
			b.MBPerS = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// deriveThroughput fills the per-second headline fields from ns/op and a
// per-op quantity. scores/op may come from an explicit b.ReportMetric or,
// when absent, from a batch-N bench-name suffix (the batch size IS the
// number of customers scored per op). Idempotent: fields already present
// (e.g. in a report loaded from disk) are kept as recorded.
func deriveThroughput(b *Benchmark) {
	if b.NsPerOp == nil || *b.NsPerOp <= 0 {
		return
	}
	perSec := func(perOp float64) *float64 {
		v := perOp * 1e9 / *b.NsPerOp
		return &v
	}
	if b.ReceiptsPerSec == nil {
		if r, ok := b.Metrics["receipts/op"]; ok {
			b.ReceiptsPerSec = perSec(r)
		}
	}
	if b.ScoresPerSec == nil {
		if s, ok := b.Metrics["scores/op"]; ok {
			b.ScoresPerSec = perSec(s)
		} else if n, ok := batchSuffix(b.Name); ok {
			b.ScoresPerSec = perSec(n)
		}
	}
}

// batchSuffix extracts N from a final "batch-N" path element, tolerating
// the "-GOMAXPROCS" suffix go test appends to bench names.
func batchSuffix(name string) (float64, bool) {
	seg := name[strings.LastIndex(name, "/")+1:]
	rest, ok := strings.CutPrefix(seg, "batch-")
	if !ok {
		return 0, false
	}
	if j := strings.IndexByte(rest, '-'); j >= 0 {
		rest = rest[:j] // drop the -GOMAXPROCS tail
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n <= 0 {
		return 0, false
	}
	return float64(n), true
}
