package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func f(v float64) *float64 { return &v }

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1000, NsPerOp: f(ns), AllocsPerOp: f(allocs)}
}

func TestDiffNoRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkA-4", 1000, 10),
		bench("BenchmarkGone-4", 5, 0),
	}})
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkA-4", 1100, 10), // +10% < default 25% threshold
		bench("BenchmarkNew-4", 7, 1),
	}})
	var out, errOut bytes.Buffer
	if code := runDiff([]string{oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr = %s, stdout = %s", code, errOut.String(), out.String())
	}
	got := out.String()
	for _, want := range []string{"BenchmarkA-4", "+10.0%", "only in old: BenchmarkGone-4",
		"only in new: BenchmarkNew-4", "no regressions"} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
}

func TestDiffFlagsTimeRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkA-4", 1000, 10),
	}})
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkA-4", 1500, 10), // +50% > default threshold
	}})
	var out, errOut bytes.Buffer
	if code := runDiff([]string{oldPath, newPath}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1; stdout = %s", code, out.String())
	}
	if !strings.Contains(out.String(), "1 regression(s)") {
		t.Errorf("missing regression summary:\n%s", out.String())
	}
	// A generous threshold turns the same delta informational.
	out.Reset()
	if code := runDiff([]string{"-threshold", "1.0", oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit code with -threshold 1.0 = %d, stdout = %s", code, out.String())
	}
}

func TestDiffFlagsAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkZeroAlloc-4", 100, 0),
	}})
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkZeroAlloc-4", 100, 1), // 0 -> 1 alloc must flag
	}})
	var out, errOut bytes.Buffer
	if code := runDiff([]string{oldPath, newPath}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1; stdout = %s", code, out.String())
	}
}

func TestDiffSingleIterationAllocsAreInformational(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkZeroAlloc-4", Iterations: 500000, NsPerOp: f(100), AllocsPerOp: f(0)},
	}})
	// A 1x smoke run reports the unamortized warmup alloc; that must not
	// gate, only show.
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkZeroAlloc-4", Iterations: 1, NsPerOp: f(100), AllocsPerOp: f(1)},
	}})
	var out, errOut bytes.Buffer
	if code := runDiff([]string{oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0 (single-iteration allocs are informational); stdout = %s",
			code, out.String())
	}
	if !strings.Contains(out.String(), "new>0") {
		t.Errorf("delta cell should still show the alloc step:\n%s", out.String())
	}
}

// TestDiffFlagsThroughputRegression pins the higher-is-better gate: a
// scores/sec drop beyond the threshold fails the diff even when ns/op and
// allocs look fine, and baselines that predate the derived fields get
// them re-derived from ns/op + metrics on load.
func TestDiffFlagsThroughputRegression(t *testing.T) {
	dir := t.TempDir()
	// Old report as an older benchjson wrote it: scores/op metric only,
	// no derived field. 128 scores / 100µs = 1.28M scores/sec.
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkServeQuery/batch-128-4", Iterations: 1000, NsPerOp: f(100_000),
			Metrics: map[string]float64{"scores/op": 128}},
	}})
	// Same ns/op threshold would not fire (+10%), but throughput halves
	// because the new run scored fewer customers per op.
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkServeQuery/batch-128-4", Iterations: 1000, NsPerOp: f(110_000),
			Metrics: map[string]float64{"scores/op": 64}},
	}})
	var out, errOut bytes.Buffer
	if code := runDiff([]string{oldPath, newPath}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1; stdout = %s", code, out.String())
	}
	if !strings.Contains(out.String(), "1 regression(s)") {
		t.Errorf("missing regression summary:\n%s", out.String())
	}
	// A faster new run (higher scores/sec) must pass and show the gain.
	fastPath := writeReport(t, dir, "fast.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkServeQuery/batch-128-4", Iterations: 1000, NsPerOp: f(50_000),
			Metrics: map[string]float64{"scores/op": 128}},
	}})
	out.Reset()
	if code := runDiff([]string{oldPath, fastPath}, &out, &errOut); code != 0 {
		t.Fatalf("faster run flagged: exit %d, stdout = %s", code, out.String())
	}
	if !strings.Contains(out.String(), "+100.0%") {
		t.Errorf("throughput gain not shown:\n%s", out.String())
	}
}

func TestDiffMissingMetricIsNotARegression(t *testing.T) {
	dir := t.TempDir()
	// No -benchmem: allocs absent on both sides.
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-4", Iterations: 1000, NsPerOp: f(100)},
	}})
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-4", Iterations: 1000, NsPerOp: f(100)},
	}})
	var out, errOut bytes.Buffer
	if code := runDiff([]string{oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stdout = %s", code, out.String())
	}
}

func TestDiffUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runDiff([]string{"only-one.json"}, &out, &errOut); code != 2 {
		t.Fatalf("one arg: exit code = %d", code)
	}
	if code := runDiff([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, &out, &errOut); code != 2 {
		t.Fatalf("missing files: exit code = %d", code)
	}
}
