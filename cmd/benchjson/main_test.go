package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/gautrais/stability
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTrackerObserve/repertoire-200-4         	  694808	      1775 ns/op	       0 B/op	       0 allocs/op
BenchmarkMonitorIngest/single-4                  	      37	  31017569 ns/op	     27982 receipts/op
BenchmarkPopulationAnalyze/workers-1-4           	       5	  11652783 ns/op	       240.0 customers/op	  972552 B/op	    5926 allocs/op
PASS
ok  	github.com/gautrais/stability	12.3s
`

func TestParseSample(t *testing.T) {
	report, failed, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("sample reported as failed")
	}
	if report.GOOS != "linux" || report.GOARCH != "amd64" ||
		report.Package != "github.com/gautrais/stability" ||
		!strings.Contains(report.CPU, "Xeon") {
		t.Fatalf("context lines: %+v", report)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(report.Benchmarks))
	}

	tr := report.Benchmarks[0]
	if tr.Name != "BenchmarkTrackerObserve/repertoire-200-4" || tr.Iterations != 694808 ||
		tr.NsPerOp == nil || *tr.NsPerOp != 1775 {
		t.Fatalf("tracker line: %+v", tr)
	}
	// Measured zeros must be RECORDED (pointer non-nil), not elided: a
	// future alloc regression has to diff against an explicit 0.
	if tr.BytesPerOp == nil || *tr.BytesPerOp != 0 || tr.AllocsPerOp == nil || *tr.AllocsPerOp != 0 {
		t.Fatalf("measured zeros elided: %+v", tr)
	}

	ingest := report.Benchmarks[1]
	if ingest.Metrics["receipts/op"] != 27982 {
		t.Fatalf("custom metric: %+v", ingest)
	}
	if ingest.AllocsPerOp != nil {
		t.Fatalf("unmeasured allocs/op should be absent, got %v", *ingest.AllocsPerOp)
	}

	pop := report.Benchmarks[2]
	if pop.Metrics["customers/op"] != 240 || pop.AllocsPerOp == nil || *pop.AllocsPerOp != 5926 ||
		pop.BytesPerOp == nil || *pop.BytesPerOp != 972552 {
		t.Fatalf("population line: %+v", pop)
	}
}

// TestDeriveThroughput pins the derived headline fields: receipts/op and
// scores/op metrics become per-second rates, a batch-N name suffix stands
// in for scores/op when the metric is absent, and benches with neither
// stay untouched.
func TestDeriveThroughput(t *testing.T) {
	in := strings.Join([]string{
		"BenchmarkMonitorIngest/single-4  37  31017569 ns/op  27982 receipts/op",
		"BenchmarkServeQuery/batch-128-4  1053  256000 ns/op  128.0 scores/op  71069 B/op  559 allocs/op",
		"BenchmarkImplied/batch-50-4  100  1000000 ns/op",
		"BenchmarkPlain-4  1000  500 ns/op",
		"BenchmarkNotABatch/batch-x-4  100  1000 ns/op",
	}, "\n")
	report, _, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(report.Benchmarks))
	}
	ingest := report.Benchmarks[0]
	if ingest.ReceiptsPerSec == nil || *ingest.ReceiptsPerSec != 27982*1e9/31017569 {
		t.Fatalf("receipts_per_sec: %+v", ingest.ReceiptsPerSec)
	}
	if ingest.ScoresPerSec != nil {
		t.Fatalf("ingest bench grew scores_per_sec: %v", *ingest.ScoresPerSec)
	}
	batch := report.Benchmarks[1]
	if batch.ScoresPerSec == nil || *batch.ScoresPerSec != 128*1e9/256000 {
		t.Fatalf("scores_per_sec from metric: %+v", batch.ScoresPerSec)
	}
	implied := report.Benchmarks[2]
	if implied.ScoresPerSec == nil || *implied.ScoresPerSec != 50*1e9/1e6 {
		t.Fatalf("scores_per_sec from batch-N suffix: %+v", implied.ScoresPerSec)
	}
	for _, b := range report.Benchmarks[3:] {
		if b.ScoresPerSec != nil || b.ReceiptsPerSec != nil {
			t.Fatalf("%s grew throughput fields: %+v", b.Name, b)
		}
	}
}

func TestMeasuredZeroSurvivesJSON(t *testing.T) {
	in := "BenchmarkZ-4  100  5 ns/op  0 B/op  0 allocs/op\n"
	report, _, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(report.Benchmarks[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"bytes_per_op":0`, `"allocs_per_op":0`} {
		if !strings.Contains(string(out), key) {
			t.Fatalf("JSON %s lacks %s", out, key)
		}
	}
}

func TestParseDetectsFailure(t *testing.T) {
	in := "BenchmarkX-4  10  5 ns/op\n--- FAIL: TestY\nFAIL\n"
	report, failed, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("FAIL lines not detected")
	}
	if len(report.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(report.Benchmarks))
	}
}

func TestParseSkipsMalformedLines(t *testing.T) {
	in := strings.Join([]string{
		"BenchmarkNoFields",
		"BenchmarkBadIters notanumber 5 ns/op",
		"BenchmarkGood-2  42  7.5 ns/op",
		"random noise",
	}, "\n")
	report, _, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 1 || report.Benchmarks[0].Name != "BenchmarkGood-2" ||
		report.Benchmarks[0].NsPerOp == nil || *report.Benchmarks[0].NsPerOp != 7.5 {
		t.Fatalf("benchmarks: %+v", report.Benchmarks)
	}
}
