package main

import (
	"bytes"
	"fmt"
	"testing"
)

// TestDiffReportsOrderInsensitive is the regression test behind the
// detlint R1 annotations in diffReports: the name-partition loops there
// iterate Go maps, so if visit order ever leaked into the rendered
// table or the regression count, permuting the input benchmark lists
// would change the output. Pin byte-identical output across reversed
// and interleaved inputs.
func TestDiffReportsOrderInsensitive(t *testing.T) {
	mk := func(name string, ns, allocs float64) Benchmark {
		return Benchmark{Name: name, Iterations: 100, NsPerOp: &ns, AllocsPerOp: &allocs}
	}
	var oldBench, newBench []Benchmark
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("BenchmarkCase%02d-4", i)
		oldBench = append(oldBench, mk(name, float64(1000+i), float64(i%3)))
		// Every third case regresses, every fifth is new-only, every
		// seventh old-only — the diff has to partition all three sets.
		switch {
		case i%7 == 0:
			// left out of new: "only in old"
		case i%3 == 0:
			newBench = append(newBench, mk(name, float64(3000+i), float64(i%3)))
		default:
			newBench = append(newBench, mk(name, float64(1000+i), float64(i%3)))
		}
	}
	for i := 0; i < 5; i++ {
		newBench = append(newBench, mk(fmt.Sprintf("BenchmarkFresh%d-4", i), 10, 0))
	}

	render := func(oldB, newB []Benchmark) (string, int) {
		var buf bytes.Buffer
		n := diffReports(&buf, Report{Benchmarks: oldB}, Report{Benchmarks: newB}, 0.25, 0.25)
		return buf.String(), n
	}

	baseOut, baseRegs := render(oldBench, newBench)
	if baseRegs == 0 {
		t.Fatal("fixture should contain regressions")
	}

	reversed := func(b []Benchmark) []Benchmark {
		out := make([]Benchmark, len(b))
		for i, x := range b {
			out[len(b)-1-i] = x
		}
		return out
	}
	interleaved := func(b []Benchmark) []Benchmark {
		out := make([]Benchmark, 0, len(b))
		for i := 1; i < len(b); i += 2 {
			out = append(out, b[i])
		}
		for i := 0; i < len(b); i += 2 {
			out = append(out, b[i])
		}
		return out
	}

	for name, in := range map[string][2][]Benchmark{
		"reversed":    {reversed(oldBench), reversed(newBench)},
		"interleaved": {interleaved(oldBench), interleaved(newBench)},
	} {
		out, regs := render(in[0], in[1])
		if regs != baseRegs {
			t.Errorf("%s: regression count changed: %d != %d", name, regs, baseRegs)
		}
		if out != baseOut {
			t.Errorf("%s: diff output depends on input order\n--- base ---\n%s--- permuted ---\n%s", name, baseOut, out)
		}
	}
}
