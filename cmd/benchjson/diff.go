package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"text/tabwriter"
)

// runDiff implements `benchjson diff old.json new.json`: it compares two
// reports produced by the default mode, prints per-benchmark ns/op,
// allocs/op, and throughput (scores/sec or receipts/sec) deltas, and
// returns 1 when any benchmark regressed beyond the thresholds — slower,
// more allocations, or lower throughput — so CI can diff bench
// trajectories mechanically instead of eyeballing raw output. Benchmarks
// present in only one report are listed but never count as regressions
// (suites grow and shrink legitimately).
func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold = fs.Float64("threshold", 0.25,
			"relative ns/op increase that counts as a regression (0.25 = +25%)")
		allocsThreshold = fs.Float64("allocs-threshold", 0.25,
			"relative allocs/op increase that counts as a regression (with half an alloc of absolute slack, so 0 -> 1 flags but jitter on large counts does not)")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchjson diff [flags] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	oldRep, err := loadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	newRep, err := loadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	regressions := diffReports(stdout, oldRep, newRep, *threshold, *allocsThreshold)
	if regressions > 0 {
		fmt.Fprintf(stdout, "\n%d regression(s) beyond thresholds (ns/op +%.0f%%, allocs/op +%.0f%%, throughput -%.0f%%)\n",
			regressions, *threshold*100, *allocsThreshold*100, *threshold*100)
		return 1
	}
	fmt.Fprintln(stdout, "\nno regressions beyond thresholds")
	return 0
}

func loadReport(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	// Older baselines predate the derived throughput fields; fill them in
	// from the recorded ns/op + per-op metrics so throughput still diffs.
	for i := range rep.Benchmarks {
		deriveThroughput(&rep.Benchmarks[i])
	}
	return rep, nil
}

// diffReports writes the comparison table and returns the regression count.
func diffReports(w io.Writer, oldRep, newRep Report, threshold, allocsThreshold float64) int {
	oldBy := benchByName(oldRep)
	newBy := benchByName(newRep)

	names := make([]string, 0, len(oldBy))
	var added, removed []string
	//detlint:ignore R1 membership partition only; names and removed are sorted before any output
	for name := range oldBy {
		if _, ok := newBy[name]; ok {
			names = append(names, name)
		} else {
			removed = append(removed, name)
		}
	}
	//detlint:ignore R1 membership partition only; added is sorted before any output
	for name := range newBy {
		if _, ok := oldBy[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(names)
	sort.Strings(added)
	sort.Strings(removed)

	regressions := 0
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\told allocs\tnew allocs\tdelta\told ops/s\tnew ops/s\tdelta\t")
	for _, name := range names {
		o, n := oldBy[name], newBy[name]
		nsCell, nsRegressed := deltaCell(o.NsPerOp, n.NsPerOp, threshold, 0)
		allocCell, allocRegressed := deltaCell(o.AllocsPerOp, n.AllocsPerOp, allocsThreshold, 0.5)
		thrCell, thrRegressed := throughputCell(throughput(o), throughput(n), threshold)
		// A single-iteration run cannot amortize one-time warmup
		// allocations, so its allocs/op systematically overstates the
		// steady state (a 0-alloc hot path reports its setup alloc).
		// Show the delta but never gate on it when either side ran once.
		if o.Iterations == 1 || n.Iterations == 1 {
			allocRegressed = false
		}
		if nsRegressed || allocRegressed || thrRegressed {
			regressions++
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t\n",
			name, fmtMetric(o.NsPerOp), fmtMetric(n.NsPerOp), nsCell,
			fmtMetric(o.AllocsPerOp), fmtMetric(n.AllocsPerOp), allocCell,
			fmtMetric(throughput(o)), fmtMetric(throughput(n)), thrCell)
	}
	tw.Flush()
	for _, name := range removed {
		fmt.Fprintf(w, "only in old: %s\n", name)
	}
	for _, name := range added {
		fmt.Fprintf(w, "only in new: %s\n", name)
	}
	return regressions
}

func benchByName(rep Report) map[string]Benchmark {
	by := make(map[string]Benchmark, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		by[b.Name] = b
	}
	return by
}

// deltaCell renders the relative change between two optional metrics and
// reports whether it regresses beyond threshold. slack is an absolute
// allowance added to the budget (half an alloc keeps integer-count jitter
// honest while still flagging a 0 -> 1 step).
func deltaCell(o, n *float64, threshold, slack float64) (cell string, regressed bool) {
	switch {
	case o == nil || n == nil:
		return "-", false
	case *o == 0 && *n == 0:
		return "+0.0%", false
	case *o == 0:
		return "new>0", *n > slack
	}
	rel := (*n - *o) / *o
	regressed = *n > *o*(1+threshold)+slack
	return fmt.Sprintf("%+.1f%%", rel*100), regressed
}

// throughput picks a benchmark's headline per-second metric: scores/sec
// when the bench scores customers, else receipts/sec when it ingests.
func throughput(b Benchmark) *float64 {
	if b.ScoresPerSec != nil {
		return b.ScoresPerSec
	}
	return b.ReceiptsPerSec
}

// throughputCell renders the relative change of a higher-is-better metric
// and reports whether it dropped beyond threshold.
func throughputCell(o, n *float64, threshold float64) (cell string, regressed bool) {
	if o == nil || n == nil || *o <= 0 {
		return "-", false
	}
	rel := (*n - *o) / *o
	return fmt.Sprintf("%+.1f%%", rel*100), *n < *o*(1-threshold)
}

func fmtMetric(v *float64) string {
	if v == nil {
		return "-"
	}
	if *v == math.Trunc(*v) && math.Abs(*v) < 1e15 {
		return fmt.Sprintf("%.0f", *v)
	}
	return fmt.Sprintf("%.1f", *v)
}
