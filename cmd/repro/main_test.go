package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunFig2(t *testing.T) {
	// Figure 2 is scripted and fast; the full default-scale experiments are
	// covered by the experiments package's own tests.
	dir := t.TempDir()
	if err := run([]string{"-experiment", "fig2", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, "figure2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("figure2.csv is empty")
	}
}

func TestRunSmallFig1(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-experiment", "fig1", "-customers", "150", "-seed", "5", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figure1.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunLeadTimeSmall(t *testing.T) {
	if err := run([]string{"-experiment", "leadtime", "-customers", "150"}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyOverrides(t *testing.T) {
	customers, seed := 100, int64(1)
	applyOverrides(&customers, 0, &seed, 0)
	if customers != 100 || seed != 1 {
		t.Fatal("zero overrides must not change defaults")
	}
	applyOverrides(&customers, 250, &seed, 9)
	if customers != 250 || seed != 9 {
		t.Fatalf("overrides not applied: %d, %d", customers, seed)
	}
}
