// Command repro regenerates the paper's figures and this repository's
// extension experiments on the synthetic substrate.
//
// Usage:
//
//	repro -experiment all|fig1|fig2|cv|explain-quality|alpha|window|policy \
//	      [-customers N] [-seed S] [-workers W] [-out DIR]
//
// Each experiment prints an ASCII rendering to stdout; with -out, the
// underlying series are also written as CSV files for external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/gautrais/stability/internal/experiments"
	"github.com/gautrais/stability/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all",
			"fig1|fig2|cv|explain-quality|alpha|window|policy|gateway|families|leadtime|all")
		customers = fs.Int("customers", 0, "override population size (0 = default)")
		seed      = fs.Int64("seed", 0, "override dataset seed (0 = default)")
		workers   = fs.Int("workers", 0, "worker pool size for generation and sweeps (0 = all CPUs; results are identical for any value)")
		outDir    = fs.String("out", "", "directory for CSV exports (optional)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("create out dir: %w", err)
		}
	}

	// Experiment renderings go to stdout and must be bit-identical run to
	// run; the elapsed-time telemetry below is the one wall-clock read in
	// the binary and stays on stderr so stdout never carries it.
	runOne := func(name string, fn func() error) error {
		//detlint:ignore R2 operator timing telemetry; printed to stderr only, never into experiment output
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		//detlint:ignore R2 operator timing telemetry; printed to stderr only, never into experiment output
		fmt.Fprintf(os.Stderr, "--- %s done in %v ---\n", name, time.Since(start).Round(time.Millisecond))
		fmt.Println()
		return nil
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }
	ran := false

	if want("fig1") {
		ran = true
		if err := runOne("Figure 1: attrition detection AUROC", func() error {
			cfg := experiments.DefaultFigure1Config()
			applyOverrides(&cfg.Gen.Customers, *customers, &cfg.Gen.Seed, *seed)
			cfg.Workers = *workers
			res, err := experiments.Figure1(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			if *outDir != "" {
				s, r := res.Series()
				if err := writeSeriesCSV(filepath.Join(*outDir, "figure1.csv"), s, r); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}

	if want("fig2") {
		ran = true
		if err := runOne("Figure 2: individual stability trace", func() error {
			cfg := experiments.DefaultFigure2Config()
			if *seed != 0 {
				cfg.Scenario.Seed = *seed
			}
			res, err := experiments.Figure2(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			if *outDir != "" {
				x := make([]float64, len(res.Months))
				for i, m := range res.Months {
					x[i] = float64(m)
				}
				s := report.Series{Name: "stability", X: x, Y: res.Stability}
				if err := writeSeriesCSV(filepath.Join(*outDir, "figure2.csv"), s); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}

	if want("cv") {
		ran = true
		if err := runOne("CV-1: cross-validated parameter search", func() error {
			cfg := experiments.DefaultParamSearchConfig()
			applyOverrides(&cfg.Gen.Customers, *customers, &cfg.Gen.Seed, *seed)
			cfg.Workers = *workers
			res, err := experiments.ParamSearch(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			if *outDir != "" {
				if err := writeTableCSV(filepath.Join(*outDir, "cv1.csv"), res.Table()); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}

	if want("explain-quality") {
		ran = true
		if err := runOne("EXT-1: explanation quality", func() error {
			cfg := experiments.DefaultExplanationQualityConfig()
			applyOverrides(&cfg.Gen.Customers, *customers, &cfg.Gen.Seed, *seed)
			cfg.Workers = *workers
			res, err := experiments.ExplanationQuality(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			if *outDir != "" {
				if err := writeTableCSV(filepath.Join(*outDir, "ext1.csv"), res.Table()); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}

	ablations := []struct {
		flag string
		name string
		fn   func(experiments.AblationConfig) (*experiments.AblationResult, error)
		file string
	}{
		{"alpha", "EXT-2: alpha ablation", experiments.AlphaAblation, "ext2.csv"},
		{"window", "EXT-3: window-span ablation", experiments.WindowAblation, "ext3.csv"},
		{"policy", "EXT-4: counting-policy ablation", experiments.PolicyAblation, "ext4.csv"},
	}
	for _, ab := range ablations {
		if !want(ab.flag) {
			continue
		}
		ran = true
		ab := ab
		if err := runOne(ab.name, func() error {
			cfg := experiments.DefaultAblationConfig()
			applyOverrides(&cfg.Gen.Customers, *customers, &cfg.Gen.Seed, *seed)
			cfg.Workers = *workers
			res, err := ab.fn(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			if *outDir != "" {
				if err := writeTableCSV(filepath.Join(*outDir, ab.file), res.Table()); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}

	if want("gateway") {
		ran = true
		if err := runOne("EXT-5: gateway segments", func() error {
			cfg := experiments.DefaultGatewayConfig()
			applyOverrides(&cfg.Gen.Customers, *customers, &cfg.Gen.Seed, *seed)
			cfg.Seg.Workers = *workers
			res, err := experiments.Gateway(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			if *outDir != "" {
				if err := writeTableCSV(filepath.Join(*outDir, "ext5.csv"), res.Table()); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}

	if want("families") {
		ran = true
		if err := runOne("EXT-6: RFM family ablation", func() error {
			cfg := experiments.DefaultFamilyAblationConfig()
			applyOverrides(&cfg.Gen.Customers, *customers, &cfg.Gen.Seed, *seed)
			cfg.Workers = *workers
			res, err := experiments.FamilyAblation(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			if *outDir != "" {
				if err := writeTableCSV(filepath.Join(*outDir, "ext6.csv"), res.Table()); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}

	if want("leadtime") {
		ran = true
		if err := runOne("EXT-7: detection lead time", func() error {
			cfg := experiments.DefaultLeadTimeConfig()
			applyOverrides(&cfg.Gen.Customers, *customers, &cfg.Gen.Seed, *seed)
			cfg.Workers = *workers
			res, err := experiments.LeadTime(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		}); err != nil {
			return err
		}
	}

	if !ran {
		return fmt.Errorf("unknown experiment %q (want fig1|fig2|cv|explain-quality|alpha|window|policy|gateway|families|leadtime|all)", *experiment)
	}
	return nil
}

func applyOverrides(customers *int, customersOverride int, seed *int64, seedOverride int64) {
	if customersOverride > 0 {
		*customers = customersOverride
	}
	if seedOverride != 0 {
		*seed = seedOverride
	}
}

func writeSeriesCSV(path string, series ...report.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteSeriesCSV(f, series...); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}

func writeTableCSV(path string, t *report.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.RenderCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}
